/**
 * @file
 * Crash-consistency enumeration over the durable-state stack: a
 * counting pass under an inert FaultyIoEnv discovers every
 * fault-eligible I/O operation a workload performs, then one run per
 * operation index fails exactly that operation and asserts the
 * recovery invariants — nothing fatals during unwinding, no torn
 * record is ever served, failed writes degrade (never kill) the run,
 * and a post-recovery rerun is byte-identical to a never-faulted
 * run. Plus the ENOSPC battery, fsync-failure degradation, the
 * power-cut mode, and a death test pinning the no-std::terminate
 * contract for destructors that run while a FatalError unwinds.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include <dirent.h>
#include <sys/stat.h>
#include <unistd.h>

#include "common/logging.hh"
#include "core/parallel_runner.hh"
#include "gpu/transfer_mode.hh"
#include "io/faulty_env.hh"
#include "io/io_env.hh"
#include "journal/journal.hh"
#include "journal/json.hh"
#include "serve/daemon.hh"
#include "store/result_store.hh"
#include "workloads/registry.hh"

namespace uvmasync
{
namespace
{

std::string
tmpPath(const std::string &name)
{
    return ::testing::TempDir() + "uvmasync_iofault_" + name;
}

void
removeTree(const std::string &path)
{
    struct stat st;
    if (::lstat(path.c_str(), &st) != 0)
        return;
    if (!S_ISDIR(st.st_mode)) {
        ::unlink(path.c_str());
        return;
    }
    DIR *dir = ::opendir(path.c_str());
    if (dir) {
        while (struct dirent *ent = ::readdir(dir)) {
            std::string name = ent->d_name;
            if (name == "." || name == "..")
                continue;
            removeTree(path + "/" + name);
        }
        ::closedir(dir);
    }
    ::rmdir(path.c_str());
}

std::string
readFileOr(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in.good())
        return "";
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
}

/** Deterministic synthetic result for point @p i of @p point. */
ExperimentResult
makeResult(const ExperimentPoint &point, std::size_t i)
{
    ExperimentResult r;
    r.workload = point.workload;
    r.mode = point.mode;
    r.size = point.opts.size;
    r.clean.allocPs = 1000.0 + static_cast<double>(i);
    r.clean.transferPs = 2000.0 + static_cast<double>(i) / 3.0;
    r.clean.kernelPs = 3000.0 + static_cast<double>(i) * 7.0;
    TimeBreakdown run;
    run.allocPs = r.clean.allocPs * 1.25;
    run.transferPs = r.clean.transferPs * 0.75;
    run.kernelPs = r.clean.kernelPs;
    r.runs.push_back(run);
    r.counters.faults = 10 + i;
    r.counters.bytesH2d = 4096 * (i + 1);
    r.counters.bytesD2h = 2048 * (i + 1);
    r.counters.launches = 3;
    r.counters.occupancy = 0.5 + static_cast<double>(i % 4) / 8.0;
    return r;
}

PointOutcome
makeOutcome(const ExperimentPoint &point, std::size_t i)
{
    PointOutcome out;
    out.ok = true;
    out.status = PointStatus::Ok;
    out.attempts = 1;
    out.result = makeResult(point, i);
    return out;
}

/** 2 workloads x 5 modes x 3 trials: enough commits for the floor. */
std::vector<ExperimentPoint>
journalGrid()
{
    ExperimentOptions base;
    base.size = SizeClass::Tiny;
    base.runs = 2;
    base.baseSeed = 42;
    std::vector<TransferMode> modes(allTransferModes.begin(),
                                    allTransferModes.end());
    return ParallelRunner::expandGrid({"saxpy", "vector_seq"}, modes,
                                      3, base);
}

// ---------------------------------------------------------------------------
// Journal workload: create + commit every point. Synthetic outcomes
// keep one enumerator step at microseconds, so failing each of the
// ~60 ops in turn stays cheap.
// ---------------------------------------------------------------------------

/** Run the journal workload; false when creation itself fataled. */
bool
runJournalWorkload(IoEnv &env, const std::string &path)
{
    std::vector<ExperimentPoint> grid = journalGrid();
    FatalThrowScope scope;
    try {
        std::unique_ptr<RunJournal> journal =
            RunJournal::create(path, grid, env);
        for (std::size_t i = 0; i < grid.size(); ++i) {
            PointOutcome out = makeOutcome(grid[i], i);
            journal->commit(i, out); // a refusal degrades, only
        }
    } catch (const FatalError &) {
        return false;
    }
    return true;
}

/**
 * What a CLI user does after a crash: resume if the file is usable,
 * start over if not, then fill in whatever is missing. Returns the
 * final journal bytes.
 */
std::string
recoverJournal(const std::string &path)
{
    std::vector<ExperimentPoint> grid = journalGrid();
    IoEnv &real = realIoEnv();
    std::unique_ptr<RunJournal> journal;
    {
        FatalThrowScope scope;
        try {
            journal = real.exists(path)
                          ? RunJournal::resume(path, grid)
                          : RunJournal::create(path, grid);
        } catch (const FatalError &) {
            real.removeFile(path);
            journal = RunJournal::create(path, grid);
        }
    }
    for (std::size_t i = 0; i < grid.size(); ++i) {
        PointOutcome restored;
        if (journal->restore(i, restored))
            continue;
        PointOutcome out = makeOutcome(grid[i], i);
        EXPECT_TRUE(journal->commit(i, out)) << path << " point " << i;
    }
    journal.reset();
    return readFileOr(path);
}

// ---------------------------------------------------------------------------
// Store workload: open, insert a key set spanning several shards
// (with same-shard collisions), look one up, close (meta rewrite).
// ---------------------------------------------------------------------------

constexpr std::uint64_t storeFp = 0x1234abcd5678ef90ull;

std::vector<std::uint64_t>
storeKeys()
{
    // Low byte picks the shard: three shards, repeats interleaved so
    // a mid-run fault splits a shard's records across sessions.
    return {0x01,  0x42,  0x99,  0x101, 0x142, 0x199,
            0x201, 0x242, 0x299, 0x301};
}

bool
runStoreWorkload(IoEnv &env, const std::string &dir)
{
    std::vector<ExperimentPoint> grid = journalGrid();
    FatalThrowScope scope;
    try {
        std::unique_ptr<ResultStore> store =
            ResultStore::open(dir, storeFp, StoreOptions{}, env);
        std::size_t i = 0;
        for (std::uint64_t key : storeKeys()) {
            store->insert(key, makeResult(grid[i % grid.size()], i));
            ++i;
        }
        ExperimentResult out;
        store->lookup(storeKeys().front(), out);
        store.reset(); // atomic meta rewrite
    } catch (const FatalError &) {
        return false;
    }
    return true;
}

/**
 * Canonical store output: every segment file's name + bytes, in
 * sorted name order. meta.json is deliberately excluded — its clock
 * and lifetime counters legitimately differ between a one-session
 * and a two-session (crash + recovery) history.
 */
std::string
canonicalStoreBytes(const std::string &dir)
{
    std::vector<std::string> names;
    realIoEnv().listDir(dir + "/shards", names);
    std::string out;
    for (const std::string &name : names) {
        out += name;
        out += '\0';
        out += readFileOr(dir + "/shards/" + name);
        out += '\0';
    }
    return out;
}

/** Reopen with the real env, refill, and demand a clean survey. */
std::string
recoverStore(const std::string &dir)
{
    std::vector<ExperimentPoint> grid = journalGrid();
    {
        std::unique_ptr<ResultStore> store =
            ResultStore::open(dir, storeFp);
        std::size_t i = 0;
        for (std::uint64_t key : storeKeys()) {
            store->insert(key, makeResult(grid[i % grid.size()], i));
            ++i;
        }
    }
    StoreSurvey survey = surveyStore(dir);
    EXPECT_TRUE(survey.clean())
        << dir << ": " << survey.metaError << " corrupt="
        << survey.corruptRecords << " torn=" << survey.tornTails
        << " badHeaders=" << survey.badHeaders;
    EXPECT_EQ(survey.records, storeKeys().size());
    return canonicalStoreBytes(dir);
}

// ---------------------------------------------------------------------------
// Daemon workload: construct (preflight + recovery), submit three
// batches, cancel the first, stop. Paused, so no simulation runs and
// every I/O op belongs to the durable-state protocol itself.
// ---------------------------------------------------------------------------

std::vector<std::string>
daemonPayloads()
{
    std::vector<std::string> payloads;
    for (int seed : {7, 8, 9}) {
        payloads.push_back("batch.workload = saxpy\n"
                           "batch.size = tiny\n"
                           "batch.runs = 2\n"
                           "batch.seed = " +
                           std::to_string(seed) + "\n");
    }
    return payloads;
}

struct DaemonRun {
    bool constructed = false;
    std::vector<BatchHandle> acked;
    std::vector<std::string> ackedPayloads;
    ServeStats stats;
};

DaemonRun
runDaemonWorkload(IoEnv &env, const std::string &stateDir)
{
    DaemonRun out;
    ServeOptions opt;
    opt.stateDir = stateDir;
    opt.jobs = 1;
    opt.paused = true;
    opt.io = &env;
    FatalThrowScope scope;
    try {
        ServeDaemon daemon(opt);
        out.constructed = true;
        for (const std::string &payload : daemonPayloads()) {
            std::string error;
            BatchHandle handle = daemon.submit(1, payload, error);
            if (handle != 0) {
                EXPECT_TRUE(error.empty());
                out.acked.push_back(handle);
                out.ackedPayloads.push_back(payload);
            } else {
                EXPECT_FALSE(error.empty());
            }
        }
        if (!out.acked.empty()) {
            BatchState state;
            std::string error;
            daemon.cancel(out.acked.front(), state, error);
        }
        out.stats = daemon.stats();
        daemon.stop();
    } catch (const FatalError &) {
        out.constructed = false;
    }
    return out;
}

/**
 * Restart on the real filesystem and assert the serve invariants:
 * the recovery daemon never fatals, every acked handle is visible
 * again with byte-identical payload, and no batch is in a state a
 * torn write could explain away.
 */
void
verifyDaemonRecovery(const std::string &stateDir, const DaemonRun &run)
{
    ServeOptions opt;
    opt.stateDir = stateDir;
    opt.jobs = 1;
    opt.paused = true;
    std::unique_ptr<ServeDaemon> daemon;
    {
        FatalThrowScope scope;
        try {
            daemon = std::make_unique<ServeDaemon>(opt);
        } catch (const FatalError &err) {
            FAIL() << "recovery daemon fataled: " << err.what();
        }
    }
    for (std::size_t i = 0; i < run.acked.size(); ++i) {
        BatchHandle handle = run.acked[i];
        BatchStatus status;
        std::string error;
        ASSERT_TRUE(daemon->status(handle, status, error)) << error;
        EXPECT_TRUE(status.state == BatchState::Pending ||
                    status.state == BatchState::Cancelled)
            << batchStateName(status.state);
        std::string payload = readFileOr(stateDir + "/batches/" +
                                         hexU64(handle) + ".kv");
        EXPECT_EQ(payload, run.ackedPayloads[i])
            << "handle " << hexU64(handle);
    }
    // Survivors of failed submits may be parked, but never crash the
    // daemon and never reach a runnable state with torn bytes.
    for (BatchHandle handle : daemon->handles()) {
        BatchStatus status;
        std::string error;
        ASSERT_TRUE(daemon->status(handle, status, error));
        EXPECT_TRUE(status.state == BatchState::Pending ||
                    status.state == BatchState::Cancelled ||
                    status.state == BatchState::Degraded)
            << batchStateName(status.state);
    }
    daemon->stop();
}

} // namespace

// ---------------------------------------------------------------------------
// The enumerator.
// ---------------------------------------------------------------------------

TEST(IoFaultEnumeration, EveryFaultPointRecoversByteIdentical)
{
    registerAllWorkloads();

    // Never-faulted baselines.
    std::string journalBase = tmpPath("enum_journal_base.jsonl");
    std::remove(journalBase.c_str());
    ASSERT_TRUE(runJournalWorkload(realIoEnv(), journalBase));
    std::string journalRef = readFileOr(journalBase);
    ASSERT_FALSE(journalRef.empty());

    std::string storeBase = tmpPath("enum_store_base");
    removeTree(storeBase);
    ASSERT_TRUE(runStoreWorkload(realIoEnv(), storeBase));
    std::string storeRef = canonicalStoreBytes(storeBase);
    ASSERT_FALSE(storeRef.empty());

    // Counting passes: an inert plan injects nothing and only counts.
    IoFaultPlan inert;
    std::string countJournal = tmpPath("enum_journal_count.jsonl");
    std::remove(countJournal.c_str());
    FaultyIoEnv journalCounter(inert);
    ASSERT_TRUE(runJournalWorkload(journalCounter, countJournal));
    EXPECT_EQ(readFileOr(countJournal), journalRef)
        << "inert FaultyIoEnv must be a pure passthrough";
    std::uint64_t journalOps = journalCounter.opCount();

    std::string countStore = tmpPath("enum_store_count");
    removeTree(countStore);
    FaultyIoEnv storeCounter(inert);
    ASSERT_TRUE(runStoreWorkload(storeCounter, countStore));
    EXPECT_EQ(canonicalStoreBytes(countStore), storeRef);
    std::uint64_t storeOps = storeCounter.opCount();

    std::string countServe = tmpPath("enum_serve_count");
    removeTree(countServe);
    FaultyIoEnv serveCounter(inert);
    DaemonRun serveRef = runDaemonWorkload(serveCounter, countServe);
    ASSERT_TRUE(serveRef.constructed);
    ASSERT_EQ(serveRef.acked.size(), daemonPayloads().size());
    std::uint64_t serveOps = serveCounter.opCount();

    // The acceptance floor: the three workloads together expose at
    // least 100 distinct fault points.
    EXPECT_GE(journalOps + storeOps + serveOps, 100u)
        << "journal=" << journalOps << " store=" << storeOps
        << " serve=" << serveOps;

    // Fail every journal op in turn.
    for (std::uint64_t op = 1; op <= journalOps; ++op) {
        std::string path = tmpPath("enum_journal_fault.jsonl");
        std::remove(path.c_str());
        IoFaultPlan plan;
        plan.seed = 0xf417 + op;
        plan.failAtOp = op;
        FaultyIoEnv env(plan);
        runJournalWorkload(env, path); // may fail; must not die
        EXPECT_EQ(env.stats().injectedFailures, 1u) << "op " << op;
        EXPECT_EQ(recoverJournal(path), journalRef)
            << "journal fault at op " << op;
        std::remove(path.c_str());
    }

    // Fail every store op in turn.
    for (std::uint64_t op = 1; op <= storeOps; ++op) {
        std::string dir = tmpPath("enum_store_fault");
        removeTree(dir);
        IoFaultPlan plan;
        plan.seed = 0x5704e + op;
        plan.failAtOp = op;
        FaultyIoEnv env(plan);
        runStoreWorkload(env, dir);
        EXPECT_EQ(env.stats().injectedFailures, 1u) << "op " << op;
        EXPECT_EQ(recoverStore(dir), storeRef)
            << "store fault at op " << op;
        removeTree(dir);
    }

    // Fail every daemon op in turn.
    for (std::uint64_t op = 1; op <= serveOps; ++op) {
        std::string dir = tmpPath("enum_serve_fault");
        removeTree(dir);
        IoFaultPlan plan;
        plan.seed = 0xda30 + op;
        plan.failAtOp = op;
        FaultyIoEnv env(plan);
        DaemonRun run = runDaemonWorkload(env, dir);
        EXPECT_EQ(env.stats().injectedFailures, 1u) << "op " << op;
        if (run.constructed && run.acked.size() <
                                   daemonPayloads().size())
            EXPECT_GT(run.stats.ioErrors, 0u) << "op " << op;
        verifyDaemonRecovery(dir, run);
        removeTree(dir);
    }

    std::remove(journalBase.c_str());
    std::remove(countJournal.c_str());
    removeTree(storeBase);
    removeTree(countStore);
    removeTree(countServe);
}

// ---------------------------------------------------------------------------
// ENOSPC battery: cap the cumulative write budget at awkward
// boundaries and demand the same recovery contract from each layer.
// ---------------------------------------------------------------------------

TEST(IoFaultEnospc, JournalRecoversByteIdentical)
{
    std::string base = tmpPath("enospc_journal_base.jsonl");
    std::remove(base.c_str());
    ASSERT_TRUE(runJournalWorkload(realIoEnv(), base));
    std::string ref = readFileOr(base);
    std::uint64_t total = ref.size();
    std::uint64_t header = ref.find('\n') + 1;

    std::vector<std::uint64_t> caps = {0,          header - 2,
                                       header + 7, total / 2,
                                       total - 3,  total + 1000};
    for (std::uint64_t cap : caps) {
        std::string path = tmpPath("enospc_journal.jsonl");
        std::remove(path.c_str());
        IoFaultPlan plan;
        plan.seed = 0xe205bc;
        plan.enospcAfterBytes = cap;
        FaultyIoEnv env(plan);
        runJournalWorkload(env, path);
        EXPECT_EQ(recoverJournal(path), ref) << "cap " << cap;
        std::remove(path.c_str());
    }
    std::remove(base.c_str());
}

TEST(IoFaultEnospc, StoreRecoversCleanAndByteIdentical)
{
    std::string base = tmpPath("enospc_store_base");
    removeTree(base);
    ASSERT_TRUE(runStoreWorkload(realIoEnv(), base));
    std::string ref = canonicalStoreBytes(base);
    std::uint64_t total = 0;
    {
        StoreSurvey survey = surveyStore(base);
        total = survey.bytes;
    }

    std::vector<std::uint64_t> caps = {0, 16, total / 3, total / 2,
                                       total - 5};
    for (std::uint64_t cap : caps) {
        std::string dir = tmpPath("enospc_store");
        removeTree(dir);
        IoFaultPlan plan;
        plan.seed = 0xe205bd;
        plan.enospcAfterBytes = cap;
        FaultyIoEnv env(plan);
        runStoreWorkload(env, dir);
        // Whatever ENOSPC left behind must already be verify-clean:
        // disabled shards truncate their tail instead of tearing it.
        StoreSurvey damaged = surveyStore(dir);
        EXPECT_EQ(damaged.corruptRecords, 0u) << "cap " << cap;
        EXPECT_EQ(damaged.tornTails, 0u) << "cap " << cap;
        EXPECT_EQ(damaged.badHeaders, 0u) << "cap " << cap;
        EXPECT_EQ(recoverStore(dir), ref) << "cap " << cap;
        removeTree(dir);
    }
    removeTree(base);
}

TEST(IoFaultEnospc, DaemonSurfacesErrorsAndKeepsAckedPayloads)
{
    bool sawRejectedSubmit = false;
    for (std::uint64_t cap : {4ull, 30ull, 150ull, 1ull << 20}) {
        std::string dir = tmpPath("enospc_serve");
        removeTree(dir);
        IoFaultPlan plan;
        plan.seed = 0xe205be;
        plan.enospcAfterBytes = cap;
        FaultyIoEnv env(plan);
        DaemonRun run = runDaemonWorkload(env, dir);
        if (run.constructed &&
            run.acked.size() < daemonPayloads().size()) {
            sawRejectedSubmit = true;
            EXPECT_GT(run.stats.ioErrors, 0u) << "cap " << cap;
        }
        verifyDaemonRecovery(dir, run);
        removeTree(dir);
    }
    EXPECT_TRUE(sawRejectedSubmit)
        << "no cap produced a failed-but-surfaced submit";
}

// ---------------------------------------------------------------------------
// Satellite invariants.
// ---------------------------------------------------------------------------

TEST(IoFaultStore, WriteErrorDisablesShardWithoutCorruption)
{
    std::string dir = tmpPath("store_write_error");
    removeTree(dir);
    std::vector<ExperimentPoint> grid = journalGrid();

    // Session 1 (healthy): one record in shard 0x01.
    {
        std::unique_ptr<ResultStore> store =
            ResultStore::open(dir, storeFp);
        store->insert(0x01, makeResult(grid[0], 0));
    }
    std::string before = canonicalStoreBytes(dir);

    // Session 2: the disk is full from the first byte.
    {
        IoFaultPlan plan;
        plan.enospcAfterBytes = 0;
        FaultyIoEnv env(plan);
        std::unique_ptr<ResultStore> store =
            ResultStore::open(dir, storeFp, StoreOptions{}, env);
        store->insert(0x101, makeResult(grid[1], 1)); // same shard
        EXPECT_EQ(store->stats().writeErrors, 1u);
        store->insert(0x201, makeResult(grid[2], 2)); // declined
        EXPECT_EQ(store->stats().writeErrors, 1u)
            << "a disabled shard declines silently";
        store->insert(0x42, makeResult(grid[3], 3)); // new shard
        EXPECT_EQ(store->stats().writeErrors, 2u);
        ExperimentResult out;
        EXPECT_TRUE(store->lookup(0x01, out)) << "reads must survive";
        EXPECT_EQ(store->recordCount(), 1u);
    }

    // No tail corruption: the surviving bytes are exactly session 1's.
    EXPECT_EQ(canonicalStoreBytes(dir), before);
    EXPECT_TRUE(surveyStore(dir).clean());
    removeTree(dir);
}

TEST(IoFaultJournal, SyncFailureDegradesWithErrnoDetail)
{
    std::string path = tmpPath("journal_sync_fail.jsonl");
    std::remove(path.c_str());
    std::vector<ExperimentPoint> grid = journalGrid();

    // create = openTrunc + header write + header sync (ops 1-3);
    // the first commit's fsync is op 5.
    IoFaultPlan plan;
    plan.failAtOp = 5;
    FaultyIoEnv env(plan);
    std::unique_ptr<RunJournal> journal =
        RunJournal::create(path, grid, env);
    std::string headerOnly = readFileOr(path);

    PointOutcome out = makeOutcome(grid[0], 0);
    EXPECT_FALSE(journal->commit(0, out));
    EXPECT_TRUE(journal->writeFailed());
    EXPECT_FALSE(journal->writeError().empty());
    EXPECT_EQ(journal->writeError(), IoStatus::failure(EIO).text());

    // Inert from the first error on: later commits are refused
    // without touching the file, and the unsynced record was
    // truncated away — the file is still the clean header prefix.
    PointOutcome next = makeOutcome(grid[1], 1);
    EXPECT_FALSE(journal->commit(1, next));
    journal.reset();
    EXPECT_EQ(readFileOr(path), headerOnly);

    EXPECT_EQ(recoverJournal(path), [&] {
        std::string ref = tmpPath("journal_sync_ref.jsonl");
        std::remove(ref.c_str());
        runJournalWorkload(realIoEnv(), ref);
        std::string bytes = readFileOr(ref);
        std::remove(ref.c_str());
        return bytes;
    }());
    std::remove(path.c_str());
}

TEST(IoFaultPowerCut, DroppedUnsyncedBytesRecoverClean)
{
    std::string base = tmpPath("powercut_base");
    removeTree(base);
    ASSERT_TRUE(runStoreWorkload(realIoEnv(), base));
    std::string ref = canonicalStoreBytes(base);

    for (std::uint64_t seed : {1ull, 2ull, 3ull, 4ull}) {
        std::string dir = tmpPath("powercut_store");
        removeTree(dir);
        IoFaultPlan plan;
        plan.seed = seed;
        plan.powerCut = true;
        FaultyIoEnv env(plan);
        ASSERT_TRUE(runStoreWorkload(env, dir));
        env.powerCut();
        // The cut may leave a torn trailing record; reopening must
        // absorb it (that is the no-torn-record-served contract) and
        // a refill must land on the reference bytes.
        EXPECT_EQ(recoverStore(dir), ref) << "seed " << seed;
        removeTree(dir);
    }
    removeTree(base);
}

TEST(IoFaultBatch, JournalFaultRecoversByteIdenticalAcrossJobs)
{
    registerAllWorkloads();
    ExperimentOptions base;
    base.size = SizeClass::Tiny;
    base.runs = 2;
    base.baseSeed = 42;
    std::vector<TransferMode> modes(allTransferModes.begin(),
                                    allTransferModes.end());
    std::vector<ExperimentPoint> grid =
        ParallelRunner::expandGrid({"saxpy"}, modes, 1, base);

    // Uninterrupted serial reference.
    std::string refPath = tmpPath("batch_ref.jsonl");
    std::remove(refPath.c_str());
    {
        RunPolicy policy;
        std::unique_ptr<RunJournal> journal =
            RunJournal::create(refPath, grid);
        policy.journal = journal.get();
        ParallelRunner serial(SystemConfig::a100Epyc(), 1);
        BatchResult reference = serial.runPoints(grid, policy);
        ASSERT_TRUE(reference.allOk());
    }
    std::string refBytes = readFileOr(refPath);
    ASSERT_FALSE(refBytes.empty());

    for (unsigned jobs : {1u, 4u}) {
        std::string path =
            tmpPath("batch_fault_j" + std::to_string(jobs) + ".jsonl");
        std::remove(path.c_str());

        // Fault the second record's write (op 6): the journal goes
        // inert mid-batch but the batch itself must finish.
        IoFaultPlan plan;
        plan.failAtOp = 6;
        FaultyIoEnv env(plan);
        {
            RunPolicy policy;
            std::unique_ptr<RunJournal> journal =
                RunJournal::create(path, grid, env);
            policy.journal = journal.get();
            ParallelRunner runner(SystemConfig::a100Epyc(), jobs);
            BatchResult result = runner.runPoints(grid, policy);
            EXPECT_TRUE(result.allOk())
                << "journal faults degrade, never kill";
            EXPECT_TRUE(journal->writeFailed());
            EXPECT_GT(result.metrics.journalErrors, 0u);
        }

        // Resume on the real filesystem and finish the batch.
        {
            std::unique_ptr<RunJournal> journal =
                RunJournal::resume(path, grid);
            EXPECT_EQ(journal->restoredCount(), 1u);
            RunPolicy policy;
            policy.journal = journal.get();
            ParallelRunner runner(SystemConfig::a100Epyc(), jobs);
            BatchResult resumed = runner.runPoints(grid, policy);
            EXPECT_TRUE(resumed.allOk());
            EXPECT_EQ(resumed.metrics.journalErrors, 0u);
        }
        EXPECT_EQ(readFileOr(path), refBytes) << "jobs " << jobs;
        std::remove(path.c_str());
    }
    std::remove(refPath.c_str());
}

TEST(IoFaultDeathTest, UnwindingPastFailedWritersDoesNotTerminate)
{
    // If any destructor on these paths called fatal() (or threw)
    // while a FatalError was unwinding, the child would die on
    // std::terminate instead of reaching exit(0).
    EXPECT_EXIT(
        {
            std::vector<ExperimentPoint> grid = journalGrid();
            std::string dir = tmpPath("death_store");
            removeTree(dir);

            // Journal creation fatals on its header sync while the
            // just-opened file handle unwinds.
            {
                IoFaultPlan plan;
                plan.failSyncs = true;
                FaultyIoEnv env(plan);
                try {
                    FatalThrowScope scope;
                    std::unique_ptr<RunJournal> journal =
                        RunJournal::create(
                            tmpPath("death_journal.jsonl"), grid,
                            env);
                } catch (const FatalError &) {
                }
            }

            // A store whose every write fails is destroyed while a
            // FatalError unwinds through its owning scope; the meta
            // rewrite failure must warn, not die.
            {
                IoFaultPlan plan;
                plan.enospcAfterBytes = 0;
                FaultyIoEnv env(plan);
                try {
                    FatalThrowScope scope;
                    std::unique_ptr<ResultStore> store =
                        ResultStore::open(dir, storeFp,
                                          StoreOptions{}, env);
                    ExperimentResult result =
                        makeResult(grid[0], 0);
                    store->insert(0x01, result);
                    fatal("synthetic failure with a live store");
                } catch (const FatalError &) {
                }
            }
            removeTree(dir);
            std::exit(0);
        },
        ::testing::ExitedWithCode(0), "");
}

TEST(IoFaultEnv, SaltAndPlanAreDeterministic)
{
    EXPECT_EQ(ioFaultSalt(1, 2), ioFaultSalt(1, 2));
    EXPECT_NE(ioFaultSalt(1, 2), ioFaultSalt(1, 3));
    EXPECT_NE(ioFaultSalt(1, 2), ioFaultSalt(2, 2));

    // Two identical faulted runs leave identical bytes behind —
    // short-write prefixes included.
    std::string a = tmpPath("det_a.jsonl");
    std::string b = tmpPath("det_b.jsonl");
    std::remove(a.c_str());
    std::remove(b.c_str());
    IoFaultPlan plan;
    plan.seed = 99;
    plan.failAtOp = 8;
    {
        FaultyIoEnv env(plan);
        runJournalWorkload(env, a);
    }
    {
        FaultyIoEnv env(plan);
        runJournalWorkload(env, b);
    }
    EXPECT_EQ(readFileOr(a), readFileOr(b));
    std::remove(a.c_str());
    std::remove(b.c_str());
}

} // namespace uvmasync
