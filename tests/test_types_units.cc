/**
 * @file
 * Unit tests for the Tick/Bytes base types and the Bandwidth /
 * Frequency unit classes.
 */

#include <gtest/gtest.h>

#include "common/types.hh"
#include "common/units.hh"

namespace uvmasync
{
namespace
{

TEST(Types, TickConstructionLadder)
{
    EXPECT_EQ(picoseconds(1), 1u);
    EXPECT_EQ(nanoseconds(1), 1000u);
    EXPECT_EQ(microseconds(1), nanoseconds(1000));
    EXPECT_EQ(milliseconds(1), microseconds(1000));
    EXPECT_EQ(seconds(1), milliseconds(1000));
}

TEST(Types, TickInspectionRoundTrip)
{
    EXPECT_DOUBLE_EQ(toNanoseconds(nanoseconds(123)), 123.0);
    EXPECT_DOUBLE_EQ(toMicroseconds(microseconds(7)), 7.0);
    EXPECT_DOUBLE_EQ(toMilliseconds(milliseconds(9)), 9.0);
    EXPECT_DOUBLE_EQ(toSeconds(seconds(2)), 2.0);
}

TEST(Types, ByteHelpers)
{
    EXPECT_EQ(kib(1), 1024u);
    EXPECT_EQ(mib(1), 1024u * 1024u);
    EXPECT_EQ(gib(1), 1024u * 1024u * 1024u);
    EXPECT_EQ(kib(1024), mib(1));
    EXPECT_EQ(mib(1024), gib(1));
}

TEST(Bandwidth, TransferTimeBasics)
{
    Bandwidth bw = Bandwidth::fromGBps(1.0); // 1e9 B/s
    // 1e9 bytes at 1e9 B/s = 1 s.
    EXPECT_EQ(bw.transferTime(1000000000ull), seconds(1));
    // Zero bytes takes zero time.
    EXPECT_EQ(bw.transferTime(0), 0u);
}

TEST(Bandwidth, TransferTimeRoundsUp)
{
    Bandwidth bw = Bandwidth::fromBytesPerSecond(3e12); // 3 B/ps
    // 1 byte needs 1/3 ps; must round up to 1 ps.
    EXPECT_EQ(bw.transferTime(1), 1u);
}

TEST(Bandwidth, InvalidBandwidthNeverFinishes)
{
    Bandwidth bw;
    EXPECT_FALSE(bw.valid());
    EXPECT_EQ(bw.transferTime(1), maxTick);
}

TEST(Bandwidth, ScaledChangesRate)
{
    Bandwidth bw = Bandwidth::fromGBps(10.0);
    Bandwidth half = bw.scaled(0.5);
    EXPECT_DOUBLE_EQ(half.gbps(), 5.0);
    EXPECT_GE(half.transferTime(mib(1)), bw.transferTime(mib(1)));
}

TEST(Bandwidth, MonotoneInBytes)
{
    Bandwidth bw = Bandwidth::fromGBps(26.0);
    Tick prev = 0;
    for (Bytes b = 1; b < mib(8); b *= 7) {
        Tick t = bw.transferTime(b);
        EXPECT_GE(t, prev) << "bytes=" << b;
        prev = t;
    }
}

TEST(Frequency, CyclesToTicks)
{
    Frequency f = Frequency::fromGHz(1.0); // 1000 ps period
    EXPECT_DOUBLE_EQ(f.periodPs(), 1000.0);
    EXPECT_EQ(f.cyclesToTicks(1.0), 1000u);
    EXPECT_EQ(f.cyclesToTicks(2.5), 2500u);
}

TEST(Frequency, TicksToCyclesInverse)
{
    Frequency f = Frequency::fromMHz(1410.0);
    double cycles = 1234.0;
    Tick t = f.cyclesToTicks(cycles);
    EXPECT_NEAR(f.ticksToCycles(t), cycles, 0.01);
}

TEST(Frequency, InvalidFrequency)
{
    Frequency f;
    EXPECT_FALSE(f.valid());
    EXPECT_EQ(f.cyclesToTicks(1.0), maxTick);
}

} // namespace
} // namespace uvmasync
