/**
 * @file
 * Tracer core unit tests plus exporter golden files.
 *
 * Covers the recording rules (lane registration, zero-length span
 * dropping, category filtering), the structural checker's accept and
 * reject cases, the compile-time no-op sink, unit-level checks of the
 * Chrome and metrics exporters on hand-built traces, and golden-file
 * comparisons of full saxpy@tiny exports under the explicit-memcpy
 * and UVM modes.
 *
 * Updating the goldens after an *intentional* change to the tracer,
 * the instrumentation hooks, or the timing model:
 *
 *     ./build/tests/test_trace --update-golden
 *     git diff tests/golden/   # review every changed span!
 */

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "core/experiment.hh"
#include "trace/chrome_export.hh"
#include "trace/metrics.hh"
#include "trace/trace.hh"
#include "trace/trace_check.hh"
#include "workloads/registry.hh"

namespace uvmasync
{
namespace
{

bool gUpdateGolden = false;

std::string
goldenPath(const std::string &name)
{
    return std::string(UVMASYNC_GOLDEN_DIR) + "/" + name;
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return {};
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
}

void
compareOrUpdate(const std::string &name, const std::string &actual)
{
    std::string path = goldenPath(name);
    if (gUpdateGolden) {
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        ASSERT_TRUE(out) << "cannot write golden " << path;
        out << actual;
        SUCCEED() << "updated " << path;
        return;
    }
    std::string expected = readFile(path);
    ASSERT_FALSE(expected.empty())
        << "golden " << path << " is missing or empty; regenerate "
        << "with: test_trace --update-golden";
    EXPECT_EQ(expected, actual)
        << "exported trace changed. If intentional, regenerate with "
        << "--update-golden and review the diff.";
}

// --- Recording rules ---------------------------------------------------

TEST(TracerCore, LanesAreDenseAndStable)
{
    Tracer t;
    EXPECT_EQ(t.lane("pcie.h2d"), 0u);
    EXPECT_EQ(t.lane("gpu"), 1u);
    EXPECT_EQ(t.lane("pcie.h2d"), 0u); // get-or-create is idempotent
    EXPECT_EQ(t.laneCount(), 2u);
    EXPECT_EQ(t.findLane("gpu"), 1u);
    EXPECT_EQ(t.findLane("nope"), t.laneCount());
    EXPECT_EQ(t.laneNames()[0], "pcie.h2d");
}

TEST(TracerCore, ZeroLengthSpansAreDropped)
{
    Tracer t;
    std::uint32_t lane = t.lane("gpu");
    t.span(TraceCategory::Kernel, TraceName::TileCompute, lane, 100,
           100);
    EXPECT_TRUE(t.empty());
    // The same moment recorded as an instant is kept.
    t.instant(TraceCategory::Kernel, TraceName::DataStall, lane, 100);
    ASSERT_EQ(t.eventCount(), 1u);
    EXPECT_TRUE(t.events()[0].isInstant());
    EXPECT_EQ(t.events()[0].duration(), 0u);
}

TEST(TracerCore, CategoryFilterDropsAtRecordTime)
{
    Tracer t;
    t.setCategoryFilter(traceCategoryBit(TraceCategory::Pcie));
    EXPECT_TRUE(t.enabled(TraceCategory::Pcie));
    EXPECT_FALSE(t.enabled(TraceCategory::Kernel));

    std::uint32_t lane = t.lane("x");
    t.span(TraceCategory::Kernel, TraceName::TileCompute, lane, 0, 10);
    t.instant(TraceCategory::Fault, TraceName::FaultRaise, lane, 5);
    EXPECT_TRUE(t.empty());
    t.span(TraceCategory::Pcie, TraceName::PinnedCopy, lane, 0, 10);
    EXPECT_EQ(t.eventCount(), 1u);
}

TEST(TracerCore, WallEndTracksLatestEvent)
{
    Tracer t;
    EXPECT_EQ(t.wallEnd(), 0u);
    std::uint32_t lane = t.lane("x");
    t.span(TraceCategory::Pcie, TraceName::PinnedCopy, lane, 0, 500);
    t.instant(TraceCategory::Sim, TraceName::EventDispatch, lane, 900);
    EXPECT_EQ(t.wallEnd(), 900u);
    t.clear();
    EXPECT_TRUE(t.empty());
    EXPECT_EQ(t.laneCount(), 0u);
    EXPECT_EQ(t.wallEnd(), 0u);
}

TEST(TracerCore, SlugTablesCoverEveryOrdinal)
{
    EXPECT_STREQ(traceCategoryName(TraceCategory::Pcie), "pcie");
    EXPECT_STREQ(traceCategoryName(TraceCategory::Phase), "phase");
    EXPECT_STREQ(traceNameStr(TraceName::FaultBatch), "fault_batch");
    EXPECT_STREQ(traceNameStr(TraceName::PhaseFree), "free");
}

// --- Structural checker ------------------------------------------------

TEST(TraceCheck, AcceptsProperNesting)
{
    Tracer t;
    std::uint32_t a = t.lane("a");
    std::uint32_t b = t.lane("b");
    t.span(TraceCategory::Phase, TraceName::PhaseKernel, a, 0, 100);
    t.span(TraceCategory::Kernel, TraceName::KernelLaunch, a, 0, 40);
    t.span(TraceCategory::Kernel, TraceName::TileCompute, a, 40, 100);
    t.span(TraceCategory::Pcie, TraceName::PinnedCopy, b, 10, 90);
    EXPECT_TRUE(checkTrace(t).ok);
}

TEST(TraceCheck, RejectsOutOfOrderStarts)
{
    Tracer t;
    std::uint32_t a = t.lane("a");
    t.span(TraceCategory::Pcie, TraceName::PinnedCopy, a, 50, 60);
    t.span(TraceCategory::Pcie, TraceName::PinnedCopy, a, 10, 20);
    TraceCheckResult res = checkTrace(t);
    EXPECT_FALSE(res.ok);
    EXPECT_NE(res.first().find("predecessor"), std::string::npos);
}

TEST(TraceCheck, RejectsHalfOverlap)
{
    Tracer t;
    std::uint32_t a = t.lane("a");
    t.span(TraceCategory::Pcie, TraceName::PinnedCopy, a, 0, 50);
    t.span(TraceCategory::Pcie, TraceName::PinnedCopy, a, 25, 75);
    EXPECT_FALSE(checkTrace(t).ok);

    // Same windows at equal starts, inner-first: also a half-overlap
    // (the outermost span must be recorded first).
    Tracer u;
    std::uint32_t c = u.lane("c");
    u.span(TraceCategory::Pcie, TraceName::PinnedCopy, c, 0, 40);
    u.span(TraceCategory::Pcie, TraceName::PinnedCopy, c, 0, 100);
    EXPECT_FALSE(checkTrace(u).ok);
}

TEST(TraceCheck, InstantsAreExemptFromOrdering)
{
    Tracer t;
    std::uint32_t a = t.lane("a");
    t.span(TraceCategory::Fault, TraceName::FaultBatch, a, 100, 200);
    // A raise landing inside the previous batch's window, and one
    // before it, are both by-design legal.
    t.instant(TraceCategory::Fault, TraceName::FaultRaise, a, 150);
    t.instant(TraceCategory::Fault, TraceName::FaultRaise, a, 10);
    t.span(TraceCategory::Fault, TraceName::FaultBatch, a, 200, 300);
    EXPECT_TRUE(checkTrace(t).ok);
}

TEST(TraceCheck, DisjointLanesDoNotInteract)
{
    Tracer t;
    std::uint32_t a = t.lane("a");
    std::uint32_t b = t.lane("b");
    // Interleaved recording across lanes with overlapping windows is
    // fine; only same-lane half-overlaps are violations.
    t.span(TraceCategory::Pcie, TraceName::PinnedCopy, a, 0, 50);
    t.span(TraceCategory::Pcie, TraceName::Writeback, b, 25, 75);
    t.span(TraceCategory::Pcie, TraceName::PinnedCopy, a, 60, 70);
    EXPECT_TRUE(checkTrace(t).ok);
}

// --- Compile-time no-op sink -------------------------------------------

/** An instrumented call site folded over the no-op sink. */
constexpr bool
nullSinkFoldsAway()
{
    if (NullTraceSink::enabled(TraceCategory::Pcie))
        return false;
    NullTraceSink::span(TraceCategory::Pcie, TraceName::PinnedCopy, 0,
                        0, 100, 42);
    NullTraceSink::instant(TraceCategory::Fault, TraceName::FaultRaise,
                           0, 5);
    return true;
}

// Evaluated entirely at compile time: the sink is stateless, every
// hook is constexpr, and enabled() is a constant false — an
// instrumented template body instantiated with NullTraceSink
// generates no code.
static_assert(std::is_empty_v<NullTraceSink>);
static_assert(!NullTraceSink::enabled(TraceCategory::Kernel));
static_assert(nullSinkFoldsAway());

TEST(NullSink, CompilesAwayAtConstexprTime)
{
    EXPECT_TRUE(nullSinkFoldsAway());
}

/**
 * The bench harness's probe kernel in miniature: a serial xorshift
 * chain, optionally instrumented with a span + instant per step.
 * Constant-evaluating both variants and asserting bit-identical
 * results proves the sink's hooks have no observable side effects on
 * the surrounding computation — the runtime <1% overhead gate in
 * tools/uvmasync_bench.cc then bounds what codegen adds on top.
 */
template <bool WithSink>
constexpr std::uint64_t
probeChain(std::uint64_t steps)
{
    std::uint64_t x = 0x9e3779b97f4a7c15ull;
    for (std::uint64_t i = 0; i < steps; ++i) {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        if constexpr (WithSink) {
            if (NullTraceSink::enabled(TraceCategory::Kernel)) {
                NullTraceSink::span(TraceCategory::Kernel,
                                    TraceName::TileCompute, 0, i,
                                    i + 1, x);
            }
            NullTraceSink::instant(TraceCategory::Kernel,
                                   TraceName::KernelLaunch, 0, i, x);
        }
    }
    return x;
}

// Bit-identical results at compile time: span/instant emission over
// the null sink cannot perturb the instrumented computation.
static_assert(probeChain<true>(257) == probeChain<false>(257));
static_assert(probeChain<true>(1) == probeChain<false>(1));

TEST(NullSink, InstrumentedProbeMatchesPlainProbe)
{
    // Same property at runtime, over a longer chain than the
    // constant evaluator comfortably unrolls.
    EXPECT_EQ(probeChain<true>(100000), probeChain<false>(100000));
}

// --- Exporter units ----------------------------------------------------

Tracer
handBuiltTrace()
{
    Tracer t;
    std::uint32_t h2d = t.lane("pcie.h2d");
    std::uint32_t gpu = t.lane("gpu.kernel");
    std::uint32_t fault = t.lane("uvm.fault");
    // Two link windows, the second queued 100 ps (arg2).
    t.span(TraceCategory::Pcie, TraceName::PinnedCopy, h2d, 0, 1000,
           4096, 0);
    t.span(TraceCategory::Pcie, TraceName::DemandMigration, h2d, 1000,
           2000, 2048, 100);
    // Kernel phase overlapping the second link window halfway.
    t.span(TraceCategory::Phase, TraceName::PhaseKernel, gpu, 1500,
           3500);
    // A 3-fault batch and its raises.
    t.instant(TraceCategory::Fault, TraceName::FaultRaise, fault, 900);
    t.instant(TraceCategory::Fault, TraceName::FaultRaise, fault, 950);
    t.instant(TraceCategory::Fault, TraceName::FaultRaise, fault, 980);
    t.span(TraceCategory::Fault, TraceName::FaultBatch, fault, 900,
           1400, 3);
    // Two prefetched chunks: one hit, one evicted untouched.
    t.instant(TraceCategory::Prefetch, TraceName::PrefetchIssue, h2d,
              400, 1);
    t.instant(TraceCategory::Prefetch, TraceName::PrefetchIssue, h2d,
              500, 1);
    t.instant(TraceCategory::Prefetch, TraceName::PrefetchHit, h2d,
              1200);
    t.instant(TraceCategory::Prefetch, TraceName::PrefetchWaste, h2d,
              3000);
    return t;
}

TEST(ChromeExport, EmitsCompleteInstantAndMetadataEvents)
{
    Tracer t = handBuiltTrace();
    std::ostringstream out;
    writeChromeTrace(out, t, "unit");
    std::string json = out.str();

    EXPECT_NE(json.find("\"traceEvents\": ["), std::string::npos);
    EXPECT_NE(json.find("\"displayTimeUnit\": \"ms\""),
              std::string::npos);
    // One process_name metadata row per lane, named job:lane.
    EXPECT_NE(json.find("{\"name\": \"process_name\", \"ph\": \"M\", "
                        "\"pid\": 1, \"tid\": 0, \"args\": {\"name\": "
                        "\"unit:pcie.h2d\"}}"),
              std::string::npos);
    EXPECT_NE(json.find("\"unit:uvm.fault\""), std::string::npos);
    // Spans are complete events with fixed-point microsecond ts/dur.
    EXPECT_NE(json.find("{\"name\": \"pinned_copy\", \"cat\": "
                        "\"pcie\", \"ph\": \"X\", \"ts\": 0.000000, "
                        "\"dur\": 0.001000, \"pid\": 1, \"tid\": 0, "
                        "\"args\": {\"arg\": 4096}}"),
              std::string::npos);
    // Queue wait rides along as arg2 when non-zero.
    EXPECT_NE(json.find("\"arg2\": 100"), std::string::npos);
    // Instants carry thread scope.
    EXPECT_NE(json.find("\"ph\": \"i\""), std::string::npos);
    EXPECT_NE(json.find("\"s\": \"t\""), std::string::npos);
}

TEST(ChromeExport, MergedJobsGetDisjointPidRanges)
{
    Tracer a = handBuiltTrace();
    Tracer b = handBuiltTrace();
    std::ostringstream out;
    writeChromeTrace(out, {ChromeTraceJob{"first", &a},
                           ChromeTraceJob{"second", &b}});
    std::string json = out.str();
    // First job claims pids 1..3 (three lanes); second starts at 4.
    EXPECT_NE(json.find("\"pid\": 1, \"tid\": 0, \"args\": {\"name\": "
                        "\"first:pcie.h2d\"}"),
              std::string::npos);
    EXPECT_NE(json.find("\"pid\": 4, \"tid\": 0, \"args\": {\"name\": "
                        "\"second:pcie.h2d\"}"),
              std::string::npos);
    EXPECT_EQ(json.find("\"pid\": 7"), std::string::npos);
}

TEST(ChromeExport, EscapesLabels)
{
    Tracer t;
    std::uint32_t lane = t.lane("x");
    t.span(TraceCategory::Kernel, TraceName::KernelLaunch, lane, 0, 10,
           0, 0, "say \"hi\"\n");
    std::ostringstream out;
    writeChromeTrace(out, t, "esc");
    EXPECT_NE(out.str().find("\"label\": \"say \\\"hi\\\"\\n\""),
              std::string::npos);
}

TEST(TraceMetrics, FoldsHandBuiltTrace)
{
    Tracer t = handBuiltTrace();
    TraceMetrics m = computeTraceMetrics(t);

    EXPECT_EQ(m.wallEndPs, 3500u);
    // pcie.h2d busy = [0,1000) u [1000,2000) = 2000 ps.
    EXPECT_EQ(m.pcieBusyPs, 2000u);
    EXPECT_EQ(m.pcieQueueWaitPs, 100u);

    EXPECT_EQ(m.faultsRaised, 3u);
    EXPECT_EQ(m.faultBatches, 1u);
    EXPECT_EQ(m.faultBatchHist[1], 1u); // 3 faults -> bucket "2-3"

    EXPECT_EQ(m.prefetchIssued, 2u);
    EXPECT_EQ(m.prefetchHits, 1u);
    EXPECT_EQ(m.prefetchWasted, 1u);
    EXPECT_DOUBLE_EQ(m.prefetchAccuracy, 0.5);

    // Kernel phase [1500,3500) overlaps link [1000,2000) by 500 ps.
    EXPECT_EQ(m.kernelBusyPs, 2000u);
    EXPECT_EQ(m.overlapPs, 500u);
    EXPECT_DOUBLE_EQ(m.overlapFraction, 0.25);

    ASSERT_EQ(m.lanes.size(), 3u);
    EXPECT_EQ(m.lanes[0].name, "pcie.h2d");
    EXPECT_EQ(m.lanes[0].busyPs, 2000u);
    EXPECT_EQ(m.lanes[0].spans, 2u);
    EXPECT_DOUBLE_EQ(m.lanes[0].utilization, 2000.0 / 3500.0);
}

TEST(TraceMetrics, BucketLabelsAndCsvShape)
{
    EXPECT_EQ(faultBatchBucketLabel(0), "1");
    EXPECT_EQ(faultBatchBucketLabel(1), "2-3");
    EXPECT_EQ(faultBatchBucketLabel(faultBatchBuckets - 1), ">=128");

    Tracer t = handBuiltTrace();
    std::ostringstream out;
    writeTraceMetricsCsv(out, computeTraceMetrics(t));
    std::string csv = out.str();
    EXPECT_EQ(csv.rfind("metric,key,value\n", 0), 0u);
    EXPECT_NE(csv.find("pcie_queue_wait_ps,,100"), std::string::npos);
    EXPECT_NE(csv.find("prefetch_accuracy,,0.500000"),
              std::string::npos);
    EXPECT_NE(csv.find("fault_batch_hist,2-3,1"), std::string::npos);
}

// --- Golden exports ----------------------------------------------------

ExperimentResult
tracedSaxpy(TransferMode mode)
{
    registerAllWorkloads();
    Experiment e;
    ExperimentOptions opts;
    opts.size = SizeClass::Tiny;
    opts.runs = 1;
    opts.baseSeed = 42;
    opts.trace = true;
    return e.run("saxpy", mode, opts);
}

TEST(TraceGolden, SaxpyTinyStandardChromeJson)
{
    ExperimentResult res = tracedSaxpy(TransferMode::Standard);
    std::ostringstream out;
    writeChromeTrace(out, res.trace, "saxpy/standard");
    compareOrUpdate("trace_saxpy_tiny_standard.json", out.str());
}

TEST(TraceGolden, SaxpyTinyUvmChromeJson)
{
    ExperimentResult res = tracedSaxpy(TransferMode::Uvm);
    std::ostringstream out;
    writeChromeTrace(out, res.trace, "saxpy/uvm");
    compareOrUpdate("trace_saxpy_tiny_uvm.json", out.str());
}

TEST(TraceGolden, SaxpyTinyUvmMetricsCsv)
{
    ExperimentResult res = tracedSaxpy(TransferMode::Uvm);
    std::ostringstream out;
    writeTraceMetricsCsv(out, computeTraceMetrics(res.trace));
    compareOrUpdate("trace_metrics_saxpy_tiny_uvm.csv", out.str());
}

} // namespace
} // namespace uvmasync

int
main(int argc, char **argv)
{
    ::testing::InitGoogleTest(&argc, argv);
    for (int i = 1; i < argc; ++i) {
        if (std::string(argv[i]) == "--update-golden")
            uvmasync::gUpdateGolden = true;
    }
    return RUN_ALL_TESTS();
}
