/**
 * @file
 * Tests for `uvmasync fsck`: auto-detection of what a path holds,
 * the Note/Damage/Fatal severity model and its 0/1/2 exit-code
 * contract, and the repair actions — torn tails truncated back to
 * the last intact line, corrupt suffixes truncated so the clean
 * prefix stays resumable, unrecoverable files quarantined (moved,
 * never deleted), damaged store segments copied to quarantine/ and
 * rewritten via the gc machinery.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include <dirent.h>
#include <sys/stat.h>
#include <unistd.h>

#include "common/logging.hh"
#include "core/parallel_runner.hh"
#include "gpu/transfer_mode.hh"
#include "io/fsck.hh"
#include "io/io_env.hh"
#include "journal/journal.hh"
#include "journal/json.hh"
#include "serve/batch_spec.hh"
#include "serve/daemon.hh"
#include "store/result_store.hh"

namespace uvmasync
{
namespace
{

std::string
tmpPath(const std::string &name)
{
    return ::testing::TempDir() + "uvmasync_fsck_" + name;
}

void
removeTree(const std::string &path)
{
    struct stat st;
    if (::lstat(path.c_str(), &st) != 0)
        return;
    if (!S_ISDIR(st.st_mode)) {
        ::unlink(path.c_str());
        return;
    }
    DIR *dir = ::opendir(path.c_str());
    if (dir) {
        while (struct dirent *ent = ::readdir(dir)) {
            std::string name = ent->d_name;
            if (name == "." || name == "..")
                continue;
            removeTree(path + "/" + name);
        }
        ::closedir(dir);
    }
    ::rmdir(path.c_str());
}

std::string
readFileOr(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in.good())
        return "";
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
}

void
writeFileRaw(const std::string &path, const std::string &contents)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << contents;
    ASSERT_TRUE(out.good()) << path;
}

ExperimentResult
makeResult(const ExperimentPoint &point, std::size_t i)
{
    ExperimentResult r;
    r.workload = point.workload;
    r.mode = point.mode;
    r.size = point.opts.size;
    r.clean.allocPs = 100.0 + static_cast<double>(i);
    r.clean.transferPs = 200.0 + static_cast<double>(i) / 7.0;
    r.clean.kernelPs = 300.0 * (static_cast<double>(i) + 1.0);
    r.counters.faults = i;
    r.counters.bytesH2d = 1024 * (i + 1);
    r.counters.launches = 1;
    return r;
}

PointOutcome
makeOutcome(const ExperimentPoint &point, std::size_t i)
{
    PointOutcome out;
    out.ok = true;
    out.status = PointStatus::Ok;
    out.attempts = 1;
    out.result = makeResult(point, i);
    return out;
}

/** saxpy x 5 modes: a small single-trial grid. */
std::vector<ExperimentPoint>
smallGrid(std::uint64_t seed)
{
    ExperimentOptions base;
    base.size = SizeClass::Tiny;
    base.runs = 2;
    base.baseSeed = seed;
    std::vector<TransferMode> modes(allTransferModes.begin(),
                                    allTransferModes.end());
    return ParallelRunner::expandGrid({"saxpy"}, modes, 1, base);
}

/** A fully-committed journal in @p dir; returns its path. */
std::string
buildJournal(const std::string &dir, const std::string &name,
             const std::vector<ExperimentPoint> &grid,
             std::size_t commits)
{
    realIoEnv().makeDir(dir);
    std::string path = dir + "/" + name;
    std::remove(path.c_str());
    std::unique_ptr<RunJournal> journal =
        RunJournal::create(path, grid);
    for (std::size_t i = 0; i < commits; ++i) {
        PointOutcome out = makeOutcome(grid[i], i);
        EXPECT_TRUE(journal->commit(i, out));
    }
    return path;
}

constexpr std::uint64_t fsckFp = 0xfeedfacecafe0001ull;

/** A populated result store at @p dir; returns its key count. */
std::size_t
buildStore(const std::string &dir)
{
    removeTree(dir);
    std::vector<ExperimentPoint> grid = smallGrid(42);
    std::vector<std::uint64_t> keys = {0x01, 0x42, 0x101,
                                       0x99, 0x142, 0x201};
    std::unique_ptr<ResultStore> store = ResultStore::open(dir, fsckFp);
    for (std::size_t i = 0; i < keys.size(); ++i)
        store->insert(keys[i], makeResult(grid[i % grid.size()], i));
    return keys.size();
}

std::string
batchPayload(int seed)
{
    return "batch.workload = saxpy\nbatch.size = tiny\n"
           "batch.runs = 2\nbatch.seed = " +
           std::to_string(seed) + "\n";
}

/**
 * A daemon state directory with two batches: handle 1 pending,
 * handle 2 cancelled before running. Returns the two handles.
 */
std::vector<BatchHandle>
buildServeDir(const std::string &stateDir)
{
    removeTree(stateDir);
    ServeOptions opt;
    opt.stateDir = stateDir;
    opt.jobs = 1;
    opt.paused = true;
    ServeDaemon daemon(opt);
    std::vector<BatchHandle> handles;
    for (int seed : {7, 8}) {
        std::string error;
        BatchHandle handle = daemon.submit(1, batchPayload(seed),
                                           error);
        EXPECT_NE(handle, 0u) << error;
        handles.push_back(handle);
    }
    BatchState state;
    std::string error;
    EXPECT_TRUE(daemon.cancel(handles[1], state, error)) << error;
    EXPECT_EQ(state, BatchState::Cancelled);
    daemon.stop();
    return handles;
}

std::size_t
countBySeverity(const FsckReport &report, FsckSeverity severity)
{
    std::size_t n = 0;
    for (const FsckFinding &finding : report.findings)
        if (finding.severity == severity)
            ++n;
    return n;
}

} // namespace

// ---------------------------------------------------------------------------
// Standalone journal files.
// ---------------------------------------------------------------------------

TEST(FsckJournal, CleanJournalPasses)
{
    std::string dir = tmpPath("journal_clean");
    removeTree(dir);
    std::vector<ExperimentPoint> grid = smallGrid(42);
    std::string path =
        buildJournal(dir, "run.jsonl", grid, grid.size());

    FsckReport report = fsckPath(path);
    EXPECT_TRUE(report.clean()) << fsckFindingLine(report.findings[0]);
    EXPECT_EQ(report.exitCode(), 0);
    EXPECT_EQ(report.journalsChecked, 1u);
    EXPECT_EQ(report.recordsChecked, grid.size());
    removeTree(dir);
}

TEST(FsckJournal, TornTailIsTruncatedBackToBaseline)
{
    std::string dir = tmpPath("journal_torn");
    removeTree(dir);
    std::vector<ExperimentPoint> grid = smallGrid(42);
    std::string path =
        buildJournal(dir, "run.jsonl", grid, grid.size());
    std::string baseline = readFileOr(path);

    std::ofstream(path, std::ios::binary | std::ios::app)
        << "{\"point\":3,\"conf"; // a crash mid-append
    FsckReport found = fsckPath(path);
    EXPECT_EQ(found.exitCode(), 1);
    ASSERT_EQ(found.findings.size(), 1u);
    EXPECT_EQ(found.findings[0].severity, FsckSeverity::Damage);
    EXPECT_NE(found.findings[0].message.find("torn trailing record"),
              std::string::npos);

    FsckOptions repair;
    repair.repair = true;
    FsckReport fixed = fsckPath(path, repair);
    EXPECT_EQ(fixed.exitCode(), 0);
    EXPECT_EQ(fixed.repairsApplied, 1u);
    ASSERT_EQ(fixed.findings.size(), 1u);
    EXPECT_TRUE(fixed.findings[0].repaired);
    EXPECT_EQ(readFileOr(path), baseline);
    EXPECT_TRUE(fsckPath(path).clean());

    // The repaired file is a valid resumable journal again.
    std::unique_ptr<RunJournal> journal =
        RunJournal::resume(path, grid);
    EXPECT_EQ(journal->restoredCount(), grid.size());
    removeTree(dir);
}

TEST(FsckJournal, CorruptRecordTruncatesTheUntrustedSuffix)
{
    std::string dir = tmpPath("journal_corrupt");
    removeTree(dir);
    std::vector<ExperimentPoint> grid = smallGrid(42);
    std::string path =
        buildJournal(dir, "run.jsonl", grid, grid.size());

    // Flip a key inside the SECOND record (line 3): the first record
    // stays trusted, everything from the flip on is not.
    std::string contents = readFileOr(path);
    std::size_t line3 = contents.find('\n');
    line3 = contents.find('\n', line3 + 1) + 1;
    std::size_t key = contents.find("\"point\"", line3);
    ASSERT_NE(key, std::string::npos);
    contents[key + 1] = 'q';
    writeFileRaw(path, contents);

    FsckReport found = fsckPath(path);
    EXPECT_EQ(found.exitCode(), 1);
    ASSERT_EQ(found.findings.size(), 1u);
    EXPECT_NE(found.findings[0].message.find(
                  "record(s) from there on are untrusted"),
              std::string::npos);

    FsckOptions repair;
    repair.repair = true;
    EXPECT_EQ(fsckPath(path, repair).exitCode(), 0);
    EXPECT_TRUE(fsckPath(path).clean());

    // The clean prefix resumes (one record survived) and a refill
    // lands on the never-damaged bytes.
    std::string refPath =
        buildJournal(dir, "ref.jsonl", grid, grid.size());
    std::unique_ptr<RunJournal> journal =
        RunJournal::resume(path, grid);
    EXPECT_EQ(journal->restoredCount(), 1u);
    for (std::size_t i = 0; i < grid.size(); ++i) {
        PointOutcome restored;
        if (journal->restore(i, restored))
            continue;
        PointOutcome out = makeOutcome(grid[i], i);
        EXPECT_TRUE(journal->commit(i, out));
    }
    journal.reset();
    EXPECT_EQ(readFileOr(path), readFileOr(refPath));
    removeTree(dir);
}

TEST(FsckJournal, UnusableHeaderIsQuarantinedNotDeleted)
{
    std::string dir = tmpPath("journal_header");
    removeTree(dir);
    realIoEnv().makeDir(dir);
    std::string garbled = dir + "/garbled.jsonl";
    writeFileRaw(garbled, "not a journal at all\n");
    std::string empty = dir + "/empty.jsonl";
    writeFileRaw(empty, "");

    EXPECT_EQ(fsckPath(garbled).exitCode(), 1);
    EXPECT_EQ(fsckPath(empty).exitCode(), 1);

    FsckOptions repair;
    repair.repair = true;
    FsckReport fixedGarbled = fsckPath(garbled, repair);
    EXPECT_EQ(fixedGarbled.exitCode(), 0);
    EXPECT_EQ(fixedGarbled.quarantined, 1u);
    FsckReport fixedEmpty = fsckPath(empty, repair);
    EXPECT_EQ(fixedEmpty.exitCode(), 0);
    EXPECT_NE(fixedEmpty.findings[0].message.find("empty journal"),
              std::string::npos);

    // Moved, not deleted: the bytes survive under quarantine/.
    EXPECT_FALSE(realIoEnv().exists(garbled));
    EXPECT_EQ(readFileOr(dir + "/quarantine/garbled.jsonl"),
              "not a journal at all\n");
    EXPECT_TRUE(realIoEnv().exists(dir + "/quarantine/empty.jsonl"));
    removeTree(dir);
}

// ---------------------------------------------------------------------------
// Result-store directories.
// ---------------------------------------------------------------------------

TEST(FsckStore, CleanStorePasses)
{
    std::string dir = tmpPath("store_clean");
    std::size_t records = buildStore(dir);

    FsckReport report = fsckPath(dir);
    EXPECT_TRUE(report.clean()) << fsckFindingLine(report.findings[0]);
    EXPECT_EQ(report.exitCode(), 0);
    EXPECT_EQ(report.storesChecked, 1u);
    EXPECT_EQ(report.recordsChecked, records);
    removeTree(dir);
}

TEST(FsckStore, FlippedByteIsQuarantinedThenRewritten)
{
    std::string dir = tmpPath("store_flip");
    std::size_t records = buildStore(dir);

    // Flip a byte inside shard 0x01's first record: its checksum no
    // longer matches.
    std::string path = dir + "/shards/s01";
    std::string contents = readFileOr(path);
    ASSERT_FALSE(contents.empty());
    std::size_t key = contents.find("\"crc\"", contents.find('\n'));
    ASSERT_NE(key, std::string::npos);
    std::string damaged = contents;
    damaged[key + 1] = 'x';
    writeFileRaw(path, damaged);

    FsckReport found = fsckPath(dir);
    EXPECT_EQ(found.exitCode(), 1);
    EXPECT_EQ(countBySeverity(found, FsckSeverity::Damage), 1u);
    EXPECT_NE(found.findings[0].message.find("checksum"),
              std::string::npos);

    FsckOptions repair;
    repair.repair = true;
    FsckReport fixed = fsckPath(dir, repair);
    EXPECT_EQ(fixed.exitCode(), 0);
    EXPECT_EQ(fixed.quarantined, 1u);

    // The damaged bytes were preserved verbatim, the live segment
    // was rewritten intact-records-only, and the store is clean.
    EXPECT_EQ(readFileOr(dir + "/quarantine/s01"), damaged);
    StoreSurvey survey = surveyStore(dir);
    EXPECT_TRUE(survey.clean()) << survey.metaError;
    EXPECT_EQ(survey.records, records - 1);
    EXPECT_TRUE(fsckPath(dir).clean());
    removeTree(dir);
}

TEST(FsckStore, WrongShardHeaderIsQuarantined)
{
    std::string dir = tmpPath("store_header");
    buildStore(dir);
    std::string path = dir + "/shards/s42";
    std::string damaged = "this is not a segment header\nx\n";
    writeFileRaw(path, damaged);

    FsckReport found = fsckPath(dir);
    EXPECT_EQ(found.exitCode(), 1);

    FsckOptions repair;
    repair.repair = true;
    FsckReport fixed = fsckPath(dir, repair);
    EXPECT_EQ(fixed.exitCode(), 0);
    EXPECT_EQ(fixed.quarantined, 1u);
    EXPECT_FALSE(realIoEnv().exists(path));
    EXPECT_EQ(readFileOr(dir + "/quarantine/s42"), damaged);
    EXPECT_TRUE(fsckPath(dir).clean());
    removeTree(dir);
}

// ---------------------------------------------------------------------------
// Daemon state directories (the cross-layer checks).
// ---------------------------------------------------------------------------

TEST(FsckServe, CleanStateDirPasses)
{
    std::string dir = tmpPath("serve_clean");
    std::vector<BatchHandle> handles = buildServeDir(dir);

    // Give the pending batch a journal with one committed record,
    // built from the payload's own grid — the cross-layer contract.
    std::string payload =
        readFileOr(dir + "/batches/" + hexU64(handles[0]) + ".kv");
    BatchSpec spec;
    std::string error;
    ASSERT_TRUE(parseBatchSpec(payload, spec, error)) << error;
    std::vector<ExperimentPoint> points = batchSpecPoints(spec);
    {
        std::unique_ptr<RunJournal> journal = RunJournal::create(
            dir + "/batches/" + hexU64(handles[0]) + ".jsonl",
            points);
        PointOutcome out = makeOutcome(points[0], 0);
        EXPECT_TRUE(journal->commit(0, out));
    }

    FsckReport report = fsckPath(dir);
    EXPECT_TRUE(report.clean()) << fsckFindingLine(report.findings[0]);
    EXPECT_EQ(report.exitCode(), 0);
    EXPECT_EQ(report.batchesChecked, 2u);
    EXPECT_EQ(report.journalsChecked, 1u);
    EXPECT_EQ(report.recordsChecked, 1u);
    removeTree(dir);
}

TEST(FsckServe, OrphanedBatchFilesAreQuarantined)
{
    std::string dir = tmpPath("serve_orphan");
    buildServeDir(dir);
    std::string orphan = dir + "/batches/00000000000000ff.jsonl";
    writeFileRaw(orphan, "whatever the crash left behind\n");

    FsckReport found = fsckPath(dir);
    EXPECT_EQ(found.exitCode(), 1);
    EXPECT_EQ(countBySeverity(found, FsckSeverity::Damage), 1u);
    EXPECT_NE(found.findings[0].message.find("orphaned batch file"),
              std::string::npos);

    FsckOptions repair;
    repair.repair = true;
    FsckReport fixed = fsckPath(dir, repair);
    EXPECT_EQ(fixed.exitCode(), 0);
    EXPECT_EQ(fixed.quarantined, 1u);
    EXPECT_FALSE(realIoEnv().exists(orphan));
    EXPECT_TRUE(realIoEnv().exists(
        dir + "/quarantine/00000000000000ff.jsonl"));
    EXPECT_TRUE(fsckPath(dir).clean());
    removeTree(dir);
}

TEST(FsckServe, UnparseablePayloadQuarantinesItsCompanions)
{
    std::string dir = tmpPath("serve_payload");
    std::vector<BatchHandle> handles = buildServeDir(dir);

    // Batch 2 has a payload AND a cancel marker; garble the payload.
    std::string stem = dir + "/batches/" + hexU64(handles[1]);
    writeFileRaw(stem + ".kv", "garbage without structure\n");

    FsckReport found = fsckPath(dir);
    EXPECT_EQ(found.exitCode(), 1);
    ASSERT_EQ(found.findings.size(), 1u);
    EXPECT_NE(found.findings[0].message.find("payload does not parse"),
              std::string::npos);

    FsckOptions repair;
    repair.repair = true;
    FsckReport fixed = fsckPath(dir, repair);
    EXPECT_EQ(fixed.exitCode(), 0);
    EXPECT_EQ(fixed.quarantined, 2u) << "payload and marker";
    EXPECT_FALSE(realIoEnv().exists(stem + ".kv"));
    EXPECT_FALSE(realIoEnv().exists(stem + ".cancelled"));
    EXPECT_TRUE(fsckPath(dir).clean());
    removeTree(dir);
}

TEST(FsckServe, JournalOfAnotherGridIsACampaignMismatch)
{
    std::string dir = tmpPath("serve_campaign");
    std::vector<BatchHandle> handles = buildServeDir(dir);

    // A journal whose grid is NOT what the payload expands to.
    std::vector<ExperimentPoint> wrong = smallGrid(1234);
    std::string journalPath =
        dir + "/batches/" + hexU64(handles[0]) + ".jsonl";
    {
        std::unique_ptr<RunJournal> journal =
            RunJournal::create(journalPath, wrong);
    }

    FsckReport found = fsckPath(dir);
    EXPECT_EQ(found.exitCode(), 1);
    ASSERT_EQ(found.findings.size(), 1u);
    EXPECT_NE(found.findings[0].message.find("campaign mismatch"),
              std::string::npos);

    FsckOptions repair;
    repair.repair = true;
    EXPECT_EQ(fsckPath(dir, repair).exitCode(), 0);
    EXPECT_FALSE(realIoEnv().exists(journalPath));
    EXPECT_TRUE(fsckPath(dir).clean());
    removeTree(dir);
}

TEST(FsckServe, SequenceGapAndCancelledCompleteAreNotes)
{
    std::string dir = tmpPath("serve_notes");
    std::vector<BatchHandle> handles = buildServeDir(dir);

    // A fully-recorded journal under the cancelled batch: recovery
    // will classify it cancelled, which deserves a heads-up.
    std::string payload =
        readFileOr(dir + "/batches/" + hexU64(handles[1]) + ".kv");
    BatchSpec spec;
    std::string error;
    ASSERT_TRUE(parseBatchSpec(payload, spec, error)) << error;
    std::vector<ExperimentPoint> points = batchSpecPoints(spec);
    {
        std::unique_ptr<RunJournal> journal = RunJournal::create(
            dir + "/batches/" + hexU64(handles[1]) + ".jsonl",
            points);
        for (std::size_t i = 0; i < points.size(); ++i) {
            PointOutcome out = makeOutcome(points[i], i);
            EXPECT_TRUE(journal->commit(i, out));
        }
    }
    // And a handle gap: a payload far past the contiguous range.
    writeFileRaw(dir + "/batches/00000000000000aa.kv",
                 batchPayload(9));

    FsckReport report = fsckPath(dir);
    EXPECT_EQ(report.exitCode(), 0) << "notes never fail the check";
    EXPECT_EQ(countBySeverity(report, FsckSeverity::Note), 2u);
    EXPECT_EQ(countBySeverity(report, FsckSeverity::Damage), 0u);
    removeTree(dir);
}

// ---------------------------------------------------------------------------
// Path auto-detection and the report contract.
// ---------------------------------------------------------------------------

TEST(FsckPath, MissingAndUnrecognizedPathsAreFatal)
{
    std::string missing = tmpPath("no_such_path");
    removeTree(missing);
    FsckReport gone = fsckPath(missing);
    EXPECT_EQ(gone.exitCode(), 2);
    ASSERT_EQ(gone.findings.size(), 1u);
    EXPECT_EQ(gone.findings[0].severity, FsckSeverity::Fatal);
    EXPECT_EQ(gone.findings[0].layer, "fsck");

    std::string stray = tmpPath("stray_dir");
    removeTree(stray);
    realIoEnv().makeDir(stray);
    FsckReport odd = fsckPath(stray);
    EXPECT_EQ(odd.exitCode(), 2);
    ASSERT_EQ(odd.findings.size(), 1u);
    EXPECT_NE(odd.findings[0].message.find("not a daemon state"),
              std::string::npos);
    removeTree(stray);
}

TEST(FsckReport, ExitCodeContract)
{
    FsckReport report;
    EXPECT_EQ(report.exitCode(), 0);

    FsckFinding note;
    note.severity = FsckSeverity::Note;
    report.findings.push_back(note);
    EXPECT_EQ(report.exitCode(), 0);

    FsckFinding damage;
    damage.severity = FsckSeverity::Damage;
    report.findings.push_back(damage);
    EXPECT_EQ(report.exitCode(), 1);

    report.findings.back().repaired = true;
    EXPECT_EQ(report.exitCode(), 0);

    FsckFinding fatal;
    fatal.severity = FsckSeverity::Fatal;
    report.findings.push_back(fatal);
    EXPECT_EQ(report.exitCode(), 2);
}

TEST(FsckReport, FindingLineFormat)
{
    FsckFinding finding;
    finding.severity = FsckSeverity::Damage;
    finding.layer = "journal";
    finding.path = "/tmp/x.jsonl";
    finding.message = "torn trailing record";
    EXPECT_EQ(fsckFindingLine(finding),
              "damage [journal] /tmp/x.jsonl: torn trailing record");
    finding.repaired = true;
    EXPECT_EQ(
        fsckFindingLine(finding),
        "damage [journal] /tmp/x.jsonl: torn trailing record "
        "(repaired)");

    EXPECT_STREQ(fsckSeverityName(FsckSeverity::Note), "note");
    EXPECT_STREQ(fsckSeverityName(FsckSeverity::Fatal), "fatal");
}

} // namespace uvmasync
