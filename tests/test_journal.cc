/**
 * @file
 * Tests for the crash-safe run journal: exact JSON round-trips
 * (hexfloat doubles), record serialization, config-hash validation,
 * byte-determinism of the journal file across job counts, and the
 * kill-and-resume contract — a journal truncated at (or inside) an
 * arbitrary record boundary resumes to results and file bytes
 * identical to an uninterrupted run.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "core/parallel_runner.hh"
#include "inject/inject_plan.hh"
#include "journal/journal.hh"
#include "journal/json.hh"

namespace uvmasync
{
namespace
{

std::string
tmpPath(const std::string &name)
{
    return ::testing::TempDir() + "uvmasync_journal_" + name;
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << path;
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
}

void
writeFile(const std::string &path, const std::string &contents)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << contents;
    ASSERT_TRUE(out.good()) << path;
}

/** %.17g textual fingerprint — equal strings mean identical bits. */
std::string
fingerprint(const ExperimentResult &res)
{
    char buf[256];
    std::string out = res.workload;
    out += '/';
    out += transferModeName(res.mode);
    auto add = [&](const TimeBreakdown &b) {
        std::snprintf(buf, sizeof(buf), "|%.17g,%.17g,%.17g",
                      b.allocPs, b.transferPs, b.kernelPs);
        out += buf;
    };
    add(res.clean);
    for (const TimeBreakdown &run : res.runs)
        add(run);
    std::snprintf(buf, sizeof(buf), "|f%llu|h%llu|d%llu|%.17g",
                  static_cast<unsigned long long>(res.counters.faults),
                  static_cast<unsigned long long>(
                      res.counters.bytesH2d),
                  static_cast<unsigned long long>(
                      res.counters.bytesD2h),
                  res.counters.occupancy);
    out += buf;
    return out;
}

/** 2 workloads x 5 modes, tiny and fast but real. */
std::vector<ExperimentPoint>
smallGrid()
{
    ExperimentOptions base;
    base.size = SizeClass::Tiny;
    base.runs = 2;
    base.baseSeed = 42;
    std::vector<TransferMode> modes(allTransferModes.begin(),
                                    allTransferModes.end());
    return ParallelRunner::expandGrid({"saxpy", "vector_seq"}, modes,
                                      1, base);
}

TEST(Json, WriterReaderRoundTrip)
{
    JsonWriter w;
    w.beginObject();
    w.key("name").value("tab\there \"quoted\"");
    w.key("count").value(std::uint64_t(18446744073709551615ull));
    w.key("flag").value(true);
    w.key("pi").hex(3.141592653589793);
    w.key("list").beginArray().value(std::uint64_t(1)).value(
        std::uint64_t(2));
    w.endArray();
    w.endObject();

    JsonValue v;
    std::string error;
    ASSERT_TRUE(parseJson(w.str(), v, error)) << error;
    ASSERT_TRUE(v.isObject());
    EXPECT_EQ(v.find("name")->text, "tab\there \"quoted\"");
    std::uint64_t count = 0;
    ASSERT_TRUE(v.find("count")->asUint(count));
    EXPECT_EQ(count, 18446744073709551615ull);
    EXPECT_TRUE(v.find("flag")->boolean);
    double pi = 0;
    ASSERT_TRUE(v.find("pi")->asHex(pi));
    EXPECT_EQ(pi, 3.141592653589793);
    ASSERT_TRUE(v.find("list")->isArray());
    EXPECT_EQ(v.find("list")->items.size(), 2u);
}

TEST(Json, HexDoubleRoundTripsExactBits)
{
    const double values[] = {0.0,       1.0,   1.0 / 3.0, -2.5,
                             1e300,     1e-300, 5e-324,
                             6.02214076e23, 123456789.123456789};
    for (double v : values) {
        double back = 0;
        ASSERT_TRUE(parseHexDouble(hexDouble(v), back))
            << hexDouble(v);
        std::uint64_t a = 0, b = 0;
        std::memcpy(&a, &v, sizeof(a));
        std::memcpy(&b, &back, sizeof(b));
        EXPECT_EQ(a, b) << v;
    }
}

TEST(Json, RejectsMalformedInput)
{
    JsonValue v;
    std::string error;
    EXPECT_FALSE(parseJson("{\"a\":1} trailing", v, error));
    EXPECT_FALSE(parseJson("{\"a\":", v, error));
    EXPECT_FALSE(parseJson("\"unterminated", v, error));
    std::string deep(100, '[');
    EXPECT_FALSE(parseJson(deep, v, error));
    EXPECT_FALSE(parseJson("", v, error));
}

TEST(Journal, RecordLineRoundTripsAnOkOutcome)
{
    ExperimentPoint point;
    point.workload = "saxpy";
    point.mode = TransferMode::UvmPrefetch;

    PointOutcome out;
    out.ok = true;
    out.status = PointStatus::Ok;
    out.attempts = 1;
    out.result.workload = "saxpy";
    out.result.mode = TransferMode::UvmPrefetch;
    out.result.size = SizeClass::Small;
    out.result.clean = {1.0 / 3.0, 2.5e9, 7.125};
    out.result.runs = {{1.5, 2.5, 3.5}, {4.5, 5.5, 6.5}};
    out.result.counters.instrs = {1e6, 2e6, 3e6, 4e5};
    out.result.counters.faults = 1234;
    out.result.counters.l1LoadMissRate = 0.037;
    out.result.counters.l1StoreMissRate = 0.011;
    out.result.counters.occupancy = 0.875;
    out.result.counters.stallTime = 99;
    out.result.counters.bytesH2d = 1 << 20;
    out.result.counters.bytesD2h = 1 << 10;
    out.result.counters.launches = 3;
    out.result.injectCounters.stormEvictions = 17;

    std::string line = journalRecordLine(4, 0xdeadbeefcafef00dull,
                                         point, out);

    std::size_t index = 0;
    std::uint64_t hash = 0;
    PointOutcome back;
    std::string error;
    ASSERT_TRUE(parseJournalRecord(line, index, hash, back, error))
        << error;
    EXPECT_EQ(index, 4u);
    EXPECT_EQ(hash, 0xdeadbeefcafef00dull);
    EXPECT_TRUE(back.ok);
    EXPECT_EQ(back.status, PointStatus::Ok);
    EXPECT_EQ(back.attempts, 1u);
    EXPECT_EQ(fingerprint(back.result), fingerprint(out.result));
    EXPECT_EQ(back.result.size, SizeClass::Small);
    EXPECT_EQ(back.result.counters.stallTime, 99u);
    EXPECT_EQ(back.result.counters.launches, 3u);
    EXPECT_EQ(back.result.injectCounters.stormEvictions, 17u);
    // Exact doubles survive, bit for bit.
    EXPECT_EQ(back.result.clean.allocPs, 1.0 / 3.0);
}

TEST(Journal, RecordLineRoundTripsAQuarantinedOutcome)
{
    ExperimentPoint point;
    point.workload = "gemv";
    point.mode = TransferMode::Uvm;

    PointOutcome out;
    out.ok = false;
    out.status = PointStatus::Quarantined;
    out.attempts = 2;
    out.error = "watchdog: livelock \xe2\x80\x94 spin";
    out.attemptTrail = {{PointStatus::Timeout, "watchdog: spin"},
                        {PointStatus::Timeout, "watchdog: spin"}};

    std::string line = journalRecordLine(0, 1, point, out);
    std::size_t index = 99;
    std::uint64_t hash = 0;
    PointOutcome back;
    std::string error;
    ASSERT_TRUE(parseJournalRecord(line, index, hash, back, error))
        << error;
    EXPECT_EQ(index, 0u);
    EXPECT_FALSE(back.ok);
    EXPECT_EQ(back.status, PointStatus::Quarantined);
    EXPECT_EQ(back.attempts, 2u);
    EXPECT_EQ(back.error, out.error);
    ASSERT_EQ(back.attemptTrail.size(), 2u);
    EXPECT_EQ(back.attemptTrail[0].status, PointStatus::Timeout);
    EXPECT_EQ(back.attemptTrail[1].error, "watchdog: spin");
}

TEST(Journal, ConfigHashSeparatesConfigurations)
{
    std::vector<ExperimentPoint> grid = smallGrid();
    ExperimentPoint a = grid[0];
    ExperimentPoint b = a;
    EXPECT_EQ(pointConfigHash(a), pointConfigHash(b));

    b.opts.baseSeed ^= 1;
    EXPECT_NE(pointConfigHash(a), pointConfigHash(b));
    b = a;
    b.mode = TransferMode::Async;
    EXPECT_NE(pointConfigHash(a), pointConfigHash(b));
    b = a;
    b.opts.inject.migrate.stormRate = 0.25;
    EXPECT_NE(pointConfigHash(a), pointConfigHash(b));
    b = a;
    b.opts.injectSeed = 7;
    EXPECT_NE(pointConfigHash(a), pointConfigHash(b));

    // The campaign hash sees any per-point change.
    std::vector<ExperimentPoint> other = grid;
    other[3].opts.runs += 1;
    EXPECT_NE(campaignHash(grid), campaignHash(other));
}

TEST(Journal, FileIsByteIdenticalAcrossJobCounts)
{
    std::vector<ExperimentPoint> grid = smallGrid();
    std::string pathA = tmpPath("jobs1.jsonl");
    std::string pathB = tmpPath("jobs4.jsonl");

    RunPolicy policyA;
    auto journalA = RunJournal::create(pathA, grid);
    policyA.journal = journalA.get();
    ParallelRunner serial(SystemConfig::a100Epyc(), 1);
    BatchResult refBatch = serial.runPoints(grid, policyA);
    journalA.reset();

    RunPolicy policyB;
    auto journalB = RunJournal::create(pathB, grid);
    policyB.journal = journalB.get();
    ParallelRunner parallel(SystemConfig::a100Epyc(), 4);
    BatchResult gotBatch = parallel.runPoints(grid, policyB);
    journalB.reset();

    EXPECT_TRUE(refBatch.allOk());
    EXPECT_TRUE(gotBatch.allOk());
    std::string refBytes = readFile(pathA);
    EXPECT_FALSE(refBytes.empty());
    EXPECT_EQ(readFile(pathB), refBytes);

    std::remove(pathA.c_str());
    std::remove(pathB.c_str());
}

TEST(Journal, KillAndResumeIsByteIdentical)
{
    std::vector<ExperimentPoint> grid = smallGrid();
    std::string refPath = tmpPath("resume_ref.jsonl");

    // Uninterrupted serial reference: results + journal bytes.
    RunPolicy refPolicy;
    auto refJournal = RunJournal::create(refPath, grid);
    refPolicy.journal = refJournal.get();
    ParallelRunner serial(SystemConfig::a100Epyc(), 1);
    BatchResult reference = serial.runPoints(grid, refPolicy);
    refJournal.reset();
    ASSERT_TRUE(reference.allOk());
    std::string refBytes = readFile(refPath);

    std::vector<std::string> lines;
    std::size_t start = 0;
    while (start < refBytes.size()) {
        std::size_t nl = refBytes.find('\n', start);
        ASSERT_NE(nl, std::string::npos);
        lines.push_back(refBytes.substr(start, nl - start + 1));
        start = nl + 1;
    }
    ASSERT_EQ(lines.size(), grid.size() + 1); // header + records

    // Kill at every record boundary (plus a torn half-record: a
    // crash mid-append must be dropped, not trusted) and resume at
    // --jobs 4: final file bytes and every result must match the
    // uninterrupted serial run.
    for (std::size_t keep = 1; keep <= lines.size(); ++keep) {
        std::string partialPath =
            tmpPath("resume_k" + std::to_string(keep) + ".jsonl");
        std::string partial;
        for (std::size_t i = 0; i < keep; ++i)
            partial += lines[i];
        if (keep < lines.size()) {
            // Torn write: half of the next record, no newline.
            partial +=
                lines[keep].substr(0, lines[keep].size() / 2);
        }
        writeFile(partialPath, partial);

        auto journal = RunJournal::resume(partialPath, grid);
        EXPECT_EQ(journal->restoredCount(), keep - 1);
        RunPolicy policy;
        policy.journal = journal.get();
        ParallelRunner parallel(SystemConfig::a100Epyc(), 4);
        BatchResult resumed = parallel.runPoints(grid, policy);
        journal.reset();

        EXPECT_TRUE(resumed.allOk()) << "keep=" << keep;
        EXPECT_EQ(resumed.metrics.restored, keep - 1);
        EXPECT_EQ(readFile(partialPath), refBytes)
            << "keep=" << keep;
        ASSERT_EQ(resumed.points.size(), reference.points.size());
        for (std::size_t i = 0; i < resumed.points.size(); ++i) {
            EXPECT_EQ(resumed.points[i].restored, i < keep - 1);
            EXPECT_EQ(fingerprint(resumed.points[i].result),
                      fingerprint(reference.points[i].result))
                << "keep=" << keep << " point " << i;
        }
        std::remove(partialPath.c_str());
    }
    std::remove(refPath.c_str());
}

TEST(Journal, RefusesAStaleCampaign)
{
    std::vector<ExperimentPoint> grid = smallGrid();
    std::string path = tmpPath("stale.jsonl");
    RunJournal::create(path, grid).reset();

    // The same grid with one knob changed is a different campaign.
    std::vector<ExperimentPoint> changed = grid;
    changed[0].opts.baseSeed ^= 1;

    FatalThrowScope guard;
    try {
        RunJournal::resume(path, changed);
        FAIL() << "stale journal accepted";
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("different campaign"),
                  std::string::npos)
            << e.what();
        EXPECT_NE(std::string(e.what()).find("--resume"),
                  std::string::npos);
    }

    // Garbage is refused too, with a line number.
    writeFile(path, journalHeaderLine(grid) + "\nnot json\n");
    try {
        RunJournal::resume(path, grid);
        FAIL() << "corrupt journal accepted";
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("corrupt"),
                  std::string::npos)
            << e.what();
    }
    std::remove(path.c_str());
}

TEST(Journal, CreateRefusesAnUnwritablePath)
{
    FatalThrowScope guard;
    EXPECT_THROW(
        RunJournal::create("/nonexistent-dir/journal.jsonl",
                           smallGrid()),
        FatalError);
    EXPECT_THROW(RunJournal::resume("/nonexistent-dir/journal.jsonl",
                                    smallGrid()),
                 FatalError);
}

TEST(Journal, QuarantinedPointIsJournaledAndRestoredOnResume)
{
    ExperimentOptions opts;
    opts.size = SizeClass::Tiny;
    opts.runs = 1;
    std::vector<ExperimentPoint> points = {
        {"vector_seq", TransferMode::Standard, opts},
        {"no_such_workload", TransferMode::Uvm, opts},
        {"saxpy", TransferMode::Async, opts},
    };
    std::string path = tmpPath("quarantine.jsonl");

    RunPolicy policy;
    policy.retries = 1;
    auto journal = RunJournal::create(path, points);
    policy.journal = journal.get();
    ParallelRunner runner(SystemConfig::a100Epyc(), 2);
    BatchResult batch = runner.runPoints(points, policy);
    journal.reset();

    ASSERT_EQ(batch.points.size(), 3u);
    EXPECT_EQ(batch.points[1].status, PointStatus::Quarantined);
    EXPECT_EQ(batch.points[1].attempts, 2u);
    EXPECT_EQ(batch.quarantined(), 1u);
    EXPECT_TRUE(batch.degraded());
    std::string bytes = readFile(path);

    // Resume restores the quarantined record verbatim instead of
    // burning time re-failing it, and appends nothing.
    auto resumed = RunJournal::resume(path, points);
    EXPECT_EQ(resumed->restoredCount(), 3u);
    RunPolicy resumePolicy;
    resumePolicy.journal = resumed.get();
    BatchResult second = runner.runPoints(points, resumePolicy);
    resumed.reset();
    EXPECT_EQ(second.metrics.restored, 3u);
    EXPECT_EQ(second.points[1].status, PointStatus::Quarantined);
    ASSERT_EQ(second.points[1].attemptTrail.size(), 2u);
    EXPECT_NE(second.points[1].attemptTrail[0].error.find(
                  "no_such_workload"),
              std::string::npos);
    EXPECT_EQ(readFile(path), bytes);
    std::remove(path.c_str());
}

} // namespace
} // namespace uvmasync
