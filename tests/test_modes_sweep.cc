/**
 * @file
 * Full-suite sweep: every (workload, transfer mode) pair executes
 * end to end at the Small size and must satisfy the invariants of
 * the execution model. This is the broad safety net under the
 * calibration knobs.
 */

#include <gtest/gtest.h>

#include "runtime/device.hh"
#include "workloads/registry.hh"

namespace uvmasync
{
namespace
{

class ModeSweepTest
    : public ::testing::TestWithParam<
          std::tuple<std::string, TransferMode>>
{
  protected:
    ModeSweepTest() { registerAllWorkloads(); }
};

TEST_P(ModeSweepTest, ExecutesWithConsistentAccounting)
{
    auto [name, mode] = GetParam();
    Job job =
        WorkloadRegistry::instance().get(name).makeJob(
            SizeClass::Small);
    Device device(SystemConfig::a100Epyc());
    RunResult run = device.run(job, mode);

    // Time components are present and finite.
    EXPECT_GT(run.breakdown.allocPs, 0.0);
    EXPECT_GT(run.breakdown.kernelPs, 0.0);
    EXPECT_GE(run.breakdown.transferPs, 0.0);
    EXPECT_GT(run.breakdown.overallPs(), 0.0);
    EXPECT_LT(run.breakdown.overallPs(), 1e15); // < 1000 s
    EXPECT_GT(run.wallEnd, 0u);

    // Counters.
    EXPECT_EQ(run.counters.launches, job.launchCount());
    EXPECT_GT(run.counters.instrs.total(), 0.0);
    EXPECT_GE(run.counters.l1LoadMissRate, 0.0);
    EXPECT_LE(run.counters.l1LoadMissRate, 1.0);
    EXPECT_GE(run.counters.l1StoreMissRate, 0.0);
    EXPECT_LE(run.counters.l1StoreMissRate, 1.0);
    EXPECT_GT(run.counters.occupancy, 0.0);
    EXPECT_LE(run.counters.occupancy, 1.0);

    if (usesUvm(mode)) {
        if (usesPrefetch(mode)) {
            // Bulk prefetch precedes every first touch.
            EXPECT_EQ(run.counters.faults, 0u) << name;
        }
        // UVM never moves more to the device than the footprint
        // (plus per-launch re-prefetch churn).
        double churnBound =
            static_cast<double>(job.footprint()) *
            (1.0 + 0.05 * static_cast<double>(job.launchCount()));
        EXPECT_LE(static_cast<double>(run.counters.bytesH2d),
                  churnBound)
            << name;
    } else {
        // Explicit modes copy exactly the declared buffers.
        EXPECT_EQ(run.counters.faults, 0u);
        EXPECT_EQ(run.counters.bytesH2d, job.hostInitBytes());
        EXPECT_EQ(run.counters.bytesD2h, job.hostConsumedBytes());
    }
}

TEST_P(ModeSweepTest, DeterministicAcrossDevices)
{
    auto [name, mode] = GetParam();
    Job job =
        WorkloadRegistry::instance().get(name).makeJob(
            SizeClass::Small);
    Device a(SystemConfig::a100Epyc());
    Device b(SystemConfig::a100Epyc());
    RunResult ra = a.run(job, mode);
    RunResult rb = b.run(job, mode);
    EXPECT_DOUBLE_EQ(ra.breakdown.overallPs(),
                     rb.breakdown.overallPs());
    EXPECT_EQ(ra.counters.faults, rb.counters.faults);
    EXPECT_DOUBLE_EQ(ra.counters.instrs.total(),
                     rb.counters.instrs.total());
}

std::vector<std::string>
names()
{
    registerAllWorkloads();
    return WorkloadRegistry::instance().names();
}

std::string
sweepName(const ::testing::TestParamInfo<
          std::tuple<std::string, TransferMode>> &info)
{
    std::string id = std::get<0>(info.param);
    id += "_";
    id += transferModeName(std::get<1>(info.param));
    for (char &c : id) {
        if (!isalnum(static_cast<unsigned char>(c)))
            c = '_';
    }
    return id;
}

INSTANTIATE_TEST_SUITE_P(
    AllPairs, ModeSweepTest,
    ::testing::Combine(::testing::ValuesIn(names()),
                       ::testing::ValuesIn(
                           std::vector<TransferMode>(
                               allTransferModes.begin(),
                               allTransferModes.end()))),
    sweepName);

} // namespace
} // namespace uvmasync
