/**
 * @file
 * Tests for the deterministic xoshiro256** generator, including
 * statistical sanity of the derived distributions.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/rng.hh"
#include "core/parallel_runner.hh"

namespace uvmasync
{
namespace
{

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i) {
        if (a() == b())
            ++same;
    }
    EXPECT_LT(same, 2);
}

TEST(Rng, ForkIsIndependent)
{
    Rng parent(7);
    Rng child = parent.fork();
    // The child stream must not replay the parent's outputs.
    Rng parent2(7);
    (void)parent2(); // consume the draw the fork used
    int same = 0;
    for (int i = 0; i < 100; ++i) {
        if (child() == parent2())
            ++same;
    }
    EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(3);
    for (int i = 0; i < 10000; ++i) {
        double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, UniformRangeRespectsBounds)
{
    Rng rng(4);
    for (int i = 0; i < 1000; ++i) {
        double u = rng.uniform(-3.0, 5.0);
        EXPECT_GE(u, -3.0);
        EXPECT_LT(u, 5.0);
    }
}

TEST(Rng, UniformIntCoversRange)
{
    Rng rng(5);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 2000; ++i) {
        std::uint64_t v = rng.uniformInt(std::uint64_t(8));
        EXPECT_LT(v, 8u);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, UniformIntSignedRange)
{
    Rng rng(6);
    for (int i = 0; i < 1000; ++i) {
        std::int64_t v = rng.uniformInt(std::int64_t(-5), 5);
        EXPECT_GE(v, -5);
        EXPECT_LE(v, 5);
    }
}

TEST(Rng, NormalMoments)
{
    Rng rng(8);
    double sum = 0.0, sumsq = 0.0;
    const int n = 200000;
    for (int i = 0; i < n; ++i) {
        double x = rng.normal();
        sum += x;
        sumsq += x * x;
    }
    double mean = sum / n;
    double var = sumsq / n - mean * mean;
    EXPECT_NEAR(mean, 0.0, 0.02);
    EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(Rng, NormalShifted)
{
    Rng rng(9);
    double sum = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        sum += rng.normal(10.0, 2.0);
    EXPECT_NEAR(sum / n, 10.0, 0.05);
}

TEST(Rng, LognormalPreservesMean)
{
    Rng rng(10);
    double sum = 0.0;
    const int n = 200000;
    for (int i = 0; i < n; ++i) {
        double x = rng.lognormalMeanCv(5.0, 0.3);
        EXPECT_GT(x, 0.0);
        sum += x;
    }
    EXPECT_NEAR(sum / n, 5.0, 0.05);
}

TEST(Rng, LognormalZeroCvIsDeterministic)
{
    Rng rng(11);
    EXPECT_DOUBLE_EQ(rng.lognormalMeanCv(3.0, 0.0), 3.0);
}

TEST(Rng, ChanceFrequency)
{
    Rng rng(12);
    int hits = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i) {
        if (rng.chance(0.25))
            ++hits;
    }
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.25, 0.01);
}

// --- Counter-derived point streams (parallel engine contract) ---------

/** Pearson correlation of paired uniform draws from two streams. */
double
streamCorrelation(Rng &a, Rng &b, int n)
{
    double sa = 0, sb = 0, saa = 0, sbb = 0, sab = 0;
    for (int i = 0; i < n; ++i) {
        double x = a.uniform();
        double y = b.uniform();
        sa += x;
        sb += y;
        saa += x * x;
        sbb += y * y;
        sab += x * y;
    }
    double cov = sab / n - (sa / n) * (sb / n);
    double va = saa / n - (sa / n) * (sa / n);
    double vb = sbb / n - (sb / n) * (sb / n);
    return cov / std::sqrt(va * vb);
}

TEST(PointStream, SameKeyGivesIdenticalStream)
{
    // Deterministic replay: the same (baseSeed, workload, mode,
    // trial) key always derives the same stream, on any thread, in
    // any submission order.
    std::uint64_t s1 = ParallelRunner::pointSeed(
        42, "saxpy", TransferMode::Uvm, 3);
    std::uint64_t s2 = ParallelRunner::pointSeed(
        42, "saxpy", TransferMode::Uvm, 3);
    EXPECT_EQ(s1, s2);
    Rng a(s1), b(s2);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a(), b());
}

TEST(PointStream, DifferentTrialsAreUncorrelated)
{
    Rng a(ParallelRunner::pointSeed(42, "saxpy", TransferMode::Uvm,
                                    0));
    Rng b(ParallelRunner::pointSeed(42, "saxpy", TransferMode::Uvm,
                                    1));
    EXPECT_NEAR(streamCorrelation(a, b, 20000), 0.0, 0.03);
}

TEST(PointStream, DifferentModesAreUncorrelated)
{
    Rng a(ParallelRunner::pointSeed(42, "saxpy",
                                    TransferMode::Standard, 0));
    Rng b(ParallelRunner::pointSeed(42, "saxpy", TransferMode::Async,
                                    0));
    EXPECT_NEAR(streamCorrelation(a, b, 20000), 0.0, 0.03);
}

TEST(PointStream, DifferentWorkloadsAreUncorrelated)
{
    Rng a(ParallelRunner::pointSeed(42, "saxpy", TransferMode::Uvm,
                                    0));
    Rng b(ParallelRunner::pointSeed(42, "gemm", TransferMode::Uvm,
                                    0));
    EXPECT_NEAR(streamCorrelation(a, b, 20000), 0.0, 0.03);
}

TEST(PointStream, AnyDifferingKeyComponentChangesTheSeed)
{
    std::uint64_t base = ParallelRunner::pointSeed(
        42, "saxpy", TransferMode::Uvm, 0);
    EXPECT_NE(base, ParallelRunner::pointSeed(
                        43, "saxpy", TransferMode::Uvm, 0));
    EXPECT_NE(base, ParallelRunner::pointSeed(
                        42, "gemm", TransferMode::Uvm, 0));
    EXPECT_NE(base, ParallelRunner::pointSeed(
                        42, "saxpy", TransferMode::UvmPrefetch, 0));
    EXPECT_NE(base, ParallelRunner::pointSeed(
                        42, "saxpy", TransferMode::Uvm, 1));
}

TEST(PointStream, SeedsWellDistributedOverTrialCounter)
{
    // The counter-derived streams must not collide as the trial
    // index sweeps a realistic replication range.
    std::set<std::uint64_t> seeds;
    for (std::uint32_t trial = 0; trial < 4096; ++trial)
        seeds.insert(ParallelRunner::pointSeed(
            42, "saxpy", TransferMode::Uvm, trial));
    EXPECT_EQ(seeds.size(), 4096u);
}

/** Property sweep: distributions behave across many seeds. */
class RngSeedTest : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(RngSeedTest, UniformMeanNearHalf)
{
    Rng rng(GetParam());
    double sum = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        sum += rng.uniform();
    EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST_P(RngSeedTest, NoShortCycles)
{
    Rng rng(GetParam());
    std::uint64_t first = rng();
    for (int i = 0; i < 10000; ++i)
        ASSERT_NE(rng(), first) << "cycle at step " << i;
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngSeedTest,
                         ::testing::Values(0ull, 1ull, 42ull,
                                           0xdeadbeefull,
                                           ~0ull));

} // namespace
} // namespace uvmasync
