/**
 * @file
 * Tests for the statistics helpers, including the property that the
 * streaming accumulator agrees with the retained-sample computation.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "common/stats.hh"

namespace uvmasync
{
namespace
{

TEST(RunningStat, EmptyIsZero)
{
    RunningStat s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
    EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(RunningStat, SingleSample)
{
    RunningStat s;
    s.add(5.0);
    EXPECT_EQ(s.count(), 1u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
    EXPECT_DOUBLE_EQ(s.min(), 5.0);
    EXPECT_DOUBLE_EQ(s.max(), 5.0);
}

TEST(RunningStat, KnownValues)
{
    RunningStat s;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(x);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStat, MergeMatchesSequential)
{
    Rng rng(1);
    RunningStat all, a, b;
    for (int i = 0; i < 500; ++i) {
        double x = rng.normal(3.0, 2.0);
        all.add(x);
        (i % 2 ? a : b).add(x);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), all.count());
    EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
    EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
    EXPECT_DOUBLE_EQ(a.min(), all.min());
    EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStat, MergeWithEmpty)
{
    RunningStat a, b;
    a.add(1.0);
    a.add(3.0);
    a.merge(b);
    EXPECT_EQ(a.count(), 2u);
    b.merge(a);
    EXPECT_EQ(b.count(), 2u);
    EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(SampleSet, AgreesWithRunningStat)
{
    Rng rng(2);
    SampleSet set;
    RunningStat run;
    for (int i = 0; i < 1000; ++i) {
        double x = rng.uniform(0.0, 10.0);
        set.add(x);
        run.add(x);
    }
    EXPECT_NEAR(set.mean(), run.mean(), 1e-9);
    EXPECT_NEAR(set.stddev(), run.stddev(), 1e-9);
    EXPECT_DOUBLE_EQ(set.min(), run.min());
    EXPECT_DOUBLE_EQ(set.max(), run.max());
}

TEST(SampleSet, Percentiles)
{
    SampleSet set;
    for (int i = 1; i <= 100; ++i)
        set.add(static_cast<double>(i));
    EXPECT_DOUBLE_EQ(set.percentile(0.0), 1.0);
    EXPECT_DOUBLE_EQ(set.percentile(100.0), 100.0);
    EXPECT_NEAR(set.median(), 50.5, 1e-9);
    EXPECT_NEAR(set.percentile(25.0), 25.75, 1e-9);
}

TEST(SampleSet, CvZeroMean)
{
    SampleSet set;
    set.add(0.0);
    set.add(0.0);
    EXPECT_DOUBLE_EQ(set.cv(), 0.0);
}

TEST(Geomean, KnownValues)
{
    EXPECT_DOUBLE_EQ(geomean({4.0, 9.0}), 6.0);
    EXPECT_DOUBLE_EQ(geomean({2.0, 2.0, 2.0}), 2.0);
    EXPECT_DOUBLE_EQ(geomean({}), 0.0);
}

TEST(Geomean, BelowArithmeticMean)
{
    Rng rng(3);
    std::vector<double> vals;
    double sum = 0.0;
    for (int i = 0; i < 100; ++i) {
        double v = rng.uniform(0.5, 5.0);
        vals.push_back(v);
        sum += v;
    }
    EXPECT_LE(geomean(vals), sum / 100.0);
}

TEST(Helpers, RelativeChangeAndSpeedup)
{
    EXPECT_DOUBLE_EQ(relativeChange(120.0, 100.0), 0.2);
    EXPECT_DOUBLE_EQ(relativeChange(80.0, 100.0), -0.2);
    EXPECT_DOUBLE_EQ(relativeChange(1.0, 0.0), 0.0);
    EXPECT_DOUBLE_EQ(speedup(50.0, 100.0), 2.0);
    EXPECT_DOUBLE_EQ(speedup(0.0, 100.0), 0.0);
}

TEST(Histogram, BucketsAndClamping)
{
    Histogram h(0.0, 10.0, 5);
    h.add(-1.0);  // clamps to bucket 0
    h.add(0.5);
    h.add(9.9);
    h.add(25.0);  // clamps to last bucket
    EXPECT_EQ(h.total(), 4u);
    EXPECT_EQ(h.bucket(0), 2u);
    EXPECT_EQ(h.bucket(4), 2u);
    EXPECT_DOUBLE_EQ(h.bucketLow(0), 0.0);
    EXPECT_DOUBLE_EQ(h.bucketHigh(4), 10.0);
}

TEST(Histogram, SparklineLength)
{
    Histogram h(0.0, 1.0, 16);
    Rng rng(4);
    for (int i = 0; i < 100; ++i)
        h.add(rng.uniform());
    EXPECT_EQ(h.sparkline().size(), 16u);
}

} // namespace
} // namespace uvmasync
