/**
 * @file
 * Tests for the busy-until bandwidth resources, including the
 * conservation property (total busy time equals the sum of services).
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "sim/resource.hh"

namespace uvmasync
{
namespace
{

TEST(BandwidthResource, FirstRequestStartsImmediately)
{
    BandwidthResource r("r", Bandwidth::fromGBps(1.0));
    Occupancy occ = r.acquire(nanoseconds(100), 1000);
    EXPECT_EQ(occ.start, nanoseconds(100));
    EXPECT_EQ(occ.duration(), microseconds(1)); // 1000 B at 1 B/us
}

TEST(BandwidthResource, BackToBackRequestsQueue)
{
    BandwidthResource r("r", Bandwidth::fromGBps(1.0));
    Occupancy a = r.acquire(0, 1000);
    Occupancy b = r.acquire(0, 1000);
    EXPECT_EQ(b.start, a.end);
    EXPECT_EQ(b.end, a.end + microseconds(1));
}

TEST(BandwidthResource, IdleGapResetsStart)
{
    BandwidthResource r("r", Bandwidth::fromGBps(1.0));
    Occupancy a = r.acquire(0, 1000);
    Occupancy b = r.acquire(a.end + microseconds(5), 1000);
    EXPECT_EQ(b.start, a.end + microseconds(5));
}

TEST(BandwidthResource, PerRequestLatencyAdds)
{
    BandwidthResource r("r", Bandwidth::fromGBps(1.0),
                        microseconds(2));
    Occupancy occ = r.acquire(0, 1000);
    EXPECT_EQ(occ.duration(), microseconds(2) + microseconds(1));
}

TEST(BandwidthResource, StatsAccumulate)
{
    BandwidthResource r("r", Bandwidth::fromGBps(2.0));
    r.acquire(0, 4000);
    r.acquire(0, 6000);
    EXPECT_EQ(r.bytesServed(), 10000u);
    EXPECT_EQ(r.requests(), 2u);
    EXPECT_EQ(r.busyTime(), microseconds(5));
}

TEST(BandwidthResource, ResetClearsTimeline)
{
    BandwidthResource r("r", Bandwidth::fromGBps(1.0));
    r.acquire(0, mib(1));
    r.reset();
    EXPECT_EQ(r.bytesServed(), 0u);
    Occupancy occ = r.acquire(0, 1000);
    EXPECT_EQ(occ.start, 0u);
}

TEST(BandwidthResource, ConservationProperty)
{
    // Total busy time equals the sum of individual service times
    // regardless of the arrival pattern.
    Rng rng(77);
    BandwidthResource r("r", Bandwidth::fromGBps(26.0),
                        nanoseconds(100));
    Tick expected = 0;
    Tick now = 0;
    for (int i = 0; i < 500; ++i) {
        now += rng.uniformInt(std::uint64_t(microseconds(3)));
        Bytes bytes = 1 + rng.uniformInt(std::uint64_t(mib(1)));
        Occupancy occ = r.acquire(now, bytes);
        expected += occ.duration();
    }
    EXPECT_EQ(r.busyTime(), expected);
}

TEST(ChannelResource, SpreadsAcrossChannels)
{
    ChannelResource r("ch", 4, Bandwidth::fromGBps(1.0));
    // Four simultaneous requests should all start at time zero.
    for (int i = 0; i < 4; ++i) {
        Occupancy occ = r.acquire(0, 1000);
        EXPECT_EQ(occ.start, 0u);
    }
    // The fifth queues behind the earliest-finished channel.
    Occupancy fifth = r.acquire(0, 1000);
    EXPECT_EQ(fifth.start, microseconds(1));
}

TEST(ChannelResource, AggregateStats)
{
    ChannelResource r("ch", 2, Bandwidth::fromGBps(1.0));
    r.acquire(0, 1000);
    r.acquire(0, 3000);
    EXPECT_EQ(r.bytesServed(), 4000u);
    EXPECT_EQ(r.busyTime(), microseconds(4));
    r.reset();
    EXPECT_EQ(r.bytesServed(), 0u);
}

TEST(ChannelResource, FasterThanSingleChannel)
{
    ChannelResource many("many", 8, Bandwidth::fromGBps(1.0));
    BandwidthResource one("one", Bandwidth::fromGBps(1.0));
    Tick manyEnd = 0, oneEnd = 0;
    for (int i = 0; i < 64; ++i) {
        manyEnd = std::max(manyEnd, many.acquire(0, kib(64)).end);
        oneEnd = std::max(oneEnd, one.acquire(0, kib(64)).end);
    }
    EXPECT_LT(manyEnd, oneEnd);
}

} // namespace
} // namespace uvmasync
