/**
 * @file
 * Tests for managed-range residency tracking and the page table.
 */

#include <gtest/gtest.h>

#include "mem/page_table.hh"

namespace uvmasync
{
namespace
{

TEST(ManagedRange, ChunkCountRoundsUp)
{
    ManagedRange r("buf", mib(1) + 1, kib(64));
    EXPECT_EQ(r.chunkCount(), 17u);
    EXPECT_EQ(r.chunkSize(0), kib(64));
    EXPECT_EQ(r.chunkSize(16), 1u); // tail chunk
}

TEST(ManagedRange, ExactMultipleHasFullTail)
{
    ManagedRange r("buf", mib(1), kib(64));
    EXPECT_EQ(r.chunkCount(), 16u);
    EXPECT_EQ(r.chunkSize(15), kib(64));
}

TEST(ManagedRange, StartsHostOnlyAndClean)
{
    ManagedRange r("buf", kib(256), kib(64));
    for (ChunkIndex c = 0; c < r.chunkCount(); ++c) {
        EXPECT_EQ(r.state(c), ChunkState::HostOnly);
        EXPECT_FALSE(r.dirty(c));
    }
    EXPECT_EQ(r.residentBytes(), 0u);
}

TEST(ManagedRange, StateTransitions)
{
    ManagedRange r("buf", kib(256), kib(64));
    r.setState(1, ChunkState::MigratingToDev);
    EXPECT_EQ(r.state(1), ChunkState::MigratingToDev);
    r.setState(1, ChunkState::DeviceResident);
    EXPECT_EQ(r.countInState(ChunkState::DeviceResident), 1u);
    EXPECT_EQ(r.residentBytes(), kib(64));
}

TEST(ManagedRange, DirtyBits)
{
    ManagedRange r("buf", kib(128), kib(64));
    r.setDirty(0, true);
    EXPECT_TRUE(r.dirty(0));
    EXPECT_FALSE(r.dirty(1));
    r.reset();
    EXPECT_FALSE(r.dirty(0));
    EXPECT_EQ(r.state(0), ChunkState::HostOnly);
}

TEST(ManagedRange, ResidentBytesCountsPartialTail)
{
    ManagedRange r("buf", kib(64) + 100, kib(64));
    r.setState(1, ChunkState::DeviceResident);
    EXPECT_EQ(r.residentBytes(), 100u);
}

TEST(ManagedRangeDeathTest, OutOfRangeChunkPanics)
{
    ManagedRange r("buf", kib(64), kib(64));
    EXPECT_DEATH(r.state(1), "out of range");
    EXPECT_DEATH(r.setDirty(5, true), "out of range");
}

TEST(PageTable, AddAndFetchRanges)
{
    PageTable pt("pt");
    std::size_t a = pt.addRange("a", mib(1), kib(64));
    std::size_t b = pt.addRange("b", mib(2), kib(64));
    EXPECT_EQ(pt.rangeCount(), 2u);
    EXPECT_EQ(pt.range(a).name(), "a");
    EXPECT_EQ(pt.range(b).bytes(), mib(2));
}

TEST(PageTable, ClearRanges)
{
    PageTable pt("pt");
    pt.addRange("a", mib(1), kib(64));
    pt.clearRanges();
    EXPECT_EQ(pt.rangeCount(), 0u);
}

TEST(PageTable, FaultAndMigrationAccounting)
{
    PageTable pt("pt");
    pt.recordFault();
    pt.recordFault();
    pt.recordMigration(true, kib(64));
    pt.recordMigration(false, kib(32));
    EXPECT_EQ(pt.faults(), 2u);
    EXPECT_EQ(pt.migrationsToDevice(), 1u);
    EXPECT_EQ(pt.migrationsToHost(), 1u);
    EXPECT_EQ(pt.bytesToDevice(), kib(64));
    EXPECT_EQ(pt.bytesToHost(), kib(32));

    StatMap stats;
    pt.exportStats(stats);
    EXPECT_DOUBLE_EQ(stats["pt.faults"], 2.0);

    pt.resetStats();
    EXPECT_EQ(pt.faults(), 0u);
}

} // namespace
} // namespace uvmasync
