/**
 * @file
 * Tests for occupancy calculation, instruction mix, the kernel
 * descriptor builder and the L1 cache model.
 */

#include <gtest/gtest.h>

#include "gpu/cache_model.hh"
#include "gpu/gpu_config.hh"
#include "gpu/instruction_mix.hh"
#include "gpu/kernel_descriptor.hh"
#include "gpu/occupancy.hh"
#include "gpu/transfer_mode.hh"

namespace uvmasync
{
namespace
{

// --- Transfer modes --------------------------------------------------

TEST(TransferMode, NamesRoundTrip)
{
    for (TransferMode m : allTransferModes) {
        TransferMode parsed;
        ASSERT_TRUE(parseTransferMode(transferModeName(m), parsed));
        EXPECT_EQ(parsed, m);
    }
    TransferMode dummy;
    EXPECT_FALSE(parseTransferMode("bogus", dummy));
}

TEST(TransferMode, FeaturePredicates)
{
    EXPECT_FALSE(usesUvm(TransferMode::Standard));
    EXPECT_FALSE(usesUvm(TransferMode::Async));
    EXPECT_TRUE(usesUvm(TransferMode::Uvm));
    EXPECT_TRUE(usesPrefetch(TransferMode::UvmPrefetch));
    EXPECT_FALSE(usesPrefetch(TransferMode::Uvm));
    EXPECT_TRUE(usesAsyncCopy(TransferMode::Async));
    EXPECT_TRUE(usesAsyncCopy(TransferMode::UvmPrefetchAsync));
    EXPECT_FALSE(usesAsyncCopy(TransferMode::UvmPrefetch));
}

// --- Occupancy -------------------------------------------------------

TEST(Occupancy, ThreadLimited)
{
    GpuConfig gpu;
    OccupancyResult res = computeOccupancy(gpu, 1024, 0, kib(32));
    EXPECT_EQ(res.blocksPerSm, 2u); // 2048 threads / 1024
    EXPECT_EQ(res.warpsPerSm, 64u);
    EXPECT_DOUBLE_EQ(res.occupancy, 1.0);
}

TEST(Occupancy, BlockCountLimited)
{
    GpuConfig gpu;
    OccupancyResult res = computeOccupancy(gpu, 32, 0, kib(32));
    EXPECT_EQ(res.blocksPerSm, gpu.maxBlocksPerSm);
    EXPECT_STREQ(res.limiter, "blocks");
}

TEST(Occupancy, SharedMemoryLimited)
{
    GpuConfig gpu;
    OccupancyResult res = computeOccupancy(gpu, 256, kib(16), kib(32));
    EXPECT_EQ(res.blocksPerSm, 2u);
    EXPECT_STREQ(res.limiter, "shmem");
}

TEST(Occupancy, OversizedSharedShrinksTiles)
{
    GpuConfig gpu;
    OccupancyResult res = computeOccupancy(gpu, 256, kib(64), kib(16));
    EXPECT_EQ(res.blocksPerSm, 1u);
    EXPECT_DOUBLE_EQ(res.tileScale, 0.25);
}

TEST(Occupancy, WarpsCappedAtHardwareMax)
{
    GpuConfig gpu;
    OccupancyResult res = computeOccupancy(gpu, 64, 0, kib(32));
    EXPECT_LE(res.warpsPerSm, gpu.maxWarpsPerSm);
}

TEST(OccupancyDeathTest, OversizedBlockPanics)
{
    GpuConfig gpu;
    EXPECT_DEATH(computeOccupancy(gpu, 4096, 0, kib(32)),
                 "exceeds SM capacity");
}

/** Property sweep: occupancy result is always consistent. */
class OccupancySweep
    : public ::testing::TestWithParam<std::tuple<int, int>>
{
};

TEST_P(OccupancySweep, InternallyConsistent)
{
    auto [threads, sharedKib] = GetParam();
    GpuConfig gpu;
    OccupancyResult res = computeOccupancy(
        gpu, static_cast<std::uint32_t>(threads),
        kib(static_cast<std::uint64_t>(sharedKib)), kib(32));
    EXPECT_GE(res.blocksPerSm, 1u);
    EXPECT_LE(res.blocksPerSm, gpu.maxBlocksPerSm);
    EXPECT_GT(res.occupancy, 0.0);
    EXPECT_LE(res.occupancy, 1.0);
    EXPECT_GT(res.tileScale, 0.0);
    EXPECT_LE(res.tileScale, 1.0);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, OccupancySweep,
    ::testing::Combine(::testing::Values(32, 128, 256, 512, 1024),
                       ::testing::Values(0, 4, 16, 32)));

// --- Instruction mix -------------------------------------------------

TEST(InstrMix, Arithmetic)
{
    InstrMix a{1.0, 2.0, 3.0, 4.0};
    InstrMix b{10.0, 20.0, 30.0, 40.0};
    InstrMix sum = a + b;
    EXPECT_DOUBLE_EQ(sum.total(), 110.0);
    InstrMix scaled = a * 2.0;
    EXPECT_DOUBLE_EQ(scaled.fp, 4.0);
    a += b;
    EXPECT_DOUBLE_EQ(a.memory, 11.0);
}

TEST(InstrMix, ControlFraction)
{
    InstrMix m{0.0, 0.0, 0.0, 0.0};
    EXPECT_DOUBLE_EQ(m.controlFraction(), 0.0);
    InstrMix n{1.0, 1.0, 1.0, 1.0};
    EXPECT_DOUBLE_EQ(n.controlFraction(), 0.25);
}

// --- Kernel descriptor builder ---------------------------------------

TEST(KernelDescriptor, StreamBuilderCoversTraffic)
{
    KernelDescriptor kd = makeStreamKernel(
        "k", 1024, 256, gib(1), kib(32), 4, 10.0, 5.0, 1.0, 0.5);
    EXPECT_GE(kd.tilesPerBlock * kd.tileLoadBytes * kd.gridBlocks,
              gib(1));
    EXPECT_EQ(kd.tileLoadBytes, kib(32));
    EXPECT_GT(kd.memPerTile, 0.0);
    EXPECT_GT(kd.fpPerTile, kd.intPerTile); // 10 vs 5 per element
    EXPECT_NEAR(kd.tileStoreBytes, kib(16), 1.0);
}

TEST(KernelDescriptor, LoadBytesHelpers)
{
    KernelDescriptor kd;
    kd.gridBlocks = 10;
    kd.tilesPerBlock = 4;
    kd.tileLoadBytes = kib(8);
    EXPECT_EQ(kd.loadBytesPerBlock(), kib(32));
    EXPECT_EQ(kd.totalLoadBytes(), kib(320));
}

// --- Cache model ------------------------------------------------------

KernelDescriptor
cacheKernel(AccessPattern pattern)
{
    KernelDescriptor kd = makeStreamKernel(
        "k", 1024, 256, gib(1), kib(16), 4, 4.0, 4.0, 1.0, 0.5);
    kd.buffers = {
        KernelBufferUse{0, pattern, true, true, 1.0, true},
    };
    return kd;
}

TEST(CacheModel, SequentialHasLowMissRate)
{
    GpuConfig gpu;
    auto res = simulateL1(gpu, cacheKernel(AccessPattern::Sequential),
                          {gib(1)}, TransferMode::Standard, kib(32),
                          1);
    EXPECT_GT(res.loads, 0u);
    EXPECT_LT(res.loadMissRate, 0.2);
}

TEST(CacheModel, RandomMissesMoreThanSequential)
{
    GpuConfig gpu;
    auto seq = simulateL1(gpu, cacheKernel(AccessPattern::Sequential),
                          {gib(1)}, TransferMode::Standard, kib(32),
                          1);
    auto rnd = simulateL1(gpu, cacheKernel(AccessPattern::Random),
                          {gib(1)}, TransferMode::Standard, kib(32),
                          1);
    EXPECT_GT(rnd.loadMissRate, seq.loadMissRate * 2);
}

TEST(CacheModel, AsyncReducesIrregularMissRates)
{
    // The Figure 10 lud effect: staging through shared memory slashes
    // both load and store miss rates for irregular kernels.
    GpuConfig gpu;
    auto sync = simulateL1(gpu, cacheKernel(AccessPattern::Irregular),
                           {gib(1)}, TransferMode::Standard, kib(32),
                           1);
    auto async = simulateL1(gpu, cacheKernel(AccessPattern::Irregular),
                            {gib(1)}, TransferMode::Async, kib(32), 1);
    EXPECT_LT(async.loadMissRate, sync.loadMissRate);
    EXPECT_LT(async.storeMissRate, sync.storeMissRate);
}

TEST(CacheModel, SmallerL1RaisesMissRate)
{
    GpuConfig gpu;
    auto big = simulateL1(gpu, cacheKernel(AccessPattern::Tiled),
                          {gib(1)}, TransferMode::Standard, kib(8),
                          1);
    auto small = simulateL1(gpu, cacheKernel(AccessPattern::Tiled),
                            {gib(1)}, TransferMode::Standard,
                            kib(160), 1);
    // kib(160) carveout leaves almost no L1.
    EXPECT_GE(small.loadMissRate, big.loadMissRate);
}

TEST(CacheModel, DeterministicPerSeed)
{
    GpuConfig gpu;
    auto a = simulateL1(gpu, cacheKernel(AccessPattern::Irregular),
                        {gib(1)}, TransferMode::Uvm, kib(32), 7);
    auto b = simulateL1(gpu, cacheKernel(AccessPattern::Irregular),
                        {gib(1)}, TransferMode::Uvm, kib(32), 7);
    EXPECT_DOUBLE_EQ(a.loadMissRate, b.loadMissRate);
    EXPECT_DOUBLE_EQ(a.storeMissRate, b.storeMissRate);
}

TEST(CacheModel, EmptyBufferListIsZero)
{
    GpuConfig gpu;
    KernelDescriptor kd;
    auto res = simulateL1(gpu, kd, {}, TransferMode::Standard,
                          kib(32), 1);
    EXPECT_EQ(res.loads, 0u);
    EXPECT_DOUBLE_EQ(res.loadMissRate, 0.0);
}

} // namespace
} // namespace uvmasync
