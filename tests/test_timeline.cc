/**
 * @file
 * Tests for the phase timeline, its Gantt renderer, the Device's
 * recorded timelines and the Figure-14 batch charts.
 */

#include <gtest/gtest.h>

#include "core/batch_pipeline.hh"
#include "runtime/device.hh"
#include "workloads/registry.hh"

namespace uvmasync
{
namespace
{

TEST(Timeline, EmptyTimeline)
{
    Timeline tl;
    EXPECT_EQ(tl.makespan(), 0u);
    EXPECT_EQ(tl.phaseCount(), 0u);
    EXPECT_NE(tl.gantt().find("empty"), std::string::npos);
}

TEST(Timeline, ZeroLengthPhasesBecomeInstants)
{
    // Regression: zero-length phases used to vanish entirely. They
    // still stay off the Gantt chart (no occupancy), but they are
    // kept as instants and surface in the trace exporter.
    Timeline tl;
    tl.setLaneName(0, "cpu");
    tl.add(PhaseKind::Alloc, "nop", nanoseconds(5), nanoseconds(5),
           0);
    EXPECT_EQ(tl.phaseCount(), 0u);
    EXPECT_EQ(tl.makespan(), 0u);
    ASSERT_EQ(tl.instants().size(), 1u);
    EXPECT_EQ(tl.instants()[0].label, "nop");

    Tracer tracer;
    exportTimelineToTrace(tl, tracer);
    ASSERT_EQ(tracer.eventCount(), 1u);
    const TraceEvent &ev = tracer.events()[0];
    EXPECT_TRUE(ev.isInstant());
    EXPECT_EQ(ev.start, nanoseconds(5));
    EXPECT_EQ(ev.category, TraceCategory::Phase);
    EXPECT_EQ(ev.name, TraceName::PhaseAlloc);
    EXPECT_EQ(tracer.laneNames()[ev.lane], "cpu");
}

TEST(Timeline, ExportOrdersSpansForNesting)
{
    // The Device records phases in completion order; the exporter
    // must re-sort per lane so containment windows arrive
    // outermost-first and the trace checker accepts them.
    Timeline tl;
    tl.setLaneName(0, "gpu");
    tl.add(PhaseKind::Kernel, "inner", nanoseconds(10),
           nanoseconds(20), 0);
    tl.add(PhaseKind::Kernel, "outer", 0, nanoseconds(40), 0);

    Tracer tracer;
    exportTimelineToTrace(tl, tracer);
    ASSERT_EQ(tracer.eventCount(), 2u);
    EXPECT_EQ(tracer.events()[0].label, "outer");
    EXPECT_EQ(tracer.events()[1].label, "inner");
}

TEST(Timeline, MakespanIsLatestEnd)
{
    Timeline tl;
    tl.add(PhaseKind::Alloc, "a", 0, nanoseconds(10), 0);
    tl.add(PhaseKind::Kernel, "k", nanoseconds(5), nanoseconds(30),
           1);
    EXPECT_EQ(tl.makespan(), nanoseconds(30));
}

TEST(Timeline, LaneBusyMergesOverlaps)
{
    Timeline tl;
    tl.add(PhaseKind::Kernel, "k1", 0, nanoseconds(10), 0);
    tl.add(PhaseKind::Kernel, "k2", nanoseconds(5), nanoseconds(20),
           0);
    tl.add(PhaseKind::Kernel, "k3", nanoseconds(30), nanoseconds(40),
           0);
    EXPECT_EQ(tl.laneBusy(0), nanoseconds(30)); // [0,20) + [30,40)
    EXPECT_EQ(tl.laneBusy(1), 0u);
}

TEST(Timeline, GanttRendersGlyphsPerLane)
{
    Timeline tl;
    tl.setLaneName(0, "cpu");
    tl.setLaneName(1, "gpu");
    tl.add(PhaseKind::Alloc, "a", 0, nanoseconds(50), 0);
    tl.add(PhaseKind::Kernel, "k", nanoseconds(50), nanoseconds(100),
           1);
    std::string chart = tl.gantt(40);
    EXPECT_NE(chart.find("cpu"), std::string::npos);
    EXPECT_NE(chart.find("gpu"), std::string::npos);
    EXPECT_NE(chart.find('a'), std::string::npos);
    EXPECT_NE(chart.find('#'), std::string::npos);
    // The cpu row's first half is alloc, second half idle.
    std::string cpuRow = chart.substr(0, chart.find('\n'));
    EXPECT_NE(cpuRow.find("aaaa"), std::string::npos);
    EXPECT_NE(cpuRow.find("...."), std::string::npos);
}

TEST(Timeline, GlyphsAreDistinct)
{
    EXPECT_NE(phaseGlyph(PhaseKind::Alloc),
              phaseGlyph(PhaseKind::Free));
    EXPECT_NE(phaseGlyph(PhaseKind::TransferIn),
              phaseGlyph(PhaseKind::TransferOut));
}

struct DeviceTimelineFixture : public ::testing::Test
{
    DeviceTimelineFixture() { registerAllWorkloads(); }
};

TEST_F(DeviceTimelineFixture, RecordsAllPhaseKinds)
{
    Job job = WorkloadRegistry::instance().get("saxpy").makeJob(
        SizeClass::Small);
    Device device(SystemConfig::a100Epyc());
    RunResult run = device.run(job, TransferMode::Standard);

    bool sawAlloc = false, sawIn = false, sawKernel = false,
         sawOut = false, sawFree = false;
    for (const Phase &phase : run.timeline.phases()) {
        switch (phase.kind) {
          case PhaseKind::Alloc: sawAlloc = true; break;
          case PhaseKind::TransferIn: sawIn = true; break;
          case PhaseKind::Kernel: sawKernel = true; break;
          case PhaseKind::TransferOut: sawOut = true; break;
          case PhaseKind::Free: sawFree = true; break;
        }
    }
    EXPECT_TRUE(sawAlloc);
    EXPECT_TRUE(sawIn);
    EXPECT_TRUE(sawKernel);
    EXPECT_TRUE(sawOut);
    EXPECT_TRUE(sawFree);
    EXPECT_EQ(run.timeline.makespan(), run.wallEnd);
}

TEST_F(DeviceTimelineFixture, KernelPhasesMatchLaunchCount)
{
    Job job = WorkloadRegistry::instance().get("srad").makeJob(
        SizeClass::Small);
    Device device(SystemConfig::a100Epyc());
    RunResult run = device.run(job, TransferMode::UvmPrefetch);
    std::size_t kernels = 0;
    for (const Phase &phase : run.timeline.phases()) {
        if (phase.kind == PhaseKind::Kernel)
            ++kernels;
    }
    EXPECT_EQ(kernels, job.launchCount());
}

TEST_F(DeviceTimelineFixture, UvmDemandOverlapsKernelLane)
{
    Job job = WorkloadRegistry::instance().get("saxpy").makeJob(
        SizeClass::Small);
    Device device(SystemConfig::a100Epyc());
    RunResult run = device.run(job, TransferMode::Uvm);
    // Demand migration phases sit on the DMA lane inside the kernel
    // window.
    bool sawDemand = false;
    for (const Phase &phase : run.timeline.phases()) {
        if (phase.kind == PhaseKind::TransferIn && phase.lane == 1 &&
            phase.label.rfind("demand", 0) == 0)
            sawDemand = true;
    }
    EXPECT_TRUE(sawDemand);
}

TEST(BatchTimelines, PipelinedMakespanMatchesScheduler)
{
    std::vector<TimeBreakdown> jobs(5, TimeBreakdown{2e9, 1e9, 3e9});
    BatchScheduleResult sched = scheduleBatch(jobs);
    BatchTimelines charts = buildBatchTimelines(jobs);
    EXPECT_NEAR(static_cast<double>(charts.serial.makespan()),
                sched.serialPs, 10.0);
    EXPECT_NEAR(static_cast<double>(charts.pipelined.makespan()),
                sched.pipelinedPs, 10.0);
    EXPECT_LE(charts.pipelined.makespan(),
              charts.serial.makespan());
}

TEST(BatchTimelines, GpuLaneBusyIdenticalAcrossModels)
{
    std::vector<TimeBreakdown> jobs(4, TimeBreakdown{2e9, 1e9, 3e9});
    BatchTimelines charts = buildBatchTimelines(jobs);
    // The pipeline hides CPU work; GPU work is conserved.
    EXPECT_EQ(charts.serial.laneBusy(1),
              charts.pipelined.laneBusy(1));
}

} // namespace
} // namespace uvmasync
