/**
 * @file
 * Tests for the static model linter: every UAL diagnostic code has a
 * triggering fixture and a clean counterpart, plus a sweep asserting
 * the shipped workload registry lints without errors.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>

#include "analysis/cost_model.hh"
#include "analysis/diagnostic.hh"
#include "analysis/lint.hh"
#include "analysis/passes.hh"
#include "gpu/instruction_mix.hh"
#include "runtime/config_loader.hh"
#include "workloads/job_loader.hh"
#include "workloads/registry.hh"

namespace uvmasync
{
namespace
{

/** Minimal job that lints clean under the default A100 testbed. */
Job
makeCleanJob()
{
    Job job;
    job.name = "fixture";
    job.buffers = {JobBuffer{"in", mib(64), true, false},
                   JobBuffer{"out", mib(64), false, true}};
    KernelDescriptor kd = makeStreamKernel(
        "k0", /*gridBlocks=*/4096, /*threadsPerBlock=*/256,
        /*totalLoadBytes=*/mib(64), /*sharedBytesPerBlock=*/kib(16),
        /*elementBytes=*/4, /*flopsPerElement=*/4.0,
        /*intsPerElement=*/4.0, /*ctrlPerElement=*/1.0,
        /*storeRatio=*/0.5);
    kd.buffers = {
        KernelBufferUse{0, AccessPattern::Sequential, true, false,
                        1.0, true},
        KernelBufferUse{1, AccessPattern::Sequential, false, true,
                        1.0, true},
    };
    job.kernels = {kd};
    return job;
}

DiagnosticEngine
lint(const Job &job)
{
    return lintJob(SystemConfig::a100Epyc(), job, "fixture");
}

// --- diagnostic plumbing ---------------------------------------------

TEST(Diagnostics, SpecsAreCompleteAndStable)
{
    EXPECT_EQ(allDiagSpecs().size(), diagIdCount);
    for (std::size_t i = 0; i < diagIdCount; ++i) {
        const DiagSpec &spec = allDiagSpecs()[i];
        EXPECT_EQ(static_cast<std::size_t>(spec.id), i);
        EXPECT_STRNE(spec.title, "");
        EXPECT_STRNE(spec.hint, "");
        DiagId parsed;
        ASSERT_TRUE(parseDiagCode(spec.code, parsed)) << spec.code;
        EXPECT_EQ(parsed, spec.id);
    }
    DiagId ignored;
    EXPECT_FALSE(parseDiagCode("UAL999", ignored));
    EXPECT_FALSE(parseDiagCode("bogus", ignored));
}

TEST(Diagnostics, FormatCarriesCodeSubjectAndHint)
{
    DiagnosticEngine diags;
    Diagnostic &d = diags.report(DiagId::SharedOverflow, "gemm/k0",
                                 "stage too big");
    d.loc = SourceLoc{"job.ini", 12};
    std::string text = d.format();
    EXPECT_NE(text.find("UAL006"), std::string::npos);
    EXPECT_NE(text.find("gemm/k0"), std::string::npos);
    EXPECT_NE(text.find("stage too big"), std::string::npos);
    EXPECT_NE(text.find("job.ini:12"), std::string::npos);
    EXPECT_NE(text.find("fix:"), std::string::npos);

    EXPECT_EQ(diags.count(Severity::Error), 1u);
    EXPECT_TRUE(diags.hasErrors());
    EXPECT_NE(diags.summary().find("1 error"), std::string::npos);
}

TEST(Diagnostics, CleanFixtureHasNoFindings)
{
    DiagnosticEngine diags = lint(makeCleanJob());
    EXPECT_EQ(diags.count(Severity::Error), 0u) << diags.formatAll();
    EXPECT_EQ(diags.count(Severity::Warn), 0u) << diags.formatAll();
}

// --- UAL001 dangling buffer reference --------------------------------

TEST(Lint, Ual001DanglingBufferRef)
{
    Job job = makeCleanJob();
    job.kernels[0].buffers.push_back(KernelBufferUse{
        5, AccessPattern::Sequential, true, false, 1.0, true});
    DiagnosticEngine diags = lint(job);
    EXPECT_EQ(diags.count(DiagId::DanglingBufferRef), 1u)
        << diags.formatAll();
    EXPECT_TRUE(diags.hasErrors());
    EXPECT_EQ(lint(makeCleanJob()).count(DiagId::DanglingBufferRef),
              0u);
}

// --- UAL002 dependency cycle / order violation -----------------------

TEST(Lint, Ual002SelfAndForwardEdgesAreCycles)
{
    Job job = makeCleanJob();
    job.kernels[0].dependsOn = {0}; // self edge
    EXPECT_EQ(lint(job).count(DiagId::KernelDepCycle), 1u);

    Job fwd = makeCleanJob();
    fwd.kernels.push_back(fwd.kernels[0]);
    fwd.kernels[1].name = "k1";
    fwd.kernels[0].dependsOn = {1}; // depends on a later kernel
    EXPECT_EQ(lint(fwd).count(DiagId::KernelDepCycle), 1u);

    Job ok = makeCleanJob();
    ok.kernels.push_back(ok.kernels[0]);
    ok.kernels[1].name = "k1";
    ok.kernels[1].dependsOn = {0}; // consistent with list order
    EXPECT_EQ(lint(ok).count(DiagId::KernelDepCycle), 0u);
}

// --- UAL003 dangling kernel dependency -------------------------------

TEST(Lint, Ual003DanglingKernelDep)
{
    Job job = makeCleanJob();
    job.kernels[0].dependsOn = {7};
    DiagnosticEngine diags = lint(job);
    EXPECT_EQ(diags.count(DiagId::DanglingKernelDep), 1u);
    EXPECT_TRUE(diags.hasErrors());
}

// --- UAL004 unused / empty buffer ------------------------------------

TEST(Lint, Ual004UnusedBuffer)
{
    Job job = makeCleanJob();
    job.buffers.push_back(JobBuffer{"scratch", mib(8), true, false});
    DiagnosticEngine diags = lint(job);
    EXPECT_EQ(diags.count(DiagId::UnusedBuffer), 1u)
        << diags.formatAll();
    // Unused is a warning, not an error: the model still runs.
    EXPECT_FALSE(diags.hasErrors());
}

TEST(Lint, Ual004ZeroByteBuffer)
{
    Job job = makeCleanJob();
    job.buffers[1].bytes = 0;
    EXPECT_EQ(lint(job).count(DiagId::UnusedBuffer), 1u);
}

// --- UAL005 read of uninitialised data -------------------------------

TEST(Lint, Ual005ReadUninitialized)
{
    Job job = makeCleanJob();
    job.buffers[0].hostInit = false; // read but never produced
    DiagnosticEngine diags = lint(job);
    EXPECT_EQ(diags.count(DiagId::ReadUninitialized), 1u)
        << diags.formatAll();
}

TEST(Lint, Ual005IterativeJobsReadLastIterationsOutput)
{
    // srad-style: kernel 0 reads what kernel 1 (or itself) wrote in
    // the previous sequence iteration.
    Job job = makeCleanJob();
    job.buffers[0].hostInit = false;
    job.kernels[0].buffers[0].written = true;
    job.sequenceRepeats = 8;
    EXPECT_EQ(lint(job).count(DiagId::ReadUninitialized), 0u);
}

// --- UAL006 shared-memory overflow -----------------------------------

TEST(Lint, Ual006SharedOverCarveoutLimit)
{
    Job job = makeCleanJob();
    job.kernels[0].sharedBytesPerBlock = kib(200); // > 164 KiB max
    DiagnosticEngine diags = lint(job);
    EXPECT_GE(diags.count(DiagId::SharedOverflow), 1u);
    EXPECT_TRUE(diags.hasErrors());
}

TEST(Lint, Ual006DoubleBufferNoteIsNotAnError)
{
    Job job = makeCleanJob();
    job.kernels[0].sharedBytesPerBlock = kib(24); // 2x24 > 32 KiB
    DiagnosticEngine diags = lint(job);
    EXPECT_GE(diags.count(DiagId::SharedOverflow), 1u);
    EXPECT_FALSE(diags.hasErrors()) << diags.formatAll();
}

// --- UAL007 launch geometry ------------------------------------------

TEST(Lint, Ual007BadLaunchGeometry)
{
    Job job = makeCleanJob();
    job.kernels[0].threadsPerBlock = 0;
    EXPECT_EQ(lint(job).count(DiagId::BadLaunchGeometry), 1u);

    Job big = makeCleanJob();
    big.kernels[0].threadsPerBlock = 4096; // > 2048 per SM
    DiagnosticEngine diags = lint(big);
    EXPECT_EQ(diags.count(DiagId::BadLaunchGeometry), 1u);
    EXPECT_TRUE(diags.hasErrors());

    Job odd = makeCleanJob();
    odd.kernels[0].threadsPerBlock = 100; // not a warp multiple
    DiagnosticEngine oddDiags = lint(odd);
    EXPECT_EQ(oddDiags.count(DiagId::BadLaunchGeometry), 1u);
    EXPECT_FALSE(oddDiags.hasErrors());
}

// --- UAL008 footprint vs capacities ----------------------------------

TEST(Lint, Ual008FootprintOverHostCapacityIsError)
{
    Job job = makeCleanJob();
    job.buffers[0].bytes = gib(2000); // > 16 x 64 GiB host DRAM
    DiagnosticEngine diags = lint(job);
    EXPECT_EQ(diags.count(DiagId::FootprintOverCapacity), 1u);
    EXPECT_TRUE(diags.hasErrors());
}

TEST(Lint, Ual008DeviceOversubscriptionIsOnlyAWarning)
{
    // UVM oversubscription is a feature the paper studies — warn,
    // do not refuse.
    Job job = makeCleanJob();
    job.buffers[0].bytes = gib(48); // > 40 GiB HBM, < host DRAM
    DiagnosticEngine diags = lint(job);
    EXPECT_EQ(diags.count(DiagId::FootprintOverCapacity), 1u);
    EXPECT_FALSE(diags.hasErrors()) << diags.formatAll();
}

// --- UAL009 page/chunk geometry --------------------------------------

TEST(Lint, Ual009ChunkNotMultipleOfPage)
{
    SystemConfig sys = SystemConfig::a100Epyc();
    sys.uvm.chunkBytes = kib(6); // not a multiple of the 4 KiB page
    DiagnosticEngine diags =
        lintJob(sys, makeCleanJob(), "fixture");
    EXPECT_GE(diags.count(DiagId::BadPageGeometry), 1u);
    EXPECT_TRUE(diags.hasErrors());

    EXPECT_EQ(lint(makeCleanJob()).count(DiagId::BadPageGeometry),
              0u);
}

TEST(Lint, Ual009NonPow2PageIsError)
{
    SystemConfig sys = SystemConfig::a100Epyc();
    sys.gpu.gpuPageBytes = 3000;
    DiagnosticEngine diags = lintSystemConfig(sys);
    EXPECT_GE(diags.count(DiagId::BadPageGeometry), 1u);
    EXPECT_TRUE(diags.hasErrors());
}

// --- UAL010 prefetcher/pattern contradiction -------------------------

TEST(Lint, Ual010PrefetcherOverIrregularTraffic)
{
    SystemConfig sys = SystemConfig::a100Epyc();
    sys.uvm.demandPrefetcher = PrefetcherKind::Stream;
    Job job = makeCleanJob();
    job.kernels[0].buffers[0].pattern = AccessPattern::Random;
    DiagnosticEngine diags = lintJob(sys, job, "fixture");
    EXPECT_EQ(diags.count(DiagId::PrefetchMismatch), 1u)
        << diags.formatAll();

    // Same system over a sequential walk: the prefetcher fits.
    EXPECT_EQ(lintJob(sys, makeCleanJob(), "fixture")
                  .count(DiagId::PrefetchMismatch),
              0u);
}

TEST(Lint, Ual010RedundantPrefetchChurnNote)
{
    Job job = makeCleanJob();
    job.prefetchEachLaunch = true;
    job.sequenceRepeats = 16;
    DiagnosticEngine diags = lint(job);
    EXPECT_EQ(diags.count(DiagId::PrefetchMismatch), 1u);
    EXPECT_FALSE(diags.hasErrors());
}

// --- UAL011 instruction mix ------------------------------------------

TEST(Lint, Ual011BadInstructionMix)
{
    Job job = makeCleanJob();
    job.kernels[0].fpPerTile = -3.0;
    DiagnosticEngine diags = lint(job);
    EXPECT_GE(diags.count(DiagId::BadInstructionMix), 1u);
    EXPECT_TRUE(diags.hasErrors());

    Job zero = makeCleanJob();
    zero.kernels[0].memPerTile = 0.0;
    zero.kernels[0].fpPerTile = 0.0;
    zero.kernels[0].intPerTile = 0.0;
    zero.kernels[0].ctrlPerTile = 0.0;
    EXPECT_GE(lint(zero).count(DiagId::BadInstructionMix), 1u);

    Job sat = makeCleanJob();
    sat.kernels[0].warpsToSaturate = 0.0;
    EXPECT_GE(lint(sat).count(DiagId::BadInstructionMix), 1u);
}

TEST(Lint, MixFractionValidation)
{
    EXPECT_EQ(validateMixFractions(
                  InstrMix{0.5, 0.3, 0.15, 0.05}),
              "");
    EXPECT_NE(validateMixFractions(InstrMix{0.5, 0.3, 0.3, 0.3}),
              "");
    EXPECT_NE(validateMixFractions(InstrMix{1.2, -0.2, 0.0, 0.0}),
              "");
    EXPECT_NE((InstrMix{-1.0, 0.0, 0.0, 0.0}).validate(), "");
    EXPECT_EQ((InstrMix{1.0, 2.0, 3.0, 4.0}).validate(), "");
}

// --- UAL012 touched fraction -----------------------------------------

TEST(Lint, Ual012BadTouchedFraction)
{
    Job job = makeCleanJob();
    job.kernels[0].buffers[0].touchedFraction = 1.5;
    DiagnosticEngine diags = lint(job);
    EXPECT_EQ(diags.count(DiagId::BadTouchedFraction), 1u);
    EXPECT_TRUE(diags.hasErrors());

    Job neg = makeCleanJob();
    neg.kernels[0].buffers[0].touchedFraction = -0.25;
    EXPECT_EQ(lint(neg).count(DiagId::BadTouchedFraction), 1u);
}

// --- UAL013 unknown config keys --------------------------------------

TEST(Lint, Ual013UnknownSystemKeyWithSuggestion)
{
    KvConfig kv = KvConfig::fromString("[gpu]\nsm_cout = 80\n",
                                       "testbed.ini");
    DiagnosticEngine diags =
        lintSystemConfig(SystemConfig::a100Epyc(), &kv);
    ASSERT_EQ(diags.count(DiagId::UnknownConfigKey), 1u)
        << diags.formatAll();
    const Diagnostic *found = nullptr;
    for (const Diagnostic &d : diags.all()) {
        if (d.id == DiagId::UnknownConfigKey)
            found = &d;
    }
    ASSERT_NE(found, nullptr);
    EXPECT_NE(found->message.find("gpu.sm_count"),
              std::string::npos)
        << "should suggest the closest key: " << found->message;
    EXPECT_EQ(found->loc.file, "testbed.ini");
    EXPECT_EQ(found->loc.line, 2);
}

TEST(Lint, Ual013UnknownJobKey)
{
    KvConfig kv = KvConfig::fromString(
        "[buffer.0]\nname = b\nmib = 1\nhost_inti = true\n"
        "[kernel.0]\nname = k\nbuffers = 0:sequential:rw\n");
    DiagnosticEngine diags;
    Job job = jobFromConfig(kv, &diags);
    EXPECT_EQ(job.buffers.size(), 1u);
    EXPECT_EQ(diags.count(DiagId::UnknownConfigKey), 1u)
        << diags.formatAll();
}

// --- UAL014 shadowed keys --------------------------------------------

TEST(Lint, Ual014ShadowedKey)
{
    KvConfig kv = KvConfig::fromString(
        "[gpu]\nsm_count = 80\nsm_count = 108\n", "testbed.ini");
    DiagnosticEngine diags =
        lintSystemConfig(SystemConfig::a100Epyc(), &kv);
    EXPECT_EQ(diags.count(DiagId::ShadowedConfigKey), 1u)
        << diags.formatAll();
    // Shadowing is legal (later wins) — warn, not error.
    EXPECT_FALSE(diags.hasErrors());
    // The value the simulator uses is still the later one.
    EXPECT_EQ(kv.getInt("gpu.sm_count", 0), 108);
}

// --- UAL015 bad system parameter -------------------------------------

TEST(Lint, Ual015BadSystemParam)
{
    SystemConfig sys = SystemConfig::a100Epyc();
    sys.gpu.smCount = 0;
    DiagnosticEngine diags = lintSystemConfig(sys);
    EXPECT_GE(diags.count(DiagId::BadSystemParam), 1u);
    EXPECT_TRUE(diags.hasErrors());

    EXPECT_EQ(lintSystemConfig(SystemConfig::a100Epyc())
                  .count(DiagId::BadSystemParam),
              0u);
}

// --- lint options and enforcement ------------------------------------

TEST(Lint, WerrorPromotesWarnings)
{
    Job job = makeCleanJob();
    job.buffers.push_back(JobBuffer{"scratch", mib(8), true, false});
    LintOptions opts;
    opts.warningsAsErrors = true;
    DiagnosticEngine diags = lintJob(SystemConfig::a100Epyc(), job,
                                     "fixture", nullptr, nullptr,
                                     opts);
    EXPECT_TRUE(diags.hasErrors());
}

TEST(Lint, PassFilterRestrictsChecks)
{
    Job job = makeCleanJob();
    job.kernels[0].buffers[0].touchedFraction = 9.0; // patterns pass
    job.kernels[0].dependsOn = {9};                  // kernel-graph
    LintOptions opts;
    opts.passes = {"patterns"};
    DiagnosticEngine diags = lintJob(SystemConfig::a100Epyc(), job,
                                     "fixture", nullptr, nullptr,
                                     opts);
    EXPECT_EQ(diags.count(DiagId::BadTouchedFraction), 1u);
    EXPECT_EQ(diags.count(DiagId::DanglingKernelDep), 0u);
}

TEST(LintDeathTest, EnforceModeRefusesBrokenModels)
{
    Job job = makeCleanJob();
    job.kernels[0].buffers[0].bufferId = 9;
    EXPECT_DEATH(enforceLint(SystemConfig::a100Epyc(), job,
                             "fixture", LintMode::Enforce),
                 "model lint failed");
}

TEST(Lint, WarnAndOffModesDoNotRefuse)
{
    Job job = makeCleanJob();
    job.kernels[0].buffers[0].bufferId = 9;
    DiagnosticEngine warned = enforceLint(
        SystemConfig::a100Epyc(), job, "fixture", LintMode::Warn);
    EXPECT_TRUE(warned.hasErrors());
    DiagnosticEngine off = enforceLint(
        SystemConfig::a100Epyc(), job, "fixture", LintMode::Off);
    EXPECT_TRUE(off.empty());
}

// --- UAL018 estimated event volume over the watchdog ceiling ---------

TEST(Lint, Ual018EventVolumeOverCeiling)
{
    // 30 GiB / 256 KiB chunks = 122880 chunks; 10000 repeats puts
    // the worst-case fault volume past the 1e9 default ceiling.
    Job job = makeCleanJob();
    job.buffers[0].bytes = gib(30);
    job.sequenceRepeats = 10000;
    DiagnosticEngine diags = lint(job);
    EXPECT_EQ(diags.count(DiagId::EventVolumeOverCeiling), 1u)
        << diags.formatAll();

    EXPECT_EQ(lint(makeCleanJob()).count(
                  DiagId::EventVolumeOverCeiling),
              0u);
}

TEST(Lint, StandardPipelineListsItsPasses)
{
    PassManager pipeline = PassManager::standardPipeline();
    std::vector<std::string> names = pipeline.names();
    ASSERT_EQ(names.size(), 7u);
    EXPECT_EQ(names.front(), "system-config");
    EXPECT_EQ(names.back(), "cost-advisor");
    for (const auto &pass : pipeline.passes()) {
        EXPECT_STRNE(pass->name(), "");
        EXPECT_STRNE(pass->description(), "");
    }
}

// --- UAL019 predicted oversubscription thrash ------------------------

TEST(Lint, Ual019PredictedThrash)
{
    Job job = makeCleanJob();
    job.buffers[0].bytes = gib(48); // touched set > 40 GiB HBM
    DiagnosticEngine diags = lint(job);
    EXPECT_EQ(diags.count(DiagId::PredictedThrash), 1u)
        << diags.formatAll();

    EXPECT_EQ(lint(makeCleanJob()).count(DiagId::PredictedThrash),
              0u);
}

// --- UAL020 dominated transfer-mode selection ------------------------

TEST(Lint, Ual020DominatedModeSelection)
{
    // Self-consistent with the cost model: the analyzer's own worst
    // mode must be flagged, its best mode must not. The fixture's
    // demand-fault path is far slower than one bulk copy, so the
    // best/worst spread comfortably exceeds the 1.25x threshold.
    Job job = makeCleanJob();
    job.buffers[0].bytes = gib(4);
    job.buffers[1].bytes = gib(4);
    CostReport rep = analyzeCost(SystemConfig::a100Epyc(), job);
    TransferMode worst = TransferMode::Standard;
    for (TransferMode m : allTransferModes) {
        if (rep.mode(m).overallPs() >
            rep.mode(worst).overallPs())
            worst = m;
    }
    ASSERT_GT(rep.mode(worst).overallPs(),
              rep.mode(rep.bestMode).overallPs() * 1.25)
        << "fixture no longer spreads the modes";

    DiagnosticEngine flagged = lintJob(
        SystemConfig::a100Epyc(), job, "fixture", nullptr, nullptr,
        {}, &worst);
    EXPECT_EQ(flagged.count(DiagId::DominatedModeSelection), 1u)
        << flagged.formatAll();

    DiagnosticEngine best = lintJob(
        SystemConfig::a100Epyc(), job, "fixture", nullptr, nullptr,
        {}, &rep.bestMode);
    EXPECT_EQ(best.count(DiagId::DominatedModeSelection), 0u)
        << best.formatAll();

    // Mode-agnostic lints (no mode pointer) never see UAL020.
    EXPECT_EQ(lint(job).count(DiagId::DominatedModeSelection), 0u);
}

// --- UAL021 dead buffer write ----------------------------------------

TEST(Lint, Ual021DeadBufferWrite)
{
    Job job = makeCleanJob();
    job.buffers.push_back(JobBuffer{"tmp", mib(64), false, false});
    job.kernels[0].buffers.push_back(KernelBufferUse{
        2, AccessPattern::Sequential, false, true, 1.0, true});
    DiagnosticEngine diags = lint(job);
    EXPECT_EQ(diags.count(DiagId::DeadBufferWrite), 1u)
        << diags.formatAll();

    // Host-consuming the buffer makes the writes observable.
    job.buffers[2].hostConsumed = true;
    EXPECT_EQ(lint(job).count(DiagId::DeadBufferWrite), 0u);
}

// --- UAL022 chunk-geometry bandwidth waste ---------------------------

TEST(Lint, Ual022ChunkGeometryWaste)
{
    // 64 MiB chunks over a 1% touch: one demanded chunk carries
    // ~10.7 MiB of useful data and ~53 MiB of rounding waste.
    SystemConfig sys = SystemConfig::a100Epyc();
    sys.uvm.chunkBytes = mib(64);
    Job job = makeCleanJob();
    job.buffers[0].bytes = gib(1);
    job.kernels[0].buffers[0].touchedFraction = 0.01;
    DiagnosticEngine diags = lintJob(sys, job, "fixture");
    EXPECT_EQ(diags.count(DiagId::ChunkGeometryWaste), 1u)
        << diags.formatAll();

    // The default 256 KiB chunks round the same touch up by at most
    // one chunk — far under the waste floor.
    EXPECT_EQ(lint(job).count(DiagId::ChunkGeometryWaste), 0u);
    EXPECT_EQ(lint(makeCleanJob()).count(
                  DiagId::ChunkGeometryWaste),
              0u);
}

// --- UAL023 prefetch policy vs computed reuse distance ---------------

TEST(Lint, Ual023RedundantPerLaunchPrefetch)
{
    Job job = makeCleanJob();
    job.prefetchEachLaunch = true;
    job.sequenceRepeats = 16;
    DiagnosticEngine diags = lint(job);
    EXPECT_EQ(diags.count(DiagId::PrefetchReuseMismatch), 1u)
        << diags.formatAll();

    // A single launch has nothing to re-prefetch.
    Job once = makeCleanJob();
    once.prefetchEachLaunch = true;
    EXPECT_EQ(lint(once).count(DiagId::PrefetchReuseMismatch), 0u);
}

TEST(Lint, Ual023PrefetcherBeyondReuseDistance)
{
    // k0 reuses "in" every pass, but k1 streams a 48 GiB buffer in
    // between: the reuse distance exceeds device memory, so a demand
    // prefetcher only migrates chunks that die before reuse.
    SystemConfig sys = SystemConfig::a100Epyc();
    sys.uvm.demandPrefetcher = PrefetcherKind::Stream;
    Job job = makeCleanJob();
    job.buffers.push_back(JobBuffer{"huge", gib(48), true, false});
    KernelDescriptor kd = job.kernels[0];
    kd.name = "k1";
    kd.buffers = {KernelBufferUse{
        2, AccessPattern::Sequential, true, false, 1.0, true}};
    job.kernels.push_back(kd);
    job.sequenceRepeats = 4;
    DiagnosticEngine diags = lintJob(sys, job, "fixture");
    EXPECT_GE(diags.count(DiagId::PrefetchReuseMismatch), 1u)
        << diags.formatAll();
}

// --- UAL024 predicted event volume near the watchdog ceiling ---------

TEST(Lint, Ual024EventVolumeInsideRiskBand)
{
    // A streaming 48 GiB walk re-faulted every one of 2000 passes
    // predicts event volume inside (ceiling/2, ceiling]: high enough
    // to be one config tweak away from a PointTimeout, low enough
    // that UAL018's over-the-ceiling error stays silent.
    Job job = makeCleanJob();
    job.buffers[0].bytes = gib(48);
    job.sequenceRepeats = 2000;
    CostReport rep = analyzeCost(SystemConfig::a100Epyc(), job);
    std::uint64_t maxEvents = 0;
    for (TransferMode m : allTransferModes)
        maxEvents = std::max(maxEvents,
                             rep.mode(m).predictedEvents);
    ASSERT_GT(maxEvents * 2, defaultWatchdogMaxEvents)
        << "fixture fell below the risk band";
    ASSERT_LE(maxEvents, defaultWatchdogMaxEvents)
        << "fixture overshot into UAL018 territory";

    DiagnosticEngine diags = lint(job);
    EXPECT_EQ(diags.count(DiagId::PredictedEventVolume), 1u)
        << diags.formatAll();
    EXPECT_EQ(lint(makeCleanJob()).count(
                  DiagId::PredictedEventVolume),
              0u);
}

// --- lint print dedup (jobfile sweeps) -------------------------------

TEST(Lint, WarnModePrintsEachFindingOnceAcrossSweepPoints)
{
    // A jobfile sweep lints the same model once per point; the
    // printed diagnostics must not repeat per point, while the
    // returned engines keep every finding (gate semantics intact).
    Job job = makeCleanJob();
    job.buffers.push_back(JobBuffer{"scratch", mib(8), true, false});
    resetLintPrintDedup();
    ::testing::internal::CaptureStderr();
    DiagnosticEngine first = enforceLint(
        SystemConfig::a100Epyc(), job, "sweep", LintMode::Warn);
    DiagnosticEngine second = enforceLint(
        SystemConfig::a100Epyc(), job, "sweep", LintMode::Warn);
    std::string err = ::testing::internal::GetCapturedStderr();
    resetLintPrintDedup();

    std::size_t prints = 0;
    for (std::size_t pos = err.find("UAL004");
         pos != std::string::npos;
         pos = err.find("UAL004", pos + 1))
        ++prints;
    EXPECT_EQ(prints, 1u) << err;
    EXPECT_EQ(first.count(DiagId::UnusedBuffer), 1u);
    EXPECT_EQ(second.count(DiagId::UnusedBuffer), 1u);
}

TEST(Lint, DistinctSubjectsStillPrint)
{
    Job job = makeCleanJob();
    job.buffers.push_back(JobBuffer{"scratch", mib(8), true, false});
    resetLintPrintDedup();
    ::testing::internal::CaptureStderr();
    enforceLint(SystemConfig::a100Epyc(), job, "point-a",
                LintMode::Warn);
    enforceLint(SystemConfig::a100Epyc(), job, "point-b",
                LintMode::Warn);
    std::string err = ::testing::internal::GetCapturedStderr();
    resetLintPrintDedup();

    EXPECT_NE(err.find("point-a"), std::string::npos) << err;
    EXPECT_NE(err.find("point-b"), std::string::npos) << err;
}

TEST(Lint, ParseLintModeRoundTrip)
{
    LintMode m = LintMode::Off;
    EXPECT_TRUE(parseLintMode("enforce", m));
    EXPECT_EQ(m, LintMode::Enforce);
    EXPECT_TRUE(parseLintMode("warn", m));
    EXPECT_EQ(m, LintMode::Warn);
    EXPECT_TRUE(parseLintMode("off", m));
    EXPECT_EQ(m, LintMode::Off);
    EXPECT_FALSE(parseLintMode("sometimes", m));
}

// --- job loader strictness (satellite: no silent ignores) ------------

TEST(JobLoaderDeathTest, UnknownKeyIsFatalWithoutEngine)
{
    KvConfig kv = KvConfig::fromString(
        "[buffer.0]\nname = b\nmib = 1\nhost_inti = true\n"
        "[kernel.0]\nname = k\nbuffers = 0:sequential:rw\n");
    EXPECT_DEATH(jobFromConfig(kv), "unknown keys");
}

TEST(JobLoaderDeathTest, MalformedNumbersAreActionable)
{
    EXPECT_DEATH(
        jobFromConfig(KvConfig::fromString(
            "[buffer.0]\nname = b\nmib = 1\n[kernel.0]\nname = k\n"
            "buffers = 0:sequential:r:garbage\n")),
        "not a number");
    EXPECT_DEATH(
        jobFromConfig(KvConfig::fromString(
            "[buffer.0]\nname = b\nmib = 1\n[kernel.0]\nname = k\n"
            "buffers = 0:sequential:r:1.7\n")),
        "must be in \\[0, 1\\]");
}

TEST(JobLoader, ParsesDeclaredDependencies)
{
    KvConfig kv = KvConfig::fromString(
        "[buffer.0]\nname = b\nmib = 1\n"
        "[kernel.0]\nname = k0\nbuffers = 0:sequential:rw\n"
        "[kernel.1]\nname = k1\ndepends = 0\n"
        "buffers = 0:sequential:rw\n");
    Job job = jobFromConfig(kv);
    ASSERT_EQ(job.kernels.size(), 2u);
    ASSERT_EQ(job.kernels[1].dependsOn.size(), 1u);
    EXPECT_EQ(job.kernels[1].dependsOn[0], 0u);
    EXPECT_EQ(lintJob(SystemConfig::a100Epyc(), job, "deps")
                  .count(DiagId::KernelDepCycle),
              0u);
}

// --- construction-time validation (satellite) ------------------------

TEST(KernelBuilderDeathTest, RejectsNonFiniteCosts)
{
    EXPECT_DEATH(makeStreamKernel("k", 16, 128, mib(1), kib(16), 4,
                                  -1.0, 0.0, 0.0, 0.5),
                 "instruction costs");
    EXPECT_DEATH(makeStreamKernel("k", 16, 128, mib(1), kib(16), 4,
                                  1.0, 0.0, 0.0, -0.5),
                 "store_ratio");
    EXPECT_DEATH(makeStreamKernel("k", 0, 128, mib(1), kib(16), 4,
                                  1.0, 0.0, 0.0, 0.5),
                 "geometry");
}

// --- the shipped registry is lint-clean ------------------------------

TEST(RegistrySweep, EveryWorkloadLintsWithoutErrors)
{
    registerAllWorkloads();
    SystemConfig sys = SystemConfig::a100Epyc();
    std::size_t cells = 0;
    for (const std::string &name :
         WorkloadRegistry::instance().names()) {
        const Workload &w = *WorkloadRegistry::instance().find(name);
        for (SizeClass size : allSizeClasses) {
            Job job = w.makeJob(size);
            DiagnosticEngine diags = lintJob(
                sys, job,
                name + " @ " + std::string(sizeClassName(size)));
            EXPECT_EQ(diags.count(Severity::Error), 0u)
                << diags.formatAll();
            ++cells;
        }
    }
    EXPECT_GE(cells, 100u); // 21 workloads x 6 sizes
}

} // namespace
} // namespace uvmasync
