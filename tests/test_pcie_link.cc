/**
 * @file
 * Tests for the PCIe link model: per-kind efficiency, full-duplex
 * behaviour, and accounting.
 */

#include <gtest/gtest.h>

#include "xfer/pcie_link.hh"

namespace uvmasync
{
namespace
{

PcieConfig
testConfig()
{
    PcieConfig cfg;
    cfg.perTransferLatency.fill(0); // isolate bandwidth effects
    return cfg;
}

TEST(PcieLink, KindNamesDistinct)
{
    EXPECT_STRNE(transferKindName(TransferKind::PageableCopy),
                 transferKindName(TransferKind::BulkPrefetch));
}

TEST(PcieLink, PinnedFasterThanPageable)
{
    PcieLink link("pcie", testConfig());
    Occupancy pageable = link.transfer(0, mib(64),
                                       Direction::HostToDevice,
                                       TransferKind::PageableCopy);
    PcieLink link2("pcie2", testConfig());
    Occupancy pinned = link2.transfer(0, mib(64),
                                      Direction::HostToDevice,
                                      TransferKind::PinnedCopy);
    EXPECT_LT(pinned.duration(), pageable.duration());
}

TEST(PcieLink, BulkPrefetchFasterThanPageable)
{
    // The root cause of the paper's uvm_prefetch transfer savings.
    PcieLink a("a", testConfig());
    PcieLink b("b", testConfig());
    Occupancy pageable = a.transfer(0, gib(1),
                                    Direction::HostToDevice,
                                    TransferKind::PageableCopy);
    Occupancy bulk = b.transfer(0, gib(1), Direction::HostToDevice,
                                TransferKind::BulkPrefetch);
    EXPECT_LT(bulk.duration(), pageable.duration());
}

TEST(PcieLink, FullDuplexDirectionsIndependent)
{
    PcieLink link("pcie", testConfig());
    Occupancy h2d = link.transfer(0, mib(64),
                                  Direction::HostToDevice,
                                  TransferKind::PinnedCopy);
    Occupancy d2h = link.transfer(0, mib(64),
                                  Direction::DeviceToHost,
                                  TransferKind::PinnedCopy);
    // Both start at zero: directions do not serialize.
    EXPECT_EQ(h2d.start, 0u);
    EXPECT_EQ(d2h.start, 0u);
}

TEST(PcieLink, SameDirectionSerializes)
{
    PcieLink link("pcie", testConfig());
    Occupancy a = link.transfer(0, mib(1), Direction::HostToDevice,
                                TransferKind::PinnedCopy);
    Occupancy b = link.transfer(0, mib(1), Direction::HostToDevice,
                                TransferKind::PinnedCopy);
    EXPECT_EQ(b.start, a.end);
}

TEST(PcieLink, HostFactorSlowsTransfer)
{
    PcieLink a("a", testConfig());
    PcieLink b("b", testConfig());
    Occupancy fast = a.transfer(0, mib(64), Direction::HostToDevice,
                                TransferKind::PageableCopy, 1.0);
    Occupancy slow = b.transfer(0, mib(64), Direction::HostToDevice,
                                TransferKind::PageableCopy, 0.5);
    EXPECT_NEAR(static_cast<double>(slow.duration()),
                2.0 * static_cast<double>(fast.duration()),
                static_cast<double>(fast.duration()) * 0.01);
}

TEST(PcieLink, PerKindLatencyCharged)
{
    PcieConfig cfg = testConfig();
    cfg.perTransferLatency[static_cast<std::size_t>(
        TransferKind::PageableCopy)] = microseconds(25);
    PcieLink link("pcie", cfg);
    Occupancy tiny = link.transfer(0, 1, Direction::HostToDevice,
                                   TransferKind::PageableCopy);
    EXPECT_GE(tiny.duration(), microseconds(24));
}

TEST(PcieLink, ByteAccounting)
{
    PcieLink link("pcie", testConfig());
    link.transfer(0, mib(3), Direction::HostToDevice,
                  TransferKind::PageableCopy);
    link.transfer(0, mib(2), Direction::DeviceToHost,
                  TransferKind::Writeback);
    EXPECT_EQ(link.bytesMoved(Direction::HostToDevice), mib(3));
    EXPECT_EQ(link.bytesMoved(Direction::DeviceToHost), mib(2));
    EXPECT_EQ(link.bytesByKind(TransferKind::PageableCopy), mib(3));
    EXPECT_EQ(link.bytesByKind(TransferKind::Writeback), mib(2));

    link.reset();
    EXPECT_EQ(link.bytesMoved(Direction::HostToDevice), 0u);
    EXPECT_EQ(link.nextFree(0, Direction::HostToDevice), 0u);
}

TEST(PcieLink, StatsExport)
{
    PcieLink link("pcie", testConfig());
    link.transfer(0, kib(64), Direction::HostToDevice,
                  TransferKind::DemandMigration);
    StatMap stats;
    link.exportStats(stats);
    EXPECT_DOUBLE_EQ(stats["pcie.bytes_h2d"],
                     static_cast<double>(kib(64)));
    EXPECT_GT(stats["pcie.busy_h2d_ps"], 0.0);
}

} // namespace
} // namespace uvmasync
