/**
 * @file
 * Tests for the runtime layer: allocation cost model, noise model,
 * job helpers and end-to-end Device execution semantics.
 */

#include <gtest/gtest.h>

#include "common/stats.hh"
#include "runtime/device.hh"
#include "runtime/noise_model.hh"

namespace uvmasync
{
namespace
{

// --- Allocator --------------------------------------------------------

TEST(Allocator, ContextInitChargedOnce)
{
    Allocator alloc("a", AllocatorConfig{});
    Tick first = alloc.deviceAlloc(mib(1));
    Tick second = alloc.deviceAlloc(mib(1));
    EXPECT_GT(first, second);
    EXPECT_GE(first - second, AllocatorConfig{}.contextInit);
}

TEST(Allocator, PerGiBSlope)
{
    Allocator alloc("a", AllocatorConfig{});
    alloc.deviceAlloc(0); // consume context init
    Tick one = alloc.deviceAlloc(gib(1));
    Tick two = alloc.deviceAlloc(gib(2));
    EXPECT_NEAR(static_cast<double>(two - one),
                static_cast<double>(AllocatorConfig{}.deviceAllocPerGiB),
                1e6);
}

TEST(Allocator, ManagedFreeCostsMoreThanAlloc)
{
    Allocator alloc("a", AllocatorConfig{});
    alloc.deviceAlloc(0);
    EXPECT_GT(alloc.managedFree(gib(4)), alloc.managedAlloc(gib(4)));
}

TEST(Allocator, JobAccountingAndReset)
{
    Allocator alloc("a", AllocatorConfig{});
    alloc.deviceAlloc(mib(1));
    EXPECT_GT(alloc.jobAllocTime(), 0u);
    EXPECT_EQ(alloc.calls(), 1u);
    alloc.beginJob();
    EXPECT_EQ(alloc.jobAllocTime(), 0u);
    // Context stays initialised across jobs.
    EXPECT_LT(alloc.deviceAlloc(mib(1)),
              AllocatorConfig{}.contextInit);
    alloc.resetContext();
    EXPECT_GT(alloc.deviceAlloc(mib(1)),
              AllocatorConfig{}.contextInit);
}

// --- Time breakdown ----------------------------------------------------

TEST(TimeBreakdown, SumAndScale)
{
    TimeBreakdown b{1.0, 2.0, 3.0};
    EXPECT_DOUBLE_EQ(b.overallPs(), 6.0);
    TimeBreakdown c = b * 2.0;
    EXPECT_DOUBLE_EQ(c.transferPs, 4.0);
    b += c;
    EXPECT_DOUBLE_EQ(b.overallPs(), 18.0);
}

// --- Noise model --------------------------------------------------------

TEST(NoiseModel, PreservesMeanApproximately)
{
    HostMemory host("host", HostMemoryConfig{});
    NoiseModel noise(NoiseConfig{}, host);
    TimeBreakdown clean{1e12, 1e12, 1e12};
    SampleSet overall;
    for (int i = 0; i < 500; ++i) {
        Rng rng(static_cast<std::uint64_t>(i));
        overall.add(noise.perturb(clean, gib(1), rng).overallPs());
    }
    // Mean shifts only by the additive system overhead.
    double overhead =
        static_cast<double>(NoiseConfig{}.systemOverheadMean);
    EXPECT_NEAR(overall.mean(), clean.overallPs() + overhead,
                clean.overallPs() * 0.02);
}

TEST(NoiseModel, StraddlingFootprintIsNoisier)
{
    // The Figure 5/6 effect: Mega-scale footprints have a larger
    // coefficient of variation than Large/Super ones.
    HostMemory host("host", HostMemoryConfig{});
    NoiseModel noise(NoiseConfig{}, host);
    TimeBreakdown clean{1e12, 5e12, 1e11};
    SampleSet small, big;
    for (int i = 0; i < 300; ++i) {
        Rng r1(static_cast<std::uint64_t>(i));
        Rng r2(static_cast<std::uint64_t>(i));
        small.add(noise.perturb(clean, gib(4), r1).overallPs());
        big.add(noise.perturb(clean, gib(32), r2).overallPs());
    }
    EXPECT_GT(big.cv(), small.cv() * 1.5);
}

TEST(NoiseModel, SmallJobsHaveLargerRelativeNoise)
{
    HostMemory host("host", HostMemoryConfig{});
    NoiseModel noise(NoiseConfig{}, host);
    TimeBreakdown tiny{1e10, 1e10, 1e9};   // ~20 ms job
    TimeBreakdown large{1e12, 1e12, 1e11}; // ~2 s job
    SampleSet tinySet, largeSet;
    for (int i = 0; i < 300; ++i) {
        Rng r1(static_cast<std::uint64_t>(i));
        Rng r2(static_cast<std::uint64_t>(i));
        tinySet.add(noise.perturb(tiny, mib(1), r1).overallPs());
        largeSet.add(noise.perturb(large, gib(4), r2).overallPs());
    }
    EXPECT_GT(tinySet.cv(), largeSet.cv());
}

// --- Job helpers ---------------------------------------------------------

Job
twoBufferJob()
{
    Job job;
    job.name = "test";
    job.buffers = {
        JobBuffer{"in", mib(64), true, false},
        JobBuffer{"out", mib(32), false, true},
    };
    KernelDescriptor kd = makeStreamKernel("k", 256, 256, mib(64),
                                           kib(16), 4, 4.0, 2.0, 0.5,
                                           0.5);
    kd.buffers = {
        KernelBufferUse{0, AccessPattern::Sequential, true, false, 1.0,
                        true},
        KernelBufferUse{1, AccessPattern::Sequential, false, true, 1.0,
                        true},
    };
    job.kernels = {kd};
    return job;
}

TEST(Job, FootprintHelpers)
{
    Job job = twoBufferJob();
    EXPECT_EQ(job.footprint(), mib(96));
    EXPECT_EQ(job.hostInitBytes(), mib(64));
    EXPECT_EQ(job.hostConsumedBytes(), mib(32));
    EXPECT_EQ(job.launchCount(), 1u);
    EXPECT_EQ(job.bufferSizes(),
              (std::vector<Bytes>{mib(64), mib(32)}));
}

TEST(Job, LaunchCountWithRepeats)
{
    Job job = twoBufferJob();
    job.kernels.push_back(job.kernels[0]);
    job.sequenceRepeats = 5;
    EXPECT_EQ(job.launchCount(), 10u);
}

// --- Device end-to-end -----------------------------------------------------

TEST(Device, StandardModeMovesDeclaredBytes)
{
    Device dev(SystemConfig::a100Epyc());
    RunResult res = dev.run(twoBufferJob(), TransferMode::Standard);
    EXPECT_EQ(res.counters.bytesH2d, mib(64));
    EXPECT_EQ(res.counters.bytesD2h, mib(32));
    EXPECT_GT(res.breakdown.allocPs, 0.0);
    EXPECT_GT(res.breakdown.transferPs, 0.0);
    EXPECT_GT(res.breakdown.kernelPs, 0.0);
}

TEST(Device, UvmMovesOnlyTouchedPlusWriteback)
{
    Device dev(SystemConfig::a100Epyc());
    Job job = twoBufferJob();
    RunResult res = dev.run(job, TransferMode::Uvm);
    // H2D: only the host-initialised input.
    EXPECT_LE(res.counters.bytesH2d, mib(64) + mib(1));
    // D2H: the written, host-consumed output.
    EXPECT_GE(res.counters.bytesD2h, mib(31));
    EXPECT_GT(res.counters.faults, 0u);
}

TEST(Device, PrefetchModeHasNoFaults)
{
    Device dev(SystemConfig::a100Epyc());
    RunResult res = dev.run(twoBufferJob(),
                            TransferMode::UvmPrefetch);
    EXPECT_EQ(res.counters.faults, 0u);
}

TEST(Device, DeterministicAcrossRuns)
{
    Device dev(SystemConfig::a100Epyc());
    RunResult a = dev.run(twoBufferJob(), TransferMode::UvmPrefetch);
    RunResult b = dev.run(twoBufferJob(), TransferMode::UvmPrefetch);
    EXPECT_DOUBLE_EQ(a.breakdown.overallPs(),
                     b.breakdown.overallPs());
    EXPECT_EQ(a.counters.faults, b.counters.faults);
}

TEST(Device, PrefetchEachLaunchChurnsTransfers)
{
    Job job = twoBufferJob();
    job.sequenceRepeats = 8;

    Device dev(SystemConfig::a100Epyc());
    job.prefetchEachLaunch = false;
    double quiet = dev.run(job, TransferMode::UvmPrefetch)
                       .breakdown.transferPs;
    job.prefetchEachLaunch = true;
    double churny = dev.run(job, TransferMode::UvmPrefetch)
                        .breakdown.transferPs;
    EXPECT_GT(churny, quiet);
}

TEST(Device, CountersAreKernelWeighted)
{
    Device dev(SystemConfig::a100Epyc());
    RunResult res = dev.run(twoBufferJob(), TransferMode::Standard);
    EXPECT_GE(res.counters.l1LoadMissRate, 0.0);
    EXPECT_LE(res.counters.l1LoadMissRate, 1.0);
    EXPECT_GT(res.counters.occupancy, 0.0);
    EXPECT_EQ(res.counters.launches, 1u);
}

TEST(Device, StatsSnapshotIncludesComponents)
{
    Device dev(SystemConfig::a100Epyc());
    dev.run(twoBufferJob(), TransferMode::Uvm);
    StatMap stats = dev.stats();
    EXPECT_TRUE(stats.count("pcie.bytes_h2d"));
    EXPECT_TRUE(stats.count("pt.faults"));
    EXPECT_TRUE(stats.count("alloc.calls"));
}

} // namespace
} // namespace uvmasync
