/**
 * @file
 * Tests for the parallel experiment engine: serial-vs-parallel
 * bit-identical results over a full mode x workload x trial grid,
 * error isolation (one failing point does not poison the batch),
 * the empty-batch / jobs-greater-than-points edge cases, and the
 * differential-determinism and failure-isolation guarantees of the
 * fault-injection layer.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "core/parallel_runner.hh"
#include "inject/inject_plan.hh"
#include "trace/chrome_export.hh"
#include "trace/metrics.hh"
#include "workloads/registry.hh"

namespace uvmasync
{
namespace
{

/**
 * Exact textual fingerprint of a result: every double printed with
 * %.17g round-trips the full bit pattern, so two equal fingerprints
 * mean bit-identical results.
 */
std::string
fingerprint(const ExperimentResult &res)
{
    char buf[256];
    std::string out = res.workload;
    out += '/';
    out += transferModeName(res.mode);
    auto add = [&](const TimeBreakdown &b) {
        std::snprintf(buf, sizeof(buf), "|%.17g,%.17g,%.17g",
                      b.allocPs, b.transferPs, b.kernelPs);
        out += buf;
    };
    add(res.clean);
    for (const TimeBreakdown &run : res.runs)
        add(run);
    std::snprintf(buf, sizeof(buf),
                  "|f%llu|h%llu|d%llu|l%llu|%.17g|%.17g|%.17g",
                  static_cast<unsigned long long>(res.counters.faults),
                  static_cast<unsigned long long>(
                      res.counters.bytesH2d),
                  static_cast<unsigned long long>(
                      res.counters.bytesD2h),
                  static_cast<unsigned long long>(
                      res.counters.launches),
                  res.counters.l1LoadMissRate,
                  res.counters.l1StoreMissRate,
                  res.counters.occupancy);
    out += buf;
    return out;
}

std::vector<std::string>
fingerprintAll(const std::vector<ExperimentResult> &results)
{
    std::vector<std::string> out;
    out.reserve(results.size());
    for (const ExperimentResult &res : results)
        out.push_back(fingerprint(res));
    return out;
}

/** The issue's grid: 5 modes x 4 workloads x 8 trials = 160 points. */
std::vector<ExperimentPoint>
referenceGrid()
{
    ExperimentOptions base;
    base.size = SizeClass::Small;
    base.runs = 3;
    base.baseSeed = 42;
    std::vector<TransferMode> modes(allTransferModes.begin(),
                                    allTransferModes.end());
    return ParallelRunner::expandGrid(
        {"vector_seq", "saxpy", "gemv", "2DCONV"}, modes, 8, base);
}

TEST(ParallelRunner, GridParallelBitIdenticalToSerial)
{
    std::vector<ExperimentPoint> grid = referenceGrid();
    ASSERT_EQ(grid.size(), 5u * 4u * 8u);

    ParallelRunner serial(SystemConfig::a100Epyc(), 1);
    std::vector<std::string> reference =
        fingerprintAll(serial.run(grid));

    for (unsigned jobs : {2u, 8u}) {
        ParallelRunner parallel(SystemConfig::a100Epyc(), jobs);
        std::vector<std::string> got =
            fingerprintAll(parallel.run(grid));
        ASSERT_EQ(got.size(), reference.size()) << "jobs=" << jobs;
        for (std::size_t i = 0; i < reference.size(); ++i)
            EXPECT_EQ(got[i], reference[i])
                << "jobs=" << jobs << " point " << i;
    }
}

TEST(ParallelRunner, RepeatedParallelRunsAreStable)
{
    // Thread scheduling must never leak into results: two parallel
    // runs of the same batch are bit-identical to each other.
    std::vector<ExperimentPoint> grid = referenceGrid();
    ParallelRunner runner(SystemConfig::a100Epyc(), 8);
    EXPECT_EQ(fingerprintAll(runner.run(grid)),
              fingerprintAll(runner.run(grid)));
}

TEST(ParallelRunner, ExceptionInOnePointDoesNotPoisonBatch)
{
    ExperimentOptions opts;
    opts.size = SizeClass::Small;
    opts.runs = 2;
    std::vector<ExperimentPoint> points = {
        {"vector_seq", TransferMode::Standard, opts},
        {"no_such_workload", TransferMode::Uvm, opts},
        {"saxpy", TransferMode::Async, opts},
    };
    ParallelRunner runner(SystemConfig::a100Epyc(), 2);
    BatchResult batch = runner.runPoints(points);

    ASSERT_EQ(batch.points.size(), 3u);
    EXPECT_TRUE(batch.points[0].ok);
    EXPECT_FALSE(batch.points[1].ok);
    EXPECT_NE(batch.points[1].error.find("no_such_workload"),
              std::string::npos);
    EXPECT_TRUE(batch.points[2].ok);
    EXPECT_FALSE(batch.allOk());

    // The healthy points carry real results.
    EXPECT_GT(batch.points[0].result.clean.overallPs(), 0.0);
    EXPECT_GT(batch.points[2].result.clean.overallPs(), 0.0);

    // The throwing accessor names the failed point.
    EXPECT_THROW(batch.results(), std::runtime_error);
}

TEST(ParallelRunner, EmptyBatch)
{
    ParallelRunner runner(SystemConfig::a100Epyc(), 4);
    BatchResult batch = runner.runPoints({});
    EXPECT_TRUE(batch.points.empty());
    EXPECT_TRUE(batch.allOk());
    EXPECT_TRUE(batch.results().empty());
    EXPECT_EQ(batch.metrics.points, 0u);
}

TEST(ParallelRunner, MoreJobsThanPoints)
{
    ExperimentOptions opts;
    opts.size = SizeClass::Small;
    opts.runs = 2;
    std::vector<ExperimentPoint> points = {
        {"vector_seq", TransferMode::Standard, opts},
        {"vector_seq", TransferMode::Uvm, opts},
    };

    ParallelRunner serial(SystemConfig::a100Epyc(), 1);
    ParallelRunner wide(SystemConfig::a100Epyc(), 16);
    BatchResult batch = wide.runPoints(points);

    // Workers are clamped to the point count.
    EXPECT_EQ(batch.metrics.jobs, 2u);
    EXPECT_EQ(fingerprintAll(batch.results()),
              fingerprintAll(serial.run(points)));
}

TEST(ParallelRunner, MetricsObserveTheBatch)
{
    std::vector<ExperimentPoint> grid = referenceGrid();
    ParallelRunner runner(SystemConfig::a100Epyc(), 2);
    BatchResult batch = runner.runPoints(grid);
    EXPECT_EQ(batch.metrics.points, grid.size());
    EXPECT_EQ(batch.metrics.jobs, 2u);
    EXPECT_GT(batch.metrics.wallMs, 0.0);
    EXPECT_GE(batch.metrics.busyMs, 0.0);
    EXPECT_GT(batch.metrics.pointsPerSec, 0.0);
    for (const PointOutcome &point : batch.points) {
        EXPECT_LT(point.metrics.worker, 2u);
        EXPECT_GE(point.metrics.queueWaitMs, 0.0);
    }
}

TEST(ParallelRunner, ExpandGridSeedsAreCounterDerived)
{
    ExperimentOptions base;
    base.baseSeed = 7;
    std::vector<TransferMode> modes = {TransferMode::Standard,
                                       TransferMode::Uvm};
    std::vector<ExperimentPoint> grid =
        ParallelRunner::expandGrid({"saxpy"}, modes, 2, base);
    ASSERT_EQ(grid.size(), 4u);
    // Every (mode, trial) key gets its own stream...
    std::set<std::uint64_t> seeds;
    for (const ExperimentPoint &point : grid)
        seeds.insert(point.opts.baseSeed);
    EXPECT_EQ(seeds.size(), grid.size());
    // ...and the derivation matches the documented contract.
    EXPECT_EQ(grid[0].opts.baseSeed,
              ParallelRunner::pointSeed(7, "saxpy",
                                        TransferMode::Standard, 0));
    EXPECT_EQ(grid[3].opts.baseSeed,
              ParallelRunner::pointSeed(7, "saxpy", TransferMode::Uvm,
                                        1));
}

TEST(ParallelRunner, TracedBatchExportIsByteIdenticalToSerial)
{
    // Tracing must not perturb the engine's determinism: the merged
    // Chrome export of a traced grid is byte-identical between a
    // serial run and a 4-worker run (submission-order merge, one
    // Tracer per point).
    ExperimentOptions base;
    base.size = SizeClass::Tiny;
    base.runs = 1;
    base.baseSeed = 42;
    base.trace = true;
    std::vector<TransferMode> modes(allTransferModes.begin(),
                                    allTransferModes.end());
    std::vector<ExperimentPoint> points = ParallelRunner::expandGrid(
        {"saxpy", "vector_seq"}, modes, 1, base);

    auto exported = [](const std::vector<ExperimentResult> &results) {
        std::vector<ChromeTraceJob> jobs;
        jobs.reserve(results.size());
        for (const ExperimentResult &res : results) {
            jobs.push_back(ChromeTraceJob{
                res.workload + "/" + transferModeName(res.mode),
                &res.trace});
        }
        std::ostringstream out;
        writeChromeTrace(out, jobs);
        return out.str();
    };

    ParallelRunner serial(SystemConfig::a100Epyc(), 1);
    std::string reference = exported(serial.run(points));
    ASSERT_NE(reference.find("\"traceEvents\""), std::string::npos);

    ParallelRunner parallel(SystemConfig::a100Epyc(), 4);
    EXPECT_EQ(exported(parallel.run(points)), reference);
}

TEST(ParallelRunner, InjectedBatchIsByteIdenticalAcrossJobCounts)
{
    // Differential determinism of the fault-injection layer: with a
    // plan firing on four different seams, a 4-worker batch must
    // replay byte-identically to a serial one — fingerprints, merged
    // Chrome export and per-point metrics CSVs all included. The
    // injector's RNG streams derive from (injectSeed, point seed)
    // only, never from scheduling.
    ExperimentOptions base;
    base.size = SizeClass::Tiny;
    base.runs = 1;
    base.baseSeed = 42;
    base.trace = true;
    base.injectSeed = 7;
    base.inject = InjectPlan::fromKv(KvConfig::fromString(
        "inject.pcie.degrade_factor = 3\n"
        "inject.pcie.fail_rate = 0.1\n"
        "inject.pcie.max_retries = 1000000\n"
        "inject.pcie.backoff_base_us = 1\n"
        "inject.host.slow_rate = 0.5\n"
        "inject.host.slow_factor = 2\n"
        "inject.kernel.jitter_rate = 0.5\n"
        "inject.kernel.jitter_us = 2\n"));
    std::vector<TransferMode> modes(allTransferModes.begin(),
                                    allTransferModes.end());
    std::vector<ExperimentPoint> points = ParallelRunner::expandGrid(
        {"saxpy", "vector_seq"}, modes, 1, base);

    auto artifacts = [](const std::vector<ExperimentResult> &results) {
        std::ostringstream out;
        std::vector<ChromeTraceJob> jobs;
        jobs.reserve(results.size());
        for (const ExperimentResult &res : results) {
            jobs.push_back(ChromeTraceJob{
                res.workload + "/" + transferModeName(res.mode),
                &res.trace});
        }
        writeChromeTrace(out, jobs);
        for (const ExperimentResult &res : results) {
            writeTraceMetricsCsv(out, computeTraceMetrics(res.trace));
            out << fingerprint(res) << "\n";
        }
        return out.str();
    };

    ParallelRunner serial(SystemConfig::a100Epyc(), 1);
    std::vector<ExperimentResult> reference = serial.run(points);

    // The plan must actually have perturbed something, or this test
    // proves nothing.
    std::uint64_t fired = 0;
    for (const ExperimentResult &res : reference)
        fired += res.injectCounters.totalEvents();
    ASSERT_GT(fired, 0u);

    ParallelRunner parallel(SystemConfig::a100Epyc(), 4);
    EXPECT_EQ(artifacts(parallel.run(points)), artifacts(reference));
}

TEST(ParallelRunner, PoisonedConfigurationFailsOnlyItsPoint)
{
    // A configuration the linter rejects (a block bigger than the SM
    // thread capacity) fatals inside the worker; the engine converts
    // it to a structured per-point error and the sibling points come
    // out bit-identical to a batch that never contained the poison.
    ExperimentOptions good;
    good.size = SizeClass::Small;
    good.runs = 2;
    ExperimentOptions poisoned = good;
    poisoned.geometry.threadsPerBlock = 4096;

    std::vector<ExperimentPoint> withPoison = {
        {"vector_seq", TransferMode::Standard, good},
        {"saxpy", TransferMode::Uvm, poisoned},
        {"saxpy", TransferMode::Async, good},
    };
    std::vector<ExperimentPoint> clean = {
        {"vector_seq", TransferMode::Standard, good},
        {"saxpy", TransferMode::Async, good},
    };

    ParallelRunner runner(SystemConfig::a100Epyc(), 2);
    BatchResult batch = runner.runPoints(withPoison);
    ASSERT_EQ(batch.points.size(), 3u);
    EXPECT_TRUE(batch.points[0].ok);
    ASSERT_FALSE(batch.points[1].ok);
    EXPECT_NE(batch.points[1].error.find("lint"), std::string::npos)
        << batch.points[1].error;
    EXPECT_TRUE(batch.points[2].ok);

    std::vector<ExperimentResult> reference = runner.run(clean);
    EXPECT_EQ(fingerprint(batch.points[0].result),
              fingerprint(reference[0]));
    EXPECT_EQ(fingerprint(batch.points[2].result),
              fingerprint(reference[1]));
}

TEST(ParallelRunner, InjectedAbortIsAStructuredPerPointError)
{
    // A transfer that exhausts its injected retry budget fails its
    // job with TransferAborted; the batch survives and reports the
    // abort verbatim.
    ExperimentOptions good;
    good.size = SizeClass::Small;
    good.runs = 1;
    ExperimentOptions doomed = good;
    doomed.inject = InjectPlan::fromKv(KvConfig::fromString(
        "inject.pcie.fail_rate = 1\n"
        "inject.pcie.max_retries = 2\n"
        "inject.pcie.backoff_base_us = 1\n"));

    std::vector<ExperimentPoint> points = {
        {"vector_seq", TransferMode::Standard, good},
        {"vector_seq", TransferMode::Standard, doomed},
        {"saxpy", TransferMode::Uvm, good},
    };
    ParallelRunner runner(SystemConfig::a100Epyc(), 2);
    BatchResult batch = runner.runPoints(points);
    ASSERT_EQ(batch.points.size(), 3u);
    EXPECT_TRUE(batch.points[0].ok);
    ASSERT_FALSE(batch.points[1].ok);
    EXPECT_NE(batch.points[1].error.find("after 2 retries"),
              std::string::npos)
        << batch.points[1].error;
    EXPECT_TRUE(batch.points[2].ok);
    EXPECT_FALSE(batch.allOk());
}

TEST(ParallelRunner, LivelockedPointIsQuarantinedSiblingsIntact)
{
    // An eviction-storm inject plan thrashes prefetched chunks out
    // at zero simulated cost: a long same-tick run of clean
    // evictions that no time-based bound can see, which the stall
    // detector flags as livelock. The doomed point is retried with
    // the same seed (fails identically), quarantined, and reported;
    // its siblings come out bit-identical to a batch that never
    // contained it.
    SystemConfig system = SystemConfig::a100Epyc();
    system.watchdog.maxStallEvents = 48;

    ExperimentOptions good;
    good.size = SizeClass::Medium;
    good.runs = 1;
    ExperimentOptions doomed = good;
    doomed.injectSeed = 7;
    doomed.inject = InjectPlan::fromKv(KvConfig::fromString(
        "inject.migrate.storm_rate = 0.01\n"
        "inject.migrate.storm_chunks = 100000\n"));

    std::vector<ExperimentPoint> withDoom = {
        {"vector_seq", TransferMode::Standard, good},
        {"saxpy", TransferMode::Uvm, doomed},
        {"saxpy", TransferMode::Uvm, good},
    };
    std::vector<ExperimentPoint> clean = {withDoom[0], withDoom[2]};

    ParallelRunner runner(system, 2);
    RunPolicy policy;
    policy.retries = 1;
    BatchResult batch = runner.runPoints(withDoom, policy);

    ASSERT_EQ(batch.points.size(), 3u);
    const PointOutcome &out = batch.points[1];
    ASSERT_FALSE(out.ok);
    EXPECT_EQ(out.status, PointStatus::Quarantined);
    EXPECT_EQ(out.attempts, 2u);
    EXPECT_NE(out.error.find("livelock"), std::string::npos)
        << out.error;
    ASSERT_EQ(out.attemptTrail.size(), 2u);
    EXPECT_EQ(out.attemptTrail[0].status, PointStatus::Timeout);
    // Retries reuse the point's seed, so a deterministic failure
    // fails identically on every attempt.
    EXPECT_EQ(out.attemptTrail[0].error, out.attemptTrail[1].error);

    EXPECT_TRUE(batch.points[0].ok);
    EXPECT_TRUE(batch.points[2].ok);
    EXPECT_EQ(batch.quarantined(), 1u);
    EXPECT_TRUE(batch.degraded());

    std::vector<ExperimentResult> reference = runner.run(clean);
    EXPECT_EQ(fingerprint(batch.points[0].result),
              fingerprint(reference[0]));
    EXPECT_EQ(fingerprint(batch.points[2].result),
              fingerprint(reference[1]));
}

TEST(ParallelRunner, GlobalJobsOverrideAndRestore)
{
    setGlobalJobs(3);
    EXPECT_EQ(globalJobs(), 3u);
    ParallelRunner runner(SystemConfig::a100Epyc());
    EXPECT_EQ(runner.jobs(), 3u);
    setGlobalJobs(0); // restore auto
    EXPECT_GE(globalJobs(), 1u);
}

} // namespace
} // namespace uvmasync
