/**
 * @file
 * Golden-output suite for the linter's rendered diagnostics.
 *
 * One triggering fixture per UAL code (UAL001-UAL024); the exact
 * rendered text — location, severity, code, subject, message and
 * fix-it hint — is pinned in tests/golden/lint_hints.txt, and the
 * same findings rendered as SARIF are pinned in
 * tests/golden/lint_findings.sarif.json. Any wording change to a
 * diagnostic or to either renderer shows up as a reviewable diff:
 *
 *     ./build/tests/test_lint_golden --update-golden
 *     git diff tests/golden/
 */

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "analysis/cost_model.hh"
#include "analysis/diagnostic.hh"
#include "analysis/lint.hh"
#include "analysis/sarif.hh"
#include "gpu/instruction_mix.hh"
#include "runtime/config_loader.hh"
#include "workloads/registry.hh"

namespace uvmasync
{
namespace
{

bool gUpdateGolden = false;

std::string
goldenPath(const std::string &name)
{
    return std::string(UVMASYNC_GOLDEN_DIR) + "/" + name;
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return {};
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
}

void
compareOrUpdate(const std::string &name, const std::string &actual)
{
    std::string path = goldenPath(name);
    if (gUpdateGolden) {
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        ASSERT_TRUE(out) << "cannot write golden " << path;
        out << actual;
        SUCCEED() << "updated " << path;
        return;
    }
    std::string expected = readFile(path);
    ASSERT_FALSE(expected.empty())
        << "golden " << path << " is missing or empty; regenerate "
        << "with: test_lint_golden --update-golden";
    EXPECT_EQ(expected, actual)
        << "rendered diagnostics changed. If the wording change is "
        << "intentional, regenerate with --update-golden and review "
        << "the diff.";
}

/** The shared clean baseline (mirrors test_analysis.cc). */
Job
makeCleanJob()
{
    Job job;
    job.name = "fixture";
    job.buffers = {JobBuffer{"in", mib(64), true, false},
                   JobBuffer{"out", mib(64), false, true}};
    KernelDescriptor kd = makeStreamKernel(
        "k0", /*gridBlocks=*/4096, /*threadsPerBlock=*/256,
        /*totalLoadBytes=*/mib(64), /*sharedBytesPerBlock=*/kib(16),
        /*elementBytes=*/4, /*flopsPerElement=*/4.0,
        /*intsPerElement=*/4.0, /*ctrlPerElement=*/1.0,
        /*storeRatio=*/0.5);
    kd.buffers = {
        KernelBufferUse{0, AccessPattern::Sequential, true, false,
                        1.0, true},
        KernelBufferUse{1, AccessPattern::Sequential, false, true,
                        1.0, true},
    };
    job.kernels = {kd};
    return job;
}

/**
 * Lint the canonical triggering fixture for @p id and return the
 * engine holding (at least) one finding of that code.
 */
DiagnosticEngine
findingsFor(DiagId id)
{
    SystemConfig sys = SystemConfig::a100Epyc();
    Job job = makeCleanJob();
    switch (id) {
    case DiagId::DanglingBufferRef:
        job.kernels[0].buffers[0].bufferId = 5;
        return lintJob(sys, job, "fixture");
    case DiagId::KernelDepCycle:
        job.kernels[0].dependsOn = {0};
        return lintJob(sys, job, "fixture");
    case DiagId::DanglingKernelDep:
        job.kernels[0].dependsOn = {7};
        return lintJob(sys, job, "fixture");
    case DiagId::UnusedBuffer:
        job.buffers.push_back(
            JobBuffer{"scratch", mib(8), true, false});
        return lintJob(sys, job, "fixture");
    case DiagId::ReadUninitialized:
        job.buffers[0].hostInit = false;
        return lintJob(sys, job, "fixture");
    case DiagId::SharedOverflow:
        job.kernels[0].sharedBytesPerBlock = kib(200);
        return lintJob(sys, job, "fixture");
    case DiagId::BadLaunchGeometry:
        job.kernels[0].threadsPerBlock = 0;
        return lintJob(sys, job, "fixture");
    case DiagId::FootprintOverCapacity:
        job.buffers[0].bytes = gib(2000);
        return lintJob(sys, job, "fixture");
    case DiagId::BadPageGeometry:
        sys.uvm.chunkBytes = kib(6);
        return lintJob(sys, job, "fixture");
    case DiagId::PrefetchMismatch:
        sys.uvm.demandPrefetcher = PrefetcherKind::Stream;
        job.kernels[0].buffers[0].pattern = AccessPattern::Random;
        return lintJob(sys, job, "fixture");
    case DiagId::BadInstructionMix:
        job.kernels[0].fpPerTile = -3.0;
        return lintJob(sys, job, "fixture");
    case DiagId::BadTouchedFraction:
        job.kernels[0].buffers[0].touchedFraction = 1.5;
        return lintJob(sys, job, "fixture");
    case DiagId::UnknownConfigKey: {
        KvConfig kv = KvConfig::fromString("[gpu]\nsm_cout = 80\n",
                                           "testbed.ini");
        return lintSystemConfig(sys, &kv);
    }
    case DiagId::ShadowedConfigKey: {
        KvConfig kv = KvConfig::fromString(
            "[gpu]\nsm_count = 80\nsm_count = 108\n", "testbed.ini");
        return lintSystemConfig(sys, &kv);
    }
    case DiagId::BadSystemParam:
        sys.gpu.smCount = 0;
        return lintSystemConfig(sys);
    case DiagId::BadInjectParam:
        return lintInjectPlan(KvConfig::fromString(
            "[inject.pcie]\nfail_rate = 1.5\n", "plan.ini"));
    case DiagId::InertInjectPlan:
        return lintInjectPlan(KvConfig::fromString(
            "[inject]\nseed = 9\n", "plan.ini"));
    case DiagId::EventVolumeOverCeiling:
        job.buffers[0].bytes = gib(30);
        job.sequenceRepeats = 10000;
        return lintJob(sys, job, "fixture");
    case DiagId::PredictedThrash:
        job.buffers[0].bytes = gib(48);
        return lintJob(sys, job, "fixture");
    case DiagId::DominatedModeSelection: {
        job.buffers[0].bytes = gib(4);
        job.buffers[1].bytes = gib(4);
        CostReport rep = analyzeCost(sys, job);
        TransferMode worst = TransferMode::Standard;
        for (TransferMode m : allTransferModes) {
            if (rep.mode(m).overallPs() >
                rep.mode(worst).overallPs())
                worst = m;
        }
        return lintJob(sys, job, "fixture", nullptr, nullptr, {},
                       &worst);
    }
    case DiagId::DeadBufferWrite:
        job.buffers.push_back(
            JobBuffer{"tmp", mib(64), false, false});
        job.kernels[0].buffers.push_back(KernelBufferUse{
            2, AccessPattern::Sequential, false, true, 1.0, true});
        return lintJob(sys, job, "fixture");
    case DiagId::ChunkGeometryWaste:
        sys.uvm.chunkBytes = mib(64);
        job.buffers[0].bytes = gib(1);
        job.kernels[0].buffers[0].touchedFraction = 0.01;
        return lintJob(sys, job, "fixture");
    case DiagId::PrefetchReuseMismatch:
        job.prefetchEachLaunch = true;
        job.sequenceRepeats = 16;
        return lintJob(sys, job, "fixture");
    case DiagId::PredictedEventVolume:
        job.buffers[0].bytes = gib(48);
        job.sequenceRepeats = 2000;
        return lintJob(sys, job, "fixture");
    }
    return {};
}

/**
 * One representative finding per code, in code order, copied into a
 * single engine so both renderers see the identical finding set.
 */
DiagnosticEngine
representativeFindings()
{
    DiagnosticEngine combined;
    for (std::size_t i = 0; i < diagIdCount; ++i) {
        DiagId id = static_cast<DiagId>(i);
        DiagnosticEngine diags = findingsFor(id);
        const Diagnostic *found = nullptr;
        for (const Diagnostic &d : diags.all()) {
            if (d.id == id) {
                found = &d;
                break;
            }
        }
        EXPECT_NE(found, nullptr)
            << "fixture for " << diagSpec(id).code
            << " no longer triggers it:\n"
            << diags.formatAll();
        if (!found)
            continue;
        Diagnostic &copy = combined.report(
            found->id, found->severity, found->subject,
            found->message);
        copy.hint = found->hint;
        copy.loc = found->loc;
    }
    return combined;
}

TEST(LintGolden, RenderedHintTextPerCode)
{
    registerAllWorkloads();
    DiagnosticEngine findings = representativeFindings();
    std::string text;
    for (const Diagnostic &d : findings.all())
        text += d.format() + "\n";
    compareOrUpdate("lint_hints.txt", text);
}

TEST(LintGolden, SarifRendering)
{
    registerAllWorkloads();
    DiagnosticEngine findings = representativeFindings();
    compareOrUpdate("lint_findings.sarif.json",
                    renderSarif(findings));
}

} // namespace
} // namespace uvmasync

int
main(int argc, char **argv)
{
    ::testing::InitGoogleTest(&argc, argv);
    for (int i = 1; i < argc; ++i) {
        if (std::string(argv[i]) == "--update-golden")
            uvmasync::gUpdateGolden = true;
    }
    return RUN_ALL_TESTS();
}
