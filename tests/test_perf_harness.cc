/**
 * @file
 * Tests for the perf-trajectory harness schema (perf/bench_report.hh):
 * exact median/warmup arithmetic on synthetic timings, bit-exact JSON
 * round-trips under the journal's strict parser, fingerprint
 * exclusion from comparisons, the tolerance-band gate, and that the
 * committed BENCH_*.json artifact still parses and records the
 * campaign's pinned speedup.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <fstream>
#include <sstream>

#include "journal/json.hh"
#include "perf/bench_report.hh"

namespace uvmasync
{
namespace
{

// --- Median & warmup arithmetic ----------------------------------------

TEST(BenchMedian, OddCountTakesMiddle)
{
    EXPECT_DOUBLE_EQ(medianOf({3.0, 1.0, 2.0}), 2.0);
    EXPECT_DOUBLE_EQ(medianOf({7.0}), 7.0);
    EXPECT_DOUBLE_EQ(medianOf({5.0, 5.0, 1.0, 9.0, 5.0}), 5.0);
}

TEST(BenchMedian, EvenCountAveragesMiddlePair)
{
    EXPECT_DOUBLE_EQ(medianOf({4.0, 1.0, 3.0, 2.0}), 2.5);
    EXPECT_DOUBLE_EQ(medianOf({10.0, 20.0}), 15.0);
}

TEST(BenchPhaseAssembly, WarmupSamplesAreDiscarded)
{
    // The slow first rep (cold caches) must not pollute the stats.
    BenchPhase p = finishPhase("x", "items/sec", 1000, 1,
                               {100.0, 10.0, 30.0, 20.0});
    ASSERT_EQ(p.samplesNs.size(), 3u);
    EXPECT_DOUBLE_EQ(p.samplesNs[0], 10.0);
    EXPECT_DOUBLE_EQ(p.samplesNs[1], 30.0);
    EXPECT_DOUBLE_EQ(p.samplesNs[2], 20.0);
    EXPECT_EQ(p.reps, 3u);
    EXPECT_EQ(p.warmup, 1u);
    EXPECT_DOUBLE_EQ(p.medianNs, 20.0);
    // 1000 items / 20 ns = 5e10 items/sec, exactly.
    EXPECT_DOUBLE_EQ(p.rate, 5e10);
}

TEST(BenchPhaseAssembly, ZeroWarmupKeepsEverySample)
{
    BenchPhase p =
        finishPhase("x", "items/sec", 10, 0, {2.0, 4.0});
    EXPECT_EQ(p.reps, 2u);
    EXPECT_DOUBLE_EQ(p.medianNs, 3.0);
}

TEST(BenchPhaseAssemblyDeathTest, WarmupSwallowingAllSamplesPanics)
{
    EXPECT_DEATH(finishPhase("x", "u", 1, 2, {1.0, 2.0}), "warmup");
}

// --- Round-trip ---------------------------------------------------------

BenchReport
sampleReport()
{
    BenchReport r;
    r.label = "BENCH_TEST";
    r.machine = {"Linux 6.1", "x86_64", "gcc 13.2.0", "optimized", 8};
    r.peakRssBytes = 123456789;
    r.phases.push_back(finishPhase(
        "event_loop", "events/sec", 300000, 1,
        {1e7, 0.1, 1.0 / 3.0, 12345678.875}));
    r.phases.back().breakdown.emplace_back("burst_events", 37421.0);
    r.phases.back().breakdown.emplace_back("calendar_rebuilds", 12.0);
    r.derived.emplace_back("calendar_vs_heap_speedup", 1.75);
    r.derived.emplace_back("null_sink_overhead_pct", 0.0625);
    return r;
}

bool
bitEqual(double a, double b)
{
    return std::memcmp(&a, &b, sizeof(double)) == 0;
}

TEST(BenchReportJson, RoundTripIsBitExact)
{
    BenchReport original = sampleReport();
    std::string text = writeBenchReport(original);

    BenchReport back;
    std::string error;
    ASSERT_TRUE(parseBenchReport(text, back, error)) << error;

    EXPECT_EQ(back.schema, benchSchemaVersion);
    EXPECT_EQ(back.label, original.label);
    EXPECT_EQ(back.machine.os, original.machine.os);
    EXPECT_EQ(back.machine.arch, original.machine.arch);
    EXPECT_EQ(back.machine.compiler, original.machine.compiler);
    EXPECT_EQ(back.machine.buildType, original.machine.buildType);
    EXPECT_EQ(back.machine.hardwareThreads,
              original.machine.hardwareThreads);
    EXPECT_EQ(back.peakRssBytes, original.peakRssBytes);

    ASSERT_EQ(back.phases.size(), original.phases.size());
    const BenchPhase &a = original.phases[0];
    const BenchPhase &b = back.phases[0];
    EXPECT_EQ(b.name, a.name);
    EXPECT_EQ(b.unit, a.unit);
    EXPECT_EQ(b.itemsPerRep, a.itemsPerRep);
    EXPECT_EQ(b.reps, a.reps);
    EXPECT_EQ(b.warmup, a.warmup);
    ASSERT_EQ(b.samplesNs.size(), a.samplesNs.size());
    for (std::size_t i = 0; i < a.samplesNs.size(); ++i) {
        // Hexfloat carriage: the awkward doubles (0.1, 1/3) come
        // back bit-for-bit, not shortest-representation-rounded.
        EXPECT_TRUE(bitEqual(b.samplesNs[i], a.samplesNs[i]));
    }
    EXPECT_TRUE(bitEqual(b.medianNs, a.medianNs));
    EXPECT_TRUE(bitEqual(b.rate, a.rate));
    ASSERT_EQ(b.breakdown.size(), a.breakdown.size());
    for (std::size_t i = 0; i < a.breakdown.size(); ++i) {
        EXPECT_EQ(b.breakdown[i].first, a.breakdown[i].first);
        EXPECT_TRUE(
            bitEqual(b.breakdown[i].second, a.breakdown[i].second));
    }
    ASSERT_EQ(back.derived.size(), original.derived.size());
    for (std::size_t i = 0; i < original.derived.size(); ++i) {
        EXPECT_EQ(back.derived[i].first, original.derived[i].first);
        EXPECT_TRUE(bitEqual(back.derived[i].second,
                             original.derived[i].second));
    }
}

TEST(BenchReportJson, WriterOutputSatisfiesTheStrictParser)
{
    std::string text = writeBenchReport(sampleReport());
    JsonValue root;
    std::string error;
    // The raw journal parser accepts it (one strict document)...
    EXPECT_TRUE(parseJson(text, root, error)) << error;
    // ...including with benign trailing whitespace...
    EXPECT_TRUE(parseJson(text + "\n  \n", root, error));
    // ...but trailing garbage is rejected, exactly like a journal
    // record.
    EXPECT_FALSE(parseJson(text + "x", root, error));
    BenchReport r;
    EXPECT_FALSE(parseBenchReport(text + "{}", r, error));
}

TEST(BenchReportJson, SchemaAndFieldViolationsAreRejected)
{
    BenchReport r;
    std::string error;
    EXPECT_FALSE(parseBenchReport("[]", r, error));
    EXPECT_FALSE(parseBenchReport("{\"schema\":999}", r, error));
    EXPECT_FALSE(parseBenchReport("not json", r, error));

    // A report missing its phases array is structurally invalid.
    std::string text = writeBenchReport(sampleReport());
    std::string::size_type at = text.find("\"phases\"");
    ASSERT_NE(at, std::string::npos);
    std::string mutilated = text.substr(0, at) + "\"ph\"" +
                            text.substr(at + 8);
    EXPECT_FALSE(parseBenchReport(mutilated, r, error));
}

// --- Comparison semantics ----------------------------------------------

BenchReport
withRates(double eventRate, double speedup)
{
    BenchReport r;
    r.label = "BENCH_TEST";
    r.phases.push_back(
        finishPhase("event_loop", "events/sec", 100, 0, {1.0}));
    r.phases.back().rate = eventRate;
    r.derived.emplace_back("calendar_vs_heap_speedup", speedup);
    return r;
}

TEST(BenchComparisonGate, FingerprintAndRssNeverAffectTheOutcome)
{
    BenchReport base = withRates(100.0, 2.0);
    base.machine = {"Linux 5.0", "x86_64", "gcc 12", "optimized", 64};
    base.peakRssBytes = 1 << 30;
    BenchReport cur = withRates(100.0, 2.0);
    cur.machine = {"Darwin 23", "arm64", "clang 17", "assert-enabled",
                   10};
    cur.peakRssBytes = 42;

    BenchComparison cmp = compareBenchReports(base, cur, 0.15);
    EXPECT_TRUE(cmp.pass);
    // The provenance still lands in the serialized artifacts, so the
    // two reports do differ as documents.
    EXPECT_NE(writeBenchReport(base), writeBenchReport(cur));
}

TEST(BenchComparisonGate, RegressionBeyondTheBandFails)
{
    BenchReport base = withRates(100.0, 2.0);
    EXPECT_TRUE(
        compareBenchReports(base, withRates(86.0, 2.0), 0.15).pass);
    EXPECT_FALSE(
        compareBenchReports(base, withRates(84.0, 2.0), 0.15).pass);
    // Faster than the band is reported but never fails.
    BenchComparison up =
        compareBenchReports(base, withRates(130.0, 2.0), 0.15);
    EXPECT_TRUE(up.pass);
    ASSERT_FALSE(up.phases.empty());
    EXPECT_GT(up.phases[0].ratio, 1.15);
}

TEST(BenchComparisonGate, DerivedSpeedupGatesLikeARate)
{
    BenchReport base = withRates(100.0, 2.0);
    EXPECT_TRUE(
        compareBenchReports(base, withRates(100.0, 1.8), 0.15).pass);
    EXPECT_FALSE(
        compareBenchReports(base, withRates(100.0, 1.5), 0.15).pass);
}

TEST(BenchComparisonGate, MissingBaselinePhaseFails)
{
    BenchReport base = withRates(100.0, 2.0);
    BenchReport cur;
    cur.derived.emplace_back("calendar_vs_heap_speedup", 2.0);
    BenchComparison cmp = compareBenchReports(base, cur, 0.15);
    EXPECT_FALSE(cmp.pass);
    ASSERT_FALSE(cmp.phases.empty());
    EXPECT_TRUE(cmp.phases[0].missing);
}

TEST(BenchComparisonGate, ExtraCurrentPhaseIsNotARegression)
{
    BenchReport base = withRates(100.0, 2.0);
    BenchReport cur = withRates(100.0, 2.0);
    cur.phases.push_back(
        finishPhase("brand_new_phase", "x/sec", 1, 0, {1.0}));
    EXPECT_TRUE(compareBenchReports(base, cur, 0.15).pass);
}

TEST(BenchComparisonGate, OverheadPercentagesAreExemptFromRatios)
{
    // 0.3% vs 0.5% "overhead" is noise around zero, not a 40%
    // regression; the harness gates overheads absolutely instead.
    BenchReport base = withRates(100.0, 2.0);
    base.derived.emplace_back("null_sink_overhead_pct", 0.5);
    BenchReport cur = withRates(100.0, 2.0);
    cur.derived.emplace_back("null_sink_overhead_pct", 5.0);
    BenchComparison cmp = compareBenchReports(base, cur, 0.15);
    EXPECT_TRUE(cmp.pass);
    for (const PhaseDelta &d : cmp.derived)
        EXPECT_NE(d.name, "null_sink_overhead_pct");
}

TEST(BenchComparisonGate, DeltaTableNamesEveryVerdict)
{
    BenchReport base = withRates(100.0, 2.0);
    std::string table = formatComparison(
        compareBenchReports(base, withRates(50.0, 2.0), 0.15), 0.15);
    EXPECT_NE(table.find("event_loop"), std::string::npos);
    EXPECT_NE(table.find("REGRESSED"), std::string::npos);
    EXPECT_NE(table.find("calendar_vs_heap_speedup"),
              std::string::npos);
}

// --- The committed artifact --------------------------------------------

TEST(CommittedBench, ArtifactParsesAndPinsTheCampaignSpeedup)
{
    std::ifstream in(UVMASYNC_BENCH_JSON, std::ios::binary);
    ASSERT_TRUE(in.is_open())
        << "missing committed artifact " << UVMASYNC_BENCH_JSON;
    std::ostringstream buf;
    buf << in.rdbuf();

    BenchReport report;
    std::string error;
    ASSERT_TRUE(parseBenchReport(buf.str(), report, error)) << error;
    EXPECT_EQ(report.schema, benchSchemaVersion);

    // The pinned slice must stay covered.
    for (const char *phase :
         {"event_loop_calendar", "event_loop_heap",
          "migration_hotpath", "registry_slice", "store_lookup",
          "serve_roundtrip", "null_sink_probe_plain",
          "null_sink_probe_instrumented"}) {
        EXPECT_NE(report.findPhase(phase), nullptr)
            << "committed artifact lost phase " << phase;
    }
    for (const BenchPhase &p : report.phases) {
        EXPECT_GT(p.rate, 0.0) << p.name;
        EXPECT_GT(p.reps, 0u) << p.name;
        EXPECT_FALSE(p.samplesNs.empty()) << p.name;
        EXPECT_TRUE(bitEqual(p.medianNs, medianOf(p.samplesNs)))
            << p.name << ": committed median is not the median of "
            << "its committed samples";
    }

    // The hot-path campaign's acceptance floor, pinned by the
    // committed record: the calendar queue beats the reference heap
    // by at least 1.5x on the identical schedule.
    double speedup = 0.0;
    ASSERT_TRUE(
        report.findDerived("calendar_vs_heap_speedup", speedup));
    EXPECT_GE(speedup, 1.5);

    // The zero-cost tracing claim, as measured by the same run.
    double overhead = 0.0;
    ASSERT_TRUE(
        report.findDerived("null_sink_overhead_pct", overhead));
    EXPECT_LT(overhead, 1.0);
}

} // namespace
} // namespace uvmasync
