/**
 * @file
 * Tests for the discrete-event kernel: ordering, priorities,
 * determinism and time-window execution.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/types.hh"
#include "sim/event_queue.hh"

namespace uvmasync
{
namespace
{

TEST(EventQueue, StartsEmptyAtZero)
{
    EventQueue q;
    EXPECT_TRUE(q.empty());
    EXPECT_EQ(q.curTick(), 0u);
    EXPECT_EQ(q.run(), 0u);
}

TEST(EventQueue, ExecutesInTimeOrder)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(nanoseconds(30), [&] { order.push_back(3); });
    q.schedule(nanoseconds(10), [&] { order.push_back(1); });
    q.schedule(nanoseconds(20), [&] { order.push_back(2); });
    q.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(q.curTick(), nanoseconds(30));
}

TEST(EventQueue, SameTickFifoBySequence)
{
    EventQueue q;
    std::vector<int> order;
    for (int i = 0; i < 10; ++i)
        q.schedule(nanoseconds(5), [&order, i] { order.push_back(i); });
    q.run();
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, PriorityBreaksTies)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(nanoseconds(5), [&] { order.push_back(2); },
               EventPriority::Late);
    q.schedule(nanoseconds(5), [&] { order.push_back(1); },
               EventPriority::Default);
    q.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(EventQueue, EventsScheduleNewEvents)
{
    EventQueue q;
    int fired = 0;
    q.schedule(nanoseconds(1), [&] {
        ++fired;
        q.scheduleIn(nanoseconds(1), [&] { ++fired; });
    });
    q.run();
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(q.curTick(), nanoseconds(2));
}

TEST(EventQueue, RunUntilStopsAtLimit)
{
    EventQueue q;
    int fired = 0;
    q.schedule(nanoseconds(10), [&] { ++fired; });
    q.schedule(nanoseconds(20), [&] { ++fired; });
    q.runUntil(nanoseconds(15));
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(q.curTick(), nanoseconds(15));
    EXPECT_EQ(q.pending(), 1u);
    q.run();
    EXPECT_EQ(fired, 2);
}

TEST(EventQueue, ScheduleInIsRelative)
{
    EventQueue q;
    Tick seen = 0;
    q.schedule(nanoseconds(10), [&] {
        q.scheduleIn(nanoseconds(5), [&] { seen = q.curTick(); });
    });
    q.run();
    EXPECT_EQ(seen, nanoseconds(15));
}

TEST(EventQueue, ResetClearsEverything)
{
    EventQueue q;
    q.schedule(nanoseconds(10), [] {});
    q.reset();
    EXPECT_TRUE(q.empty());
    EXPECT_EQ(q.curTick(), 0u);
    EXPECT_EQ(q.executedCount(), 0u);
}

TEST(EventQueue, ExecutedCountAccumulates)
{
    EventQueue q;
    for (int i = 0; i < 25; ++i)
        q.schedule(nanoseconds(static_cast<std::uint64_t>(i)), [] {});
    q.run();
    EXPECT_EQ(q.executedCount(), 25u);
}

TEST(EventQueueDeathTest, SchedulingInThePastPanics)
{
    EventQueue q;
    q.schedule(nanoseconds(10), [] {});
    q.run();
    EXPECT_DEATH(q.schedule(nanoseconds(5), [] {}), "past");
}

TEST(EventQueueDeathTest, TimeTravelNamesTheOffendingEvent)
{
    // The structured fatal carries the event name and the backwards
    // delta so a time-travel bug is attributable from the message
    // alone.
    EventQueue q;
    q.schedule(nanoseconds(10), [] {});
    q.run();
    EXPECT_DEATH(q.schedule(nanoseconds(7), [] {},
                            EventPriority::Default, "pcie-completion"),
                 "pcie-completion.*3000 ticks in the past");
}

TEST(Watchdog, DisarmedIsANoOp)
{
    Watchdog wd;
    for (int i = 0; i < 100; ++i)
        wd.onEvent(nanoseconds(1));
    EXPECT_EQ(wd.events(), 0u);
    wd.checkSimTime(seconds(3600));
}

TEST(Watchdog, EventCountCeilingTrips)
{
    Watchdog wd;
    WatchdogConfig cfg;
    cfg.maxEvents = 3;
    cfg.maxStallEvents = 0;
    wd.arm(cfg);
    for (std::uint64_t i = 1; i <= 3; ++i)
        wd.onEvent(nanoseconds(i));
    try {
        wd.onEvent(nanoseconds(4));
        FAIL() << "ceiling did not trip";
    } catch (const PointTimeout &e) {
        EXPECT_EQ(e.kind(), WatchdogTrip::EventCount);
        EXPECT_EQ(e.events(), 4u);
        EXPECT_NE(std::string(e.what()).find("watchdog.max_events"),
                  std::string::npos);
    }
}

TEST(Watchdog, SimTimeCeilingTrips)
{
    Watchdog wd;
    WatchdogConfig cfg;
    cfg.maxSimTime = microseconds(10);
    cfg.maxEvents = 0;
    cfg.maxStallEvents = 0;
    wd.arm(cfg);
    wd.checkSimTime(microseconds(10)); // at the ceiling: fine
    try {
        wd.checkSimTime(microseconds(10) + 1);
        FAIL() << "ceiling did not trip";
    } catch (const PointTimeout &e) {
        EXPECT_EQ(e.kind(), WatchdogTrip::SimTime);
        EXPECT_NE(std::string(e.what()).find("watchdog.max_sim_ms"),
                  std::string::npos);
    }
}

TEST(Watchdog, LivelockTripsOnSelfReschedulingEvent)
{
    // A callback that reschedules itself at the current tick would
    // spin the queue forever; the stall detector bounds the damage.
    EventQueue q;
    Watchdog wd;
    WatchdogConfig cfg;
    cfg.maxEvents = 0;
    cfg.maxStallEvents = 16;
    wd.arm(cfg);
    q.setWatchdog(&wd);
    std::function<void()> spin = [&] { q.scheduleIn(0, spin); };
    q.schedule(nanoseconds(1), spin);
    try {
        q.run();
        FAIL() << "livelock did not trip";
    } catch (const PointTimeout &e) {
        EXPECT_EQ(e.kind(), WatchdogTrip::Livelock);
        EXPECT_EQ(e.when(), nanoseconds(1));
        EXPECT_NE(
            std::string(e.what()).find("watchdog.max_stall_events"),
            std::string::npos);
    }
}

TEST(Watchdog, TimeAdvanceResetsTheStallRun)
{
    Watchdog wd;
    WatchdogConfig cfg;
    cfg.maxEvents = 0;
    cfg.maxStallEvents = 4;
    wd.arm(cfg);
    // Three same-tick events, then an advance, repeatedly: the run
    // never reaches the ceiling.
    for (std::uint64_t t = 1; t <= 50; ++t) {
        wd.onEvent(nanoseconds(t));
        wd.onEvent(nanoseconds(t));
        wd.onEvent(nanoseconds(t));
        EXPECT_EQ(wd.stallRun(), 2u);
    }
    EXPECT_EQ(wd.events(), 150u);
}

TEST(Watchdog, StallCounterIsFedByQueueDispatch)
{
    // The stall counter must be driven by the queue's dispatch loop
    // itself, not by ad-hoc onEvent() calls: same-tick dispatches
    // grow the run, the first time-advancing dispatch resets it.
    EventQueue q;
    Watchdog wd;
    WatchdogConfig cfg;
    cfg.maxEvents = 0;
    // A disabled stall ceiling (0) short-circuits the counter, so
    // observe under a ceiling far beyond this test instead.
    cfg.maxStallEvents = 1u << 20;
    wd.arm(cfg);
    q.setWatchdog(&wd);

    for (int i = 0; i < 8; ++i)
        q.schedule(nanoseconds(5), [] {});
    q.schedule(nanoseconds(9), [] {});
    q.run();

    // Eight dispatches at tick 5: the first advances time (0 -> 5),
    // the next seven stall. The tick-9 dispatch resets the run.
    EXPECT_EQ(wd.events(), 9u);
    EXPECT_EQ(wd.stallRun(), 0u);

    for (int i = 0; i < 4; ++i)
        q.schedule(nanoseconds(9), [] {});
    q.run();
    EXPECT_EQ(wd.events(), 13u);
    EXPECT_EQ(wd.stallRun(), 4u); // tick never advanced past 9
}

TEST(Watchdog, CleanEvictionBurstsAreInvisibleToTimeCeilings)
{
    // Evicting clean chunks costs no simulated time, so a large
    // eviction burst is a legitimate same-tick run: it must sail
    // under a tight maxSimTime ceiling untouched...
    constexpr int kBurst = 4096;
    {
        EventQueue q;
        Watchdog wd;
        WatchdogConfig cfg;
        cfg.maxSimTime = microseconds(1);
        cfg.maxEvents = 0;
        cfg.maxStallEvents = 1u << 20; // far beyond the burst
        wd.arm(cfg);
        q.setWatchdog(&wd);
        int evicted = 0;
        for (int i = 0; i < kBurst; ++i)
            q.schedule(nanoseconds(100), [&evicted] { ++evicted; });
        EXPECT_NO_THROW(q.run());
        EXPECT_EQ(evicted, kBurst);
        EXPECT_EQ(wd.stallRun(), kBurst - 1u);
    }
    // ...while only the livelock ceiling — the one sized for honest
    // same-tick work — can declare the burst pathological.
    {
        EventQueue q;
        Watchdog wd;
        WatchdogConfig cfg;
        cfg.maxSimTime = microseconds(1);
        cfg.maxEvents = 0;
        cfg.maxStallEvents = 256;
        wd.arm(cfg);
        q.setWatchdog(&wd);
        for (int i = 0; i < kBurst; ++i)
            q.schedule(nanoseconds(100), [] {});
        try {
            q.run();
            FAIL() << "livelock ceiling did not trip";
        } catch (const PointTimeout &e) {
            EXPECT_EQ(e.kind(), WatchdogTrip::Livelock);
            EXPECT_EQ(e.when(), nanoseconds(100));
        }
    }
}

/** Property: any random schedule executes in non-decreasing time. */
class EventOrderTest : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(EventOrderTest, MonotoneExecution)
{
    EventQueue q;
    std::vector<Tick> seen;
    std::uint64_t state = GetParam();
    for (int i = 0; i < 200; ++i) {
        state = state * 6364136223846793005ull + 1442695040888963407ull;
        Tick when = state % microseconds(1);
        q.schedule(when, [&seen, &q] { seen.push_back(q.curTick()); });
    }
    q.run();
    for (std::size_t i = 1; i < seen.size(); ++i)
        ASSERT_GE(seen[i], seen[i - 1]);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EventOrderTest,
                         ::testing::Values(1ull, 99ull, 4242ull));

} // namespace
} // namespace uvmasync
