/**
 * @file
 * Tests for the key=value config store, the SystemConfig loader, the
 * declarative job loader and the strict fault-injection plan loader.
 */

#include <gtest/gtest.h>

#include "common/kv_config.hh"
#include "inject/inject_plan.hh"
#include "runtime/config_loader.hh"
#include "runtime/device.hh"
#include "workloads/job_loader.hh"
#include "workloads/registry.hh"

namespace uvmasync
{
namespace
{

// --- KvConfig ----------------------------------------------------------

TEST(KvConfig, ParsesKeysAndSections)
{
    KvConfig kv = KvConfig::fromString(
        "top = 1\n"
        "[gpu]\n"
        "sm_count = 108  # trailing comment\n"
        "clock_mhz = 1410.5\n"
        "\n"
        "[pcie]\n"
        "raw_gbps = 26\n");
    EXPECT_EQ(kv.size(), 4u);
    EXPECT_EQ(kv.getInt("top", 0), 1);
    EXPECT_EQ(kv.getInt("gpu.sm_count", 0), 108);
    EXPECT_DOUBLE_EQ(kv.getDouble("gpu.clock_mhz", 0), 1410.5);
    EXPECT_TRUE(kv.has("pcie.raw_gbps"));
    EXPECT_FALSE(kv.has("pcie.bogus"));
}

TEST(KvConfig, DefaultsForMissingKeys)
{
    KvConfig kv;
    EXPECT_EQ(kv.getString("x", "fallback"), "fallback");
    EXPECT_EQ(kv.getInt("x", 7), 7);
    EXPECT_DOUBLE_EQ(kv.getDouble("x", 2.5), 2.5);
    EXPECT_TRUE(kv.getBool("x", true));
}

TEST(KvConfig, BooleanForms)
{
    KvConfig kv = KvConfig::fromString(
        "a = true\nb = 0\nc = yes\nd = no\n");
    EXPECT_TRUE(kv.getBool("a", false));
    EXPECT_FALSE(kv.getBool("b", true));
    EXPECT_TRUE(kv.getBool("c", false));
    EXPECT_FALSE(kv.getBool("d", true));
}

TEST(KvConfig, LaterKeysOverride)
{
    KvConfig kv = KvConfig::fromString("a = 1\na = 2\n");
    EXPECT_EQ(kv.getInt("a", 0), 2);
}

TEST(KvConfig, SetOverrides)
{
    KvConfig kv;
    kv.set("k", "42");
    EXPECT_EQ(kv.getInt("k", 0), 42);
}

TEST(KvConfigDeathTest, MalformedInputsFatal)
{
    EXPECT_DEATH(KvConfig::fromString("no equals sign\n"),
                 "expected key");
    KvConfig kv = KvConfig::fromString("x = abc\n");
    EXPECT_DEATH(kv.getInt("x", 0), "not an integer");
    EXPECT_DEATH(kv.getDouble("x", 0), "not a number");
    EXPECT_DEATH(kv.getBool("x", false), "not a boolean");
    EXPECT_DEATH(KvConfig::fromFile("/nonexistent/path.ini"),
                 "cannot open");
}

// --- SystemConfig loader --------------------------------------------------

TEST(ConfigLoader, AppliesOverrides)
{
    KvConfig kv = KvConfig::fromString(
        "[gpu]\n"
        "sm_count = 80\n"
        "hbm_gbps = 900\n"
        "[pcie]\n"
        "raw_gbps = 52\n"
        "pageable_eff = 0.5\n"
        "[uvm]\n"
        "chunk_kib = 256\n"
        "demand_prefetcher = tree\n"
        "[hbm]\n"
        "capacity_gib = 16\n");
    SystemConfig cfg = applyConfig(SystemConfig::a100Epyc(), kv);
    EXPECT_EQ(cfg.gpu.smCount, 80u);
    EXPECT_DOUBLE_EQ(cfg.gpu.hbmBandwidth.gbps(), 900.0);
    EXPECT_DOUBLE_EQ(cfg.pcie.rawBandwidth.gbps(), 52.0);
    EXPECT_DOUBLE_EQ(cfg.pcie.efficiency[static_cast<std::size_t>(
                         TransferKind::PageableCopy)],
                     0.5);
    EXPECT_EQ(cfg.uvm.chunkBytes, kib(256));
    EXPECT_EQ(cfg.uvm.demandPrefetcher, PrefetcherKind::Tree);
    EXPECT_EQ(cfg.deviceMemoryBytes, gib(16));
}

TEST(ConfigLoader, UntouchedFieldsKeepDefaults)
{
    SystemConfig base = SystemConfig::a100Epyc();
    SystemConfig cfg = applyConfig(base, KvConfig::fromString(""));
    EXPECT_EQ(cfg.gpu.smCount, base.gpu.smCount);
    EXPECT_EQ(cfg.uvm.chunkBytes, base.uvm.chunkBytes);
    EXPECT_EQ(cfg.alloc.contextInit, base.alloc.contextInit);
}

TEST(ConfigLoaderDeathTest, UnknownKeyFatal)
{
    KvConfig kv = KvConfig::fromString("[gpu]\nsm_cuont = 80\n");
    EXPECT_DEATH(applyConfig(SystemConfig::a100Epyc(), kv),
                 "unknown config key");
}

// --- Job loader --------------------------------------------------------------

const char *kJobText =
    "[job]\n"
    "name = demo\n"
    "repeats = 3\n"
    "prefetch_each_launch = true\n"
    "[buffer.0]\n"
    "name = in\n"
    "mib = 64\n"
    "[buffer.1]\n"
    "name = out\n"
    "mib = 32\n"
    "host_init = false\n"
    "host_consumed = true\n"
    "[kernel.0]\n"
    "name = k0\n"
    "blocks = 1024\n"
    "threads = 128\n"
    "total_load_mib = 64\n"
    "shared_kib = 8\n"
    "flops_per_element = 6\n"
    "warps_to_saturate = 12\n"
    "buffers = 0:sequential:r, 1:irregular:w:0.5, "
    "0:random:r:1.0:nostage\n";

TEST(JobLoader, BuildsCompleteJob)
{
    Job job = jobFromConfig(KvConfig::fromString(kJobText));
    EXPECT_EQ(job.name, "demo");
    EXPECT_EQ(job.sequenceRepeats, 3u);
    EXPECT_TRUE(job.prefetchEachLaunch);

    ASSERT_EQ(job.buffers.size(), 2u);
    EXPECT_EQ(job.buffers[0].bytes, mib(64));
    EXPECT_TRUE(job.buffers[0].hostInit);
    EXPECT_FALSE(job.buffers[1].hostInit);
    EXPECT_TRUE(job.buffers[1].hostConsumed);

    ASSERT_EQ(job.kernels.size(), 1u);
    const KernelDescriptor &kd = job.kernels[0];
    EXPECT_EQ(kd.name, "k0");
    EXPECT_EQ(kd.gridBlocks, 1024u);
    EXPECT_EQ(kd.threadsPerBlock, 128u);
    EXPECT_DOUBLE_EQ(kd.warpsToSaturate, 12.0);

    ASSERT_EQ(kd.buffers.size(), 3u);
    EXPECT_EQ(kd.buffers[0].pattern, AccessPattern::Sequential);
    EXPECT_TRUE(kd.buffers[0].read);
    EXPECT_FALSE(kd.buffers[0].written);
    EXPECT_EQ(kd.buffers[1].pattern, AccessPattern::Irregular);
    EXPECT_TRUE(kd.buffers[1].written);
    EXPECT_DOUBLE_EQ(kd.buffers[1].touchedFraction, 0.5);
    EXPECT_FALSE(kd.buffers[2].stagedThroughShared);
}

TEST(JobLoader, LoadedJobExecutes)
{
    Job job = jobFromConfig(KvConfig::fromString(kJobText));
    Device device(SystemConfig::a100Epyc());
    for (TransferMode mode : allTransferModes) {
        RunResult run = device.run(job, mode);
        EXPECT_GT(run.breakdown.overallPs(), 0.0)
            << transferModeName(mode);
    }
}

TEST(JobLoaderDeathTest, RejectsMalformedDescriptions)
{
    EXPECT_DEATH(jobFromConfig(KvConfig::fromString("[job]\n"
                                                    "name = x\n")),
                 "no \\[buffer.0\\]");
    EXPECT_DEATH(
        jobFromConfig(KvConfig::fromString(
            "[buffer.0]\nname = b\nmib = 1\n[kernel.0]\nname = k\n"
            "buffers = 5:sequential:r\n")),
        "out of range");
    EXPECT_DEATH(
        jobFromConfig(KvConfig::fromString(
            "[buffer.0]\nname = b\nmib = 1\n[kernel.0]\nname = k\n"
            "buffers = 0:zigzag:r\n")),
        "unknown access pattern");
    EXPECT_DEATH(
        jobFromConfig(KvConfig::fromString(
            "[buffer.0]\nname = b\nmib = 1\n[kernel.0]\nname = k\n"
            "buffers = 0:sequential:x\n")),
        "read and/or write");
}

// --- Fault-injection plan loader -------------------------------------------

TEST(InjectPlanLoader, WellFormedPlanLoads)
{
    InjectPlan plan = InjectPlan::fromKv(KvConfig::fromString(
        "[inject.pcie]\n"
        "degrade_factor = 4\n"
        "window_start_us = 10\n"
        "window_end_us = 50\n"));
    EXPECT_TRUE(plan.enabled());
    EXPECT_DOUBLE_EQ(plan.pcie.degradeFactor, 4.0);
}

TEST(InjectPlanLoaderDeathTest, MalformedPlansFatalWithKeyAndLine)
{
    // Every malformed parameter is an actionable fatal naming the
    // offending key — never a silent clamp. A window that ends
    // before it starts:
    EXPECT_DEATH(
        InjectPlan::fromKv(
            KvConfig::fromString("inject.pcie.window_start_us = 20\n"
                                 "inject.pcie.window_end_us = 10\n")),
        "injection plan key 'inject.pcie.window_end_us'.*not after "
        "its start");
    // A negative rate and a probability above 1:
    EXPECT_DEATH(
        InjectPlan::fromKv(KvConfig::fromString(
            "inject.host.slow_rate = -0.5\n")),
        "injection plan key 'inject.host.slow_rate'.*outside \\[0, "
        "1\\]");
    EXPECT_DEATH(
        InjectPlan::fromKv(KvConfig::fromString(
            "inject.pcie.fail_rate = 1.5\n")),
        "injection plan key 'inject.pcie.fail_rate'.*outside \\[0, "
        "1\\]");
    // A degradation factor that would speed the link up:
    EXPECT_DEATH(
        InjectPlan::fromKv(KvConfig::fromString(
            "inject.pcie.degrade_factor = 0.25\n")),
        "injection plan key 'inject.pcie.degrade_factor'.*must be "
        ">= 1");
    // Negative durations and counts:
    EXPECT_DEATH(
        InjectPlan::fromKv(KvConfig::fromString(
            "inject.kernel.jitter_us = -3\n")),
        "injection plan key 'inject.kernel.jitter_us'.*must be >= 0");
    EXPECT_DEATH(
        InjectPlan::fromKv(KvConfig::fromString(
            "inject.migrate.storm_chunks = -1\n")),
        "injection plan key 'inject.migrate.storm_chunks'.*must be "
        ">= 0");
    // Typo'd keys fatal with a did-you-mean instead of silently
    // leaving the seam inert:
    EXPECT_DEATH(
        InjectPlan::fromKv(KvConfig::fromString(
            "inject.pcie.degrade_facter = 4\n")),
        "injection plan key 'inject.pcie.degrade_facter'.*did you "
        "mean 'inject.pcie.degrade_factor'");
}

// --- Pinned host option ----------------------------------------------------

TEST(PinnedHost, FasterExplicitTransfers)
{
    registerAllWorkloads();
    Job job = WorkloadRegistry::instance()
                  .get("saxpy")
                  .makeJob(SizeClass::Medium);
    Device device(SystemConfig::a100Epyc());
    RunOptions opts;
    double pageable =
        device.run(job, TransferMode::Standard, opts)
            .breakdown.transferPs;
    opts.pinnedHost = true;
    double pinned = device.run(job, TransferMode::Standard, opts)
                        .breakdown.transferPs;
    EXPECT_LT(pinned, pageable * 0.7);
}

TEST(PinnedHost, DoesNotAffectUvmModes)
{
    registerAllWorkloads();
    Job job = WorkloadRegistry::instance()
                  .get("saxpy")
                  .makeJob(SizeClass::Small);
    Device device(SystemConfig::a100Epyc());
    RunOptions opts;
    double plain = device.run(job, TransferMode::UvmPrefetch, opts)
                       .breakdown.transferPs;
    opts.pinnedHost = true;
    double pinned = device.run(job, TransferMode::UvmPrefetch, opts)
                        .breakdown.transferPs;
    EXPECT_DOUBLE_EQ(plain, pinned);
}

} // namespace
} // namespace uvmasync
