/**
 * @file
 * Equivalence suite: the production two-level calendar EventQueue
 * against the reference binary-heap HeapEventQueue. Both promise the
 * same strict (tick, priority, sequence) total dispatch order, so any
 * schedule — including same-timestamp bursts, callback-driven
 * rescheduling, day rollovers, behind-day inserts and far-future
 * outliers — must produce identical (event, time) sequences. The
 * randomized half drives 10,000 generated schedules through both
 * queues; the targeted half pins each calendar mechanism (bucket
 * FIFO, overflow re-bucketing, dense-front width, repair rebuilds)
 * plus the shared death and watchdog contracts.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/rng.hh"
#include "sim/event_queue.hh"
#include "sim/heap_event_queue.hh"

namespace uvmasync
{
namespace
{

/** One observed dispatch: which event ran and when. */
struct Dispatch
{
    std::uint64_t id;
    Tick when;

    bool
    operator==(const Dispatch &o) const
    {
        return id == o.id && when == o.when;
    }
};

/** A generated schedule step: seed event + optional chain reaction. */
struct SeedEvent
{
    Tick when;
    int prio;        //!< 0 = Default, 1 = Late
    std::uint32_t children;  //!< events scheduled from the callback
    Tick childDelta; //!< delay of each chained child
};

/**
 * Drive one schedule through @p q, recording every dispatch. The
 * callback body is queue-agnostic, so both queues observe the exact
 * same scheduling decisions.
 */
template <typename Queue>
std::vector<Dispatch>
drive(Queue &q, const std::vector<SeedEvent> &seeds)
{
    std::vector<Dispatch> log;
    std::uint64_t nextId = 0;

    struct Chain
    {
        Queue &q;
        std::vector<Dispatch> &log;
        std::uint64_t &nextId;

        void
        fire(std::uint64_t id, std::uint32_t children,
             Tick childDelta)
        {
            log.push_back(Dispatch{id, q.curTick()});
            for (std::uint32_t c = 0; c < children; ++c) {
                std::uint64_t childId = nextId++;
                // Children re-chain with a decayed fan-out so every
                // schedule terminates.
                std::uint32_t grand = children / 2;
                Chain self = *this;
                q.scheduleIn(childDelta * (c + 1),
                             [self, childId, grand, childDelta]() mutable {
                                 self.fire(childId, grand,
                                           childDelta);
                             });
            }
        }
    };

    Chain chain{q, log, nextId};
    for (const SeedEvent &s : seeds) {
        std::uint64_t id = nextId++;
        std::uint32_t children = s.children;
        Tick childDelta = s.childDelta;
        EventPriority prio = s.prio ? EventPriority::Late
                                    : EventPriority::Default;
        q.schedule(s.when,
                   [chain, id, children, childDelta]() mutable {
                       chain.fire(id, children, childDelta);
                   },
                   prio);
    }
    q.run();
    return log;
}

/** Run @p seeds through both queues and require identical logs. */
void
expectEquivalent(const std::vector<SeedEvent> &seeds)
{
    EventQueue calendar;
    HeapEventQueue heap;
    std::vector<Dispatch> a = drive(calendar, seeds);
    std::vector<Dispatch> b = drive(heap, seeds);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        ASSERT_TRUE(a[i] == b[i])
            << "divergence at dispatch " << i << ": calendar ran #"
            << a[i].id << "@" << a[i].when << ", heap ran #"
            << b[i].id << "@" << b[i].when;
    }
    EXPECT_EQ(calendar.curTick(), heap.curTick());
    EXPECT_EQ(calendar.executedCount(), heap.executedCount());
    EXPECT_TRUE(calendar.empty());
}

// --- Randomized equivalence --------------------------------------------

TEST(CalendarEquivalence, TenThousandRandomSchedules)
{
    Rng rng(0xC0FFEEull);
    for (int schedule = 0; schedule < 10000; ++schedule) {
        std::vector<SeedEvent> seeds;
        std::uint64_t n = 1 + rng.uniformInt(std::uint64_t(24));
        // A third of the schedules are burst-heavy: many seeds share
        // one of a handful of timestamps.
        bool bursty = rng.uniformInt(std::uint64_t(3)) == 0;
        for (std::uint64_t i = 0; i < n; ++i) {
            SeedEvent s;
            s.when = bursty ? rng.uniformInt(std::uint64_t(4)) * 1000
                            : rng.uniformInt(std::uint64_t(2000000));
            s.prio = rng.uniformInt(std::uint64_t(4)) == 0 ? 1 : 0;
            s.children =
                rng.uniformInt(std::uint64_t(6)) == 0
                    ? static_cast<std::uint32_t>(
                          rng.uniformInt(std::uint64_t(4)))
                    : 0;
            s.childDelta = rng.uniformInt(std::uint64_t(3)) == 0
                               ? 0
                               : rng.uniformInt(std::uint64_t(90000));
            seeds.push_back(s);
        }
        expectEquivalent(seeds);
    }
}

// --- Targeted calendar mechanisms --------------------------------------

TEST(CalendarEquivalence, SameTimestampBurstKeepsFifo)
{
    // 5000 events on one tick: pure tail-append FIFO in one bucket.
    std::vector<SeedEvent> seeds(5000,
                                 SeedEvent{ microseconds(1), 0, 0, 0 });
    expectEquivalent(seeds);
}

TEST(CalendarEquivalence, PriorityBreaksTiesBeforeSequence)
{
    std::vector<SeedEvent> seeds;
    for (int i = 0; i < 64; ++i)
        seeds.push_back(SeedEvent{1000, i % 2, 0, 0});
    expectEquivalent(seeds);
}

TEST(CalendarEquivalence, FarFutureOutlierDoesNotCollapseTheDay)
{
    // A dense near cluster plus one event weeks of simulated time
    // out: the dense-front width heuristic must keep the cluster
    // spread over many buckets (and dispatch order must not care).
    std::vector<SeedEvent> seeds;
    for (Tick t = 0; t < 512; ++t)
        seeds.push_back(SeedEvent{t * 17, 0, 0, 0});
    seeds.push_back(SeedEvent{seconds(1000), 0, 0, 0});
    expectEquivalent(seeds);
}

TEST(CalendarEquivalence, DayRolloverReBucketsOverflow)
{
    // Chains whose deltas exceed the initial day span force events
    // through the overflow level and multiple rebuilds.
    std::vector<SeedEvent> seeds;
    for (int i = 0; i < 16; ++i)
        seeds.push_back(
            SeedEvent{static_cast<Tick>(i) * 100, 0, 3,
                      milliseconds(3) + static_cast<Tick>(i)});
    EventQueue calendar;
    drive(calendar, seeds);
    EXPECT_GT(calendar.rebuilds(), 0u);
    expectEquivalent(seeds);
}

TEST(CalendarEquivalence, BehindDayInsertIsRepaired)
{
    // After runUntil() leaves curTick_ below a rebuilt day, a fresh
    // event can land behind the day's base slot; the unsigned-wrap
    // route sends it to overflow and peekMin() must repair before
    // dispatching past it.
    EventQueue calendar;
    HeapEventQueue heap;
    auto scenario = [](auto &q) {
        std::vector<Dispatch> log;
        q.schedule(1000, [&] { log.push_back({0, q.curTick()}); });
        q.schedule(seconds(2), [&] { log.push_back({1, q.curTick()}); });
        q.runUntil(2000); // dispatches #0; day may now sit at ~2 s
        q.schedule(5000, [&] { log.push_back({2, q.curTick()}); });
        q.schedule(3000, [&] { log.push_back({3, q.curTick()}); });
        q.run();
        return log;
    };
    std::vector<Dispatch> a = scenario(calendar);
    std::vector<Dispatch> b = scenario(heap);
    ASSERT_EQ(a.size(), 4u);
    ASSERT_EQ(b.size(), 4u);
    for (std::size_t i = 0; i < a.size(); ++i)
        EXPECT_TRUE(a[i] == b[i]) << "index " << i;
}

TEST(CalendarEquivalence, RunUntilAdvancesIdenticallyAcrossQueues)
{
    auto scenario = [](auto &q) {
        std::vector<Tick> ticks;
        for (Tick t : {Tick(100), Tick(250), Tick(900)})
            q.schedule(t, [&q, &ticks] { ticks.push_back(q.curTick()); });
        q.runUntil(500);
        ticks.push_back(q.curTick()); // clamped to the limit
        q.run();
        ticks.push_back(q.curTick());
        return ticks;
    };
    EventQueue calendar;
    HeapEventQueue heap;
    EXPECT_EQ(scenario(calendar), scenario(heap));
}

// --- Shared failure contracts ------------------------------------------

TEST(CalendarEquivalenceDeathTest, BothQueuesRefuseThePast)
{
    EXPECT_DEATH(
        {
            EventQueue q;
            q.schedule(nanoseconds(10), [] {});
            q.run();
            q.schedule(nanoseconds(5), [] {}, EventPriority::Default,
                       "late-event");
        },
        "late-event.*5000 ticks in the past");
    EXPECT_DEATH(
        {
            HeapEventQueue q;
            q.schedule(nanoseconds(10), [] {});
            q.run();
            q.schedule(nanoseconds(5), [] {}, EventPriority::Default,
                       "late-event");
        },
        "late-event.*5000 ticks in the past");
}

template <typename Queue>
PointTimeout
tripEventCeiling()
{
    Queue q;
    Watchdog wd;
    WatchdogConfig cfg;
    cfg.maxEvents = 10;
    cfg.maxStallEvents = 0;
    wd.arm(cfg);
    q.setWatchdog(&wd);
    // A self-rescheduling chain that would run forever.
    std::function<void()> again = [&] { q.scheduleIn(10, again); };
    q.schedule(0, again);
    try {
        q.run();
    } catch (const PointTimeout &timeout) {
        return timeout;
    }
    ADD_FAILURE() << "watchdog never tripped";
    return PointTimeout("unreachable", WatchdogTrip::EventCount, 0, 0);
}

TEST(CalendarEquivalence, WatchdogTripsAtTheSameEventOnBothQueues)
{
    PointTimeout a = tripEventCeiling<EventQueue>();
    PointTimeout b = tripEventCeiling<HeapEventQueue>();
    EXPECT_EQ(a.kind(), WatchdogTrip::EventCount);
    EXPECT_EQ(a.kind(), b.kind());
    EXPECT_EQ(a.when(), b.when());
    EXPECT_EQ(a.events(), b.events());
}

TEST(CalendarQueue, ResetRestoresAFreshCalendar)
{
    EventQueue q;
    int ran = 0;
    for (int round = 0; round < 3; ++round) {
        // Mix in far events so reset() also drains the overflow
        // level, not just the day's buckets.
        q.schedule(500, [&] { ++ran; });
        q.schedule(seconds(5), [&] { ++ran; });
        q.runUntil(1000);
        q.reset();
        EXPECT_TRUE(q.empty());
        EXPECT_EQ(q.curTick(), 0u);
    }
    EXPECT_EQ(ran, 3); // only the near event of each round ran
}

} // namespace
} // namespace uvmasync
