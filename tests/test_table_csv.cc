/**
 * @file
 * Tests for the text-table renderer, cell formatters and CSV writer.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "common/csv.hh"
#include "common/table.hh"

namespace uvmasync
{
namespace
{

TEST(TextTable, RendersHeaderAndRows)
{
    TextTable t({"name", "value"});
    t.addRow({"alpha", "1"});
    t.addRow({"beta", "22"});
    std::string out = t.toString();
    EXPECT_NE(out.find("name"), std::string::npos);
    EXPECT_NE(out.find("alpha"), std::string::npos);
    EXPECT_NE(out.find("22"), std::string::npos);
}

TEST(TextTable, ColumnsAlign)
{
    TextTable t({"k", "v"});
    t.addRow({"a", "1"});
    t.addRow({"long-name", "100"});
    std::string out = t.toString();
    // Every rendered line has the same width.
    std::istringstream iss(out);
    std::string line;
    std::size_t width = 0;
    while (std::getline(iss, line)) {
        if (width == 0)
            width = line.size();
        EXPECT_EQ(line.size(), width);
    }
}

TEST(TextTable, SeparatorRows)
{
    TextTable t({"a"});
    t.addRow({"x"});
    t.addSeparator();
    t.addRow({"y"});
    EXPECT_EQ(t.rowCount(), 3u);
    EXPECT_NE(t.toString().find("+---"), std::string::npos);
}

TEST(Formatters, FmtDouble)
{
    EXPECT_EQ(fmtDouble(1.23456, 2), "1.23");
    EXPECT_EQ(fmtDouble(-0.5, 1), "-0.5");
}

TEST(Formatters, FmtPercentSigned)
{
    EXPECT_EQ(fmtPercent(0.21), "+21.00%");
    EXPECT_EQ(fmtPercent(-0.0441), "-4.41%");
}

TEST(Formatters, FmtTimeUnits)
{
    EXPECT_EQ(fmtTime(1500.0), "1.50 ns");
    EXPECT_EQ(fmtTime(2.5e9), "2.50 ms");
    EXPECT_EQ(fmtTime(3e12), "3.00 s");
    EXPECT_EQ(fmtTime(0.5), "0 ps");
}

TEST(Formatters, FmtBytesUnits)
{
    EXPECT_EQ(fmtBytes(512.0), "512 B");
    EXPECT_EQ(fmtBytes(2048.0), "2.00 KiB");
    EXPECT_EQ(fmtBytes(3.0 * 1024 * 1024 * 1024), "3.00 GiB");
}

TEST(Formatters, FmtCountSuffixes)
{
    EXPECT_EQ(fmtCount(999.0), "999");
    EXPECT_EQ(fmtCount(1500.0), "1.50K");
    EXPECT_EQ(fmtCount(2.5e9), "2.50G");
}

TEST(Csv, PlainRow)
{
    std::ostringstream oss;
    CsvWriter w(oss);
    w.writeRow({"a", "b", "c"});
    EXPECT_EQ(oss.str(), "a,b,c\n");
}

TEST(Csv, QuotesSpecialCharacters)
{
    std::ostringstream oss;
    CsvWriter w(oss);
    w.writeRow({"has,comma", "has\"quote", "plain"});
    EXPECT_EQ(oss.str(), "\"has,comma\",\"has\"\"quote\",plain\n");
}

TEST(Csv, EscapeIdempotentOnPlain)
{
    EXPECT_EQ(CsvWriter::escape("simple"), "simple");
    EXPECT_EQ(CsvWriter::escape("with\nnewline"),
              "\"with\nnewline\"");
}

} // namespace
} // namespace uvmasync
