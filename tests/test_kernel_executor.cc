/**
 * @file
 * Tests for the kernel executor: mode-dependent timing, UVM stalls,
 * residency steady state and counter production.
 */

#include <gtest/gtest.h>

#include "gpu/kernel_executor.hh"
#include "mem/device_memory.hh"
#include "mem/page_table.hh"
#include "xfer/migration_engine.hh"
#include "xfer/pcie_link.hh"

namespace uvmasync
{
namespace
{

KernelDescriptor
streamingKernel()
{
    KernelDescriptor kd = makeStreamKernel(
        "stream", 2048, 256, gib(1), kib(32), 4,
        /*flops*/ 8.0, /*ints*/ 4.0, /*ctrl*/ 0.5, /*store*/ 1.0);
    kd.buffers = {
        KernelBufferUse{0, AccessPattern::Sequential, true, false, 1.0,
                        true},
        KernelBufferUse{1, AccessPattern::Sequential, false, true, 1.0,
                        true},
    };
    return kd;
}

KernelDescriptor
computeKernel()
{
    KernelDescriptor kd = makeStreamKernel(
        "compute", 2048, 256, mib(256), kib(16), 4,
        /*flops*/ 300.0, /*ints*/ 30.0, /*ctrl*/ 4.0, /*store*/ 0.1);
    kd.warpsToSaturate = 16.0;
    kd.buffers = {
        KernelBufferUse{0, AccessPattern::Tiled, true, true, 1.0,
                        true},
    };
    return kd;
}

KernelExecConfig
explicitConfig(TransferMode mode, std::vector<Bytes> bytes)
{
    KernelExecConfig cfg;
    cfg.mode = mode;
    cfg.bufferBytes = std::move(bytes);
    return cfg;
}

TEST(KernelExecutor, ProducesPositiveTime)
{
    KernelExecutor exec(
        explicitConfig(TransferMode::Standard, {gib(1), gib(1)}));
    KernelResult res = exec.run(streamingKernel(), microseconds(5));
    EXPECT_EQ(res.startTick, microseconds(5));
    EXPECT_GT(res.endTick, res.startTick);
    EXPECT_GT(res.instrs.total(), 0.0);
    EXPECT_EQ(res.faults, 0u);
}

TEST(KernelExecutor, AsyncHelpsStreamingKernels)
{
    // The vector_seq effect: async removes the register staging.
    KernelExecutor sync(
        explicitConfig(TransferMode::Standard, {gib(1), gib(1)}));
    KernelExecutor async(
        explicitConfig(TransferMode::Async, {gib(1), gib(1)}));
    Tick syncTime = sync.run(streamingKernel(), 0).kernelTime();
    Tick asyncTime = async.run(streamingKernel(), 0).kernelTime();
    EXPECT_LT(asyncTime, syncTime);
}

TEST(KernelExecutor, AsyncHurtsComputeDenseKernels)
{
    // The 2DCONV effect: double buffering halves residency and the
    // added control instructions cost issue slots.
    KernelExecutor sync(
        explicitConfig(TransferMode::Standard, {mib(256)}));
    KernelExecutor async(
        explicitConfig(TransferMode::Async, {mib(256)}));
    Tick syncTime = sync.run(computeKernel(), 0).kernelTime();
    Tick asyncTime = async.run(computeKernel(), 0).kernelTime();
    EXPECT_GT(asyncTime, syncTime);
}

TEST(KernelExecutor, AsyncAddsControlInstructions)
{
    KernelExecutor sync(
        explicitConfig(TransferMode::Standard, {gib(1), gib(1)}));
    KernelExecutor async(
        explicitConfig(TransferMode::Async, {gib(1), gib(1)}));
    double syncCtrl = sync.run(streamingKernel(), 0).instrs.control;
    double asyncCtrl = async.run(streamingKernel(), 0).instrs.control;
    EXPECT_GT(asyncCtrl, syncCtrl * 1.1);
}

TEST(KernelExecutor, AsyncComputePenaltyApplies)
{
    KernelDescriptor kd = computeKernel();
    KernelExecutor base(
        explicitConfig(TransferMode::Async, {mib(256)}));
    Tick plain = base.run(kd, 0).kernelTime();

    kd.asyncComputePenalty = 2.0;
    kd.name = "compute_penalized"; // avoid the memoised derivation
    KernelExecutor pen(
        explicitConfig(TransferMode::Async, {mib(256)}));
    Tick penalized = pen.run(kd, 0).kernelTime();
    EXPECT_GT(penalized, plain);
}

TEST(KernelExecutor, FewerWarpsSlowDownKernel)
{
    // The Figure 12 effect: 32-thread blocks cannot hide latency.
    KernelDescriptor wide = streamingKernel();
    wide.gridBlocks = 64;
    KernelDescriptor narrow = wide;
    narrow.threadsPerBlock = 32;
    narrow.name = "stream32";

    KernelExecutor exec(
        explicitConfig(TransferMode::Standard, {gib(1), gib(1)}));
    Tick wideTime = exec.run(wide, 0).kernelTime();
    Tick narrowTime = exec.run(narrow, 0).kernelTime();
    EXPECT_GT(narrowTime, wideTime * 2);
}

TEST(KernelExecutor, BlockCountInsensitiveAtFixedWork)
{
    // The Figure 11 effect: repartitioning the same work across a
    // different block count barely moves the needle.
    KernelDescriptor a = makeStreamKernel("a", 4096, 256, gib(1),
                                          kib(32), 4, 8.0, 4.0, 0.5,
                                          1.0);
    KernelDescriptor b = makeStreamKernel("b", 512, 256, gib(1),
                                          kib(32), 4, 8.0, 4.0, 0.5,
                                          1.0);
    a.buffers = b.buffers = streamingKernel().buffers;
    KernelExecutor exec(
        explicitConfig(TransferMode::Standard, {gib(1), gib(1)}));
    double ta = static_cast<double>(exec.run(a, 0).kernelTime());
    double tb = static_cast<double>(exec.run(b, 0).kernelTime());
    EXPECT_NEAR(ta / tb, 1.0, 0.1);
}

struct UvmExecFixture : public ::testing::Test
{
    UvmExecFixture()
        : table("pt"),
          devMem("hbm", gib(40), Bandwidth::fromGBps(1400.0)),
          link("pcie", PcieConfig{}),
          engine("uvm", UvmConfig{}, table, devMem, link)
    {
    }

    KernelExecutor
    makeExecutor(TransferMode mode, std::vector<Bytes> bytes)
    {
        std::vector<std::size_t> ids;
        for (std::size_t i = 0; i < bytes.size(); ++i) {
            ids.push_back(table.addRange("buf" + std::to_string(i),
                                         bytes[i],
                                         engine.config().chunkBytes));
        }
        engine.beginJob();
        KernelExecConfig cfg;
        cfg.mode = mode;
        cfg.uvm = &engine;
        cfg.bufferBytes = std::move(bytes);
        cfg.bufferRangeIds = ids;
        return KernelExecutor(cfg);
    }

    PageTable table;
    DeviceMemory devMem;
    PcieLink link;
    MigrationEngine engine;
};

TEST_F(UvmExecFixture, FirstLaunchFaultsSecondIsResident)
{
    KernelExecutor exec =
        makeExecutor(TransferMode::Uvm, {gib(1), gib(1)});
    KernelDescriptor kd = streamingKernel();

    KernelResult first = exec.run(kd, 0);
    EXPECT_GT(first.faults, 0u);
    EXPECT_GT(first.stallTime, 0u);

    KernelResult second = exec.run(kd, first.endTick);
    EXPECT_EQ(second.faults, 0u);
    EXPECT_LT(second.kernelTime(), first.kernelTime());
}

TEST_F(UvmExecFixture, UvmSlowerThanResidentExecution)
{
    KernelExecutor exec =
        makeExecutor(TransferMode::Uvm, {gib(1), gib(1)});
    KernelDescriptor kd = streamingKernel();
    KernelResult cold = exec.run(kd, 0);
    KernelResult warm = exec.run(kd, cold.endTick);
    // Demand paging must dominate a streaming kernel's first launch.
    EXPECT_GT(cold.kernelTime(), 2 * warm.kernelTime());
}

TEST_F(UvmExecFixture, PrefetchedDataAvoidsFaults)
{
    KernelExecutor exec =
        makeExecutor(TransferMode::UvmPrefetch, {gib(1), gib(1)});
    Tick ready = 0;
    for (std::size_t r = 0; r < table.rangeCount(); ++r)
        ready = std::max(ready,
                         engine.prefetchRange(r, 0).end);
    KernelResult res = exec.run(streamingKernel(), ready);
    EXPECT_EQ(res.faults, 0u);
    EXPECT_EQ(res.stallTime, 0u);
}

TEST_F(UvmExecFixture, TouchedFractionLimitsMigration)
{
    KernelDescriptor kd = streamingKernel();
    kd.buffers[0].touchedFraction = 0.25;
    kd.buffers[1].touchedFraction = 0.25;
    KernelExecutor exec =
        makeExecutor(TransferMode::Uvm, {gib(1), gib(1)});
    exec.run(kd, 0);
    // Only ~a quarter of each range should have migrated.
    Bytes resident = table.range(0).residentBytes() +
                     table.range(1).residentBytes();
    EXPECT_LT(resident, gib(1));
    EXPECT_GT(resident, mib(256));
}

TEST(KernelExecutorDeathTest, UvmModeNeedsEngine)
{
    // Construction without an engine is legal (the static cost model
    // builds engine-less executors to derive timings); *running* a
    // UVM kernel without one is not.
    KernelExecConfig cfg;
    cfg.mode = TransferMode::Uvm;
    cfg.bufferBytes = {gib(1), gib(1)};
    KernelExecutor exec{cfg};
    EXPECT_DEATH(exec.run(streamingKernel(), 0), "MigrationEngine");
}

} // namespace
} // namespace uvmasync
