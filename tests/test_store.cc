/**
 * @file
 * Tests for the persistent content-addressed result store: bit-exact
 * record round-trips, cold/warm equivalence (a warm rerun simulates
 * nothing yet produces byte-identical journals and bit-identical
 * results at any job count), the corruption battery (kill-anywhere
 * truncation, torn half-records, flipped bytes detected by checksum
 * and never served), invalidation (any option knob changes the key;
 * a fingerprint bump misses every prior entry), LRU eviction under a
 * byte budget, and the refusal fatals (stale fingerprint readonly,
 * unwritable directory, non-store meta).
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <sys/stat.h>
#include <unistd.h>
#include <vector>

#include "common/logging.hh"
#include "core/parallel_runner.hh"
#include "journal/journal.hh"
#include "journal/json.hh"
#include "store/fingerprint.hh"
#include "store/result_store.hh"

namespace uvmasync
{
namespace
{

std::string
tmpDir(const std::string &name)
{
    std::string dir = ::testing::TempDir() + "uvmasync_store_" + name;
    return dir;
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << path;
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
}

void
writeFile(const std::string &path, const std::string &contents)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << contents;
    ASSERT_TRUE(out.good()) << path;
}

bool
fileExists(const std::string &path)
{
    struct stat st;
    return ::stat(path.c_str(), &st) == 0;
}

/** Concatenated name-tagged segment bytes: the store's disk identity. */
std::string
segmentBytes(const std::string &dir)
{
    std::string all;
    for (std::size_t s = 0; s < ResultStore::shardCount; ++s) {
        char name[8];
        std::snprintf(name, sizeof(name), "s%02zx", s);
        std::string path = dir + "/shards/" + name;
        if (!fileExists(path))
            continue;
        all += name;
        all += ':';
        all += readFile(path);
    }
    return all;
}

void
removeStoreDir(const std::string &dir)
{
    for (std::size_t s = 0; s < ResultStore::shardCount; ++s) {
        char name[8];
        std::snprintf(name, sizeof(name), "s%02zx", s);
        std::remove((dir + "/shards/" + name).c_str());
    }
    std::remove((dir + "/meta.json").c_str());
    ::rmdir((dir + "/shards").c_str());
    ::rmdir(dir.c_str());
}

/** %.17g textual fingerprint — equal strings mean identical bits. */
std::string
resultFingerprint(const ExperimentResult &res)
{
    char buf[256];
    std::string out = res.workload;
    out += '/';
    out += transferModeName(res.mode);
    auto add = [&](const TimeBreakdown &b) {
        std::snprintf(buf, sizeof(buf), "|%.17g,%.17g,%.17g",
                      b.allocPs, b.transferPs, b.kernelPs);
        out += buf;
    };
    add(res.clean);
    for (const TimeBreakdown &run : res.runs)
        add(run);
    std::snprintf(buf, sizeof(buf), "|f%llu|h%llu|d%llu|%.17g",
                  static_cast<unsigned long long>(res.counters.faults),
                  static_cast<unsigned long long>(
                      res.counters.bytesH2d),
                  static_cast<unsigned long long>(
                      res.counters.bytesD2h),
                  res.counters.occupancy);
    out += buf;
    return out;
}

/** 2 workloads x 5 modes, tiny and fast but real. */
std::vector<ExperimentPoint>
smallGrid()
{
    ExperimentOptions base;
    base.size = SizeClass::Tiny;
    base.runs = 2;
    base.baseSeed = 42;
    std::vector<TransferMode> modes(allTransferModes.begin(),
                                    allTransferModes.end());
    return ParallelRunner::expandGrid({"saxpy", "vector_seq"}, modes,
                                      1, base);
}

/** A result with bit-pattern-hostile doubles for round-trip tests. */
ExperimentResult
trickyResult()
{
    ExperimentResult res;
    res.workload = "saxpy";
    res.mode = TransferMode::UvmPrefetchAsync;
    res.size = SizeClass::Tiny;
    res.clean.allocPs = 1.0 / 3.0;
    res.clean.transferPs = 3.141592653589793e12;
    res.clean.kernelPs = 5e-324; // smallest denormal
    res.runs.push_back(res.clean);
    res.runs.push_back(TimeBreakdown{1e308, 2.2250738585072014e-308,
                                     0.1 + 0.2});
    res.counters.faults = 123456789;
    res.counters.occupancy = 0.9999999999999999;
    return res;
}

// --- Fingerprint -------------------------------------------------------

TEST(Fingerprint, StableAndConfigSensitive)
{
    SystemConfig a = SystemConfig::a100Epyc();
    SystemConfig b = SystemConfig::a100Epyc();
    EXPECT_EQ(modelSemanticsFingerprint(a),
              modelSemanticsFingerprint(b));

    b.gpu.smCount += 1;
    EXPECT_NE(modelSemanticsFingerprint(a),
              modelSemanticsFingerprint(b));
    b = SystemConfig::a100Epyc();
    b.uvm.chunkBytes *= 2;
    EXPECT_NE(modelSemanticsFingerprint(a),
              modelSemanticsFingerprint(b));
    b = SystemConfig::a100Epyc();
    b.noise.kernelCv += 0.001;
    EXPECT_NE(modelSemanticsFingerprint(a),
              modelSemanticsFingerprint(b));
}

TEST(Fingerprint, WatchdogCeilingsAreExcluded)
{
    // Ceilings only decide failure, and failures are never cached —
    // loosening one must not orphan every prior store entry.
    SystemConfig a = SystemConfig::a100Epyc();
    SystemConfig b = SystemConfig::a100Epyc();
    b.watchdog.maxEvents = a.watchdog.maxEvents / 2 + 1;
    b.watchdog.maxSimTime = a.watchdog.maxSimTime / 2 + 1;
    b.watchdog.maxStallEvents = a.watchdog.maxStallEvents / 2 + 1;
    EXPECT_EQ(modelSemanticsFingerprint(a),
              modelSemanticsFingerprint(b));
}

// --- Record serialization ----------------------------------------------

TEST(StoreRecord, RoundTripIsBitExact)
{
    ExperimentResult res = trickyResult();
    std::string line = storeRecordLine(0xabcdef0123456789ull,
                                       0x42ull, res);

    std::uint64_t fp = 0;
    std::uint64_t key = 0;
    ExperimentResult back;
    std::string error;
    ASSERT_TRUE(parseStoreRecord(line, fp, key, back, error))
        << error;
    EXPECT_EQ(fp, 0xabcdef0123456789ull);
    EXPECT_EQ(key, 0x42ull);
    EXPECT_EQ(resultFingerprint(back), resultFingerprint(res));
    EXPECT_EQ(back.size, res.size);

    // Serialization is a pure function: re-encoding the parsed copy
    // reproduces the line byte for byte.
    EXPECT_EQ(storeRecordLine(fp, key, back), line);
}

TEST(StoreRecord, EveryFlippedByteIsRejected)
{
    ExperimentResult res = trickyResult();
    std::string line = storeRecordLine(0x1111ull, 0x2222ull, res);

    // Flip each byte in turn: whatever survives JSON parsing must be
    // caught by the checksum — no flipped line may round-trip to a
    // *different* accepted record.
    for (std::size_t i = 0; i < line.size(); ++i) {
        std::string bad = line;
        bad[i] = static_cast<char>(bad[i] ^ 0x04);
        std::uint64_t fp = 0;
        std::uint64_t key = 0;
        ExperimentResult back;
        std::string error;
        if (parseStoreRecord(bad, fp, key, back, error)) {
            // A flip that still parses must decode to the identical
            // record (e.g. flipping inside an ignored whitespace
            // position — which this layout does not have).
            EXPECT_EQ(storeRecordLine(fp, key, back), line)
                << "byte " << i << " flipped to an accepted, "
                << "different record";
        }
    }
}

// --- Cold/warm equivalence ---------------------------------------------

TEST(Store, WarmRerunServesEverythingByteIdentically)
{
    std::vector<ExperimentPoint> grid = smallGrid();
    std::string dir = tmpDir("warm");
    removeStoreDir(dir);
    std::uint64_t fp =
        modelSemanticsFingerprint(SystemConfig::a100Epyc());

    std::string coldJournal = tmpDir("warm_cold.jsonl");
    std::string warmJournal = tmpDir("warm_warm.jsonl");

    // Cold, serial, journaled.
    BatchResult cold;
    {
        auto store = ResultStore::open(dir, fp);
        StorePointCache cache(*store, grid);
        auto journal = RunJournal::create(coldJournal, grid);
        RunPolicy policy;
        policy.journal = journal.get();
        policy.cache = &cache;
        ParallelRunner serial(SystemConfig::a100Epyc(), 1);
        cold = serial.runPoints(grid, policy);
        EXPECT_TRUE(cold.allOk());
        EXPECT_EQ(cold.metrics.cacheHits, 0u);
        EXPECT_EQ(store->stats().hits, 0u);
        EXPECT_EQ(store->stats().lookups, grid.size());
        EXPECT_EQ(store->stats().stored, grid.size());
    }
    std::string coldSegments = segmentBytes(dir);
    ASSERT_FALSE(coldSegments.empty());

    // Warm, parallel, fresh journal: zero simulations, same bytes.
    BatchResult warm;
    {
        auto store = ResultStore::open(dir, fp);
        StorePointCache cache(*store, grid);
        auto journal = RunJournal::create(warmJournal, grid);
        RunPolicy policy;
        policy.journal = journal.get();
        policy.cache = &cache;
        ParallelRunner parallel(SystemConfig::a100Epyc(), 4);
        warm = parallel.runPoints(grid, policy);
        EXPECT_TRUE(warm.allOk());
        EXPECT_EQ(warm.metrics.cacheHits, grid.size());
        EXPECT_EQ(store->stats().hits, grid.size());
        EXPECT_EQ(store->stats().lookups, grid.size());
        EXPECT_EQ(store->stats().stored, 0u);
    }

    // The journal a warm run writes is byte-identical to the cold
    // one (a cache hit is journaled like the fresh result it
    // replays), and the store's segments are untouched.
    EXPECT_EQ(readFile(warmJournal), readFile(coldJournal));
    EXPECT_EQ(segmentBytes(dir), coldSegments);
    ASSERT_EQ(warm.points.size(), cold.points.size());
    for (std::size_t i = 0; i < warm.points.size(); ++i) {
        EXPECT_TRUE(warm.points[i].cached) << i;
        EXPECT_EQ(resultFingerprint(warm.points[i].result),
                  resultFingerprint(cold.points[i].result))
            << i;
    }

    std::remove(coldJournal.c_str());
    std::remove(warmJournal.c_str());
    removeStoreDir(dir);
}

TEST(Store, ColdSegmentsAreByteIdenticalAcrossJobCounts)
{
    std::vector<ExperimentPoint> grid = smallGrid();
    std::uint64_t fp =
        modelSemanticsFingerprint(SystemConfig::a100Epyc());
    std::string dirA = tmpDir("jobs1");
    std::string dirB = tmpDir("jobs4");
    removeStoreDir(dirA);
    removeStoreDir(dirB);

    for (auto [dir, jobs] :
         {std::make_pair(dirA, 1u), std::make_pair(dirB, 4u)}) {
        auto store = ResultStore::open(dir, fp);
        StorePointCache cache(*store, grid);
        RunPolicy policy;
        policy.cache = &cache;
        ParallelRunner runner(SystemConfig::a100Epyc(), jobs);
        EXPECT_TRUE(runner.runPoints(grid, policy).allOk());
    }
    std::string bytesA = segmentBytes(dirA);
    EXPECT_FALSE(bytesA.empty());
    EXPECT_EQ(segmentBytes(dirB), bytesA);
    removeStoreDir(dirA);
    removeStoreDir(dirB);
}

TEST(Store, FailedPointsAreNeverCached)
{
    ExperimentOptions opts;
    opts.size = SizeClass::Tiny;
    opts.runs = 1;
    std::vector<ExperimentPoint> points = {
        {"vector_seq", TransferMode::Standard, opts},
        {"no_such_workload", TransferMode::Uvm, opts},
        {"saxpy", TransferMode::Async, opts},
    };
    std::string dir = tmpDir("nofail");
    removeStoreDir(dir);
    std::uint64_t fp =
        modelSemanticsFingerprint(SystemConfig::a100Epyc());

    {
        auto store = ResultStore::open(dir, fp);
        StorePointCache cache(*store, points);
        RunPolicy policy;
        policy.retries = 1;
        policy.cache = &cache;
        ParallelRunner runner(SystemConfig::a100Epyc(), 2);
        BatchResult batch = runner.runPoints(points, policy);
        EXPECT_EQ(batch.quarantined(), 1u);
        // Only the two successes were stored.
        EXPECT_EQ(store->recordCount(), 2u);
        EXPECT_EQ(store->stats().stored, 2u);
    }

    // The warm rerun serves the successes and re-fails the bad point
    // (failure is never served from cache).
    {
        auto store = ResultStore::open(dir, fp);
        StorePointCache cache(*store, points);
        RunPolicy policy;
        policy.retries = 1;
        policy.cache = &cache;
        ParallelRunner runner(SystemConfig::a100Epyc(), 2);
        BatchResult batch = runner.runPoints(points, policy);
        EXPECT_EQ(batch.metrics.cacheHits, 2u);
        EXPECT_EQ(batch.points[1].status, PointStatus::Quarantined);
        EXPECT_EQ(store->recordCount(), 2u);
    }
    removeStoreDir(dir);
}

TEST(Store, TracedPointsBypassTheStore)
{
    ExperimentOptions opts;
    opts.size = SizeClass::Tiny;
    opts.runs = 1;
    opts.trace = true;
    std::vector<ExperimentPoint> points = {
        {"saxpy", TransferMode::Async, opts}};
    std::string dir = tmpDir("traced");
    removeStoreDir(dir);
    std::uint64_t fp =
        modelSemanticsFingerprint(SystemConfig::a100Epyc());

    for (int round = 0; round < 2; ++round) {
        auto store = ResultStore::open(dir, fp);
        StorePointCache cache(*store, points);
        RunPolicy policy;
        policy.cache = &cache;
        ParallelRunner runner(SystemConfig::a100Epyc(), 1);
        BatchResult batch = runner.runPoints(points, policy);
        EXPECT_TRUE(batch.allOk());
        // Never cached, never stored: traces are not serializable,
        // so a traced rerun must re-simulate (deterministically).
        EXPECT_EQ(batch.metrics.cacheHits, 0u);
        EXPECT_EQ(store->recordCount(), 0u);
        EXPECT_FALSE(batch.points[0].result.trace.events().empty());
    }
    removeStoreDir(dir);
}

// --- Corruption battery ------------------------------------------------

/** Populate one shard with @p n synthetic records; returns keys. */
std::vector<std::uint64_t>
populateOneShard(const std::string &dir, std::uint64_t fp,
                 std::size_t n, std::size_t shard = 0x5e)
{
    removeStoreDir(dir);
    std::vector<std::uint64_t> keys;
    auto store = ResultStore::open(dir, fp);
    for (std::size_t i = 0; i < n; ++i) {
        // Same low byte => same shard/segment file.
        std::uint64_t key =
            (static_cast<std::uint64_t>(i + 1) << 8) | shard;
        ExperimentResult res = trickyResult();
        res.counters.faults = i;
        store->insert(key, res);
        keys.push_back(key);
    }
    return keys;
}

TEST(Store, KillAnywhereTruncationRecovers)
{
    std::string dir = tmpDir("kill");
    constexpr std::uint64_t fp = 0xfeedull;
    std::vector<std::uint64_t> keys = populateOneShard(dir, fp, 6);
    std::string path = dir + "/shards/s5e";
    std::string refBytes = readFile(path);

    std::vector<std::string> lines;
    std::size_t start = 0;
    while (start < refBytes.size()) {
        std::size_t nl = refBytes.find('\n', start);
        ASSERT_NE(nl, std::string::npos);
        lines.push_back(refBytes.substr(start, nl - start + 1));
        start = nl + 1;
    }
    ASSERT_EQ(lines.size(), keys.size() + 1); // header + records

    // Kill at every record boundary, plus a torn half-record: the
    // intact prefix must load, the tail must be dropped (and
    // truncated away on a writable open), and re-inserting the lost
    // records must reproduce the reference bytes exactly.
    for (std::size_t keep = 1; keep <= lines.size(); ++keep) {
        std::string partial;
        for (std::size_t i = 0; i < keep; ++i)
            partial += lines[i];
        bool torn = keep < lines.size();
        if (torn)
            partial += lines[keep].substr(0, lines[keep].size() / 2);
        writeFile(path, partial);

        auto store = ResultStore::open(dir, fp);
        EXPECT_EQ(store->stats().tornTails, torn ? 1u : 0u)
            << "keep=" << keep;
        EXPECT_EQ(store->recordCount(), keep - 1) << "keep=" << keep;
        ExperimentResult out;
        for (std::size_t i = 0; i < keys.size(); ++i) {
            EXPECT_EQ(store->lookup(keys[i], out), i < keep - 1)
                << "keep=" << keep << " key " << i;
        }
        for (std::size_t i = keep - 1; i < keys.size(); ++i) {
            ExperimentResult res = trickyResult();
            res.counters.faults = i;
            store->insert(keys[i], res);
        }
        store.reset();
        EXPECT_EQ(readFile(path), refBytes) << "keep=" << keep;
    }
    removeStoreDir(dir);
}

TEST(Store, FlippedByteIsCountedAndNeverServed)
{
    std::string dir = tmpDir("flip");
    constexpr std::uint64_t fp = 0xfeedull;
    std::vector<std::uint64_t> keys = populateOneShard(dir, fp, 3);
    std::string path = dir + "/shards/s5e";
    std::string bytes = readFile(path);

    // Flip one byte in the middle of the second record's line.
    std::size_t firstNl = bytes.find('\n');
    std::size_t secondNl = bytes.find('\n', firstNl + 1);
    std::size_t target = secondNl + (bytes.find('\n', secondNl + 1) -
                                     secondNl) /
                                        2;
    std::string damaged = bytes;
    damaged[target] = static_cast<char>(damaged[target] ^ 0x04);
    writeFile(path, damaged);

    auto store = ResultStore::open(
        dir, fp, StoreOptions{/*readonly=*/true, 0});
    EXPECT_EQ(store->stats().corruptRecords, 1u);
    EXPECT_EQ(store->recordCount(), keys.size() - 1);
    ExperimentResult out;
    EXPECT_TRUE(store->lookup(keys[0], out));
    EXPECT_FALSE(store->lookup(keys[1], out)); // damaged: a miss
    EXPECT_TRUE(store->lookup(keys[2], out));

    // surveyStore sees the same corruption; `store verify` gates on
    // clean().
    StoreSurvey survey = surveyStore(dir);
    EXPECT_EQ(survey.corruptRecords, 1u);
    EXPECT_FALSE(survey.clean());

    // gc drops the corrupt line; the survivors still serve.
    StoreGcResult gc = gcStore(dir, 0);
    EXPECT_EQ(gc.droppedRecords, 1u);
    EXPECT_TRUE(surveyStore(dir).clean());
    removeStoreDir(dir);
}

// --- Invalidation ------------------------------------------------------

TEST(Store, FingerprintBumpMissesEveryPriorEntry)
{
    std::string dir = tmpDir("bump");
    std::vector<std::uint64_t> keys =
        populateOneShard(dir, /*fp=*/1, 4);

    // Same keys under a bumped fingerprint: all stale misses.
    auto store = ResultStore::open(dir, /*fp=*/2);
    ExperimentResult out;
    for (std::uint64_t key : keys)
        EXPECT_FALSE(store->lookup(key, out));
    EXPECT_EQ(store->stats().hits, 0u);
    EXPECT_EQ(store->stats().staleMisses, keys.size());

    // Both generations coexist until invalidated.
    ExperimentResult res = trickyResult();
    store->insert(keys[0], res);
    EXPECT_TRUE(store->lookup(keys[0], out));
    store.reset();

    std::uint64_t stale = 1;
    std::size_t dropped = invalidateStore(dir, &stale);
    EXPECT_EQ(dropped, keys.size());
    auto fresh = ResultStore::open(dir, /*fp=*/2);
    EXPECT_EQ(fresh->recordCount(), 1u);
    EXPECT_TRUE(fresh->lookup(keys[0], out));
    removeStoreDir(dir);
}

TEST(Store, EveryOptionKnobChangesTheKey)
{
    // The store key is pointConfigHash: spot-check the knobs that
    // would poison a cache if they were missed (inject plan, inject
    // seed, trace flag), on top of test_journal's coverage.
    ExperimentPoint a{"saxpy", TransferMode::Async, {}};
    ExperimentPoint b = a;
    b.opts.inject.pcie.failRate = 0.5;
    EXPECT_NE(pointConfigHash(a), pointConfigHash(b));
    b = a;
    b.opts.injectSeed = 99;
    EXPECT_NE(pointConfigHash(a), pointConfigHash(b));
    b = a;
    b.opts.trace = true;
    EXPECT_NE(pointConfigHash(a), pointConfigHash(b));
    b = a;
    b.opts.sharedCarveout = kib(32);
    EXPECT_NE(pointConfigHash(a), pointConfigHash(b));
}

// --- Eviction ----------------------------------------------------------

TEST(Store, LruSegmentsAreEvictedUnderAByteBudget)
{
    std::string dir = tmpDir("evict");
    removeStoreDir(dir);
    constexpr std::uint64_t fp = 0xfeedull;

    // Measure one record+header so the budget holds ~3 segments.
    ExperimentResult res = trickyResult();
    std::uint64_t perSegment =
        storeSegmentHeaderLine(0).size() + 1 +
        storeRecordLine(fp, 0, res).size() + 1;

    StoreOptions opt;
    opt.maxBytes = perSegment * 3 + perSegment / 2;
    auto store = ResultStore::open(dir, fp, opt);

    // Fill shards 0..2 (one record each), then keep shard 0 hot.
    for (std::uint64_t s = 0; s < 3; ++s)
        store->insert(s, res);
    ExperimentResult out;
    EXPECT_TRUE(store->lookup(0, out));

    // A fourth segment exceeds the budget: the LRU victim must be
    // shard 1 (shard 0 was just touched, shard 3 is protected).
    store->insert(3, res);
    EXPECT_EQ(store->stats().evictedSegments, 1u);
    EXPECT_LE(store->totalBytes(), opt.maxBytes);
    EXPECT_TRUE(store->lookup(0, out));
    EXPECT_FALSE(store->lookup(1, out));
    EXPECT_TRUE(store->lookup(3, out));
    store.reset();

    // The logical clock persists: a reopen still knows the order.
    auto back = ResultStore::open(dir, fp, opt);
    EXPECT_EQ(back->recordCount(), 3u);
    removeStoreDir(dir);
}

// --- Refusals ----------------------------------------------------------

TEST(StoreDeath, ReadonlyRefusesAStaleFingerprint)
{
    std::string dir = tmpDir("stalefp");
    populateOneShard(dir, /*fp=*/7, 1);

    FatalThrowScope guard;
    try {
        ResultStore::open(dir, /*fp=*/8,
                          StoreOptions{/*readonly=*/true, 0});
        FAIL() << "stale fingerprint accepted readonly";
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("fingerprint"),
                  std::string::npos)
            << e.what();
        EXPECT_NE(std::string(e.what()).find("invalidate"),
                  std::string::npos);
    }
    // Writable open of the same store is fine (it repopulates).
    ResultStore::open(dir, /*fp=*/8);
    removeStoreDir(dir);
}

TEST(StoreDeath, RefusesUnwritableAndNonStoreDirectories)
{
    FatalThrowScope guard;
    EXPECT_THROW(
        ResultStore::open("/nonexistent-dir/store", 1),
        FatalError);
    EXPECT_THROW(ResultStore::open("/nonexistent-dir/store", 1,
                                   StoreOptions{true, 0}),
                 FatalError);

    // A directory whose meta.json is not a store is refused, not
    // silently overwritten.
    std::string dir = tmpDir("notastore");
    removeStoreDir(dir);
    ASSERT_EQ(::mkdir(dir.c_str(), 0777), 0);
    writeFile(dir + "/meta.json", "{\"whatever\":1}\n");
    EXPECT_THROW(ResultStore::open(dir, 1), FatalError);

    // So is a store written by a newer format version.
    writeFile(dir + "/meta.json",
              "{\"store\":\"uvmasync-store\",\"version\":999}\n");
    EXPECT_THROW(ResultStore::open(dir, 1), FatalError);
    removeStoreDir(dir);
}

// --- Offline maintenance ----------------------------------------------

TEST(Store, SurveyAndGcAgreeWithTheLiveStore)
{
    std::string dir = tmpDir("survey");
    std::vector<std::uint64_t> keys = populateOneShard(dir, 3, 5);

    StoreSurvey survey = surveyStore(dir);
    EXPECT_TRUE(survey.clean());
    EXPECT_TRUE(survey.metaOk);
    EXPECT_EQ(survey.segments, 1u);
    EXPECT_EQ(survey.records, keys.size());
    ASSERT_EQ(survey.fingerprints.size(), 1u);
    EXPECT_EQ(survey.fingerprints[0], 3u);

    // gc with no budget is an intact-preserving rewrite.
    std::string before = segmentBytes(dir);
    StoreGcResult gc = gcStore(dir, 0);
    EXPECT_EQ(gc.droppedRecords, 0u);
    EXPECT_EQ(gc.bytesBefore, gc.bytesAfter);
    EXPECT_EQ(segmentBytes(dir), before);

    // Full invalidation empties it.
    EXPECT_EQ(invalidateStore(dir, nullptr), keys.size());
    StoreSurvey after = surveyStore(dir);
    EXPECT_EQ(after.records, 0u);
    EXPECT_EQ(after.segments, 0u);
    removeStoreDir(dir);
}

// --- Fingerprint drift guard -----------------------------------------

// modelSemanticsFingerprint() hashes SystemConfig FIELD BY FIELD
// (padding makes hashing struct memory compiler-dependent), so a new
// config field is invisible to the fingerprint unless fingerprint.cc
// is taught about it — and a silently unchanged fingerprint means a
// store populated under the old semantics keeps serving stale results.
//
// These sizeof guards trip the moment a field is added to any struct
// the fingerprint covers. If one fails, you changed the model's
// configuration surface: add the new field to
// src/store/fingerprint.cc, bump modelSemanticsVersion in
// src/store/fingerprint.hh (old cached results are stale), THEN
// update the expected size here.
#define UVMASYNC_DRIFT_MESSAGE(what)                                  \
    what " changed size: a field was added or removed. Update "       \
         "modelSemanticsFingerprint() in src/store/fingerprint.cc, "  \
         "bump modelSemanticsVersion in src/store/fingerprint.hh, "   \
         "then update this guard."

TEST(FingerprintDrift, ConfigStructSizesArePinned)
{
    EXPECT_EQ(sizeof(HostMemoryConfig), 48u)
        << UVMASYNC_DRIFT_MESSAGE("HostMemoryConfig");
    EXPECT_EQ(sizeof(GpuConfig), 216u)
        << UVMASYNC_DRIFT_MESSAGE("GpuConfig");
    EXPECT_EQ(sizeof(PcieConfig), 88u)
        << UVMASYNC_DRIFT_MESSAGE("PcieConfig");
    EXPECT_EQ(sizeof(UvmConfig), 64u)
        << UVMASYNC_DRIFT_MESSAGE("UvmConfig");
    EXPECT_EQ(sizeof(AllocatorConfig), 72u)
        << UVMASYNC_DRIFT_MESSAGE("AllocatorConfig");
    EXPECT_EQ(sizeof(NoiseConfig), 40u)
        << UVMASYNC_DRIFT_MESSAGE("NoiseConfig");
    // WatchdogConfig is deliberately EXCLUDED from the fingerprint
    // (ceilings bound runs, they don't change results); if its size
    // moves, re-confirm the exclusion still holds and update here.
    EXPECT_EQ(sizeof(WatchdogConfig), 24u)
        << "WatchdogConfig changed size: confirm the new field still "
           "cannot affect simulated results (fingerprint.cc "
           "intentionally skips the watchdog), then update this "
           "guard.";
    EXPECT_EQ(sizeof(SystemConfig), 560u)
        << UVMASYNC_DRIFT_MESSAGE("SystemConfig");
}

#undef UVMASYNC_DRIFT_MESSAGE

TEST(FingerprintDrift, EveryFieldGroupMovesTheFingerprint)
{
    const SystemConfig base = SystemConfig::a100Epyc();
    const std::uint64_t baseline = modelSemanticsFingerprint(base);

    // One representative knob per hashed group: each must move the
    // fingerprint, or that group has silently fallen out of the hash.
    SystemConfig host = base;
    host.host.straddlePenalty += 0.5;
    EXPECT_NE(modelSemanticsFingerprint(host), baseline)
        << "HostMemoryConfig no longer reaches the fingerprint";

    SystemConfig gpu = base;
    gpu.gpu.smCount += 1;
    EXPECT_NE(modelSemanticsFingerprint(gpu), baseline)
        << "GpuConfig no longer reaches the fingerprint";

    SystemConfig pcie = base;
    pcie.pcie.efficiency[0] *= 0.5;
    EXPECT_NE(modelSemanticsFingerprint(pcie), baseline)
        << "PcieConfig no longer reaches the fingerprint";

    SystemConfig uvm = base;
    uvm.uvm.chunkBytes *= 2;
    EXPECT_NE(modelSemanticsFingerprint(uvm), baseline)
        << "UvmConfig no longer reaches the fingerprint";

    SystemConfig alloc = base;
    alloc.alloc.contextInit += 1;
    EXPECT_NE(modelSemanticsFingerprint(alloc), baseline)
        << "AllocatorConfig no longer reaches the fingerprint";

    SystemConfig noise = base;
    noise.noise.allocCv += 0.001;
    EXPECT_NE(modelSemanticsFingerprint(noise), baseline)
        << "NoiseConfig no longer reaches the fingerprint";

    SystemConfig capacity = base;
    capacity.deviceMemoryBytes += 1;
    EXPECT_NE(modelSemanticsFingerprint(capacity), baseline)
        << "deviceMemoryBytes no longer reaches the fingerprint";

    // And the one deliberate exclusion: watchdog ceilings bound a
    // run, they never change its results, so tightening them must
    // NOT invalidate every cached point.
    SystemConfig watchdog = base;
    watchdog.watchdog.maxEvents /= 2;
    watchdog.watchdog.maxSimTime = seconds(1);
    watchdog.watchdog.maxStallEvents /= 2;
    EXPECT_EQ(modelSemanticsFingerprint(watchdog), baseline)
        << "watchdog ceilings must stay excluded from the "
           "fingerprint (see fingerprint.cc)";
}

} // namespace
} // namespace uvmasync
