/**
 * @file
 * Integration tests: the paper's qualitative findings, asserted
 * end-to-end through the full stack (workload -> device -> harness).
 * These are the invariants the reproduction must not lose.
 */

#include <gtest/gtest.h>

#include "core/experiment.hh"
#include "core/report.hh"

namespace uvmasync
{
namespace
{

struct IntegrationFixture : public ::testing::Test
{
    static ExperimentOptions
    superOpts()
    {
        ExperimentOptions opts;
        opts.size = SizeClass::Super;
        opts.runs = 5;
        return opts;
    }

    static double
    norm(const ModeSet &set, TransferMode mode)
    {
        return findMode(set, mode).clean.overallPs() /
               findMode(set, TransferMode::Standard)
                   .clean.overallPs();
    }

    Experiment experiment;
};

TEST_F(IntegrationFixture, Takeaway2PrefetchHelpsRegularWorkloads)
{
    // "UVM with prefetch gives ~21% on real-world applications;
    // regular patterns benefit more."
    for (const char *name : {"vector_seq", "2DCONV", "pathfinder",
                             "hotspot", "knn"}) {
        ModeSet set = experiment.runAllModes(name, superOpts());
        EXPECT_LT(norm(set, TransferMode::UvmPrefetch), 0.9) << name;
    }
}

TEST_F(IntegrationFixture, Takeaway2AsyncHelpsIrregularWorkloads)
{
    // "In irregular programs like kmeans and lud, asynchronous memory
    // copy provides benefits atop of unified virtual memory": the
    // combination beats uvm_prefetch alone, and async alone helps.
    for (const char *name : {"lud", "kmeans"}) {
        ModeSet set = experiment.runAllModes(name, superOpts());
        double async = norm(set, TransferMode::Async);
        double prefetch = norm(set, TransferMode::UvmPrefetch);
        double combo = norm(set, TransferMode::UvmPrefetchAsync);
        EXPECT_LT(async, 1.0) << name;
        EXPECT_LT(combo, prefetch) << name;
    }
    // lud specifically: async alone beats UVM with prefetch.
    ModeSet lud = experiment.runAllModes("lud", superOpts());
    EXPECT_LT(norm(lud, TransferMode::Async),
              norm(lud, TransferMode::UvmPrefetch));
}

TEST_F(IntegrationFixture, LudCombinationMatchesAsyncOnly)
{
    // "When combining the two, lud maintains the same speedup as
    // Async Memcpy only."
    ModeSet set = experiment.runAllModes("lud", superOpts());
    double async = norm(set, TransferMode::Async);
    double combo = norm(set, TransferMode::UvmPrefetchAsync);
    EXPECT_NEAR(combo, async, 0.08);
}

TEST_F(IntegrationFixture, AsyncIsOverallNeutralOnMicro)
{
    // Section 4.1.1: async alone moves overall time < 1.5% on the
    // streaming microbenchmarks.
    for (const char *name : {"vector_seq", "saxpy", "gemv"}) {
        ModeSet set = experiment.runAllModes(name, superOpts());
        EXPECT_NEAR(norm(set, TransferMode::Async), 1.0, 0.015)
            << name;
    }
}

TEST_F(IntegrationFixture, AsyncCutsStreamingKernelTime)
{
    // Section 4.1.1: ~42% kernel-time reduction on vector_seq.
    ModeSet set = experiment.runAllModes("vector_seq", superOpts());
    double standard =
        findMode(set, TransferMode::Standard).clean.kernelPs;
    double async = findMode(set, TransferMode::Async).clean.kernelPs;
    EXPECT_LT(async, standard * 0.75);
    EXPECT_GT(async, standard * 0.40);
}

TEST_F(IntegrationFixture, AsyncInflatesStencilKernelTime)
{
    // Section 4.1.1: 2DCONV's async kernel runs ~2.5x standard.
    ModeSet set = experiment.runAllModes("2DCONV", superOpts());
    double standard =
        findMode(set, TransferMode::Standard).clean.kernelPs;
    double async = findMode(set, TransferMode::Async).clean.kernelPs;
    EXPECT_GT(async, standard * 1.8);
}

TEST_F(IntegrationFixture, UvmWithoutPrefetchDoesNotHelp)
{
    // Takeaway 2: plain uvm gives no significant improvement.
    std::vector<ModeSet> micro;
    for (const char *name :
         {"vector_seq", "vector_rand", "saxpy", "gemv", "gemm",
          "2DCONV", "3DCONV"})
        micro.push_back(experiment.runAllModes(name, superOpts()));
    double gain = geomeanImprovement(micro, TransferMode::Uvm);
    EXPECT_LT(gain, 0.02);
}

TEST_F(IntegrationFixture, UvmRaisesFaultsPrefetchEliminatesThem)
{
    ModeSet set = experiment.runAllModes("saxpy", superOpts());
    EXPECT_GT(findMode(set, TransferMode::Uvm).counters.faults, 0u);
    EXPECT_EQ(findMode(set, TransferMode::UvmPrefetch).counters.faults,
              0u);
}

TEST_F(IntegrationFixture, Figure9AsyncControlInstructions)
{
    // gemm/yolov3 control counts rise ~30-40% with async; lud's
    // branch-heavy baseline dilutes the increase.
    for (const char *name : {"gemm", "yolov3"}) {
        ModeSet set = experiment.runAllModes(name, superOpts());
        double std_ctrl =
            findMode(set, TransferMode::Standard).counters.instrs
                .control;
        double async_ctrl =
            findMode(set, TransferMode::UvmPrefetchAsync)
                .counters.instrs.control;
        double increase = async_ctrl / std_ctrl - 1.0;
        EXPECT_GT(increase, 0.15) << name;
        EXPECT_LT(increase, 0.8) << name;
    }
    ModeSet lud = experiment.runAllModes("lud", superOpts());
    double increase =
        findMode(lud, TransferMode::UvmPrefetchAsync)
            .counters.instrs.control /
            findMode(lud, TransferMode::Standard).counters.instrs
                .control -
        1.0;
    EXPECT_LT(increase, 0.15);
}

TEST_F(IntegrationFixture, Figure10LudMissRatesDropWithAsync)
{
    ModeSet set = experiment.runAllModes("lud", superOpts());
    const RunCounters &std_c =
        findMode(set, TransferMode::Standard).counters;
    const RunCounters &async_c =
        findMode(set, TransferMode::Async).counters;
    EXPECT_LT(async_c.l1LoadMissRate, std_c.l1LoadMissRate * 0.9);
    EXPECT_LT(async_c.l1StoreMissRate, std_c.l1StoreMissRate * 0.6);
}

TEST_F(IntegrationFixture, Figure5LargeAndSuperAreStable)
{
    // Takeaway 1: relative noise shrinks from Tiny to Large/Super,
    // then regresses at Mega.
    auto cv = [&](SizeClass size) {
        ExperimentOptions opts;
        opts.size = size;
        opts.runs = 30;
        return experiment
            .run("vector_seq", TransferMode::Standard, opts)
            .overallSamples()
            .cv();
    };
    double tiny = cv(SizeClass::Tiny);
    double large = cv(SizeClass::Large);
    double mega = cv(SizeClass::Mega);
    EXPECT_GT(tiny, large);
    EXPECT_GT(mega, large);
}

TEST_F(IntegrationFixture, Figure11BlockCountInsensitive)
{
    // Takeaway 4: repartitioning vector_seq across block counts
    // moves overall time by only a few percent.
    ExperimentOptions opts = superOpts();
    opts.geometry.threadsPerBlock = 256;
    double reference = 0.0;
    for (std::uint64_t blocks : {4096ull, 512ull, 64ull}) {
        opts.geometry.gridBlocks = blocks;
        double overall =
            experiment.run("vector_seq", TransferMode::Standard, opts)
                .clean.overallPs();
        if (reference == 0.0)
            reference = overall;
        EXPECT_NEAR(overall / reference, 1.0, 0.05) << blocks;
    }
}

TEST_F(IntegrationFixture, Figure13PartitionShapes)
{
    // Takeaway 5: tiny shared memory starves async; a huge carveout
    // (tiny L1) hurts the UVM configurations more than standard.
    auto kernelAt = [&](Bytes carveout, TransferMode mode) {
        ExperimentOptions opts = superOpts();
        opts.sharedCarveout = carveout;
        return experiment.run("vector_seq", mode, opts)
            .clean.kernelPs;
    };
    EXPECT_GT(kernelAt(kib(2), TransferMode::Async),
              kernelAt(kib(32), TransferMode::Async) * 1.5);
    double uvmGrowth = kernelAt(kib(128), TransferMode::UvmPrefetch) /
                       kernelAt(kib(32), TransferMode::UvmPrefetch);
    double stdGrowth = kernelAt(kib(128), TransferMode::Standard) /
                       kernelAt(kib(32), TransferMode::Standard);
    EXPECT_GT(uvmGrowth, stdGrowth);
}

TEST_F(IntegrationFixture, Figure6MemcpyIsTheUnstableComponent)
{
    // At Mega, allocation and kernel are flat across runs while the
    // memcpy component carries the DRAM-straddle noise.
    ExperimentOptions opts;
    opts.size = SizeClass::Mega;
    opts.runs = 30;
    ExperimentResult res =
        experiment.run("vector_seq", TransferMode::Standard, opts);
    SampleSet alloc, memcpy_s, kernel;
    for (const TimeBreakdown &b : res.runs) {
        alloc.add(b.allocPs);
        memcpy_s.add(b.transferPs);
        kernel.add(b.kernelPs);
    }
    EXPECT_GT(memcpy_s.cv(), alloc.cv() * 3);
    EXPECT_GT(memcpy_s.cv(), kernel.cv() * 3);
}

TEST_F(IntegrationFixture, NwPrefetchChurnsVersusPlainUvm)
{
    // Section 4.1.2: for nw, prefetch downgrades performance
    // relative to what plain demand paging would lose.
    ModeSet set = experiment.runAllModes("nw", superOpts());
    double prefetch_transfer =
        findMode(set, TransferMode::UvmPrefetch).clean.transferPs;
    double uvm_transfer =
        findMode(set, TransferMode::Uvm).clean.transferPs;
    EXPECT_GT(prefetch_transfer, uvm_transfer);
}

TEST_F(IntegrationFixture, YoloCombinationWorseThanPrefetchAlone)
{
    // Section 4.1.2: yolov3's gemm kernels make uvm_prefetch alone
    // the best configuration.
    ModeSet set = experiment.runAllModes("yolov3", superOpts());
    EXPECT_GT(norm(set, TransferMode::UvmPrefetchAsync),
              norm(set, TransferMode::UvmPrefetch));
}

} // namespace
} // namespace uvmasync
