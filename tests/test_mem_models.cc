/**
 * @file
 * Tests for the TLB, host-memory placement model, device memory LRU
 * and the access-pattern taxonomy/stream generator.
 */

#include <gtest/gtest.h>

#include <set>

#include "mem/access_pattern.hh"
#include "mem/device_memory.hh"
#include "mem/host_memory.hh"
#include "mem/tlb.hh"

namespace uvmasync
{
namespace
{

// --- TLB -----------------------------------------------------------

TEST(Tlb, MissThenHit)
{
    Tlb tlb("tlb", 4, kib(4));
    EXPECT_FALSE(tlb.access(0x1000));
    EXPECT_TRUE(tlb.access(0x1fff)); // same page
    EXPECT_FALSE(tlb.access(0x2000));
}

TEST(Tlb, LruEviction)
{
    Tlb tlb("tlb", 2, kib(4));
    tlb.access(0x0000);
    tlb.access(0x1000);
    tlb.access(0x0000);          // refresh page 0
    tlb.access(0x2000);          // evicts page 1
    EXPECT_TRUE(tlb.access(0x0000));
    EXPECT_FALSE(tlb.access(0x1000));
}

TEST(Tlb, FlushDropsTranslations)
{
    Tlb tlb("tlb", 4, kib(4));
    tlb.access(0x1000);
    tlb.flush();
    EXPECT_FALSE(tlb.access(0x1000));
}

TEST(Tlb, MissRateAccounting)
{
    Tlb tlb("tlb", 16, kib(4));
    for (int i = 0; i < 10; ++i)
        tlb.access(0x5000);
    EXPECT_NEAR(tlb.missRate(), 0.1, 1e-9);
    tlb.resetStats();
    EXPECT_DOUBLE_EQ(tlb.missRate(), 0.0);
}

// --- Host memory ----------------------------------------------------

TEST(HostMemory, CapacityFromConfig)
{
    HostMemory host("host", HostMemoryConfig{});
    EXPECT_EQ(host.totalCapacity(), gib(1024)); // 16 x 64 GB
}

TEST(HostMemory, SmallFootprintsDoNotStraddle)
{
    HostMemory host("host", HostMemoryConfig{});
    EXPECT_FALSE(host.straddles(gib(4)));
    Rng rng(1);
    EXPECT_DOUBLE_EQ(host.placementFactor(gib(4), rng), 1.0);
}

TEST(HostMemory, LargeFootprintsStraddle)
{
    HostMemory host("host", HostMemoryConfig{});
    EXPECT_TRUE(host.straddles(gib(32)));
}

TEST(HostMemory, PlacementFactorBounded)
{
    HostMemory host("host", HostMemoryConfig{});
    Rng rng(2);
    for (int i = 0; i < 200; ++i) {
        double f = host.placementFactor(gib(32), rng);
        EXPECT_GT(f, 0.0);
        EXPECT_LE(f, 1.0);
    }
    EXPECT_GT(host.straddledRuns(), 0u);
}

TEST(HostMemory, StraddleAddsVariance)
{
    HostMemory host("host", HostMemoryConfig{});
    Rng rng(3);
    double lo = 1.0, hi = 0.0;
    for (int i = 0; i < 200; ++i) {
        double f = host.placementFactor(gib(32), rng);
        lo = std::min(lo, f);
        hi = std::max(hi, f);
    }
    EXPECT_LT(lo, hi); // genuinely random across runs
}

TEST(HostMemory, DeterministicGivenSeed)
{
    HostMemory host("host", HostMemoryConfig{});
    Rng a(9), b(9);
    EXPECT_DOUBLE_EQ(host.placementFactor(gib(32), a),
                     host.placementFactor(gib(32), b));
}

// --- Device memory --------------------------------------------------

TEST(DeviceMemory, InsertAndAccounting)
{
    DeviceMemory dev("hbm", mib(1), Bandwidth::fromGBps(1400.0));
    dev.insert(ResidentChunk{0, 0, kib(256)});
    EXPECT_EQ(dev.residentBytes(), kib(256));
    EXPECT_EQ(dev.freeBytes(), mib(1) - kib(256));
    EXPECT_TRUE(dev.fits(kib(768)));
    EXPECT_FALSE(dev.fits(kib(769)));
}

TEST(DeviceMemory, EvictsLeastRecentlyUsed)
{
    DeviceMemory dev("hbm", mib(1), Bandwidth::fromGBps(1400.0));
    dev.insert(ResidentChunk{0, 0, kib(256)});
    dev.insert(ResidentChunk{0, 1, kib(256)});
    dev.touch(0, 0); // chunk 0 becomes most recent
    ResidentChunk victim = dev.evictVictim();
    EXPECT_EQ(victim.chunkIndex, 1u);
    EXPECT_EQ(dev.residentBytes(), kib(256));
    EXPECT_EQ(dev.evictions(), 1u);
}

TEST(DeviceMemory, LruTrackingToggle)
{
    DeviceMemory dev("hbm", mib(1), Bandwidth::fromGBps(1400.0));
    dev.setLruTracking(false);
    dev.insert(ResidentChunk{0, 0, kib(64)});
    dev.touch(0, 0); // no-op, must not crash
    EXPECT_EQ(dev.residentBytes(), kib(64));
    dev.clear();
    EXPECT_EQ(dev.residentBytes(), 0u);
}

TEST(DeviceMemoryDeathTest, OversubscribingInsertPanics)
{
    DeviceMemory dev("hbm", kib(64), Bandwidth::fromGBps(1400.0));
    EXPECT_DEATH(dev.insert(ResidentChunk{0, 0, kib(65)}),
                 "oversubscribe");
}

TEST(DeviceMemoryDeathTest, EvictWithoutResidencyPanics)
{
    DeviceMemory dev("hbm", kib(64), Bandwidth::fromGBps(1400.0));
    EXPECT_DEATH(dev.evictVictim(), "nothing resident");
}

// --- Access patterns -------------------------------------------------

TEST(AccessPattern, NamesAreDistinct)
{
    std::set<std::string> names;
    for (AccessPattern p :
         {AccessPattern::Sequential, AccessPattern::Strided,
          AccessPattern::Tiled, AccessPattern::Random,
          AccessPattern::Irregular, AccessPattern::Broadcast})
        names.insert(accessPatternName(p));
    EXPECT_EQ(names.size(), 6u);
}

TEST(AccessPattern, RegularityOrdering)
{
    // The paper's key distinction: regular >> irregular >> random.
    EXPECT_GT(patternRegularity(AccessPattern::Sequential),
              patternRegularity(AccessPattern::Irregular));
    EXPECT_GT(patternRegularity(AccessPattern::Irregular),
              patternRegularity(AccessPattern::Random));
    EXPECT_GT(patternRegularity(AccessPattern::Tiled), 0.8);
}

TEST(AccessPattern, LocalityOrdering)
{
    EXPECT_GT(patternLocality(AccessPattern::Sequential),
              patternLocality(AccessPattern::Strided));
    EXPECT_GT(patternLocality(AccessPattern::Irregular),
              patternLocality(AccessPattern::Random));
}

TEST(AccessPattern, SectorTrafficOrdering)
{
    EXPECT_DOUBLE_EQ(patternSectorTraffic(AccessPattern::Sequential),
                     1.0);
    EXPECT_GT(patternSectorTraffic(AccessPattern::Random),
              patternSectorTraffic(AccessPattern::Irregular));
    EXPECT_LE(patternSectorTraffic(AccessPattern::Tiled), 1.0);
}

TEST(StreamGenerator, AddressesStayInFootprint)
{
    for (AccessPattern p :
         {AccessPattern::Sequential, AccessPattern::Strided,
          AccessPattern::Tiled, AccessPattern::Random,
          AccessPattern::Irregular, AccessPattern::Broadcast}) {
        StreamGenerator gen(p, kib(64), 4, 11);
        for (int i = 0; i < 5000; ++i) {
            Addr a = gen.next();
            ASSERT_LT(a, kib(64)) << accessPatternName(p);
            ASSERT_EQ(a % 4, 0u);
        }
    }
}

TEST(StreamGenerator, SequentialIsUnitStride)
{
    StreamGenerator gen(AccessPattern::Sequential, kib(4), 4, 1);
    EXPECT_EQ(gen.next(), 0u);
    EXPECT_EQ(gen.next(), 4u);
    EXPECT_EQ(gen.next(), 8u);
}

TEST(StreamGenerator, RandomCoversSpace)
{
    StreamGenerator gen(AccessPattern::Random, kib(4), 4, 2);
    std::set<Addr> seen;
    for (int i = 0; i < 20000; ++i)
        seen.insert(gen.next());
    // 1024 elements; random sampling should touch nearly all.
    EXPECT_GT(seen.size(), 1000u);
}

TEST(StreamGenerator, DeterministicPerSeed)
{
    StreamGenerator a(AccessPattern::Irregular, kib(64), 4, 33);
    StreamGenerator b(AccessPattern::Irregular, kib(64), 4, 33);
    EXPECT_EQ(a.generate(1000), b.generate(1000));
}

} // namespace
} // namespace uvmasync
