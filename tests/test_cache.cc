/**
 * @file
 * Tests for the set-associative cache model, including the miss-rate
 * properties the GPU L1 model relies on.
 */

#include <gtest/gtest.h>

#include "mem/cache.hh"

namespace uvmasync
{
namespace
{

SetAssocCache
smallCache()
{
    // 4 KiB, 32 B lines, 4 ways -> 32 sets.
    return SetAssocCache("l1", kib(4), 32, 4);
}

TEST(Cache, GeometryDerivation)
{
    SetAssocCache c = smallCache();
    EXPECT_EQ(c.sets(), 32u);
    EXPECT_EQ(c.lineBytes(), 32u);
    EXPECT_EQ(c.ways(), 4u);
}

TEST(Cache, ColdMissThenHit)
{
    SetAssocCache c = smallCache();
    EXPECT_FALSE(c.access(0x100, false));
    EXPECT_TRUE(c.access(0x100, false));
    EXPECT_TRUE(c.access(0x11f, false)); // same 32 B line
    EXPECT_FALSE(c.access(0x120, false)); // next line
}

TEST(Cache, StoreWriteAllocates)
{
    SetAssocCache c = smallCache();
    EXPECT_FALSE(c.access(0x200, true));
    EXPECT_TRUE(c.access(0x200, false));
    EXPECT_EQ(c.stats().storeMisses, 1u);
    EXPECT_EQ(c.stats().loadHits, 1u);
}

TEST(Cache, LruEvictionOrder)
{
    SetAssocCache c = smallCache();
    // Five lines mapping to the same set (stride = sets * line).
    Addr stride = 32 * 32;
    for (Addr i = 0; i < 5; ++i)
        c.access(i * stride, false);
    // Line 0 was least recently used and must be gone.
    EXPECT_FALSE(c.access(0, false));
    // Line 4 is still resident.
    EXPECT_TRUE(c.access(4 * stride, false));
}

TEST(Cache, TouchRefreshesLru)
{
    SetAssocCache c = smallCache();
    Addr stride = 32 * 32;
    for (Addr i = 0; i < 4; ++i)
        c.access(i * stride, false);
    c.access(0, false); // refresh line 0
    c.access(4 * stride, false); // evicts line 1, not 0
    EXPECT_TRUE(c.access(0, false));
    EXPECT_FALSE(c.access(1 * stride, false));
}

TEST(Cache, NoAllocateProbeDoesNotFill)
{
    SetAssocCache c = smallCache();
    EXPECT_FALSE(c.accessNoAllocate(0x100));
    EXPECT_FALSE(c.accessNoAllocate(0x100)); // still not resident
    c.access(0x100, false);
    EXPECT_TRUE(c.accessNoAllocate(0x100));
}

TEST(Cache, FlushInvalidatesKeepsStats)
{
    SetAssocCache c = smallCache();
    c.access(0x100, false);
    c.flush();
    EXPECT_FALSE(c.access(0x100, false));
    EXPECT_EQ(c.stats().loadMisses, 2u);
    c.resetStats();
    EXPECT_EQ(c.stats().loads(), 0u);
}

TEST(Cache, SequentialStreamMissRateIsElementOverLine)
{
    SetAssocCache c("l1", kib(64), 32, 4);
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        c.access(static_cast<Addr>(i) * 4, false);
    // 4 B elements on 32 B lines: 1 miss per 8 accesses.
    EXPECT_NEAR(c.stats().loadMissRate(), 0.125, 0.001);
}

TEST(Cache, WorkingSetFitsAfterWarmup)
{
    SetAssocCache c("l1", kib(64), 32, 4);
    // 32 KiB working set walked repeatedly fits in 64 KiB.
    for (int pass = 0; pass < 4; ++pass) {
        for (Addr a = 0; a < kib(32); a += 32)
            c.access(a, false);
    }
    // Only the first pass misses.
    double expected = 0.25;
    EXPECT_NEAR(static_cast<double>(c.stats().loadMisses) /
                    static_cast<double>(c.stats().loads()),
                expected, 0.01);
}

TEST(Cache, ThrashingWorkingSetKeepsMissing)
{
    SetAssocCache c("l1", kib(4), 32, 4);
    // 64 KiB streamed repeatedly through a 4 KiB cache.
    std::uint64_t misses_before = 0;
    for (int pass = 0; pass < 3; ++pass) {
        for (Addr a = 0; a < kib(64); a += 32)
            c.access(a, false);
        std::uint64_t misses = c.stats().loadMisses;
        EXPECT_GT(misses, misses_before);
        misses_before = misses;
    }
    EXPECT_GT(c.stats().loadMissRate(), 0.95);
}

TEST(Cache, RandomReplacementStillCaches)
{
    SetAssocCache c("l1", kib(4), 32, 4, ReplacementPolicy::Random);
    c.access(0x40, false);
    EXPECT_TRUE(c.access(0x40, false));
}

TEST(CacheStats, RatesHandleZeroAccesses)
{
    CacheStats s;
    EXPECT_DOUBLE_EQ(s.loadMissRate(), 0.0);
    EXPECT_DOUBLE_EQ(s.storeMissRate(), 0.0);
}

TEST(CacheDeathTest, BadGeometryPanics)
{
    EXPECT_DEATH(SetAssocCache("bad", 1000, 32, 4), "divisible");
}

/** Property: miss rate always lands in [0, 1] across geometries. */
class CacheGeometryTest
    : public ::testing::TestWithParam<std::tuple<int, int>>
{
};

TEST_P(CacheGeometryTest, MissRateInRange)
{
    auto [capacityKib, ways] = GetParam();
    SetAssocCache c("l1", kib(static_cast<std::uint64_t>(capacityKib)),
                    32, static_cast<unsigned>(ways));
    for (Addr a = 0; a < kib(128); a += 16)
        c.access(a * 7 % kib(256), a % 3 == 0);
    EXPECT_GE(c.stats().loadMissRate(), 0.0);
    EXPECT_LE(c.stats().loadMissRate(), 1.0);
    EXPECT_GE(c.stats().storeMissRate(), 0.0);
    EXPECT_LE(c.stats().storeMissRate(), 1.0);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheGeometryTest,
    ::testing::Combine(::testing::Values(4, 16, 64, 160),
                       ::testing::Values(1, 2, 4, 8)));

} // namespace
} // namespace uvmasync
