/**
 * @file
 * Edge cases of the kernel executor: degenerate geometries, extreme
 * partitions, unstaged kernels, async API multiplier, and L2
 * residency effects.
 */

#include <gtest/gtest.h>

#include "gpu/kernel_executor.hh"

namespace uvmasync
{
namespace
{

KernelDescriptor
tinyKernel()
{
    KernelDescriptor kd = makeStreamKernel(
        "tiny", 1, 32, kib(4), kib(4), 4, 2.0, 2.0, 0.5, 0.0);
    kd.buffers = {
        KernelBufferUse{0, AccessPattern::Sequential, true, false,
                        1.0, true},
    };
    return kd;
}

KernelExecConfig
cfgFor(TransferMode mode, std::vector<Bytes> bytes)
{
    KernelExecConfig cfg;
    cfg.mode = mode;
    cfg.bufferBytes = std::move(bytes);
    return cfg;
}

TEST(ExecutorEdge, SingleBlockSingleWarpRuns)
{
    KernelExecutor exec(cfgFor(TransferMode::Standard, {kib(4)}));
    KernelResult res = exec.run(tinyKernel(), 0);
    EXPECT_GT(res.kernelTime(), 0u);
    EXPECT_EQ(res.faults, 0u);
}

TEST(ExecutorEdge, ZeroStoreKernel)
{
    KernelDescriptor kd = tinyKernel();
    kd.tileStoreBytes = 0;
    kd.name = "nostore";
    KernelExecutor exec(cfgFor(TransferMode::Async, {kib(4)}));
    EXPECT_GT(exec.run(kd, 0).kernelTime(), 0u);
}

TEST(ExecutorEdge, TinyCarveoutShrinksTilesNotCorrectness)
{
    KernelDescriptor kd = makeStreamKernel(
        "bigtile", 256, 256, mib(64), kib(64), 4, 4.0, 4.0, 1.0,
        0.5);
    kd.buffers = tinyKernel().buffers;
    KernelExecConfig cfg = cfgFor(TransferMode::Async, {mib(64)});
    cfg.sharedCarveout = kib(2);
    KernelExecutor exec(cfg);
    KernelResult res = exec.run(kd, 0);
    EXPECT_GT(res.kernelTime(), 0u);
    // With 2 KiB of shared memory the 128 KiB double buffer cannot
    // fit; tiles shrink and the pipeline pays heavy per-tile waits.
    KernelExecConfig roomy = cfgFor(TransferMode::Async, {mib(64)});
    roomy.sharedCarveout = kib(128);
    KernelExecutor exec2(roomy);
    EXPECT_GT(res.kernelTime(), exec2.run(kd, 0).kernelTime());
}

TEST(ExecutorEdge, UnstagedKernelIgnoresAsyncMode)
{
    KernelDescriptor kd = tinyKernel();
    kd.gridBlocks = 1024;
    for (KernelBufferUse &use : kd.buffers)
        use.stagedThroughShared = false;
    kd.name = "unstaged";
    KernelExecutor sync(cfgFor(TransferMode::Standard, {kib(4)}));
    KernelExecutor async(cfgFor(TransferMode::Async, {kib(4)}));
    EXPECT_EQ(sync.run(kd, 0).kernelTime(),
              async.run(kd, 0).kernelTime());
    // Neither does it add control instructions.
    EXPECT_DOUBLE_EQ(sync.run(kd, 0).instrs.control,
                     async.run(kd, 0).instrs.control);
}

TEST(ExecutorEdge, BarrierApiSlowerThanPipeline)
{
    KernelDescriptor kd = makeStreamKernel(
        "stream", 2048, 256, gib(1), kib(32), 4, 8.0, 4.0, 0.5, 1.0);
    kd.buffers = {
        KernelBufferUse{0, AccessPattern::Sequential, true, true,
                        1.0, true},
    };
    KernelExecConfig pipe = cfgFor(TransferMode::Async, {gib(1)});
    KernelExecConfig barrier = cfgFor(TransferMode::Async, {gib(1)});
    barrier.gpu.asyncWaitMultiplier = 1.9;
    KernelExecutor a(pipe), b(barrier);
    EXPECT_LT(a.run(kd, 0).kernelTime(), b.run(kd, 0).kernelTime());
}

TEST(ExecutorEdge, L2ResidentReuseFasterThanStreaming)
{
    // Same traffic, but one kernel re-reads a small (L2-resident)
    // footprint while the other streams a huge one.
    auto make = [](const char *name, Bytes footprint) {
        KernelDescriptor kd = makeStreamKernel(
            name, 2048, 256, gib(1), kib(16), 4, 4.0, 4.0, 0.5, 0.1);
        kd.buffers = {
            KernelBufferUse{0, AccessPattern::Tiled, true, false, 1.0,
                            true},
        };
        (void)footprint;
        return kd;
    };
    KernelExecutor smallFp(
        cfgFor(TransferMode::Standard, {mib(16)}));
    KernelExecutor bigFp(cfgFor(TransferMode::Standard, {gib(8)}));
    Tick reused = smallFp.run(make("reuse", mib(16)), 0).kernelTime();
    Tick streamed = bigFp.run(make("stream", gib(8)), 0).kernelTime();
    EXPECT_LT(reused, streamed);
}

TEST(ExecutorEdge, StartTickOffsetsResult)
{
    KernelExecutor exec(cfgFor(TransferMode::Standard, {kib(4)}));
    KernelResult a = exec.run(tinyKernel(), 0);
    KernelResult b = exec.run(tinyKernel(), seconds(1));
    EXPECT_EQ(a.kernelTime(), b.kernelTime());
    EXPECT_EQ(b.startTick, seconds(1));
}

TEST(ExecutorEdge, MemoizationIsByName)
{
    // Two kernels sharing a name inside one executor instance reuse
    // the first derivation (documented contract).
    KernelDescriptor kd = tinyKernel();
    KernelExecutor exec(cfgFor(TransferMode::Standard, {kib(4)}));
    Tick first = exec.run(kd, 0).kernelTime();
    kd.fpPerTile *= 1000.0; // same name -> cached derivation
    EXPECT_EQ(exec.run(kd, 0).kernelTime(), first);
}

} // namespace
} // namespace uvmasync
