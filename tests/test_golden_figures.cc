/**
 * @file
 * Golden-figure regression harness.
 *
 * Runs the Figure 7 (microbenchmarks), Figure 8 (applications) and
 * Figure 14 (inter-job pipeline) pipelines at a fixed seed through
 * the parallel engine and compares the rendered CSV byte-for-byte
 * against the checked-in goldens in tests/golden/. Any change to the
 * simulator's timing model shows up as a diff here, so a perf PR
 * cannot silently change the paper numbers.
 *
 * Updating the goldens after an *intentional* model change:
 *
 *     ./build/tests/test_golden_figures --update-golden
 *     git diff tests/golden/   # review every changed number!
 *
 * then commit the regenerated CSVs together with the model change.
 * The golden directory is baked in at compile time via the
 * UVMASYNC_GOLDEN_DIR definition (tests/CMakeLists.txt).
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <unistd.h>

#include "core/batch_pipeline.hh"
#include "core/parallel_runner.hh"
#include "store/fingerprint.hh"
#include "store/result_store.hh"
#include "workloads/registry.hh"

namespace uvmasync
{
namespace
{

bool gUpdateGolden = false;

std::string
goldenPath(const std::string &name)
{
    return std::string(UVMASYNC_GOLDEN_DIR) + "/" + name;
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return {};
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
}

void
compareOrUpdate(const std::string &name, const std::string &actual)
{
    std::string path = goldenPath(name);
    if (gUpdateGolden) {
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        ASSERT_TRUE(out) << "cannot write golden " << path;
        out << actual;
        SUCCEED() << "updated " << path;
        return;
    }
    std::string expected = readFile(path);
    ASSERT_FALSE(expected.empty())
        << "golden " << path << " is missing or empty; regenerate "
        << "with: test_golden_figures --update-golden";
    EXPECT_EQ(expected, actual)
        << "simulated figure numbers changed. If intentional, "
        << "regenerate with --update-golden and review the diff.";
}

/** The harness' fixed-seed options (seed pinned, modest run count). */
ExperimentOptions
goldenOpts(SizeClass size)
{
    ExperimentOptions opts;
    opts.size = size;
    opts.runs = 5;
    opts.baseSeed = 42;
    return opts;
}

/**
 * Run a (workloads x five modes) grid through the engine and render
 * it as CSV, micro-picosecond precision: workload, mode, clean and
 * mean alloc/transfer/kernel components, and the fault counter.
 */
std::string
gridCsv(const std::vector<std::string> &workloads, SizeClass size,
        std::vector<ExperimentResult> *keep = nullptr)
{
    std::vector<TransferMode> modes(allTransferModes.begin(),
                                    allTransferModes.end());
    std::vector<ExperimentPoint> points = ParallelRunner::expandGrid(
        workloads, modes, 1, goldenOpts(size));
    // expandGrid derives per-trial seeds; the golden pipelines pin
    // the cell seed itself so the CSV matches a plain fixed-seed run.
    for (ExperimentPoint &point : points)
        point.opts.baseSeed = 42;

    ParallelRunner runner(SystemConfig::a100Epyc());
    std::vector<ExperimentResult> results = runner.run(points);

    std::string csv = "workload,mode,clean_alloc_ps,clean_transfer_ps,"
                      "clean_kernel_ps,mean_alloc_ps,mean_transfer_ps,"
                      "mean_kernel_ps,faults\n";
    char buf[512];
    for (const ExperimentResult &res : results) {
        TimeBreakdown mean = res.meanBreakdown();
        std::snprintf(buf, sizeof(buf),
                      "%s,%s,%.6f,%.6f,%.6f,%.6f,%.6f,%.6f,%llu\n",
                      res.workload.c_str(),
                      transferModeName(res.mode), res.clean.allocPs,
                      res.clean.transferPs, res.clean.kernelPs,
                      mean.allocPs, mean.transferPs, mean.kernelPs,
                      static_cast<unsigned long long>(
                          res.counters.faults));
        csv += buf;
    }
    if (keep)
        *keep = std::move(results);
    return csv;
}

TEST(GoldenFigures, Fig7MicroLarge)
{
    registerAllWorkloads();
    compareOrUpdate(
        "fig7_micro_large.csv",
        gridCsv(WorkloadRegistry::instance().names(
                    WorkloadSuite::Micro),
                SizeClass::Large));
}

TEST(GoldenFigures, Fig8AppsSuper)
{
    registerAllWorkloads();
    compareOrUpdate(
        "fig8_apps_super.csv",
        gridCsv(WorkloadRegistry::instance().names(WorkloadSuite::App),
                SizeClass::Super));
}

TEST(GoldenFigures, Fig14InterJobPipeline)
{
    registerAllWorkloads();
    std::vector<ExperimentResult> results;
    gridCsv(WorkloadRegistry::instance().names(WorkloadSuite::App),
            SizeClass::Super, &results);

    // The Section 6 batch: every app's uvm_prefetch_async mean
    // breakdown, scheduled serial vs pipelined.
    std::vector<TimeBreakdown> batch;
    for (const ExperimentResult &res : results) {
        if (res.mode == TransferMode::UvmPrefetchAsync)
            batch.push_back(res.meanBreakdown());
    }
    ASSERT_FALSE(batch.empty());
    BatchScheduleResult sched = scheduleBatch(batch);

    char buf[256];
    std::string csv = "metric,value\n";
    std::snprintf(buf, sizeof(buf), "serial_ps,%.6f\n",
                  sched.serialPs);
    csv += buf;
    std::snprintf(buf, sizeof(buf), "pipelined_ps,%.6f\n",
                  sched.pipelinedPs);
    csv += buf;
    std::snprintf(buf, sizeof(buf), "improvement,%.9f\n",
                  sched.improvement());
    csv += buf;
    compareOrUpdate("fig14_interjob.csv", csv);
}

/**
 * Golden regeneration *through the result store*: the Figure 7 CSV
 * produced by a cold store-populating run and by a warm 100%-hit
 * rerun must both equal the committed golden byte-for-byte. This is
 * the end-to-end guarantee that incremental (store-served) figure
 * regeneration can never drift from a from-scratch simulation.
 */
TEST(GoldenFigures, Fig7RegeneratedThroughStoreMatchesGolden)
{
    registerAllWorkloads();
    std::vector<std::string> workloads =
        WorkloadRegistry::instance().names(WorkloadSuite::Micro);
    std::vector<TransferMode> modes(allTransferModes.begin(),
                                    allTransferModes.end());
    std::vector<ExperimentPoint> points = ParallelRunner::expandGrid(
        workloads, modes, 1, goldenOpts(SizeClass::Large));
    for (ExperimentPoint &point : points)
        point.opts.baseSeed = 42;

    std::string dir =
        ::testing::TempDir() + "uvmasync_store_golden";
    std::uint64_t fp =
        modelSemanticsFingerprint(SystemConfig::a100Epyc());

    auto renderCsv = [&](const BatchResult &batch) {
        std::string csv =
            "workload,mode,clean_alloc_ps,clean_transfer_ps,"
            "clean_kernel_ps,mean_alloc_ps,mean_transfer_ps,"
            "mean_kernel_ps,faults\n";
        char buf[512];
        for (const PointOutcome &out : batch.points) {
            const ExperimentResult &res = out.result;
            TimeBreakdown mean = res.meanBreakdown();
            std::snprintf(
                buf, sizeof(buf),
                "%s,%s,%.6f,%.6f,%.6f,%.6f,%.6f,%.6f,%llu\n",
                res.workload.c_str(), transferModeName(res.mode),
                res.clean.allocPs, res.clean.transferPs,
                res.clean.kernelPs, mean.allocPs, mean.transferPs,
                mean.kernelPs,
                static_cast<unsigned long long>(
                    res.counters.faults));
            csv += buf;
        }
        return csv;
    };

    std::string golden = readFile(goldenPath("fig7_micro_large.csv"));
    ASSERT_FALSE(golden.empty());

    for (int round = 0; round < 2; ++round) {
        auto store = ResultStore::open(dir, fp);
        StorePointCache cache(*store, points);
        RunPolicy policy;
        policy.cache = &cache;
        ParallelRunner runner(SystemConfig::a100Epyc());
        BatchResult batch = runner.runPoints(points, policy);
        ASSERT_TRUE(batch.allOk());
        EXPECT_EQ(batch.metrics.cacheHits,
                  round == 0 ? 0u : points.size());
        EXPECT_EQ(renderCsv(batch), golden)
            << (round == 0 ? "cold" : "warm")
            << " store-backed regeneration diverged from the "
            << "committed golden";
    }

    for (std::size_t s = 0; s < ResultStore::shardCount; ++s) {
        char name[8];
        std::snprintf(name, sizeof(name), "s%02zx", s);
        std::remove((dir + "/shards/" + name).c_str());
    }
    std::remove((dir + "/meta.json").c_str());
    ::rmdir((dir + "/shards").c_str());
    ::rmdir(dir.c_str());
}

} // namespace
} // namespace uvmasync

int
main(int argc, char **argv)
{
    ::testing::InitGoogleTest(&argc, argv);
    for (int i = 1; i < argc; ++i) {
        if (std::string(argv[i]) == "--update-golden")
            uvmasync::gUpdateGolden = true;
    }
    return RUN_ALL_TESTS();
}
