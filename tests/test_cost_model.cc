/**
 * @file
 * Cross-validation harness for the static cost model.
 *
 * The analyzer (analysis/cost_model.hh) predicts per-mode transfer
 * bytes, fault counts and an async-vs-UVM winner without running the
 * event-driven simulator. This suite holds it honest: every registry
 * workload at every size class is simulated under TransferMode::Async
 * and TransferMode::Uvm and compared against the prediction. Points
 * whose grid geometry makes the simulator itself pathologically slow
 * on a single core are skipped by a structural predicate (see
 * kMaxSimulableBlocks) and counted in the committed summary.
 *
 * The committed accuracy band (the numbers check.sh gates on):
 *   - winner agreement  >= kWinnerAgreementFloor of all points
 *   - explicit-path bytes exact (the analyzer replays the copy plan)
 *   - UVM byte / fault errors within the kUvm* ceilings below
 *
 * The aggregate metrics are also pinned byte-for-byte in
 * tests/golden/cost_model_accuracy.csv so any drift in prediction
 * quality — better or worse — shows up as a reviewable diff:
 *
 *     ./build/tests/test_cost_model --update-golden
 *     git diff tests/golden/cost_model_accuracy.csv
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/cost_model.hh"
#include "runtime/device.hh"
#include "sim/event_queue.hh"
#include "workloads/registry.hh"

namespace uvmasync
{
namespace
{

bool gUpdateGolden = false;

// --- the committed accuracy band -------------------------------------
// Documented in DESIGN.md section 13; check.sh re-runs this suite, so
// loosening the band is a reviewable one-line diff here.
constexpr double kWinnerAgreementFloor = 0.80;
constexpr double kExplicitBytesTol = 0.01; // max rel. error, exact
constexpr double kUvmBytesMeanTol = 0.35;  // mean rel. error
constexpr double kUvmFaultsMeanTol = 0.50; // mean rel. error

// Simulating a UVM launch costs host CPU proportional to its block
// count (the executor enumerates per-block demand); past ~4M blocks
// one reference point takes minutes on one core (lavaMD @ mega runs
// 16.7M blocks). Such points are skipped *structurally* — by grid
// geometry, not by name — and counted in the committed summary, so
// a workload drifting over the line shows up as a golden diff.
constexpr std::uint64_t kMaxSimulableBlocks = 1ull << 22;

bool
pathologicalToSimulate(const Job &job)
{
    for (const KernelDescriptor &kd : job.kernels) {
        if (kd.gridBlocks > kMaxSimulableBlocks)
            return true;
    }
    return false;
}

std::string
goldenPath(const std::string &name)
{
    return std::string(UVMASYNC_GOLDEN_DIR) + "/" + name;
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return {};
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
}

void
compareOrUpdate(const std::string &name, const std::string &actual)
{
    std::string path = goldenPath(name);
    if (gUpdateGolden) {
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        ASSERT_TRUE(out) << "cannot write golden " << path;
        out << actual;
        SUCCEED() << "updated " << path;
        return;
    }
    std::string expected = readFile(path);
    ASSERT_FALSE(expected.empty())
        << "golden " << path << " is missing or empty; regenerate "
        << "with: test_cost_model --update-golden";
    EXPECT_EQ(expected, actual)
        << "cost-model accuracy drifted. If the model change is "
        << "intentional, regenerate with --update-golden and review "
        << "the diff.";
}

double
relErr(double predicted, double actual)
{
    double denom = std::max(actual, 1.0);
    return std::abs(predicted - actual) / denom;
}

/** Streaming mean/max accumulator for one error series. */
struct ErrStat
{
    double sum = 0.0;
    double maxv = 0.0;
    std::uint64_t n = 0;

    void
    add(double e)
    {
        sum += e;
        maxv = std::max(maxv, e);
        ++n;
    }

    double mean() const { return n ? sum / static_cast<double>(n) : 0.0; }
};

/** One simulated reference point. */
struct SimPoint
{
    bool ok = false;
    double overallPs = 0.0;
    double h2d = 0.0;
    double d2h = 0.0;
    double faults = 0.0;
};

SimPoint
simulate(const SystemConfig &sys, const Job &job, TransferMode mode)
{
    SimPoint p;
    try {
        Device device(sys);
        RunResult r = device.run(job, mode, RunOptions{});
        p.ok = true;
        p.overallPs = r.breakdown.overallPs();
        p.h2d = static_cast<double>(r.counters.bytesH2d);
        p.d2h = static_cast<double>(r.counters.bytesD2h);
        p.faults = static_cast<double>(r.counters.faults);
    } catch (const PointTimeout &) {
        // A tripped watchdog is a property of the point, not a model
        // bug; the point is excluded and counted in the summary.
    }
    return p;
}

TEST(CostModelCrossValidation, RegistryWideWinnerAndTraffic)
{
    registerAllWorkloads();
    SystemConfig sys = SystemConfig::a100Epyc();

    std::uint64_t points = 0, agreed = 0, timeouts = 0, skipped = 0;
    ErrStat asyncH2d, asyncD2h, uvmH2d, uvmD2h, uvmFaults;
    // Per-size agreement, indexed by SizeClass value.
    std::vector<std::uint64_t> sizePoints(allSizeClasses.size(), 0);
    std::vector<std::uint64_t> sizeAgreed(allSizeClasses.size(), 0);
    std::vector<std::string> mismatches;

    for (const std::string &name :
         WorkloadRegistry::instance().names()) {
        const Workload &w = *WorkloadRegistry::instance().find(name);
        for (std::size_t si = 0; si < allSizeClasses.size(); ++si) {
            SizeClass size = allSizeClasses[si];
            Job job = w.makeJob(size);
            if (pathologicalToSimulate(job)) {
                ++skipped;
                continue;
            }
            CostReport rep = analyzeCost(sys, job);

            SimPoint simAsync =
                simulate(sys, job, TransferMode::Async);
            SimPoint simUvm = simulate(sys, job, TransferMode::Uvm);
            if (!simAsync.ok || !simUvm.ok) {
                ++timeouts;
                continue;
            }

            const ModeCost &predAsync =
                rep.mode(TransferMode::Async);
            const ModeCost &predUvm = rep.mode(TransferMode::Uvm);

            bool simAsyncWins =
                simAsync.overallPs <= simUvm.overallPs;
            bool predAsyncWins =
                predAsync.overallPs() <= predUvm.overallPs();
            ++points;
            ++sizePoints[si];
            if (simAsyncWins == predAsyncWins) {
                ++agreed;
                ++sizeAgreed[si];
            } else {
                char buf[256];
                std::snprintf(
                    buf, sizeof(buf),
                    "%s @ %s: sim %s (async %.3g ps, uvm %.3g ps) "
                    "vs predicted %s (async %.3g ps, uvm %.3g ps)",
                    name.c_str(), sizeClassName(size),
                    simAsyncWins ? "async" : "uvm",
                    simAsync.overallPs, simUvm.overallPs,
                    predAsyncWins ? "async" : "uvm",
                    predAsync.overallPs(), predUvm.overallPs());
                mismatches.push_back(buf);
            }

            asyncH2d.add(relErr(
                static_cast<double>(predAsync.h2dBytes),
                simAsync.h2d));
            asyncD2h.add(relErr(
                static_cast<double>(predAsync.d2hBytes),
                simAsync.d2h));
            uvmH2d.add(relErr(static_cast<double>(predUvm.h2dBytes),
                              simUvm.h2d));
            uvmD2h.add(relErr(static_cast<double>(predUvm.d2hBytes),
                              simUvm.d2h));
            uvmFaults.add(relErr(
                static_cast<double>(predUvm.faults), simUvm.faults));
        }
    }

    ASSERT_GT(points, 0u);
    double agreement =
        static_cast<double>(agreed) / static_cast<double>(points);

    std::string detail;
    for (const std::string &m : mismatches)
        detail += "  " + m + "\n";
    EXPECT_GE(agreement, kWinnerAgreementFloor)
        << "winner mispredicted on " << mismatches.size() << " of "
        << points << " points:\n"
        << detail;

    EXPECT_LE(asyncH2d.maxv, kExplicitBytesTol)
        << "the explicit H2D plan is deterministic; the analyzer "
        << "must replay it exactly";
    EXPECT_LE(asyncD2h.maxv, kExplicitBytesTol);
    EXPECT_LE(uvmH2d.mean(), kUvmBytesMeanTol);
    EXPECT_LE(uvmD2h.mean(), kUvmBytesMeanTol);
    EXPECT_LE(uvmFaults.mean(), kUvmFaultsMeanTol);

    // Pin the aggregates so silent drift in either direction shows
    // up as a golden diff.
    char buf[128];
    std::string csv = "metric,value\n";
    auto row = [&](const char *metric, double value) {
        std::snprintf(buf, sizeof(buf), "%s,%.6f\n", metric, value);
        csv += buf;
    };
    row("points", static_cast<double>(points));
    row("timeouts", static_cast<double>(timeouts));
    row("skipped_pathological", static_cast<double>(skipped));
    row("winner_agreement", agreement);
    row("async_h2d_relerr_max", asyncH2d.maxv);
    row("async_d2h_relerr_max", asyncD2h.maxv);
    row("uvm_h2d_relerr_mean", uvmH2d.mean());
    row("uvm_h2d_relerr_max", uvmH2d.maxv);
    row("uvm_d2h_relerr_mean", uvmD2h.mean());
    row("uvm_d2h_relerr_max", uvmD2h.maxv);
    row("uvm_faults_relerr_mean", uvmFaults.mean());
    row("uvm_faults_relerr_max", uvmFaults.maxv);
    for (std::size_t si = 0; si < allSizeClasses.size(); ++si) {
        std::string metric = std::string("winner_agreement_") +
                             sizeClassName(allSizeClasses[si]);
        double v = sizePoints[si]
                       ? static_cast<double>(sizeAgreed[si]) /
                             static_cast<double>(sizePoints[si])
                       : 0.0;
        row(metric.c_str(), v);
    }
    compareOrUpdate("cost_model_accuracy.csv", csv);
}

// --- analyzer purity and determinism ---------------------------------

TEST(CostModel, AnalyzeIsPureAndDeterministic)
{
    registerAllWorkloads();
    SystemConfig sys = SystemConfig::a100Epyc();
    Job job = WorkloadRegistry::instance()
                  .get("gemm")
                  .makeJob(SizeClass::Large);
    Bytes footprintBefore = job.footprint();
    std::size_t buffersBefore = job.buffers.size();
    std::size_t kernelsBefore = job.kernels.size();

    std::string a =
        renderCostReport(analyzeCost(sys, job), "gemm @ large");
    std::string b =
        renderCostReport(analyzeCost(sys, job), "gemm @ large");
    EXPECT_EQ(a, b) << "analyzer output must be byte-stable";
    EXPECT_FALSE(a.empty());

    EXPECT_EQ(job.footprint(), footprintBefore)
        << "analyzeCost must never mutate the job";
    EXPECT_EQ(job.buffers.size(), buffersBefore);
    EXPECT_EQ(job.kernels.size(), kernelsBefore);
}

TEST(CostModel, ReportCoversAllModesAndPicksConsistentWinner)
{
    registerAllWorkloads();
    SystemConfig sys = SystemConfig::a100Epyc();
    Job job = WorkloadRegistry::instance()
                  .get("saxpy")
                  .makeJob(SizeClass::Small);
    CostReport rep = analyzeCost(sys, job);
    double best = rep.mode(rep.bestMode).overallPs();
    EXPECT_GT(best, 0.0);
    for (TransferMode m : allTransferModes) {
        EXPECT_EQ(rep.mode(m).mode, m);
        EXPECT_GE(rep.mode(m).overallPs(), best);
    }
    EXPECT_GT(rep.asyncOverUvm, 0.0);
}

} // namespace
} // namespace uvmasync

int
main(int argc, char **argv)
{
    ::testing::InitGoogleTest(&argc, argv);
    for (int i = 1; i < argc; ++i) {
        if (std::string(argv[i]) == "--update-golden")
            uvmasync::gUpdateGolden = true;
    }
    return RUN_ALL_TESTS();
}
