/**
 * @file
 * Tests for the darknet layer/network substrate: shape propagation,
 * parameter counts against the published architectures, and job
 * lowering.
 */

#include <gtest/gtest.h>

#include "workloads/nn/network.hh"

namespace uvmasync
{
namespace
{

TEST(Layer, ConvOutputShape)
{
    LayerSpec conv{LayerKind::Conv, 64, 7, 2};
    TensorShape out = layerOutputShape(conv, {3, 224, 224});
    EXPECT_EQ(out.c, 64u);
    EXPECT_EQ(out.h, 112u);
    EXPECT_EQ(out.w, 112u);
}

TEST(Layer, PoolHalvesSpatial)
{
    LayerSpec pool{LayerKind::MaxPool, 0, 2, 2};
    TensorShape out = layerOutputShape(pool, {64, 112, 112});
    EXPECT_EQ(out.c, 64u);
    EXPECT_EQ(out.h, 56u);
}

TEST(Layer, UpsampleDoubles)
{
    LayerSpec up{LayerKind::Upsample};
    TensorShape out = layerOutputShape(up, {256, 13, 13});
    EXPECT_EQ(out.h, 26u);
    EXPECT_EQ(out.w, 26u);
}

TEST(Layer, RouteConcatenatesChannels)
{
    LayerSpec route{LayerKind::Route, 0, 1, 1, 512};
    TensorShape out = layerOutputShape(route, {256, 26, 26});
    EXPECT_EQ(out.c, 768u);
    EXPECT_EQ(out.h, 26u);
    EXPECT_EQ(layerWeightBytes(route, {256, 26, 26}), 0u);
}

TEST(Layer, ConnectedFlattens)
{
    LayerSpec fc{LayerKind::Connected, 1000};
    TensorShape out = layerOutputShape(fc, {512, 7, 7});
    EXPECT_EQ(out.c, 1000u);
    EXPECT_EQ(out.elements(), 1000u);
}

TEST(Layer, ConvWeightBytes)
{
    LayerSpec conv{LayerKind::Conv, 64, 3, 1};
    // 3*3*32*64 floats.
    EXPECT_EQ(layerWeightBytes(conv, {32, 56, 56}),
              9u * 32u * 64u * 4u);
    LayerSpec pool{LayerKind::MaxPool, 0, 2, 2};
    EXPECT_EQ(layerWeightBytes(pool, {32, 56, 56}), 0u);
}

TEST(Layer, ConvFlops)
{
    LayerSpec conv{LayerKind::Conv, 64, 3, 1};
    TensorShape in{32, 56, 56};
    // 2 * k^2 * cin * out elements.
    EXPECT_DOUBLE_EQ(layerFlops(conv, in),
                     2.0 * 9 * 32 * (64.0 * 56 * 56));
}

TEST(Layer, LoweringProducesKernel)
{
    LayerSpec conv{LayerKind::Conv, 64, 3, 1};
    KernelDescriptor kd =
        lowerLayer(conv, {32, 56, 56}, 8, 3, 2, 3, 0.25);
    EXPECT_EQ(kd.name, "conv_3");
    EXPECT_GT(kd.gridBlocks, 0u);
    EXPECT_EQ(kd.buffers.size(), 3u);
    EXPECT_EQ(kd.buffers[0].bufferId, 2u);
    EXPECT_EQ(kd.buffers[1].bufferId, 1u); // weights
    EXPECT_DOUBLE_EQ(kd.buffers[1].touchedFraction, 0.25);
    EXPECT_EQ(kd.buffers[2].bufferId, 3u);
    EXPECT_TRUE(kd.buffers[2].written);
}

TEST(Network, Resnet18ParameterCount)
{
    NetworkSpec net = makeResnet18(1);
    // The published resnet18 has ~11.7M parameters; our conv-only
    // approximation must land in the same regime.
    double params = static_cast<double>(net.weightBytes()) / 4.0;
    EXPECT_GT(params, 8e6);
    EXPECT_LT(params, 16e6);
}

TEST(Network, Resnet50HasMoreParamsThanResnet18)
{
    EXPECT_GT(makeResnet50(1).weightBytes(),
              makeResnet18(1).weightBytes());
}

TEST(Network, Yolov3ParameterCount)
{
    // Published yolov3: ~62M parameters.
    double params =
        static_cast<double>(makeYolov3(1).weightBytes()) / 4.0;
    EXPECT_GT(params, 40e6);
    EXPECT_LT(params, 80e6);
}

TEST(Network, TinyIsMuchSmallerThanFull)
{
    EXPECT_LT(makeYolov3Tiny(1).weightBytes() * 4,
              makeYolov3(1).weightBytes());
}

TEST(Network, FlopsScaleWithBatch)
{
    double one = makeResnet18(1).totalFlops();
    double four = makeResnet18(4).totalFlops();
    EXPECT_NEAR(four / one, 4.0, 1e-9);
    // Published resnet18: ~1.8 GFLOPs (3.6e9 multiply-accumulate
    // counted as 2 ops) per 224x224 image.
    EXPECT_GT(one, 2e9);
    EXPECT_LT(one, 8e9);
}

TEST(Network, JobHasFiveBuffers)
{
    Job job = buildNetworkJob(makeResnet18(4));
    ASSERT_EQ(job.buffers.size(), 5u);
    EXPECT_TRUE(job.buffers[0].hostInit);   // input
    EXPECT_TRUE(job.buffers[1].hostInit);   // weights
    EXPECT_FALSE(job.buffers[2].hostInit);  // act_a (device only)
    EXPECT_FALSE(job.buffers[2].hostConsumed);
    EXPECT_TRUE(job.buffers[4].hostConsumed); // output
    EXPECT_EQ(job.kernels.size(),
              makeResnet18(4).layers.size());
}

TEST(Network, PingPongAlternatesActivations)
{
    Job job = buildNetworkJob(makeYolov3Tiny(2));
    // First layer reads the input buffer.
    EXPECT_EQ(job.kernels.front().buffers[0].bufferId, 0u);
    // Last layer writes the output buffer.
    EXPECT_EQ(job.kernels.back().buffers[2].bufferId, 4u);
    // Consecutive layers chain through act_a/act_b.
    for (std::size_t i = 1; i + 1 < job.kernels.size(); ++i) {
        EXPECT_EQ(job.kernels[i].buffers[0].bufferId,
                  job.kernels[i - 1].buffers[2].bufferId);
    }
}

TEST(Network, WeightSharesSumToOne)
{
    Job job = buildNetworkJob(makeResnet50(2));
    double total = 0.0;
    for (const KernelDescriptor &kd : job.kernels)
        total += kd.buffers[1].touchedFraction;
    EXPECT_NEAR(total, 1.0, 0.02);
}

TEST(Network, ActivationBufferCoversPeak)
{
    NetworkSpec net = makeYolov3(2);
    Job job = buildNetworkJob(net);
    EXPECT_GE(job.buffers[2].bytes, net.maxActivationBytes());
}

} // namespace
} // namespace uvmasync
