/**
 * @file
 * Tests for far-fault batching and the prefetcher models.
 */

#include <gtest/gtest.h>

#include "xfer/fault_handler.hh"
#include "xfer/prefetcher.hh"

namespace uvmasync
{
namespace
{

FaultHandlerConfig
cfg()
{
    FaultHandlerConfig c;
    c.batchBaseLatency = microseconds(20);
    c.perFaultLatency = microseconds(1);
    c.batchWindow = microseconds(10);
    c.maxBatchSize = 4;
    return c;
}

TEST(FaultHandler, SingleFaultPaysBasePlusOne)
{
    FaultHandler h("fh", cfg());
    Tick done = h.service(0);
    EXPECT_EQ(done, microseconds(21));
    EXPECT_EQ(h.faults(), 1u);
    EXPECT_EQ(h.batches(), 1u);
}

TEST(FaultHandler, SimultaneousFaultsShareBatch)
{
    FaultHandler h("fh", cfg());
    Tick d1 = h.service(0);
    Tick d2 = h.service(0);
    Tick d3 = h.service(0);
    EXPECT_EQ(h.batches(), 1u);
    // Later joiners resolve later (per-fault marginal cost).
    EXPECT_LT(d1, d2);
    EXPECT_LT(d2, d3);
    EXPECT_DOUBLE_EQ(h.meanBatchSize(), 3.0);
}

TEST(FaultHandler, BatchSizeCapOpensNewBatch)
{
    FaultHandler h("fh", cfg());
    for (int i = 0; i < 4; ++i)
        h.service(0);
    h.service(0); // fifth: cap is 4
    EXPECT_EQ(h.batches(), 2u);
}

TEST(FaultHandler, WindowExpiryOpensNewBatch)
{
    FaultHandler h("fh", cfg());
    h.service(0);
    h.service(microseconds(11)); // outside 10 us window
    EXPECT_EQ(h.batches(), 2u);
}

TEST(FaultHandler, BatchesSerializeOnHandler)
{
    FaultHandler h("fh", cfg());
    Tick d1 = h.service(0);
    // A fault arriving after the window but before the handler
    // finished starts its batch when the handler frees up.
    Tick d2 = h.service(microseconds(11));
    EXPECT_GE(d2, d1);
}

TEST(FaultHandler, ResetClearsTimeline)
{
    FaultHandler h("fh", cfg());
    h.service(0);
    h.reset();
    EXPECT_EQ(h.faults(), 0u);
    EXPECT_EQ(h.service(0), microseconds(21));
}

TEST(Prefetcher, NoneNeverPredicts)
{
    NonePrefetcher p("none");
    EXPECT_TRUE(p.onDemandMiss(0, 5, 100).empty());
    EXPECT_EQ(p.issued(), 0u);
}

TEST(Prefetcher, StreamPredictsNextN)
{
    StreamPrefetcher p("stream", 3);
    auto preds = p.onDemandMiss(0, 10, 100);
    ASSERT_EQ(preds.size(), 3u);
    EXPECT_EQ(preds[0].chunkIndex, 11u);
    EXPECT_EQ(preds[2].chunkIndex, 13u);
    EXPECT_EQ(p.issued(), 3u);
}

TEST(Prefetcher, StreamClampsAtRangeEnd)
{
    StreamPrefetcher p("stream", 8);
    auto preds = p.onDemandMiss(0, 98, 100);
    EXPECT_EQ(preds.size(), 1u);
}

TEST(Prefetcher, TreeGrowsOnUsefulHits)
{
    TreePrefetcher p("tree", 2, 16);
    EXPECT_EQ(p.onDemandMiss(0, 0, 1000).size(), 2u);
    p.onUsefulPrefetch(0);
    EXPECT_EQ(p.onDemandMiss(0, 10, 1000).size(), 4u);
    p.onUsefulPrefetch(0);
    EXPECT_EQ(p.onDemandMiss(0, 20, 1000).size(), 8u);
}

TEST(Prefetcher, TreeCollapsesOnWaste)
{
    TreePrefetcher p("tree", 2, 16);
    p.onUsefulPrefetch(0);
    p.onUsefulPrefetch(0);
    EXPECT_EQ(p.onDemandMiss(0, 0, 1000).size(), 8u);
    p.onWastedPrefetch(0);
    EXPECT_EQ(p.onDemandMiss(0, 50, 1000).size(), 2u);
}

TEST(Prefetcher, TreePerRangeState)
{
    TreePrefetcher p("tree", 2, 16);
    p.onUsefulPrefetch(0);
    // Range 1 is untouched and stays at the minimum distance.
    EXPECT_EQ(p.onDemandMiss(1, 0, 1000).size(), 2u);
    EXPECT_EQ(p.onDemandMiss(0, 0, 1000).size(), 4u);
}

TEST(Prefetcher, AccuracyAccounting)
{
    StreamPrefetcher p("stream", 1);
    p.onUsefulPrefetch(0);
    p.onUsefulPrefetch(0);
    p.onWastedPrefetch(0);
    EXPECT_NEAR(p.accuracy(), 2.0 / 3.0, 1e-9);
    p.resetStats();
    EXPECT_DOUBLE_EQ(p.accuracy(), 0.0);
}

TEST(Prefetcher, FactoryMakesAllKinds)
{
    EXPECT_NE(makePrefetcher(PrefetcherKind::None, "a"), nullptr);
    EXPECT_NE(makePrefetcher(PrefetcherKind::Stream, "b"), nullptr);
    EXPECT_NE(makePrefetcher(PrefetcherKind::Tree, "c"), nullptr);
}

} // namespace
} // namespace uvmasync
