/**
 * @file
 * Cross-module property tests: conservation laws, monotonicity and
 * ordering invariants that must hold regardless of calibration.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <dirent.h>
#include <string>
#include <sys/stat.h>
#include <thread>
#include <unistd.h>

#include "core/experiment.hh"
#include "core/parallel_runner.hh"
#include "core/report.hh"
#include "mem/device_memory.hh"
#include "mem/page_table.hh"
#include "runtime/device.hh"
#include "serve/daemon.hh"
#include "store/fingerprint.hh"
#include "store/result_store.hh"
#include "trace/metrics.hh"
#include "trace/trace_check.hh"
#include "workloads/registry.hh"
#include "xfer/migration_engine.hh"

namespace uvmasync
{
namespace
{

// --- Migration engine conservation -----------------------------------

TEST(Conservation, MigratedBytesMatchLinkPayload)
{
    PageTable table("pt");
    DeviceMemory devMem("hbm", gib(4), Bandwidth::fromGBps(1400.0));
    PcieLink link("pcie", PcieConfig{});
    UvmConfig cfg;
    cfg.chunkBytes = kib(256);
    MigrationEngine engine("uvm", cfg, table, devMem, link);

    std::size_t id = table.addRange("buf", mib(16) + 12345,
                                    cfg.chunkBytes);
    engine.beginJob();

    Tick t = 0;
    for (std::uint64_t c = 0; c < table.range(id).chunkCount();
         c += 2)
        t = engine.requestChunk(id, c, t);

    // The page table's migration accounting and the link's payload
    // accounting must agree byte for byte.
    EXPECT_EQ(table.bytesToDevice(),
              link.bytesMoved(Direction::HostToDevice));
    // Resident bytes equal what was migrated (no eviction here).
    EXPECT_EQ(devMem.residentBytes(), table.bytesToDevice());
}

TEST(Conservation, WritebackNeverExceedsResident)
{
    PageTable table("pt");
    DeviceMemory devMem("hbm", gib(4), Bandwidth::fromGBps(1400.0));
    PcieLink link("pcie", PcieConfig{});
    MigrationEngine engine("uvm", UvmConfig{}, table, devMem, link);

    std::size_t id = table.addRange("buf", mib(64),
                                    UvmConfig{}.chunkBytes);
    engine.beginJob();
    engine.prefetchRange(id, 0);
    engine.markRangeDirty(id);
    engine.writebackDirty(id, seconds(1));
    EXPECT_LE(link.bytesMoved(Direction::DeviceToHost), mib(64));
    EXPECT_EQ(link.bytesMoved(Direction::DeviceToHost),
              table.bytesToHost());
}

TEST(Conservation, OversubscribedResidencyNeverExceedsCapacity)
{
    PageTable table("pt");
    DeviceMemory devMem("hbm", mib(1), Bandwidth::fromGBps(1400.0));
    PcieLink link("pcie", PcieConfig{});
    UvmConfig cfg;
    cfg.chunkBytes = kib(64);
    MigrationEngine engine("uvm", cfg, table, devMem, link);

    std::size_t id = table.addRange("big", mib(4), cfg.chunkBytes);
    engine.beginJob();

    Tick t = 0;
    for (std::uint64_t c = 0; c < table.range(id).chunkCount(); ++c) {
        t = engine.requestChunk(id, c, t);
        ASSERT_LE(devMem.residentBytes(), devMem.capacity());
    }
}

// --- Executor monotonicity --------------------------------------------

TEST(Monotonicity, KernelTimeGrowsWithWork)
{
    registerAllWorkloads();
    Experiment e;
    ExperimentOptions opts;
    opts.runs = 1;
    double prev = 0.0;
    for (SizeClass s : {SizeClass::Tiny, SizeClass::Small,
                        SizeClass::Medium, SizeClass::Large}) {
        opts.size = s;
        double kernel =
            e.run("saxpy", TransferMode::Standard, opts)
                .clean.kernelPs;
        EXPECT_GE(kernel, prev) << sizeClassName(s);
        prev = kernel;
    }
}

TEST(Monotonicity, OverallGrowsWithSizeForEveryMode)
{
    registerAllWorkloads();
    Experiment e;
    ExperimentOptions opts;
    opts.runs = 1;
    for (TransferMode mode : allTransferModes) {
        double prev = 0.0;
        for (SizeClass s :
             {SizeClass::Small, SizeClass::Medium, SizeClass::Large,
              SizeClass::Super}) {
            opts.size = s;
            double overall =
                e.run("vector_seq", mode, opts).clean.overallPs();
            EXPECT_GT(overall, prev)
                << transferModeName(mode) << "/" << sizeClassName(s);
            prev = overall;
        }
    }
}

TEST(Monotonicity, SlowerLinkNeverHelpsTransfers)
{
    registerAllWorkloads();
    double prev = 0.0;
    for (double gbps : {200.0, 52.0, 26.0, 13.0}) {
        SystemConfig cfg = SystemConfig::a100Epyc();
        cfg.pcie.rawBandwidth = Bandwidth::fromGBps(gbps);
        Device device(cfg);
        Job job = WorkloadRegistry::instance()
                      .get("saxpy")
                      .makeJob(SizeClass::Medium);
        double transfer =
            device.run(job, TransferMode::Standard)
                .breakdown.transferPs;
        EXPECT_GT(transfer, prev) << gbps;
        prev = transfer;
    }
}

// --- Fault handler ordering -------------------------------------------

TEST(Ordering, FaultCompletionIsMonotoneInArrival)
{
    FaultHandler handler("fh", FaultHandlerConfig{});
    Tick prevDone = 0;
    Tick now = 0;
    std::uint64_t state = 99;
    for (int i = 0; i < 500; ++i) {
        state = state * 6364136223846793005ull + 1;
        now += state % microseconds(5);
        Tick done = handler.service(now);
        EXPECT_GE(done, now);
        EXPECT_GE(done, prevDone);
        prevDone = done;
    }
}

// --- Experiment-level orderings ----------------------------------------

TEST(Ordering, PrefetchAlwaysBeatsPlainUvmTransferOnFreshData)
{
    // Bulk prefetch moves the same bytes at higher efficiency than
    // demand migration, for every single-kernel workload.
    registerAllWorkloads();
    Experiment e;
    ExperimentOptions opts;
    opts.size = SizeClass::Medium;
    opts.runs = 1;
    for (const char *name : {"vector_seq", "saxpy", "gemv", "knn"}) {
        double uvm =
            e.run(name, TransferMode::Uvm, opts).clean.transferPs;
        double prefetch = e.run(name, TransferMode::UvmPrefetch, opts)
                              .clean.transferPs;
        EXPECT_LT(prefetch, uvm) << name;
    }
}

TEST(Ordering, AllocationIsModeInsensitiveToFirstOrder)
{
    // The paper treats allocation as roughly constant across the five
    // setups; managed and device allocation must stay within 25%.
    registerAllWorkloads();
    Experiment e;
    ExperimentOptions opts;
    opts.size = SizeClass::Super;
    opts.runs = 1;
    ModeSet set = e.runAllModes("vector_seq", opts);
    double base = findMode(set, TransferMode::Standard).clean.allocPs;
    for (const ExperimentResult &res : set) {
        EXPECT_NEAR(res.clean.allocPs / base, 1.0, 0.25)
            << transferModeName(res.mode);
    }
}

TEST(Ordering, FasterPatternsLoadFaster)
{
    // vector_rand's gather can never beat vector_seq's stream.
    registerAllWorkloads();
    Experiment e;
    ExperimentOptions opts;
    opts.size = SizeClass::Large;
    opts.runs = 1;
    double seq = e.run("vector_seq", TransferMode::Standard, opts)
                     .clean.kernelPs;
    double rnd = e.run("vector_rand", TransferMode::Standard, opts)
                     .clean.kernelPs;
    EXPECT_GT(rnd, seq);
}

// --- Trace invariants ---------------------------------------------------

/**
 * Every workload in the registry, under every transfer mode, must
 * produce a structurally valid trace: spans in per-lane time order
 * and properly nested, nothing past the wall, per-lane busy bounded
 * by the wall, the kernel-detail spans covering at least the kernel
 * busy time, and fault lifecycle events exactly in (and only in) the
 * UVM modes.
 */
TEST(TraceInvariants, RegistryWideStructuralChecks)
{
    registerAllWorkloads();
    Experiment e;
    ExperimentOptions opts;
    opts.size = SizeClass::Tiny;
    opts.runs = 1;
    opts.trace = true;
    for (const std::string &name :
         WorkloadRegistry::instance().names()) {
        for (TransferMode mode : allTransferModes) {
            SCOPED_TRACE(name + "/" + transferModeName(mode));
            ExperimentResult res = e.run(name, mode, opts);
            const Tracer &trace = res.trace;
            ASSERT_FALSE(trace.empty());

            TraceCheckResult check = checkTrace(trace);
            EXPECT_TRUE(check.ok) << check.first();

            // No lane (PCIe directions included) can be busier than
            // the trace is long.
            TraceMetrics m = computeTraceMetrics(trace);
            for (const LaneMetrics &lane : m.lanes)
                EXPECT_LE(lane.busyPs, m.wallEndPs) << lane.name;

            Tick kernelSpanPs = 0;
            std::uint64_t raises = 0;
            std::uint64_t faultEvents = 0;
            for (const TraceEvent &ev : trace.events()) {
                if (ev.category == TraceCategory::Kernel &&
                    (ev.name == TraceName::KernelLaunch ||
                     ev.name == TraceName::TileCompute))
                    kernelSpanPs += ev.duration();
                if (ev.category == TraceCategory::Fault) {
                    ++faultEvents;
                    if (ev.name == TraceName::FaultRaise)
                        ++raises;
                }
            }
            // Launch + tile spans jointly tile each launch window, so
            // their total can never undercut the kernel component.
            EXPECT_GE(static_cast<double>(kernelSpanPs) + 1.0,
                      res.clean.kernelPs);
            if (usesUvm(mode)) {
                EXPECT_EQ(raises, res.counters.faults);
            } else {
                EXPECT_EQ(faultEvents, 0u);
            }
        }
    }
}

/** An untraced run must leave the result's trace empty. */
TEST(TraceInvariants, UntracedRunRecordsNothing)
{
    registerAllWorkloads();
    Experiment e;
    ExperimentOptions opts;
    opts.size = SizeClass::Tiny;
    opts.runs = 1;
    ExperimentResult res = e.run("saxpy", TransferMode::Uvm, opts);
    EXPECT_TRUE(res.trace.empty());
    EXPECT_EQ(res.trace.laneCount(), 0u);
}

// --- Noise model properties ---------------------------------------------

TEST(NoiseProperties, PerRunSamplesArePositive)
{
    registerAllWorkloads();
    Experiment e;
    ExperimentOptions opts;
    opts.size = SizeClass::Tiny;
    opts.runs = 50;
    for (TransferMode mode :
         {TransferMode::Standard, TransferMode::Uvm}) {
        ExperimentResult res = e.run("saxpy", mode, opts);
        for (const TimeBreakdown &b : res.runs) {
            EXPECT_GT(b.allocPs, 0.0);
            EXPECT_GT(b.transferPs, 0.0);
            EXPECT_GT(b.kernelPs, 0.0);
        }
    }
}

TEST(NoiseProperties, MeanTracksClean)
{
    registerAllWorkloads();
    Experiment e;
    ExperimentOptions opts;
    opts.size = SizeClass::Super;
    opts.runs = 30;
    ExperimentResult res =
        e.run("vector_seq", TransferMode::Standard, opts);
    // Mean of noisy runs within 5% of clean + expected overhead.
    double expected =
        res.clean.overallPs() +
        static_cast<double>(NoiseConfig{}.systemOverheadMean);
    EXPECT_NEAR(res.meanBreakdown().overallPs() / expected, 1.0,
                0.05);
}

// --- Result-store equivalence ------------------------------------------

/**
 * Serving a sweep from the persistent store is an identity: a warm
 * rerun hits on 100% of its points and every ExperimentResult field
 * that feeds reports/CSV is bit-identical to the cold simulation.
 */
TEST(StoreEquivalence, WarmSweepIsBitIdenticalToCold)
{
    registerAllWorkloads();
    ExperimentOptions base;
    base.size = SizeClass::Tiny;
    base.runs = 3;
    std::vector<TransferMode> modes(allTransferModes.begin(),
                                    allTransferModes.end());
    std::vector<ExperimentPoint> grid = ParallelRunner::expandGrid(
        {"saxpy", "gemv"}, modes, 1, base);

    std::string dir =
        ::testing::TempDir() + "uvmasync_store_props";
    std::uint64_t fp =
        modelSemanticsFingerprint(SystemConfig::a100Epyc());

    BatchResult cold, warm;
    {
        auto store = ResultStore::open(dir, fp);
        StorePointCache cache(*store, grid);
        RunPolicy policy;
        policy.cache = &cache;
        ParallelRunner runner(SystemConfig::a100Epyc(), 2);
        cold = runner.runPoints(grid, policy);
        ASSERT_TRUE(cold.allOk());
        EXPECT_EQ(cold.metrics.cacheHits, 0u);
    }
    {
        auto store = ResultStore::open(dir, fp);
        StorePointCache cache(*store, grid);
        RunPolicy policy;
        policy.cache = &cache;
        ParallelRunner runner(SystemConfig::a100Epyc(), 4);
        warm = runner.runPoints(grid, policy);
        ASSERT_TRUE(warm.allOk());
        // 100% hit rate: nothing simulated.
        EXPECT_EQ(warm.metrics.cacheHits, grid.size());
        EXPECT_EQ(store->stats().hits, store->stats().lookups);
    }

    ASSERT_EQ(warm.points.size(), cold.points.size());
    for (std::size_t i = 0; i < warm.points.size(); ++i) {
        const ExperimentResult &a = cold.points[i].result;
        const ExperimentResult &b = warm.points[i].result;
        EXPECT_EQ(b.workload, a.workload);
        EXPECT_EQ(b.mode, a.mode);
        EXPECT_EQ(b.size, a.size);
        EXPECT_EQ(std::memcmp(&b.clean, &a.clean, sizeof(a.clean)),
                  0);
        ASSERT_EQ(b.runs.size(), a.runs.size());
        for (std::size_t r = 0; r < a.runs.size(); ++r)
            EXPECT_EQ(std::memcmp(&b.runs[r], &a.runs[r],
                                  sizeof(a.runs[r])),
                      0);
        EXPECT_EQ(b.counters.faults, a.counters.faults);
        EXPECT_EQ(b.counters.bytesH2d, a.counters.bytesH2d);
        EXPECT_EQ(b.counters.bytesD2h, a.counters.bytesD2h);
        EXPECT_TRUE(std::memcmp(&b.counters.occupancy,
                                &a.counters.occupancy,
                                sizeof(double)) == 0);
    }

    // Scratch cleanup.
    for (std::size_t s = 0; s < ResultStore::shardCount; ++s) {
        char name[8];
        std::snprintf(name, sizeof(name), "s%02zx", s);
        std::remove((dir + "/shards/" + name).c_str());
    }
    std::remove((dir + "/meta.json").c_str());
    ::rmdir((dir + "/shards").c_str());
    ::rmdir(dir.c_str());
}

// --- Multi-tenant service equivalence --------------------------------

namespace
{

void
removeServeTree(const std::string &path)
{
    struct stat st;
    if (::lstat(path.c_str(), &st) != 0)
        return;
    if (!S_ISDIR(st.st_mode)) {
        ::unlink(path.c_str());
        return;
    }
    if (DIR *dir = ::opendir(path.c_str())) {
        while (struct dirent *entry = ::readdir(dir)) {
            std::string name = entry->d_name;
            if (name == "." || name == "..")
                continue;
            removeServeTree(path + "/" + name);
        }
        ::closedir(dir);
    }
    ::rmdir(path.c_str());
}

} // namespace

/**
 * Two tenants of the campaign daemon racing to submit the SAME batch
 * must be indistinguishable from two sequential CLI runs sharing a
 * store: both streams byte-identical, and whichever batch ran second
 * was served entirely from the first tenant's cached points — the
 * shared store turns one client's work into the other's cache hits.
 */
TEST(ServiceEquivalence, RacingIdenticalTenantsShareOneSimulation)
{
    const std::string state =
        ::testing::TempDir() + "uvmasync_props_serve_state";
    const std::string storeDir =
        ::testing::TempDir() + "uvmasync_props_serve_store";
    removeServeTree(state);
    removeServeTree(storeDir);

    const std::string payload = "batch.workload = saxpy\n"
                                "batch.size = tiny\n"
                                "batch.runs = 2\n";

    ServeOptions opt;
    opt.stateDir = state;
    opt.storeDir = storeDir;
    opt.jobs = 2;
    ServeDaemon daemon(opt);

    // Both tenants submit concurrently and block for their stream.
    std::string streams[2];
    std::string errors[2];
    BatchHandle handles[2] = {0, 0};
    std::thread tenants[2];
    for (int i = 0; i < 2; ++i) {
        tenants[i] = std::thread([&, i] {
            std::string error;
            BatchHandle handle =
                daemon.submit(1 + i, payload, error);
            if (handle == 0) {
                errors[i] = error;
                return;
            }
            handles[i] = handle;
            BatchState finalState = BatchState::Pending;
            if (!daemon.waitTerminal(handle, finalState) ||
                finalState != BatchState::Done) {
                errors[i] = "batch did not finish clean";
                return;
            }
            StreamChunk chunk;
            if (!daemon.stream(handle, 0, chunk, error))
                errors[i] = error;
            else
                streams[i] = chunk.lines;
        });
    }
    tenants[0].join();
    tenants[1].join();
    ASSERT_TRUE(errors[0].empty()) << errors[0];
    ASSERT_TRUE(errors[1].empty()) << errors[1];

    // Byte-identical results regardless of which tenant's batch ran
    // first.
    ASSERT_FALSE(streams[0].empty());
    EXPECT_EQ(streams[0], streams[1]);

    // The daemon scheduler serializes batches, so whichever batch
    // ran second hit the store for every point the first one stored.
    const std::size_t points = allTransferModes.size();
    ServeStats stats = daemon.stats();
    EXPECT_EQ(stats.storeHits, points);
    EXPECT_EQ(stats.storeStored, points);
    EXPECT_EQ(stats.pointsCached, points);
    EXPECT_EQ(stats.pointsMerged, 2 * points);

    std::string error;
    BatchStatus status[2];
    ASSERT_TRUE(daemon.status(handles[0], status[0], error))
        << error;
    ASSERT_TRUE(daemon.status(handles[1], status[1], error))
        << error;
    // Exactly one of the two was the cached one (submission racing
    // decides which), and it was cached in full.
    EXPECT_EQ(status[0].cached + status[1].cached, points);
    EXPECT_EQ(status[0].ok, points);
    EXPECT_EQ(status[1].ok, points);

    daemon.stop();
    removeServeTree(state);
    removeServeTree(storeDir);
}

} // namespace
} // namespace uvmasync
