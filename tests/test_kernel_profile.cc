/**
 * @file
 * Tests for the per-kernel profiling path (the CUPTI-style view the
 * CLI `profile` command prints).
 */

#include <gtest/gtest.h>

#include "runtime/device.hh"
#include "workloads/registry.hh"

namespace uvmasync
{
namespace
{

struct ProfileFixture : public ::testing::Test
{
    ProfileFixture() { registerAllWorkloads(); }

    RunResult
    runWorkload(const char *name, TransferMode mode)
    {
        Job job = WorkloadRegistry::instance().get(name).makeJob(
            SizeClass::Small);
        Device device(SystemConfig::a100Epyc());
        return device.run(job, mode);
    }
};

TEST_F(ProfileFixture, OneProfilePerDistinctKernel)
{
    RunResult run = runWorkload("srad", TransferMode::Standard);
    // srad launches two kernels, repeated.
    ASSERT_EQ(run.kernelProfiles.size(), 2u);
    EXPECT_EQ(run.kernelProfiles[0].name, "srad_diffuse");
    EXPECT_EQ(run.kernelProfiles[1].name, "srad_update");
}

TEST_F(ProfileFixture, LaunchesAccumulateAcrossRepeats)
{
    Job job = WorkloadRegistry::instance().get("srad").makeJob(
        SizeClass::Small);
    Device device(SystemConfig::a100Epyc());
    RunResult run = device.run(job, TransferMode::Standard);
    for (const KernelProfile &prof : run.kernelProfiles)
        EXPECT_EQ(prof.launches, job.sequenceRepeats);
}

TEST_F(ProfileFixture, ProfileTimesSumToKernelComponent)
{
    RunResult run = runWorkload("nw", TransferMode::UvmPrefetch);
    double total = 0.0;
    for (const KernelProfile &prof : run.kernelProfiles)
        total += static_cast<double>(prof.totalTime);
    EXPECT_NEAR(total, run.breakdown.kernelPs,
                run.breakdown.kernelPs * 1e-9);
}

TEST_F(ProfileFixture, ProfileInstrsSumToJobCounters)
{
    RunResult run = runWorkload("backprop", TransferMode::Standard);
    double total = 0.0;
    for (const KernelProfile &prof : run.kernelProfiles)
        total += prof.instrs.total();
    EXPECT_NEAR(total, run.counters.instrs.total(),
                run.counters.instrs.total() * 1e-12);
}

TEST_F(ProfileFixture, UvmFaultsAttributedToKernels)
{
    RunResult run = runWorkload("saxpy", TransferMode::Uvm);
    std::uint64_t total = 0;
    for (const KernelProfile &prof : run.kernelProfiles)
        total += prof.faults;
    EXPECT_EQ(total, run.counters.faults);
    EXPECT_GT(total, 0u);
}

TEST_F(ProfileFixture, RatesStayNormalised)
{
    RunResult run = runWorkload("lud", TransferMode::Async);
    for (const KernelProfile &prof : run.kernelProfiles) {
        EXPECT_GE(prof.l1LoadMissRate, 0.0);
        EXPECT_LE(prof.l1LoadMissRate, 1.0);
        EXPECT_GE(prof.occupancy, 0.0);
        EXPECT_LE(prof.occupancy, 1.0);
    }
}

} // namespace
} // namespace uvmasync
