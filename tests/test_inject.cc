/**
 * @file
 * Tests for the deterministic fault-injection layer: plan parsing
 * and validation, per-seam triggering with a clean fixture each, the
 * provable-inertness guarantee (no plan / zero-rate plan leaves runs
 * byte-identical), RNG-stream independence between seams, and the
 * registry-wide monotonicity property — an injected run is never
 * faster than its uninjected twin on the same seed.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "core/experiment.hh"
#include "inject/inject_plan.hh"
#include "inject/injector.hh"
#include "trace/chrome_export.hh"
#include "trace/metrics.hh"
#include "workloads/registry.hh"

namespace uvmasync
{
namespace
{

InjectPlan
planFrom(const std::string &text)
{
    std::vector<InjectIssue> issues;
    InjectPlan plan = InjectPlan::parse(
        KvConfig::fromString(text, "test-plan"), issues);
    EXPECT_TRUE(issues.empty())
        << "unexpected issue: " << issues[0].key << ": "
        << issues[0].message;
    return plan;
}

std::vector<InjectIssue>
issuesOf(const std::string &text)
{
    std::vector<InjectIssue> issues;
    InjectPlan::parse(KvConfig::fromString(text, "test-plan"),
                      issues);
    return issues;
}

bool
hasIssueForKey(const std::vector<InjectIssue> &issues,
               const std::string &key)
{
    for (const InjectIssue &issue : issues) {
        if (issue.key == key)
            return true;
    }
    return false;
}

std::string
chromeExport(const ExperimentResult &res)
{
    std::vector<ChromeTraceJob> jobs = {
        {res.workload + "/" + transferModeName(res.mode),
         &res.trace}};
    std::ostringstream out;
    writeChromeTrace(out, jobs);
    return out.str();
}

std::string
metricsCsv(const ExperimentResult &res)
{
    std::ostringstream out;
    writeTraceMetricsCsv(out, computeTraceMetrics(res.trace));
    return out.str();
}

ExperimentResult
runInjected(const std::string &workload, TransferMode mode,
            const InjectPlan &plan, bool trace = false,
            SizeClass size = SizeClass::Small)
{
    Experiment experiment;
    ExperimentOptions opts;
    opts.size = size;
    opts.runs = 1;
    opts.baseSeed = 42;
    opts.trace = trace;
    opts.inject = plan;
    return experiment.run(workload, mode, opts);
}

// --- plan parsing and validation ----------------------------------

TEST(InjectPlan, DefaultPlanIsInert)
{
    InjectPlan plan;
    EXPECT_FALSE(plan.enabled());
    EXPECT_FALSE(planFrom("").enabled());
}

TEST(InjectPlan, ParsesEverySection)
{
    InjectPlan plan = planFrom("[inject]\n"
                               "seed = 9\n"
                               "[inject.pcie]\n"
                               "degrade_factor = 4\n"
                               "window_start_us = 10\n"
                               "window_end_us = 20\n"
                               "stutter_period_us = 2\n"
                               "stutter_duty = 0.25\n"
                               "fail_rate = 0.5\n"
                               "max_retries = 7\n"
                               "backoff_base_us = 3\n"
                               "[inject.fault]\n"
                               "batch_overflow = 4\n"
                               "overflow_penalty_us = 1\n"
                               "delay_rate = 0.5\n"
                               "delay_us = 2\n"
                               "[inject.migrate]\n"
                               "backpressure_rate = 0.5\n"
                               "backpressure_us = 1\n"
                               "storm_rate = 0.25\n"
                               "storm_chunks = 3\n"
                               "[inject.host]\n"
                               "slow_rate = 0.5\n"
                               "slow_factor = 2.5\n"
                               "[inject.kernel]\n"
                               "jitter_rate = 0.5\n"
                               "jitter_us = 4\n");
    EXPECT_TRUE(plan.enabled());
    EXPECT_EQ(plan.seed, 9u);
    EXPECT_DOUBLE_EQ(plan.pcie.degradeFactor, 4.0);
    EXPECT_EQ(plan.pcie.window.startPs, microseconds(10));
    EXPECT_EQ(plan.pcie.window.endPs, microseconds(20));
    EXPECT_EQ(plan.pcie.stutterPeriodPs, microseconds(2));
    EXPECT_DOUBLE_EQ(plan.pcie.stutterDuty, 0.25);
    EXPECT_DOUBLE_EQ(plan.pcie.failRate, 0.5);
    EXPECT_EQ(plan.pcie.maxRetries, 7u);
    EXPECT_EQ(plan.pcie.backoffBasePs, microseconds(3));
    EXPECT_EQ(plan.fault.batchOverflow, 4u);
    EXPECT_EQ(plan.fault.overflowPenaltyPs, microseconds(1));
    EXPECT_DOUBLE_EQ(plan.fault.delayRate, 0.5);
    EXPECT_EQ(plan.fault.delayPs, microseconds(2));
    EXPECT_DOUBLE_EQ(plan.migrate.backpressureRate, 0.5);
    EXPECT_EQ(plan.migrate.backpressurePs, microseconds(1));
    EXPECT_DOUBLE_EQ(plan.migrate.stormRate, 0.25);
    EXPECT_EQ(plan.migrate.stormChunks, 3u);
    EXPECT_DOUBLE_EQ(plan.host.slowRate, 0.5);
    EXPECT_DOUBLE_EQ(plan.host.slowFactor, 2.5);
    EXPECT_DOUBLE_EQ(plan.kernel.jitterRate, 0.5);
    EXPECT_EQ(plan.kernel.jitterPs, microseconds(4));
}

TEST(InjectPlan, ParseCollectsEverySemanticIssue)
{
    // One malformed value per category, all reported in one pass —
    // never silently clamped.
    std::vector<InjectIssue> issues =
        issuesOf("inject.pcie.fail_rate = 1.5\n"
                 "inject.pcie.degrade_factor = 0.5\n"
                 "inject.pcie.backoff_base_us = -1\n"
                 "inject.fault.batch_overflow = -2\n"
                 "inject.pcie.window_start_us = 20\n"
                 "inject.pcie.window_end_us = 10\n");
    EXPECT_TRUE(hasIssueForKey(issues, "inject.pcie.fail_rate"));
    EXPECT_TRUE(hasIssueForKey(issues, "inject.pcie.degrade_factor"));
    EXPECT_TRUE(hasIssueForKey(issues, "inject.pcie.backoff_base_us"));
    EXPECT_TRUE(hasIssueForKey(issues, "inject.fault.batch_overflow"));
    EXPECT_TRUE(hasIssueForKey(issues, "inject.pcie.window_end_us"));
    EXPECT_EQ(issues.size(), 5u);
}

TEST(InjectPlan, ParseFlagsUnknownKeys)
{
    std::vector<InjectIssue> issues =
        issuesOf("inject.pcie.degrade_facter = 4\n");
    ASSERT_EQ(issues.size(), 1u);
    EXPECT_EQ(issues[0].key, "inject.pcie.degrade_facter");
}

TEST(InjectPlan, KnownKeysAreSorted)
{
    const std::vector<std::string> &keys = knownInjectKeys();
    ASSERT_FALSE(keys.empty());
    for (std::size_t i = 1; i < keys.size(); ++i)
        EXPECT_LT(keys[i - 1], keys[i]);
}

TEST(InjectWindowTest, OpenAndClosedWindows)
{
    InjectWindow open{microseconds(5), 0};
    EXPECT_FALSE(open.covers(microseconds(4)));
    EXPECT_TRUE(open.covers(microseconds(5)));
    EXPECT_TRUE(open.covers(maxTick - 1));

    InjectWindow closed{microseconds(5), microseconds(10)};
    EXPECT_TRUE(closed.covers(microseconds(5)));
    EXPECT_FALSE(closed.covers(microseconds(10)));
}

// --- injector unit behaviour, one seam per fixture ----------------

TEST(Injector, DegradeFactorHonoursWindowAndStutter)
{
    InjectPlan plan;
    plan.pcie.degradeFactor = 4.0;
    plan.pcie.window = {microseconds(1), microseconds(2)};
    Injector inj(plan, 1);
    ASSERT_TRUE(inj.enabled());
    EXPECT_DOUBLE_EQ(inj.degradeFactor(0), 1.0);
    EXPECT_DOUBLE_EQ(inj.degradeFactor(microseconds(1)), 4.0);
    EXPECT_DOUBLE_EQ(inj.degradeFactor(microseconds(2)), 1.0);

    // Stutter: degraded for the duty share of each period.
    plan.pcie.stutterPeriodPs = microseconds(1);
    plan.pcie.stutterDuty = 0.5;
    plan.pcie.window = {0, 0};
    Injector stutter(plan, 1);
    EXPECT_DOUBLE_EQ(stutter.degradeFactor(0), 4.0);
    EXPECT_DOUBLE_EQ(
        stutter.degradeFactor(microseconds(1) / 2 + 1), 1.0);
    EXPECT_DOUBLE_EQ(stutter.degradeFactor(microseconds(1)), 4.0);
}

TEST(Injector, TransientFailuresRetryWithExponentialBackoff)
{
    InjectPlan plan;
    plan.pcie.failRate = 1.0; // every roll fails
    plan.pcie.maxRetries = 3;
    plan.pcie.backoffBasePs = 1000;
    Injector inj(plan, 1);
    try {
        inj.applyTransferFaults(0, kib(4), "h2d");
        FAIL() << "expected TransferAborted";
    } catch (const TransferAborted &e) {
        EXPECT_EQ(e.attempts(), 3u);
        // Retries 0..2 waited base << attempt before the abort.
        EXPECT_EQ(e.when(), Tick(1000 + 2000 + 4000));
        EXPECT_NE(std::string(e.what()).find("after 3 retries"),
                  std::string::npos);
    }
    EXPECT_EQ(inj.counters().retries, 3u);
    EXPECT_EQ(inj.counters().aborts, 1u);
    EXPECT_EQ(inj.counters().backoffPs, Tick(7000));
}

TEST(Injector, ZeroFailRateNeverPerturbsIssueTime)
{
    InjectPlan plan;
    plan.pcie.degradeFactor = 2.0; // enables the injector
    Injector inj(plan, 1);
    EXPECT_EQ(inj.applyTransferFaults(1234, kib(4), "h2d"),
              Tick(1234));
    EXPECT_EQ(inj.counters().transientFailures, 0u);
}

TEST(Injector, BatchOverflowClampsOnlyBelowConfigured)
{
    InjectPlan plan;
    plan.fault.batchOverflow = 4;
    plan.fault.overflowPenaltyPs = 500;
    Injector inj(plan, 1);
    EXPECT_EQ(inj.clampBatchSize(256), 4u);
    EXPECT_EQ(inj.clampBatchSize(2), 2u);
    EXPECT_EQ(inj.overflowPenalty(0), Tick(500));
    EXPECT_EQ(inj.counters().overflowBatches, 1u);

    InjectPlan off;
    off.kernel.jitterRate = 1.0;
    off.kernel.jitterPs = 1;
    Injector noClamp(off, 1);
    EXPECT_EQ(noClamp.clampBatchSize(256), 256u);
}

TEST(Injector, CertainBatchDelayAlwaysFires)
{
    InjectPlan plan;
    plan.fault.delayRate = 1.0;
    plan.fault.delayPs = 700;
    Injector inj(plan, 1);
    EXPECT_EQ(inj.batchOpenDelay(0), Tick(700));
    EXPECT_EQ(inj.batchOpenDelay(10), Tick(700));
    EXPECT_EQ(inj.counters().delayedBatches, 2u);
    EXPECT_EQ(inj.counters().faultDelayPs, Tick(1400));
}

TEST(Injector, CertainBackpressureAlwaysFires)
{
    InjectPlan plan;
    plan.migrate.backpressureRate = 1.0;
    plan.migrate.backpressurePs = 900;
    Injector inj(plan, 1);
    EXPECT_EQ(inj.migrationBackpressure(0), Tick(900));
    EXPECT_EQ(inj.counters().backpressureEvents, 1u);
    EXPECT_EQ(inj.counters().backpressurePs, Tick(900));
}

TEST(Injector, StormDrawRespectsRateAndChunks)
{
    InjectPlan plan;
    plan.migrate.stormRate = 1.0;
    plan.migrate.stormChunks = 5;
    Injector inj(plan, 1);
    EXPECT_TRUE(inj.stormsEnabled());
    EXPECT_EQ(inj.drawEvictionStorm(), 5u);

    InjectPlan off;
    off.kernel.jitterRate = 1.0;
    off.kernel.jitterPs = 1;
    Injector noStorm(off, 1);
    EXPECT_FALSE(noStorm.stormsEnabled());
    EXPECT_EQ(noStorm.drawEvictionStorm(), 0u);
}

TEST(Injector, HostSlowFactorIsReciprocalInsideWindow)
{
    InjectPlan plan;
    plan.host.slowRate = 1.0;
    plan.host.slowFactor = 4.0;
    plan.host.window = {0, microseconds(1)};
    Injector inj(plan, 1);
    EXPECT_DOUBLE_EQ(inj.hostSlowFactor(0), 0.25);
    EXPECT_DOUBLE_EQ(inj.hostSlowFactor(microseconds(2)), 1.0);
    EXPECT_EQ(inj.counters().slowPageTransfers, 1u);
}

TEST(Injector, LaunchJitterBoundedByPlan)
{
    InjectPlan plan;
    plan.kernel.jitterRate = 1.0;
    plan.kernel.jitterPs = 5000;
    Injector inj(plan, 1);
    for (int i = 0; i < 32; ++i) {
        Tick jitter = inj.launchJitter(0);
        EXPECT_GE(jitter, Tick(1));
        EXPECT_LE(jitter, Tick(5000));
    }
    EXPECT_EQ(inj.counters().jitteredLaunches, 32u);
}

TEST(Injector, SeamStreamsAreIndependent)
{
    // Consuming draws on the PCIe stream must not shift the kernel
    // stream: same salt, different draw interleavings, identical
    // jitter sequences.
    InjectPlan plan;
    plan.pcie.failRate = 0.25;
    plan.pcie.maxRetries = 1000;
    plan.kernel.jitterRate = 1.0;
    plan.kernel.jitterPs = 1000000;

    Injector a(plan, 77);
    Injector b(plan, 77);
    for (int i = 0; i < 64; ++i)
        a.applyTransferFaults(0, kib(4), "h2d"); // burn pcie draws
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(a.launchJitter(0), b.launchJitter(0)) << i;
}

TEST(Injector, SaltIsAPureFunctionOfBothSeeds)
{
    EXPECT_EQ(injectSalt(1, 2), injectSalt(1, 2));
    EXPECT_NE(injectSalt(1, 2), injectSalt(2, 1));
    EXPECT_NE(injectSalt(1, 2), injectSalt(1, 3));
}

// --- end-to-end seam triggering through Experiment ----------------

TEST(InjectEndToEnd, PcieDegradeSlowsUvmAndShowsInTrace)
{
    InjectPlan plan = planFrom("inject.pcie.degrade_factor = 4\n");
    ExperimentResult base = runInjected(
        "vector_seq", TransferMode::Uvm, InjectPlan{}, true);
    ExperimentResult hurt =
        runInjected("vector_seq", TransferMode::Uvm, plan, true);

    EXPECT_GT(hurt.clean.overallPs(), base.clean.overallPs());
    EXPECT_GT(hurt.injectCounters.degradedTransfers, 0u);
    EXPECT_GT(hurt.injectCounters.degradedBusyPs, 0u);

    // The perturbation is visible in the Chrome export...
    std::string json = chromeExport(hurt);
    EXPECT_NE(json.find("\"cat\": \"inject\""), std::string::npos);
    EXPECT_NE(json.find("inject_degraded"), std::string::npos);

    // ...and shifts the transfer-stall picture in the metrics.
    TraceMetrics baseM = computeTraceMetrics(base.trace);
    TraceMetrics hurtM = computeTraceMetrics(hurt.trace);
    EXPECT_GT(hurtM.injectEvents, 0u);
    EXPECT_GT(hurtM.injectDegradedShare, 0.0);
    EXPECT_GT(hurtM.pcieBusyPs, baseM.pcieBusyPs);
    EXPECT_NE(metricsCsv(hurt).find("inject_degraded_share"),
              std::string::npos);
}

TEST(InjectEndToEnd, TransientFailuresRetryAndSlowTheRun)
{
    // UVM mode so the link sees one transfer per migrated chunk —
    // enough rolls that a 50% transient rate is certain to fire.
    InjectPlan plan = planFrom("inject.pcie.fail_rate = 0.5\n"
                               "inject.pcie.max_retries = 1000000\n"
                               "inject.pcie.backoff_base_us = 5\n");
    ExperimentResult base = runInjected(
        "vector_seq", TransferMode::Uvm, InjectPlan{});
    ExperimentResult hurt =
        runInjected("vector_seq", TransferMode::Uvm, plan);
    EXPECT_GT(hurt.injectCounters.transientFailures, 0u);
    EXPECT_EQ(hurt.injectCounters.retries,
              hurt.injectCounters.transientFailures);
    EXPECT_GT(hurt.injectCounters.backoffPs, 0u);
    EXPECT_EQ(hurt.injectCounters.aborts, 0u);
    EXPECT_GT(hurt.clean.overallPs(), base.clean.overallPs());
}

TEST(InjectEndToEnd, ExhaustedRetriesAbortTheJobAsAnException)
{
    InjectPlan plan = planFrom("inject.pcie.fail_rate = 1\n"
                               "inject.pcie.max_retries = 2\n"
                               "inject.pcie.backoff_base_us = 1\n");
    Experiment experiment;
    ExperimentOptions opts;
    opts.size = SizeClass::Small;
    opts.runs = 1;
    opts.inject = plan;
    EXPECT_THROW(
        experiment.run("vector_seq", TransferMode::Standard, opts),
        TransferAborted);
}

TEST(InjectEndToEnd, FaultBatchOverflowFragmentsUvmBatches)
{
    // saxpy touches two managed buffers per wave, so its faults
    // naturally batch 2-3 deep; a capacity of 1 must overflow.
    InjectPlan plan = planFrom("inject.fault.batch_overflow = 1\n"
                               "inject.fault.overflow_penalty_us = "
                               "2\n");
    ExperimentResult base =
        runInjected("saxpy", TransferMode::Uvm, InjectPlan{});
    ExperimentResult hurt =
        runInjected("saxpy", TransferMode::Uvm, plan);
    EXPECT_GT(hurt.injectCounters.overflowBatches, 0u);
    EXPECT_GT(hurt.clean.overallPs(), base.clean.overallPs());
}

TEST(InjectEndToEnd, DelayedBatchServicing)
{
    InjectPlan plan = planFrom("inject.fault.delay_rate = 1\n"
                               "inject.fault.delay_us = 3\n");
    ExperimentResult hurt =
        runInjected("vector_seq", TransferMode::Uvm, plan);
    EXPECT_GT(hurt.injectCounters.delayedBatches, 0u);
    EXPECT_GT(hurt.injectCounters.faultDelayPs, 0u);
}

TEST(InjectEndToEnd, MigrationBackpressureStallsUvm)
{
    InjectPlan plan =
        planFrom("inject.migrate.backpressure_rate = 1\n"
                 "inject.migrate.backpressure_us = 2\n");
    ExperimentResult base =
        runInjected("vector_seq", TransferMode::Uvm, InjectPlan{});
    ExperimentResult hurt =
        runInjected("vector_seq", TransferMode::Uvm, plan);
    EXPECT_GT(hurt.injectCounters.backpressureEvents, 0u);
    EXPECT_GT(hurt.clean.overallPs(), base.clean.overallPs());
}

TEST(InjectEndToEnd, EvictionStormsThrashResidentChunks)
{
    InjectPlan plan = planFrom("inject.migrate.storm_rate = 1\n"
                               "inject.migrate.storm_chunks = 2\n");
    ExperimentResult hurt =
        runInjected("vector_seq", TransferMode::Uvm, plan);
    EXPECT_GT(hurt.injectCounters.stormEvictions, 0u);
}

TEST(InjectEndToEnd, HostSlowPagesStretchExplicitCopies)
{
    InjectPlan plan = planFrom("inject.host.slow_rate = 1\n"
                               "inject.host.slow_factor = 4\n");
    ExperimentResult base = runInjected(
        "vector_seq", TransferMode::Standard, InjectPlan{});
    ExperimentResult hurt =
        runInjected("vector_seq", TransferMode::Standard, plan);
    EXPECT_GT(hurt.injectCounters.slowPageTransfers, 0u);
    EXPECT_GT(hurt.clean.overallPs(), base.clean.overallPs());
}

TEST(InjectEndToEnd, KernelLaunchJitterDelaysEveryLaunch)
{
    InjectPlan plan = planFrom("inject.kernel.jitter_rate = 1\n"
                               "inject.kernel.jitter_us = 10\n");
    ExperimentResult base = runInjected(
        "vector_seq", TransferMode::Standard, InjectPlan{});
    ExperimentResult hurt =
        runInjected("vector_seq", TransferMode::Standard, plan);
    EXPECT_GT(hurt.injectCounters.jitteredLaunches, 0u);
    EXPECT_GT(hurt.injectCounters.jitterPs, 0u);
    EXPECT_GT(hurt.clean.overallPs(), base.clean.overallPs());
}

// --- provable inertness -------------------------------------------

TEST(InjectInertness, InertPlanIsByteIdenticalToNoInjection)
{
    // A plan whose every rate is zero must leave the traced run —
    // breakdown, Chrome export and metrics CSV — byte-identical to a
    // run with no injection support engaged at all.
    InjectPlan inert = planFrom("inject.pcie.degrade_factor = 1\n"
                                "inject.pcie.fail_rate = 0\n"
                                "inject.kernel.jitter_rate = 0\n");
    ASSERT_FALSE(inert.enabled());

    for (TransferMode mode : allTransferModes) {
        ExperimentResult base = runInjected("saxpy", mode,
                                            InjectPlan{}, true,
                                            SizeClass::Tiny);
        ExperimentResult twin = runInjected("saxpy", mode, inert,
                                            true, SizeClass::Tiny);
        EXPECT_EQ(twin.clean.overallPs(), base.clean.overallPs())
            << transferModeName(mode);
        EXPECT_EQ(chromeExport(twin), chromeExport(base))
            << transferModeName(mode);
        EXPECT_EQ(metricsCsv(twin), metricsCsv(base))
            << transferModeName(mode);
        EXPECT_EQ(twin.injectCounters.totalEvents(), 0u);
    }
}

TEST(InjectInertness, InjectLanesOnlyExistWhenInjecting)
{
    ExperimentResult base = runInjected(
        "saxpy", TransferMode::Uvm, InjectPlan{}, true);
    EXPECT_EQ(chromeExport(base).find("inject"), std::string::npos);

    InjectPlan plan = planFrom("inject.pcie.degrade_factor = 4\n");
    ExperimentResult hurt =
        runInjected("saxpy", TransferMode::Uvm, plan, true);
    EXPECT_NE(chromeExport(hurt).find("\"inject\""),
              std::string::npos);
}

TEST(InjectInertness, UninjectedMetricsCsvHasNoInjectRows)
{
    ExperimentResult base = runInjected(
        "saxpy", TransferMode::Uvm, InjectPlan{}, true);
    EXPECT_EQ(metricsCsv(base).find("inject_"), std::string::npos);
}

// --- monotonicity property ----------------------------------------

TEST(InjectMonotonicity, InjectedRunsNeverBeatTheirUninjectedTwin)
{
    // Registry-wide property over every workload and every transfer
    // mode: a purely-additive adversity plan (degraded link, slow
    // host pages, backpressure, launch jitter) can only ever push the
    // deterministic completion time out, never pull it in.
    InjectPlan plan =
        planFrom("inject.pcie.degrade_factor = 2\n"
                 "inject.host.slow_rate = 0.5\n"
                 "inject.host.slow_factor = 2\n"
                 "inject.migrate.backpressure_rate = 0.5\n"
                 "inject.migrate.backpressure_us = 1\n"
                 "inject.kernel.jitter_rate = 0.5\n"
                 "inject.kernel.jitter_us = 2\n");
    registerAllWorkloads();
    for (const std::string &name :
         WorkloadRegistry::instance().names()) {
        for (TransferMode mode : allTransferModes) {
            ExperimentResult base = runInjected(
                name, mode, InjectPlan{}, false, SizeClass::Tiny);
            ExperimentResult hurt = runInjected(
                name, mode, plan, false, SizeClass::Tiny);
            EXPECT_GE(hurt.clean.overallPs(),
                      base.clean.overallPs())
                << name << "/" << transferModeName(mode);
        }
    }
}

} // namespace
} // namespace uvmasync
