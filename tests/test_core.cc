/**
 * @file
 * Tests for the experiment harness, reporting helpers, sweeps and the
 * Section 6 batch-pipeline scheduler.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "core/batch_pipeline.hh"
#include "core/experiment.hh"
#include "core/report.hh"
#include "core/sweep.hh"

namespace uvmasync
{
namespace
{

ExperimentOptions
smallOpts()
{
    ExperimentOptions opts;
    opts.size = SizeClass::Small;
    opts.runs = 10;
    return opts;
}

TEST(Experiment, ProducesRequestedRuns)
{
    Experiment e;
    ExperimentResult res =
        e.run("vector_seq", TransferMode::Standard, smallOpts());
    EXPECT_EQ(res.runs.size(), 10u);
    EXPECT_GT(res.clean.overallPs(), 0.0);
    EXPECT_EQ(res.workload, "vector_seq");
}

TEST(Experiment, CleanResultIsDeterministic)
{
    Experiment e;
    ExperimentResult a =
        e.run("saxpy", TransferMode::Uvm, smallOpts());
    ExperimentResult b =
        e.run("saxpy", TransferMode::Uvm, smallOpts());
    EXPECT_DOUBLE_EQ(a.clean.overallPs(), b.clean.overallPs());
    EXPECT_EQ(a.counters.faults, b.counters.faults);
    for (std::size_t i = 0; i < a.runs.size(); ++i)
        EXPECT_DOUBLE_EQ(a.runs[i].overallPs(),
                         b.runs[i].overallPs());
}

TEST(Experiment, NoiseSeedSharedAcrossModes)
{
    // Same-run machine conditions across modes: the alloc component's
    // multiplicative noise factor matches run-for-run.
    Experiment e;
    ExperimentResult std_res =
        e.run("saxpy", TransferMode::Standard, smallOpts());
    ExperimentResult async_res =
        e.run("saxpy", TransferMode::Async, smallOpts());
    for (std::size_t i = 0; i < std_res.runs.size(); ++i) {
        double fa = std_res.runs[i].kernelPs /
                    std_res.clean.kernelPs;
        double fb = async_res.runs[i].kernelPs /
                    async_res.clean.kernelPs;
        EXPECT_NEAR(fa, fb, 1e-9);
    }
}

TEST(Experiment, RunAllModesCoversFive)
{
    Experiment e;
    ModeSet set = e.runAllModes("vector_seq", smallOpts());
    ASSERT_EQ(set.size(), 5u);
    for (std::size_t i = 0; i < set.size(); ++i)
        EXPECT_EQ(set[i].mode, allTransferModes[i]);
}

TEST(Experiment, MeanBreakdownAveragesRuns)
{
    Experiment e;
    ExperimentResult res =
        e.run("vector_seq", TransferMode::Standard, smallOpts());
    SampleSet overall = res.overallSamples();
    EXPECT_NEAR(res.meanBreakdown().overallPs(), overall.mean(),
                overall.mean() * 1e-9);
}

// --- Report helpers -----------------------------------------------------

ModeSet
syntheticModes(double base, double uvmFactor)
{
    ModeSet set;
    for (TransferMode m : allTransferModes) {
        ExperimentResult r;
        r.workload = "synthetic";
        r.mode = m;
        double scale = usesUvm(m) ? uvmFactor : 1.0;
        r.clean = TimeBreakdown{base * scale, base * scale,
                                base * scale};
        set.push_back(r);
    }
    return set;
}

TEST(Report, FindModeLocatesEntries)
{
    ModeSet set = syntheticModes(1e9, 0.5);
    EXPECT_EQ(findMode(set, TransferMode::Uvm).mode,
              TransferMode::Uvm);
}

TEST(Report, GeomeanImprovementMatchesConstruction)
{
    std::vector<ModeSet> all = {syntheticModes(1e9, 0.5),
                                syntheticModes(2e9, 0.5)};
    // uvm runs at half the time -> 2x speedup -> +100% improvement.
    EXPECT_NEAR(geomeanImprovement(all, TransferMode::Uvm), 1.0,
                1e-9);
    EXPECT_NEAR(geomeanImprovement(all, TransferMode::Async), 0.0,
                1e-9);
}

TEST(Report, ComponentSaving)
{
    std::vector<ModeSet> all = {syntheticModes(1e9, 0.25)};
    EXPECT_NEAR(geomeanComponentSaving(all, TransferMode::Uvm, 1),
                0.75, 1e-9);
}

TEST(Report, BreakdownTableShape)
{
    std::vector<ModeSet> all = {syntheticModes(1e9, 0.5)};
    TextTable table = breakdownTable(all);
    EXPECT_EQ(table.columnCount(), 6u);
    EXPECT_NE(table.toString().find("uvm_prefetch_async"),
              std::string::npos);
}

TEST(Report, ComparisonTableRendersDeltas)
{
    TextTable t = comparisonTable(
        {{"metric", 0.21, 0.25}, {"other", -0.04, -0.02}});
    std::string out = t.toString();
    EXPECT_NE(out.find("+21.00%"), std::string::npos);
    EXPECT_NE(out.find("+4.00%"), std::string::npos);
}

// --- Sweeps -----------------------------------------------------------

TEST(Sweep, BlockSweepAppliesGeometry)
{
    Experiment e;
    Sweep sweep(e);
    auto points = sweep.blockSweep("vector_seq", {512, 64},
                                   smallOpts());
    ASSERT_EQ(points.size(), 2u);
    EXPECT_EQ(points[0].value, 512u);
    ASSERT_EQ(points[0].modes.size(), 5u);
}

TEST(Sweep, ThreadSweepChangesKernelTime)
{
    Experiment e;
    Sweep sweep(e);
    auto points = sweep.threadSweep("vector_seq", {1024, 32}, 64,
                                    smallOpts());
    double wide = findMode(points[0].modes, TransferMode::Standard)
                      .clean.kernelPs;
    double narrow = findMode(points[1].modes, TransferMode::Standard)
                        .clean.kernelPs;
    EXPECT_GT(narrow, wide * 2.0);
}

TEST(Sweep, SharedMemSweepChangesResults)
{
    Experiment e;
    Sweep sweep(e);
    auto points = sweep.sharedMemSweep("vector_seq",
                                       {kib(4), kib(128)},
                                       smallOpts());
    ASSERT_EQ(points.size(), 2u);
    double tiny = findMode(points[0].modes, TransferMode::Async)
                      .clean.kernelPs;
    double huge = findMode(points[1].modes, TransferMode::Async)
                      .clean.kernelPs;
    EXPECT_NE(tiny, huge);
}

// --- Batch pipeline (Section 6) ----------------------------------------

TEST(BatchPipeline, EmptyBatch)
{
    BatchScheduleResult res = scheduleBatch({});
    EXPECT_DOUBLE_EQ(res.serialPs, 0.0);
    EXPECT_DOUBLE_EQ(res.pipelinedPs, 0.0);
}

TEST(BatchPipeline, ImprovementSentinelOnEmptyBatch)
{
    // The documented sentinel: no jobs -> improvement() is exactly
    // 0.0, not NaN or a division blow-up.
    BatchScheduleResult empty = scheduleBatch({});
    EXPECT_DOUBLE_EQ(empty.improvement(), 0.0);

    // Same sentinel for a default-constructed (serialPs == 0) result
    // and for all-zero jobs.
    BatchScheduleResult fresh;
    EXPECT_DOUBLE_EQ(fresh.improvement(), 0.0);
    BatchScheduleResult zeros =
        scheduleBatch(std::vector<TimeBreakdown>(3));
    EXPECT_DOUBLE_EQ(zeros.improvement(), 0.0);
}

TEST(SweepDeath, EmptyValueListsAssert)
{
    // Empty sweep grids are a usage error, not a silent empty result.
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    Experiment e;
    Sweep sweep(e);
    EXPECT_DEATH(sweep.blockSweep("vector_seq", {}, smallOpts()),
                 "at least one block count");
    EXPECT_DEATH(sweep.threadSweep("vector_seq", {}, 64, smallOpts()),
                 "at least one thread count");
    EXPECT_DEATH(sweep.sharedMemSweep("vector_seq", {}, smallOpts()),
                 "at least one carveout");
}

TEST(BatchPipeline, SerialIsSumOfJobs)
{
    std::vector<TimeBreakdown> jobs(4, TimeBreakdown{1e9, 2e9, 3e9});
    BatchScheduleResult res = scheduleBatch(jobs);
    EXPECT_DOUBLE_EQ(res.serialPs, 4.0 * 6e9);
}

TEST(BatchPipeline, PipelinedNeverSlower)
{
    std::vector<TimeBreakdown> jobs(6, TimeBreakdown{2e9, 1e9, 3e9});
    BatchScheduleResult res = scheduleBatch(jobs);
    EXPECT_LE(res.pipelinedPs, res.serialPs);
    EXPECT_GT(res.improvement(), 0.0);
}

TEST(BatchPipeline, AllocationHidesBehindKernels)
{
    // Allocation comparable to the GPU phase: overlap should hide
    // most of it (the paper's "more than 30%" claim).
    std::vector<TimeBreakdown> jobs(8, TimeBreakdown{4e9, 2e9, 4e9});
    BatchScheduleResult res = scheduleBatch(jobs);
    EXPECT_GT(res.improvement(), 0.25);
}

TEST(BatchPipeline, SingleJobGainsLittle)
{
    std::vector<TimeBreakdown> jobs(1, TimeBreakdown{4e9, 2e9, 4e9});
    BatchScheduleResult res = scheduleBatch(jobs);
    EXPECT_LT(res.improvement(), 0.05);
}

} // namespace
} // namespace uvmasync
