// Self-test fixture for tools/determinism_lint.sh. Every banned token
// appears ONLY inside comments or string literals, plus identifiers
// that merely contain a banned word — a token-aware lint must report
// nothing here. Never compiled.
//
// Prose that used to false-positive: never call rand() or srand()
// here; std::random_device is banned; system_clock and
// high_resolution_clock and steady_clock are wall-clock soup.
/* Block-comment variants: rand( srand( std::random_device
   system_clock high_resolution_clock steady_clock
   std::time(nullptr) clock_gettime gettimeofday
   for (auto &kv : unordered_map) */

static const char *kDoc =
    "rand() srand(7) std::random_device system_clock "
    "high_resolution_clock steady_clock std::chrono "
    "clock_gettime(CLOCK_MONOTONIC) Rng() Rng(42) "
    "for (auto &kv : unordered_map<int, int>)";

static const char kQuote = '"'; // lone double-quote char literal
static const char kEsc = '\''; // escaped single quote

// Identifiers containing banned words must not match: "operand(",
// "strand(" and "mytime(" carry rand(/time( as substrings only.
int operand(int strandCount) { return strandCount; }
int strand(int x) { return operand(x); }
int mytime(int x) { return x; } // [^a-zA-Z_]time\( must not fire

// Raw-I/O prose that must not trip the IoEnv-seam rule: fopen( and
// fwrite( and fsync( and mkdir( and ::open( and std::ofstream and
// std::remove(tmp.c_str()) live here only as documentation.
/* std::rename( opendir( readdir( fstream ftruncate( ::unlink( */
static const char *kIoDoc =
    "fopen(path) fclose(fp) fsync(fd) ::open(path) mkdir(dir) "
    "std::remove(tmp.c_str()) std::rename(a, b) ofstream";

// The seam's own method names carry banned words as substrings.
int openTrunc(int x) { return x; }
int removeFile(int x) { return x; }
int renameFile(int x) { return x; }
int truncateFile(int x) { return x; }
int callSeam()
{
    return openTrunc(1) + removeFile(2) + renameFile(3) + truncateFile(4);
}

// A class may scope its own open()/remove() — ResultStore::open and
// AdmissionQueue::remove are real call sites the rule must skip.
struct StoreLike {
    static int open(int x) { return x; }
    static int remove(int x) { return x; }
};
int StoreLike_calls() { return StoreLike::open(7) + StoreLike::remove(8); }

// The <algorithm> std::remove takes an iterator pair, never a path;
// the file-removal rule keys on .c_str()/string-literal arguments.
long *eraseRemoveIdiom(long *first, long *last)
{
    last = std::remove(first, last, 0L);
    return last - first ? last : first;
}

const char *
docString()
{
    return kDoc; // the string above stays data, not code
}

char
quoteChar()
{
    return kQuote ? kQuote : kEsc;
}
