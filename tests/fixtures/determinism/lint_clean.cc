// Self-test fixture for tools/determinism_lint.sh. Every banned token
// appears ONLY inside comments or string literals, plus identifiers
// that merely contain a banned word — a token-aware lint must report
// nothing here. Never compiled.
//
// Prose that used to false-positive: never call rand() or srand()
// here; std::random_device is banned; system_clock and
// high_resolution_clock and steady_clock are wall-clock soup.
/* Block-comment variants: rand( srand( std::random_device
   system_clock high_resolution_clock steady_clock
   std::time(nullptr) clock_gettime gettimeofday
   for (auto &kv : unordered_map) */

static const char *kDoc =
    "rand() srand(7) std::random_device system_clock "
    "high_resolution_clock steady_clock std::chrono "
    "clock_gettime(CLOCK_MONOTONIC) Rng() Rng(42) "
    "for (auto &kv : unordered_map<int, int>)";

static const char kQuote = '"'; // lone double-quote char literal
static const char kEsc = '\''; // escaped single quote

// Identifiers containing banned words must not match: "operand(",
// "strand(" and "mytime(" carry rand(/time( as substrings only.
int operand(int strandCount) { return strandCount; }
int strand(int x) { return operand(x); }
int mytime(int x) { return x; } // [^a-zA-Z_]time\( must not fire

const char *
docString()
{
    return kDoc; // the string above stays data, not code
}

char
quoteChar()
{
    return kQuote ? kQuote : kEsc;
}
