// Self-test fixture for tools/determinism_lint.sh. Every rule in the
// lint must flag this file: each banned construction below sits in
// real (non-comment, non-string) code. Never compiled.
#include <chrono>
#include <cstdio>
#include <ctime>
#include <fstream>
#include <random>
#include <string>
#include <unordered_map>

int badUnseeded()
{
    std::random_device rd;
    srand(42);
    return rand() + static_cast<int>(rd());
}

long badWallClock()
{
    auto sys = std::chrono::system_clock::now();
    auto hi = std::chrono::high_resolution_clock::now();
    auto mono = std::chrono::steady_clock::now();
    return (sys.time_since_epoch() + hi.time_since_epoch() +
            mono.time_since_epoch())
        .count();
}

long badJournalClock()
{
    return static_cast<long>(std::time(nullptr));
}

struct Rng {
    explicit Rng(unsigned long s = 0) { (void)s; }
};

Rng badInjectRng()
{
    Rng a;
    Rng b(12345);
    (void)b;
    return Rng();
}

struct CsvWriter {
    void writeRow(int) {}
};

int badRawIo(const std::string &path)
{
    ::mkdir("state", 0755);
    std::ofstream side("state/x");
    FILE *fp = fopen("state/y", "w");
    fwrite("z", 1, 1, fp);
    fsync(3);
    std::remove(path.c_str());
    std::remove("state/y");
    std::rename("state/x", "state/z");
    return fclose(fp);
}

void badUnorderedIteration(CsvWriter &csv)
{
    for (const auto &kv : std::unordered_map<int, int>{{1, 2}})
        csv.writeRow(kv.second);
}
