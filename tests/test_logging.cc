/**
 * @file
 * Tests for the logging/formatting utilities and the simulator
 * assertion macro.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"

namespace uvmasync
{
namespace
{

TEST(Logging, StrfmtFormats)
{
    EXPECT_EQ(strfmt("plain"), "plain");
    EXPECT_EQ(strfmt("%d + %d = %d", 1, 2, 3), "1 + 2 = 3");
    EXPECT_EQ(strfmt("%s/%s", "a", "b"), "a/b");
    EXPECT_EQ(strfmt("%.2f", 3.14159), "3.14");
}

TEST(Logging, StrfmtHandlesLongStrings)
{
    std::string big(5000, 'x');
    std::string out = strfmt("<%s>", big.c_str());
    EXPECT_EQ(out.size(), big.size() + 2);
    EXPECT_EQ(out.front(), '<');
    EXPECT_EQ(out.back(), '>');
}

TEST(Logging, LevelRoundTrip)
{
    LogLevel before = logLevel();
    setLogLevel(LogLevel::Silent);
    EXPECT_EQ(logLevel(), LogLevel::Silent);
    setLogLevel(LogLevel::Debug);
    EXPECT_EQ(logLevel(), LogLevel::Debug);
    setLogLevel(before);
}

TEST(Logging, WarnSuppressedWhenSilent)
{
    // Must not crash or emit when silenced; observable behaviour is
    // simply "returns".
    LogLevel before = logLevel();
    setLogLevel(LogLevel::Silent);
    warn("this warning is suppressed %d", 1);
    inform("this info is suppressed");
    debugLog("this debug line is suppressed");
    setLogLevel(before);
}

TEST(LoggingDeathTest, PanicAborts)
{
    EXPECT_DEATH(panic("boom %d", 42), "boom 42");
}

TEST(LoggingDeathTest, FatalExits)
{
    EXPECT_EXIT(fatal("bad config %s", "x"),
                ::testing::ExitedWithCode(1), "bad config x");
}

TEST(LoggingDeathTest, AssertMacroFiresWithMessage)
{
    int value = 7;
    EXPECT_DEATH(
        UVMASYNC_ASSERT(value == 8, "value was %d", value),
        "value == 8.*value was 7");
}

TEST(Logging, AssertMacroPassesSilently)
{
    UVMASYNC_ASSERT(1 + 1 == 2, "never printed");
    SUCCEED();
}

} // namespace
} // namespace uvmasync
