/**
 * @file
 * Tests for the UVM migration engine: demand paging, bulk prefetch,
 * device population, writeback, churn and oversubscription.
 */

#include <gtest/gtest.h>

#include "mem/device_memory.hh"
#include "mem/page_table.hh"
#include "xfer/migration_engine.hh"
#include "xfer/pcie_link.hh"

namespace uvmasync
{
namespace
{

struct EngineFixture : public ::testing::Test
{
    EngineFixture()
        : table("pt"),
          devMem("hbm", gib(1), Bandwidth::fromGBps(1400.0)),
          link("pcie", PcieConfig{}),
          engine("uvm", makeCfg(), table, devMem, link)
    {
    }

    static UvmConfig
    makeCfg()
    {
        UvmConfig cfg;
        cfg.chunkBytes = kib(64);
        return cfg;
    }

    std::size_t
    addRange(Bytes bytes)
    {
        std::size_t id = table.addRange("buf", bytes,
                                        engine.config().chunkBytes);
        engine.beginJob();
        return id;
    }

    PageTable table;
    DeviceMemory devMem;
    PcieLink link;
    MigrationEngine engine;
};

TEST_F(EngineFixture, DemandFaultMigratesChunk)
{
    std::size_t id = addRange(mib(1));
    Tick ready = engine.requestChunk(id, 0, 0);
    EXPECT_GT(ready, 0u);
    EXPECT_EQ(engine.jobFaults(), 1u);
    EXPECT_EQ(table.range(id).state(0), ChunkState::DeviceResident);
    EXPECT_GT(engine.jobTransferBusy(), 0u);
}

TEST_F(EngineFixture, SecondRequestIsResidentHit)
{
    std::size_t id = addRange(mib(1));
    Tick first = engine.requestChunk(id, 0, 0);
    Tick second = engine.requestChunk(id, 0, first);
    EXPECT_EQ(second, first);
    EXPECT_EQ(engine.jobFaults(), 1u);
}

TEST_F(EngineFixture, EarlyRequesterWaitsForInFlight)
{
    std::size_t id = addRange(mib(1));
    Tick ready = engine.requestChunk(id, 0, 0);
    // A different SM touches the chunk while it is still in flight.
    Tick other = engine.requestChunk(id, 0, ready / 2);
    EXPECT_EQ(other, ready);
}

TEST_F(EngineFixture, PrefetchRangeMovesEverythingOnce)
{
    std::size_t id = addRange(mib(1));
    Occupancy occ = engine.prefetchRange(id, 0);
    EXPECT_GT(occ.duration(), 0u);
    EXPECT_TRUE(engine.rangeFullyResident(id));
    EXPECT_EQ(engine.jobFaults(), 0u);

    // Demanding after prefetch raises no fault.
    Tick ready = engine.requestChunk(id, 3, occ.end);
    EXPECT_EQ(ready, occ.end);
    EXPECT_EQ(engine.jobFaults(), 0u);
}

TEST_F(EngineFixture, RedundantPrefetchWithoutChurnIsFree)
{
    std::size_t id = addRange(mib(1));
    engine.prefetchRange(id, 0);
    Tick busyBefore = engine.jobTransferBusy();
    Occupancy again = engine.prefetchRange(id, seconds(1),
                                           /*churnOk=*/false);
    EXPECT_EQ(again.duration(), 0u);
    EXPECT_EQ(engine.jobTransferBusy(), busyBefore);
}

TEST_F(EngineFixture, RedundantPrefetchWithChurnPaysTransfer)
{
    std::size_t id = addRange(mib(1));
    engine.prefetchRange(id, 0);
    Tick busyBefore = engine.jobTransferBusy();
    engine.prefetchRange(id, seconds(1), /*churnOk=*/true);
    EXPECT_GT(engine.jobTransferBusy(), busyBefore);
}

TEST_F(EngineFixture, PopulateOnDeviceIsFree)
{
    std::size_t id = addRange(mib(1));
    engine.populateOnDevice(id);
    EXPECT_TRUE(engine.rangeFullyResident(id));
    EXPECT_EQ(engine.jobTransferBusy(), 0u);
    EXPECT_EQ(engine.jobFaults(), 0u);
    EXPECT_EQ(devMem.residentBytes(), mib(1));
}

TEST_F(EngineFixture, WritebackMovesOnlyDirty)
{
    std::size_t id = addRange(mib(1));
    engine.populateOnDevice(id);
    // Nothing dirty yet.
    EXPECT_EQ(engine.writebackDirty(id, 0), 0u);

    table.range(id).setDirty(2, true);
    Tick busyBefore = engine.jobTransferBusy();
    Tick done = engine.writebackDirty(id, 0);
    EXPECT_GT(done, 0u);
    EXPECT_GT(engine.jobTransferBusy(), busyBefore);
    EXPECT_FALSE(table.range(id).dirty(2));
}

TEST_F(EngineFixture, MarkRangeDirtyMarksResidentChunks)
{
    std::size_t id = addRange(mib(1));
    engine.requestChunk(id, 0, 0);
    engine.markRangeDirty(id);
    EXPECT_TRUE(table.range(id).dirty(0));
    EXPECT_FALSE(table.range(id).dirty(1)); // never migrated
}

TEST_F(EngineFixture, AllRangesResidentTracksEveryRange)
{
    std::size_t a = addRange(mib(1));
    std::size_t b = table.addRange("buf2", mib(1),
                                   engine.config().chunkBytes);
    EXPECT_FALSE(engine.allRangesResident());
    engine.populateOnDevice(a);
    EXPECT_FALSE(engine.allRangesResident());
    engine.populateOnDevice(b);
    EXPECT_TRUE(engine.allRangesResident());
}

TEST_F(EngineFixture, BeginJobResetsResidency)
{
    std::size_t id = addRange(mib(1));
    engine.prefetchRange(id, 0);
    engine.beginJob();
    EXPECT_FALSE(engine.rangeFullyResident(id));
    EXPECT_EQ(engine.jobTransferBusy(), 0u);
}

TEST(MigrationEngineOversub, EvictsWhenDeviceFull)
{
    PageTable table("pt");
    // Tiny device: 4 chunks fit.
    DeviceMemory devMem("hbm", kib(256), Bandwidth::fromGBps(1400.0));
    PcieLink link("pcie", PcieConfig{});
    UvmConfig cfg;
    cfg.chunkBytes = kib(64);
    MigrationEngine engine("uvm", cfg, table, devMem, link);

    std::size_t id = table.addRange("big", kib(512), cfg.chunkBytes);
    engine.beginJob();

    Tick t = 0;
    for (std::uint64_t c = 0; c < 8; ++c)
        t = engine.requestChunk(id, c, t);

    EXPECT_GT(devMem.evictions(), 0u);
    EXPECT_LE(devMem.residentBytes(), kib(256));
    // Early chunks were evicted; re-demand faults again.
    std::uint64_t faults = engine.jobFaults();
    engine.requestChunk(id, 0, t);
    EXPECT_EQ(engine.jobFaults(), faults + 1);
}

TEST(MigrationEngineOversub, DirtyVictimsWriteBack)
{
    PageTable table("pt");
    DeviceMemory devMem("hbm", kib(128), Bandwidth::fromGBps(1400.0));
    PcieLink link("pcie", PcieConfig{});
    UvmConfig cfg;
    cfg.chunkBytes = kib(64);
    MigrationEngine engine("uvm", cfg, table, devMem, link);

    std::size_t id = table.addRange("big", kib(512), cfg.chunkBytes);
    engine.beginJob();

    Tick t = engine.requestChunk(id, 0, 0);
    table.range(id).setDirty(0, true);
    Bytes d2hBefore = link.bytesMoved(Direction::DeviceToHost);
    // Fill past capacity; chunk 0 eventually evicts and writes back.
    for (std::uint64_t c = 1; c < 4; ++c)
        t = engine.requestChunk(id, c, t);
    EXPECT_GT(link.bytesMoved(Direction::DeviceToHost), d2hBefore);
}

} // namespace
} // namespace uvmasync
