/**
 * @file
 * Property sweep of the L1 cache model across every (access pattern,
 * transfer mode) pair: rates stay in range, determinism holds, and
 * the async staging transform never *worsens* the store behaviour of
 * staged buffers.
 */

#include <gtest/gtest.h>

#include "gpu/cache_model.hh"

namespace uvmasync
{
namespace
{

const AccessPattern kPatterns[] = {
    AccessPattern::Sequential, AccessPattern::Strided,
    AccessPattern::Tiled,      AccessPattern::Random,
    AccessPattern::Irregular,  AccessPattern::Broadcast,
};

KernelDescriptor
kernelWith(AccessPattern pattern)
{
    KernelDescriptor kd = makeStreamKernel(
        "sweep", 1024, 256, mib(512), kib(16), 4, 4.0, 4.0, 1.0,
        0.5);
    kd.buffers = {
        KernelBufferUse{0, pattern, true, true, 1.0, true},
    };
    return kd;
}

class CacheModelSweep
    : public ::testing::TestWithParam<
          std::tuple<AccessPattern, TransferMode>>
{
};

TEST_P(CacheModelSweep, RatesInRangeAndDeterministic)
{
    auto [pattern, mode] = GetParam();
    GpuConfig gpu;
    KernelDescriptor kd = kernelWith(pattern);
    CacheModelResult a =
        simulateL1(gpu, kd, {mib(512)}, mode, kib(32), 7);
    CacheModelResult b =
        simulateL1(gpu, kd, {mib(512)}, mode, kib(32), 7);

    EXPECT_GE(a.loadMissRate, 0.0);
    EXPECT_LE(a.loadMissRate, 1.0);
    EXPECT_GE(a.storeMissRate, 0.0);
    EXPECT_LE(a.storeMissRate, 1.0);
    EXPECT_GT(a.loads + a.stores, 0u);

    EXPECT_DOUBLE_EQ(a.loadMissRate, b.loadMissRate);
    EXPECT_DOUBLE_EQ(a.storeMissRate, b.storeMissRate);
}

TEST_P(CacheModelSweep, AsyncStoresNeverWorseForScatterPatterns)
{
    auto [pattern, mode] = GetParam();
    if (!usesAsyncCopy(mode))
        GTEST_SKIP() << "async transform only";
    if (pattern != AccessPattern::Random &&
        pattern != AccessPattern::Irregular) {
        // Dense patterns are already coalesced (and strided stores
        // may ride lines warmed by the sync load stream).
        GTEST_SKIP() << "not a scatter pattern";
    }
    GpuConfig gpu;
    KernelDescriptor kd = kernelWith(pattern);
    CacheModelResult sync = simulateL1(gpu, kd, {mib(512)},
                                       TransferMode::Standard,
                                       kib(32), 7);
    CacheModelResult async =
        simulateL1(gpu, kd, {mib(512)}, mode, kib(32), 7);
    // Shared-memory staging turns scatter stores into coalesced
    // writebacks; store misses must not get worse.
    EXPECT_LE(async.storeMissRate, sync.storeMissRate + 1e-9);
}

std::string
sweepName(const ::testing::TestParamInfo<
          std::tuple<AccessPattern, TransferMode>> &info)
{
    std::string id = accessPatternName(std::get<0>(info.param));
    id += "_";
    id += transferModeName(std::get<1>(info.param));
    return id;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, CacheModelSweep,
    ::testing::Combine(::testing::ValuesIn(kPatterns),
                       ::testing::ValuesIn(
                           std::vector<TransferMode>(
                               allTransferModes.begin(),
                               allTransferModes.end()))),
    sweepName);

} // namespace
} // namespace uvmasync
