/**
 * @file
 * The campaign-daemon test battery: every guarantee the batch CLI
 * earned, re-proven under the daemon.
 *
 *  - wire codec: split delivery, empty/oversized payloads, sticky
 *    corruption, blocking fd round trips;
 *  - batch specs: defaults, did-you-mean rejection, and point-grid
 *    equivalence with the CLI's `run` construction (campaign hash);
 *  - admission: round-robin fairness across clients, cancel removal;
 *  - runner: cooperative cancel (no journal pollution), merge
 *    callback in strict submission order at any job count;
 *  - daemon: the headline equivalence — a batch's streamed results
 *    are byte-identical to the batch CLI's journal for the same
 *    batch, at different job counts, cold and warm store, across a
 *    kill of the daemon at EVERY record boundary, and across a
 *    restart with pending submissions;
 *  - cancel lifecycle: a cancelled pending batch never runs, and
 *    stays cancelled across restart;
 *  - preflight: unwritable state dir and unbindable socket die at
 *    startup (death tests);
 *  - socket front end: concurrent clients each get their own
 *    byte-exact stream, bad requests get actionable Error frames,
 *    garbage bytes drop only the offending connection.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <dirent.h>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <thread>
#include <unistd.h>
#include <vector>

#include "common/logging.hh"
#include "core/parallel_runner.hh"
#include "journal/journal.hh"
#include "journal/json.hh"
#include "serve/admission.hh"
#include "serve/batch_spec.hh"
#include "serve/daemon.hh"
#include "serve/server.hh"
#include "serve/wire.hh"
#include "workloads/registry.hh"

namespace uvmasync
{
namespace
{

std::string
tmpDir(const std::string &name)
{
    return ::testing::TempDir() + "uvmasync_serve_" + name;
}

void
removeTree(const std::string &path)
{
    struct stat st;
    if (::lstat(path.c_str(), &st) != 0)
        return;
    if (!S_ISDIR(st.st_mode)) {
        ::unlink(path.c_str());
        return;
    }
    if (DIR *dir = ::opendir(path.c_str())) {
        while (struct dirent *entry = ::readdir(dir)) {
            std::string name = entry->d_name;
            if (name == "." || name == "..")
                continue;
            removeTree(path + "/" + name);
        }
        ::closedir(dir);
    }
    ::rmdir(path.c_str());
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << path;
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
}

void
writeFile(const std::string &path, const std::string &contents)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << contents;
    ASSERT_TRUE(out.good()) << path;
}

bool
fileExists(const std::string &path)
{
    struct stat st;
    return ::stat(path.c_str(), &st) == 0;
}

/** The battery's canonical small batch (5 modes x saxpy/tiny). */
std::string
saxpyPayload(std::uint64_t seed = 42)
{
    return "batch.workload = saxpy\n"
           "batch.size = tiny\n"
           "batch.runs = 2\n"
           "batch.seed = " +
           std::to_string(seed) + "\n";
}

/** Split journal text into its lines ('\n' kept). */
std::vector<std::string>
splitLines(const std::string &text)
{
    std::vector<std::string> lines;
    std::size_t start = 0;
    while (start < text.size()) {
        std::size_t nl = text.find('\n', start);
        if (nl == std::string::npos)
            break;
        lines.push_back(text.substr(start, nl - start + 1));
        start = nl + 1;
    }
    return lines;
}

/** Record lines of a journal file (everything after the header). */
std::string
journalRecords(const std::string &journalText)
{
    std::vector<std::string> lines = splitLines(journalText);
    std::string records;
    for (std::size_t i = 1; i < lines.size(); ++i)
        records += lines[i];
    return records;
}

/**
 * The ground truth: run @p payload's batch exactly as the batch CLI
 * would (`uvmasync run --journal FILE --jobs N`) and return the
 * journal file's full bytes.
 */
std::string
referenceJournal(const std::string &payload, unsigned jobs)
{
    BatchSpec spec;
    std::string error;
    EXPECT_TRUE(parseBatchSpec(payload, spec, error)) << error;
    std::vector<ExperimentPoint> points = batchSpecPoints(spec);
    std::string path =
        ::testing::TempDir() + "uvmasync_serve_ref.jsonl";
    ::unlink(path.c_str());
    {
        std::unique_ptr<RunJournal> journal =
            RunJournal::create(path, points);
        RunPolicy policy;
        policy.retries = spec.retries;
        policy.journal = journal.get();
        ParallelRunner runner(SystemConfig::a100Epyc(), jobs);
        BatchResult batch = runner.runPoints(points, policy);
        EXPECT_TRUE(batch.allOk());
    }
    std::string text = readFile(path);
    ::unlink(path.c_str());
    return text;
}

// ---------------------------------------------------------------
// Wire codec
// ---------------------------------------------------------------

TEST(ServeWire, RoundTripSurvivesArbitrarySplits)
{
    std::string bytes =
        encodeFrame(FrameType::Submit, "batch.workload = saxpy\n") +
        encodeFrame(FrameType::Stats, "") +
        encodeFrame(FrameType::StreamChunk,
                    std::string(1000, 'x'));
    // Feed the concatenation one byte at a time: framing must never
    // depend on recv() boundaries.
    FrameReader reader;
    std::vector<Frame> frames;
    for (char c : bytes) {
        reader.feed(&c, 1);
        Frame frame;
        std::string error;
        while (reader.next(frame, error))
            frames.push_back(frame);
        EXPECT_TRUE(error.empty()) << error;
    }
    ASSERT_EQ(frames.size(), 3u);
    EXPECT_EQ(frames[0].type, FrameType::Submit);
    EXPECT_EQ(frames[0].payload, "batch.workload = saxpy\n");
    EXPECT_EQ(frames[1].type, FrameType::Stats);
    EXPECT_TRUE(frames[1].payload.empty());
    EXPECT_EQ(frames[2].type, FrameType::StreamChunk);
    EXPECT_EQ(frames[2].payload, std::string(1000, 'x'));
    EXPECT_EQ(reader.pending(), 0u);
}

TEST(ServeWire, UnknownTypeByteIsStickyCorruption)
{
    FrameReader reader;
    const char garbage[] = {0, 0, 0, 0, 99};
    reader.feed(garbage, sizeof(garbage));
    Frame frame;
    std::string error;
    EXPECT_FALSE(reader.next(frame, error));
    EXPECT_NE(error.find("unknown frame type"), std::string::npos)
        << error;
    EXPECT_TRUE(reader.corrupt());
    // Later (even well-formed) bytes cannot resynchronize.
    std::string good = encodeFrame(FrameType::Stats, "");
    reader.feed(good.data(), good.size());
    EXPECT_FALSE(reader.next(frame, error));
    EXPECT_TRUE(reader.corrupt());
}

TEST(ServeWire, OversizedLengthPrefixIsRejectedNotAllocated)
{
    // 0xffffffff announced: must be a protocol error, never an
    // allocation attempt.
    FrameReader reader;
    const unsigned char garbage[] = {0xff, 0xff, 0xff, 0xff, 1};
    reader.feed(garbage, sizeof(garbage));
    Frame frame;
    std::string error;
    EXPECT_FALSE(reader.next(frame, error));
    EXPECT_NE(error.find("protocol ceiling"), std::string::npos)
        << error;
}

TEST(ServeWire, EncodeRefusesOversizedPayload)
{
    FatalThrowScope guard;
    EXPECT_THROW(encodeFrame(FrameType::StreamChunk,
                             std::string(maxFramePayload + 1, 'x')),
                 FatalError);
}

TEST(ServeWire, StreamSliceBytesCutsAtRecordBoundaries)
{
    const std::string lines = "aaaa\nbb\ncccc\n";
    // A big enough cap takes everything in one slice.
    EXPECT_EQ(streamSliceBytes(lines, 0, 1024), lines.size());
    // A cap landing mid-line cuts back to the last boundary.
    EXPECT_EQ(streamSliceBytes(lines, 0, 7), 5u);
    // A cap landing exactly on a boundary keeps it.
    EXPECT_EQ(streamSliceBytes(lines, 0, 8), 8u);
    // Resuming mid-string respects boundaries too.
    EXPECT_EQ(streamSliceBytes(lines, 5, 7), 3u);
    // A single line longer than the cap splits mid-line rather than
    // stalling.
    EXPECT_EQ(streamSliceBytes("0123456789\n", 0, 4), 4u);
    EXPECT_EQ(streamSliceBytes(lines, lines.size(), 4), 0u);
    // Concatenated slices reproduce the bytes exactly at any cap.
    for (std::size_t cap = 1; cap <= lines.size() + 1; ++cap) {
        std::string joined;
        std::size_t offset = 0;
        while (offset < lines.size()) {
            std::size_t take = streamSliceBytes(lines, offset, cap);
            ASSERT_GT(take, 0u);
            ASSERT_LE(take, cap);
            joined += lines.substr(offset, take);
            offset += take;
        }
        EXPECT_EQ(joined, lines) << "cap " << cap;
    }
}

TEST(ServeWire, BlockingFdRoundTripAndEof)
{
    int fds[2];
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    std::string error;
    ASSERT_TRUE(
        writeFrame(fds[0], FrameType::Submit, "payload", error))
        << error;
    Frame frame;
    ASSERT_TRUE(readFrame(fds[1], frame, error)) << error;
    EXPECT_EQ(frame.type, FrameType::Submit);
    EXPECT_EQ(frame.payload, "payload");
    ::close(fds[0]);
    EXPECT_FALSE(readFrame(fds[1], frame, error));
    EXPECT_NE(error.find("connection closed"), std::string::npos)
        << error;
    ::close(fds[1]);
}

// ---------------------------------------------------------------
// Batch specs
// ---------------------------------------------------------------

TEST(ServeBatchSpec, DefaultsMatchTheCliRunCommand)
{
    registerAllWorkloads();
    BatchSpec spec;
    std::string error;
    ASSERT_TRUE(
        parseBatchSpec("batch.workload = saxpy\n", spec, error))
        << error;
    EXPECT_EQ(spec.workload, "saxpy");
    EXPECT_EQ(spec.size, SizeClass::Super);
    EXPECT_EQ(spec.runs, 30u);
    EXPECT_EQ(spec.seed, 42u);
    EXPECT_TRUE(spec.modes.empty()); // all five
    EXPECT_EQ(spec.retries, 1u);

    std::vector<ExperimentPoint> points = batchSpecPoints(spec);
    ASSERT_EQ(points.size(), allTransferModes.size());
    // Field-for-field what cmdRun builds with default flags.
    ExperimentOptions expected;
    expected.size = SizeClass::Super;
    expected.runs = 30;
    expected.baseSeed = 42;
    std::vector<ExperimentPoint> cli;
    for (TransferMode m : allTransferModes)
        cli.push_back(ExperimentPoint{"saxpy", m, expected});
    EXPECT_EQ(campaignHash(points), campaignHash(cli));
}

TEST(ServeBatchSpec, PayloadRoundTripPreservesTheCampaign)
{
    registerAllWorkloads();
    BatchSpec spec;
    std::string error;
    ASSERT_TRUE(parseBatchSpec("batch.workload = gemv\n"
                               "batch.size = tiny\n"
                               "batch.runs = 3\n"
                               "batch.seed = 7\n"
                               "batch.mode = uvm\n"
                               "batch.threads = 128\n",
                               spec, error))
        << error;
    BatchSpec again;
    ASSERT_TRUE(
        parseBatchSpec(batchSpecPayload(spec), again, error))
        << error;
    EXPECT_EQ(campaignHash(batchSpecPoints(spec)),
              campaignHash(batchSpecPoints(again)));
    ASSERT_EQ(again.modes.size(), 1u);
    EXPECT_EQ(again.modes[0], TransferMode::Uvm);
}

TEST(ServeBatchSpec, RejectionsAreActionable)
{
    registerAllWorkloads();
    BatchSpec spec;
    std::string error;

    EXPECT_FALSE(parseBatchSpec("batch.size = tiny\n", spec, error));
    EXPECT_NE(error.find("batch.workload is required"),
              std::string::npos)
        << error;

    EXPECT_FALSE(
        parseBatchSpec("batch.workload = saxpyy\n", spec, error));
    EXPECT_NE(error.find("unknown workload"), std::string::npos);
    EXPECT_NE(error.find("did you mean 'saxpy'"), std::string::npos)
        << error;

    EXPECT_FALSE(parseBatchSpec("batch.workload = saxpy\n"
                                "batch.sizee = tiny\n",
                                spec, error));
    EXPECT_NE(error.find("unknown batch key"), std::string::npos);
    EXPECT_NE(error.find("did you mean 'batch.size'"),
              std::string::npos)
        << error;

    EXPECT_FALSE(parseBatchSpec("batch.workload = saxpy\n"
                                "batch.size = enormous\n",
                                spec, error));
    EXPECT_NE(error.find("unknown size class"), std::string::npos);

    EXPECT_FALSE(parseBatchSpec("batch.workload = saxpy\n"
                                "batch.mode = warp\n",
                                spec, error));
    EXPECT_NE(error.find("unknown mode"), std::string::npos);

    EXPECT_FALSE(parseBatchSpec("batch.workload = saxpy\n"
                                "batch.runs = 0\n",
                                spec, error));
    EXPECT_NE(error.find("batch.runs"), std::string::npos);

    // A malformed number must come back as an error string, never
    // kill the caller (the daemon wraps the typed getters).
    EXPECT_FALSE(parseBatchSpec("batch.workload = saxpy\n"
                                "batch.runs = banana\n",
                                spec, error));
    EXPECT_FALSE(error.empty());

    // A negative seed must be rejected like the other ranges, not
    // silently wrap to a huge unsigned value.
    EXPECT_FALSE(parseBatchSpec("batch.workload = saxpy\n"
                                "batch.seed = -1\n",
                                spec, error));
    EXPECT_NE(error.find("batch.seed"), std::string::npos) << error;
}

// ---------------------------------------------------------------
// Admission queue
// ---------------------------------------------------------------

TEST(ServeAdmission, RoundRobinOverClientsIsFair)
{
    AdmissionQueue queue;
    // Client 1 floods three batches before client 2 submits one:
    // client 2 still runs second, not fourth.
    queue.admit(1, 101);
    queue.admit(1, 102);
    queue.admit(1, 103);
    queue.admit(2, 201);
    std::vector<BatchHandle> order;
    BatchHandle handle = 0;
    while (queue.next(handle))
        order.push_back(handle);
    EXPECT_EQ(order,
              (std::vector<BatchHandle>{101, 201, 102, 103}));
    EXPECT_TRUE(queue.empty());
}

TEST(ServeAdmission, InterleavesThreeClients)
{
    AdmissionQueue queue;
    queue.admit(1, 11);
    queue.admit(1, 12);
    queue.admit(2, 21);
    queue.admit(2, 22);
    queue.admit(3, 31);
    std::vector<BatchHandle> order;
    BatchHandle handle = 0;
    while (queue.next(handle))
        order.push_back(handle);
    EXPECT_EQ(order,
              (std::vector<BatchHandle>{11, 21, 31, 12, 22}));
}

TEST(ServeAdmission, RemoveDropsExactlyOneBatch)
{
    AdmissionQueue queue;
    queue.admit(1, 11);
    queue.admit(1, 12);
    queue.admit(2, 21);
    EXPECT_TRUE(queue.remove(12));
    EXPECT_FALSE(queue.remove(12));
    EXPECT_FALSE(queue.remove(999));
    std::vector<BatchHandle> order;
    BatchHandle handle = 0;
    while (queue.next(handle))
        order.push_back(handle);
    EXPECT_EQ(order, (std::vector<BatchHandle>{11, 21}));
}

// ---------------------------------------------------------------
// Runner: merge callback + cooperative cancel
// ---------------------------------------------------------------

TEST(ServeRunner, MergeCallbackFiresInSubmissionOrderAtAnyJobs)
{
    registerAllWorkloads();
    ExperimentOptions opts;
    opts.size = SizeClass::Tiny;
    opts.runs = 1;
    std::vector<ExperimentPoint> points;
    for (TransferMode m : allTransferModes)
        points.push_back(ExperimentPoint{"saxpy", m, opts});

    for (unsigned jobs : {1u, 4u}) {
        std::vector<std::size_t> merged;
        RunPolicy policy;
        policy.onPointMerged =
            [&](std::size_t index, const PointOutcome &out) {
                merged.push_back(index);
                EXPECT_TRUE(out.ok);
            };
        ParallelRunner runner(SystemConfig::a100Epyc(), jobs);
        BatchResult batch = runner.runPoints(points, policy);
        EXPECT_TRUE(batch.allOk());
        ASSERT_EQ(merged.size(), points.size()) << "jobs " << jobs;
        for (std::size_t i = 0; i < merged.size(); ++i)
            EXPECT_EQ(merged[i], i) << "jobs " << jobs;
    }
}

TEST(ServeRunner, PreSetCancelFlagCancelsEveryPointWithoutJournal)
{
    registerAllWorkloads();
    ExperimentOptions opts;
    opts.size = SizeClass::Tiny;
    opts.runs = 1;
    std::vector<ExperimentPoint> points;
    for (TransferMode m : allTransferModes)
        points.push_back(ExperimentPoint{"saxpy", m, opts});

    std::string path = tmpDir("cancel_flag") + ".jsonl";
    ::unlink(path.c_str());
    std::atomic<bool> cancel{true};
    std::size_t mergedCancelled = 0;
    {
        std::unique_ptr<RunJournal> journal =
            RunJournal::create(path, points);
        RunPolicy policy;
        policy.journal = journal.get();
        policy.cancel = &cancel;
        policy.onPointMerged =
            [&](std::size_t, const PointOutcome &out) {
                if (out.status == PointStatus::Cancelled)
                    ++mergedCancelled;
            };
        ParallelRunner runner(SystemConfig::a100Epyc(), 4);
        BatchResult batch = runner.runPoints(points, policy);
        EXPECT_FALSE(batch.allOk());
        for (const PointOutcome &out : batch.points) {
            EXPECT_EQ(out.status, PointStatus::Cancelled);
            EXPECT_FALSE(out.ok);
            EXPECT_EQ(out.attempts, 0u);
        }
    }
    EXPECT_EQ(mergedCancelled, points.size());
    // Cancelled outcomes are merged but never journaled: the file
    // holds the header and nothing else — a clean resume source.
    std::vector<std::string> lines = splitLines(readFile(path));
    EXPECT_EQ(lines.size(), 1u);
    ::unlink(path.c_str());
}

// ---------------------------------------------------------------
// Daemon: the headline byte-identity guarantees
// ---------------------------------------------------------------

TEST(ServeDaemonTest, StreamIsByteIdenticalToCliJournalColdAndWarm)
{
    std::string state = tmpDir("equiv_state");
    std::string storeDir = tmpDir("equiv_store");
    removeTree(state);
    removeTree(storeDir);

    // Ground truth from the CLI path at --jobs 1; the daemon runs
    // at jobs 4 — equivalence across job counts included.
    std::string reference = referenceJournal(saxpyPayload(), 1);
    std::string expected = journalRecords(reference);
    ASSERT_FALSE(expected.empty());

    ServeOptions opt;
    opt.stateDir = state;
    opt.storeDir = storeDir;
    opt.jobs = 4;
    ServeDaemon daemon(opt);

    std::string error;
    BatchHandle cold = daemon.submit(1, saxpyPayload(), error);
    ASSERT_NE(cold, 0u) << error;
    BatchState finalState = BatchState::Pending;
    ASSERT_TRUE(daemon.waitTerminal(cold, finalState));
    EXPECT_EQ(finalState, BatchState::Done);

    StreamChunk chunk;
    ASSERT_TRUE(daemon.stream(cold, 0, chunk, error)) << error;
    EXPECT_TRUE(chunk.terminal);
    EXPECT_EQ(chunk.state, BatchState::Done);
    EXPECT_EQ(chunk.lines, expected);
    EXPECT_EQ(chunk.records, allTransferModes.size());

    // Identical batch again: warm — every point served by the
    // shared store, stream still byte-identical.
    BatchHandle warm = daemon.submit(2, saxpyPayload(), error);
    ASSERT_NE(warm, 0u) << error;
    ASSERT_TRUE(daemon.waitTerminal(warm, finalState));
    EXPECT_EQ(finalState, BatchState::Done);
    ASSERT_TRUE(daemon.stream(warm, 0, chunk, error)) << error;
    EXPECT_EQ(chunk.lines, expected);

    BatchStatus status;
    ASSERT_TRUE(daemon.status(warm, status, error)) << error;
    EXPECT_EQ(status.cached, allTransferModes.size());
    EXPECT_EQ(status.ok, allTransferModes.size());

    ServeStats stats = daemon.stats();
    EXPECT_GE(stats.storeHits, allTransferModes.size());
    EXPECT_EQ(stats.batchesCompleted, 2u);

    daemon.stop();
    removeTree(state);
    removeTree(storeDir);
}

TEST(ServeDaemonTest, StatusReportsPerPointSlugsAndProgress)
{
    std::string state = tmpDir("status_state");
    removeTree(state);
    ServeOptions opt;
    opt.stateDir = state;
    opt.jobs = 2;
    opt.paused = true;
    ServeDaemon daemon(opt);

    std::string error;
    BatchHandle handle = daemon.submit(1, saxpyPayload(), error);
    ASSERT_NE(handle, 0u) << error;

    BatchStatus status;
    ASSERT_TRUE(daemon.status(handle, status, error)) << error;
    EXPECT_EQ(status.state, BatchState::Pending);
    EXPECT_EQ(status.points, allTransferModes.size());
    EXPECT_EQ(status.merged, 0u);
    ASSERT_EQ(status.pointStatus.size(), allTransferModes.size());
    for (const std::string &slug : status.pointStatus)
        EXPECT_EQ(slug, "pending");

    daemon.resume();
    BatchState finalState = BatchState::Pending;
    ASSERT_TRUE(daemon.waitTerminal(handle, finalState));
    EXPECT_EQ(finalState, BatchState::Done);
    ASSERT_TRUE(daemon.status(handle, status, error)) << error;
    EXPECT_EQ(status.merged, status.points);
    EXPECT_EQ(status.ok, status.points);
    EXPECT_EQ(status.failed, 0u);
    for (const std::string &slug : status.pointStatus)
        EXPECT_EQ(slug, "ok");

    BatchStatus missing;
    EXPECT_FALSE(daemon.status(0xdead, missing, error));
    EXPECT_NE(error.find("unknown batch"), std::string::npos);

    daemon.stop();
    removeTree(state);
}

TEST(ServeDaemonTest, KillAtEveryRecordBoundaryResumesBitIdentical)
{
    // Simulate "the daemon was killed after k records were durable"
    // for every k — including before the journal existed at all —
    // by materializing exactly that state and restarting over it.
    std::string reference = referenceJournal(saxpyPayload(), 1);
    std::vector<std::string> refLines = splitLines(reference);
    ASSERT_EQ(refLines.size(), 1 + allTransferModes.size());
    std::string expected = journalRecords(reference);

    for (std::size_t k = 0; k <= allTransferModes.size() + 1; ++k) {
        std::string state = tmpDir("kill_state");
        removeTree(state);
        ASSERT_EQ(::mkdir(state.c_str(), 0777), 0);
        ASSERT_EQ(::mkdir((state + "/batches").c_str(), 0777), 0);
        std::string base = state + "/batches/" + hexU64(1);
        writeFile(base + ".kv", saxpyPayload());
        if (k > 0) {
            // k == 1: header only (killed before the first record);
            // k == n+1: header + k-1 records. k == 0 leaves no
            // journal at all (killed before the batch started).
            std::string partial;
            for (std::size_t i = 0; i < k && i < refLines.size();
                 ++i)
                partial += refLines[i];
            writeFile(base + ".jsonl", partial);
        }

        ServeOptions opt;
        opt.stateDir = state;
        opt.jobs = 4;
        ServeDaemon daemon(opt);
        EXPECT_EQ(daemon.stats().batchesRecovered, 1u)
            << "k = " << k;

        BatchState finalState = BatchState::Pending;
        ASSERT_TRUE(daemon.waitTerminal(1, finalState))
            << "k = " << k;
        EXPECT_EQ(finalState, BatchState::Done) << "k = " << k;

        // The completed journal and the streamed records must be
        // byte-identical to the uninterrupted reference.
        EXPECT_EQ(readFile(base + ".jsonl"), reference)
            << "k = " << k;
        StreamChunk chunk;
        std::string error;
        ASSERT_TRUE(daemon.stream(1, 0, chunk, error)) << error;
        EXPECT_EQ(chunk.lines, expected) << "k = " << k;
        EXPECT_TRUE(chunk.terminal);

        // Restored points re-merge without re-simulating.
        if (k >= 2) {
            BatchStatus status;
            ASSERT_TRUE(daemon.status(1, status, error)) << error;
            EXPECT_EQ(status.restored, k - 1) << "k = " << k;
        }
        daemon.stop();
        removeTree(state);
    }
}

TEST(ServeDaemonTest, RestartResumesPendingSubmissionsInOrder)
{
    std::string state = tmpDir("pending_state");
    removeTree(state);
    std::string gemv = "batch.workload = gemv\n"
                       "batch.size = tiny\n"
                       "batch.runs = 2\n";
    std::string expectedSaxpy =
        journalRecords(referenceJournal(saxpyPayload(), 1));
    std::string expectedGemv =
        journalRecords(referenceJournal(gemv, 1));

    BatchHandle first = 0;
    BatchHandle second = 0;
    {
        // Paused daemon: both batches are accepted and persisted
        // but never run — the "killed before the scheduler got
        // there" shape.
        ServeOptions opt;
        opt.stateDir = state;
        opt.paused = true;
        ServeDaemon daemon(opt);
        std::string error;
        first = daemon.submit(1, saxpyPayload(), error);
        ASSERT_NE(first, 0u) << error;
        second = daemon.submit(2, gemv, error);
        ASSERT_NE(second, 0u) << error;
        daemon.stop();
    }

    ServeOptions opt;
    opt.stateDir = state;
    opt.jobs = 2;
    ServeDaemon daemon(opt);
    EXPECT_EQ(daemon.stats().batchesRecovered, 2u);

    BatchState finalState = BatchState::Pending;
    ASSERT_TRUE(daemon.waitTerminal(first, finalState));
    EXPECT_EQ(finalState, BatchState::Done);
    ASSERT_TRUE(daemon.waitTerminal(second, finalState));
    EXPECT_EQ(finalState, BatchState::Done);

    StreamChunk chunk;
    std::string error;
    ASSERT_TRUE(daemon.stream(first, 0, chunk, error)) << error;
    EXPECT_EQ(chunk.lines, expectedSaxpy);
    ASSERT_TRUE(daemon.stream(second, 0, chunk, error)) << error;
    EXPECT_EQ(chunk.lines, expectedGemv);

    // Handle continuity: a post-restart submission extends the
    // persisted sequence instead of colliding with it.
    BatchHandle third = daemon.submit(1, saxpyPayload(), error);
    EXPECT_EQ(third, second + 1);

    daemon.stop();
    removeTree(state);
}

TEST(ServeDaemonTest, RestartServesCompletedBatchWithoutRerunning)
{
    std::string state = tmpDir("completed_state");
    removeTree(state);
    {
        ServeOptions opt;
        opt.stateDir = state;
        opt.jobs = 2;
        ServeDaemon daemon(opt);
        std::string error;
        BatchHandle handle = daemon.submit(1, saxpyPayload(), error);
        ASSERT_NE(handle, 0u) << error;
        BatchState finalState = BatchState::Pending;
        ASSERT_TRUE(daemon.waitTerminal(handle, finalState));
        ASSERT_EQ(finalState, BatchState::Done);
        daemon.stop();
    }

    ServeOptions opt;
    opt.stateDir = state;
    ServeDaemon daemon(opt);
    BatchStatus status;
    std::string error;
    ASSERT_TRUE(daemon.status(1, status, error)) << error;
    EXPECT_EQ(status.state, BatchState::Done);
    EXPECT_EQ(status.merged, allTransferModes.size());
    for (const std::string &slug : status.pointStatus)
        EXPECT_EQ(slug, "ok");
    // Nothing ran in this process: the journal alone proves the
    // batch done.
    EXPECT_EQ(daemon.stats().pointsMerged, 0u);
    StreamChunk chunk;
    ASSERT_TRUE(daemon.stream(1, 0, chunk, error)) << error;
    EXPECT_TRUE(chunk.terminal);
    EXPECT_EQ(chunk.records, allTransferModes.size());

    daemon.stop();
    removeTree(state);
}

TEST(ServeDaemonTest, CancelledPendingBatchNeverRunsAndStaysCancelled)
{
    std::string state = tmpDir("cancel_state");
    removeTree(state);
    BatchHandle cancelled = 0;
    BatchHandle witness = 0;
    {
        ServeOptions opt;
        opt.stateDir = state;
        opt.paused = true;
        ServeDaemon daemon(opt);
        std::string error;
        cancelled = daemon.submit(1, saxpyPayload(), error);
        ASSERT_NE(cancelled, 0u) << error;
        witness = daemon.submit(2,
                                "batch.workload = gemv\n"
                                "batch.size = tiny\n"
                                "batch.runs = 2\n",
                                error);
        ASSERT_NE(witness, 0u) << error;

        BatchState result = BatchState::Pending;
        ASSERT_TRUE(daemon.cancel(cancelled, result, error))
            << error;
        EXPECT_EQ(result, BatchState::Cancelled);

        // Open the gate: the witness batch runs to completion, so
        // the scheduler demonstrably passed over the cancelled one.
        daemon.resume();
        BatchState finalState = BatchState::Pending;
        ASSERT_TRUE(daemon.waitTerminal(witness, finalState));
        EXPECT_EQ(finalState, BatchState::Done);

        BatchStatus status;
        ASSERT_TRUE(daemon.status(cancelled, status, error));
        EXPECT_EQ(status.state, BatchState::Cancelled);
        EXPECT_EQ(status.merged, 0u);
        // Never ran: no journal was ever created for it.
        EXPECT_FALSE(fileExists(state + "/batches/" +
                                hexU64(cancelled) + ".jsonl"));

        // Cancelling a terminal batch is a no-op.
        ASSERT_TRUE(daemon.cancel(witness, result, error));
        EXPECT_EQ(result, BatchState::Done);
        daemon.stop();
    }

    // The cancellation marker survives restart: recovery must not
    // resurrect the batch.
    ServeOptions opt;
    opt.stateDir = state;
    opt.paused = true;
    ServeDaemon daemon(opt);
    BatchStatus status;
    std::string error;
    ASSERT_TRUE(daemon.status(cancelled, status, error)) << error;
    EXPECT_EQ(status.state, BatchState::Cancelled);
    StreamChunk chunk;
    ASSERT_TRUE(daemon.stream(cancelled, 0, chunk, error)) << error;
    EXPECT_TRUE(chunk.terminal);
    EXPECT_EQ(chunk.state, BatchState::Cancelled);
    EXPECT_TRUE(chunk.lines.empty());
    daemon.stop();
    removeTree(state);
}

TEST(ServeDaemonTest, SubmitRejectionsDoNotBurnTheDaemon)
{
    std::string state = tmpDir("reject_state");
    removeTree(state);
    ServeOptions opt;
    opt.stateDir = state;
    opt.paused = true;
    ServeDaemon daemon(opt);

    std::string error;
    EXPECT_EQ(daemon.submit(1, "batch.workload = nope\n", error),
              0u);
    EXPECT_NE(error.find("unknown workload"), std::string::npos);
    EXPECT_EQ(daemon.submit(1, "garbage ][ text\n", error), 0u);
    EXPECT_FALSE(error.empty());

    // The daemon still accepts good batches afterwards.
    BatchHandle handle = daemon.submit(1, saxpyPayload(), error);
    EXPECT_NE(handle, 0u) << error;
    daemon.stop();
    removeTree(state);
}

// ---------------------------------------------------------------
// Preflight (death tests)
// ---------------------------------------------------------------

TEST(ServePreflight, UnwritableStateDirDiesAtStartup)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    // A path under a regular file cannot be created by anyone —
    // including root, which container CI runs as (a chmod 0500
    // directory would not stop root).
    std::string file = tmpDir("preflight_file");
    writeFile(file, "not a directory\n");
    std::string impossible = file + "/state";
    EXPECT_DEATH(preflightServeStateDir(impossible),
                 "cannot create state directory");
    EXPECT_DEATH(preflightServeStateDir(""),
                 "state directory is required");
    ::unlink(file.c_str());
}

TEST(ServePreflight, UnbindableSocketDiesAtStartup)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    std::string state = tmpDir("sock_preflight");
    removeTree(state);
    EXPECT_DEATH(
        {
            ServeOptions opt;
            opt.stateDir = state;
            opt.paused = true;
            ServeDaemon daemon(opt);
            std::string longPath(200, 'a');
            ServeSocketServer server(daemon, "/tmp/" + longPath);
        },
        "AF_UNIX limit");
    removeTree(state);
}

// ---------------------------------------------------------------
// Socket front end: concurrent clients end to end
// ---------------------------------------------------------------

struct ServerFixture
{
    explicit ServerFixture(const ServeOptions &opt)
        : daemon(opt),
          socketPath(::testing::TempDir() + "uvmasync_serve_" +
                     std::to_string(::getpid()) + ".sock"),
          server(daemon, socketPath),
          thread([this] { server.run(); })
    {
    }

    ~ServerFixture()
    {
        server.requestStop();
        thread.join();
        daemon.stop();
    }

    ServeDaemon daemon;
    std::string socketPath;
    ServeSocketServer server;
    std::thread thread;
};

TEST(ServeSocket, ConcurrentClientsEachGetTheirExactStream)
{
    std::string state = tmpDir("socket_state");
    std::string storeDir = tmpDir("socket_store");
    removeTree(state);
    removeTree(storeDir);

    std::vector<std::string> payloads = {
        saxpyPayload(42),
        "batch.workload = gemv\nbatch.size = tiny\nbatch.runs = "
        "2\n",
        saxpyPayload(7),
    };
    std::vector<std::string> expected;
    for (const std::string &payload : payloads)
        expected.push_back(
            journalRecords(referenceJournal(payload, 1)));

    ServeOptions opt;
    opt.stateDir = state;
    opt.storeDir = storeDir;
    opt.jobs = 2;
    ServerFixture fixture(opt);

    std::vector<std::string> streamed(payloads.size());
    std::vector<std::string> finalStates(payloads.size());
    std::vector<std::string> errors(payloads.size());
    std::vector<std::thread> clients;
    for (std::size_t i = 0; i < payloads.size(); ++i) {
        clients.emplace_back([&, i] {
            ServeClient client;
            std::string error;
            if (!client.connect(fixture.socketPath, error)) {
                errors[i] = error;
                return;
            }
            std::string handle;
            if (!client.submit(payloads[i], handle, error)) {
                errors[i] = error;
                return;
            }
            if (!client.stream(handle, 0, true, streamed[i],
                               finalStates[i], error))
                errors[i] = error;
        });
    }
    for (std::thread &t : clients)
        t.join();

    for (std::size_t i = 0; i < payloads.size(); ++i) {
        EXPECT_TRUE(errors[i].empty()) << errors[i];
        EXPECT_EQ(finalStates[i], "done") << "client " << i;
        EXPECT_EQ(streamed[i], expected[i]) << "client " << i;
    }

    // Stats flow end to end.
    ServeClient client;
    std::string error;
    ASSERT_TRUE(client.connect(fixture.socketPath, error)) << error;
    std::string stats;
    ASSERT_TRUE(client.stats(stats, error)) << error;
    EXPECT_NE(stats.find("batches.submitted = 3"),
              std::string::npos)
        << stats;
    EXPECT_NE(stats.find("batches.completed = 3"),
              std::string::npos)
        << stats;

    removeTree(state);
    removeTree(storeDir);
}

TEST(ServeSocket, BadRequestsGetActionableErrorFrames)
{
    std::string state = tmpDir("socket_err_state");
    removeTree(state);
    ServeOptions opt;
    opt.stateDir = state;
    opt.paused = true;
    ServerFixture fixture(opt);

    ServeClient client;
    std::string error;
    ASSERT_TRUE(client.connect(fixture.socketPath, error)) << error;

    std::string handle;
    EXPECT_FALSE(
        client.submit("batch.workload = nope\n", handle, error));
    EXPECT_NE(error.find("unknown workload"), std::string::npos)
        << error;

    std::string reply;
    EXPECT_FALSE(client.status("ffffffffffffffff", reply, error));
    EXPECT_NE(error.find("unknown batch"), std::string::npos);

    EXPECT_FALSE(client.status("zzz", reply, error));
    EXPECT_NE(error.find("malformed batch handle"),
              std::string::npos);

    std::string lines;
    std::string finalState;
    EXPECT_FALSE(client.stream("0000000000000099", 0, false, lines,
                               finalState, error));
    EXPECT_NE(error.find("unknown batch"), std::string::npos);

    // The connection survives request errors: a good request still
    // works on the same socket.
    std::string stats;
    EXPECT_TRUE(client.stats(stats, error)) << error;

    removeTree(state);
}

/** Raw client connect for tests that drive the wire directly. */
int
rawConnect(const std::string &socketPath)
{
    int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0)
        return -1;
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, socketPath.c_str(),
                socketPath.size() + 1);
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        ::close(fd);
        return -1;
    }
    return fd;
}

TEST(ServeSocket, MalformedRequestPayloadsOnlyFailThatRequest)
{
    std::string state = tmpDir("socket_malformed_state");
    removeTree(state);
    ServeOptions opt;
    opt.stateDir = state;
    opt.paused = true;
    ServerFixture fixture(opt);

    // ServeClient always writes well-formed payloads, so drive the
    // wire directly. Every payload below makes the KV parser or a
    // typed getter fatal(); the daemon must trap each one into an
    // Error frame — a garbled request from one client must never
    // exit the process under every other client.
    int fd = rawConnect(fixture.socketPath);
    ASSERT_GE(fd, 0);
    const char *bad[][2] = {
        // KV line with no '=' on each request type that parses.
        {"status", nullptr},
        {"cancel", nullptr},
        {"stream", nullptr},
        {"submit", nullptr},
        // Typed-getter failures on the stream request.
        {"batch = 0000000000000001\nfrom = abc\n", "stream"},
        {"batch = 0000000000000001\nwait = banana\n", "stream"},
        {"batch = 0000000000000001\nfrom = -3\n", "stream"},
    };
    std::string error;
    for (const auto &entry : bad) {
        FrameType type = FrameType::Status;
        std::string payload;
        if (entry[1] == nullptr) {
            payload = "this line has no equals sign\n";
            std::string slug = entry[0];
            type = slug == "status"   ? FrameType::Status
                   : slug == "cancel" ? FrameType::Cancel
                   : slug == "stream" ? FrameType::Stream
                                      : FrameType::Submit;
        } else {
            payload = entry[0];
            type = FrameType::Stream;
        }
        ASSERT_TRUE(writeFrame(fd, type, payload, error)) << error;
        Frame reply;
        ASSERT_TRUE(readFrame(fd, reply, error))
            << error << " (" << payload << ")";
        EXPECT_EQ(reply.type, FrameType::Error) << payload;
        EXPECT_FALSE(reply.payload.empty()) << payload;
    }

    // The connection survived every bad request, and so did the
    // daemon: a good request still works on the same socket.
    ASSERT_TRUE(writeFrame(fd, FrameType::Stats, "", error))
        << error;
    Frame reply;
    ASSERT_TRUE(readFrame(fd, reply, error)) << error;
    EXPECT_EQ(reply.type, FrameType::StatsOk);
    ::close(fd);

    removeTree(state);
}

TEST(ServeSocket, SlowReaderDoesNotStallOtherClients)
{
    std::string state = tmpDir("socket_slowreader_state");
    removeTree(state);
    ServeOptions opt;
    opt.stateDir = state;
    opt.paused = true;
    ServerFixture fixture(opt);

    // Client A pipelines a flood of Stats requests without reading a
    // single reply: the replies overflow the kernel socket buffer
    // and must queue in the server's per-connection outbound buffer
    // instead of wedging the poll loop in a blocking send().
    constexpr int floodRequests = 4000;
    int fd = rawConnect(fixture.socketPath);
    ASSERT_GE(fd, 0);
    std::string burst;
    for (int i = 0; i < floodRequests; ++i)
        burst += encodeFrame(FrameType::Stats, "");
    std::size_t sent = 0;
    while (sent < burst.size()) {
        ssize_t n = ::send(fd, burst.data() + sent,
                           burst.size() - sent, MSG_NOSIGNAL);
        ASSERT_GT(n, 0);
        sent += static_cast<std::size_t>(n);
    }

    // Client B is served while A has not read a byte. With the old
    // blocking sends this deadlocked the whole server.
    ServeClient client;
    std::string error;
    ASSERT_TRUE(client.connect(fixture.socketPath, error)) << error;
    std::string stats;
    ASSERT_TRUE(client.stats(stats, error)) << error;

    // A's replies all arrive intact once it finally reads.
    for (int i = 0; i < floodRequests; ++i) {
        Frame reply;
        ASSERT_TRUE(readFrame(fd, reply, error))
            << error << " reply " << i;
        ASSERT_EQ(reply.type, FrameType::StatsOk) << "reply " << i;
    }
    ::close(fd);

    removeTree(state);
}

TEST(ServeSocket, GarbageBytesDropOnlyTheOffendingConnection)
{
    std::string state = tmpDir("socket_garbage_state");
    removeTree(state);
    ServeOptions opt;
    opt.stateDir = state;
    opt.paused = true;
    ServerFixture fixture(opt);

    // Raw connection speaking garbage: gets an Error frame (or a
    // plain close) and is dropped.
    int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, fixture.socketPath.c_str(),
                fixture.socketPath.size() + 1);
    ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                        sizeof(addr)),
              0);
    const unsigned char garbage[] = {0xff, 0xff, 0xff, 0xff, 0xff};
    ASSERT_EQ(::send(fd, garbage, sizeof(garbage), MSG_NOSIGNAL),
              static_cast<ssize_t>(sizeof(garbage)));
    // Whatever the server sends, the connection must end.
    char drain[256];
    while (::recv(fd, drain, sizeof(drain), 0) > 0) {
    }
    ::close(fd);

    // A well-behaved client on a fresh connection is unaffected.
    ServeClient client;
    std::string error;
    ASSERT_TRUE(client.connect(fixture.socketPath, error)) << error;
    std::string stats;
    EXPECT_TRUE(client.stats(stats, error)) << error;

    removeTree(state);
}

TEST(ServeSocket, ShutdownFrameStopsTheServer)
{
    std::string state = tmpDir("socket_shutdown_state");
    removeTree(state);
    ServeOptions opt;
    opt.stateDir = state;
    opt.paused = true;

    ServeDaemon daemon(opt);
    std::string socketPath = ::testing::TempDir() +
                             "uvmasync_serve_shutdown_" +
                             std::to_string(::getpid()) + ".sock";
    ServeSocketServer server(daemon, socketPath);
    std::thread thread([&] { server.run(); });

    ServeClient client;
    std::string error;
    ASSERT_TRUE(client.connect(socketPath, error)) << error;
    ASSERT_TRUE(client.shutdown(error)) << error;
    thread.join(); // run() returned because of the frame
    daemon.stop();
    removeTree(state);
}

} // namespace
} // namespace uvmasync
