/**
 * @file
 * Tests over the benchmark suite: the registry matches Table 2, every
 * workload builds at every size class, footprints track Table 3 and
 * geometry overrides apply.
 */

#include <gtest/gtest.h>

#include <set>

#include "workloads/registry.hh"

namespace uvmasync
{
namespace
{

struct RegistryFixture : public ::testing::Test
{
    RegistryFixture() { registerAllWorkloads(); }
    WorkloadRegistry &reg = WorkloadRegistry::instance();
};

TEST_F(RegistryFixture, HasTwentyOneWorkloads)
{
    EXPECT_EQ(reg.size(), 21u);
    EXPECT_EQ(reg.names(WorkloadSuite::Micro).size(), 7u);
    EXPECT_EQ(reg.names(WorkloadSuite::App).size(), 14u);
}

TEST_F(RegistryFixture, Table2NamesPresent)
{
    for (const char *name :
         {"vector_seq", "vector_rand", "saxpy", "gemv", "gemm",
          "2DCONV", "3DCONV", "lavaMD", "nw", "kmeans", "srad",
          "backprop", "pathfinder", "hotspot", "lud", "BN", "knn",
          "resnet18", "resnet50", "yolov3-tiny", "yolov3"})
        EXPECT_NE(reg.find(name), nullptr) << name;
}

TEST_F(RegistryFixture, RegistrationIsIdempotent)
{
    registerAllWorkloads();
    EXPECT_EQ(reg.size(), 21u);
}

TEST_F(RegistryFixture, UnknownWorkloadIsNull)
{
    EXPECT_EQ(reg.find("nonexistent"), nullptr);
}

TEST_F(RegistryFixture, MetadataIsFilledIn)
{
    for (const std::string &name : reg.names()) {
        const WorkloadInfo &info = reg.get(name).info();
        EXPECT_FALSE(info.source.empty()) << name;
        EXPECT_FALSE(info.domain.empty()) << name;
        EXPECT_FALSE(info.description.empty()) << name;
    }
}

TEST_F(RegistryFixture, GeometryOverrideApplies)
{
    const Workload &w = reg.get("vector_seq");
    GeometryOverride geo;
    geo.gridBlocks = 64;
    geo.threadsPerBlock = 128;
    Job job = w.makeJob(SizeClass::Small, geo);
    EXPECT_EQ(job.kernels[0].gridBlocks, 64u);
    EXPECT_EQ(job.kernels[0].threadsPerBlock, 128u);
}

// --- Size classes ------------------------------------------------------

TEST(SizeClassTest, Table3Values)
{
    EXPECT_EQ(sizeClassMem(SizeClass::Tiny), mib(1));
    EXPECT_EQ(sizeClassMem(SizeClass::Mega), gib(32));
    EXPECT_EQ(grid1d(SizeClass::Tiny), 256u * 1024u);
    EXPECT_EQ(grid1d(SizeClass::Super), 1ull << 30);
    EXPECT_EQ(grid2d(SizeClass::Tiny), 512u);
    EXPECT_EQ(grid2d(SizeClass::Mega), 65536u);
    EXPECT_EQ(grid3d(SizeClass::Tiny), 64u);
    EXPECT_EQ(grid3d(SizeClass::Mega), 2048u);
}

TEST(SizeClassTest, NamesParseRoundTrip)
{
    for (SizeClass s : allSizeClasses) {
        SizeClass parsed;
        ASSERT_TRUE(parseSizeClass(sizeClassName(s), parsed));
        EXPECT_EQ(parsed, s);
    }
    SizeClass dummy;
    EXPECT_FALSE(parseSizeClass("gigantic", dummy));
}

TEST(SizeClassTest, MemoryScalesEightfold)
{
    for (std::size_t i = 1; i < allSizeClasses.size(); ++i) {
        EXPECT_EQ(sizeClassMem(allSizeClasses[i]),
                  sizeClassMem(allSizeClasses[i - 1]) * 8);
    }
}

// --- Every workload x size builds a valid job -------------------------

class JobBuildTest
    : public ::testing::TestWithParam<
          std::tuple<std::string, SizeClass>>
{
  protected:
    JobBuildTest() { registerAllWorkloads(); }
};

TEST_P(JobBuildTest, BuildsConsistentJob)
{
    auto [name, size] = GetParam();
    Job job =
        WorkloadRegistry::instance().get(name).makeJob(size);

    EXPECT_FALSE(job.buffers.empty()) << name;
    EXPECT_FALSE(job.kernels.empty()) << name;
    EXPECT_GT(job.footprint(), 0u) << name;
    EXPECT_GT(job.hostInitBytes(), 0u) << name;

    for (const KernelDescriptor &kd : job.kernels) {
        EXPECT_GT(kd.gridBlocks, 0u) << name << "/" << kd.name;
        EXPECT_GT(kd.threadsPerBlock, 0u) << name << "/" << kd.name;
        EXPECT_GT(kd.tilesPerBlock, 0u) << name << "/" << kd.name;
        EXPECT_GT(kd.tileLoadBytes, 0u) << name << "/" << kd.name;
        EXPECT_FALSE(kd.buffers.empty()) << name << "/" << kd.name;
        for (const KernelBufferUse &use : kd.buffers) {
            EXPECT_LT(use.bufferId, job.buffers.size())
                << name << "/" << kd.name;
            EXPECT_GE(use.touchedFraction, 0.0);
            EXPECT_LE(use.touchedFraction, 1.0);
            EXPECT_TRUE(use.read || use.written);
        }
    }
}

std::vector<std::string>
allWorkloadNames()
{
    registerAllWorkloads();
    return WorkloadRegistry::instance().names();
}

std::string
jobBuildTestName(
    const ::testing::TestParamInfo<std::tuple<std::string, SizeClass>>
        &info)
{
    std::string id = std::get<0>(info.param);
    id += "_";
    id += sizeClassName(std::get<1>(info.param));
    for (char &c : id) {
        if (!isalnum(static_cast<unsigned char>(c)))
            c = '_';
    }
    return id;
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, JobBuildTest,
    ::testing::Combine(::testing::ValuesIn(allWorkloadNames()),
                       ::testing::Values(SizeClass::Tiny,
                                         SizeClass::Medium,
                                         SizeClass::Super)),
    jobBuildTestName);

TEST_F(RegistryFixture, FootprintsTrackSizeClassTargets)
{
    // Footprints should land within a small factor of Table 3's
    // target (the paper itself rounds: "numbers are rounded up to
    // the lower bound").
    for (const std::string &name : reg.names(WorkloadSuite::Micro)) {
        for (SizeClass s : {SizeClass::Large, SizeClass::Super}) {
            Job job = reg.get(name).makeJob(s);
            double target =
                static_cast<double>(sizeClassMem(s));
            double actual = static_cast<double>(job.footprint());
            EXPECT_GT(actual, target * 0.2) << name;
            EXPECT_LT(actual, target * 8.0) << name;
        }
    }
}

TEST_F(RegistryFixture, FootprintsGrowWithSizeClass)
{
    for (const std::string &name : reg.names()) {
        Bytes prev = 0;
        for (SizeClass s : {SizeClass::Tiny, SizeClass::Medium,
                            SizeClass::Super}) {
            Bytes fp = reg.get(name).makeJob(s).footprint();
            EXPECT_GE(fp, prev) << name;
            prev = fp;
        }
    }
}

TEST_F(RegistryFixture, IrregularWorkloadsAreMarked)
{
    // The paper's takeaway hinges on lud/kmeans being irregular.
    for (const char *name : {"lud", "kmeans"}) {
        Job job = reg.get(name).makeJob(SizeClass::Small);
        bool irregular = false;
        for (const KernelDescriptor &kd : job.kernels) {
            for (const KernelBufferUse &use : kd.buffers) {
                if (use.pattern == AccessPattern::Irregular)
                    irregular = true;
            }
        }
        EXPECT_TRUE(irregular) << name;
    }
}

TEST_F(RegistryFixture, NwReprefetchesEachLaunch)
{
    Job job = reg.get("nw").makeJob(SizeClass::Small);
    EXPECT_TRUE(job.prefetchEachLaunch);
    EXPECT_GT(job.sequenceRepeats, 1u);
    EXPECT_EQ(job.kernels.size(), 2u);
}

} // namespace
} // namespace uvmasync
