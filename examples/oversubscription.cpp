/**
 * @file
 * Oversubscription scenario (an extension beyond the paper's
 * evaluation, motivated by its related work on UVM
 * oversubscription): a managed working set larger than the 40 GB
 * device memory forces demand paging with LRU eviction — something
 * explicit cudaMalloc simply cannot run.
 *
 * Usage: oversubscription [working-set-GiB] (default: 56)
 */

#include <cstdio>
#include <iostream>
#include <string>

#include "common/table.hh"
#include "runtime/device.hh"

using namespace uvmasync;

namespace
{

Job
makeScanJob(Bytes workingSet, std::uint32_t passes)
{
    Job job;
    job.name = "oversub_scan";
    job.buffers = {
        JobBuffer{"data", workingSet, true, true},
    };

    KernelDescriptor kd = makeStreamKernel(
        "scan_pass", 8192, 256, workingSet, kib(32), 4,
        /*flopsPerElement=*/12.0, /*intsPerElement=*/4.0,
        /*ctrlPerElement=*/0.5, /*storeRatio=*/0.2);
    kd.buffers = {
        KernelBufferUse{0, AccessPattern::Sequential, true, true, 1.0,
                        true},
    };
    job.kernels = {kd};
    job.sequenceRepeats = passes;
    return job;
}

} // namespace

int
main(int argc, char **argv)
{
    std::uint64_t gibs =
        argc > 1 ? std::stoull(argv[1]) : 56ull;
    Bytes workingSet = gib(gibs);

    SystemConfig cfg = SystemConfig::a100Epyc();
    std::cout << "Working set " << fmtBytes(
                     static_cast<double>(workingSet))
              << " vs device memory "
              << fmtBytes(static_cast<double>(cfg.deviceMemoryBytes))
              << " ("
              << fmtDouble(static_cast<double>(workingSet) /
                               static_cast<double>(
                                   cfg.deviceMemoryBytes),
                           2)
              << "x oversubscribed)\n\n";

    Job job = makeScanJob(workingSet, 3);

    TextTable table({"mode", "gpu_kernel", "memcpy", "overall",
                     "faults", "evictions"});
    for (TransferMode mode :
         {TransferMode::Uvm, TransferMode::UvmPrefetch,
          TransferMode::UvmPrefetchAsync}) {
        Device device(cfg);
        RunResult run = device.run(job, mode);
        StatMap stats = device.stats();
        table.addRow(
            {transferModeName(mode),
             fmtTime(run.breakdown.kernelPs),
             fmtTime(run.breakdown.transferPs),
             fmtTime(run.breakdown.overallPs()),
             fmtCount(static_cast<double>(run.counters.faults)),
             fmtCount(stats["hbm.evictions"])});
    }
    table.print(std::cout);

    std::cout << "\nEvery pass re-faults the evicted head of the "
                 "scan (LRU is the worst policy for a loop larger "
                 "than memory). Explicit modes cannot allocate this "
                 "working set at all — UVM trades capacity for "
                 "migration traffic.\n";
    return 0;
}
