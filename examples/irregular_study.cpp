/**
 * @file
 * Irregular-workload study: the paper's Takeaway 2 on your terminal.
 *
 * Contrasts a regular streaming workload (pathfinder) against the
 * irregular ones (lud, kmeans) across the five configurations and
 * shows where each mechanism pays off:
 *  - regular access -> UVM prefetch wins (transfer savings, no
 *    faults);
 *  - irregular access -> async memcpy wins (shared-memory staging
 *    fixes the L1 behaviour; prefetch can't predict the walk).
 *
 * Usage: irregular_study [size] (default: super)
 */

#include <cstdio>
#include <iostream>
#include <string>

#include "common/table.hh"
#include "core/experiment.hh"
#include "core/report.hh"
#include "workloads/registry.hh"

using namespace uvmasync;

int
main(int argc, char **argv)
{
    std::string sizeName = argc > 1 ? argv[1] : "super";
    SizeClass size;
    if (!parseSizeClass(sizeName, size)) {
        std::fprintf(stderr, "unknown size class '%s'\n",
                     sizeName.c_str());
        return 1;
    }

    Experiment experiment;
    ExperimentOptions opts;
    opts.size = size;
    opts.runs = 10;

    const char *workloads[] = {"pathfinder", "lud", "kmeans"};

    TextTable table({"workload", "pattern", "async", "uvm_prefetch",
                     "uvm_prefetch_async", "winner"});
    table.setAlign(1, TextTable::Align::Left);
    table.setAlign(5, TextTable::Align::Left);

    for (const char *name : workloads) {
        ModeSet set = experiment.runAllModes(name, opts);
        double base = findMode(set, TransferMode::Standard)
                          .meanBreakdown()
                          .overallPs();
        double async = findMode(set, TransferMode::Async)
                           .meanBreakdown()
                           .overallPs() /
                       base;
        double prefetch = findMode(set, TransferMode::UvmPrefetch)
                              .meanBreakdown()
                              .overallPs() /
                          base;
        double combo =
            findMode(set, TransferMode::UvmPrefetchAsync)
                .meanBreakdown()
                .overallPs() /
            base;

        bool irregular = false;
        Job job = WorkloadRegistry::instance().get(name).makeJob(size);
        for (const KernelDescriptor &kd : job.kernels) {
            for (const KernelBufferUse &use : kd.buffers) {
                if (use.pattern == AccessPattern::Irregular)
                    irregular = true;
            }
        }

        const char *winner = "uvm_prefetch";
        double best = prefetch;
        if (async < best) {
            best = async;
            winner = "async";
        }
        if (combo < best)
            winner = "uvm_prefetch_async";

        table.addRow({name, irregular ? "irregular" : "regular",
                      fmtDouble(async, 3), fmtDouble(prefetch, 3),
                      fmtDouble(combo, 3), winner});
    }

    std::cout << "Overall time normalized to standard (lower is "
                 "better), "
              << sizeName << " input:\n";
    table.print(std::cout);

    std::cout
        << "\nTakeaway 2 in action: prefetch carries the regular "
           "workload, async memcpy carries the irregular ones, and "
           "the combination is a safe default.\n";
    return 0;
}
