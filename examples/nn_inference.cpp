/**
 * @file
 * ML inference study: build a darknet-style network layer by layer
 * with the public nn API, lower it to a Job, and compare transfer
 * modes — plus a per-layer profile of the lowered kernels.
 *
 * Demonstrates why the paper's ML applications love UVM: the
 * intermediate activations (the bulk of the footprint) never cross
 * PCIe, so explicit copies of them are pure waste.
 *
 * Usage: nn_inference [resnet18|resnet50|yolov3|yolov3-tiny] [batch]
 */

#include <cstdio>
#include <iostream>
#include <string>

#include "common/table.hh"
#include "core/report.hh"
#include "gpu/kernel_executor.hh"
#include "runtime/device.hh"
#include "workloads/nn/network.hh"

using namespace uvmasync;

int
main(int argc, char **argv)
{
    std::string model = argc > 1 ? argv[1] : "resnet18";
    std::uint32_t batch =
        argc > 2 ? static_cast<std::uint32_t>(std::stoul(argv[2]))
                 : 32;

    NetworkSpec net;
    if (model == "resnet18")
        net = makeResnet18(batch);
    else if (model == "resnet50")
        net = makeResnet50(batch);
    else if (model == "yolov3")
        net = makeYolov3(batch);
    else if (model == "yolov3-tiny")
        net = makeYolov3Tiny(batch);
    else {
        std::fprintf(stderr, "unknown model '%s'\n", model.c_str());
        return 1;
    }

    std::cout << net.name << " @ batch " << batch << ": "
              << net.layers.size() << " layers, "
              << fmtBytes(static_cast<double>(net.weightBytes()))
              << " weights, "
              << fmtCount(net.totalFlops()) << " FLOPs/batch, peak "
              << "activation "
              << fmtBytes(static_cast<double>(
                     net.maxActivationBytes()))
              << "\n\n";

    Job job = buildNetworkJob(net);

    // Per-layer profile under the standard configuration.
    Device profiler(SystemConfig::a100Epyc());
    KernelExecConfig execCfg;
    execCfg.gpu = profiler.config().gpu;
    execCfg.mode = TransferMode::Standard;
    execCfg.bufferBytes = job.bufferSizes();
    KernelExecutor executor(execCfg);

    TextTable layers({"layer", "blocks", "tiles/block", "time",
                      "occupancy"});
    Tick total = 0;
    for (const KernelDescriptor &kd : job.kernels) {
        KernelResult res = executor.run(kd, 0);
        total += res.kernelTime();
        if (res.kernelTime() > microseconds(60)) {
            layers.addRow({kd.name, std::to_string(kd.gridBlocks),
                           std::to_string(kd.tilesPerBlock),
                           fmtTime(static_cast<double>(
                               res.kernelTime())),
                           fmtDouble(res.occupancy, 2)});
        }
    }
    std::cout << "Per-layer profile (layers > 60 us; total "
              << fmtTime(static_cast<double>(total)) << "):\n";
    layers.print(std::cout);

    // Mode comparison end to end.
    TextTable modes({"mode", "gpu_kernel", "memcpy", "allocation",
                     "overall", "norm"});
    Device device(SystemConfig::a100Epyc());
    double base = 0.0;
    for (TransferMode mode : allTransferModes) {
        RunResult run = device.run(job, mode);
        double overall = run.breakdown.overallPs();
        if (mode == TransferMode::Standard)
            base = overall;
        modes.addRow({transferModeName(mode),
                      fmtTime(run.breakdown.kernelPs),
                      fmtTime(run.breakdown.transferPs),
                      fmtTime(run.breakdown.allocPs),
                      fmtTime(overall),
                      fmtDouble(overall / base, 3)});
    }
    std::cout << "\nEnd-to-end under the five configurations:\n";
    modes.print(std::cout);

    std::cout << "\nNote how the UVM modes move only input+weights "
                 "across PCIe — the activations ("
              << fmtBytes(static_cast<double>(
                     2 * net.maxActivationBytes()))
              << " allocated) are born and die on the device.\n";
    return 0;
}
