/**
 * @file
 * Quickstart: run one microbenchmark under the paper's five
 * data-transfer configurations and print the execution-time
 * breakdown, normalized to `standard` — one bar group of Figure 7.
 *
 * Usage: quickstart [workload] [size]
 *   workload defaults to vector_seq, size to super
 *   (see `registry` for names: vector_seq, gemm, lud, yolov3, ...).
 */

#include <cstdio>
#include <iostream>
#include <string>

#include "common/table.hh"
#include "core/experiment.hh"
#include "core/report.hh"
#include "workloads/registry.hh"

using namespace uvmasync;

int
main(int argc, char **argv)
{
    std::string workload = argc > 1 ? argv[1] : "vector_seq";
    std::string sizeName = argc > 2 ? argv[2] : "super";

    SizeClass size;
    if (!parseSizeClass(sizeName, size)) {
        std::fprintf(stderr, "unknown size class '%s'\n",
                     sizeName.c_str());
        return 1;
    }

    registerAllWorkloads();
    if (!WorkloadRegistry::instance().find(workload)) {
        std::fprintf(stderr, "unknown workload '%s'; available:\n",
                     workload.c_str());
        for (const std::string &name :
             WorkloadRegistry::instance().names())
            std::fprintf(stderr, "  %s\n", name.c_str());
        return 1;
    }

    Experiment experiment;
    ExperimentOptions opts;
    opts.size = size;
    opts.runs = 30;

    std::cout << "Simulating " << workload << " (" << sizeName
              << " input, 30 runs per configuration) on the A100-like "
                 "testbed...\n";

    ModeSet modes = experiment.runAllModes(workload, opts);

    TextTable table({"mode", "gpu_kernel", "memcpy", "allocation",
                     "overall", "norm", "faults", "occupancy"});
    double ref =
        findMode(modes, TransferMode::Standard).meanBreakdown()
            .overallPs();
    for (const ExperimentResult &res : modes) {
        TimeBreakdown mean = res.meanBreakdown();
        table.addRow({transferModeName(res.mode),
                      fmtTime(mean.kernelPs), fmtTime(mean.transferPs),
                      fmtTime(mean.allocPs), fmtTime(mean.overallPs()),
                      fmtDouble(mean.overallPs() / ref, 3),
                      fmtCount(static_cast<double>(res.counters.faults)),
                      fmtDouble(res.counters.occupancy, 2)});
    }
    printTable(std::cout, workload + " / " + sizeName, table);

    const ExperimentResult &best = findMode(
        modes, TransferMode::UvmPrefetchAsync);
    double gain = 1.0 - best.meanBreakdown().overallPs() / ref;
    std::cout << "\nuvm_prefetch_async changes overall time by "
              << fmtPercent(-gain) << " vs standard (negative = "
              << "faster).\n";
    return 0;
}
