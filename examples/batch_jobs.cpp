/**
 * @file
 * The Section 6 inter-job data-transfer model (Figure 14) as a
 * runnable scenario: a KaaS-style batch of heterogeneous jobs is
 * executed under uvm_prefetch_async, then scheduled both serially
 * (today's model) and with allocation/free overlapped across jobs
 * (the paper's proposal).
 *
 * Usage: batch_jobs [size] [jobs-per-workload]
 */

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "common/table.hh"
#include "core/batch_pipeline.hh"
#include "core/experiment.hh"
#include "workloads/registry.hh"

using namespace uvmasync;

int
main(int argc, char **argv)
{
    std::string sizeName = argc > 1 ? argv[1] : "super";
    int copies = argc > 2 ? std::stoi(argv[2]) : 2;
    SizeClass size;
    if (!parseSizeClass(sizeName, size)) {
        std::fprintf(stderr, "unknown size class '%s'\n",
                     sizeName.c_str());
        return 1;
    }

    const char *batchMix[] = {"vector_seq", "kmeans", "hotspot",
                              "knn"};

    Experiment experiment;
    ExperimentOptions opts;
    opts.size = size;
    opts.runs = 5;

    std::vector<TimeBreakdown> jobs;
    TextTable table({"job", "allocation", "transfer+kernel (GPU)",
                     "overall"});
    for (int c = 0; c < copies; ++c) {
        for (const char *name : batchMix) {
            TimeBreakdown mean =
                experiment
                    .run(name, TransferMode::UvmPrefetchAsync, opts)
                    .meanBreakdown();
            jobs.push_back(mean);
            table.addRow({name, fmtTime(mean.allocPs),
                          fmtTime(mean.transferPs + mean.kernelPs),
                          fmtTime(mean.overallPs())});
        }
    }
    std::cout << "Batch of " << jobs.size()
              << " uvm_prefetch_async jobs (" << sizeName
              << " inputs):\n";
    table.print(std::cout);

    BatchScheduleResult sched = scheduleBatch(jobs);
    TextTable result({"schedule", "makespan", "vs serial"});
    result.addRow({"serial (current model)",
                   fmtTime(sched.serialPs), "-"});
    result.addRow({"inter-job pipeline (Figure 14)",
                   fmtTime(sched.pipelinedPs),
                   fmtPercent(-sched.improvement())});
    std::cout << "\n";
    result.print(std::cout);

    std::cout << "\nThe paper projects 'more than 30%' from hiding "
                 "allocation behind neighbouring kernels; this batch "
                 "achieves "
              << fmtPercent(sched.improvement()) << ".\n";
    return 0;
}
