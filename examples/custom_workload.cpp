/**
 * @file
 * Build-your-own-benchmark: defines a brand-new workload against the
 * public API (a sparse-matrix-vector multiply that is not part of
 * the paper's suite), runs it through the five configurations, and
 * shows how to read the counters — the template for extending the
 * suite.
 */

#include <iostream>

#include "common/table.hh"
#include "core/report.hh"
#include "runtime/device.hh"

using namespace uvmasync;

namespace
{

/**
 * SpMV in CSR form: row pointers and values stream sequentially,
 * the gathered x-vector entries are random — a classic mixed
 * regular/irregular kernel.
 */
Job
makeSpmvJob(std::uint64_t rows, std::uint64_t nnzPerRow)
{
    std::uint64_t nnz = rows * nnzPerRow;

    Job job;
    job.name = "spmv_csr";
    job.buffers = {
        JobBuffer{"values", nnz * 4, true, false},
        JobBuffer{"colidx", nnz * 4, true, false},
        JobBuffer{"x", rows * 4, true, false},
        JobBuffer{"y", rows * 4, false, true},
    };

    KernelDescriptor kd = makeStreamKernel(
        "spmv", /*gridBlocks=*/4096, /*threadsPerBlock=*/256,
        /*totalLoadBytes=*/nnz * 8 + rows * 4,
        /*sharedBytesPerBlock=*/kib(16), /*elementBytes=*/4,
        /*flopsPerElement=*/2.0, /*intsPerElement=*/6.0,
        /*ctrlPerElement=*/1.5, /*storeRatio=*/0.05);
    kd.warpsToSaturate = 10.0;
    kd.buffers = {
        KernelBufferUse{0, AccessPattern::Sequential, true, false,
                        1.0, true},
        KernelBufferUse{1, AccessPattern::Sequential, true, false,
                        1.0, true},
        // The x gather is the irregular part; it is not staged
        // through shared memory (you cannot tile what you cannot
        // predict).
        KernelBufferUse{2, AccessPattern::Random, true, false, 1.0,
                        false},
        KernelBufferUse{3, AccessPattern::Sequential, false, true,
                        1.0, true},
    };
    job.kernels = {kd};
    return job;
}

} // namespace

int
main()
{
    // ~1.3 GB of matrix data: 32M rows x 8 nonzeros.
    Job job = makeSpmvJob(32ull << 20, 8);

    std::cout << "Custom workload '" << job.name << "': "
              << fmtBytes(static_cast<double>(job.footprint()))
              << " footprint, " << job.kernels.size()
              << " kernel(s)\n\n";

    Device device(SystemConfig::a100Epyc());
    TextTable table({"mode", "gpu_kernel", "memcpy", "allocation",
                     "overall", "faults", "l1 load miss"});
    for (TransferMode mode : allTransferModes) {
        RunResult run = device.run(job, mode);
        table.addRow(
            {transferModeName(mode),
             fmtTime(run.breakdown.kernelPs),
             fmtTime(run.breakdown.transferPs),
             fmtTime(run.breakdown.allocPs),
             fmtTime(run.breakdown.overallPs()),
             fmtCount(static_cast<double>(run.counters.faults)),
             fmtDouble(run.counters.l1LoadMissRate, 3)});
    }
    table.print(std::cout);

    std::cout
        << "\nTo add a workload to the suite proper, wrap the job "
           "factory in a LambdaWorkload and register it (see "
           "src/workloads/micro/micro_workloads.cc).\n";
    return 0;
}
