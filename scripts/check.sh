#!/usr/bin/env bash
# CI gate: tier-1 verify (full build + ctest), the static model
# linter over the whole workload registry, the cost-model analyze
# stage (error advisories fail it; output byte-identical at any
# --jobs), the source-level determinism lint (with its --self-test
# fixtures), an advisory clang-tidy pass over src/analysis,
# a trace-export smoke run, a chaos stage (the
# fault-injection suite plus an injected smoke run), a resume stage
# (journal byte-determinism across job counts, kill-and-resume CSV
# identity, watchdog quarantine), a store stage (cold-vs-warm CSV
# identity through the result store, hit-rate accounting, eviction
# under a byte budget), an fsck stage (deliberate multi-layer damage
# caught at exit 1, repaired in place with --repair, and the repaired
# artifacts proven byte-identical on resume/warm rerun), a serve
# stage (the campaign daemon's result streams byte-identical to the
# batch CLI with concurrent clients, across kill -9 plus journal
# truncation, and warm from the shared store), a bench stage
# (perf-trajectory harness gated against the
# committed BENCH_9.json), a ThreadSanitizer pass over the parallel
# experiment engine, the result store, the tracer suite, the
# injection suite and the campaign daemon, and an ASan+UBSan build
# of the full test suite (which includes the injection and store
# suites).
#
#   scripts/check.sh             # all stages
#   scripts/check.sh --no-tsan   # skip the TSan stage
#   scripts/check.sh --no-asan   # skip the ASan+UBSan stage
#   scripts/check.sh --no-chaos  # skip the chaos smoke stage
#   scripts/check.sh --no-bench  # skip the perf-trajectory gate
#   scripts/check.sh --no-serve  # skip the campaign-daemon stage
#
# The sanitizer stages configure separate build trees (build-tsan/,
# build-asan/) so the instrumented objects never mix with the
# regular build. The lint stage fails on any error-severity UAL
# diagnostic, keeping the shipped registry lint-clean.
set -euo pipefail
cd "$(dirname "$0")/.."

run_tsan=1
run_asan=1
run_chaos=1
run_bench=1
run_serve=1
for arg in "$@"; do
    case "$arg" in
        --no-tsan) run_tsan=0 ;;
        --no-asan) run_asan=0 ;;
        --no-chaos) run_chaos=0 ;;
        --no-bench) run_bench=0 ;;
        --no-serve) run_serve=0 ;;
        *) echo "unknown option: $arg" >&2; exit 2 ;;
    esac
done

echo "== tier-1: build + full test suite =="
cmake -B build -S .
cmake --build build -j"$(nproc)"
ctest --test-dir build --output-on-failure -j"$(nproc)"

echo "== lint: static analysis of the workload registry =="
./build/tools/uvmasync-lint --all-workloads --size all

echo "== analyze: static cost model over the workload registry =="
# The campaign advisor prices every registry point without
# simulating. Error-severity advisories fail the stage (the tool
# exits non-zero on errors), and the output must be byte-identical
# at any --jobs count — the analyzer is pure and deterministic. The
# prediction-accuracy band itself is gated by test_cost_model in
# tier-1, which diffs tests/golden/cost_model_accuracy.csv.
analyze_out=$(mktemp -d)
./build/tools/uvmasync-lint --analyze --all-workloads --size all \
    --jobs 1 > "$analyze_out/analyze-j1.txt"
./build/tools/uvmasync-lint --analyze --all-workloads --size all \
    --jobs 8 > "$analyze_out/analyze-j8.txt"
cmp "$analyze_out/analyze-j1.txt" "$analyze_out/analyze-j8.txt"
rm -rf "$analyze_out"

echo "== lint: source-level determinism gate =="
./tools/determinism_lint.sh --self-test
./tools/determinism_lint.sh

echo "== tidy: clang-tidy over src/analysis (non-blocking) =="
if command -v clang-tidy > /dev/null 2>&1; then
    # Advisory only: findings are printed but never fail the gate.
    clang-tidy -p build --quiet src/analysis/*.cc || \
        echo "tidy: findings above are advisory" >&2
else
    echo "tidy: clang-tidy not installed; skipping" >&2
fi

echo "== trace: smoke export of an explicit and a UVM run =="
trace_out=$(mktemp -d)
trap 'rm -rf "$trace_out"' EXIT
./build/tools/uvmasync run --workload saxpy --size tiny --runs 2 \
    --trace "$trace_out/trace.json" --metrics > /dev/null
grep -q '"traceEvents"' "$trace_out/trace.json"
grep -q '"cat": "fault"' "$trace_out/trace.json"

if [ "$run_chaos" = 1 ]; then
    echo "== chaos: injection suite + injected smoke run =="
    # The demo plan must lint clean, an injected UVM run must surface
    # inject.* spans in the Chrome export, and an uninjected run must
    # never mention them (the provable-inertness guarantee).
    ./build/tools/uvmasync-lint \
        --inject examples/jobs/inject_pcie_degrade.kv
    ./build/tools/uvmasync run --workload saxpy --size tiny \
        --runs 2 --inject examples/jobs/inject_pcie_degrade.kv \
        --inject-seed 7 \
        --trace "$trace_out/inject.json" --metrics > /dev/null
    grep -q '"cat": "inject"' "$trace_out/inject.json"
    ! grep -q 'inject' "$trace_out/trace.json"
fi

echo "== resume: crash-safe journal + watchdog quarantine =="
# Journal and merged CSV are byte-deterministic across job counts.
./build/tools/uvmasync run --workload saxpy --size tiny --runs 2 \
    --jobs 1 --journal "$trace_out/j1.jsonl" \
    --out "$trace_out/ref.csv" > /dev/null
./build/tools/uvmasync run --workload saxpy --size tiny --runs 2 \
    --jobs 4 --journal "$trace_out/j4.jsonl" \
    --out "$trace_out/par.csv" > /dev/null
cmp "$trace_out/j1.jsonl" "$trace_out/j4.jsonl"
cmp "$trace_out/ref.csv" "$trace_out/par.csv"
# Kill at a record boundary (keep the header + 2 records) and resume
# at --jobs 4: the completed journal and the merged CSV must be
# byte-identical to the uninterrupted serial run.
head -n 3 "$trace_out/j1.jsonl" > "$trace_out/partial.jsonl"
./build/tools/uvmasync run --workload saxpy --size tiny --runs 2 \
    --jobs 4 --resume "$trace_out/partial.jsonl" \
    --out "$trace_out/res.csv" > /dev/null
cmp "$trace_out/partial.jsonl" "$trace_out/j1.jsonl"
cmp "$trace_out/res.csv" "$trace_out/ref.csv"
# A watchdog-tripped run retries, quarantines, reports the damage on
# stderr, and exits non-zero instead of wedging the whole batch.
if ./build/tools/uvmasync run --workload saxpy --size tiny --runs 2 \
    --jobs 4 --watchdog-max-events 1 --retries 1 \
    > /dev/null 2> "$trace_out/wd.log"; then
    echo "resume: watchdog-tripped run unexpectedly succeeded" >&2
    exit 1
fi
grep -q 'DEGRADED RUN' "$trace_out/wd.log"
grep -q 'quarantined' "$trace_out/wd.log"

echo "== store: incremental sweeps through the result store =="
# A cold run populates the store; the warm rerun must simulate
# nothing (100% hit rate) and still emit a byte-identical CSV at a
# different --jobs count. Store stats go to stderr so the data
# artifacts stay byte-comparable.
store_dir="$trace_out/store"
./build/tools/uvmasync run --workload saxpy --size tiny --runs 2 \
    --jobs 1 --store "$store_dir" \
    --out "$trace_out/cold.csv" > /dev/null 2> /dev/null
./build/tools/uvmasync run --workload saxpy --size tiny --runs 2 \
    --jobs 4 --store "$store_dir" \
    --out "$trace_out/warm.csv" > /dev/null 2> "$trace_out/warm.log"
cmp "$trace_out/cold.csv" "$trace_out/warm.csv"
grep -q 'hit_rate.*+100\.00%' "$trace_out/warm.log"
# A store-less run of the same grid must also match: attaching the
# store can never change the science.
cmp "$trace_out/cold.csv" "$trace_out/ref.csv"
# store stats / verify on the populated store.
./build/tools/uvmasync store stats --store "$store_dir" \
    | grep -q 'last_run_hit_rate'
./build/tools/uvmasync store verify --store "$store_dir" > /dev/null
# Eviction smoke: eviction triggers on insert, so run a workload the
# store has not seen under a one-byte budget — its inserts must evict
# the saxpy segments, and the run still completes correctly.
./build/tools/uvmasync run --workload gemv --size tiny --runs 2 \
    --jobs 1 --out "$trace_out/gemv_ref.csv" > /dev/null
./build/tools/uvmasync run --workload gemv --size tiny --runs 2 \
    --jobs 1 --store "$store_dir" --store-max-bytes 1 \
    --out "$trace_out/evict.csv" > /dev/null 2> "$trace_out/evict.log"
cmp "$trace_out/evict.csv" "$trace_out/gemv_ref.csv"
grep -Eq 'evicted_segments *\| *[1-9]' "$trace_out/evict.log"

echo "== fsck: offline verification + repair of durable state =="
# Clean artifacts pass (exit 0); a deliberately damaged copy of each
# layer fails (exit 1); --repair fixes everything in place (exit 0,
# quarantining rather than deleting); and the repaired artifacts keep
# working — the journal resumes and the store warms a rerun to the
# byte-identical CSV.
fsck_dir="$trace_out/fsck"
mkdir -p "$fsck_dir/state/batches"
./build/tools/uvmasync fsck "$trace_out/j1.jsonl" > /dev/null
# A fresh store to damage (the eviction smoke above emptied
# $store_dir of its saxpy segments).
./build/tools/uvmasync run --workload saxpy --size tiny --runs 2 \
    --jobs 1 --store "$fsck_dir/store" \
    --out "$fsck_dir/cold.csv" > /dev/null 2> /dev/null
./build/tools/uvmasync fsck "$fsck_dir/store" > /dev/null
# Damage all three layers: tear the journal mid-record, flip a byte
# inside the last store record, and orphan a daemon batch journal
# that acks no payload.
head -c -7 "$trace_out/j1.jsonl" > "$fsck_dir/run.jsonl"
shard_file=$(find "$fsck_dir/store/shards" -type f | sort | head -n 1)
shard_size=$(wc -c < "$shard_file")
printf 'Z' | dd of="$shard_file" bs=1 seek=$((shard_size - 2)) \
    conv=notrunc 2> /dev/null
printf '{"journal":"uvmasync"}\n' \
    > "$fsck_dir/state/batches/00000000000000aa.jsonl"
fsck_rc=0
./build/tools/uvmasync fsck "$fsck_dir/run.jsonl" "$fsck_dir/store" \
    "$fsck_dir/state" > /dev/null 2>&1 || fsck_rc=$?
[ "$fsck_rc" = 1 ]
./build/tools/uvmasync fsck --repair "$fsck_dir/run.jsonl" \
    "$fsck_dir/store" "$fsck_dir/state" \
    > "$fsck_dir/repair.log" 2>&1
./build/tools/uvmasync fsck "$fsck_dir/run.jsonl" "$fsck_dir/store" \
    "$fsck_dir/state" > /dev/null
# Unrecoverable bytes are quarantined, never deleted.
[ -d "$fsck_dir/store/quarantine" ]
[ -d "$fsck_dir/state/quarantine" ]
# The repaired journal resumes to byte-identical artifacts...
./build/tools/uvmasync run --workload saxpy --size tiny --runs 2 \
    --jobs 4 --resume "$fsck_dir/run.jsonl" \
    --out "$fsck_dir/res.csv" > /dev/null
cmp "$fsck_dir/run.jsonl" "$trace_out/j1.jsonl"
cmp "$fsck_dir/res.csv" "$trace_out/ref.csv"
# ...and a warm rerun through the repaired store (one record was
# quarantined, so it re-simulates exactly that point) still matches.
./build/tools/uvmasync run --workload saxpy --size tiny --runs 2 \
    --jobs 1 --store "$fsck_dir/store" \
    --out "$fsck_dir/warm.csv" > /dev/null 2> /dev/null
cmp "$fsck_dir/warm.csv" "$trace_out/ref.csv"

if [ "$run_serve" = 1 ]; then
    echo "== serve: campaign daemon vs batch CLI =="
    # The daemon's streamed results must be byte-identical to the
    # batch CLI's journal for the same batch — with three clients
    # racing, across a kill -9 plus journal truncation (simulated
    # mid-write crash), and on a warm resubmit served from the
    # shared store.
    serve_dir="$trace_out/serve"
    mkdir -p "$serve_dir"
    tail -n +2 "$trace_out/j1.jsonl" > "$serve_dir/expected.jsonl"
    ./build/tools/uvmasync-serve --socket "$serve_dir/sock" \
        --state "$serve_dir/state" --jobs 4 \
        --store "$serve_dir/store" > "$serve_dir/daemon.out" \
        2> "$serve_dir/daemon.log" &
    serve_pid=$!
    for _ in $(seq 100); do
        [ -S "$serve_dir/sock" ] && break
        sleep 0.1
    done
    [ -S "$serve_dir/sock" ]
    # Three concurrent clients submit the same batch; each stream
    # must match the CLI reference byte for byte.
    client_pids=()
    for i in 1 2 3; do
        ./build/tools/uvmasync client run --socket "$serve_dir/sock" \
            --workload saxpy --size tiny --runs 2 \
            > "$serve_dir/stream$i.jsonl" \
            2> "$serve_dir/client$i.log" &
        client_pids+=($!)
    done
    for pid in "${client_pids[@]}"; do wait "$pid"; done
    for i in 1 2 3; do
        cmp "$serve_dir/stream$i.jsonl" "$serve_dir/expected.jsonl"
    done
    # Kill -9 the daemon and tear the first batch's journal back to
    # the header plus two records (a crash mid-campaign); the
    # restarted daemon must resume it and stream the identical bytes.
    kill -9 "$serve_pid"
    wait "$serve_pid" 2> /dev/null || true
    # kill -9 leaves the old socket file behind; remove it so the
    # wait loop below really waits for the NEW daemon's bind rather
    # than matching the stale file instantly.
    rm -f "$serve_dir/sock"
    head -n 3 "$serve_dir/state/batches/0000000000000001.jsonl" \
        > "$serve_dir/torn.jsonl"
    mv "$serve_dir/torn.jsonl" \
        "$serve_dir/state/batches/0000000000000001.jsonl"
    ./build/tools/uvmasync-serve --socket "$serve_dir/sock" \
        --state "$serve_dir/state" --jobs 4 \
        --store "$serve_dir/store" >> "$serve_dir/daemon.out" \
        2>> "$serve_dir/daemon.log" &
    serve_pid=$!
    for _ in $(seq 100); do
        [ -S "$serve_dir/sock" ] && break
        sleep 0.1
    done
    grep -Eq '[1-9] batch\(es\) recovered' "$serve_dir/daemon.log"
    ./build/tools/uvmasync client stream --socket "$serve_dir/sock" \
        --handle 0000000000000001 > "$serve_dir/resumed.jsonl" \
        2> /dev/null
    cmp "$serve_dir/resumed.jsonl" "$serve_dir/expected.jsonl"
    # Warm resubmit: every point of a fresh identical batch comes
    # from the shared store, and the stream still matches.
    ./build/tools/uvmasync client run --socket "$serve_dir/sock" \
        --workload saxpy --size tiny --runs 2 \
        > "$serve_dir/warm.jsonl" 2> /dev/null
    cmp "$serve_dir/warm.jsonl" "$serve_dir/expected.jsonl"
    ./build/tools/uvmasync client stats --socket "$serve_dir/sock" \
        | grep -Eq 'store\.hits = [1-9]'
    ./build/tools/uvmasync client shutdown \
        --socket "$serve_dir/sock"
    wait "$serve_pid"
fi

if [ "$run_bench" = 1 ]; then
    echo "== bench: perf trajectory vs committed BENCH_9.json =="
    # Self-timing harness: regenerate the measurement and gate it
    # against the committed artifact with a +-15% tolerance band on
    # every phase rate (and derived speedups); the calendar-vs-heap
    # speedup floor and the null-sink overhead ceiling are absolute
    # gates re-checked at generation time. Wall-clock rates on a
    # shared machine are noisy (background-load bursts can halve a
    # phase's rate for a few seconds), so the gate gets three
    # attempts; a real regression is reproducible and fails all
    # three, printing the per-phase delta table each time.
    bench_cmd=(./build/tools/uvmasync-bench --reps 5 --warmup 2
        --require-speedup 1.5 --max-null-overhead 1.0
        --compare BENCH_9.json --tolerance 0.15)
    bench_ok=0
    for attempt in 1 2 3; do
        if "${bench_cmd[@]}"; then
            bench_ok=1
            break
        fi
        echo "bench: attempt $attempt failed (transient load?)" >&2
    done
    [ "$bench_ok" = 1 ]
fi

if [ "$run_tsan" = 1 ]; then
    echo "== TSan: parallel engine + store + tracer + injection" \
        "+ serve =="
    cmake -B build-tsan -S . -DUVMASYNC_TSAN=ON
    cmake --build build-tsan -j"$(nproc)" \
        --target test_parallel_runner --target test_trace \
        --target test_inject --target test_store \
        --target test_serve
    TSAN_OPTIONS="halt_on_error=1" \
        ./build-tsan/tests/test_parallel_runner
    TSAN_OPTIONS="halt_on_error=1" \
        ./build-tsan/tests/test_trace
    TSAN_OPTIONS="halt_on_error=1" \
        ./build-tsan/tests/test_inject
    TSAN_OPTIONS="halt_on_error=1" \
        ./build-tsan/tests/test_store
    TSAN_OPTIONS="halt_on_error=1" \
        ./build-tsan/tests/test_serve
fi

if [ "$run_asan" = 1 ]; then
    echo "== ASan+UBSan: full test suite under sanitizers =="
    cmake -B build-asan -S . -DUVMASYNC_ASAN=ON
    cmake --build build-asan -j"$(nproc)"
    ASAN_OPTIONS="detect_leaks=0" \
        ctest --test-dir build-asan --output-on-failure -j"$(nproc)"
fi

echo "check.sh: all stages passed"
