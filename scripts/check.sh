#!/usr/bin/env bash
# CI gate: tier-1 verify (full build + ctest) plus a ThreadSanitizer
# pass over the parallel experiment engine.
#
#   scripts/check.sh            # tier-1 + TSan
#   scripts/check.sh --no-tsan  # tier-1 only
#
# The TSan stage configures a separate build tree (build-tsan/) with
# -DUVMASYNC_TSAN=ON and runs test_parallel_runner under it, so data
# races in the work-stealing engine fail CI even when they do not
# corrupt results.
set -euo pipefail
cd "$(dirname "$0")/.."

run_tsan=1
for arg in "$@"; do
    case "$arg" in
        --no-tsan) run_tsan=0 ;;
        *) echo "unknown option: $arg" >&2; exit 2 ;;
    esac
done

echo "== tier-1: build + full test suite =="
cmake -B build -S .
cmake --build build -j"$(nproc)"
ctest --test-dir build --output-on-failure -j"$(nproc)"

if [ "$run_tsan" = 1 ]; then
    echo "== TSan: parallel engine under ThreadSanitizer =="
    cmake -B build-tsan -S . -DUVMASYNC_TSAN=ON
    cmake --build build-tsan -j"$(nproc)" --target test_parallel_runner
    TSAN_OPTIONS="halt_on_error=1" \
        ./build-tsan/tests/test_parallel_runner
fi

echo "check.sh: all stages passed"
