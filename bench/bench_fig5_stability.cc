/**
 * @file
 * Figure 5: standard deviation over mean of the 30-run distributions
 * for each input size (averaged over the five setups per workload,
 * as in the paper), plus the geometric mean across the seven
 * microbenchmarks. The expected shape: noise falls from Tiny to
 * Large/Super, then regresses at Mega (Takeaway 1).
 */

#include <iostream>

#include "common/bench_common.hh"

using namespace uvmasync;
using namespace uvmasync::bench;

namespace
{

const std::vector<std::string> &
microNames()
{
    static const std::vector<std::string> names =
        WorkloadRegistry::instance().names(WorkloadSuite::Micro);
    return names;
}

double
meanCv(const std::string &workload, SizeClass size)
{
    ExperimentOptions opts;
    opts.size = size;
    opts.runs = 30;
    ModeSet set =
        ResultCache::instance().getAllModes(workload, opts);
    double acc = 0.0;
    for (const ExperimentResult &res : set)
        acc += res.overallSamples().cv();
    return acc / static_cast<double>(set.size());
}

void
prewarm()
{
    // The full micro x size grid (each size a 7 x 5 batch).
    for (SizeClass size : allSizeClasses) {
        ExperimentOptions opts;
        opts.size = size;
        opts.runs = 30;
        ResultCache::instance().prefetchGrid(microNames(), opts);
    }
}

void
report()
{
    std::vector<std::string> headers = {"workload"};
    for (SizeClass s : allSizeClasses)
        headers.push_back(sizeClassName(s));
    TextTable table(headers);

    std::vector<std::vector<double>> perSize(allSizeClasses.size());
    for (const std::string &name : microNames()) {
        std::vector<std::string> row = {name};
        for (std::size_t i = 0; i < allSizeClasses.size(); ++i) {
            double cv = meanCv(name, allSizeClasses[i]);
            perSize[i].push_back(std::max(cv, 1e-9));
            row.push_back(fmtDouble(cv, 4));
        }
        table.addRow(row);
    }
    table.addSeparator();
    std::vector<std::string> geo = {"geo-mean"};
    std::vector<double> geoVals;
    for (const auto &sizeCvs : perSize) {
        double g = geomean(sizeCvs);
        geoVals.push_back(g);
        geo.push_back(fmtDouble(g, 4));
    }
    table.addRow(geo);
    printTable(std::cout,
               "Figure 5: std/mean of 30 runs per input size",
               table);

    // The Takeaway 1 shape check: tiny > large, mega > super.
    std::cout << "Takeaway 1 shape: tiny/large cv ratio = "
              << fmtDouble(geoVals[0] / geoVals[3], 2)
              << " (expect > 1), mega/super cv ratio = "
              << fmtDouble(geoVals[5] / geoVals[4], 2)
              << " (expect > 1)\n";
}

} // namespace

int
main(int argc, char **argv)
{
    registerAllWorkloads();
    benchmark::RegisterBenchmark(
        "fig5/cv_geomean_large", [](benchmark::State &state) {
            double cv = 0.0;
            for (auto _ : state)
                cv = meanCv("vector_seq", SizeClass::Large);
            state.counters["cv"] = cv;
        })
        ->Iterations(1);
    return benchMain(argc, argv, report, prewarm);
}
