/**
 * @file
 * Ablation: driver-side demand prefetcher. The paper's `uvm`
 * configuration fault-pages everything; this bench enables the
 * simulator's stream and tree prefetchers on the demand path and
 * shows how much of the uvm_prefetch gap speculation can close — and
 * that irregular workloads defeat it (the Takeaway 2 mechanism).
 */

#include <iostream>

#include "common/bench_common.hh"

using namespace uvmasync;
using namespace uvmasync::bench;

namespace
{

const std::vector<std::pair<PrefetcherKind, const char *>> kKinds = {
    {PrefetcherKind::None, "none"},
    {PrefetcherKind::Stream, "stream"},
    {PrefetcherKind::Tree, "tree"},
};

ExperimentResult
runWith(PrefetcherKind kind, const std::string &workload)
{
    SystemConfig cfg = SystemConfig::a100Epyc();
    cfg.uvm.demandPrefetcher = kind;
    Experiment experiment(cfg);
    ExperimentOptions opts;
    opts.size = SizeClass::Super;
    opts.runs = 3;
    return experiment.run(workload, TransferMode::Uvm, opts);
}

void
report()
{
    TextTable table({"workload", "prefetcher", "gpu_kernel",
                     "overall", "faults", "prefetch accuracy"});
    for (const char *workload :
         {"vector_seq", "vector_rand", "lud"}) {
        for (const auto &[kind, name] : kKinds) {
            SystemConfig cfg = SystemConfig::a100Epyc();
            cfg.uvm.demandPrefetcher = kind;
            Experiment experiment(cfg);
            ExperimentOptions opts;
            opts.size = SizeClass::Super;
            opts.runs = 3;

            // Re-run through a device we can interrogate.
            Device device(cfg);
            Job job = WorkloadRegistry::instance()
                          .get(workload)
                          .makeJob(opts.size);
            RunResult run = device.run(job, TransferMode::Uvm);
            table.addRow(
                {workload, name, fmtTime(run.breakdown.kernelPs),
                 fmtTime(run.breakdown.overallPs()),
                 fmtCount(static_cast<double>(run.counters.faults)),
                 fmtDouble(
                     device.migrationEngine().prefetcher().accuracy(),
                     3)});
        }
        table.addSeparator();
    }
    printTable(std::cout,
               "Ablation: demand-path prefetcher under plain uvm",
               table);
    std::cout << "Expected shape: sequential workloads fault less "
                 "with speculation; random/irregular access defeats "
                 "it (low accuracy, little fault reduction).\n";
}

} // namespace

int
main(int argc, char **argv)
{
    registerAllWorkloads();
    for (const auto &[kind, name] : kKinds) {
        std::string bname =
            std::string("ablation/prefetcher/") + name;
        PrefetcherKind k = kind;
        benchmark::RegisterBenchmark(
            bname.c_str(), [k](benchmark::State &state) {
                ExperimentResult res = runWith(k, "vector_seq");
                for (auto _ : state)
                    state.SetIterationTime(
                        res.meanBreakdown().overallPs() / 1e12);
                state.counters["faults"] = static_cast<double>(
                    res.counters.faults);
            })
            ->UseManualTime()
            ->Unit(benchmark::kMillisecond)
            ->Iterations(1);
    }
    return benchMain(argc, argv, report);
}
