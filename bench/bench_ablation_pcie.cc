/**
 * @file
 * Ablation: interconnect generation. Sweeps the raw link bandwidth
 * (PCIe 3.0 / 4.0 / 5.0 / NVLink-class) and reports how the benefit
 * of uvm_prefetch(+async) over standard shifts — faster links shrink
 * the transfer component that UVM prefetch attacks, moving the
 * bottleneck to allocation (the Section 6 motivation).
 */

#include <iostream>

#include "common/bench_common.hh"

using namespace uvmasync;
using namespace uvmasync::bench;

namespace
{

const std::vector<std::pair<double, const char *>> kLinks = {
    {13.0, "PCIe 3.0 x16"},
    {26.0, "PCIe 4.0 x16"},
    {52.0, "PCIe 5.0 x16"},
    {200.0, "NVLink-class"},
};

ModeSet
runWith(double gbps)
{
    SystemConfig cfg = SystemConfig::a100Epyc();
    cfg.pcie.rawBandwidth = Bandwidth::fromGBps(gbps);
    Experiment experiment(cfg);
    ExperimentOptions opts;
    opts.size = SizeClass::Super;
    opts.runs = 3;
    return experiment.runAllModes("vector_seq", opts);
}

void
report()
{
    TextTable table({"link", "standard overall",
                     "uvm_prefetch gain",
                     "uvm_prefetch_async gain",
                     "transfer share (standard)"});
    table.setAlign(0, TextTable::Align::Left);
    for (const auto &[gbps, name] : kLinks) {
        ModeSet set = runWith(gbps);
        TimeBreakdown base =
            findMode(set, TransferMode::Standard).meanBreakdown();
        double prefetch =
            findMode(set, TransferMode::UvmPrefetch)
                .meanBreakdown()
                .overallPs();
        double combo =
            findMode(set, TransferMode::UvmPrefetchAsync)
                .meanBreakdown()
                .overallPs();
        table.addRow(
            {name, fmtTime(base.overallPs()),
             fmtPercent(1.0 - prefetch / base.overallPs()),
             fmtPercent(1.0 - combo / base.overallPs()),
             fmtPercent(base.transferPs / base.overallPs())});
    }
    printTable(std::cout,
               "Ablation: interconnect bandwidth vs UVM benefit "
               "(vector_seq, Super)",
               table);
    std::cout << "Expected shape: the UVM-prefetch gain shrinks as "
                 "the link speeds up, leaving allocation as the "
                 "bottleneck the Section 6 inter-job model targets.\n";
}

} // namespace

int
main(int argc, char **argv)
{
    registerAllWorkloads();
    for (const auto &[gbps, name] : kLinks) {
        std::string bname = std::string("ablation/pcie/") +
                            std::to_string(static_cast<int>(gbps)) +
                            "GBps";
        double g = gbps;
        benchmark::RegisterBenchmark(
            bname.c_str(), [g](benchmark::State &state) {
                ModeSet set = runWith(g);
                double t =
                    findMode(set, TransferMode::UvmPrefetchAsync)
                        .meanBreakdown()
                        .overallPs();
                for (auto _ : state)
                    state.SetIterationTime(t / 1e12);
            })
            ->UseManualTime()
            ->Unit(benchmark::kMillisecond)
            ->Iterations(1);
    }
    return benchMain(argc, argv, report);
}
