/**
 * @file
 * Figure 8: the 14 real-world applications at Super input size under
 * the five configurations, normalized to standard, plus the
 * Section 4.1.2 / abstract headline numbers (21% gain with UVM
 * prefetch, 23% with prefetch + async memcpy) paper-vs-measured.
 */

#include <iostream>

#include "common/bench_common.hh"
#include "core/paper_targets.hh"

using namespace uvmasync;
using namespace uvmasync::bench;

namespace
{

const std::vector<std::string> &
appNames()
{
    static const std::vector<std::string> names =
        WorkloadRegistry::instance().names(WorkloadSuite::App);
    return names;
}

ExperimentOptions
superOpts()
{
    ExperimentOptions opts;
    opts.size = SizeClass::Super;
    opts.runs = 30;
    return opts;
}

void
report()
{
    std::vector<ModeSet> apps;
    ModeSet lud;
    for (const std::string &name : appNames()) {
        apps.push_back(
            ResultCache::instance().getAllModes(name, superOpts()));
        if (name == "lud")
            lud = apps.back();
    }

    printTable(std::cout, "Figure 8: real-world applications, Super "
                          "input (normalized to standard)",
               breakdownTable(apps));

    double ludAsyncOverUvm =
        findMode(lud, TransferMode::UvmPrefetch)
            .meanBreakdown()
            .overallPs() /
        findMode(lud, TransferMode::Async).meanBreakdown().overallPs();

    std::vector<ComparisonRow> rows = {
        {"async overall gain (geomean)", paper::appsAsyncGain,
         geomeanImprovement(apps, TransferMode::Async)},
        {"uvm overall gain (geomean)", paper::appsUvmGain,
         geomeanImprovement(apps, TransferMode::Uvm)},
        {"uvm_prefetch overall gain (geomean)",
         paper::appsUvmPrefetchGain,
         geomeanImprovement(apps, TransferMode::UvmPrefetch)},
        {"uvm_prefetch_async overall gain (geomean)",
         paper::appsUvmPrefetchAsyncGain,
         geomeanImprovement(apps, TransferMode::UvmPrefetchAsync)},
        {"uvm memcpy saving (geomean)", paper::appsUvmTransferSaving,
         geomeanComponentSaving(apps, TransferMode::Uvm, 1)},
        {"uvm_prefetch memcpy saving (geomean)",
         paper::appsUvmPrefetchTransferSaving,
         geomeanComponentSaving(apps, TransferMode::UvmPrefetch, 1)},
        {"uvm_prefetch_async memcpy saving (geomean)",
         paper::appsUvmPrefetchAsyncTransferSaving,
         geomeanComponentSaving(apps, TransferMode::UvmPrefetchAsync,
                                1)},
        {"uvm_prefetch kernel-time increase (geomean)",
         paper::appsUvmPrefetchKernelIncrease,
         -geomeanComponentSaving(apps, TransferMode::UvmPrefetch, 2)},
        {"uvm_prefetch_async kernel-time increase (geomean)",
         paper::appsUvmPrefetchAsyncKernelIncrease,
         -geomeanComponentSaving(apps, TransferMode::UvmPrefetchAsync,
                                 2)},
        {"lud: async speedup over uvm_prefetch (x, -1)",
         paper::ludAsyncOverUvmSpeedup - 1.0, ludAsyncOverUvm - 1.0},
    };
    printTable(std::cout,
               "Section 4.1.2 / abstract headline numbers "
               "(paper vs measured)",
               comparisonTable(rows));
}

} // namespace

void
prewarm()
{
    // The whole 14-app x 5-mode grid as one parallel batch.
    ResultCache::instance().prefetchGrid(appNames(), superOpts());
}

int
main(int argc, char **argv)
{
    registerAllWorkloads();
    registerModeBenchmarks("fig8/super", appNames(), superOpts());
    return benchMain(argc, argv, report, prewarm);
}
