/**
 * @file
 * Figure 14 / Section 6: the proposed inter-job data-transfer model.
 * Reproduces the discussion's bookkeeping — component shares before
 * (standard) and after (uvm_prefetch_async) across the app suite —
 * then schedules a batch of jobs under the overlapped model and
 * reports the projected gain (the paper estimates "more than 30%").
 */

#include <iostream>

#include "common/bench_common.hh"
#include "core/batch_pipeline.hh"
#include "core/paper_targets.hh"

using namespace uvmasync;
using namespace uvmasync::bench;

namespace
{

ExperimentOptions
superOpts()
{
    ExperimentOptions opts;
    opts.size = SizeClass::Super;
    opts.runs = 5;
    return opts;
}

struct Shares
{
    double alloc = 0.0;
    double transfer = 0.0;
    double kernel = 0.0;
};

Shares
averageShares(TransferMode mode)
{
    Shares shares;
    auto names =
        WorkloadRegistry::instance().names(WorkloadSuite::App);
    for (const std::string &name : names) {
        const ExperimentResult &res =
            ResultCache::instance().get(name, mode, superOpts());
        TimeBreakdown mean = res.meanBreakdown();
        double total = mean.overallPs();
        shares.alloc += mean.allocPs / total;
        shares.transfer += mean.transferPs / total;
        shares.kernel += mean.kernelPs / total;
    }
    auto n = static_cast<double>(names.size());
    shares.alloc /= n;
    shares.transfer /= n;
    shares.kernel /= n;
    return shares;
}

void
report()
{
    Shares before = averageShares(TransferMode::Standard);
    Shares after = averageShares(TransferMode::UvmPrefetchAsync);

    TextTable table({"component", "standard", "uvm_prefetch_async"});
    table.addRow({"data transfer", fmtPercent(before.transfer),
                  fmtPercent(after.transfer)});
    table.addRow({"data allocation", fmtPercent(before.alloc),
                  fmtPercent(after.alloc)});
    table.addRow({"gpu kernel", fmtPercent(before.kernel),
                  fmtPercent(after.kernel)});
    printTable(std::cout,
               "Section 6.1: average component shares across the 14 "
               "applications",
               table);

    std::vector<ComparisonRow> shareRows = {
        {"transfer share before", paper::transferShareBefore,
         before.transfer},
        {"transfer share after", paper::transferShareAfter,
         after.transfer},
        {"allocation share before", paper::allocShareBefore,
         before.alloc},
        {"allocation share after", paper::allocShareAfter,
         after.alloc},
    };
    printTable(std::cout,
               "Section 6.1 shares (paper vs measured)",
               comparisonTable(shareRows));

    // Schedule a batch of uvm_prefetch_async jobs under the
    // inter-job pipeline (Figure 14).
    std::vector<TimeBreakdown> batch;
    for (const std::string &name :
         WorkloadRegistry::instance().names(WorkloadSuite::App)) {
        batch.push_back(ResultCache::instance()
                            .get(name, TransferMode::UvmPrefetchAsync,
                                 superOpts())
                            .meanBreakdown());
    }
    BatchScheduleResult sched = scheduleBatch(batch);

    TextTable pipeline({"model", "batch makespan", "improvement"});
    pipeline.addRow({"current (serial jobs)",
                     fmtTime(sched.serialPs), "-"});
    pipeline.addRow({"inter-job pipeline (Figure 14)",
                     fmtTime(sched.pipelinedPs),
                     fmtPercent(sched.improvement())});
    printTable(std::cout,
               "Figure 14: batch of 14 apps under the new data "
               "transfer model",
               pipeline);

    printTable(std::cout, "Section 6.2 headline (paper vs measured)",
               comparisonTable({{"inter-job pipeline gain",
                                 paper::interJobModelGain,
                                 sched.improvement()}}));

    // The Figure 14 chart itself (first four jobs for legibility).
    std::vector<TimeBreakdown> head(
        batch.begin(), batch.begin() + std::min<std::size_t>(
                                           4, batch.size()));
    BatchTimelines charts = buildBatchTimelines(head);
    std::cout << "\nFigure 14 (top): current model, jobs back to "
                 "back\n"
              << charts.serial.gantt() << "\n";
    std::cout << "Figure 14 (bottom): inter-job pipeline\n"
              << charts.pipelined.gantt();
}

} // namespace

void
prewarm()
{
    // Both per-mode grids used by the report, as parallel batches.
    ResultCache::instance().prefetchGrid(
        WorkloadRegistry::instance().names(WorkloadSuite::App),
        superOpts());
}

int
main(int argc, char **argv)
{
    registerAllWorkloads();
    benchmark::RegisterBenchmark(
        "fig14/batch_pipeline", [](benchmark::State &state) {
            std::vector<TimeBreakdown> batch(
                8, TimeBreakdown{4e9, 2e9, 4e9});
            BatchScheduleResult sched;
            for (auto _ : state) {
                sched = scheduleBatch(batch);
                benchmark::DoNotOptimize(sched);
            }
            state.counters["improvement"] = sched.improvement();
        });
    return benchMain(argc, argv, report, prewarm);
}
