/**
 * @file
 * Figure 6: per-run execution-time breakdown of vector_seq at the
 * Mega input size (30 runs, standard setup). Allocation and kernel
 * stay flat while memcpy varies — the DRAM-module straddle effect.
 */

#include <iostream>

#include "common/bench_common.hh"

using namespace uvmasync;
using namespace uvmasync::bench;

namespace
{

const ExperimentResult &
megaRuns()
{
    ExperimentOptions opts;
    opts.size = SizeClass::Mega;
    opts.runs = 30;
    return ResultCache::instance().get("vector_seq",
                                       TransferMode::Standard, opts);
}

void
report()
{
    const ExperimentResult &res = megaRuns();
    TextTable table({"run", "gpu_kernel", "memcpy", "allocation",
                     "overall"});
    for (std::size_t i = 0; i < res.runs.size(); ++i) {
        const TimeBreakdown &b = res.runs[i];
        table.addRow({std::to_string(i), fmtTime(b.kernelPs),
                      fmtTime(b.transferPs), fmtTime(b.allocPs),
                      fmtTime(b.overallPs())});
    }
    printTable(std::cout,
               "Figure 6: per-run breakdown, vector_seq Mega "
               "(30 runs, standard)",
               table);

    // Component-wise variability: memcpy should dominate the noise.
    SampleSet alloc, memcpy_s, kernel;
    for (const TimeBreakdown &b : res.runs) {
        alloc.add(b.allocPs);
        memcpy_s.add(b.transferPs);
        kernel.add(b.kernelPs);
    }
    TextTable cv({"component", "std/mean"});
    cv.addRow({"gpu_kernel", fmtDouble(kernel.cv(), 4)});
    cv.addRow({"memcpy", fmtDouble(memcpy_s.cv(), 4)});
    cv.addRow({"allocation", fmtDouble(alloc.cv(), 4)});
    printTable(std::cout,
               "Figure 6 root cause: memcpy is the unstable "
               "component",
               cv);
}

} // namespace

int
main(int argc, char **argv)
{
    registerAllWorkloads();
    benchmark::RegisterBenchmark(
        "fig6/vector_seq_mega_standard",
        [](benchmark::State &state) {
            const ExperimentResult &res = megaRuns();
            for (auto _ : state)
                state.SetIterationTime(
                    res.meanBreakdown().overallPs() / 1e12);
        })
        ->UseManualTime()
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1);
    return benchMain(argc, argv, report);
}
