/**
 * @file
 * Shared machinery of the per-figure bench binaries.
 *
 * Each binary registers one google-benchmark case per experiment cell
 * and reports the *simulated* time as manual time (the host wall time
 * of the simulator is irrelevant to the paper's metrics). Results are
 * memoised so that the figure tables printed after the benchmark run
 * reuse the same data.
 */

#ifndef UVMASYNC_BENCH_COMMON_HH
#define UVMASYNC_BENCH_COMMON_HH

#include <benchmark/benchmark.h>

#include <map>
#include <string>
#include <vector>

#include "core/experiment.hh"
#include "core/report.hh"
#include "workloads/registry.hh"

namespace uvmasync
{
namespace bench
{

/**
 * Memoised experiment runner shared by the registered benchmarks and
 * the post-run report.
 */
class ResultCache
{
  public:
    static ResultCache &instance();

    /** Experiment driver (default A100/EPYC testbed). */
    Experiment &experiment() { return experiment_; }

    /** Run (or fetch) one cell. */
    const ExperimentResult &get(const std::string &workload,
                                TransferMode mode,
                                const ExperimentOptions &opts);

    /** Run (or fetch) all five modes of one workload. */
    ModeSet getAllModes(const std::string &workload,
                        const ExperimentOptions &opts);

  private:
    ResultCache();

    static std::string key(const std::string &workload,
                           TransferMode mode,
                           const ExperimentOptions &opts);

    Experiment experiment_;
    std::map<std::string, ExperimentResult> cache_;
};

/**
 * Register one benchmark per (workload, mode): manual time = mean
 * simulated overall time; counters expose the breakdown fractions.
 */
void registerModeBenchmarks(const std::string &prefix,
                            const std::vector<std::string> &workloads,
                            const ExperimentOptions &opts);

/**
 * Standard bench main body: runs benchmarks, then calls @p report to
 * print the figure's tables. Returns the process exit code.
 */
int benchMain(int argc, char **argv, void (*report)());

} // namespace bench
} // namespace uvmasync

#endif // UVMASYNC_BENCH_COMMON_HH
