/**
 * @file
 * Shared machinery of the per-figure bench binaries.
 *
 * Each binary registers one google-benchmark case per experiment cell
 * and reports the *simulated* time as manual time (the host wall time
 * of the simulator is irrelevant to the paper's metrics). Results are
 * memoised so that the figure tables printed after the benchmark run
 * reuse the same data.
 */

#ifndef UVMASYNC_BENCH_COMMON_HH
#define UVMASYNC_BENCH_COMMON_HH

#include <benchmark/benchmark.h>

#include <map>
#include <string>
#include <vector>

#include "core/experiment.hh"
#include "core/report.hh"
#include "workloads/registry.hh"

namespace uvmasync
{
namespace bench
{

/**
 * Memoised experiment runner shared by the registered benchmarks and
 * the post-run report.
 */
class ResultCache
{
  public:
    static ResultCache &instance();

    /** Experiment driver (default A100/EPYC testbed). */
    Experiment &experiment() { return experiment_; }

    /** Run (or fetch) one cell. */
    const ExperimentResult &get(const std::string &workload,
                                TransferMode mode,
                                const ExperimentOptions &opts);

    /** Run (or fetch) all five modes of one workload. */
    ModeSet getAllModes(const std::string &workload,
                        const ExperimentOptions &opts);

    /**
     * Run every missing (workload x mode) cell of a figure's grid as
     * one batch through the parallel engine (globalJobs() workers)
     * and fill the cache. Results are identical to cell-by-cell
     * serial runs; only the wall time changes.
     */
    void prefetchGrid(const std::vector<std::string> &workloads,
                      const ExperimentOptions &opts);

    /** Engine metrics accumulated over all parallel batches so far. */
    const BatchMetrics &engineMetrics() const { return engine_; }

  private:
    ResultCache();

    static std::string key(const std::string &workload,
                           TransferMode mode,
                           const ExperimentOptions &opts);

    /** Run @p points through the engine and cache the results. */
    void runBatch(const std::vector<ExperimentPoint> &points);

    Experiment experiment_;
    std::map<std::string, ExperimentResult> cache_;
    BatchMetrics engine_;
};

/**
 * Register one benchmark per (workload, mode): manual time = mean
 * simulated overall time; counters expose the breakdown fractions.
 */
void registerModeBenchmarks(const std::string &prefix,
                            const std::vector<std::string> &workloads,
                            const ExperimentOptions &opts);

/**
 * Standard bench main body: parses and strips `--jobs N` (also
 * honouring the UVMASYNC_JOBS environment variable) into
 * setGlobalJobs(), calls the optional @p prewarm hook — typically a
 * ResultCache::prefetchGrid() that runs the figure's whole grid as
 * one parallel batch — runs the benchmarks, then calls @p report to
 * print the figure's tables followed by the engine's batch metrics.
 * Returns the process exit code.
 */
int benchMain(int argc, char **argv, void (*report)(),
              void (*prewarm)() = nullptr);

} // namespace bench
} // namespace uvmasync

#endif // UVMASYNC_BENCH_COMMON_HH
