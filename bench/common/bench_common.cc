#include "common/bench_common.hh"

#include <cstdio>

namespace uvmasync
{
namespace bench
{

ResultCache &
ResultCache::instance()
{
    static ResultCache cache;
    return cache;
}

ResultCache::ResultCache() : experiment_(SystemConfig::a100Epyc())
{
    registerAllWorkloads();
}

std::string
ResultCache::key(const std::string &workload, TransferMode mode,
                 const ExperimentOptions &opts)
{
    return workload + "/" + transferModeName(mode) + "/" +
           sizeClassName(opts.size) + "/r" +
           std::to_string(opts.runs) + "/c" +
           std::to_string(opts.sharedCarveout) + "/b" +
           std::to_string(opts.geometry.gridBlocks) + "/t" +
           std::to_string(opts.geometry.threadsPerBlock) + "/s" +
           std::to_string(opts.baseSeed);
}

const ExperimentResult &
ResultCache::get(const std::string &workload, TransferMode mode,
                 const ExperimentOptions &opts)
{
    std::string k = key(workload, mode, opts);
    auto it = cache_.find(k);
    if (it == cache_.end())
        it = cache_.emplace(k, experiment_.run(workload, mode, opts))
                 .first;
    return it->second;
}

ModeSet
ResultCache::getAllModes(const std::string &workload,
                         const ExperimentOptions &opts)
{
    ModeSet set;
    set.reserve(allTransferModes.size());
    for (TransferMode mode : allTransferModes)
        set.push_back(get(workload, mode, opts));
    return set;
}

void
registerModeBenchmarks(const std::string &prefix,
                       const std::vector<std::string> &workloads,
                       const ExperimentOptions &opts)
{
    for (const std::string &workload : workloads) {
        for (TransferMode mode : allTransferModes) {
            std::string name = prefix + "/" + workload + "/" +
                               transferModeName(mode);
            benchmark::RegisterBenchmark(
                name.c_str(),
                [workload, mode, opts](benchmark::State &state) {
                    const ExperimentResult &res =
                        ResultCache::instance().get(workload, mode,
                                                    opts);
                    TimeBreakdown mean = res.meanBreakdown();
                    for (auto _ : state) {
                        state.SetIterationTime(mean.overallPs() /
                                               1e12);
                    }
                    state.counters["kernel_ms"] =
                        mean.kernelPs / 1e9;
                    state.counters["memcpy_ms"] =
                        mean.transferPs / 1e9;
                    state.counters["alloc_ms"] = mean.allocPs / 1e9;
                    state.counters["faults"] = static_cast<double>(
                        res.counters.faults);
                })
                ->UseManualTime()
                ->Unit(benchmark::kMillisecond)
                ->Iterations(1);
        }
    }
}

int
benchMain(int argc, char **argv, void (*report)())
{
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    if (report)
        report();
    return 0;
}

} // namespace bench
} // namespace uvmasync
