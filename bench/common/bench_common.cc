#include "common/bench_common.hh"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>

namespace uvmasync
{
namespace bench
{

namespace
{

/**
 * Find and strip `--jobs N` / `--jobs=N` from argv (google-benchmark
 * rejects flags it does not know) and feed it to setGlobalJobs().
 */
void
parseJobsFlag(int &argc, char **argv)
{
    int out = 1;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        std::string value;
        if (arg == "--jobs" && i + 1 < argc) {
            value = argv[++i];
        } else if (arg.rfind("--jobs=", 0) == 0) {
            value = arg.substr(7);
        } else {
            argv[out++] = argv[i];
            continue;
        }
        unsigned long jobs = std::strtoul(value.c_str(), nullptr, 10);
        if (jobs == 0) {
            std::fprintf(stderr, "--jobs needs a positive count\n");
            std::exit(1);
        }
        setGlobalJobs(static_cast<unsigned>(jobs));
    }
    argc = out;
    argv[argc] = nullptr;
}

} // namespace

ResultCache &
ResultCache::instance()
{
    static ResultCache cache;
    return cache;
}

ResultCache::ResultCache() : experiment_(SystemConfig::a100Epyc())
{
    registerAllWorkloads();
}

std::string
ResultCache::key(const std::string &workload, TransferMode mode,
                 const ExperimentOptions &opts)
{
    return workload + "/" + transferModeName(mode) + "/" +
           sizeClassName(opts.size) + "/r" +
           std::to_string(opts.runs) + "/c" +
           std::to_string(opts.sharedCarveout) + "/b" +
           std::to_string(opts.geometry.gridBlocks) + "/t" +
           std::to_string(opts.geometry.threadsPerBlock) + "/s" +
           std::to_string(opts.baseSeed);
}

const ExperimentResult &
ResultCache::get(const std::string &workload, TransferMode mode,
                 const ExperimentOptions &opts)
{
    std::string k = key(workload, mode, opts);
    auto it = cache_.find(k);
    if (it == cache_.end())
        it = cache_.emplace(k, experiment_.run(workload, mode, opts))
                 .first;
    return it->second;
}

void
ResultCache::runBatch(const std::vector<ExperimentPoint> &points)
{
    if (points.empty())
        return;
    ParallelRunner runner(experiment_.system());
    BatchResult batch = runner.runPoints(points);
    std::vector<ExperimentResult> results = batch.results();
    for (std::size_t i = 0; i < points.size(); ++i) {
        cache_.emplace(key(points[i].workload, points[i].mode,
                           points[i].opts),
                       std::move(results[i]));
    }
    engine_.jobs = std::max(engine_.jobs, batch.metrics.jobs);
    engine_.points += batch.metrics.points;
    engine_.wallMs += batch.metrics.wallMs;
    engine_.busyMs += batch.metrics.busyMs;
    engine_.steals += batch.metrics.steals;
    engine_.pointsPerSec =
        engine_.wallMs > 0.0
            ? static_cast<double>(engine_.points) /
                  (engine_.wallMs / 1e3)
            : 0.0;
}

ModeSet
ResultCache::getAllModes(const std::string &workload,
                         const ExperimentOptions &opts)
{
    // Run whichever of the five cells are missing as one batch.
    std::vector<ExperimentPoint> missing;
    for (TransferMode mode : allTransferModes) {
        if (!cache_.count(key(workload, mode, opts)))
            missing.push_back(ExperimentPoint{workload, mode, opts});
    }
    runBatch(missing);

    ModeSet set;
    set.reserve(allTransferModes.size());
    for (TransferMode mode : allTransferModes)
        set.push_back(get(workload, mode, opts));
    return set;
}

void
ResultCache::prefetchGrid(const std::vector<std::string> &workloads,
                          const ExperimentOptions &opts)
{
    std::vector<ExperimentPoint> missing;
    for (const std::string &workload : workloads) {
        for (TransferMode mode : allTransferModes) {
            if (!cache_.count(key(workload, mode, opts)))
                missing.push_back(
                    ExperimentPoint{workload, mode, opts});
        }
    }
    runBatch(missing);
}

void
registerModeBenchmarks(const std::string &prefix,
                       const std::vector<std::string> &workloads,
                       const ExperimentOptions &opts)
{
    for (const std::string &workload : workloads) {
        for (TransferMode mode : allTransferModes) {
            std::string name = prefix + "/" + workload + "/" +
                               transferModeName(mode);
            benchmark::RegisterBenchmark(
                name.c_str(),
                [workload, mode, opts](benchmark::State &state) {
                    const ExperimentResult &res =
                        ResultCache::instance().get(workload, mode,
                                                    opts);
                    TimeBreakdown mean = res.meanBreakdown();
                    for (auto _ : state) {
                        state.SetIterationTime(mean.overallPs() /
                                               1e12);
                    }
                    state.counters["kernel_ms"] =
                        mean.kernelPs / 1e9;
                    state.counters["memcpy_ms"] =
                        mean.transferPs / 1e9;
                    state.counters["alloc_ms"] = mean.allocPs / 1e9;
                    state.counters["faults"] = static_cast<double>(
                        res.counters.faults);
                })
                ->UseManualTime()
                ->Unit(benchmark::kMillisecond)
                ->Iterations(1);
        }
    }
}

int
benchMain(int argc, char **argv, void (*report)(),
          void (*prewarm)())
{
    parseJobsFlag(argc, argv);
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    if (prewarm)
        prewarm();
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    if (report)
        report();
    const BatchMetrics &engine =
        ResultCache::instance().engineMetrics();
    if (engine.points > 0) {
        printTable(std::cout, "Parallel engine (host-side metrics)",
                   parallelMetricsTable(engine));
    }
    return 0;
}

} // namespace bench
} // namespace uvmasync
