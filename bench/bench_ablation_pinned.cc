/**
 * @file
 * Ablation: pinned host memory. The paper's explicit `standard`
 * setup copies from pageable malloc'd memory (staged through pinned
 * bounce buffers). This bench adds the cudaHostAlloc variant — the
 * classic alternative to UVM prefetch — and shows how much of
 * uvm_prefetch's transfer advantage simple pinning recovers, at the
 * cost of page-locked host memory.
 */

#include <iostream>

#include "common/bench_common.hh"

using namespace uvmasync;
using namespace uvmasync::bench;

namespace
{

struct Row
{
    double pageable;
    double pinned;
    double prefetch;
};

Row
runOne(const std::string &workload)
{
    registerAllWorkloads();
    Job job = WorkloadRegistry::instance().get(workload).makeJob(
        SizeClass::Super);

    Row row{};
    Device device(SystemConfig::a100Epyc());
    RunOptions opts;
    row.pageable = device.run(job, TransferMode::Standard, opts)
                       .breakdown.overallPs();
    opts.pinnedHost = true;
    row.pinned = device.run(job, TransferMode::Standard, opts)
                     .breakdown.overallPs();
    opts.pinnedHost = false;
    row.prefetch = device.run(job, TransferMode::UvmPrefetch, opts)
                       .breakdown.overallPs();
    return row;
}

const std::vector<std::string> kWorkloads = {
    "vector_seq", "saxpy", "2DCONV", "kmeans", "knn"};

void
report()
{
    TextTable table({"workload", "standard (pageable)",
                     "standard + pinned host", "uvm_prefetch"});
    for (const std::string &name : kWorkloads) {
        Row row = runOne(name);
        table.addRow({name, fmtTime(row.pageable),
                      fmtTime(row.pinned) + " (" +
                          fmtPercent(1.0 - row.pinned /
                                               row.pageable) +
                          ")",
                      fmtTime(row.prefetch) + " (" +
                          fmtPercent(1.0 - row.prefetch /
                                               row.pageable) +
                          ")"});
    }
    printTable(std::cout,
               "Ablation: pinned host memory vs UVM prefetch "
               "(Super, overall time; % = saving vs pageable)",
               table);
    std::cout
        << "Pinning recovers most of the transfer-time gap without "
           "managed memory, but keeps the programmer on explicit "
           "copies and page-locks host RAM — the trade-off UVM "
           "prefetch removes.\n";
}

} // namespace

int
main(int argc, char **argv)
{
    registerAllWorkloads();
    for (const std::string &name : kWorkloads) {
        std::string bname = "ablation/pinned/" + name;
        benchmark::RegisterBenchmark(
            bname.c_str(), [name](benchmark::State &state) {
                Row row = runOne(name);
                for (auto _ : state)
                    state.SetIterationTime(row.pinned / 1e12);
                state.counters["saving_vs_pageable"] =
                    1.0 - row.pinned / row.pageable;
            })
            ->UseManualTime()
            ->Unit(benchmark::kMillisecond)
            ->Iterations(1);
    }
    return benchMain(argc, argv, report);
}
