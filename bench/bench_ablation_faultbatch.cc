/**
 * @file
 * Ablation: UVM fault-batch size. The paper's related work (Kim et
 * al.) motivates batched fault handling; this bench sweeps the
 * driver's maximum batch size and shows how demand-paged (plain uvm)
 * kernel time responds on a streaming workload.
 */

#include <iostream>

#include "common/bench_common.hh"

using namespace uvmasync;
using namespace uvmasync::bench;

namespace
{

const std::vector<std::uint32_t> kBatchSizes = {1, 4, 16, 64, 256};

ExperimentResult
runWithBatch(std::uint32_t batchSize)
{
    SystemConfig cfg = SystemConfig::a100Epyc();
    cfg.uvm.fault.maxBatchSize = batchSize;
    // Fault-rate stress: migrate at the driver's 64 KiB basic-block
    // granularity so fault servicing, not the link, is on the
    // critical path (the regime batching was designed for).
    cfg.uvm.chunkBytes = kib(64);
    Experiment experiment(cfg);
    ExperimentOptions opts;
    opts.size = SizeClass::Super;
    opts.runs = 3;
    return experiment.run("vector_seq", TransferMode::Uvm, opts);
}

void
report()
{
    TextTable table({"max batch size", "gpu_kernel", "memcpy",
                     "overall", "faults"});
    for (std::uint32_t batch : kBatchSizes) {
        ExperimentResult res = runWithBatch(batch);
        TimeBreakdown mean = res.meanBreakdown();
        table.addRow({std::to_string(batch), fmtTime(mean.kernelPs),
                      fmtTime(mean.transferPs),
                      fmtTime(mean.overallPs()),
                      fmtCount(static_cast<double>(
                          res.counters.faults))});
    }
    printTable(std::cout,
               "Ablation: fault-batch size vs uvm performance "
               "(vector_seq, Super)",
               table);
    std::cout << "Expected shape: kernel time shrinks as batching "
                 "amortizes the per-batch driver latency, then "
                 "saturates once the PCIe drain dominates.\n";
}

} // namespace

int
main(int argc, char **argv)
{
    registerAllWorkloads();
    for (std::uint32_t batch : kBatchSizes) {
        std::string name =
            "ablation/fault_batch/" + std::to_string(batch);
        benchmark::RegisterBenchmark(
            name.c_str(), [batch](benchmark::State &state) {
                ExperimentResult res = runWithBatch(batch);
                for (auto _ : state)
                    state.SetIterationTime(
                        res.meanBreakdown().overallPs() / 1e12);
            })
            ->UseManualTime()
            ->Unit(benchmark::kMillisecond)
            ->Iterations(1);
    }
    return benchMain(argc, argv, report);
}
