/**
 * @file
 * Ablation: async memcpy API choice. The paper uses the CUDA
 * Pipeline API "since it showed better performance than Arrive/Wait
 * Barriers [Svedin et al.]" (Section 3.2.1). This bench models the
 * barrier variant with a heavier per-warp wait cost and quantifies
 * how much of the async benefit the API choice is worth.
 */

#include <iostream>

#include "common/bench_common.hh"

using namespace uvmasync;
using namespace uvmasync::bench;

namespace
{

const std::vector<std::pair<double, const char *>> kApis = {
    {1.0, "cuda::pipeline"},
    {1.9, "arrive/wait barrier"},
};

ModeSet
runWith(double waitMultiplier, const std::string &workload)
{
    SystemConfig cfg = SystemConfig::a100Epyc();
    cfg.gpu.asyncWaitMultiplier = waitMultiplier;
    Experiment experiment(cfg);
    ExperimentOptions opts;
    opts.size = SizeClass::Super;
    opts.runs = 3;
    return experiment.runAllModes(workload, opts);
}

void
report()
{
    TextTable table({"workload", "api", "async kernel",
                     "vs standard kernel",
                     "uvm_prefetch_async overall gain"});
    table.setAlign(1, TextTable::Align::Left);
    for (const char *workload :
         {"vector_seq", "vector_rand", "kmeans"}) {
        for (const auto &[mult, name] : kApis) {
            ModeSet set = runWith(mult, workload);
            double stdKernel =
                findMode(set, TransferMode::Standard).clean.kernelPs;
            double asyncKernel =
                findMode(set, TransferMode::Async).clean.kernelPs;
            double base = findMode(set, TransferMode::Standard)
                              .meanBreakdown()
                              .overallPs();
            double combo =
                findMode(set, TransferMode::UvmPrefetchAsync)
                    .meanBreakdown()
                    .overallPs();
            table.addRow({workload, name, fmtTime(asyncKernel),
                          fmtPercent(asyncKernel / stdKernel - 1.0),
                          fmtPercent(1.0 - combo / base)});
        }
        table.addSeparator();
    }
    printTable(std::cout,
               "Ablation: CUDA Pipeline API vs Arrive/Wait barriers "
               "(Super)",
               table);
    std::cout << "The barrier variant's heavier wait_group drain "
                 "erodes the async kernel savings — the reason the "
                 "paper's suite standardises on the Pipeline API.\n";
}

} // namespace

int
main(int argc, char **argv)
{
    registerAllWorkloads();
    for (const auto &[mult, name] : kApis) {
        std::string bname =
            std::string("ablation/async_api/") +
            (mult == 1.0 ? "pipeline" : "barrier");
        double m = mult;
        benchmark::RegisterBenchmark(
            bname.c_str(), [m](benchmark::State &state) {
                ModeSet set = runWith(m, "vector_seq");
                double t = findMode(set, TransferMode::Async)
                               .clean.kernelPs;
                for (auto _ : state)
                    state.SetIterationTime(t / 1e12);
            })
            ->UseManualTime()
            ->Unit(benchmark::kMillisecond)
            ->Iterations(1);
    }
    return benchMain(argc, argv, report);
}
