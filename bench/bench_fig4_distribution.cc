/**
 * @file
 * Figure 4: overall-execution-time distributions of the seven
 * microbenchmarks across the six input sizes, 30 runs per
 * configuration. Prints per-size mean / p5 / p95 across the five
 * setups, showing the stability window (Large/Super stable, Mega
 * noisy again).
 */

#include <iostream>

#include "common/bench_common.hh"

using namespace uvmasync;
using namespace uvmasync::bench;

namespace
{

const std::vector<std::string> &
microNames()
{
    static const std::vector<std::string> names =
        WorkloadRegistry::instance().names(WorkloadSuite::Micro);
    return names;
}

ExperimentOptions
optsFor(SizeClass size)
{
    ExperimentOptions opts;
    opts.size = size;
    opts.runs = 30;
    return opts;
}

void
report()
{
    for (SizeClass size : allSizeClasses) {
        TextTable table({"workload", "mode", "mean", "p5", "p95",
                         "std/mean"});
        for (const std::string &name : microNames()) {
            ModeSet set = ResultCache::instance().getAllModes(
                name, optsFor(size));
            for (const ExperimentResult &res : set) {
                SampleSet samples = res.overallSamples();
                table.addRow({name, transferModeName(res.mode),
                              fmtTime(samples.mean()),
                              fmtTime(samples.percentile(5.0)),
                              fmtTime(samples.percentile(95.0)),
                              fmtDouble(samples.cv(), 4)});
            }
            table.addSeparator();
        }
        printTable(std::cout,
                   std::string("Figure 4: execution-time "
                               "distribution, ") +
                       sizeClassName(size) + " input (30 runs)",
                   table);
    }
}

} // namespace

int
main(int argc, char **argv)
{
    registerAllWorkloads();
    for (SizeClass size : allSizeClasses) {
        registerModeBenchmarks(std::string("fig4/") +
                                   sizeClassName(size),
                               microNames(), optsFor(size));
    }
    return benchMain(argc, argv, report);
}
