/**
 * @file
 * Table 3: the Tiny..Mega parameter configurations (memory targets
 * and 1D/2D/3D reference dimensions).
 */

#include <iostream>

#include "common/bench_common.hh"

using namespace uvmasync;
using namespace uvmasync::bench;

namespace
{

void
report()
{
    TextTable table({"class", "mem", "1D grid", "2D grid", "3D grid"});
    for (SizeClass s : allSizeClasses) {
        table.addRow({sizeClassName(s),
                      fmtBytes(static_cast<double>(sizeClassMem(s))),
                      fmtCount(static_cast<double>(grid1d(s))),
                      std::to_string(grid2d(s)) + "^2",
                      std::to_string(grid3d(s)) + "^3"});
    }
    printTable(std::cout, "Table 3: parameter configurations", table);
}

} // namespace

int
main(int argc, char **argv)
{
    registerAllWorkloads();
    benchmark::RegisterBenchmark(
        "table3/size_lookup", [](benchmark::State &state) {
            for (auto _ : state) {
                for (SizeClass s : allSizeClasses) {
                    benchmark::DoNotOptimize(sizeClassMem(s));
                    benchmark::DoNotOptimize(grid1d(s));
                }
            }
        });
    return benchMain(argc, argv, report);
}
