/**
 * @file
 * Figure 13: sensitivity of vector_seq to the L1-cache/shared-memory
 * partition (2 KiB -> 128 KiB carveout). Expected shape (Takeaway 5):
 * too little shared memory starves the async pipeline; too much
 * shrinks L1 and hurts the UVM configurations.
 */

#include <iostream>

#include "common/bench_common.hh"
#include "core/sweep.hh"

using namespace uvmasync;
using namespace uvmasync::bench;

namespace
{

const std::vector<Bytes> kCarveouts = {kib(2), kib(4), kib(8),
                                       kib(16), kib(32), kib(64),
                                       kib(128)};

std::vector<SweepPoint> &
sweepPoints()
{
    static std::vector<SweepPoint> points = [] {
        Sweep sweep(ResultCache::instance().experiment());
        ExperimentOptions opts;
        opts.size = SizeClass::Super;
        opts.runs = 5;
        return sweep.sharedMemSweep("vector_seq", kCarveouts, opts);
    }();
    return points;
}

double
kernelOf(const SweepPoint &p, TransferMode m)
{
    return findMode(p.modes, m).clean.kernelPs;
}

void
report()
{
    TextTable table({"shared mem", "standard", "async", "uvm",
                     "uvm_prefetch", "uvm_prefetch_async"});
    double ref = 0.0;
    for (const SweepPoint &point : sweepPoints()) {
        double base = findMode(point.modes, TransferMode::Standard)
                          .meanBreakdown()
                          .overallPs();
        if (ref == 0.0)
            ref = base;
        std::vector<std::string> row = {
            fmtBytes(static_cast<double>(point.value))};
        for (TransferMode m : allTransferModes) {
            double v =
                findMode(point.modes, m).meanBreakdown().overallPs();
            row.push_back(fmtDouble(v / ref, 3));
        }
        table.addRow(row);
    }
    printTable(std::cout,
               "Figure 13: vector_seq vs L1/shared partition "
               "(normalized to standard @2KiB)",
               table);

    // Takeaway 5 shape checks on kernel time.
    const SweepPoint &tiny = sweepPoints().front();   // 2 KiB
    const SweepPoint &mid = sweepPoints()[4];          // 32 KiB
    const SweepPoint &huge = sweepPoints().back();     // 128 KiB
    TextTable shape({"check", "value", "expectation"});
    shape.addRow({"async kernel @2KiB / @32KiB",
                  fmtDouble(kernelOf(tiny, TransferMode::Async) /
                                kernelOf(mid, TransferMode::Async),
                            2),
                  "> 1 (starved pipeline)"});
    shape.addRow(
        {"uvm_prefetch kernel @128KiB / @32KiB",
         fmtDouble(kernelOf(huge, TransferMode::UvmPrefetch) /
                       kernelOf(mid, TransferMode::UvmPrefetch),
                   2),
         "> 1 (L1 squeezed by UVM)"});
    shape.addRow(
        {"standard kernel @128KiB / @32KiB",
         fmtDouble(kernelOf(huge, TransferMode::Standard) /
                       kernelOf(mid, TransferMode::Standard),
                   2),
         "smaller increase than uvm_prefetch"});
    printTable(std::cout, "Takeaway 5 shape checks", shape);
}

} // namespace

int
main(int argc, char **argv)
{
    registerAllWorkloads();
    benchmark::RegisterBenchmark(
        "fig13/sharedmem_sweep", [](benchmark::State &state) {
            double total = 0.0;
            for (const SweepPoint &p : sweepPoints()) {
                total += findMode(p.modes, TransferMode::Standard)
                             .meanBreakdown()
                             .overallPs();
            }
            for (auto _ : state)
                state.SetIterationTime(total / 1e12);
        })
        ->UseManualTime()
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1);
    return benchMain(argc, argv, report);
}
