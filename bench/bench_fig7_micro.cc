/**
 * @file
 * Figure 7: side-by-side comparison of the five data-transfer
 * configurations on the seven microbenchmarks at Large and Super
 * input sizes, with the execution time broken into gpu_kernel /
 * memcpy / allocation (normalized to standard). Also reproduces the
 * Section 4.1.1 headline numbers, printed paper-vs-measured.
 */

#include <iostream>

#include "common/bench_common.hh"
#include "core/paper_targets.hh"

using namespace uvmasync;
using namespace uvmasync::bench;

namespace
{

const std::vector<std::string> &
microNames()
{
    static const std::vector<std::string> names =
        WorkloadRegistry::instance().names(WorkloadSuite::Micro);
    return names;
}

ExperimentOptions
optsFor(SizeClass size)
{
    ExperimentOptions opts;
    opts.size = size;
    opts.runs = 30;
    return opts;
}

std::vector<ModeSet>
collect(SizeClass size)
{
    std::vector<ModeSet> all;
    for (const std::string &name : microNames())
        all.push_back(
            ResultCache::instance().getAllModes(name, optsFor(size)));
    return all;
}

/** Kernel-time change of @p mode vs standard for one workload. */
double
kernelChange(const ModeSet &set, TransferMode mode)
{
    double base =
        findMode(set, TransferMode::Standard).clean.kernelPs;
    double other = findMode(set, mode).clean.kernelPs;
    return relativeChange(other, base);
}

void
report()
{
    auto large = collect(SizeClass::Large);
    auto super = collect(SizeClass::Super);

    printTable(std::cout, "Figure 7a: microbenchmarks, Large input "
                          "(normalized to standard)",
               breakdownTable(large));
    printTable(std::cout, "Figure 7b: microbenchmarks, Super input "
                          "(normalized to standard)",
               breakdownTable(super));

    const ModeSet &vec = large[0]; // vector_seq is registered first
    ModeSet conv2d;
    ModeSet gemmSuper;
    for (std::size_t i = 0; i < microNames().size(); ++i) {
        if (microNames()[i] == "2DCONV")
            conv2d = large[i];
        if (microNames()[i] == "gemm")
            gemmSuper = super[i];
    }

    std::vector<ComparisonRow> rows = {
        {"async overall gain, Large (geomean)",
         paper::microAsyncGainLarge,
         geomeanImprovement(large, TransferMode::Async)},
        {"async overall gain, Super (geomean)",
         paper::microAsyncGainSuper,
         geomeanImprovement(super, TransferMode::Async)},
        {"uvm overall gain, Large (geomean)",
         paper::microUvmGainLarge,
         geomeanImprovement(large, TransferMode::Uvm)},
        {"uvm overall gain, Super (geomean)",
         paper::microUvmGainSuper,
         geomeanImprovement(super, TransferMode::Uvm)},
        {"uvm_prefetch overall gain, Large (geomean)",
         paper::microUvmPrefetchGainLarge,
         geomeanImprovement(large, TransferMode::UvmPrefetch)},
        {"uvm_prefetch overall gain, Super (geomean)",
         paper::microUvmPrefetchGainSuper,
         geomeanImprovement(super, TransferMode::UvmPrefetch)},
        {"uvm_prefetch_async overall gain, Super (geomean)",
         paper::microUvmPrefetchAsyncGainSuper,
         geomeanImprovement(super, TransferMode::UvmPrefetchAsync)},
        {"uvm memcpy saving, Large (geomean)",
         paper::microUvmTransferSavingLarge,
         geomeanComponentSaving(large, TransferMode::Uvm, 1)},
        {"uvm memcpy saving, Super (geomean)",
         paper::microUvmTransferSavingSuper,
         geomeanComponentSaving(super, TransferMode::Uvm, 1)},
        {"vector_seq async kernel-time change, Large",
         -paper::vectorSeqAsyncKernelSaving,
         kernelChange(vec, TransferMode::Async)},
        {"2DCONV async kernel-time change, Large",
         paper::conv2dAsyncKernelIncrease,
         kernelChange(conv2d, TransferMode::Async)},
        {"gemm uvm_prefetch_async kernel-time change, Super",
         paper::gemmPrefetchAsyncKernelIncrease,
         kernelChange(gemmSuper, TransferMode::UvmPrefetchAsync)},
    };
    printTable(std::cout,
               "Section 4.1.1 headline numbers (paper vs measured)",
               comparisonTable(rows));
}

} // namespace

void
prewarm()
{
    // Both 7-micro x 5-mode grids as parallel batches.
    ResultCache::instance().prefetchGrid(microNames(),
                                         optsFor(SizeClass::Large));
    ResultCache::instance().prefetchGrid(microNames(),
                                         optsFor(SizeClass::Super));
}

int
main(int argc, char **argv)
{
    registerAllWorkloads();
    registerModeBenchmarks("fig7/large", microNames(),
                           optsFor(SizeClass::Large));
    registerModeBenchmarks("fig7/super", microNames(),
                           optsFor(SizeClass::Super));
    return benchMain(argc, argv, report, prewarm);
}
