/**
 * @file
 * Table 2: the benchmark programs — printed from the registry, with
 * Super-size job shape facts (footprint, kernels, launches) so the
 * table documents what the suite actually executes.
 */

#include <iostream>

#include "common/bench_common.hh"

using namespace uvmasync;
using namespace uvmasync::bench;

namespace
{

void
report()
{
    WorkloadRegistry &reg = WorkloadRegistry::instance();
    TextTable table({"suite", "source", "program", "input",
                     "footprint@super", "kernels", "launches"});
    table.setAlign(1, TextTable::Align::Left);
    table.setAlign(2, TextTable::Align::Left);
    table.setAlign(3, TextTable::Align::Left);
    for (WorkloadSuite suite :
         {WorkloadSuite::Micro, WorkloadSuite::App}) {
        for (const std::string &name : reg.names(suite)) {
            const Workload &w = reg.get(name);
            Job job = w.makeJob(SizeClass::Super);
            table.addRow(
                {suite == WorkloadSuite::Micro ? "Micro" : "Apps",
                 w.info().source, name, w.info().inputShape,
                 fmtBytes(static_cast<double>(job.footprint())),
                 std::to_string(job.kernels.size()),
                 std::to_string(job.launchCount())});
        }
        table.addSeparator();
    }
    printTable(std::cout, "Table 2: benchmark programs", table);
}

} // namespace

int
main(int argc, char **argv)
{
    registerAllWorkloads();
    benchmark::RegisterBenchmark(
        "table2/job_construction", [](benchmark::State &state) {
            WorkloadRegistry &reg = WorkloadRegistry::instance();
            for (auto _ : state) {
                for (const std::string &name : reg.names()) {
                    Job job = reg.get(name).makeJob(SizeClass::Small);
                    benchmark::DoNotOptimize(job);
                }
            }
        });
    return benchMain(argc, argv, report);
}
