/**
 * @file
 * Figure 10: unified-L1 load/store miss rates of gemm, lud and
 * yolov3 under the five configurations. Async memcpy slashes both
 * rates on lud (its data gets staged through shared memory instead
 * of thrashing L1), which is the root cause of its speedup.
 */

#include <iostream>

#include "common/bench_common.hh"
#include "core/paper_targets.hh"

using namespace uvmasync;
using namespace uvmasync::bench;

namespace
{

const std::vector<std::string> kWorkloads = {"gemm", "lud", "yolov3"};

ExperimentOptions
superOpts()
{
    ExperimentOptions opts;
    opts.size = SizeClass::Super;
    opts.runs = 1;
    return opts;
}

void
report()
{
    TextTable table({"workload", "mode", "load miss rate",
                     "store miss rate"});
    std::map<std::string, ModeSet> sets;
    for (const std::string &name : kWorkloads) {
        ModeSet set =
            ResultCache::instance().getAllModes(name, superOpts());
        sets[name] = set;
        for (const ExperimentResult &res : set) {
            table.addRow({name, transferModeName(res.mode),
                          fmtDouble(res.counters.l1LoadMissRate, 4),
                          fmtDouble(res.counters.l1StoreMissRate,
                                    4)});
        }
        table.addSeparator();
    }
    printTable(std::cout,
               "Figure 10: global cache miss-rate comparison", table);

    const ModeSet &lud = sets["lud"];
    double loadStd =
        findMode(lud, TransferMode::Standard).counters.l1LoadMissRate;
    double loadAsync =
        findMode(lud, TransferMode::Async).counters.l1LoadMissRate;
    double storeStd =
        findMode(lud, TransferMode::Standard).counters
            .l1StoreMissRate;
    double storeAsync =
        findMode(lud, TransferMode::Async).counters.l1StoreMissRate;

    std::vector<ComparisonRow> rows = {
        {"lud: async load miss-rate reduction",
         paper::ludAsyncLoadMissReduction, 1.0 - loadAsync / loadStd},
        {"lud: async store miss-rate reduction",
         paper::ludAsyncStoreMissReduction,
         1.0 - storeAsync / storeStd},
    };
    printTable(std::cout, "Figure 10 headline (paper vs measured)",
               comparisonTable(rows));
}

} // namespace

int
main(int argc, char **argv)
{
    registerAllWorkloads();
    registerModeBenchmarks("fig10", kWorkloads, superOpts());
    return benchMain(argc, argv, report);
}
