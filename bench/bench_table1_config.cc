/**
 * @file
 * Table 1: hardware configuration of the simulated testbed, printed
 * from the live SystemConfig so the table always reflects what the
 * other benches actually ran on.
 */

#include <iostream>

#include "common/bench_common.hh"

using namespace uvmasync;
using namespace uvmasync::bench;

namespace
{

void
report()
{
    SystemConfig cfg = SystemConfig::a100Epyc();

    TextTable table({"component", "parameter", "value"});
    table.addRow({"CPU DRAM", "modules",
                  std::to_string(cfg.host.dimmCount) + " x " +
                      fmtBytes(static_cast<double>(
                          cfg.host.dimmCapacity))});
    table.addRow({"CPU DRAM", "host read bandwidth",
                  fmtDouble(cfg.host.readBandwidth.gbps(), 0) +
                      " GB/s"});
    table.addRow({"GPU", "SMs", std::to_string(cfg.gpu.smCount)});
    table.addRow({"GPU", "clock",
                  fmtDouble(cfg.gpu.clock.mhz(), 0) + " MHz"});
    table.addRow({"GPU", "HBM2 capacity",
                  fmtBytes(static_cast<double>(
                      cfg.deviceMemoryBytes))});
    table.addRow({"GPU", "HBM2 bandwidth",
                  fmtDouble(cfg.gpu.hbmBandwidth.gbps(), 0) +
                      " GB/s"});
    table.addRow({"GPU", "unified L1/shared per SM",
                  fmtBytes(static_cast<double>(
                      cfg.gpu.unifiedL1Bytes))});
    table.addRow({"GPU", "max shared carveout",
                  fmtBytes(static_cast<double>(
                      cfg.gpu.maxSharedBytes))});
    table.addRow({"Interconnect", "PCIe raw bandwidth",
                  fmtDouble(cfg.pcie.rawBandwidth.gbps(), 0) +
                      " GB/s per direction"});
    table.addRow({"UVM", "migration chunk",
                  fmtBytes(static_cast<double>(cfg.uvm.chunkBytes))});
    printTable(std::cout,
               "Table 1: simulated hardware configuration "
               "(A100 + EPYC testbed)",
               table);
}

} // namespace

int
main(int argc, char **argv)
{
    registerAllWorkloads();
    benchmark::RegisterBenchmark(
        "table1/config_construction", [](benchmark::State &state) {
            for (auto _ : state) {
                SystemConfig cfg = SystemConfig::a100Epyc();
                benchmark::DoNotOptimize(cfg);
            }
        });
    return benchMain(argc, argv, report);
}
