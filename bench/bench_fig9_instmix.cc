/**
 * @file
 * Figure 9: control and integer instruction counts of gemm, lud and
 * yolov3 under the five configurations. Async memcpy raises control
 * counts ~40% on gemm and ~30% on yolov3 but barely registers on
 * branch-heavy lud.
 */

#include <iostream>

#include "common/bench_common.hh"
#include "core/paper_targets.hh"

using namespace uvmasync;
using namespace uvmasync::bench;

namespace
{

const std::vector<std::string> kWorkloads = {"gemm", "lud", "yolov3"};

ExperimentOptions
superOpts()
{
    ExperimentOptions opts;
    opts.size = SizeClass::Super;
    opts.runs = 1; // counters are deterministic
    return opts;
}

double
ctrlIncrease(const ModeSet &set)
{
    double base =
        findMode(set, TransferMode::Standard).counters.instrs.control;
    double async = findMode(set, TransferMode::UvmPrefetchAsync)
                       .counters.instrs.control;
    return async / base - 1.0;
}

void
report()
{
    TextTable table({"workload", "mode", "control", "integer",
                     "memory", "fp"});
    std::map<std::string, ModeSet> sets;
    for (const std::string &name : kWorkloads) {
        ModeSet set =
            ResultCache::instance().getAllModes(name, superOpts());
        sets[name] = set;
        for (const ExperimentResult &res : set) {
            const InstrMix &m = res.counters.instrs;
            table.addRow({name, transferModeName(res.mode),
                          fmtCount(m.control), fmtCount(m.integer),
                          fmtCount(m.memory), fmtCount(m.fp)});
        }
        table.addSeparator();
    }
    printTable(std::cout,
               "Figure 9: instruction-mix comparison (gemm / lud / "
               "yolov3)",
               table);

    std::vector<ComparisonRow> rows = {
        {"gemm: async control-instruction increase",
         paper::gemmAsyncControlIncrease, ctrlIncrease(sets["gemm"])},
        {"yolov3: async control-instruction increase",
         paper::yoloAsyncControlIncrease,
         ctrlIncrease(sets["yolov3"])},
        {"lud: async control-instruction increase (small)", 0.05,
         ctrlIncrease(sets["lud"])},
    };
    printTable(std::cout, "Figure 9 headline (paper vs measured)",
               comparisonTable(rows));
}

} // namespace

int
main(int argc, char **argv)
{
    registerAllWorkloads();
    registerModeBenchmarks("fig9", kWorkloads, superOpts());
    return benchMain(argc, argv, report);
}
