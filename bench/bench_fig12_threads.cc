/**
 * @file
 * Figure 12: sensitivity of vector_seq to threads per block
 * (1024 -> 32 on a fixed 64-block grid). Expected shape: strong
 * sensitivity (under-occupied SMs cannot hide memory latency; 32
 * threads run the kernel ~4x slower than 128), with async's edge
 * growing as threads shrink (deeper per-thread buffers).
 */

#include <iostream>

#include "common/bench_common.hh"
#include "core/paper_targets.hh"
#include "core/sweep.hh"

using namespace uvmasync;
using namespace uvmasync::bench;

namespace
{

const std::vector<std::uint32_t> kThreadCounts = {1024, 512, 256,
                                                  128, 64, 32};

std::vector<SweepPoint> &
sweepPoints()
{
    static std::vector<SweepPoint> points = [] {
        Sweep sweep(ResultCache::instance().experiment());
        ExperimentOptions opts;
        opts.size = SizeClass::Super;
        opts.runs = 5;
        return sweep.threadSweep("vector_seq", kThreadCounts, 64,
                                 opts);
    }();
    return points;
}

double
kernelAt(std::uint64_t threads, TransferMode mode)
{
    for (const SweepPoint &p : sweepPoints()) {
        if (p.value == threads)
            return findMode(p.modes, mode).clean.kernelPs;
    }
    return 0.0;
}

double
asyncGainAt(std::uint64_t threads)
{
    for (const SweepPoint &p : sweepPoints()) {
        if (p.value == threads) {
            double base = findMode(p.modes, TransferMode::Standard)
                              .clean.kernelPs;
            double async =
                findMode(p.modes, TransferMode::Async).clean.kernelPs;
            return 1.0 - async / base;
        }
    }
    return 0.0;
}

void
report()
{
    TextTable table({"# threads", "standard", "async", "uvm",
                     "uvm_prefetch", "uvm_prefetch_async",
                     "kernel(std)"});
    double ref = 0.0;
    for (const SweepPoint &point : sweepPoints()) {
        double base = findMode(point.modes, TransferMode::Standard)
                          .meanBreakdown()
                          .overallPs();
        if (ref == 0.0)
            ref = base;
        std::vector<std::string> row = {std::to_string(point.value)};
        for (TransferMode m : allTransferModes) {
            double v =
                findMode(point.modes, m).meanBreakdown().overallPs();
            row.push_back(fmtDouble(v / ref, 3));
        }
        row.push_back(fmtTime(
            findMode(point.modes, TransferMode::Standard)
                .clean.kernelPs));
        table.addRow(row);
    }
    printTable(std::cout,
               "Figure 12: vector_seq vs threads per block "
               "(64 blocks, normalized to standard @1024)",
               table);

    double ratio = kernelAt(32, TransferMode::Standard) /
                   kernelAt(128, TransferMode::Standard);
    std::vector<ComparisonRow> rows = {
        {"kernel time at 32 threads vs 128 threads (x, -1)",
         paper::threads32Vs128KernelRatio - 1.0, ratio - 1.0},
        {"async kernel gain at 1024 threads",
         paper::asyncGain1024Threads, asyncGainAt(1024)},
        {"async kernel gain at 32 threads",
         paper::asyncGain32Threads, asyncGainAt(32)},
    };
    printTable(std::cout, "Figure 12 headline (paper vs measured)",
               comparisonTable(rows));
}

} // namespace

int
main(int argc, char **argv)
{
    registerAllWorkloads();
    benchmark::RegisterBenchmark(
        "fig12/thread_sweep", [](benchmark::State &state) {
            double total = 0.0;
            for (const SweepPoint &p : sweepPoints()) {
                total += findMode(p.modes, TransferMode::Standard)
                             .meanBreakdown()
                             .overallPs();
            }
            for (auto _ : state)
                state.SetIterationTime(total / 1e12);
        })
        ->UseManualTime()
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1);
    return benchMain(argc, argv, report);
}
