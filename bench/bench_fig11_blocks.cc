/**
 * @file
 * Figure 11: sensitivity of vector_seq to the number of CUDA blocks
 * (4096 -> 16 at 256 threads/block). Expected shape: performance is
 * essentially flat across block counts (Takeaway 4), with async /
 * uvm_prefetch / uvm_prefetch_async keeping their average gains.
 */

#include <iostream>

#include "common/bench_common.hh"
#include "core/paper_targets.hh"
#include "core/sweep.hh"

using namespace uvmasync;
using namespace uvmasync::bench;

namespace
{

const std::vector<std::uint64_t> kBlockCounts = {
    4096, 2048, 1024, 512, 256, 128, 64, 32, 16};

std::vector<SweepPoint> &
sweepPoints()
{
    static std::vector<SweepPoint> points = [] {
        Sweep sweep(ResultCache::instance().experiment());
        ExperimentOptions opts;
        opts.size = SizeClass::Super;
        opts.runs = 5;
        return sweep.blockSweep("vector_seq", kBlockCounts, opts);
    }();
    return points;
}

void
report()
{
    TextTable table({"# blocks", "standard", "async", "uvm",
                     "uvm_prefetch", "uvm_prefetch_async"});
    double ref = 0.0;
    std::vector<double> gains[3];
    for (const SweepPoint &point : sweepPoints()) {
        double base = findMode(point.modes, TransferMode::Standard)
                          .meanBreakdown()
                          .overallPs();
        if (ref == 0.0)
            ref = base;
        std::vector<std::string> row = {std::to_string(point.value)};
        for (TransferMode m : allTransferModes) {
            double v =
                findMode(point.modes, m).meanBreakdown().overallPs();
            row.push_back(fmtDouble(v / ref, 3));
        }
        table.addRow(row);
        gains[0].push_back(
            base / findMode(point.modes, TransferMode::Async)
                       .meanBreakdown()
                       .overallPs());
        gains[1].push_back(
            base / findMode(point.modes, TransferMode::UvmPrefetch)
                       .meanBreakdown()
                       .overallPs());
        gains[2].push_back(
            base /
            findMode(point.modes, TransferMode::UvmPrefetchAsync)
                .meanBreakdown()
                .overallPs());
    }
    printTable(std::cout,
               "Figure 11: vector_seq vs # of blocks "
               "(normalized to standard @4096)",
               table);

    std::vector<ComparisonRow> rows = {
        {"async average gain across block counts",
         paper::blockSweepAsyncGain, geomean(gains[0]) - 1.0},
        {"uvm_prefetch average gain across block counts",
         paper::blockSweepUvmPrefetchGain, geomean(gains[1]) - 1.0},
        {"uvm_prefetch_async average gain across block counts",
         paper::blockSweepUvmPrefetchAsyncGain,
         geomean(gains[2]) - 1.0},
    };
    printTable(std::cout, "Figure 11 headline (paper vs measured)",
               comparisonTable(rows));
}

} // namespace

int
main(int argc, char **argv)
{
    registerAllWorkloads();
    benchmark::RegisterBenchmark(
        "fig11/block_sweep", [](benchmark::State &state) {
            double total = 0.0;
            for (const SweepPoint &p : sweepPoints()) {
                total += findMode(p.modes, TransferMode::Standard)
                             .meanBreakdown()
                             .overallPs();
            }
            for (auto _ : state)
                state.SetIterationTime(total / 1e12);
        })
        ->UseManualTime()
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1);
    return benchMain(argc, argv, report);
}
