/**
 * @file
 * Global registry of the benchmark suite's workloads.
 */

#ifndef UVMASYNC_WORKLOADS_REGISTRY_HH
#define UVMASYNC_WORKLOADS_REGISTRY_HH

#include <memory>
#include <string>
#include <vector>

#include "workloads/workload.hh"

namespace uvmasync
{

/**
 * Name -> Workload directory. Populated by registerAllWorkloads().
 */
class WorkloadRegistry
{
  public:
    static WorkloadRegistry &instance();

    /** Add a workload; duplicate names are a bug. */
    void add(std::unique_ptr<Workload> workload);

    /** Look up by name; nullptr if absent. */
    const Workload *find(const std::string &name) const;

    /** Look up by name; fatal() if absent. */
    const Workload &get(const std::string &name) const;

    /** All names, registration order. */
    std::vector<std::string> names() const;

    /** Names filtered by suite, registration order. */
    std::vector<std::string> names(WorkloadSuite suite) const;

    std::size_t size() const { return workloads_.size(); }

  private:
    WorkloadRegistry() = default;

    std::vector<std::unique_ptr<Workload>> workloads_;
};

/**
 * Register the full benchmark suite (7 microbenchmarks + 14 apps);
 * idempotent. Call once before using the registry.
 */
void registerAllWorkloads();

/** @{ Per-group registration hooks (used by registerAllWorkloads). */
void registerMicroWorkloads(WorkloadRegistry &reg);
void registerRodiniaWorkloads(WorkloadRegistry &reg);
void registerUvmbenchWorkloads(WorkloadRegistry &reg);
void registerDarknetWorkloads(WorkloadRegistry &reg);
/** @} */

} // namespace uvmasync

#endif // UVMASYNC_WORKLOADS_REGISTRY_HH
