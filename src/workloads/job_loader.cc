#include "workloads/job_loader.hh"

#include <cstdlib>
#include <sstream>
#include <vector>

#include "analysis/passes.hh"
#include "common/logging.hh"

namespace uvmasync
{

namespace
{

std::vector<std::string>
splitList(const std::string &text, char sep)
{
    std::vector<std::string> out;
    std::istringstream iss(text);
    std::string item;
    while (std::getline(iss, item, sep)) {
        std::size_t begin = item.find_first_not_of(" \t");
        std::size_t end = item.find_last_not_of(" \t");
        if (begin == std::string::npos)
            continue;
        out.push_back(item.substr(begin, end - begin + 1));
    }
    return out;
}

AccessPattern
parsePattern(const std::string &name)
{
    AccessPattern p;
    if (!parseAccessPattern(name, p))
        fatal("job file: unknown access pattern '%s' (valid: %s)",
              name.c_str(), accessPatternNames().c_str());
    return p;
}

/** strtoul with full-string validation (std::stoul throws). */
std::size_t
parseIndex(const std::string &text, const char *what)
{
    char *end = nullptr;
    unsigned long value = std::strtoul(text.c_str(), &end, 10);
    if (end == text.c_str() || *end != '\0')
        fatal("job file: %s '%s' is not a non-negative integer",
              what, text.c_str());
    return static_cast<std::size_t>(value);
}

/** strtod with full-string validation (std::stod throws). */
double
parseFraction(const std::string &text, const char *what)
{
    char *end = nullptr;
    double value = std::strtod(text.c_str(), &end);
    if (end == text.c_str() || *end != '\0')
        fatal("job file: %s '%s' is not a number", what,
              text.c_str());
    return value;
}

Bytes
parseSize(const KvConfig &kv, const std::string &prefix)
{
    if (kv.has(prefix + ".bytes"))
        return static_cast<Bytes>(kv.getInt(prefix + ".bytes", 0));
    if (kv.has(prefix + ".kib"))
        return kib(static_cast<Bytes>(
            kv.getInt(prefix + ".kib", 0)));
    if (kv.has(prefix + ".mib"))
        return mib(static_cast<Bytes>(
            kv.getInt(prefix + ".mib", 0)));
    if (kv.has(prefix + ".gib"))
        return gib(static_cast<Bytes>(
            kv.getInt(prefix + ".gib", 0)));
    fatal("job file: %s needs one of bytes/kib/mib/gib",
          prefix.c_str());
}

KernelBufferUse
parseBufferUse(const std::string &spec, std::size_t bufferCount)
{
    std::vector<std::string> parts = splitList(spec, ':');
    if (parts.size() < 3)
        fatal("job file: buffer use '%s' needs at least "
              "id:pattern:rw",
              spec.c_str());

    KernelBufferUse use;
    use.bufferId = parseIndex(parts[0], "buffer id");
    if (use.bufferId >= bufferCount)
        fatal("job file: buffer id %zu out of range (%zu buffers)",
              use.bufferId, bufferCount);
    use.pattern = parsePattern(parts[1]);

    const std::string &rw = parts[2];
    use.read = rw.find('r') != std::string::npos;
    use.written = rw.find('w') != std::string::npos;
    if (!use.read && !use.written)
        fatal("job file: buffer use '%s' must read and/or write",
              spec.c_str());

    for (std::size_t i = 3; i < parts.size(); ++i) {
        if (parts[i] == "nostage") {
            use.stagedThroughShared = false;
        } else {
            use.touchedFraction =
                parseFraction(parts[i], "touched fraction");
            if (!(use.touchedFraction >= 0.0) ||
                use.touchedFraction > 1.0)
                fatal("job file: touched fraction %s of buffer use "
                      "'%s' must be in [0, 1]",
                      parts[i].c_str(), spec.c_str());
        }
    }
    return use;
}

} // namespace

Job
jobFromConfig(const KvConfig &kv, DiagnosticEngine *diags)
{
    // Surface unknown/shadowed keys instead of silently ignoring
    // them: into the caller's engine when linting, fatal otherwise.
    DiagnosticEngine local;
    DiagnosticEngine &sink = diags ? *diags : local;
    checkKvKeys(kv, knownJobFileKeys(kv), "job description", sink);
    if (!diags && local.hasErrors()) {
        std::string listing;
        for (const Diagnostic &d : local.all()) {
            if (d.severity == Severity::Error)
                listing += "\n  " + d.format();
        }
        fatal("job file %s: unknown keys:%s",
              kv.sourceName().c_str(), listing.c_str());
    }

    Job job;
    job.name = kv.getString("job.name", "custom");
    job.sequenceRepeats = static_cast<std::uint32_t>(
        kv.getInt("job.repeats", 1));
    job.prefetchEachLaunch =
        kv.getBool("job.prefetch_each_launch", false);

    for (std::size_t i = 0;; ++i) {
        std::string prefix = "buffer." + std::to_string(i);
        if (!kv.has(prefix + ".name"))
            break;
        JobBuffer buf;
        buf.name = kv.getString(prefix + ".name");
        buf.bytes = parseSize(kv, prefix);
        buf.hostInit = kv.getBool(prefix + ".host_init", true);
        buf.hostConsumed =
            kv.getBool(prefix + ".host_consumed", false);
        job.buffers.push_back(buf);
    }
    if (job.buffers.empty())
        fatal("job file: no [buffer.0] section");

    for (std::size_t i = 0;; ++i) {
        std::string prefix = "kernel." + std::to_string(i);
        if (!kv.has(prefix + ".name"))
            break;
        KernelDescriptor kd = makeStreamKernel(
            kv.getString(prefix + ".name"),
            static_cast<std::uint64_t>(
                kv.getInt(prefix + ".blocks", 4096)),
            static_cast<std::uint32_t>(
                kv.getInt(prefix + ".threads", 256)),
            mib(static_cast<Bytes>(
                kv.getInt(prefix + ".total_load_mib", 64))),
            kib(static_cast<Bytes>(
                kv.getInt(prefix + ".shared_kib", 16))),
            4, kv.getDouble(prefix + ".flops_per_element", 4.0),
            kv.getDouble(prefix + ".ints_per_element", 4.0),
            kv.getDouble(prefix + ".ctrl_per_element", 1.0),
            kv.getDouble(prefix + ".store_ratio", 0.5));
        kd.warpsToSaturate =
            kv.getDouble(prefix + ".warps_to_saturate", 8.0);
        kd.asyncComputePenalty =
            kv.getDouble(prefix + ".async_penalty", 1.0);

        // Optional declared dependency edges, validated by the
        // linter (UAL002/UAL003): depends = 0, 2
        std::string deps = kv.getString(prefix + ".depends");
        for (const std::string &dep : splitList(deps, ','))
            kd.dependsOn.push_back(
                parseIndex(dep, "kernel dependency"));

        std::string uses = kv.getString(prefix + ".buffers");
        if (uses.empty())
            fatal("job file: %s.buffers is required",
                  prefix.c_str());
        for (const std::string &spec : splitList(uses, ','))
            kd.buffers.push_back(
                parseBufferUse(spec, job.buffers.size()));
        job.kernels.push_back(std::move(kd));
    }
    if (job.kernels.empty())
        fatal("job file: no [kernel.0] section");
    return job;
}

Job
loadJobFile(const std::string &path)
{
    return jobFromConfig(KvConfig::fromFile(path));
}

} // namespace uvmasync
