/**
 * @file
 * Workload abstraction: a named generator of Jobs at a requested
 * input-size class (Table 2 of the paper defines the 21 instances).
 */

#ifndef UVMASYNC_WORKLOADS_WORKLOAD_HH
#define UVMASYNC_WORKLOADS_WORKLOAD_HH

#include <cstdint>
#include <string>

#include "runtime/job.hh"
#include "workloads/size_class.hh"

namespace uvmasync
{

/** Which benchmark group a workload belongs to. */
enum class WorkloadSuite
{
    Micro, //!< the 7 single-kernel microbenchmarks
    App,   //!< the 14 real-world applications
};

/** Static metadata (the Table 2 row). */
struct WorkloadInfo
{
    std::string name;
    WorkloadSuite suite = WorkloadSuite::Micro;
    std::string source;      //!< Svedin et al. / PolyBench / Rodinia...
    std::string domain;      //!< linear algebra, data mining, ML...
    std::string description;
    std::string inputShape;  //!< "Vector (1D)", "Grid (2D)", ...
};

/**
 * Launch-geometry override used by the sensitivity sweeps
 * (Figures 11 and 12); zero fields keep the workload default.
 */
struct GeometryOverride
{
    std::uint64_t gridBlocks = 0;
    std::uint32_t threadsPerBlock = 0;
};

/**
 * A benchmark program: produces a Job for a given input size.
 */
class Workload
{
  public:
    virtual ~Workload() = default;

    /** Table 2 metadata. */
    virtual const WorkloadInfo &info() const = 0;

    /**
     * Build the job at @p size. @p geo overrides launch geometry for
     * sensitivity studies; workloads with rigid geometry may ignore
     * it.
     */
    virtual Job makeJob(SizeClass size,
                        const GeometryOverride &geo = {}) const = 0;

    const std::string &name() const { return info().name; }
};

} // namespace uvmasync

#endif // UVMASYNC_WORKLOADS_WORKLOAD_HH
