/**
 * @file
 * The paper's input-size classes (Table 3): six memory-footprint
 * targets from 1 MB to 32 GB, with reference 1D/2D/3D problem
 * dimensions assuming float32 data.
 */

#ifndef UVMASYNC_WORKLOADS_SIZE_CLASS_HH
#define UVMASYNC_WORKLOADS_SIZE_CLASS_HH

#include <array>
#include <cstdint>
#include <string>

#include "common/types.hh"

namespace uvmasync
{

/** Input-size classes of Table 3. */
enum class SizeClass
{
    Tiny,   //!< 1 MB
    Small,  //!< 8 MB
    Medium, //!< 64 MB
    Large,  //!< 512 MB
    Super,  //!< 4 GB
    Mega,   //!< 32 GB
};

inline constexpr std::array<SizeClass, 6> allSizeClasses = {
    SizeClass::Tiny,  SizeClass::Small, SizeClass::Medium,
    SizeClass::Large, SizeClass::Super, SizeClass::Mega,
};

/** Lower-case class name as used in the paper's figures. */
const char *sizeClassName(SizeClass s);

/** Parse a class name; returns true on success. */
bool parseSizeClass(const std::string &text, SizeClass &out);

/** Target memory footprint of the class (Table 3 "Mem" row). */
Bytes sizeClassMem(SizeClass s);

/** Reference 1D element count (256K ... 8G). */
std::uint64_t grid1d(SizeClass s);

/** Reference 2D side length (512 ... 64K). */
std::uint64_t grid2d(SizeClass s);

/** Reference 3D side length (64 ... 2K). */
std::uint64_t grid3d(SizeClass s);

} // namespace uvmasync

#endif // UVMASYNC_WORKLOADS_SIZE_CLASS_HH
