/**
 * @file
 * The seven microbenchmarks (Table 2, "Micro" group):
 * vector_seq / vector_rand after Svedin et al., and saxpy / gemv /
 * gemm / 2DCONV / 3DCONV after PolyBench (adjusted, as in the paper,
 * to stay scalable at large input sizes — gemm uses a bounded inner
 * dimension so Super-sized runs remain in the same time envelope as
 * the other kernels).
 */

#include <memory>

#include "workloads/lambda_workload.hh"
#include "workloads/registry.hh"

namespace uvmasync
{

namespace
{

/** Default microbenchmark launch geometry (Figures 11/12 baseline). */
constexpr std::uint64_t defBlocks = 4096;
constexpr std::uint32_t defThreads = 256;

/**
 * Shared shape of the two Vector-to-Constant workloads; only the
 * access pattern differs (sequential vs random).
 */
Job
makeVectorJob(const char *name, SizeClass size,
              const GeometryOverride &geo, AccessPattern pattern)
{
    std::uint64_t elements = grid1d(size);
    Bytes vecBytes = elements / 2 * 4;

    Job job;
    job.name = name;
    job.buffers = {
        JobBuffer{"in", vecBytes, /*hostInit=*/true,
                  /*hostConsumed=*/false},
        JobBuffer{"out", vecBytes, /*hostInit=*/false,
                  /*hostConsumed=*/true},
    };

    KernelDescriptor kd = makeStreamKernel(
        name, pickBlocks(geo, defBlocks), pickThreads(geo, defThreads),
        /*totalLoadBytes=*/vecBytes, /*sharedBytesPerBlock=*/kib(32),
        /*elementBytes=*/4, /*flopsPerElement=*/16.0,
        /*intsPerElement=*/6.0, /*ctrlPerElement=*/0.5,
        /*storeRatio=*/1.0);
    kd.warpsToSaturate = 8.0;
    kd.buffers = {
        KernelBufferUse{0, pattern, true, false, 1.0, true},
        KernelBufferUse{1, pattern, false, true, 1.0, true},
    };
    job.kernels = {kd};
    return job;
}

Job
makeSaxpyJob(SizeClass size, const GeometryOverride &geo)
{
    std::uint64_t elements = grid1d(size);
    Bytes vecBytes = elements / 2 * 4;

    Job job;
    job.name = "saxpy";
    job.buffers = {
        JobBuffer{"x", vecBytes, true, false},
        JobBuffer{"y", vecBytes, true, true},
    };

    KernelDescriptor kd = makeStreamKernel(
        "saxpy", pickBlocks(geo, defBlocks),
        pickThreads(geo, defThreads),
        /*totalLoadBytes=*/vecBytes * 2, kib(32), 4,
        /*flopsPerElement=*/2.0, /*intsPerElement=*/4.0,
        /*ctrlPerElement=*/0.25, /*storeRatio=*/0.5);
    kd.warpsToSaturate = 8.0;
    kd.buffers = {
        KernelBufferUse{0, AccessPattern::Sequential, true, false, 1.0,
                        true},
        KernelBufferUse{1, AccessPattern::Sequential, true, true, 1.0,
                        true},
    };
    job.kernels = {kd};
    return job;
}

Job
makeGemvJob(SizeClass size, const GeometryOverride &geo)
{
    std::uint64_t n = grid2d(size);
    Bytes matBytes = n * n * 4;
    Bytes vecBytes = n * 4;

    Job job;
    job.name = "gemv";
    job.buffers = {
        JobBuffer{"A", matBytes, true, false},
        JobBuffer{"x", vecBytes, true, false},
        JobBuffer{"y", vecBytes, false, true},
    };

    KernelDescriptor kd = makeStreamKernel(
        "gemv", pickBlocks(geo, defBlocks),
        pickThreads(geo, defThreads),
        /*totalLoadBytes=*/matBytes, kib(32), 4,
        /*flopsPerElement=*/2.0, /*intsPerElement=*/3.0,
        /*ctrlPerElement=*/0.2, /*storeRatio=*/0.001);
    kd.warpsToSaturate = 8.0;
    kd.buffers = {
        KernelBufferUse{0, AccessPattern::Sequential, true, false, 1.0,
                        true},
        KernelBufferUse{1, AccessPattern::Broadcast, true, false, 1.0,
                        true},
        KernelBufferUse{2, AccessPattern::Sequential, false, true, 1.0,
                        true},
    };
    job.kernels = {kd};
    return job;
}

Job
makeGemmJob(SizeClass size, const GeometryOverride &geo)
{
    std::uint64_t n = grid2d(size);
    // The paper adjusted PolyBench for scalability; our gemm bounds
    // the inner dimension so compute stays comparable to the other
    // microbenchmarks at Super/Mega sizes.
    std::uint64_t k = std::min<std::uint64_t>(1024, n);
    constexpr std::uint64_t tile = 128;

    Bytes aBytes = n * k * 4;
    Bytes bBytes = k * n * 4;
    Bytes cBytes = n * n * 4;

    Job job;
    job.name = "gemm";
    job.buffers = {
        JobBuffer{"A", aBytes, true, false},
        JobBuffer{"B", bBytes, true, false},
        JobBuffer{"C", cBytes, false, true},
    };

    // Tiled GEMM traffic: every A/B element reloads n/tile times.
    double reload = static_cast<double>(n) / tile;
    auto totalLoad = static_cast<Bytes>(
        static_cast<double>(aBytes + bBytes) * reload);
    double flops = 2.0 * static_cast<double>(n) *
                   static_cast<double>(n) * static_cast<double>(k);
    double loadedElements = static_cast<double>(totalLoad) / 4.0;

    std::uint64_t blocks = (n / tile) * (n / tile);
    blocks = std::max<std::uint64_t>(blocks, 16);

    KernelDescriptor kd = makeStreamKernel(
        "gemm", pickBlocks(geo, blocks), pickThreads(geo, defThreads),
        totalLoad, kib(16), 4,
        /*flopsPerElement=*/flops / loadedElements,
        /*intsPerElement=*/16.0, /*ctrlPerElement=*/2.0,
        /*storeRatio=*/static_cast<double>(cBytes) /
            static_cast<double>(totalLoad));
    kd.warpsToSaturate = 8.0;
    kd.asyncComputePenalty = 1.08;
    kd.buffers = {
        KernelBufferUse{0, AccessPattern::Tiled, true, false, 1.0,
                        true},
        KernelBufferUse{1, AccessPattern::Broadcast, true, false, 1.0,
                        true},
        KernelBufferUse{2, AccessPattern::Tiled, false, true, 1.0,
                        true},
    };
    job.kernels = {kd};
    return job;
}

Job
makeConv2dJob(SizeClass size, const GeometryOverride &geo)
{
    std::uint64_t n = grid2d(size);
    Bytes gridBytes = n * n * 4;

    Job job;
    job.name = "2DCONV";
    job.buffers = {
        JobBuffer{"in", gridBytes, true, false},
        JobBuffer{"out", gridBytes, false, true},
    };

    KernelDescriptor kd = makeStreamKernel(
        "2DCONV", pickBlocks(geo, defBlocks),
        pickThreads(geo, defThreads),
        /*totalLoadBytes=*/gridBytes + gridBytes / 4, kib(16), 4,
        /*flopsPerElement=*/18.0, /*intsPerElement=*/12.0,
        /*ctrlPerElement=*/2.0, /*storeRatio=*/0.8);
    // Stencils need deep latency hiding; the async double buffer
    // halving residency is what costs them (Section 4.1.1).
    kd.warpsToSaturate = 16.0;
    kd.asyncComputePenalty = 1.15;
    kd.buffers = {
        KernelBufferUse{0, AccessPattern::Tiled, true, false, 1.0,
                        true},
        KernelBufferUse{1, AccessPattern::Sequential, false, true, 1.0,
                        true},
    };
    job.kernels = {kd};
    return job;
}

Job
makeConv3dJob(SizeClass size, const GeometryOverride &geo)
{
    std::uint64_t n = grid3d(size);
    Bytes gridBytes = n * n * n * 4;

    Job job;
    job.name = "3DCONV";
    job.buffers = {
        JobBuffer{"in", gridBytes, true, false},
        JobBuffer{"out", gridBytes, false, true},
    };

    KernelDescriptor kd = makeStreamKernel(
        "3DCONV", pickBlocks(geo, defBlocks),
        pickThreads(geo, defThreads),
        /*totalLoadBytes=*/gridBytes + gridBytes / 2, kib(16), 4,
        /*flopsPerElement=*/54.0, /*intsPerElement=*/18.0,
        /*ctrlPerElement=*/3.0, /*storeRatio=*/0.6);
    kd.warpsToSaturate = 14.0;
    kd.buffers = {
        KernelBufferUse{0, AccessPattern::Tiled, true, false, 1.0,
                        true},
        KernelBufferUse{1, AccessPattern::Sequential, false, true, 1.0,
                        true},
    };
    job.kernels = {kd};
    return job;
}

} // namespace

void
registerMicroWorkloads(WorkloadRegistry &reg)
{
    auto add = [&](WorkloadInfo info, LambdaWorkload::Factory f) {
        reg.add(std::make_unique<LambdaWorkload>(std::move(info),
                                                 std::move(f)));
    };

    add({"vector_seq", WorkloadSuite::Micro, "Svedin et al.",
         "linear algebra",
         "Vector-to-Constant, element-wise arithmetic (sequential "
         "access)",
         "Vector (1D)"},
        [](SizeClass s, const GeometryOverride &g) {
            return makeVectorJob("vector_seq", s, g,
                                 AccessPattern::Sequential);
        });

    add({"vector_rand", WorkloadSuite::Micro, "Svedin et al.",
         "linear algebra",
         "Vector-to-Constant, element-wise arithmetic (random access)",
         "Vector (1D)"},
        [](SizeClass s, const GeometryOverride &g) {
            return makeVectorJob("vector_rand", s, g,
                                 AccessPattern::Random);
        });

    add({"saxpy", WorkloadSuite::Micro, "PolyBench", "linear algebra",
         "Vector-to-Vector multiplication and addition",
         "Vector (1D)"},
        makeSaxpyJob);

    add({"gemv", WorkloadSuite::Micro, "PolyBench", "linear algebra",
         "general Matrix-to-Vector multiplication", "Matrix (2D)"},
        makeGemvJob);

    add({"gemm", WorkloadSuite::Micro, "PolyBench", "linear algebra",
         "general Matrix-to-Matrix multiplication", "Matrix (2D)"},
        makeGemmJob);

    add({"2DCONV", WorkloadSuite::Micro, "PolyBench",
         "image processing", "general 2D convolution", "Grid (2D)"},
        makeConv2dJob);

    add({"3DCONV", WorkloadSuite::Micro, "PolyBench",
         "image processing", "general 3D convolution", "Grid (3D)"},
        makeConv3dJob);
}

} // namespace uvmasync
