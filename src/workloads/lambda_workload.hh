/**
 * @file
 * A Workload defined by metadata plus a job-factory callable; keeps
 * the per-benchmark definitions declarative.
 */

#ifndef UVMASYNC_WORKLOADS_LAMBDA_WORKLOAD_HH
#define UVMASYNC_WORKLOADS_LAMBDA_WORKLOAD_HH

#include <functional>
#include <utility>

#include "workloads/workload.hh"

namespace uvmasync
{

/** Workload whose makeJob is a stored callable. */
class LambdaWorkload : public Workload
{
  public:
    using Factory =
        std::function<Job(SizeClass, const GeometryOverride &)>;

    LambdaWorkload(WorkloadInfo info, Factory factory)
        : info_(std::move(info)), factory_(std::move(factory))
    {}

    const WorkloadInfo &info() const override { return info_; }

    Job
    makeJob(SizeClass size,
            const GeometryOverride &geo = {}) const override
    {
        return factory_(size, geo);
    }

  private:
    WorkloadInfo info_;
    Factory factory_;
};

/** Apply a geometry override on top of workload defaults. */
inline std::uint64_t
pickBlocks(const GeometryOverride &geo, std::uint64_t def)
{
    return geo.gridBlocks ? geo.gridBlocks : def;
}

/** Apply a geometry override on top of workload defaults. */
inline std::uint32_t
pickThreads(const GeometryOverride &geo, std::uint32_t def)
{
    return geo.threadsPerBlock ? geo.threadsPerBlock : def;
}

} // namespace uvmasync

#endif // UVMASYNC_WORKLOADS_LAMBDA_WORKLOAD_HH
