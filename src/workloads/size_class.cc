#include "workloads/size_class.hh"

#include "common/logging.hh"

namespace uvmasync
{

namespace
{

constexpr std::size_t
idx(SizeClass s)
{
    return static_cast<std::size_t>(s);
}

} // namespace

const char *
sizeClassName(SizeClass s)
{
    static const char *names[] = {"tiny", "small", "medium",
                                  "large", "super", "mega"};
    return names[idx(s)];
}

bool
parseSizeClass(const std::string &text, SizeClass &out)
{
    for (SizeClass s : allSizeClasses) {
        if (text == sizeClassName(s)) {
            out = s;
            return true;
        }
    }
    return false;
}

Bytes
sizeClassMem(SizeClass s)
{
    static const Bytes mem[] = {mib(1), mib(8), mib(64),
                                mib(512), gib(4), gib(32)};
    return mem[idx(s)];
}

std::uint64_t
grid1d(SizeClass s)
{
    static const std::uint64_t n[] = {
        256ull << 10, 2ull << 20, 16ull << 20,
        128ull << 20, 1ull << 30, 8ull << 30};
    return n[idx(s)];
}

std::uint64_t
grid2d(SizeClass s)
{
    static const std::uint64_t n[] = {512, 1024, 4096,
                                      8192, 32768, 65536};
    return n[idx(s)];
}

std::uint64_t
grid3d(SizeClass s)
{
    static const std::uint64_t n[] = {64, 128, 256, 512, 1024, 2048};
    return n[idx(s)];
}

} // namespace uvmasync
