/**
 * @file
 * Declarative job definitions: load a complete Job from an ini-style
 * description, so new benchmarks can be added and shared without
 * writing C++ (the `uvmasync run --jobfile` path).
 *
 * Format (KvConfig syntax):
 *
 *   [job]
 *   name = spmv
 *   repeats = 1              # optional, default 1
 *   prefetch_each_launch = false
 *
 *   [buffer.0]               # buffers numbered 0..N contiguously
 *   name = values
 *   mib = 256                # size (or `kib = `, or `bytes = `)
 *   host_init = true
 *   host_consumed = false
 *
 *   [kernel.0]               # kernels numbered 0..M contiguously
 *   name = spmv_kernel
 *   blocks = 4096
 *   threads = 256
 *   total_load_mib = 512
 *   shared_kib = 16
 *   flops_per_element = 2
 *   ints_per_element = 6     # optional
 *   ctrl_per_element = 1.5   # optional
 *   store_ratio = 0.05       # optional
 *   warps_to_saturate = 10   # optional
 *   async_penalty = 1.0      # optional
 *   depends = 0, 2           # optional declared DAG (lint-checked)
 *   # comma-separated: bufferId:pattern:rw[:touched_fraction][:nostage]
 *   buffers = 0:sequential:r, 2:random:r:1.0:nostage, 3:sequential:w
 */

#ifndef UVMASYNC_WORKLOADS_JOB_LOADER_HH
#define UVMASYNC_WORKLOADS_JOB_LOADER_HH

#include <string>

#include "analysis/diagnostic.hh"
#include "common/kv_config.hh"
#include "runtime/job.hh"

namespace uvmasync
{

/**
 * Build a Job from a parsed description; fatal() on malformed input.
 *
 * Unknown keys are an error: with @p diags null they fatal()
 * immediately (with a did-you-mean hint); otherwise they are
 * collected as UAL013/UAL014 diagnostics and loading continues, so a
 * linter can report every problem in one run.
 */
Job jobFromConfig(const KvConfig &kv,
                  DiagnosticEngine *diags = nullptr);

/** Build a Job from a description file. */
Job loadJobFile(const std::string &path);

} // namespace uvmasync

#endif // UVMASYNC_WORKLOADS_JOB_LOADER_HH
