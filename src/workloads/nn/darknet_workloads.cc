/**
 * @file
 * The four darknet workloads of Table 2 (resnet18, resnet50,
 * yolov3-tiny, yolov3) wired into the registry. Batch size scales
 * with the requested size class so the Super configuration lands in
 * the GB-footprint regime the paper benchmarks.
 */

#include <algorithm>
#include <memory>

#include "workloads/lambda_workload.hh"
#include "workloads/nn/network.hh"
#include "workloads/registry.hh"

namespace uvmasync
{

namespace
{

/** Scale a Super-reference batch with the size class's footprint. */
std::uint32_t
scaleBatch(SizeClass size, std::uint32_t superBatch)
{
    double ratio = static_cast<double>(sizeClassMem(size)) /
                   static_cast<double>(sizeClassMem(SizeClass::Super));
    auto batch = static_cast<std::uint32_t>(
        static_cast<double>(superBatch) * ratio);
    return std::max<std::uint32_t>(batch, 1);
}

} // namespace

void
registerDarknetWorkloads(WorkloadRegistry &reg)
{
    struct Model
    {
        const char *name;
        const char *dataset;
        std::uint32_t superBatch;
        NetworkSpec (*make)(std::uint32_t);
    };
    static const Model models[] = {
        {"resnet18", "ImageNet dataset", 96, makeResnet18},
        {"resnet50", "ImageNet dataset", 48, makeResnet50},
        {"yolov3-tiny", "COCO dataset", 48, makeYolov3Tiny},
        {"yolov3", "COCO dataset", 2, makeYolov3},
    };

    for (const Model &model : models) {
        WorkloadInfo info{
            model.name, WorkloadSuite::App, "Darknet",
            "machine learning",
            std::string(model.name) + " inference on " + model.dataset,
            "Images (3D)"};
        auto make = model.make;
        std::uint32_t superBatch = model.superBatch;
        reg.add(std::make_unique<LambdaWorkload>(
            std::move(info),
            [make, superBatch](SizeClass s, const GeometryOverride &) {
                // Darknet picks its own launch geometry per layer; the
                // block/thread sweep does not apply to these jobs.
                return buildNetworkJob(
                    make(scaleBatch(s, superBatch)));
            }));
    }
}

} // namespace uvmasync
