/**
 * @file
 * Network specification and lowering to a Job: a sequence of
 * per-layer kernels over five buffers (input, packed weights, two
 * ping-pong activation buffers, output). Intermediate activations
 * never leave the device — the structural reason the paper's ML
 * applications gain most from UVM (explicit modes must still copy
 * input+weights; UVM migrates only what the CPU actually touches).
 */

#ifndef UVMASYNC_WORKLOADS_NN_NETWORK_HH
#define UVMASYNC_WORKLOADS_NN_NETWORK_HH

#include <string>
#include <vector>

#include "runtime/job.hh"
#include "workloads/nn/layer.hh"

namespace uvmasync
{

/** A complete network description. */
struct NetworkSpec
{
    std::string name;
    TensorShape input;
    std::uint32_t batch = 1;
    std::vector<LayerSpec> layers;

    /** Total parameter bytes. */
    Bytes weightBytes() const;

    /** Largest activation (bytes, with batch) across layers. */
    Bytes maxActivationBytes() const;

    /** Sum of per-layer fused-multiply-add counts (whole batch). */
    double totalFlops() const;
};

/** Lower a network to an executable Job (one kernel per layer). */
Job buildNetworkJob(const NetworkSpec &net);

/** @{ Model zoo (darknet architectures, approximated faithfully). */
NetworkSpec makeResnet18(std::uint32_t batch);
NetworkSpec makeResnet50(std::uint32_t batch);
NetworkSpec makeYolov3Tiny(std::uint32_t batch);
NetworkSpec makeYolov3(std::uint32_t batch);
/** @} */

} // namespace uvmasync

#endif // UVMASYNC_WORKLOADS_NN_NETWORK_HH
