#include "workloads/nn/layer.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace uvmasync
{

const char *
layerKindName(LayerKind k)
{
    switch (k) {
      case LayerKind::Conv: return "conv";
      case LayerKind::MaxPool: return "maxpool";
      case LayerKind::Shortcut: return "shortcut";
      case LayerKind::Upsample: return "upsample";
      case LayerKind::Connected: return "connected";
      case LayerKind::Route: return "route";
      case LayerKind::Detection: return "detection";
    }
    panic("unknown layer kind %d", static_cast<int>(k));
}

TensorShape
layerOutputShape(const LayerSpec &layer, const TensorShape &in)
{
    TensorShape out = in;
    switch (layer.kind) {
      case LayerKind::Conv:
        out.c = layer.filters;
        out.h = in.h / layer.stride;
        out.w = in.w / layer.stride;
        break;
      case LayerKind::MaxPool:
        out.h = in.h / layer.stride;
        out.w = in.w / layer.stride;
        break;
      case LayerKind::Shortcut:
        break;
      case LayerKind::Upsample:
        out.h = in.h * 2;
        out.w = in.w * 2;
        break;
      case LayerKind::Connected:
        out.c = layer.filters;
        out.h = 1;
        out.w = 1;
        break;
      case LayerKind::Route:
        out.c = in.c + layer.routeChannels;
        break;
      case LayerKind::Detection:
        break;
    }
    UVMASYNC_ASSERT(out.elements() > 0, "layer produced empty tensor");
    return out;
}

Bytes
layerWeightBytes(const LayerSpec &layer, const TensorShape &in)
{
    switch (layer.kind) {
      case LayerKind::Conv:
        return static_cast<Bytes>(layer.ksize) * layer.ksize * in.c *
               layer.filters * 4;
      case LayerKind::Connected:
        return static_cast<Bytes>(in.elements()) * layer.filters * 4;
      default:
        return 0;
    }
}

double
layerFlops(const LayerSpec &layer, const TensorShape &in)
{
    TensorShape out = layerOutputShape(layer, in);
    switch (layer.kind) {
      case LayerKind::Conv:
        return 2.0 * layer.ksize * layer.ksize * in.c *
               static_cast<double>(out.elements());
      case LayerKind::Connected:
        return 2.0 * static_cast<double>(in.elements()) *
               layer.filters;
      case LayerKind::MaxPool:
        return static_cast<double>(in.elements());
      case LayerKind::Shortcut:
      case LayerKind::Upsample:
      case LayerKind::Route:
        return static_cast<double>(out.elements());
      case LayerKind::Detection:
        return 4.0 * static_cast<double>(in.elements());
    }
    return 0.0;
}

KernelDescriptor
lowerLayer(const LayerSpec &layer, const TensorShape &in,
           std::uint32_t batch, std::size_t layerIndex,
           std::size_t inBuf, std::size_t outBuf, double weightShare)
{
    TensorShape out = layerOutputShape(layer, in);
    double flops = layerFlops(layer, in) * batch;
    Bytes weights = layerWeightBytes(layer, in);

    // Global load traffic: im2col-expanded activations plus one pass
    // over the weights (re-reads across output tiles hit the 40 MB
    // L2, which the cache hierarchy model prices separately).
    double actLoads;
    switch (layer.kind) {
      case LayerKind::Conv:
        actLoads = static_cast<double>(layer.ksize) * layer.ksize *
                   in.c * static_cast<double>(out.h) * out.w * 4.0 *
                   batch;
        break;
      case LayerKind::Shortcut:
        actLoads = 2.0 * static_cast<double>(in.bytes(batch));
        break;
      case LayerKind::Route: {
        TensorShape routed = layerOutputShape(layer, in);
        actLoads = static_cast<double>(routed.bytes(batch));
        break;
      }
      default:
        actLoads = static_cast<double>(in.bytes(batch));
        break;
    }
    auto totalLoad = static_cast<Bytes>(
        actLoads + static_cast<double>(weights));
    totalLoad = std::max<Bytes>(totalLoad, kib(64));

    double loadedElements = static_cast<double>(totalLoad) / 4.0;
    Bytes outBytes = out.bytes(batch);

    std::uint64_t blocks = std::max<std::uint64_t>(
        108, static_cast<std::uint64_t>(out.elements()) * batch /
                 (256 * 16));
    blocks = std::min<std::uint64_t>(blocks, 32768);

    KernelDescriptor kd = makeStreamKernel(
        std::string(layerKindName(layer.kind)) + "_" +
            std::to_string(layerIndex),
        blocks, 256, totalLoad, kib(16), 4,
        /*flopsPerElement=*/flops / loadedElements,
        /*intsPerElement=*/10.0, /*ctrlPerElement=*/1.5,
        /*storeRatio=*/static_cast<double>(outBytes) /
            static_cast<double>(totalLoad));
    kd.warpsToSaturate = 8.0;
    // Layer kernels are gemm-shaped; async double buffering adds the
    // same pipeline-management overhead the paper measures on gemm
    // and yolov3 (Section 4.1.2).
    kd.asyncComputePenalty = 1.15;

    // Only the gemm-lowered layers (conv / connected) have an async
    // variant; pool/shortcut/upsample kernels keep their plain form.
    bool staged = layer.kind == LayerKind::Conv ||
                  layer.kind == LayerKind::Connected;
    kd.buffers = {
        // Input activations, read with gemm-like tiling.
        KernelBufferUse{inBuf, AccessPattern::Tiled, true, false, 1.0,
                        staged},
        // This layer's slice of the packed weights.
        KernelBufferUse{1, AccessPattern::Tiled, true, false,
                        std::clamp(weightShare, 0.0, 1.0), staged},
        // Output activations, coalesced stores.
        KernelBufferUse{outBuf, AccessPattern::Sequential, false, true,
                        1.0, staged},
    };
    return kd;
}

} // namespace uvmasync
