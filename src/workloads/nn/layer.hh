/**
 * @file
 * Darknet-style layer descriptions and their lowering to simulated
 * GPU kernels.
 *
 * The paper's four ML applications (resnet18/50, yolov3/-tiny) run
 * darknet, which executes one CUDA kernel chain per layer (im2col +
 * gemm for convolutions). Each layer is lowered to one
 * KernelDescriptor with gemm-like tiling, so yolov3 inherits exactly
 * the regular-access gemm behaviour the paper calls out in
 * Section 4.1.2.
 */

#ifndef UVMASYNC_WORKLOADS_NN_LAYER_HH
#define UVMASYNC_WORKLOADS_NN_LAYER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"
#include "gpu/kernel_descriptor.hh"

namespace uvmasync
{

/** A CHW activation shape (per batch element). */
struct TensorShape
{
    std::uint32_t c = 0;
    std::uint32_t h = 0;
    std::uint32_t w = 0;

    std::uint64_t
    elements() const
    {
        return static_cast<std::uint64_t>(c) * h * w;
    }

    /** Bytes of a float32 activation with the given batch. */
    Bytes
    bytes(std::uint32_t batch) const
    {
        return elements() * 4 * batch;
    }
};

/** Supported darknet layer kinds. */
enum class LayerKind
{
    Conv,      //!< 2D convolution (+BN+activation folded)
    MaxPool,   //!< max pooling
    Shortcut,  //!< residual add
    Upsample,  //!< nearest-neighbour 2x upsample
    Connected, //!< fully connected
    Route,     //!< channel concatenation (darknet route)
    Detection, //!< yolo/softmax head (cheap)
};

/** Human-readable layer kind. */
const char *layerKindName(LayerKind k);

/** One layer of a network specification. */
struct LayerSpec
{
    LayerKind kind = LayerKind::Conv;
    std::uint32_t filters = 0; //!< conv/connected output channels
    std::uint32_t ksize = 3;   //!< conv/pool kernel size
    std::uint32_t stride = 1;
    std::uint32_t routeChannels = 0; //!< extra channels a Route concats
};

/** Output shape of @p layer applied to @p in. */
TensorShape layerOutputShape(const LayerSpec &layer,
                             const TensorShape &in);

/** Parameter bytes of @p layer applied to @p in (0 if stateless). */
Bytes layerWeightBytes(const LayerSpec &layer, const TensorShape &in);

/** Fused multiply-add count of @p layer for one batch element. */
double layerFlops(const LayerSpec &layer, const TensorShape &in);

/**
 * Lower one layer to a kernel descriptor.
 *
 * The network job uses five buffers: 0 = network input, 1 = packed
 * weights, 2/3 = ping-pong activations, 4 = network output. @p inBuf
 * and @p outBuf select the activation buffers for this layer;
 * @p weightShare is this layer's fraction of the packed weights.
 */
KernelDescriptor
lowerLayer(const LayerSpec &layer, const TensorShape &in,
           std::uint32_t batch, std::size_t layerIndex,
           std::size_t inBuf, std::size_t outBuf, double weightShare);

} // namespace uvmasync

#endif // UVMASYNC_WORKLOADS_NN_LAYER_HH
