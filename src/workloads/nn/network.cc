#include "workloads/nn/network.hh"

#include <algorithm>

#include "common/logging.hh"

namespace uvmasync
{

Bytes
NetworkSpec::weightBytes() const
{
    Bytes total = 0;
    TensorShape shape = input;
    for (const LayerSpec &layer : layers) {
        total += layerWeightBytes(layer, shape);
        shape = layerOutputShape(layer, shape);
    }
    return total;
}

Bytes
NetworkSpec::maxActivationBytes() const
{
    Bytes peak = input.bytes(batch);
    TensorShape shape = input;
    for (const LayerSpec &layer : layers) {
        shape = layerOutputShape(layer, shape);
        peak = std::max(peak, shape.bytes(batch));
    }
    return peak;
}

double
NetworkSpec::totalFlops() const
{
    double total = 0.0;
    TensorShape shape = input;
    for (const LayerSpec &layer : layers) {
        total += layerFlops(layer, shape) * batch;
        shape = layerOutputShape(layer, shape);
    }
    return total;
}

Job
buildNetworkJob(const NetworkSpec &net)
{
    UVMASYNC_ASSERT(!net.layers.empty(), "%s: empty network",
                    net.name.c_str());

    Bytes weights = std::max<Bytes>(net.weightBytes(), kib(64));
    Bytes act = std::max<Bytes>(net.maxActivationBytes(), kib(64));

    TensorShape shape = net.input;
    for (std::size_t i = 0; i + 1 < net.layers.size(); ++i)
        shape = layerOutputShape(net.layers[i], shape);
    TensorShape outShape =
        layerOutputShape(net.layers.back(), shape);

    Job job;
    job.name = net.name;
    job.buffers = {
        JobBuffer{"input", net.input.bytes(net.batch), true, false},
        JobBuffer{"weights", weights, true, false},
        // Ping-pong activations: produced and consumed on-device.
        JobBuffer{"act_a", act, false, false},
        JobBuffer{"act_b", act, false, false},
        JobBuffer{"output",
                  std::max<Bytes>(outShape.bytes(net.batch), kib(4)),
                  false, true},
    };

    TensorShape cur = net.input;
    for (std::size_t i = 0; i < net.layers.size(); ++i) {
        const LayerSpec &layer = net.layers[i];
        std::size_t inBuf = i == 0 ? 0 : 2 + ((i - 1) % 2);
        std::size_t outBuf =
            i + 1 == net.layers.size() ? 4 : 2 + (i % 2);
        double share =
            static_cast<double>(layerWeightBytes(layer, cur)) /
            static_cast<double>(weights);
        job.kernels.push_back(lowerLayer(layer, cur, net.batch, i,
                                         inBuf, outBuf, share));
        cur = layerOutputShape(layer, cur);
    }
    return job;
}

namespace
{

/** Append a 2-conv resnet basic block (stride on the first conv). */
void
basicBlock(std::vector<LayerSpec> &layers, std::uint32_t filters,
           std::uint32_t stride)
{
    layers.push_back({LayerKind::Conv, filters, 3, stride});
    layers.push_back({LayerKind::Conv, filters, 3, 1});
    layers.push_back({LayerKind::Shortcut});
}

/** Append a 1x1/3x3/1x1 resnet bottleneck block. */
void
bottleneck(std::vector<LayerSpec> &layers, std::uint32_t filters,
           std::uint32_t stride)
{
    layers.push_back({LayerKind::Conv, filters, 1, 1});
    layers.push_back({LayerKind::Conv, filters, 3, stride});
    layers.push_back({LayerKind::Conv, filters * 4, 1, 1});
    layers.push_back({LayerKind::Shortcut});
}

/** Append a darknet53 residual unit (1x1 squeeze + 3x3 expand). */
void
darknetResidual(std::vector<LayerSpec> &layers, std::uint32_t filters)
{
    layers.push_back({LayerKind::Conv, filters / 2, 1, 1});
    layers.push_back({LayerKind::Conv, filters, 3, 1});
    layers.push_back({LayerKind::Shortcut});
}

} // namespace

NetworkSpec
makeResnet18(std::uint32_t batch)
{
    NetworkSpec net;
    net.name = "resnet18";
    net.input = {3, 224, 224};
    net.batch = batch;
    net.layers.push_back({LayerKind::Conv, 64, 7, 2});
    net.layers.push_back({LayerKind::MaxPool, 0, 2, 2});
    basicBlock(net.layers, 64, 1);
    basicBlock(net.layers, 64, 1);
    basicBlock(net.layers, 128, 2);
    basicBlock(net.layers, 128, 1);
    basicBlock(net.layers, 256, 2);
    basicBlock(net.layers, 256, 1);
    basicBlock(net.layers, 512, 2);
    basicBlock(net.layers, 512, 1);
    net.layers.push_back({LayerKind::MaxPool, 0, 7, 7});
    net.layers.push_back({LayerKind::Connected, 1000});
    return net;
}

NetworkSpec
makeResnet50(std::uint32_t batch)
{
    NetworkSpec net;
    net.name = "resnet50";
    net.input = {3, 224, 224};
    net.batch = batch;
    net.layers.push_back({LayerKind::Conv, 64, 7, 2});
    net.layers.push_back({LayerKind::MaxPool, 0, 2, 2});
    static const struct { std::uint32_t filters, blocks; } stages[] = {
        {64, 3}, {128, 4}, {256, 6}, {512, 3}};
    bool first = true;
    for (const auto &stage : stages) {
        for (std::uint32_t b = 0; b < stage.blocks; ++b) {
            std::uint32_t stride = (b == 0 && !first) ? 2 : 1;
            bottleneck(net.layers, stage.filters, stride);
        }
        first = false;
    }
    net.layers.push_back({LayerKind::MaxPool, 0, 7, 7});
    net.layers.push_back({LayerKind::Connected, 1000});
    return net;
}

NetworkSpec
makeYolov3Tiny(std::uint32_t batch)
{
    NetworkSpec net;
    net.name = "yolov3-tiny";
    net.input = {3, 416, 416};
    net.batch = batch;
    for (std::uint32_t filters : {16, 32, 64, 128, 256, 512}) {
        net.layers.push_back({LayerKind::Conv, filters, 3, 1});
        net.layers.push_back({LayerKind::MaxPool, 0, 2, 2});
    }
    net.layers.push_back({LayerKind::Conv, 1024, 3, 1});
    net.layers.push_back({LayerKind::Conv, 256, 1, 1});
    net.layers.push_back({LayerKind::Conv, 512, 3, 1});
    net.layers.push_back({LayerKind::Conv, 255, 1, 1});
    net.layers.push_back({LayerKind::Detection});
    return net;
}

NetworkSpec
makeYolov3(std::uint32_t batch)
{
    NetworkSpec net;
    net.name = "yolov3";
    net.input = {3, 416, 416};
    net.batch = batch;

    // darknet53 backbone.
    net.layers.push_back({LayerKind::Conv, 32, 3, 1});
    static const struct { std::uint32_t filters, units; } stages[] = {
        {64, 1}, {128, 2}, {256, 8}, {512, 8}, {1024, 4}};
    for (const auto &stage : stages) {
        net.layers.push_back({LayerKind::Conv, stage.filters, 3, 2});
        for (std::uint32_t u = 0; u < stage.units; ++u)
            darknetResidual(net.layers, stage.filters);
    }

    // Detection head (largest scale; the two upsampled scales are
    // folded into equivalent conv work on the same pipeline).
    for (std::uint32_t i = 0; i < 3; ++i) {
        net.layers.push_back({LayerKind::Conv, 512, 1, 1});
        net.layers.push_back({LayerKind::Conv, 1024, 3, 1});
    }
    net.layers.push_back({LayerKind::Conv, 255, 1, 1});
    net.layers.push_back({LayerKind::Upsample});
    // Route: concatenate with the 512-channel stage-4 feature map.
    net.layers.push_back({LayerKind::Route, 0, 1, 1, 512});
    net.layers.push_back({LayerKind::Conv, 256, 1, 1});
    net.layers.push_back({LayerKind::Conv, 255, 1, 1});
    net.layers.push_back({LayerKind::Detection});
    return net;
}

} // namespace uvmasync
