/**
 * @file
 * pathfinder: regular dynamic-programming walk over the grid --
 * the prefetch-friendly end of the spectrum.
 */

#include <algorithm>

#include "workloads/apps/rodinia.hh"
#include "workloads/lambda_workload.hh"

namespace uvmasync
{
namespace rodinia
{

Job
makePathfinderJob(SizeClass size, const GeometryOverride &geo)
{
    std::uint64_t n = grid2d(size);
    Bytes wallBytes = n * n * 4;

    Job job;
    job.name = "pathfinder";
    job.buffers = {
        JobBuffer{"wall", wallBytes, true, false},
        JobBuffer{"result", n * 4, false, true},
    };

    KernelDescriptor kd = makeStreamKernel(
        "pathfinder_dp", pickBlocks(geo, 2048), pickThreads(geo, 256),
        /*totalLoadBytes=*/wallBytes, kib(16), 4,
        /*flopsPerElement=*/3.0, /*intsPerElement=*/6.0,
        /*ctrlPerElement=*/3.0, /*storeRatio=*/0.02);
    kd.warpsToSaturate = 8.0;
    kd.buffers = {
        KernelBufferUse{0, AccessPattern::Sequential, true, false, 1.0,
                        true},
        KernelBufferUse{1, AccessPattern::Sequential, false, true, 1.0,
                        true},
    };
    job.kernels = {kd};
    return job;
}

} // namespace rodinia
} // namespace uvmasync
