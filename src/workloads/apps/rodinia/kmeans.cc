/**
 * @file
 * kmeans: point-assignment plus centroid-update iterations;
 * irregular membership scatter and random centroid access.
 */

#include <algorithm>

#include "workloads/apps/rodinia.hh"
#include "workloads/lambda_workload.hh"

namespace uvmasync
{
namespace rodinia
{

Job
makeKmeansJob(SizeClass size, const GeometryOverride &geo)
{
    std::uint64_t points = grid1d(size) / 2;
    constexpr std::uint32_t dims = 2; // floats per point
    Bytes pointBytes = points * dims * 4;
    Bytes memberBytes = points * 4;
    Bytes centroidBytes = kib(16);

    Job job;
    job.name = "kmeans";
    job.buffers = {
        JobBuffer{"points", pointBytes, true, false},
        JobBuffer{"membership", memberBytes, false, true},
        JobBuffer{"centroids", centroidBytes, true, true},
    };

    KernelDescriptor assign = makeStreamKernel(
        "kmeans_assign", pickBlocks(geo, 4096), pickThreads(geo, 256),
        /*totalLoadBytes=*/pointBytes, kib(16), 8,
        /*flopsPerElement=*/24.0, /*intsPerElement=*/18.0,
        /*ctrlPerElement=*/5.0, /*storeRatio=*/0.5);
    assign.warpsToSaturate = 10.0;
    assign.buffers = {
        KernelBufferUse{0, AccessPattern::Sequential, true, false, 1.0,
                        true},
        KernelBufferUse{1, AccessPattern::Irregular, false, true, 1.0,
                        true},
        KernelBufferUse{2, AccessPattern::Random, true, true, 1.0,
                        false},
    };

    // Centroid update: re-reads the points and memberships and
    // reduces into the (tiny) centroid table.
    KernelDescriptor update = makeStreamKernel(
        "kmeans_update", pickBlocks(geo, 2048), pickThreads(geo, 256),
        /*totalLoadBytes=*/pointBytes + memberBytes, kib(16), 8,
        /*flopsPerElement=*/4.0, /*intsPerElement=*/8.0,
        /*ctrlPerElement=*/2.0, /*storeRatio=*/0.001);
    update.warpsToSaturate = 10.0;
    update.buffers = {
        KernelBufferUse{0, AccessPattern::Sequential, true, false, 1.0,
                        true},
        KernelBufferUse{1, AccessPattern::Sequential, true, false, 1.0,
                        true},
        KernelBufferUse{2, AccessPattern::Random, false, true, 1.0,
                        false},
    };

    job.kernels = {assign, update};
    job.sequenceRepeats = 8; // clustering iterations
    job.prefetchEachLaunch = true;
    return job;
}

} // namespace rodinia
} // namespace uvmasync
