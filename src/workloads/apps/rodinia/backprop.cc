/**
 * @file
 * backprop: layer-forward and weight-adjust kernels over a wide
 * input layer.
 */

#include <algorithm>

#include "workloads/apps/rodinia.hh"
#include "workloads/lambda_workload.hh"

namespace uvmasync
{
namespace rodinia
{

Job
makeBackpropJob(SizeClass size, const GeometryOverride &geo)
{
    std::uint64_t inputUnits = grid1d(size) / 32;
    constexpr std::uint32_t hidden = 16;
    Bytes inBytes = inputUnits * 4;
    Bytes weightBytes = inputUnits * hidden * 4;

    Job job;
    job.name = "backprop";
    job.buffers = {
        JobBuffer{"input", inBytes, true, false},
        JobBuffer{"weights", weightBytes, true, true},
        JobBuffer{"delta", weightBytes, false, false},
    };

    KernelDescriptor forward = makeStreamKernel(
        "backprop_layerforward", pickBlocks(geo, 4096),
        pickThreads(geo, 256),
        /*totalLoadBytes=*/inBytes + weightBytes, kib(16), 4,
        /*flopsPerElement=*/3.0, /*intsPerElement=*/5.0,
        /*ctrlPerElement=*/0.6, /*storeRatio=*/0.1);
    forward.warpsToSaturate = 8.0;
    forward.buffers = {
        KernelBufferUse{0, AccessPattern::Broadcast, true, false, 1.0,
                        true},
        KernelBufferUse{1, AccessPattern::Strided, true, false, 1.0,
                        true},
        KernelBufferUse{2, AccessPattern::Sequential, false, true, 1.0,
                        true},
    };

    KernelDescriptor adjust = makeStreamKernel(
        "backprop_adjust", pickBlocks(geo, 4096),
        pickThreads(geo, 256),
        /*totalLoadBytes=*/weightBytes * 2, kib(16), 4,
        /*flopsPerElement=*/4.0, /*intsPerElement=*/4.0,
        /*ctrlPerElement=*/0.5, /*storeRatio=*/0.5);
    adjust.warpsToSaturate = 8.0;
    adjust.buffers = {
        KernelBufferUse{1, AccessPattern::Sequential, true, true, 1.0,
                        true},
        KernelBufferUse{2, AccessPattern::Sequential, true, false, 1.0,
                        true},
    };

    job.kernels = {forward, adjust};
    return job;
}

} // namespace rodinia
} // namespace uvmasync
