/**
 * @file
 * hotspot: iterative thermal stencil over temperature/power
 * grids.
 */

#include <algorithm>

#include "workloads/apps/rodinia.hh"
#include "workloads/lambda_workload.hh"

namespace uvmasync
{
namespace rodinia
{

Job
makeHotspotJob(SizeClass size, const GeometryOverride &geo)
{
    std::uint64_t n = grid2d(size);
    Bytes gridBytes = n * n * 4;

    Job job;
    job.name = "hotspot";
    job.buffers = {
        JobBuffer{"temperature", gridBytes, true, true},
        JobBuffer{"power", gridBytes, true, false},
    };

    KernelDescriptor kd = makeStreamKernel(
        "hotspot_step", pickBlocks(geo, 4096), pickThreads(geo, 256),
        /*totalLoadBytes=*/gridBytes * 2, kib(16), 4,
        /*flopsPerElement=*/15.0, /*intsPerElement=*/8.0,
        /*ctrlPerElement=*/1.5, /*storeRatio=*/0.5);
    kd.warpsToSaturate = 12.0;
    kd.buffers = {
        KernelBufferUse{0, AccessPattern::Tiled, true, true, 1.0,
                        true},
        KernelBufferUse{1, AccessPattern::Tiled, true, false, 1.0,
                        true},
    };
    job.kernels = {kd};
    job.sequenceRepeats = 8; // pyramid time steps
    return job;
}

} // namespace rodinia
} // namespace uvmasync
