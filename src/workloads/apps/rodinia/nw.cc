/**
 * @file
 * Needleman-Wunsch: two wavefront kernels alternating over the
 * same matrices for many launches; the harness re-prefetches each
 * launch (the Section 4.1.2 churn effect).
 */

#include <algorithm>

#include "workloads/apps/rodinia.hh"
#include "workloads/lambda_workload.hh"

namespace uvmasync
{
namespace rodinia
{

Job
makeNwJob(SizeClass size, const GeometryOverride &geo)
{
    std::uint64_t n = grid2d(size);
    Bytes matBytes = n * n * 4;

    Job job;
    job.name = "nw";
    job.buffers = {
        JobBuffer{"score", matBytes, true, true},
        JobBuffer{"reference", matBytes, true, false},
    };

    // Wavefront: two kernels alternate over the same matrices for
    // many diagonal steps (compressed here to keep simulation cheap
    // while preserving the many-launch structure).
    std::uint32_t repeats = 24;
    auto makeHalf = [&](const char *name) {
        KernelDescriptor kd = makeStreamKernel(
            name, pickBlocks(geo, 512), pickThreads(geo, 128),
            /*totalLoadBytes=*/(matBytes * 2) / repeats / 2, kib(8), 4,
            /*flopsPerElement=*/4.0, /*intsPerElement=*/8.0,
            /*ctrlPerElement=*/4.0, /*storeRatio=*/0.5);
        kd.warpsToSaturate = 8.0;
        kd.buffers = {
            KernelBufferUse{0, AccessPattern::Strided, true, true, 1.0,
                            true},
            KernelBufferUse{1, AccessPattern::Strided, true, false, 1.0,
                            true},
        };
        return kd;
    };
    job.kernels = {makeHalf("nw_upper_left"),
                   makeHalf("nw_lower_right")};
    job.sequenceRepeats = repeats;
    // The harness re-issues cudaMemPrefetchAsync before every launch;
    // with two kernels sharing the data this is pure churn.
    job.prefetchEachLaunch = true;
    return job;
}

} // namespace rodinia
} // namespace uvmasync
