/**
 * @file
 * srad: two tiled PDE kernels iterating over the image.
 */

#include <algorithm>

#include "workloads/apps/rodinia.hh"
#include "workloads/lambda_workload.hh"

namespace uvmasync
{
namespace rodinia
{

Job
makeSradJob(SizeClass size, const GeometryOverride &geo)
{
    std::uint64_t n = grid2d(size);
    Bytes gridBytes = n * n * 4;

    Job job;
    job.name = "srad";
    job.buffers = {
        JobBuffer{"image", gridBytes, true, true},
        JobBuffer{"coeff", gridBytes, false, false},
    };

    std::uint32_t repeats = 8;
    auto makeKernel = [&](const char *name, double flops) {
        KernelDescriptor kd = makeStreamKernel(
            name, pickBlocks(geo, 4096), pickThreads(geo, 256),
            /*totalLoadBytes=*/gridBytes, kib(16), 4,
            flops, /*intsPerElement=*/8.0,
            /*ctrlPerElement=*/1.5, /*storeRatio=*/0.8);
        kd.warpsToSaturate = 10.0;
        kd.buffers = {
            KernelBufferUse{0, AccessPattern::Tiled, true, true, 1.0,
                            true},
            KernelBufferUse{1, AccessPattern::Tiled, true, true, 1.0,
                            true},
        };
        return kd;
    };
    job.kernels = {makeKernel("srad_diffuse", 14.0),
                   makeKernel("srad_update", 10.0)};
    job.sequenceRepeats = repeats;
    return job;
}

} // namespace rodinia
} // namespace uvmasync
