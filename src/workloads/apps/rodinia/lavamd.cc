/**
 * @file
 * lavaMD: compute-dense particle-potential kernel with
 * irregular neighbour-box gathers.
 */

#include <algorithm>

#include "workloads/apps/rodinia.hh"
#include "workloads/lambda_workload.hh"

namespace uvmasync
{
namespace rodinia
{

Job
makeLavaMdJob(SizeClass size, const GeometryOverride &geo)
{
    std::uint64_t n = grid3d(size);
    // Boxes of 8^3 cells; ~100 particles of 16 B state per box slot.
    std::uint64_t boxes = (n / 8) * (n / 8) * (n / 8);
    Bytes posBytes = n * n * n * 4;      // particle positions+charge
    Bytes forceBytes = posBytes / 2;

    Job job;
    job.name = "lavaMD";
    job.buffers = {
        JobBuffer{"positions", posBytes, true, false},
        JobBuffer{"forces", forceBytes, false, true},
    };

    KernelDescriptor kd = makeStreamKernel(
        "lavamd_potential",
        pickBlocks(geo, std::max<std::uint64_t>(boxes, 64)),
        pickThreads(geo, 128),
        // Each box re-reads its 27-neighbourhood.
        /*totalLoadBytes=*/posBytes * 4, kib(24), 16,
        /*flopsPerElement=*/110.0, /*intsPerElement=*/30.0,
        /*ctrlPerElement=*/6.0, /*storeRatio=*/0.12);
    kd.warpsToSaturate = 12.0;
    kd.buffers = {
        KernelBufferUse{0, AccessPattern::Irregular, true, false, 1.0,
                        true},
        KernelBufferUse{1, AccessPattern::Sequential, false, true, 1.0,
                        true},
    };
    job.kernels = {kd};
    return job;
}

} // namespace rodinia
} // namespace uvmasync
