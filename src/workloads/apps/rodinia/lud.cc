/**
 * @file
 * lud: branch-heavy, irregular perimeter/internal kernels -- the
 * paper's showcase for async memcpy (Figures 9/10).
 */

#include <algorithm>

#include "workloads/apps/rodinia.hh"
#include "workloads/lambda_workload.hh"

namespace uvmasync
{
namespace rodinia
{

Job
makeLudJob(SizeClass size, const GeometryOverride &geo)
{
    std::uint64_t n = grid2d(size);
    Bytes matBytes = n * n * 4;

    Job job;
    job.name = "lud";
    job.buffers = {
        JobBuffer{"matrix", matBytes, true, true},
    };

    std::uint32_t repeats = 16;
    // Perimeter kernel: data-dependent row/column walks, very
    // branch-heavy (pivoting); the control-rich baseline is why
    // async memcpy's extra control instructions barely register on
    // lud (Figure 9a).
    KernelDescriptor perimeter = makeStreamKernel(
        "lud_perimeter", pickBlocks(geo, 1024), pickThreads(geo, 128),
        /*totalLoadBytes=*/matBytes / repeats, kib(16), 4,
        /*flopsPerElement=*/6.0, /*intsPerElement=*/14.0,
        /*ctrlPerElement=*/8.0, /*storeRatio=*/0.6);
    perimeter.warpsToSaturate = 10.0;
    perimeter.buffers = {
        KernelBufferUse{0, AccessPattern::Irregular, true, true, 1.0,
                        true},
    };

    // Internal kernel: trailing submatrix update, still irregular
    // through the pivot indirection.
    KernelDescriptor internal = makeStreamKernel(
        "lud_internal", pickBlocks(geo, 4096), pickThreads(geo, 256),
        /*totalLoadBytes=*/matBytes * 2 / repeats, kib(16), 4,
        /*flopsPerElement=*/10.0, /*intsPerElement=*/12.0,
        /*ctrlPerElement=*/6.0, /*storeRatio=*/0.8);
    internal.warpsToSaturate = 10.0;
    internal.buffers = {
        KernelBufferUse{0, AccessPattern::Irregular, true, true, 1.0,
                        true},
    };

    job.kernels = {perimeter, internal};
    job.sequenceRepeats = repeats;
    job.prefetchEachLaunch = true;
    return job;
}

} // namespace rodinia
} // namespace uvmasync
