/**
 * @file
 * The two UVMBench applications the paper keeps (the rest of
 * UVMBench overlaps PolyBench/Rodinia): bayesian network learning and
 * K-nearest neighbours. The paper added the Async Memcpy versions;
 * here both ride the same descriptor machinery as everything else.
 */

#include <memory>

#include "workloads/lambda_workload.hh"
#include "workloads/registry.hh"

namespace uvmasync
{

namespace
{

Job
makeBayesianJob(SizeClass size, const GeometryOverride &geo)
{
    std::uint64_t nodes = grid1d(size) / 4;
    Bytes stateBytes = nodes * 4;
    Bytes cptBytes = nodes * 8; // conditional probability tables

    Job job;
    job.name = "BN";
    job.buffers = {
        JobBuffer{"states", stateBytes, true, false},
        JobBuffer{"cpt", cptBytes, true, true},
        JobBuffer{"scores", stateBytes, false, true},
    };

    // Structure-learning sweep: parent-set scoring with
    // data-dependent table indexing.
    KernelDescriptor kd = makeStreamKernel(
        "bn_score", pickBlocks(geo, 2048), pickThreads(geo, 128),
        /*totalLoadBytes=*/stateBytes + cptBytes, kib(16), 4,
        /*flopsPerElement=*/10.0, /*intsPerElement=*/14.0,
        /*ctrlPerElement=*/5.0, /*storeRatio=*/0.3);
    kd.warpsToSaturate = 10.0;
    kd.buffers = {
        KernelBufferUse{0, AccessPattern::Sequential, true, false, 1.0,
                        true},
        KernelBufferUse{1, AccessPattern::Irregular, true, true, 1.0,
                        true},
        KernelBufferUse{2, AccessPattern::Sequential, false, true, 1.0,
                        true},
    };
    job.kernels = {kd};
    job.sequenceRepeats = 4;
    return job;
}

Job
makeKnnJob(SizeClass size, const GeometryOverride &geo)
{
    std::uint64_t points = grid1d(size) / 2;
    Bytes pointBytes = points * 4;
    Bytes distBytes = points * 4;

    Job job;
    job.name = "knn";
    job.buffers = {
        JobBuffer{"points", pointBytes, true, false},
        JobBuffer{"distances", distBytes, false, true},
        JobBuffer{"query", kib(4), true, false},
    };

    KernelDescriptor distance = makeStreamKernel(
        "knn_distance", pickBlocks(geo, 4096), pickThreads(geo, 256),
        /*totalLoadBytes=*/pointBytes, kib(16), 4,
        /*flopsPerElement=*/8.0, /*intsPerElement=*/6.0,
        /*ctrlPerElement=*/0.8, /*storeRatio=*/1.0);
    distance.warpsToSaturate = 8.0;
    distance.buffers = {
        KernelBufferUse{0, AccessPattern::Sequential, true, false, 1.0,
                        true},
        KernelBufferUse{1, AccessPattern::Sequential, false, true, 1.0,
                        true},
        KernelBufferUse{2, AccessPattern::Broadcast, true, false, 1.0,
                        false},
    };

    // Partial selection of the k smallest distances.
    KernelDescriptor select = makeStreamKernel(
        "knn_select", pickBlocks(geo, 1024), pickThreads(geo, 256),
        /*totalLoadBytes=*/distBytes, kib(16), 4,
        /*flopsPerElement=*/1.0, /*intsPerElement=*/6.0,
        /*ctrlPerElement=*/4.0, /*storeRatio=*/0.01);
    select.warpsToSaturate = 8.0;
    select.buffers = {
        KernelBufferUse{1, AccessPattern::Sequential, true, false, 1.0,
                        true},
    };

    job.kernels = {distance, select};
    return job;
}

} // namespace

void
registerUvmbenchWorkloads(WorkloadRegistry &reg)
{
    auto add = [&](WorkloadInfo info, LambdaWorkload::Factory f) {
        reg.add(std::make_unique<LambdaWorkload>(std::move(info),
                                                 std::move(f)));
    };

    add({"BN", WorkloadSuite::App, "UVMBench", "machine learning",
         "Bayesian network structure learning", "Nodes (1D)"},
        makeBayesianJob);

    add({"knn", WorkloadSuite::App, "UVMBench", "data mining",
         "K-Nearest Neighbors classification", "Points (1D)"},
        makeKnnJob);
}

} // namespace uvmasync
