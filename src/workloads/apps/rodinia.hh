/**
 * @file
 * Per-application job factories of the Rodinia subset (Table 2).
 * Each factory lives in its own translation unit under
 * workloads/apps/rodinia/; registration happens in
 * rodinia_workloads.cc.
 */

#ifndef UVMASYNC_WORKLOADS_APPS_RODINIA_HH
#define UVMASYNC_WORKLOADS_APPS_RODINIA_HH

#include "runtime/job.hh"
#include "workloads/workload.hh"

namespace uvmasync
{
namespace rodinia
{

/** lavaMD: particle potential within a 3D box space. */
Job makeLavaMdJob(SizeClass size, const GeometryOverride &geo);

/** nw: Needleman-Wunsch wavefront alignment (two kernels, many
 *  launches, per-launch re-prefetch churn). */
Job makeNwJob(SizeClass size, const GeometryOverride &geo);

/** kmeans: assignment + centroid-update iterations. */
Job makeKmeansJob(SizeClass size, const GeometryOverride &geo);

/** srad: two-kernel anisotropic-diffusion iterations. */
Job makeSradJob(SizeClass size, const GeometryOverride &geo);

/** backprop: layer-forward + weight-adjust pair. */
Job makeBackpropJob(SizeClass size, const GeometryOverride &geo);

/** pathfinder: dynamic-programming grid walk. */
Job makePathfinderJob(SizeClass size, const GeometryOverride &geo);

/** hotspot: iterative thermal stencil. */
Job makeHotspotJob(SizeClass size, const GeometryOverride &geo);

/** lud: irregular perimeter/internal decomposition iterations. */
Job makeLudJob(SizeClass size, const GeometryOverride &geo);

} // namespace rodinia
} // namespace uvmasync

#endif // UVMASYNC_WORKLOADS_APPS_RODINIA_HH
