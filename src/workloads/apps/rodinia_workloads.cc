/**
 * @file
 * Registration of the eight Rodinia applications (Table 2). The
 * per-application job factories live in workloads/apps/rodinia/;
 * the traits that matter to the paper's findings are documented
 * there.
 */

#include <memory>

#include "workloads/apps/rodinia.hh"
#include "workloads/lambda_workload.hh"
#include "workloads/registry.hh"

namespace uvmasync
{

void
registerRodiniaWorkloads(WorkloadRegistry &reg)
{
    auto add = [&](WorkloadInfo info, LambdaWorkload::Factory f) {
        reg.add(std::make_unique<LambdaWorkload>(std::move(info),
                                                 std::move(f)));
    };

    add({"lavaMD", WorkloadSuite::App, "Rodinia", "physics simulation",
         "Particle potential and relocation within a 3D space",
         "Box (3D)"},
        rodinia::makeLavaMdJob);

    add({"nw", WorkloadSuite::App, "Rodinia", "bioinformatics",
         "Needleman-Wunsch DNA sequence alignment", "Sequence (2D)"},
        rodinia::makeNwJob);

    add({"kmeans", WorkloadSuite::App, "Rodinia", "data mining",
         "K-means clustering", "Points (1D)"},
        rodinia::makeKmeansJob);

    add({"srad", WorkloadSuite::App, "Rodinia", "image processing",
         "Speckle Reducing Anisotropic Diffusion (PDE)", "Grid (2D)"},
        rodinia::makeSradJob);

    add({"backprop", WorkloadSuite::App, "Rodinia",
         "machine learning",
         "Back propagation training of a layered network",
         "Nodes (1D)"},
        rodinia::makeBackpropJob);

    add({"pathfinder", WorkloadSuite::App, "Rodinia",
         "dynamic programming",
         "Dynamic-programming path search on a 2D grid", "Grid (2D)"},
        rodinia::makePathfinderJob);

    add({"hotspot", WorkloadSuite::App, "Rodinia",
         "physics simulation",
         "Processor temperature estimation from a floorplan",
         "Grid (2D)"},
        rodinia::makeHotspotJob);

    add({"lud", WorkloadSuite::App, "Rodinia", "linear algebra",
         "LU decomposition of a dense linear system", "Grid (2D)"},
        rodinia::makeLudJob);
}


} // namespace uvmasync
