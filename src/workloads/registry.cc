#include "workloads/registry.hh"

#include <mutex>

#include "common/logging.hh"

namespace uvmasync
{

WorkloadRegistry &
WorkloadRegistry::instance()
{
    static WorkloadRegistry registry;
    return registry;
}

void
WorkloadRegistry::add(std::unique_ptr<Workload> workload)
{
    UVMASYNC_ASSERT(workload != nullptr, "registering null workload");
    UVMASYNC_ASSERT(find(workload->name()) == nullptr,
                    "duplicate workload '%s'",
                    workload->name().c_str());
    workloads_.push_back(std::move(workload));
}

const Workload *
WorkloadRegistry::find(const std::string &name) const
{
    for (const auto &w : workloads_) {
        if (w->name() == name)
            return w.get();
    }
    return nullptr;
}

const Workload &
WorkloadRegistry::get(const std::string &name) const
{
    const Workload *w = find(name);
    if (!w)
        fatal("unknown workload '%s'", name.c_str());
    return *w;
}

std::vector<std::string>
WorkloadRegistry::names() const
{
    std::vector<std::string> out;
    out.reserve(workloads_.size());
    for (const auto &w : workloads_)
        out.push_back(w->name());
    return out;
}

std::vector<std::string>
WorkloadRegistry::names(WorkloadSuite suite) const
{
    std::vector<std::string> out;
    for (const auto &w : workloads_) {
        if (w->info().suite == suite)
            out.push_back(w->name());
    }
    return out;
}

void
registerAllWorkloads()
{
    // once_flag rather than a size check: worker threads of the
    // parallel engine construct Experiments concurrently, and the
    // registry must be populated exactly once before they read it.
    static std::once_flag once;
    std::call_once(once, [] {
        WorkloadRegistry &reg = WorkloadRegistry::instance();
        if (reg.size() > 0)
            return;
        registerMicroWorkloads(reg);
        registerRodiniaWorkloads(reg);
        registerUvmbenchWorkloads(reg);
        registerDarknetWorkloads(reg);
    });
}

} // namespace uvmasync
