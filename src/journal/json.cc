#include "journal/json.hh"

#include <cctype>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>

#include "common/logging.hh"

namespace uvmasync
{

std::string
jsonEscape(const std::string &text)
{
    std::string out;
    out.reserve(text.size());
    for (char c : text) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20)
                out += strfmt("\\u%04x", c);
            else
                out += c;
        }
    }
    return out;
}

std::string
hexDouble(double value)
{
    return strfmt("%a", value);
}

bool
parseHexDouble(const std::string &text, double &out)
{
    if (text.empty())
        return false;
    char *end = nullptr;
    double v = std::strtod(text.c_str(), &end);
    if (end != text.c_str() + text.size())
        return false;
    out = v;
    return true;
}

std::string
hexU64(std::uint64_t value)
{
    return strfmt("%016" PRIx64, value);
}

bool
parseHexU64(const std::string &text, std::uint64_t &out)
{
    if (text.size() != 16)
        return false;
    std::uint64_t v = 0;
    for (char c : text) {
        int digit;
        if (c >= '0' && c <= '9')
            digit = c - '0';
        else if (c >= 'a' && c <= 'f')
            digit = c - 'a' + 10;
        else
            return false;
        v = (v << 4) | static_cast<std::uint64_t>(digit);
    }
    out = v;
    return true;
}

// --- writer -------------------------------------------------------

void
JsonWriter::comma()
{
    if (!first_.empty()) {
        if (!first_.back())
            out_ += ',';
        first_.back() = 0;
    }
}

JsonWriter &
JsonWriter::beginObject()
{
    comma();
    out_ += '{';
    first_.push_back(1);
    return *this;
}

JsonWriter &
JsonWriter::endObject()
{
    UVMASYNC_ASSERT(!first_.empty(), "endObject outside a scope");
    out_ += '}';
    first_.pop_back();
    return *this;
}

JsonWriter &
JsonWriter::beginArray()
{
    comma();
    out_ += '[';
    first_.push_back(1);
    return *this;
}

JsonWriter &
JsonWriter::endArray()
{
    UVMASYNC_ASSERT(!first_.empty(), "endArray outside a scope");
    out_ += ']';
    first_.pop_back();
    return *this;
}

JsonWriter &
JsonWriter::key(const std::string &name)
{
    comma();
    out_ += '"';
    out_ += jsonEscape(name);
    out_ += "\":";
    // The value that follows must not emit another comma.
    if (!first_.empty())
        first_.back() = 1;
    return *this;
}

JsonWriter &
JsonWriter::value(std::uint64_t v)
{
    comma();
    out_ += strfmt("%" PRIu64, v);
    return *this;
}

JsonWriter &
JsonWriter::value(bool v)
{
    comma();
    out_ += v ? "true" : "false";
    return *this;
}

JsonWriter &
JsonWriter::value(const std::string &v)
{
    comma();
    out_ += '"';
    out_ += jsonEscape(v);
    out_ += '"';
    return *this;
}

JsonWriter &
JsonWriter::value(const char *v)
{
    return value(std::string(v));
}

JsonWriter &
JsonWriter::hex(double v)
{
    return value(hexDouble(v));
}

JsonWriter &
JsonWriter::raw(const std::string &json)
{
    comma();
    out_ += json;
    return *this;
}

// --- reader -------------------------------------------------------

const JsonValue *
JsonValue::find(const std::string &name) const
{
    if (kind != Kind::Object)
        return nullptr;
    for (const auto &member : members) {
        if (member.first == name)
            return &member.second;
    }
    return nullptr;
}

bool
JsonValue::asUint(std::uint64_t &out) const
{
    if (kind != Kind::Number || text.empty())
        return false;
    char *end = nullptr;
    unsigned long long v = std::strtoull(text.c_str(), &end, 10);
    if (end != text.c_str() + text.size())
        return false;
    out = v;
    return true;
}

bool
JsonValue::asHex(double &out) const
{
    if (kind != Kind::String)
        return false;
    return parseHexDouble(text, out);
}

namespace
{

/** Recursive-descent parser over a complete in-memory document. */
class Parser
{
  public:
    Parser(const std::string &text, std::string &error)
        : text_(text), error_(error)
    {
    }

    bool
    parse(JsonValue &out)
    {
        skipSpace();
        if (!parseValue(out, 0))
            return false;
        skipSpace();
        if (pos_ != text_.size())
            return fail("trailing garbage");
        return true;
    }

  private:
    bool
    fail(const char *why)
    {
        error_ = strfmt("%s at byte %zu", why, pos_);
        return false;
    }

    void
    skipSpace()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
    }

    bool
    literal(const char *word)
    {
        std::size_t n = std::string(word).size();
        if (text_.compare(pos_, n, word) != 0)
            return false;
        pos_ += n;
        return true;
    }

    bool
    parseString(std::string &out)
    {
        if (pos_ >= text_.size() || text_[pos_] != '"')
            return fail("expected string");
        ++pos_;
        out.clear();
        while (pos_ < text_.size()) {
            char c = text_[pos_++];
            if (c == '"')
                return true;
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos_ >= text_.size())
                break;
            char esc = text_[pos_++];
            switch (esc) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case '/': out += '/'; break;
              case 'n': out += '\n'; break;
              case 'r': out += '\r'; break;
              case 't': out += '\t'; break;
              case 'b': out += '\b'; break;
              case 'f': out += '\f'; break;
              case 'u': {
                if (pos_ + 4 > text_.size())
                    return fail("bad \\u escape");
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    char h = text_[pos_++];
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code |= static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        code |= static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        code |= static_cast<unsigned>(h - 'A' + 10);
                    else
                        return fail("bad \\u escape");
                }
                // The journal only writes \u00xx control escapes.
                if (code > 0xff)
                    return fail("unsupported \\u escape");
                out += static_cast<char>(code);
                break;
              }
              default:
                return fail("unknown escape");
            }
        }
        return fail("unterminated string");
    }

    bool
    parseValue(JsonValue &out, int depth)
    {
        if (depth > 64)
            return fail("nesting too deep");
        skipSpace();
        if (pos_ >= text_.size())
            return fail("unexpected end of input");
        char c = text_[pos_];
        if (c == '{') {
            ++pos_;
            out.kind = JsonValue::Kind::Object;
            skipSpace();
            if (pos_ < text_.size() && text_[pos_] == '}') {
                ++pos_;
                return true;
            }
            for (;;) {
                skipSpace();
                std::string name;
                if (!parseString(name))
                    return false;
                skipSpace();
                if (pos_ >= text_.size() || text_[pos_] != ':')
                    return fail("expected ':'");
                ++pos_;
                JsonValue member;
                if (!parseValue(member, depth + 1))
                    return false;
                out.members.emplace_back(std::move(name),
                                         std::move(member));
                skipSpace();
                if (pos_ >= text_.size())
                    return fail("unterminated object");
                if (text_[pos_] == ',') {
                    ++pos_;
                    continue;
                }
                if (text_[pos_] == '}') {
                    ++pos_;
                    return true;
                }
                return fail("expected ',' or '}'");
            }
        }
        if (c == '[') {
            ++pos_;
            out.kind = JsonValue::Kind::Array;
            skipSpace();
            if (pos_ < text_.size() && text_[pos_] == ']') {
                ++pos_;
                return true;
            }
            for (;;) {
                JsonValue item;
                if (!parseValue(item, depth + 1))
                    return false;
                out.items.push_back(std::move(item));
                skipSpace();
                if (pos_ >= text_.size())
                    return fail("unterminated array");
                if (text_[pos_] == ',') {
                    ++pos_;
                    continue;
                }
                if (text_[pos_] == ']') {
                    ++pos_;
                    return true;
                }
                return fail("expected ',' or ']'");
            }
        }
        if (c == '"') {
            out.kind = JsonValue::Kind::String;
            return parseString(out.text);
        }
        if (literal("true")) {
            out.kind = JsonValue::Kind::Bool;
            out.boolean = true;
            return true;
        }
        if (literal("false")) {
            out.kind = JsonValue::Kind::Bool;
            out.boolean = false;
            return true;
        }
        if (literal("null")) {
            out.kind = JsonValue::Kind::Null;
            return true;
        }
        if (c == '-' || std::isdigit(static_cast<unsigned char>(c))) {
            out.kind = JsonValue::Kind::Number;
            std::size_t start = pos_;
            while (pos_ < text_.size() &&
                   (std::isdigit(
                        static_cast<unsigned char>(text_[pos_])) ||
                    text_[pos_] == '-' || text_[pos_] == '+' ||
                    text_[pos_] == '.' || text_[pos_] == 'e' ||
                    text_[pos_] == 'E'))
                ++pos_;
            out.text = text_.substr(start, pos_ - start);
            return true;
        }
        return fail("unexpected character");
    }

    const std::string &text_;
    std::string &error_;
    std::size_t pos_ = 0;
};

} // namespace

bool
parseJson(const std::string &text, JsonValue &out, std::string &error)
{
    out = JsonValue{};
    Parser parser(text, error);
    return parser.parse(out);
}

} // namespace uvmasync
