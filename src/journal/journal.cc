#include "journal/journal.hh"

#include <cinttypes>
#include <cstring>

#include "common/logging.hh"
#include "journal/json.hh"
#include "workloads/size_class.hh"

namespace uvmasync
{

namespace
{

constexpr int journalVersion = 1;

// Same FNV-1a / splitmix64 combination the ParallelRunner uses for
// point seeds: stable across platforms, no std::hash.
std::uint64_t
fnv1a(std::uint64_t h, const void *data, std::size_t len)
{
    const unsigned char *p = static_cast<const unsigned char *>(data);
    for (std::size_t i = 0; i < len; ++i) {
        h ^= p[i];
        h *= 0x100000001b3ull;
    }
    return h;
}

std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

/** Accumulates configuration fields into one FNV-1a state. */
class ConfigHasher
{
  public:
    void
    str(const std::string &s)
    {
        h_ = fnv1a(h_, s.data(), s.size());
        h_ = fnv1a(h_, "\0", 1); // unambiguous field boundary
    }

    void
    u64(std::uint64_t v)
    {
        h_ = fnv1a(h_, &v, sizeof(v));
    }

    void
    f64(double v)
    {
        std::uint64_t bits = 0;
        std::memcpy(&bits, &v, sizeof(bits));
        u64(bits);
    }

    std::uint64_t hash() const { return mix64(h_); }

  private:
    std::uint64_t h_ = 0xcbf29ce484222325ull;
};

bool
parsePointStatus(const std::string &text, PointStatus &out)
{
    for (PointStatus s :
         {PointStatus::Ok, PointStatus::Aborted, PointStatus::Timeout,
          PointStatus::Failed, PointStatus::Quarantined,
          PointStatus::Cancelled}) {
        if (text == pointStatusName(s)) {
            out = s;
            return true;
        }
    }
    return false;
}

void
writeBreakdown(JsonWriter &w, const TimeBreakdown &b)
{
    w.beginArray().hex(b.allocPs).hex(b.transferPs).hex(b.kernelPs)
        .endArray();
}

bool
readBreakdown(const JsonValue &v, TimeBreakdown &out)
{
    if (!v.isArray() || v.items.size() != 3)
        return false;
    return v.items[0].asHex(out.allocPs) &&
           v.items[1].asHex(out.transferPs) &&
           v.items[2].asHex(out.kernelPs);
}

// InjectCounters as a flat array — field order is part of the
// journal format (version-gated), keep it in sync with injector.hh.
void
writeInjectCounters(JsonWriter &w, const InjectCounters &c)
{
    w.beginArray();
    for (std::uint64_t v :
         {c.degradedTransfers, c.degradedBusyPs, c.transientFailures,
          c.retries, c.aborts, c.backoffPs, c.overflowBatches,
          c.delayedBatches, c.faultDelayPs, c.backpressureEvents,
          c.backpressurePs, c.stormEvictions, c.slowPageTransfers,
          c.jitteredLaunches, c.jitterPs})
        w.value(v);
    w.endArray();
}

bool
readInjectCounters(const JsonValue &v, InjectCounters &out)
{
    if (!v.isArray() || v.items.size() != 15)
        return false;
    std::uint64_t *fields[15] = {
        &out.degradedTransfers, &out.degradedBusyPs,
        &out.transientFailures, &out.retries, &out.aborts,
        &out.backoffPs, &out.overflowBatches, &out.delayedBatches,
        &out.faultDelayPs, &out.backpressureEvents,
        &out.backpressurePs, &out.stormEvictions,
        &out.slowPageTransfers, &out.jitteredLaunches, &out.jitterPs};
    for (std::size_t i = 0; i < 15; ++i) {
        if (!v.items[i].asUint(*fields[i]))
            return false;
    }
    return true;
}

} // namespace

void
writeResultJson(JsonWriter &w, const ExperimentResult &r)
{
    w.beginObject();
    w.key("workload").value(r.workload);
    w.key("mode").value(transferModeName(r.mode));
    w.key("size").value(sizeClassName(r.size));
    w.key("clean");
    writeBreakdown(w, r.clean);
    w.key("runs").beginArray();
    for (const TimeBreakdown &b : r.runs)
        writeBreakdown(w, b);
    w.endArray();
    const RunCounters &c = r.counters;
    w.key("counters").beginObject();
    w.key("instrs")
        .beginArray()
        .hex(c.instrs.memory)
        .hex(c.instrs.fp)
        .hex(c.instrs.integer)
        .hex(c.instrs.control)
        .endArray();
    w.key("faults").value(c.faults);
    w.key("l1_load").hex(c.l1LoadMissRate);
    w.key("l1_store").hex(c.l1StoreMissRate);
    w.key("occupancy").hex(c.occupancy);
    w.key("stall").value(c.stallTime);
    w.key("bytes_h2d").value(c.bytesH2d);
    w.key("bytes_d2h").value(c.bytesD2h);
    w.key("launches").value(c.launches);
    w.endObject();
    w.key("inject");
    writeInjectCounters(w, r.injectCounters);
    w.endObject();
}

bool
readResultJson(const JsonValue &v, ExperimentResult &out)
{
    if (!v.isObject())
        return false;
    const JsonValue *workload = v.find("workload");
    const JsonValue *mode = v.find("mode");
    const JsonValue *size = v.find("size");
    const JsonValue *clean = v.find("clean");
    const JsonValue *runs = v.find("runs");
    const JsonValue *counters = v.find("counters");
    const JsonValue *inject = v.find("inject");
    if (!workload || !workload->isString() || !mode ||
        !mode->isString() || !size || !size->isString() || !clean ||
        !runs || !runs->isArray() || !counters ||
        !counters->isObject() || !inject)
        return false;
    out.workload = workload->text;
    if (!parseTransferMode(mode->text, out.mode))
        return false;
    if (!parseSizeClass(size->text, out.size))
        return false;
    if (!readBreakdown(*clean, out.clean))
        return false;
    out.runs.clear();
    out.runs.reserve(runs->items.size());
    for (const JsonValue &item : runs->items) {
        TimeBreakdown b;
        if (!readBreakdown(item, b))
            return false;
        out.runs.push_back(b);
    }
    RunCounters &c = out.counters;
    const JsonValue *instrs = counters->find("instrs");
    if (!instrs || !instrs->isArray() || instrs->items.size() != 4 ||
        !instrs->items[0].asHex(c.instrs.memory) ||
        !instrs->items[1].asHex(c.instrs.fp) ||
        !instrs->items[2].asHex(c.instrs.integer) ||
        !instrs->items[3].asHex(c.instrs.control))
        return false;
    const JsonValue *faults = counters->find("faults");
    const JsonValue *l1Load = counters->find("l1_load");
    const JsonValue *l1Store = counters->find("l1_store");
    const JsonValue *occupancy = counters->find("occupancy");
    const JsonValue *stall = counters->find("stall");
    const JsonValue *bytesH2d = counters->find("bytes_h2d");
    const JsonValue *bytesD2h = counters->find("bytes_d2h");
    const JsonValue *launches = counters->find("launches");
    if (!faults || !faults->asUint(c.faults) || !l1Load ||
        !l1Load->asHex(c.l1LoadMissRate) || !l1Store ||
        !l1Store->asHex(c.l1StoreMissRate) || !occupancy ||
        !occupancy->asHex(c.occupancy) || !stall ||
        !stall->asUint(c.stallTime) || !bytesH2d ||
        !bytesH2d->asUint(c.bytesH2d) || !bytesD2h ||
        !bytesD2h->asUint(c.bytesD2h) || !launches ||
        !launches->asUint(c.launches))
        return false;
    return readInjectCounters(*inject, out.injectCounters);
}

std::uint64_t
pointConfigHash(const ExperimentPoint &point)
{
    ConfigHasher h;
    h.str(point.workload);
    h.str(transferModeName(point.mode));
    const ExperimentOptions &o = point.opts;
    h.str(sizeClassName(o.size));
    h.u64(o.runs);
    h.u64(o.baseSeed);
    h.u64(o.sharedCarveout);
    h.u64(o.geometry.gridBlocks);
    h.u64(o.geometry.threadsPerBlock);
    h.u64(static_cast<std::uint64_t>(o.lint));
    h.u64(o.trace ? 1 : 0);
    h.u64(o.traceCategories);
    h.u64(o.injectSeed);
    const InjectPlan &p = o.inject;
    h.u64(p.seed);
    h.f64(p.pcie.degradeFactor);
    h.u64(p.pcie.window.startPs);
    h.u64(p.pcie.window.endPs);
    h.u64(p.pcie.stutterPeriodPs);
    h.f64(p.pcie.stutterDuty);
    h.f64(p.pcie.failRate);
    h.u64(p.pcie.maxRetries);
    h.u64(p.pcie.backoffBasePs);
    h.u64(p.fault.batchOverflow);
    h.u64(p.fault.overflowPenaltyPs);
    h.f64(p.fault.delayRate);
    h.u64(p.fault.delayPs);
    h.f64(p.migrate.backpressureRate);
    h.u64(p.migrate.backpressurePs);
    h.f64(p.migrate.stormRate);
    h.u64(p.migrate.stormChunks);
    h.f64(p.host.slowRate);
    h.f64(p.host.slowFactor);
    h.u64(p.host.window.startPs);
    h.u64(p.host.window.endPs);
    h.f64(p.kernel.jitterRate);
    h.u64(p.kernel.jitterPs);
    return h.hash();
}

std::uint64_t
campaignHash(const std::vector<ExperimentPoint> &points)
{
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (const ExperimentPoint &point : points) {
        std::uint64_t ph = pointConfigHash(point);
        h = fnv1a(h, &ph, sizeof(ph));
    }
    return mix64(h);
}

std::string
journalHeaderLine(const std::vector<ExperimentPoint> &points)
{
    JsonWriter w;
    w.beginObject();
    w.key("journal").value("uvmasync");
    w.key("version").value(
        static_cast<std::uint64_t>(journalVersion));
    w.key("campaign").value(hexU64(campaignHash(points)));
    w.key("points").value(static_cast<std::uint64_t>(points.size()));
    w.endObject();
    return w.str();
}

std::string
journalRecordLine(std::size_t index, std::uint64_t configHash,
                  const ExperimentPoint &point,
                  const PointOutcome &outcome)
{
    JsonWriter w;
    w.beginObject();
    w.key("point").value(static_cast<std::uint64_t>(index));
    w.key("config").value(hexU64(configHash));
    w.key("key").value(point.workload + "/" +
                       transferModeName(point.mode));
    w.key("status").value(pointStatusName(outcome.status));
    w.key("attempts").value(
        static_cast<std::uint64_t>(outcome.attempts));
    if (!outcome.attemptTrail.empty()) {
        w.key("trail").beginArray();
        for (const PointAttempt &attempt : outcome.attemptTrail) {
            w.beginObject();
            w.key("status").value(pointStatusName(attempt.status));
            w.key("error").value(attempt.error);
            w.endObject();
        }
        w.endArray();
    }
    if (outcome.ok) {
        w.key("result");
        writeResultJson(w, outcome.result);
    } else {
        w.key("error").value(outcome.error);
    }
    w.endObject();
    return w.str();
}

bool
parseJournalRecord(const std::string &line, std::size_t &index,
                   std::uint64_t &configHash, PointOutcome &outcome,
                   std::string &error)
{
    JsonValue v;
    if (!parseJson(line, v, error))
        return false;
    if (!v.isObject()) {
        error = "record is not an object";
        return false;
    }
    const JsonValue *point = v.find("point");
    const JsonValue *config = v.find("config");
    const JsonValue *status = v.find("status");
    const JsonValue *attempts = v.find("attempts");
    std::uint64_t idx = 0;
    if (!point || !point->asUint(idx)) {
        error = "missing/invalid 'point'";
        return false;
    }
    index = static_cast<std::size_t>(idx);
    if (!config || !config->isString() ||
        !parseHexU64(config->text, configHash)) {
        error = "missing/invalid 'config'";
        return false;
    }
    outcome = PointOutcome{};
    if (!status || !status->isString() ||
        !parsePointStatus(status->text, outcome.status)) {
        error = "missing/invalid 'status'";
        return false;
    }
    std::uint64_t att = 0;
    if (!attempts || !attempts->asUint(att)) {
        error = "missing/invalid 'attempts'";
        return false;
    }
    outcome.attempts = static_cast<std::uint32_t>(att);
    if (const JsonValue *trail = v.find("trail")) {
        if (!trail->isArray()) {
            error = "invalid 'trail'";
            return false;
        }
        for (const JsonValue &item : trail->items) {
            const JsonValue *st = item.find("status");
            const JsonValue *err = item.find("error");
            PointAttempt attempt;
            if (!st || !st->isString() ||
                !parsePointStatus(st->text, attempt.status) || !err ||
                !err->isString()) {
                error = "invalid 'trail' entry";
                return false;
            }
            attempt.error = err->text;
            outcome.attemptTrail.push_back(std::move(attempt));
        }
    }
    if (outcome.status == PointStatus::Ok) {
        const JsonValue *result = v.find("result");
        if (!result || !readResultJson(*result, outcome.result)) {
            error = "missing/invalid 'result'";
            return false;
        }
        outcome.ok = true;
    } else {
        const JsonValue *err = v.find("error");
        if (!err || !err->isString()) {
            error = "missing/invalid 'error'";
            return false;
        }
        outcome.error = err->text;
    }
    return true;
}

std::unique_ptr<RunJournal>
RunJournal::create(const std::string &path,
                   const std::vector<ExperimentPoint> &points,
                   IoEnv &env)
{
    std::unique_ptr<RunJournal> journal(new RunJournal());
    journal->path_ = path;
    journal->env_ = &env;
    journal->points_ = points;
    journal->configHashes_.reserve(points.size());
    for (const ExperimentPoint &point : points)
        journal->configHashes_.push_back(pointConfigHash(point));
    journal->restored_.resize(points.size());

    IoStatus st;
    journal->file_ = env.openTrunc(path, st);
    if (!journal->file_)
        fatal("journal: cannot open '%s' for writing: %s",
              path.c_str(), st.text().c_str());
    std::string header = journalHeaderLine(points);
    st = journal->appendLine(header);
    if (!st.ok)
        fatal("journal: cannot write header of '%s': %s",
              path.c_str(), st.text().c_str());
    journal->goodBytes_ = header.size() + 1;
    return journal;
}

std::unique_ptr<RunJournal>
RunJournal::resume(const std::string &path,
                   const std::vector<ExperimentPoint> &points,
                   IoEnv &env)
{
    std::string contents;
    IoStatus readSt = env.readFile(path, contents);
    if (!readSt.ok)
        fatal("journal: cannot open '%s' for resume: %s",
              path.c_str(), readSt.text().c_str());

    // Split into lines; a final line without '\n' was cut mid-append
    // by a crash and is re-run rather than trusted.
    std::vector<std::string> lines;
    std::size_t start = 0;
    while (start < contents.size()) {
        std::size_t nl = contents.find('\n', start);
        if (nl == std::string::npos)
            break; // truncated trailing record — drop it
        lines.push_back(contents.substr(start, nl - start));
        start = nl + 1;
    }
    if (lines.empty())
        fatal("journal: '%s' has no intact header line; delete it "
              "and rerun without --resume",
              path.c_str());

    std::string expectHeader = journalHeaderLine(points);
    if (lines[0] != expectHeader) {
        // Distinguish "not a journal" from "different campaign" for
        // a usable error message.
        JsonValue header;
        std::string jsonError;
        std::string campaign = "?";
        if (parseJson(lines[0], header, jsonError)) {
            if (const JsonValue *c = header.find("campaign"))
                campaign = c->text;
        }
        fatal("journal: '%s' was written for a different campaign "
              "(journal campaign %s, current grid %s over %zu "
              "points); the workload grid, options, or inject plan "
              "changed. Rerun without --resume (or delete the "
              "journal) to start fresh.",
              path.c_str(), campaign.c_str(),
              hexU64(campaignHash(points)).c_str(), points.size());
    }

    std::unique_ptr<RunJournal> journal(new RunJournal());
    journal->path_ = path;
    journal->env_ = &env;
    journal->points_ = points;
    journal->configHashes_.reserve(points.size());
    for (const ExperimentPoint &point : points)
        journal->configHashes_.push_back(pointConfigHash(point));
    journal->restored_.resize(points.size());

    for (std::size_t i = 1; i < lines.size(); ++i) {
        std::size_t index = 0;
        std::uint64_t configHash = 0;
        auto outcome = std::make_unique<PointOutcome>();
        std::string error;
        if (!parseJournalRecord(lines[i], index, configHash, *outcome,
                                error))
            fatal("journal: '%s' line %zu is corrupt (%s); delete "
                  "the journal and rerun without --resume",
                  path.c_str(), i + 1, error.c_str());
        if (index >= points.size() ||
            configHash != journal->configHashes_[index])
            fatal("journal: '%s' line %zu records point %zu with a "
                  "different configuration than the current grid; "
                  "rerun without --resume to start fresh",
                  path.c_str(), i + 1, index);
        if (!journal->restored_[index])
            ++journal->restoredCount_;
        journal->restored_[index] = std::move(outcome);
    }

    // Drop any partial trailing line, then reopen for appending
    // after the last intact record. The file is NOT rewritten:
    // intact records keep their exact bytes, so an interrupted-then-
    // resumed journal is byte-identical to an uninterrupted one up
    // to the dropped partial line.
    std::uint64_t intactEnd = static_cast<std::uint64_t>(start);
    IoStatus st = env.truncateFile(path, intactEnd);
    if (!st.ok)
        fatal("journal: cannot truncate '%s': %s", path.c_str(),
              st.text().c_str());
    journal->file_ = env.openAppend(path, st);
    if (!journal->file_)
        fatal("journal: cannot reopen '%s' for appending: %s",
              path.c_str(), st.text().c_str());
    journal->goodBytes_ = intactEnd;
    return journal;
}

RunJournal::~RunJournal() = default;

IoStatus
RunJournal::appendLine(const std::string &line)
{
    UVMASYNC_ASSERT(file_, "journal file not open");
    // One write per record (payload + '\n') so a failed append tears
    // at most one line, then flush + fsync: the journal is the
    // crash-safety contract, so a committed point must survive a
    // kill -9.
    std::string framed = line;
    framed += '\n';
    IoStatus st = file_->write(framed);
    if (st.ok)
        st = file_->sync();
    return st;
}

bool
RunJournal::restore(std::size_t index, PointOutcome &out)
{
    UVMASYNC_ASSERT(index < restored_.size(), "point index out of range");
    if (!restored_[index])
        return false;
    out = std::move(*restored_[index]);
    restored_[index].reset();
    UVMASYNC_ASSERT(restoredCount_ > 0, "restore underflow");
    --restoredCount_;
    return true;
}

bool
RunJournal::commit(std::size_t index, PointOutcome &out)
{
    UVMASYNC_ASSERT(index < points_.size(), "point index out of range");
    if (writeFailed_)
        return false; // sticky: one hard error ends journaling
    std::string line = journalRecordLine(index, configHashes_[index],
                                         points_[index], out);
    IoStatus st = appendLine(line);
    if (!st.ok) {
        // Degrade, don't die: close the file, then best-effort
        // truncate away any torn partial record so what remains on
        // disk is a clean resumable prefix of intact records.
        writeFailed_ = true;
        writeError_ = st.text();
        file_.reset();
        env_->truncateFile(path_, goodBytes_);
        return false;
    }
    goodBytes_ += line.size() + 1;
    return true;
}

} // namespace uvmasync
