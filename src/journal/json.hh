/**
 * @file
 * Minimal JSON support for the run journal.
 *
 * The journal only needs to round-trip records it wrote itself, so
 * this is deliberately small: a streaming writer that emits one
 * compact object per line, and a recursive-descent reader tolerant
 * enough to re-load those lines. Doubles are carried as %a hexfloat
 * *strings* ("0x1.8p+3") — exact bit-for-bit round-trip with no
 * shortest-representation subtleties, while the file stays plain
 * JSON for external tools.
 */

#ifndef UVMASYNC_JOURNAL_JSON_HH
#define UVMASYNC_JOURNAL_JSON_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace uvmasync
{

/** Escape a string for embedding in a JSON document (no quotes). */
std::string jsonEscape(const std::string &text);

/** Exact (%a hexfloat) encoding of a double. */
std::string hexDouble(double value);

/**
 * Parse a hexDouble() string back; returns false on garbage (the
 * value is left untouched).
 */
bool parseHexDouble(const std::string &text, double &out);

/** @{
 * Fixed-width (16 lowercase hex digits) encoding of a 64-bit value —
 * the journal's and the result store's wire form for config hashes,
 * fingerprints and record checksums. parseHexU64 rejects any string
 * that hexU64 could not have produced.
 */
std::string hexU64(std::uint64_t value);
bool parseHexU64(const std::string &text, std::uint64_t &out);
/** @} */

/**
 * Streaming writer of one compact JSON value. Scopes are tracked so
 * commas are inserted automatically; keys only inside objects.
 */
class JsonWriter
{
  public:
    JsonWriter &beginObject();
    JsonWriter &endObject();
    JsonWriter &beginArray();
    JsonWriter &endArray();

    /** Member key; must be followed by exactly one value or scope. */
    JsonWriter &key(const std::string &name);

    JsonWriter &value(std::uint64_t v);
    JsonWriter &value(bool v);
    JsonWriter &value(const std::string &v);
    JsonWriter &value(const char *v);

    /** A double, encoded as an exact hexfloat string. */
    JsonWriter &hex(double v);

    /**
     * Splice an already-serialized JSON value verbatim (the result
     * store embeds the exact byte string its record checksum was
     * computed over). The caller vouches that @p json is one
     * well-formed value.
     */
    JsonWriter &raw(const std::string &json);

    const std::string &str() const { return out_; }

  private:
    void comma();

    std::string out_;
    std::vector<char> first_; //!< per-scope "no comma yet" flags
};

/**
 * A parsed JSON value. Numbers keep their raw token (the journal only
 * ever writes unsigned integers); objects keep member order.
 */
class JsonValue
{
  public:
    enum class Kind
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object,
    };

    Kind kind = Kind::Null;
    bool boolean = false;
    std::string text; //!< String: decoded text; Number: raw token
    std::vector<JsonValue> items;
    std::vector<std::pair<std::string, JsonValue>> members;

    bool isObject() const { return kind == Kind::Object; }
    bool isArray() const { return kind == Kind::Array; }
    bool isString() const { return kind == Kind::String; }
    bool isNumber() const { return kind == Kind::Number; }

    /** Member lookup; null when absent or not an object. */
    const JsonValue *find(const std::string &name) const;

    /**
     * Decode as unsigned integer / hexfloat string; returns false on
     * kind or format mismatch.
     */
    bool asUint(std::uint64_t &out) const;
    bool asHex(double &out) const;
};

/**
 * Parse one JSON document; returns false (with a short reason in
 * @p error) on malformed input. Trailing whitespace is allowed,
 * trailing garbage is not.
 */
bool parseJson(const std::string &text, JsonValue &out,
               std::string &error);

} // namespace uvmasync

#endif // UVMASYNC_JOURNAL_JSON_HH
