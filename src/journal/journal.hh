/**
 * @file
 * Crash-safe run journal: an append-only, fsync'd JSONL write-ahead
 * log of per-point experiment outcomes.
 *
 * The ParallelRunner commits outcomes in submission order (the same
 * merge that makes `--jobs N` output byte-identical to `--jobs 1`),
 * so the journal file is byte-deterministic at any job count and
 * every record on disk is a durable prefix of the batch: a crash —
 * or a kill at an arbitrary line boundary — loses at most the
 * in-flight suffix, and `--resume` replays the rest.
 *
 * Every record carries the point's configuration hash; resume
 * validates each restored record (and the header's campaign hash)
 * against the live point grid and refuses a stale journal with an
 * actionable fatal instead of silently mixing results from two
 * different campaigns. Simulated results round-trip exactly: doubles
 * are stored as %a hexfloat strings, so a resumed sweep's merged CSV
 * is byte-identical to an uninterrupted run.
 */

#ifndef UVMASYNC_JOURNAL_JOURNAL_HH
#define UVMASYNC_JOURNAL_JOURNAL_HH

#include <memory>
#include <string>
#include <vector>

#include "core/parallel_runner.hh"
#include "io/io_env.hh"
#include "journal/json.hh"

namespace uvmasync
{

/**
 * Stable 64-bit hash of one point's full configuration: workload,
 * mode, and every ExperimentOptions knob including the inject plan.
 * Machine-independent (FNV-1a over the field values, doubles by bit
 * pattern, finalized with splitmix64).
 */
std::uint64_t pointConfigHash(const ExperimentPoint &point);

/** Campaign identity: FNV-1a over the per-point config hashes. */
std::uint64_t campaignHash(const std::vector<ExperimentPoint> &points);

/**
 * The journal file. Create one per batch with create() (fresh run)
 * or resume() (continue an interrupted run), then hand it to the
 * ParallelRunner via RunPolicy::journal.
 */
class RunJournal : public PointJournal
{
  public:
    /**
     * Start a fresh journal at @p path for @p points: truncates,
     * writes the fsync'd header line, and keeps the file open for
     * appending. All I/O goes through @p env (the default is the
     * real filesystem). fatal() if the path is unwritable.
     */
    static std::unique_ptr<RunJournal>
    create(const std::string &path,
           const std::vector<ExperimentPoint> &points,
           IoEnv &env = realIoEnv());

    /**
     * Reopen an interrupted journal: validates the header against
     * @p points (campaign hash and point count), loads every intact
     * terminal record (a truncated trailing line is tolerated and
     * dropped), and reopens the file for appending the remainder.
     * fatal() with an actionable message when the journal belongs to
     * a different campaign or is unreadable.
     */
    static std::unique_ptr<RunJournal>
    resume(const std::string &path,
           const std::vector<ExperimentPoint> &points,
           IoEnv &env = realIoEnv());

    ~RunJournal() override;

    RunJournal(const RunJournal &) = delete;
    RunJournal &operator=(const RunJournal &) = delete;

    /** PointJournal: hand back a restored outcome, if any. */
    bool restore(std::size_t index, PointOutcome &out) override;

    /**
     * PointJournal: append + fsync one terminal record. Returns
     * false when the record could not be made durable; the first
     * hard write error makes the journal permanently inert (the file
     * is truncated back to its last intact record and closed, so
     * what is on disk stays a clean resumable prefix) and the run
     * degrades to journal-less instead of dying.
     */
    bool commit(std::size_t index, PointOutcome &out) override;

    /** Points loaded by resume() and not yet handed out. */
    std::size_t restoredCount() const { return restoredCount_; }

    /** True once a write error has made the journal inert. */
    bool writeFailed() const { return writeFailed_; }

    /** errno text of the write error that made the journal inert. */
    const std::string &writeError() const { return writeError_; }

    const std::string &path() const { return path_; }

  private:
    RunJournal() = default;

    IoStatus appendLine(const std::string &line);

    std::string path_;
    IoEnv *env_ = nullptr;
    std::unique_ptr<IoFile> file_;
    std::uint64_t goodBytes_ = 0; //!< bytes known durable + intact
    bool writeFailed_ = false;
    std::string writeError_;
    std::vector<ExperimentPoint> points_;
    std::vector<std::uint64_t> configHashes_;

    /** Restored outcomes by point index (kind Null = must run). */
    std::vector<std::unique_ptr<PointOutcome>> restored_;
    std::size_t restoredCount_ = 0;
};

/** @{
 * ExperimentResult (de)serialization in the journal's exact hexfloat
 * JSON layout. Shared with the content-addressed result store
 * (src/store), so a result round-trips bit-identically through either
 * layer. Field order is part of the on-disk format (version-gated).
 */
void writeResultJson(JsonWriter &w, const ExperimentResult &r);
bool readResultJson(const JsonValue &v, ExperimentResult &out);
/** @} */

/** @{ Record serialization (exposed for tests). */
std::string journalHeaderLine(const std::vector<ExperimentPoint> &points);
std::string journalRecordLine(std::size_t index, std::uint64_t configHash,
                              const ExperimentPoint &point,
                              const PointOutcome &outcome);
bool parseJournalRecord(const std::string &line, std::size_t &index,
                        std::uint64_t &configHash, PointOutcome &outcome,
                        std::string &error);
/** @} */

} // namespace uvmasync

#endif // UVMASYNC_JOURNAL_JOURNAL_HH
