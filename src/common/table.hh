/**
 * @file
 * Plain-text table rendering for experiment reports.
 *
 * The bench harness prints every figure/table of the paper as an ASCII
 * table; this keeps formatting concerns out of the experiment code.
 */

#ifndef UVMASYNC_COMMON_TABLE_HH
#define UVMASYNC_COMMON_TABLE_HH

#include <cstddef>
#include <ostream>
#include <string>
#include <vector>

namespace uvmasync
{

/**
 * A rectangular text table with a header row, column alignment and a
 * one-call renderer.
 */
class TextTable
{
  public:
    enum class Align { Left, Right };

    /** Create a table with the given column headers. */
    explicit TextTable(std::vector<std::string> headers);

    /** Set per-column alignment (default: first Left, rest Right). */
    void setAlign(std::size_t col, Align align);

    /** Append a full row; must match the header width. */
    void addRow(std::vector<std::string> cells);

    /** Append a horizontal separator line. */
    void addSeparator();

    std::size_t columnCount() const { return headers_.size(); }
    std::size_t rowCount() const { return rows_.size(); }

    /** Render the table to the stream. */
    void print(std::ostream &os) const;

    /** Render the table to a string. */
    std::string toString() const;

  private:
    struct Row
    {
        bool separator = false;
        std::vector<std::string> cells;
    };

    std::vector<std::string> headers_;
    std::vector<Align> aligns_;
    std::vector<Row> rows_;
};

/** @{ Cell formatting helpers. */

/** Format a double with @p digits fractional digits. */
std::string fmtDouble(double v, int digits = 2);

/** Format a fraction as a signed percentage string, e.g. "+21.3%". */
std::string fmtPercent(double fraction, int digits = 2);

/** Format a tick count with an auto-selected unit (ns/us/ms/s). */
std::string fmtTime(double picoseconds);

/** Format a byte count with an auto-selected unit (B/KiB/MiB/GiB). */
std::string fmtBytes(double bytes);

/** Format a large count with engineering suffix (K/M/G). */
std::string fmtCount(double count);
/** @} */

} // namespace uvmasync

#endif // UVMASYNC_COMMON_TABLE_HH
