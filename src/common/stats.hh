/**
 * @file
 * Summary statistics used throughout the experiment harness: running
 * mean/variance, percentiles, geometric means, and simple histograms.
 */

#ifndef UVMASYNC_COMMON_STATS_HH
#define UVMASYNC_COMMON_STATS_HH

#include <cstddef>
#include <string>
#include <vector>

namespace uvmasync
{

/**
 * Welford running mean/variance accumulator.
 */
class RunningStat
{
  public:
    RunningStat() = default;

    /** Add one observation. */
    void add(double x);

    /** Merge another accumulator into this one. */
    void merge(const RunningStat &other);

    std::size_t count() const { return n_; }
    double mean() const { return n_ ? mean_ : 0.0; }
    double min() const;
    double max() const;

    /** Sample variance (n-1 denominator); 0 for fewer than 2 samples. */
    double variance() const;

    /** Sample standard deviation. */
    double stddev() const;

    /** Coefficient of variation: stddev / mean (0 if mean is 0). */
    double cv() const;

  private:
    std::size_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/**
 * A batch of samples retained in full, for percentiles and plots.
 */
class SampleSet
{
  public:
    void add(double x) { samples_.push_back(x); }
    void clear() { samples_.clear(); }

    std::size_t count() const { return samples_.size(); }
    const std::vector<double> &samples() const { return samples_; }

    double mean() const;
    double stddev() const;
    double min() const;
    double max() const;

    /** Coefficient of variation: stddev / mean. */
    double cv() const;

    /** Linear-interpolated percentile, p in [0, 100]. */
    double percentile(double p) const;

    double median() const { return percentile(50.0); }

  private:
    std::vector<double> samples_;
};

/** Geometric mean of a set of strictly positive values. */
double geomean(const std::vector<double> &values);

/**
 * Fractional change of @p value relative to @p baseline:
 * (value - baseline) / baseline. Used to report "X% over standard".
 */
double relativeChange(double value, double baseline);

/** Speedup of @p value relative to @p baseline: baseline / value. */
double speedup(double value, double baseline);

/**
 * Fixed-width histogram over [lo, hi); out-of-range samples clamp to
 * the edge buckets.
 */
class Histogram
{
  public:
    Histogram(double lo, double hi, std::size_t buckets);

    void add(double x);

    std::size_t bucketCount() const { return counts_.size(); }
    std::size_t bucket(std::size_t i) const { return counts_.at(i); }
    std::size_t total() const { return total_; }
    double bucketLow(std::size_t i) const;
    double bucketHigh(std::size_t i) const;

    /** Render a compact ASCII sparkline of the distribution. */
    std::string sparkline() const;

  private:
    double lo_;
    double hi_;
    std::vector<std::size_t> counts_;
    std::size_t total_ = 0;
};

} // namespace uvmasync

#endif // UVMASYNC_COMMON_STATS_HH
