/**
 * @file
 * Deterministic pseudo-random number generation (xoshiro256**).
 *
 * Every stochastic element of the simulator (measurement noise, random
 * access traces, DRAM placement) draws from an Rng seeded from the
 * experiment's (workload, mode, run) triple so that results are exactly
 * reproducible run-to-run and machine-to-machine.
 */

#ifndef UVMASYNC_COMMON_RNG_HH
#define UVMASYNC_COMMON_RNG_HH

#include <array>
#include <cstdint>

namespace uvmasync
{

/**
 * xoshiro256** generator with splitmix64 seeding.
 *
 * Satisfies the UniformRandomBitGenerator concept so it can be used
 * with standard distributions, but also offers the handful of
 * distributions the simulator needs directly.
 */
class Rng
{
  public:
    using result_type = std::uint64_t;

    /** Construct from a single 64-bit seed (expanded via splitmix64). */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

    /** Derive a statistically independent child stream. */
    Rng fork();

    static constexpr result_type min() { return 0; }
    static constexpr result_type max() { return ~result_type(0); }

    /** Next raw 64-bit value. */
    result_type operator()();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Uniform integer in [0, n); n must be > 0. */
    std::uint64_t uniformInt(std::uint64_t n);

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t uniformInt(std::int64_t lo, std::int64_t hi);

    /** Standard normal via Box-Muller (cached pair). */
    double normal();

    /** Normal with the given mean and standard deviation. */
    double normal(double mean, double stddev);

    /**
     * Lognormal parameterised directly by the target mean and the
     * coefficient of variation of the resulting distribution; handy
     * for "runtime jitter around a mean" noise models.
     */
    double lognormalMeanCv(double mean, double cv);

    /** Bernoulli trial with probability @p p of returning true. */
    bool chance(double p);

  private:
    static std::uint64_t splitmix64(std::uint64_t &state);

    std::array<std::uint64_t, 4> s_;
    double cachedNormal_;
    bool hasCachedNormal_;
};

} // namespace uvmasync

#endif // UVMASYNC_COMMON_RNG_HH
