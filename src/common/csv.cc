#include "common/csv.hh"

namespace uvmasync
{

void
CsvWriter::writeRow(const std::vector<std::string> &cells)
{
    for (std::size_t i = 0; i < cells.size(); ++i) {
        if (i)
            os_ << ',';
        os_ << escape(cells[i]);
    }
    os_ << '\n';
}

std::string
CsvWriter::escape(const std::string &cell)
{
    bool needs_quotes = cell.find_first_of(",\"\n\r") != std::string::npos;
    if (!needs_quotes)
        return cell;
    std::string out = "\"";
    for (char ch : cell) {
        if (ch == '"')
            out += "\"\"";
        else
            out += ch;
    }
    out += '"';
    return out;
}

} // namespace uvmasync
