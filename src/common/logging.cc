#include "common/logging.hh"

#include <cstdio>
#include <cstdlib>
#include <vector>

namespace uvmasync
{

namespace
{

LogLevel globalLevel = LogLevel::Inform;

/** Depth of nested FatalThrowScopes on this thread. */
thread_local int fatalThrowDepth = 0;

void
emit(const char *tag, FILE *stream, const char *fmt, std::va_list args)
{
    std::string body = vstrfmt(fmt, args);
    std::fprintf(stream, "%s%s\n", tag, body.c_str());
    std::fflush(stream);
}

} // namespace

void
setLogLevel(LogLevel level)
{
    globalLevel = level;
}

LogLevel
logLevel()
{
    return globalLevel;
}

std::string
vstrfmt(const char *fmt, std::va_list args)
{
    std::va_list args_copy;
    va_copy(args_copy, args);
    int needed = std::vsnprintf(nullptr, 0, fmt, args_copy);
    va_end(args_copy);
    if (needed < 0)
        return "<format error>";
    std::vector<char> buf(static_cast<size_t>(needed) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, args);
    return std::string(buf.data(), static_cast<size_t>(needed));
}

std::string
strfmt(const char *fmt, ...)
{
    std::va_list args;
    va_start(args, fmt);
    std::string out = vstrfmt(fmt, args);
    va_end(args);
    return out;
}

void
panic(const char *fmt, ...)
{
    std::va_list args;
    va_start(args, fmt);
    emit("panic: ", stderr, fmt, args);
    va_end(args);
    std::abort();
}

void
fatal(const char *fmt, ...)
{
    std::va_list args;
    va_start(args, fmt);
    if (fatalThrowDepth > 0) {
        std::string body = vstrfmt(fmt, args);
        va_end(args);
        throw FatalError(body);
    }
    emit("fatal: ", stderr, fmt, args);
    va_end(args);
    std::exit(1);
}

FatalThrowScope::FatalThrowScope()
{
    ++fatalThrowDepth;
}

FatalThrowScope::~FatalThrowScope()
{
    --fatalThrowDepth;
}

void
warn(const char *fmt, ...)
{
    if (globalLevel < LogLevel::Warn)
        return;
    std::va_list args;
    va_start(args, fmt);
    emit("warn: ", stderr, fmt, args);
    va_end(args);
}

void
inform(const char *fmt, ...)
{
    if (globalLevel < LogLevel::Inform)
        return;
    std::va_list args;
    va_start(args, fmt);
    emit("info: ", stdout, fmt, args);
    va_end(args);
}

void
debugLog(const char *fmt, ...)
{
    if (globalLevel < LogLevel::Debug)
        return;
    std::va_list args;
    va_start(args, fmt);
    emit("debug: ", stderr, fmt, args);
    va_end(args);
}

} // namespace uvmasync
