#include "common/rng.hh"

#include <cmath>

#include "common/logging.hh"

namespace uvmasync
{

namespace
{

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

std::uint64_t
Rng::splitmix64(std::uint64_t &state)
{
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

Rng::Rng(std::uint64_t seed)
    : cachedNormal_(0.0), hasCachedNormal_(false)
{
    std::uint64_t state = seed;
    for (auto &word : s_)
        word = splitmix64(state);
    // xoshiro must not start from the all-zero state.
    if (s_[0] == 0 && s_[1] == 0 && s_[2] == 0 && s_[3] == 0)
        s_[0] = 0x9e3779b97f4a7c15ull;
}

Rng
Rng::fork()
{
    return Rng((*this)() ^ 0xd1b54a32d192ed03ull);
}

Rng::result_type
Rng::operator()()
{
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;

    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);

    return result;
}

double
Rng::uniform()
{
    // 53 high-order bits to a double in [0, 1).
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

std::uint64_t
Rng::uniformInt(std::uint64_t n)
{
    UVMASYNC_ASSERT(n > 0, "uniformInt(0) is undefined");
    // Lemire-style rejection-free-enough bound; bias is negligible for
    // the n << 2^64 values the simulator uses.
    return static_cast<std::uint64_t>(uniform() * static_cast<double>(n))
           % n;
}

std::int64_t
Rng::uniformInt(std::int64_t lo, std::int64_t hi)
{
    UVMASYNC_ASSERT(lo <= hi, "bad range [%lld, %lld]",
                    static_cast<long long>(lo),
                    static_cast<long long>(hi));
    std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(uniformInt(span));
}

double
Rng::normal()
{
    if (hasCachedNormal_) {
        hasCachedNormal_ = false;
        return cachedNormal_;
    }
    double u1 = 0.0;
    do {
        u1 = uniform();
    } while (u1 <= 0.0);
    double u2 = uniform();
    double r = std::sqrt(-2.0 * std::log(u1));
    double theta = 2.0 * M_PI * u2;
    cachedNormal_ = r * std::sin(theta);
    hasCachedNormal_ = true;
    return r * std::cos(theta);
}

double
Rng::normal(double mean, double stddev)
{
    return mean + stddev * normal();
}

double
Rng::lognormalMeanCv(double mean, double cv)
{
    UVMASYNC_ASSERT(mean > 0.0 && cv >= 0.0,
                    "lognormal needs mean > 0, cv >= 0 (got %f, %f)",
                    mean, cv);
    if (cv == 0.0)
        return mean;
    double sigma2 = std::log(1.0 + cv * cv);
    double mu = std::log(mean) - 0.5 * sigma2;
    return std::exp(normal(mu, std::sqrt(sigma2)));
}

bool
Rng::chance(double p)
{
    return uniform() < p;
}

} // namespace uvmasync
