/**
 * @file
 * Bandwidth and rate helpers built on the Tick/Bytes base types.
 */

#ifndef UVMASYNC_COMMON_UNITS_HH
#define UVMASYNC_COMMON_UNITS_HH

#include <cmath>
#include <cstdint>

#include "common/types.hh"

namespace uvmasync
{

/**
 * A transfer rate expressed internally as bytes per second.
 *
 * The class exists so that link and memory models cannot accidentally
 * mix up "GB/s" and "bytes per tick" scalars; all conversions to time
 * go through transferTime().
 */
class Bandwidth
{
  public:
    constexpr Bandwidth() : bytesPerSecond_(0.0) {}

    /** Construct from raw bytes-per-second. */
    static constexpr Bandwidth
    fromBytesPerSecond(double bps)
    {
        return Bandwidth(bps);
    }

    /** Construct from gigabytes (1e9 bytes) per second. */
    static constexpr Bandwidth
    fromGBps(double gbps)
    {
        return Bandwidth(gbps * 1e9);
    }

    constexpr double bytesPerSecond() const { return bytesPerSecond_; }
    constexpr double gbps() const { return bytesPerSecond_ / 1e9; }

    constexpr bool valid() const { return bytesPerSecond_ > 0.0; }

    /**
     * Time needed to move @p bytes at this rate, rounded up to a
     * whole picosecond so back-to-back transfers never alias.
     */
    Tick
    transferTime(Bytes bytes) const
    {
        if (bytesPerSecond_ <= 0.0)
            return maxTick;
        double ps = static_cast<double>(bytes) * 1e12 / bytesPerSecond_;
        return static_cast<Tick>(std::ceil(ps));
    }

    /** Scale the rate, e.g. to model efficiency factors. */
    constexpr Bandwidth
    scaled(double factor) const
    {
        return Bandwidth(bytesPerSecond_ * factor);
    }

  private:
    explicit constexpr Bandwidth(double bps) : bytesPerSecond_(bps) {}

    double bytesPerSecond_;
};

/**
 * A clock frequency; converts cycle counts to ticks.
 */
class Frequency
{
  public:
    constexpr Frequency() : hz_(0.0) {}

    static constexpr Frequency
    fromMHz(double mhz)
    {
        return Frequency(mhz * 1e6);
    }

    static constexpr Frequency
    fromGHz(double ghz)
    {
        return Frequency(ghz * 1e9);
    }

    constexpr double hz() const { return hz_; }
    constexpr double mhz() const { return hz_ / 1e6; }

    constexpr bool valid() const { return hz_ > 0.0; }

    /** Picoseconds per clock cycle (as a double; callers round). */
    constexpr double
    periodPs() const
    {
        return hz_ > 0.0 ? 1e12 / hz_ : 0.0;
    }

    /** Ticks for a (possibly fractional) number of cycles. */
    Tick
    cyclesToTicks(double cycles) const
    {
        if (hz_ <= 0.0)
            return maxTick;
        return static_cast<Tick>(std::ceil(cycles * periodPs()));
    }

    /** Cycles elapsed in @p t ticks (fractional). */
    constexpr double
    ticksToCycles(Tick t) const
    {
        return static_cast<double>(t) * hz_ / 1e12;
    }

  private:
    explicit constexpr Frequency(double hz) : hz_(hz) {}

    double hz_;
};

} // namespace uvmasync

#endif // UVMASYNC_COMMON_UNITS_HH
