/**
 * @file
 * Status and error reporting in the spirit of gem5's logging.hh.
 *
 * panic()  — internal simulator invariant broken; aborts.
 * fatal()  — user/configuration error; exits with an error code.
 * warn()   — something is modelled approximately; simulation continues.
 * inform() — plain status output.
 */

#ifndef UVMASYNC_COMMON_LOGGING_HH
#define UVMASYNC_COMMON_LOGGING_HH

#include <cstdarg>
#include <stdexcept>
#include <string>

namespace uvmasync
{

/** Verbosity levels for runtime log filtering. */
enum class LogLevel
{
    Silent = 0,
    Warn = 1,
    Inform = 2,
    Debug = 3,
};

/** Set the global verbosity; messages above the level are dropped. */
void setLogLevel(LogLevel level);

/** Current global verbosity. */
LogLevel logLevel();

/** Printf-style formatting into a std::string. */
std::string vstrfmt(const char *fmt, std::va_list args);

/** Printf-style formatting into a std::string. */
std::string strfmt(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Report an internal simulator bug and abort. Never returns.
 */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Report an unrecoverable user error and exit(1) — unless the calling
 * thread holds a FatalThrowScope, in which case the formatted message
 * is thrown as a FatalError instead. Never returns normally.
 */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** What fatal() throws inside a FatalThrowScope. */
class FatalError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/**
 * RAII guard turning fatal() on this thread into a FatalError throw
 * for its lifetime. Batch drivers (the parallel experiment engine)
 * hold one around each job so a poisoned configuration fails that one
 * job with a structured error instead of exiting the whole process.
 * Nests; fatal() reverts to exit(1) once the last scope unwinds.
 */
class FatalThrowScope
{
  public:
    FatalThrowScope();
    ~FatalThrowScope();
    FatalThrowScope(const FatalThrowScope &) = delete;
    FatalThrowScope &operator=(const FatalThrowScope &) = delete;
};

/** Report a modelling approximation or suspicious condition. */
void warn(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Report normal status to the console. */
void inform(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Debug chatter, only shown at LogLevel::Debug. */
void debugLog(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Assert an invariant with a formatted message; compiled in all build
 * types since simulator correctness depends on it.
 */
#define UVMASYNC_ASSERT(cond, ...)                                        \
    do {                                                                  \
        if (!(cond)) {                                                    \
            ::uvmasync::panic("assertion '%s' failed at %s:%d: %s",       \
                              #cond, __FILE__, __LINE__,                  \
                              ::uvmasync::strfmt(__VA_ARGS__).c_str());   \
        }                                                                 \
    } while (0)

} // namespace uvmasync

#endif // UVMASYNC_COMMON_LOGGING_HH
