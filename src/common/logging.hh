/**
 * @file
 * Status and error reporting in the spirit of gem5's logging.hh.
 *
 * panic()  — internal simulator invariant broken; aborts.
 * fatal()  — user/configuration error; exits with an error code.
 * warn()   — something is modelled approximately; simulation continues.
 * inform() — plain status output.
 */

#ifndef UVMASYNC_COMMON_LOGGING_HH
#define UVMASYNC_COMMON_LOGGING_HH

#include <cstdarg>
#include <string>

namespace uvmasync
{

/** Verbosity levels for runtime log filtering. */
enum class LogLevel
{
    Silent = 0,
    Warn = 1,
    Inform = 2,
    Debug = 3,
};

/** Set the global verbosity; messages above the level are dropped. */
void setLogLevel(LogLevel level);

/** Current global verbosity. */
LogLevel logLevel();

/** Printf-style formatting into a std::string. */
std::string vstrfmt(const char *fmt, std::va_list args);

/** Printf-style formatting into a std::string. */
std::string strfmt(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Report an internal simulator bug and abort. Never returns.
 */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Report an unrecoverable user error and exit(1). Never returns.
 */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Report a modelling approximation or suspicious condition. */
void warn(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Report normal status to the console. */
void inform(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Debug chatter, only shown at LogLevel::Debug. */
void debugLog(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Assert an invariant with a formatted message; compiled in all build
 * types since simulator correctness depends on it.
 */
#define UVMASYNC_ASSERT(cond, ...)                                        \
    do {                                                                  \
        if (!(cond)) {                                                    \
            ::uvmasync::panic("assertion '%s' failed at %s:%d: %s",       \
                              #cond, __FILE__, __LINE__,                  \
                              ::uvmasync::strfmt(__VA_ARGS__).c_str());   \
        }                                                                 \
    } while (0)

} // namespace uvmasync

#endif // UVMASYNC_COMMON_LOGGING_HH
