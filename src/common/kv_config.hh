/**
 * @file
 * A minimal key=value configuration store with typed getters —
 * enough to override testbed parameters from a file without
 * recompiling (ini-style: `#` comments, `key = value` lines,
 * optional `[section]` headers that prefix keys with "section.").
 */

#ifndef UVMASYNC_COMMON_KV_CONFIG_HH
#define UVMASYNC_COMMON_KV_CONFIG_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace uvmasync
{

/**
 * A key assigned more than once in one source; the later value
 * silently wins, which the linter reports as a shadowed key.
 */
struct KvShadowedKey
{
    std::string key;
    int firstLine = 0; //!< line of the assignment that is shadowed
    int line = 0;      //!< line of the assignment that wins
};

/**
 * Flat string key -> string value map with parsing helpers.
 */
class KvConfig
{
  public:
    KvConfig() = default;

    /** Parse ini-style text; later keys override earlier ones. */
    static KvConfig fromString(const std::string &text,
                               const std::string &sourceName =
                                   "<string>");

    /** Load from a file; fatal() if unreadable. */
    static KvConfig fromFile(const std::string &path);

    /** Where the config came from (file path or "<string>"). */
    const std::string &sourceName() const { return sourceName_; }

    /** 1-based line a key was (last) assigned on; 0 if unknown. */
    int lineOf(const std::string &key) const;

    /** Keys assigned more than once, in assignment order. */
    const std::vector<KvShadowedKey> &shadowedKeys() const
    {
        return shadowed_;
    }

    bool has(const std::string &key) const;
    std::size_t size() const { return values_.size(); }

    /** All keys, sorted. */
    std::vector<std::string> keys() const;

    /** Raw string value; @p def if absent. */
    std::string getString(const std::string &key,
                          const std::string &def = "") const;

    /** Floating point; fatal() on malformed value. */
    double getDouble(const std::string &key, double def) const;

    /** Integer; fatal() on malformed value. */
    std::int64_t getInt(const std::string &key,
                        std::int64_t def) const;

    /** Boolean: true/false/1/0/yes/no; fatal() otherwise. */
    bool getBool(const std::string &key, bool def) const;

    /** Set (or override) a value programmatically. */
    void set(const std::string &key, const std::string &value);

  private:
    std::map<std::string, std::string> values_;
    std::map<std::string, int> lines_;
    std::vector<KvShadowedKey> shadowed_;
    std::string sourceName_ = "<string>";
};

/**
 * Closest candidate to @p key by edit distance, for "did you mean"
 * hints on typo'd config keys. Returns "" when nothing is within a
 * plausible typo distance (<= 1/3 of the key length, minimum 2).
 */
std::string closestKey(const std::string &key,
                       const std::vector<std::string> &candidates);

} // namespace uvmasync

#endif // UVMASYNC_COMMON_KV_CONFIG_HH
