#include "common/table.hh"

#include <algorithm>
#include <sstream>

#include "common/logging.hh"

namespace uvmasync
{

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
    UVMASYNC_ASSERT(!headers_.empty(), "table needs at least one column");
    aligns_.assign(headers_.size(), Align::Right);
    aligns_[0] = Align::Left;
}

void
TextTable::setAlign(std::size_t col, Align align)
{
    UVMASYNC_ASSERT(col < aligns_.size(), "column %zu out of range", col);
    aligns_[col] = align;
}

void
TextTable::addRow(std::vector<std::string> cells)
{
    UVMASYNC_ASSERT(cells.size() == headers_.size(),
                    "row has %zu cells, table has %zu columns",
                    cells.size(), headers_.size());
    rows_.push_back(Row{false, std::move(cells)});
}

void
TextTable::addSeparator()
{
    rows_.push_back(Row{true, {}});
}

void
TextTable::print(std::ostream &os) const
{
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const Row &row : rows_) {
        if (row.separator)
            continue;
        for (std::size_t c = 0; c < row.cells.size(); ++c)
            widths[c] = std::max(widths[c], row.cells[c].size());
    }

    auto print_line = [&]() {
        os << '+';
        for (std::size_t w : widths)
            os << std::string(w + 2, '-') << '+';
        os << '\n';
    };
    auto print_cells = [&](const std::vector<std::string> &cells) {
        os << '|';
        for (std::size_t c = 0; c < cells.size(); ++c) {
            std::size_t pad = widths[c] - cells[c].size();
            if (aligns_[c] == Align::Left)
                os << ' ' << cells[c] << std::string(pad, ' ') << " |";
            else
                os << ' ' << std::string(pad, ' ') << cells[c] << " |";
        }
        os << '\n';
    };

    print_line();
    print_cells(headers_);
    print_line();
    for (const Row &row : rows_) {
        if (row.separator)
            print_line();
        else
            print_cells(row.cells);
    }
    print_line();
}

std::string
TextTable::toString() const
{
    std::ostringstream oss;
    print(oss);
    return oss.str();
}

std::string
fmtDouble(double v, int digits)
{
    std::ostringstream oss;
    oss.setf(std::ios::fixed);
    oss.precision(digits);
    oss << v;
    return oss.str();
}

std::string
fmtPercent(double fraction, int digits)
{
    double pct = fraction * 100.0;
    std::string sign = pct >= 0.0 ? "+" : "";
    return sign + fmtDouble(pct, digits) + "%";
}

std::string
fmtTime(double picoseconds)
{
    struct Unit { double scale; const char *name; };
    static const Unit units[] = {
        {1e12, "s"}, {1e9, "ms"}, {1e6, "us"}, {1e3, "ns"}, {1.0, "ps"},
    };
    for (const Unit &u : units) {
        if (picoseconds >= u.scale)
            return fmtDouble(picoseconds / u.scale, 2) +
                   std::string(" ") + u.name;
    }
    return fmtDouble(picoseconds, 0) + " ps";
}

std::string
fmtBytes(double bytes)
{
    struct Unit { double scale; const char *name; };
    static const Unit units[] = {
        {1024.0 * 1024 * 1024, "GiB"},
        {1024.0 * 1024, "MiB"},
        {1024.0, "KiB"},
    };
    for (const Unit &u : units) {
        if (bytes >= u.scale)
            return fmtDouble(bytes / u.scale, 2) + std::string(" ") +
                   u.name;
    }
    return fmtDouble(bytes, 0) + " B";
}

std::string
fmtCount(double count)
{
    struct Unit { double scale; const char *name; };
    static const Unit units[] = {
        {1e12, "T"}, {1e9, "G"}, {1e6, "M"}, {1e3, "K"},
    };
    for (const Unit &u : units) {
        if (count >= u.scale)
            return fmtDouble(count / u.scale, 2) + u.name;
    }
    return fmtDouble(count, 0);
}

} // namespace uvmasync
