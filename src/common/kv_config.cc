#include "common/kv_config.hh"

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/logging.hh"

namespace uvmasync
{

namespace
{

std::string
trim(const std::string &text)
{
    std::size_t begin = 0;
    std::size_t end = text.size();
    while (begin < end &&
           std::isspace(static_cast<unsigned char>(text[begin])))
        ++begin;
    while (end > begin &&
           std::isspace(static_cast<unsigned char>(text[end - 1])))
        --end;
    return text.substr(begin, end - begin);
}

} // namespace

KvConfig
KvConfig::fromString(const std::string &text)
{
    KvConfig cfg;
    std::istringstream iss(text);
    std::string line;
    std::string section;
    int lineno = 0;
    while (std::getline(iss, line)) {
        ++lineno;
        std::size_t hash = line.find('#');
        if (hash != std::string::npos)
            line = line.substr(0, hash);
        line = trim(line);
        if (line.empty())
            continue;
        if (line.front() == '[') {
            if (line.back() != ']')
                fatal("config line %d: unterminated section header",
                      lineno);
            section = trim(line.substr(1, line.size() - 2));
            continue;
        }
        std::size_t eq = line.find('=');
        if (eq == std::string::npos)
            fatal("config line %d: expected key = value", lineno);
        std::string key = trim(line.substr(0, eq));
        std::string value = trim(line.substr(eq + 1));
        if (key.empty())
            fatal("config line %d: empty key", lineno);
        if (!section.empty())
            key = section + "." + key;
        cfg.values_[key] = value;
    }
    return cfg;
}

KvConfig
KvConfig::fromFile(const std::string &path)
{
    std::ifstream file(path);
    if (!file)
        fatal("cannot open config file '%s'", path.c_str());
    std::ostringstream oss;
    oss << file.rdbuf();
    return fromString(oss.str());
}

bool
KvConfig::has(const std::string &key) const
{
    return values_.count(key) > 0;
}

std::vector<std::string>
KvConfig::keys() const
{
    std::vector<std::string> out;
    out.reserve(values_.size());
    for (const auto &[key, value] : values_)
        out.push_back(key);
    return out;
}

std::string
KvConfig::getString(const std::string &key,
                    const std::string &def) const
{
    auto it = values_.find(key);
    return it == values_.end() ? def : it->second;
}

double
KvConfig::getDouble(const std::string &key, double def) const
{
    auto it = values_.find(key);
    if (it == values_.end())
        return def;
    char *end = nullptr;
    double value = std::strtod(it->second.c_str(), &end);
    if (end == it->second.c_str() || *end != '\0')
        fatal("config key '%s': '%s' is not a number", key.c_str(),
              it->second.c_str());
    return value;
}

std::int64_t
KvConfig::getInt(const std::string &key, std::int64_t def) const
{
    auto it = values_.find(key);
    if (it == values_.end())
        return def;
    char *end = nullptr;
    long long value = std::strtoll(it->second.c_str(), &end, 0);
    if (end == it->second.c_str() || *end != '\0')
        fatal("config key '%s': '%s' is not an integer", key.c_str(),
              it->second.c_str());
    return value;
}

bool
KvConfig::getBool(const std::string &key, bool def) const
{
    auto it = values_.find(key);
    if (it == values_.end())
        return def;
    const std::string &v = it->second;
    if (v == "true" || v == "1" || v == "yes")
        return true;
    if (v == "false" || v == "0" || v == "no")
        return false;
    fatal("config key '%s': '%s' is not a boolean", key.c_str(),
          v.c_str());
}

void
KvConfig::set(const std::string &key, const std::string &value)
{
    values_[key] = value;
}

} // namespace uvmasync
