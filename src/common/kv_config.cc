#include "common/kv_config.hh"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/logging.hh"

namespace uvmasync
{

namespace
{

std::string
trim(const std::string &text)
{
    std::size_t begin = 0;
    std::size_t end = text.size();
    while (begin < end &&
           std::isspace(static_cast<unsigned char>(text[begin])))
        ++begin;
    while (end > begin &&
           std::isspace(static_cast<unsigned char>(text[end - 1])))
        --end;
    return text.substr(begin, end - begin);
}

} // namespace

KvConfig
KvConfig::fromString(const std::string &text,
                     const std::string &sourceName)
{
    KvConfig cfg;
    cfg.sourceName_ = sourceName;
    std::istringstream iss(text);
    std::string line;
    std::string section;
    int lineno = 0;
    while (std::getline(iss, line)) {
        ++lineno;
        std::size_t hash = line.find('#');
        if (hash != std::string::npos)
            line = line.substr(0, hash);
        line = trim(line);
        if (line.empty())
            continue;
        if (line.front() == '[') {
            if (line.back() != ']')
                fatal("config line %d: unterminated section header",
                      lineno);
            section = trim(line.substr(1, line.size() - 2));
            continue;
        }
        std::size_t eq = line.find('=');
        if (eq == std::string::npos)
            fatal("config line %d: expected key = value", lineno);
        std::string key = trim(line.substr(0, eq));
        std::string value = trim(line.substr(eq + 1));
        if (key.empty())
            fatal("config line %d: empty key", lineno);
        if (!section.empty())
            key = section + "." + key;
        auto it = cfg.values_.find(key);
        if (it != cfg.values_.end())
            cfg.shadowed_.push_back(
                KvShadowedKey{key, cfg.lines_[key], lineno});
        cfg.values_[key] = value;
        cfg.lines_[key] = lineno;
    }
    return cfg;
}

KvConfig
KvConfig::fromFile(const std::string &path)
{
    std::ifstream file(path);
    if (!file)
        fatal("cannot open config file '%s'", path.c_str());
    std::ostringstream oss;
    oss << file.rdbuf();
    return fromString(oss.str(), path);
}

int
KvConfig::lineOf(const std::string &key) const
{
    auto it = lines_.find(key);
    return it == lines_.end() ? 0 : it->second;
}

bool
KvConfig::has(const std::string &key) const
{
    return values_.count(key) > 0;
}

std::vector<std::string>
KvConfig::keys() const
{
    std::vector<std::string> out;
    out.reserve(values_.size());
    for (const auto &[key, value] : values_)
        out.push_back(key);
    return out;
}

std::string
KvConfig::getString(const std::string &key,
                    const std::string &def) const
{
    auto it = values_.find(key);
    return it == values_.end() ? def : it->second;
}

double
KvConfig::getDouble(const std::string &key, double def) const
{
    auto it = values_.find(key);
    if (it == values_.end())
        return def;
    char *end = nullptr;
    double value = std::strtod(it->second.c_str(), &end);
    if (end == it->second.c_str() || *end != '\0')
        fatal("config key '%s': '%s' is not a number", key.c_str(),
              it->second.c_str());
    return value;
}

std::int64_t
KvConfig::getInt(const std::string &key, std::int64_t def) const
{
    auto it = values_.find(key);
    if (it == values_.end())
        return def;
    char *end = nullptr;
    long long value = std::strtoll(it->second.c_str(), &end, 0);
    if (end == it->second.c_str() || *end != '\0')
        fatal("config key '%s': '%s' is not an integer", key.c_str(),
              it->second.c_str());
    return value;
}

bool
KvConfig::getBool(const std::string &key, bool def) const
{
    auto it = values_.find(key);
    if (it == values_.end())
        return def;
    const std::string &v = it->second;
    if (v == "true" || v == "1" || v == "yes")
        return true;
    if (v == "false" || v == "0" || v == "no")
        return false;
    fatal("config key '%s': '%s' is not a boolean", key.c_str(),
          v.c_str());
}

void
KvConfig::set(const std::string &key, const std::string &value)
{
    values_[key] = value;
}

namespace
{

std::size_t
editDistance(const std::string &a, const std::string &b)
{
    // Classic two-row Levenshtein.
    std::vector<std::size_t> prev(b.size() + 1);
    std::vector<std::size_t> cur(b.size() + 1);
    for (std::size_t j = 0; j <= b.size(); ++j)
        prev[j] = j;
    for (std::size_t i = 1; i <= a.size(); ++i) {
        cur[0] = i;
        for (std::size_t j = 1; j <= b.size(); ++j) {
            std::size_t sub =
                prev[j - 1] + (a[i - 1] == b[j - 1] ? 0 : 1);
            cur[j] = std::min({prev[j] + 1, cur[j - 1] + 1, sub});
        }
        std::swap(prev, cur);
    }
    return prev[b.size()];
}

} // namespace

std::string
closestKey(const std::string &key,
           const std::vector<std::string> &candidates)
{
    std::size_t bestDist = ~std::size_t(0);
    std::string best;
    for (const std::string &cand : candidates) {
        std::size_t d = editDistance(key, cand);
        if (d < bestDist) {
            bestDist = d;
            best = cand;
        }
    }
    std::size_t limit = std::max<std::size_t>(2, key.size() / 3);
    return bestDist <= limit ? best : "";
}

} // namespace uvmasync
