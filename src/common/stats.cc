#include "common/stats.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace uvmasync
{

void
RunningStat::add(double x)
{
    if (n_ == 0) {
        min_ = x;
        max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++n_;
    double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
}

void
RunningStat::merge(const RunningStat &other)
{
    if (other.n_ == 0)
        return;
    if (n_ == 0) {
        *this = other;
        return;
    }
    double delta = other.mean_ - mean_;
    std::size_t total = n_ + other.n_;
    double na = static_cast<double>(n_);
    double nb = static_cast<double>(other.n_);
    m2_ += other.m2_ + delta * delta * na * nb / static_cast<double>(total);
    mean_ += delta * nb / static_cast<double>(total);
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
    n_ = total;
}

double
RunningStat::min() const
{
    return n_ ? min_ : 0.0;
}

double
RunningStat::max() const
{
    return n_ ? max_ : 0.0;
}

double
RunningStat::variance() const
{
    if (n_ < 2)
        return 0.0;
    return m2_ / static_cast<double>(n_ - 1);
}

double
RunningStat::stddev() const
{
    return std::sqrt(variance());
}

double
RunningStat::cv() const
{
    return mean() != 0.0 ? stddev() / mean() : 0.0;
}

double
SampleSet::mean() const
{
    if (samples_.empty())
        return 0.0;
    double sum = 0.0;
    for (double s : samples_)
        sum += s;
    return sum / static_cast<double>(samples_.size());
}

double
SampleSet::stddev() const
{
    if (samples_.size() < 2)
        return 0.0;
    double m = mean();
    double acc = 0.0;
    for (double s : samples_)
        acc += (s - m) * (s - m);
    return std::sqrt(acc / static_cast<double>(samples_.size() - 1));
}

double
SampleSet::min() const
{
    if (samples_.empty())
        return 0.0;
    return *std::min_element(samples_.begin(), samples_.end());
}

double
SampleSet::max() const
{
    if (samples_.empty())
        return 0.0;
    return *std::max_element(samples_.begin(), samples_.end());
}

double
SampleSet::cv() const
{
    double m = mean();
    return m != 0.0 ? stddev() / m : 0.0;
}

double
SampleSet::percentile(double p) const
{
    UVMASYNC_ASSERT(p >= 0.0 && p <= 100.0, "percentile %f out of range",
                    p);
    if (samples_.empty())
        return 0.0;
    std::vector<double> sorted = samples_;
    std::sort(sorted.begin(), sorted.end());
    if (sorted.size() == 1)
        return sorted.front();
    double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
    auto lo = static_cast<std::size_t>(std::floor(rank));
    auto hi = static_cast<std::size_t>(std::ceil(rank));
    double frac = rank - static_cast<double>(lo);
    return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

double
geomean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double acc = 0.0;
    for (double v : values) {
        UVMASYNC_ASSERT(v > 0.0, "geomean requires positive values, got %f",
                        v);
        acc += std::log(v);
    }
    return std::exp(acc / static_cast<double>(values.size()));
}

double
relativeChange(double value, double baseline)
{
    if (baseline == 0.0)
        return 0.0;
    return (value - baseline) / baseline;
}

double
speedup(double value, double baseline)
{
    if (value == 0.0)
        return 0.0;
    return baseline / value;
}

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), counts_(buckets, 0)
{
    UVMASYNC_ASSERT(hi > lo && buckets > 0,
                    "bad histogram range [%f, %f) x %zu", lo, hi, buckets);
}

void
Histogram::add(double x)
{
    double frac = (x - lo_) / (hi_ - lo_);
    auto idx = static_cast<std::int64_t>(
        frac * static_cast<double>(counts_.size()));
    idx = std::clamp<std::int64_t>(
        idx, 0, static_cast<std::int64_t>(counts_.size()) - 1);
    ++counts_[static_cast<std::size_t>(idx)];
    ++total_;
}

double
Histogram::bucketLow(std::size_t i) const
{
    return lo_ + (hi_ - lo_) * static_cast<double>(i) /
           static_cast<double>(counts_.size());
}

double
Histogram::bucketHigh(std::size_t i) const
{
    return bucketLow(i + 1);
}

std::string
Histogram::sparkline() const
{
    static const char *glyphs[] = {" ", ".", ":", "-", "=", "+", "*", "#"};
    std::size_t peak = 0;
    for (std::size_t c : counts_)
        peak = std::max(peak, c);
    std::string out;
    for (std::size_t c : counts_) {
        std::size_t level = 0;
        if (peak > 0)
            level = c * 7 / peak;
        out += glyphs[level];
    }
    return out;
}

} // namespace uvmasync
