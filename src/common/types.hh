/**
 * @file
 * Fundamental scalar types shared by every simulator module.
 *
 * Simulated time is kept as an integer count of picoseconds so that
 * bandwidth divisions (bytes over GB/s links) never lose precision the
 * way double nanoseconds would across a multi-second simulation.
 */

#ifndef UVMASYNC_COMMON_TYPES_HH
#define UVMASYNC_COMMON_TYPES_HH

#include <cstdint>

namespace uvmasync
{

/** Simulated time in picoseconds. */
using Tick = std::uint64_t;

/** Size or offset in bytes. */
using Bytes = std::uint64_t;

/** Virtual address inside a simulated address space. */
using Addr = std::uint64_t;

/** Page number (address divided by page size). */
using PageNum = std::uint64_t;

/** Monotonic event/transaction identifier. */
using SeqNum = std::uint64_t;

/** A tick value that compares greater than every valid time. */
inline constexpr Tick maxTick = ~Tick(0);

/** @{ Tick construction helpers. */
constexpr Tick
picoseconds(std::uint64_t n)
{
    return n;
}

constexpr Tick
nanoseconds(std::uint64_t n)
{
    return n * 1000ull;
}

constexpr Tick
microseconds(std::uint64_t n)
{
    return n * 1000ull * 1000ull;
}

constexpr Tick
milliseconds(std::uint64_t n)
{
    return n * 1000ull * 1000ull * 1000ull;
}

constexpr Tick
seconds(std::uint64_t n)
{
    return n * 1000ull * 1000ull * 1000ull * 1000ull;
}
/** @} */

/** @{ Tick inspection helpers (lossy, for reporting). */
constexpr double
toNanoseconds(Tick t)
{
    return static_cast<double>(t) / 1e3;
}

constexpr double
toMicroseconds(Tick t)
{
    return static_cast<double>(t) / 1e6;
}

constexpr double
toMilliseconds(Tick t)
{
    return static_cast<double>(t) / 1e9;
}

constexpr double
toSeconds(Tick t)
{
    return static_cast<double>(t) / 1e12;
}
/** @} */

/** @{ Byte-size literal helpers. */
constexpr Bytes
kib(std::uint64_t n)
{
    return n * 1024ull;
}

constexpr Bytes
mib(std::uint64_t n)
{
    return n * 1024ull * 1024ull;
}

constexpr Bytes
gib(std::uint64_t n)
{
    return n * 1024ull * 1024ull * 1024ull;
}
/** @} */

} // namespace uvmasync

#endif // UVMASYNC_COMMON_TYPES_HH
