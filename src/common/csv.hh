/**
 * @file
 * Minimal CSV emission for experiment results (machine-readable twin of
 * the ASCII tables).
 */

#ifndef UVMASYNC_COMMON_CSV_HH
#define UVMASYNC_COMMON_CSV_HH

#include <ostream>
#include <string>
#include <vector>

namespace uvmasync
{

/**
 * Streams rows of comma-separated values with RFC-4180 quoting.
 */
class CsvWriter
{
  public:
    /** Write to @p os; the stream must outlive the writer. */
    explicit CsvWriter(std::ostream &os) : os_(os) {}

    /** Emit one row; each cell is quoted if it needs to be. */
    void writeRow(const std::vector<std::string> &cells);

    /** Quote a single cell per RFC 4180 when required. */
    static std::string escape(const std::string &cell);

  private:
    std::ostream &os_;
};

} // namespace uvmasync

#endif // UVMASYNC_COMMON_CSV_HH
