#include "sim/event_queue.hh"

#include <utility>

#include "common/logging.hh"

namespace uvmasync
{

void
EventQueue::schedule(Tick when, Callback cb, EventPriority prio)
{
    UVMASYNC_ASSERT(when >= curTick_,
                    "scheduling event in the past (%llu < %llu)",
                    static_cast<unsigned long long>(when),
                    static_cast<unsigned long long>(curTick_));
    heap_.push(Entry{when, static_cast<int>(prio), nextSeq_++,
                     std::move(cb)});
}

void
EventQueue::scheduleIn(Tick delay, Callback cb, EventPriority prio)
{
    schedule(curTick_ + delay, std::move(cb), prio);
}

Tick
EventQueue::run()
{
    return runUntil(maxTick);
}

Tick
EventQueue::runUntil(Tick limit)
{
    while (!heap_.empty() && heap_.top().when <= limit) {
        // Copy out before pop: the callback may schedule new events
        // and invalidate the reference returned by top().
        Entry entry = heap_.top();
        heap_.pop();
        curTick_ = entry.when;
        ++executed_;
        if (tracer_) {
            tracer_->instant(TraceCategory::Sim,
                             TraceName::EventDispatch, traceLane_,
                             entry.when, entry.seq);
        }
        entry.cb();
    }
    if (limit != maxTick && curTick_ < limit)
        curTick_ = limit;
    return curTick_;
}

void
EventQueue::reset()
{
    heap_ = {};
    curTick_ = 0;
    nextSeq_ = 0;
    executed_ = 0;
}

} // namespace uvmasync
