#include "sim/event_queue.hh"

#include <algorithm>
#include <utility>

#include "common/logging.hh"

namespace uvmasync
{

const char *
watchdogTripName(WatchdogTrip kind)
{
    switch (kind) {
      case WatchdogTrip::SimTime: return "sim_time";
      case WatchdogTrip::EventCount: return "event_count";
      case WatchdogTrip::Livelock: return "livelock";
    }
    panic("unknown watchdog trip %d", static_cast<int>(kind));
}

void
Watchdog::arm(const WatchdogConfig &cfg)
{
    cfg_ = cfg;
    armed_ = true;
    events_ = 0;
    stallRun_ = 0;
    lastAdvance_ = 0;
}

void
Watchdog::onEvent(Tick now)
{
    if (!armed_)
        return;
    ++events_;
    if (cfg_.maxEvents && events_ > cfg_.maxEvents)
        trip(WatchdogTrip::EventCount, now);
    if (now > lastAdvance_) {
        lastAdvance_ = now;
        stallRun_ = 0;
    } else if (cfg_.maxStallEvents &&
               ++stallRun_ >= cfg_.maxStallEvents) {
        trip(WatchdogTrip::Livelock, now);
    }
    checkSimTime(now);
}

void
Watchdog::checkSimTime(Tick now)
{
    if (armed_ && cfg_.maxSimTime && now > cfg_.maxSimTime)
        trip(WatchdogTrip::SimTime, now);
}

void
Watchdog::trip(WatchdogTrip kind, Tick now)
{
    if (tracer_ && tracer_->enabled(TraceCategory::Sim)) {
        // The lane is created only at the moment a trip actually
        // happens, so clean traced runs keep their exact lane set
        // (and therefore byte-identical exports).
        std::uint32_t lane = tracer_->lane("watchdog");
        tracer_->instant(TraceCategory::Sim, TraceName::WatchdogTrip,
                         lane, now, events_,
                         watchdogTripName(kind));
    }
    double ms = static_cast<double>(now) / 1e9;
    std::string msg;
    switch (kind) {
      case WatchdogTrip::SimTime:
        msg = strfmt("watchdog: simulated time %.3f ms exceeds the "
                     "ceiling %.3f ms (watchdog.max_sim_ms)",
                     ms, static_cast<double>(cfg_.maxSimTime) / 1e9);
        break;
      case WatchdogTrip::EventCount:
        msg = strfmt("watchdog: %llu events dispatched exceeds the "
                     "ceiling %llu (watchdog.max_events) at "
                     "t=%.3f ms",
                     static_cast<unsigned long long>(events_),
                     static_cast<unsigned long long>(cfg_.maxEvents),
                     ms);
        break;
      case WatchdogTrip::Livelock:
        msg = strfmt(
            "watchdog: livelock — %llu consecutive events without "
            "simulated-time advance at t=%.3f ms "
            "(watchdog.max_stall_events)",
            static_cast<unsigned long long>(stallRun_), ms);
        break;
    }
    throw PointTimeout(msg, kind, now, events_);
}

namespace
{

/** Initial calendar geometry: 64 slices of 1024 ticks (~1 ns). */
constexpr std::size_t initialBuckets = 64;
constexpr std::uint32_t initialWidthShift = 10;

/** Hard bounds keeping slot arithmetic overflow-free. */
constexpr std::uint32_t maxWidthShift = 52;
constexpr std::size_t minBucketCount = 64;
constexpr std::size_t maxBucketCount = 65536;

std::size_t
pow2AtLeast(std::size_t n)
{
    std::size_t p = 1;
    while (p < n)
        p <<= 1;
    return p;
}

} // namespace

EventQueue::EventQueue()
    : buckets_(initialBuckets), bucketMask_(initialBuckets - 1),
      widthShift_(initialWidthShift)
{
}

EventQueue::~EventQueue()
{
    dropAll();
}

void
EventQueue::schedule(Tick when, Callback cb, EventPriority prio,
                     const char *what)
{
    if (when < curTick_) {
        fatal("EventQueue: '%s' scheduled %llu ticks in the past "
              "(when=%llu < now=%llu)",
              what,
              static_cast<unsigned long long>(curTick_ - when),
              static_cast<unsigned long long>(when),
              static_cast<unsigned long long>(curTick_));
    }
    EventNode *node = arena_.make(when, static_cast<std::int32_t>(prio),
                                  nextSeq_++, std::move(cb));
    insertNode(node);
}

void
EventQueue::scheduleIn(Tick delay, Callback cb, EventPriority prio,
                       const char *what)
{
    schedule(curTick_ + delay, std::move(cb), prio, what);
}

void
EventQueue::insertNode(EventNode *node)
{
    if (pending_ == 0) {
        // Empty queue: re-anchor the day at the current tick so a
        // long-running simulation's calendar follows simulated time
        // instead of overflowing everything after the first day.
        daySlotBase_ = slotOf(curTick_);
        scanSlot_ = daySlotBase_;
    }
    routeNode(node);
}

void
EventQueue::routeNode(EventNode *node)
{
    std::uint64_t slot = slotOf(node->when);
    // Unsigned wrap routes behind-day slots (possible after a day
    // rollover jumped ahead of curTick_) into overflow; peekMin()
    // repairs the calendar before dispatching past them.
    if (slot - daySlotBase_ < buckets_.size()) {
        bucketInsert(buckets_[slot & bucketMask_], node);
        if (slot < scanSlot_)
            scanSlot_ = slot;
    } else {
        overflow_.push_back(node);
        overflowMin_ = std::min(overflowMin_, node->when);
    }
    ++pending_;
}

void
EventQueue::bucketInsert(Bucket &b, EventNode *node)
{
    node->next = nullptr;
    if (!b.head) {
        b.head = b.tail = node;
        return;
    }
    // FIFO fast path: same-timestamp bursts (and generally any
    // in-order schedule) append at the tail in O(1) because a fresh
    // node's sequence number exceeds every pending one's.
    if (!before(*node, *b.tail)) {
        b.tail->next = node;
        b.tail = node;
        return;
    }
    EventNode **link = &b.head;
    while (*link && !before(*node, **link))
        link = &(*link)->next;
    node->next = *link;
    *link = node;
}

EventQueue::EventNode *
EventQueue::firstInDay()
{
    if (scanSlot_ < daySlotBase_)
        scanSlot_ = daySlotBase_;
    std::uint64_t dayEnd = daySlotBase_ + buckets_.size();
    while (scanSlot_ < dayEnd) {
        Bucket &b = buckets_[scanSlot_ & bucketMask_];
        if (b.head)
            return b.head;
        ++scanSlot_;
    }
    return nullptr;
}

EventQueue::EventNode *
EventQueue::peekMin()
{
    for (;;) {
        EventNode *candidate = firstInDay();
        if (candidate &&
            (overflow_.empty() || candidate->when < overflowMin_))
            return candidate;
        if (!candidate && overflow_.empty())
            return nullptr;
        // Day exhausted, or overflow holds an event at/before the
        // day's earliest (a behind-day insert): re-bucket around the
        // pending set.
        rebuild();
    }
}

void
EventQueue::rebuild()
{
    ++rebuilds_;

    // Collect every pending node.
    std::vector<EventNode *> all;
    all.reserve(pending_);
    for (Bucket &b : buckets_) {
        for (EventNode *n = b.head; n;) {
            EventNode *next = n->next;
            all.push_back(n);
            n = next;
        }
        b.head = b.tail = nullptr;
    }
    for (EventNode *n : overflow_)
        all.push_back(n);
    overflow_.clear();
    overflowMin_ = maxTick;
    UVMASYNC_ASSERT(all.size() == pending_,
                    "calendar rebuild lost events (%zu != %zu)",
                    all.size(), pending_);

    // Sorting makes every redistribution insert hit the O(1) tail
    // fast path, and the dense-front width below only needs the
    // k-th smallest timestamp.
    std::sort(all.begin(), all.end(),
              [](const EventNode *a, const EventNode *b) {
                  return before(*a, *b);
              });

    std::size_t nb = std::min(
        maxBucketCount,
        std::max(minBucketCount, pow2AtLeast(all.size())));
    if (nb != buckets_.size()) {
        buckets_.assign(nb, Bucket{});
        bucketMask_ = nb - 1;
    }

    // Size the day to the dense front (ladder-style): cover the
    // nearest `nb` events at the finest width that fits, leaving any
    // far outliers in overflow for a later rollover. This keeps a
    // cluster of near events from collapsing into one bucket just
    // because an end-of-run timeout sits far in the future.
    Tick minWhen = all.front()->when;
    std::size_t frontIndex = std::min(all.size(), nb) - 1;
    Tick frontWhen = all[frontIndex]->when;
    Tick span = frontWhen - minWhen + 1;
    std::uint32_t shift = 0;
    while (shift < maxWidthShift &&
           (span >> shift) > static_cast<Tick>(nb))
        ++shift;
    widthShift_ = shift;
    daySlotBase_ = slotOf(minWhen);
    scanSlot_ = daySlotBase_;

    std::size_t wasPending = pending_;
    pending_ = 0;
    for (EventNode *n : all)
        routeNode(n); // not insertNode: keep the rebuilt anchor
    UVMASYNC_ASSERT(pending_ == wasPending,
                    "calendar rebuild dropped events");
}

Tick
EventQueue::run()
{
    return runUntil(maxTick);
}

Tick
EventQueue::runUntil(Tick limit)
{
    while (pending_) {
        EventNode *node = peekMin();
        if (node->when > limit)
            break;
        // peekMin() leaves scanSlot_ on the node's bucket; unlink the
        // head in O(1).
        Bucket &b = buckets_[scanSlot_ & bucketMask_];
        UVMASYNC_ASSERT(b.head == node, "dispatch lost its bucket");
        b.head = node->next;
        if (!b.head)
            b.tail = nullptr;
        --pending_;

        curTick_ = node->when;
        ++executed_;
        if (tracer_) {
            tracer_->instant(TraceCategory::Sim,
                             TraceName::EventDispatch, traceLane_,
                             node->when, node->seq);
        }
        // Move the callback out before recycling so the node's slot
        // is free for events the callback itself schedules.
        Callback cb = std::move(node->cb);
        if (watchdog_) {
            Tick when = node->when;
            arena_.recycle(node);
            watchdog_->onEvent(when);
        } else {
            arena_.recycle(node);
        }
        cb();
    }
    if (limit != maxTick && curTick_ < limit)
        curTick_ = limit;
    return curTick_;
}

void
EventQueue::dropAll()
{
    for (Bucket &b : buckets_) {
        for (EventNode *n = b.head; n;) {
            EventNode *next = n->next;
            arena_.recycle(n);
            n = next;
        }
        b.head = b.tail = nullptr;
    }
    for (EventNode *n : overflow_)
        arena_.recycle(n);
    overflow_.clear();
    overflowMin_ = maxTick;
    pending_ = 0;
    UVMASYNC_ASSERT(arena_.liveCount() == 0,
                    "event arena leaked %zu nodes",
                    arena_.liveCount());
}

void
EventQueue::reset()
{
    dropAll();
    curTick_ = 0;
    nextSeq_ = 0;
    executed_ = 0;
    daySlotBase_ = 0;
    scanSlot_ = 0;
}

} // namespace uvmasync
