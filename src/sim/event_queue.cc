#include "sim/event_queue.hh"

#include <utility>

#include "common/logging.hh"

namespace uvmasync
{

const char *
watchdogTripName(WatchdogTrip kind)
{
    switch (kind) {
      case WatchdogTrip::SimTime: return "sim_time";
      case WatchdogTrip::EventCount: return "event_count";
      case WatchdogTrip::Livelock: return "livelock";
    }
    panic("unknown watchdog trip %d", static_cast<int>(kind));
}

void
Watchdog::arm(const WatchdogConfig &cfg)
{
    cfg_ = cfg;
    armed_ = true;
    events_ = 0;
    stallRun_ = 0;
    lastAdvance_ = 0;
}

void
Watchdog::onEvent(Tick now)
{
    if (!armed_)
        return;
    ++events_;
    if (cfg_.maxEvents && events_ > cfg_.maxEvents)
        trip(WatchdogTrip::EventCount, now);
    if (now > lastAdvance_) {
        lastAdvance_ = now;
        stallRun_ = 0;
    } else if (cfg_.maxStallEvents &&
               ++stallRun_ >= cfg_.maxStallEvents) {
        trip(WatchdogTrip::Livelock, now);
    }
    checkSimTime(now);
}

void
Watchdog::checkSimTime(Tick now)
{
    if (armed_ && cfg_.maxSimTime && now > cfg_.maxSimTime)
        trip(WatchdogTrip::SimTime, now);
}

void
Watchdog::trip(WatchdogTrip kind, Tick now)
{
    if (tracer_ && tracer_->enabled(TraceCategory::Sim)) {
        // The lane is created only at the moment a trip actually
        // happens, so clean traced runs keep their exact lane set
        // (and therefore byte-identical exports).
        std::uint32_t lane = tracer_->lane("watchdog");
        tracer_->instant(TraceCategory::Sim, TraceName::WatchdogTrip,
                         lane, now, events_,
                         watchdogTripName(kind));
    }
    double ms = static_cast<double>(now) / 1e9;
    std::string msg;
    switch (kind) {
      case WatchdogTrip::SimTime:
        msg = strfmt("watchdog: simulated time %.3f ms exceeds the "
                     "ceiling %.3f ms (watchdog.max_sim_ms)",
                     ms, static_cast<double>(cfg_.maxSimTime) / 1e9);
        break;
      case WatchdogTrip::EventCount:
        msg = strfmt("watchdog: %llu events dispatched exceeds the "
                     "ceiling %llu (watchdog.max_events) at "
                     "t=%.3f ms",
                     static_cast<unsigned long long>(events_),
                     static_cast<unsigned long long>(cfg_.maxEvents),
                     ms);
        break;
      case WatchdogTrip::Livelock:
        msg = strfmt(
            "watchdog: livelock — %llu consecutive events without "
            "simulated-time advance at t=%.3f ms "
            "(watchdog.max_stall_events)",
            static_cast<unsigned long long>(stallRun_), ms);
        break;
    }
    throw PointTimeout(msg, kind, now, events_);
}

void
EventQueue::schedule(Tick when, Callback cb, EventPriority prio,
                     const char *what)
{
    if (when < curTick_) {
        fatal("EventQueue: '%s' scheduled %llu ticks in the past "
              "(when=%llu < now=%llu)",
              what,
              static_cast<unsigned long long>(curTick_ - when),
              static_cast<unsigned long long>(when),
              static_cast<unsigned long long>(curTick_));
    }
    heap_.push(Entry{when, static_cast<int>(prio), nextSeq_++,
                     std::move(cb)});
}

void
EventQueue::scheduleIn(Tick delay, Callback cb, EventPriority prio,
                       const char *what)
{
    schedule(curTick_ + delay, std::move(cb), prio, what);
}

Tick
EventQueue::run()
{
    return runUntil(maxTick);
}

Tick
EventQueue::runUntil(Tick limit)
{
    while (!heap_.empty() && heap_.top().when <= limit) {
        // Copy out before pop: the callback may schedule new events
        // and invalidate the reference returned by top().
        Entry entry = heap_.top();
        heap_.pop();
        curTick_ = entry.when;
        ++executed_;
        if (tracer_) {
            tracer_->instant(TraceCategory::Sim,
                             TraceName::EventDispatch, traceLane_,
                             entry.when, entry.seq);
        }
        if (watchdog_)
            watchdog_->onEvent(entry.when);
        entry.cb();
    }
    if (limit != maxTick && curTick_ < limit)
        curTick_ = limit;
    return curTick_;
}

void
EventQueue::reset()
{
    heap_ = {};
    curTick_ = 0;
    nextSeq_ = 0;
    executed_ = 0;
}

} // namespace uvmasync
