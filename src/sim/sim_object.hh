/**
 * @file
 * Base class for named, stat-exporting simulation components, plus the
 * registry the experiment harness uses to dump all statistics.
 */

#ifndef UVMASYNC_SIM_SIM_OBJECT_HH
#define UVMASYNC_SIM_SIM_OBJECT_HH

#include <map>
#include <string>
#include <utility>
#include <vector>

namespace uvmasync
{

/** A flat name -> value statistics snapshot. */
using StatMap = std::map<std::string, double>;

/**
 * Base class for simulator components. Provides a hierarchical name
 * and a virtual stats hook; the experiment harness walks components
 * and aggregates their StatMaps into result records.
 */
class SimObject
{
  public:
    explicit SimObject(std::string name) : name_(std::move(name)) {}
    virtual ~SimObject() = default;

    SimObject(const SimObject &) = delete;
    SimObject &operator=(const SimObject &) = delete;

    const std::string &name() const { return name_; }

    /**
     * Append this component's statistics to @p out, each key prefixed
     * with the component name ("pcie.bytes_h2d", ...).
     */
    virtual void exportStats(StatMap &out) const = 0;

    /** Clear accumulated statistics between runs. */
    virtual void resetStats() = 0;

  protected:
    /** Helper for exportStats implementations. */
    void
    putStat(StatMap &out, const std::string &key, double value) const
    {
        out[name_ + "." + key] = value;
    }

  private:
    std::string name_;
};

} // namespace uvmasync

#endif // UVMASYNC_SIM_SIM_OBJECT_HH
