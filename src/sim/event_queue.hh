/**
 * @file
 * The discrete-event simulation kernel.
 *
 * A single EventQueue owns simulated time. Components schedule
 * callbacks at absolute ticks; run() drains the queue in (tick,
 * priority, sequence) order so simultaneous events execute
 * deterministically.
 *
 * Internally the queue is a two-level calendar (gem5/ladder-queue
 * style) rather than a comparison-based binary heap: near-future
 * events hash into per-time-slice FIFO buckets, far-future events
 * wait in an overflow level that is re-bucketed when the calendar
 * day rolls over. Event nodes live in an arena with freelist reuse
 * (sim/event_arena.hh), so steady-state scheduling touches no
 * allocator and dispatch never copies a callback. The dispatch order
 * is the same strict (tick, priority, sequence) total order as the
 * reference heap queue (sim/heap_event_queue.hh) — the equivalence
 * property suite pins the two to identical sequences.
 */

#ifndef UVMASYNC_SIM_EVENT_QUEUE_HH
#define UVMASYNC_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/types.hh"
#include "sim/event_arena.hh"
#include "trace/trace.hh"

namespace uvmasync
{

/**
 * Default ceiling on dispatched events per point. Generous: the
 * largest registry job moves a few million chunks; only a genuinely
 * runaway simulation (or a pathological inject plan) gets here.
 */
inline constexpr std::uint64_t defaultWatchdogMaxEvents =
    1000000000ull;

/**
 * Default livelock threshold: consecutive dispatches with no
 * simulated-time advance. Legitimate same-tick runs exist — evicting
 * a full 40 GiB device of clean chunks is ~160k zero-cost events —
 * so the default sits far above the worst honest case.
 */
inline constexpr std::uint64_t defaultWatchdogMaxStallEvents =
    2000000ull;

/** Ceilings enforced by the Watchdog; 0 disables a ceiling. */
struct WatchdogConfig
{
    /** Ceiling on simulated time; 0 = unlimited. */
    Tick maxSimTime = 0;

    /** Ceiling on dispatched-event count; 0 = unlimited. */
    std::uint64_t maxEvents = defaultWatchdogMaxEvents;

    /**
     * Consecutive dispatches without simulated-time advance before
     * the run is declared livelocked; 0 = unlimited.
     */
    std::uint64_t maxStallEvents = defaultWatchdogMaxStallEvents;
};

/** Which ceiling a PointTimeout tripped. */
enum class WatchdogTrip
{
    SimTime,    //!< simulated time exceeded maxSimTime
    EventCount, //!< dispatched events exceeded maxEvents
    Livelock,   //!< maxStallEvents dispatches with no time advance
};

/** Stable trip-kind slug ("sim_time", "event_count", "livelock"). */
const char *watchdogTripName(WatchdogTrip kind);

/**
 * Structured failure of one simulated point: a watchdog ceiling was
 * exceeded. Like TransferAborted, this fails only the point that
 * raised it — the parallel engine catches it per point (under its
 * FatalThrowScope) and quarantines the point after its retry budget.
 */
class PointTimeout : public std::runtime_error
{
  public:
    PointTimeout(const std::string &what, WatchdogTrip kind,
                 Tick when, std::uint64_t events)
        : std::runtime_error(what), kind_(kind), when_(when),
          events_(events)
    {
    }

    WatchdogTrip kind() const { return kind_; }

    /** Simulated time at the trip. */
    Tick when() const { return when_; }

    /** Events observed up to the trip. */
    std::uint64_t events() const { return events_; }

  private:
    WatchdogTrip kind_;
    Tick when_;
    std::uint64_t events_;
};

/**
 * Progress monitor over one simulated execution.
 *
 * Both simulation styles feed it: the EventQueue calls onEvent() per
 * dispatched event, and the analytic busy-until components (PCIe
 * link transfers, migration-engine evictions) call it per modelled
 * completion. A ceiling violation throws PointTimeout; the watchdog
 * never recovers the run, it only bounds the damage to one point.
 */
class Watchdog
{
  public:
    Watchdog() = default;

    /** Arm with @p cfg and reset all counters (start of a run). */
    void arm(const WatchdogConfig &cfg);

    /** Detach; onEvent()/checkSimTime() become no-ops. */
    void disarm() { armed_ = false; }

    bool armed() const { return armed_; }

    const WatchdogConfig &config() const { return cfg_; }

    /** Events observed since arm(). */
    std::uint64_t events() const { return events_; }

    /** Current run of events with no simulated-time advance. */
    std::uint64_t stallRun() const { return stallRun_; }

    /**
     * Emit a WatchdogTrip instant into @p tracer when a ceiling
     * trips (lane "watchdog", created lazily so clean traced runs
     * stay byte-identical). Pass nullptr to detach.
     */
    void setTrace(Tracer *tracer) { tracer_ = tracer; }

    /**
     * Observe one simulated event completing at @p now. Throws
     * PointTimeout when a ceiling is exceeded.
     */
    void onEvent(Tick now);

    /** Check only the simulated-time ceiling (phase boundaries). */
    void checkSimTime(Tick now);

  private:
    [[noreturn]] void trip(WatchdogTrip kind, Tick now);

    WatchdogConfig cfg_;
    bool armed_ = false;
    std::uint64_t events_ = 0;
    std::uint64_t stallRun_ = 0;
    Tick lastAdvance_ = 0;
    Tracer *tracer_ = nullptr;
};

/**
 * Ordering priority for events scheduled at the same tick; lower
 * values run first.
 */
enum class EventPriority : int
{
    /** Hardware state updates (transfer completions, etc.). */
    Default = 0,
    /** Consumers that want to observe a fully updated tick. */
    Late = 10,
};

/**
 * Deterministic discrete-event queue (two-level calendar).
 */
class EventQueue
{
  public:
    using Callback = std::function<void()>;

    EventQueue();

    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    ~EventQueue();

    /** Current simulated time. */
    Tick curTick() const { return curTick_; }

    /** Number of events not yet executed. */
    std::size_t pending() const { return pending_; }

    bool empty() const { return pending_ == 0; }

    /**
     * Schedule @p cb to run at absolute time @p when. Scheduling
     * before now() is a structured fatal naming the offending event
     * (@p what) and the backwards delta — a FatalError under a
     * FatalThrowScope, a process exit otherwise.
     */
    void schedule(Tick when, Callback cb,
                  EventPriority prio = EventPriority::Default,
                  const char *what = "event");

    /** Schedule @p cb @p delay ticks from now. */
    void scheduleIn(Tick delay, Callback cb,
                    EventPriority prio = EventPriority::Default,
                    const char *what = "event");

    /**
     * Run events until the queue is empty; returns the tick of the
     * last event executed (or the current tick if none ran).
     */
    Tick run();

    /**
     * Run events with time <= @p limit; the current tick advances to
     * at most @p limit. Returns the current tick afterwards.
     */
    Tick runUntil(Tick limit);

    /** Drop all pending events and reset time to zero. */
    void reset();

    /** Total number of events executed since construction/reset. */
    std::uint64_t executedCount() const { return executed_; }

    /**
     * Emit a dispatch instant into @p tracer (lane @p lane) for every
     * event executed. Pass nullptr to detach.
     */
    void
    setTracer(Tracer *tracer, std::uint32_t lane = 0)
    {
        tracer_ = tracer;
        traceLane_ = lane;
    }

    /**
     * Report every dispatched event to @p watchdog (ceilings +
     * livelock detection). Pass nullptr to detach.
     */
    void setWatchdog(Watchdog *watchdog) { watchdog_ = watchdog; }

    /**
     * Calendar re-initializations so far (day rollovers and
     * behind-day repairs). Observability for tests and the bench;
     * has no bearing on dispatch order.
     */
    std::uint64_t rebuilds() const { return rebuilds_; }

  private:
    /** Arena-allocated event; next links its FIFO bucket chain. */
    struct EventNode
    {
        EventNode(Tick w, std::int32_t p, SeqNum s, Callback c)
            : when(w), prio(p), seq(s), cb(std::move(c))
        {
        }

        Tick when;
        std::int32_t prio;
        SeqNum seq;
        EventNode *next = nullptr;
        Callback cb;
    };

    /** One calendar slice: (when, prio, seq)-sorted singly linked. */
    struct Bucket
    {
        EventNode *head = nullptr;
        EventNode *tail = nullptr;
    };

    /** Strict total dispatch order. */
    static bool
    before(const EventNode &a, const EventNode &b)
    {
        if (a.when != b.when)
            return a.when < b.when;
        if (a.prio != b.prio)
            return a.prio < b.prio;
        return a.seq < b.seq;
    }

    /** Absolute calendar slot of @p when under the current width. */
    std::uint64_t slotOf(Tick when) const { return when >> widthShift_; }

    /** Re-anchor an empty calendar, then route @p node. */
    void insertNode(EventNode *node);

    /** Route @p node into its day bucket or the overflow level. */
    void routeNode(EventNode *node);

    /** Stable sorted insert into @p b (tail fast path for FIFO). */
    void bucketInsert(Bucket &b, EventNode *node);

    /** Head of the earliest nonempty bucket of the current day. */
    EventNode *firstInDay();

    /**
     * Earliest pending event, re-bucketing overflow (and repairing a
     * behind-day insert) as needed; null when the queue is empty.
     */
    EventNode *peekMin();

    /** Re-initialize the calendar around the pending event set. */
    void rebuild();

    /** Recycle every pending node (reset / destruction). */
    void dropAll();

    std::vector<Bucket> buckets_;
    std::uint64_t bucketMask_ = 0;   //!< buckets_.size() - 1
    std::uint32_t widthShift_ = 10;  //!< bucket width = 2^shift ticks
    std::uint64_t daySlotBase_ = 0;  //!< first absolute slot of the day
    std::uint64_t scanSlot_ = 0;     //!< dispatch scan position (abs)
    std::vector<EventNode *> overflow_; //!< beyond the current day
    Tick overflowMin_ = maxTick;
    std::size_t pending_ = 0;
    std::uint64_t rebuilds_ = 0;

    ObjectArena<EventNode> arena_;

    Tick curTick_ = 0;
    SeqNum nextSeq_ = 0;
    std::uint64_t executed_ = 0;
    Tracer *tracer_ = nullptr;
    std::uint32_t traceLane_ = 0;
    Watchdog *watchdog_ = nullptr;
};

} // namespace uvmasync

#endif // UVMASYNC_SIM_EVENT_QUEUE_HH
