/**
 * @file
 * The discrete-event simulation kernel.
 *
 * A single EventQueue owns simulated time. Components schedule
 * callbacks at absolute ticks; run() drains the queue in (tick,
 * priority, sequence) order so simultaneous events execute
 * deterministically.
 */

#ifndef UVMASYNC_SIM_EVENT_QUEUE_HH
#define UVMASYNC_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/types.hh"
#include "trace/trace.hh"

namespace uvmasync
{

/**
 * Ordering priority for events scheduled at the same tick; lower
 * values run first.
 */
enum class EventPriority : int
{
    /** Hardware state updates (transfer completions, etc.). */
    Default = 0,
    /** Consumers that want to observe a fully updated tick. */
    Late = 10,
};

/**
 * Deterministic discrete-event queue.
 */
class EventQueue
{
  public:
    using Callback = std::function<void()>;

    EventQueue() = default;

    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time. */
    Tick curTick() const { return curTick_; }

    /** Number of events not yet executed. */
    std::size_t pending() const { return heap_.size(); }

    bool empty() const { return heap_.empty(); }

    /**
     * Schedule @p cb to run at absolute time @p when. Scheduling in
     * the past is a simulator bug.
     */
    void schedule(Tick when, Callback cb,
                  EventPriority prio = EventPriority::Default);

    /** Schedule @p cb @p delay ticks from now. */
    void scheduleIn(Tick delay, Callback cb,
                    EventPriority prio = EventPriority::Default);

    /**
     * Run events until the queue is empty; returns the tick of the
     * last event executed (or the current tick if none ran).
     */
    Tick run();

    /**
     * Run events with time <= @p limit; the current tick advances to
     * at most @p limit. Returns the current tick afterwards.
     */
    Tick runUntil(Tick limit);

    /** Drop all pending events and reset time to zero. */
    void reset();

    /** Total number of events executed since construction/reset. */
    std::uint64_t executedCount() const { return executed_; }

    /**
     * Emit a dispatch instant into @p tracer (lane @p lane) for every
     * event executed. Pass nullptr to detach.
     */
    void
    setTracer(Tracer *tracer, std::uint32_t lane = 0)
    {
        tracer_ = tracer;
        traceLane_ = lane;
    }

  private:
    struct Entry
    {
        Tick when;
        int prio;
        SeqNum seq;
        Callback cb;
    };

    struct Later
    {
        bool
        operator()(const Entry &a, const Entry &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            if (a.prio != b.prio)
                return a.prio > b.prio;
            return a.seq > b.seq;
        }
    };

    std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
    Tick curTick_ = 0;
    SeqNum nextSeq_ = 0;
    std::uint64_t executed_ = 0;
    Tracer *tracer_ = nullptr;
    std::uint32_t traceLane_ = 0;
};

} // namespace uvmasync

#endif // UVMASYNC_SIM_EVENT_QUEUE_HH
