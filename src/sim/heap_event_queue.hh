/**
 * @file
 * Reference binary-heap event queue.
 *
 * This is the original comparison-based EventQueue implementation,
 * kept verbatim after the calendar-queue rewrite for two jobs:
 *
 *  - the equivalence property suite (tests/test_calendar_queue.cc)
 *    replays randomized schedules through both queues and requires
 *    identical (tick, priority, sequence) dispatch order;
 *  - the perf harness (src/perf) times the same event-loop workload
 *    on both, so BENCH_*.json carries the measured calendar-vs-heap
 *    speedup as a machine-independent ratio.
 *
 * It is NOT used by the simulator itself; everything hot runs on the
 * calendar queue in sim/event_queue.hh.
 */

#ifndef UVMASYNC_SIM_HEAP_EVENT_QUEUE_HH
#define UVMASYNC_SIM_HEAP_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/types.hh"
#include "sim/event_queue.hh"

namespace uvmasync
{

/**
 * Comparison-ordered reference queue with the EventQueue contract:
 * dispatch in strict (tick, priority, sequence) order, same
 * past-scheduling fatal, same tracer/watchdog hooks.
 */
class HeapEventQueue
{
  public:
    using Callback = std::function<void()>;

    HeapEventQueue() = default;

    HeapEventQueue(const HeapEventQueue &) = delete;
    HeapEventQueue &operator=(const HeapEventQueue &) = delete;

    Tick curTick() const { return curTick_; }
    std::size_t pending() const { return heap_.size(); }
    bool empty() const { return heap_.empty(); }

    void schedule(Tick when, Callback cb,
                  EventPriority prio = EventPriority::Default,
                  const char *what = "event");

    void scheduleIn(Tick delay, Callback cb,
                    EventPriority prio = EventPriority::Default,
                    const char *what = "event");

    Tick run();
    Tick runUntil(Tick limit);
    void reset();

    std::uint64_t executedCount() const { return executed_; }

    void
    setTracer(Tracer *tracer, std::uint32_t lane = 0)
    {
        tracer_ = tracer;
        traceLane_ = lane;
    }

    void setWatchdog(Watchdog *watchdog) { watchdog_ = watchdog; }

  private:
    struct Entry
    {
        Tick when;
        int prio;
        SeqNum seq;
        Callback cb;
    };

    struct Later
    {
        bool
        operator()(const Entry &a, const Entry &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            if (a.prio != b.prio)
                return a.prio > b.prio;
            return a.seq > b.seq;
        }
    };

    std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
    Tick curTick_ = 0;
    SeqNum nextSeq_ = 0;
    std::uint64_t executed_ = 0;
    Tracer *tracer_ = nullptr;
    std::uint32_t traceLane_ = 0;
    Watchdog *watchdog_ = nullptr;
};

} // namespace uvmasync

#endif // UVMASYNC_SIM_HEAP_EVENT_QUEUE_HH
