#include "sim/resource.hh"

#include <algorithm>
#include <utility>

#include "common/logging.hh"

namespace uvmasync
{

BandwidthResource::BandwidthResource(std::string name, Bandwidth bandwidth,
                                     Tick perRequestLatency)
    : name_(std::move(name)), bandwidth_(bandwidth),
      perRequestLatency_(perRequestLatency)
{
    UVMASYNC_ASSERT(bandwidth_.valid(), "%s: zero bandwidth",
                    name_.c_str());
}

Occupancy
BandwidthResource::acquire(Tick now, Bytes bytes)
{
    Tick start = std::max(now, busyUntil_);
    Tick service = perRequestLatency_ + bandwidth_.transferTime(bytes);
    Tick end = start + service;
    busyUntil_ = end;
    bytesServed_ += bytes;
    busyTime_ += service;
    ++requests_;
    return Occupancy{start, end};
}

Tick
BandwidthResource::nextFree(Tick now) const
{
    return std::max(now, busyUntil_);
}

void
BandwidthResource::reset()
{
    busyUntil_ = 0;
    bytesServed_ = 0;
    busyTime_ = 0;
    requests_ = 0;
}

ChannelResource::ChannelResource(std::string name, std::size_t channels,
                                 Bandwidth perChannelBandwidth,
                                 Tick perRequestLatency)
    : name_(std::move(name))
{
    UVMASYNC_ASSERT(channels > 0, "%s: need at least one channel",
                    name_.c_str());
    channels_.reserve(channels);
    for (std::size_t i = 0; i < channels; ++i) {
        channels_.emplace_back(name_ + "." + std::to_string(i),
                               perChannelBandwidth, perRequestLatency);
    }
}

Occupancy
ChannelResource::acquire(Tick now, Bytes bytes)
{
    BandwidthResource *best = &channels_.front();
    for (auto &ch : channels_) {
        if (ch.nextFree(now) < best->nextFree(now))
            best = &ch;
    }
    return best->acquire(now, bytes);
}

Bytes
ChannelResource::bytesServed() const
{
    Bytes total = 0;
    for (const auto &ch : channels_)
        total += ch.bytesServed();
    return total;
}

Tick
ChannelResource::busyTime() const
{
    Tick total = 0;
    for (const auto &ch : channels_)
        total += ch.busyTime();
    return total;
}

void
ChannelResource::reset()
{
    for (auto &ch : channels_)
        ch.reset();
}

} // namespace uvmasync
