/**
 * @file
 * Block arena with an intrusive freelist, sized for event nodes.
 *
 * The event queue allocates one node per scheduled event and frees it
 * at dispatch; under a sweep that is millions of same-sized
 * allocations with stack-like reuse — the worst possible client for a
 * general-purpose allocator and the best possible client for a
 * freelist. The arena carves nodes out of geometrically growing
 * blocks and recycles freed slots in LIFO order, so a steady-state
 * simulation reuses a handful of cache-hot slots and never touches
 * malloc after warmup.
 *
 * Lifetime rules (also documented in DESIGN.md §12):
 *  - make() constructs a T in a recycled slot if one exists, else in
 *    the next fresh slot (allocating a new block when the current one
 *    is full);
 *  - recycle() destroys the object and pushes its slot onto the
 *    freelist — the pointer is dead from that moment;
 *  - destroying the arena releases the blocks WITHOUT running
 *    destructors: every live object must be recycled first (the
 *    event queue's clear() walks its buckets to guarantee this, and
 *    liveCount() lets callers assert it).
 */

#ifndef UVMASYNC_SIM_EVENT_ARENA_HH
#define UVMASYNC_SIM_EVENT_ARENA_HH

#include <cstddef>
#include <memory>
#include <new>
#include <utility>
#include <vector>

namespace uvmasync
{

/**
 * Fixed-type object arena with freelist reuse.
 *
 * @tparam T          element type
 * @tparam FirstBlock slots in the first block; later blocks double
 *                    (capped) so bursty schedules amortise to O(1)
 *                    block allocations.
 */
template <typename T, std::size_t FirstBlock = 128>
class ObjectArena
{
  public:
    ObjectArena() = default;

    ObjectArena(const ObjectArena &) = delete;
    ObjectArena &operator=(const ObjectArena &) = delete;

    ~ObjectArena() = default;

    /** Construct a T from a recycled or fresh slot. */
    template <typename... Args>
    T *
    make(Args &&...args)
    {
        Slot *slot;
        if (freeHead_) {
            slot = freeHead_;
            freeHead_ = slot->nextFree;
        } else {
            if (usedInLast_ == lastBlockSlots_)
                grow();
            slot = &blocks_.back()[usedInLast_++];
        }
        ++live_;
        return ::new (static_cast<void *>(slot->storage))
            T(std::forward<Args>(args)...);
    }

    /** Destroy @p obj and return its slot to the freelist. */
    void
    recycle(T *obj)
    {
        obj->~T();
        auto *slot = reinterpret_cast<Slot *>(
            reinterpret_cast<unsigned char *>(obj) -
            offsetof(Slot, storage));
        slot->nextFree = freeHead_;
        freeHead_ = slot;
        --live_;
    }

    /** Objects currently constructed and not yet recycled. */
    std::size_t liveCount() const { return live_; }

    /** Total slots carved out across all blocks. */
    std::size_t
    capacity() const
    {
        std::size_t total = 0;
        for (std::size_t b = 0; b < blocks_.size(); ++b)
            total += slotsInBlock(b);
        return total;
    }

    std::size_t blockCount() const { return blocks_.size(); }

  private:
    union Slot
    {
        Slot *nextFree;
        alignas(T) unsigned char storage[sizeof(T)];
    };

    std::size_t
    slotsInBlock(std::size_t index) const
    {
        // FirstBlock, 2*FirstBlock, 4*FirstBlock, ... capped so one
        // block never exceeds ~64k slots.
        std::size_t slots = FirstBlock;
        for (std::size_t i = 0; i < index && slots < 65536; ++i)
            slots *= 2;
        return slots;
    }

    void
    grow()
    {
        std::size_t slots = slotsInBlock(blocks_.size());
        blocks_.push_back(std::make_unique<Slot[]>(slots));
        lastBlockSlots_ = slots;
        usedInLast_ = 0;
    }

    std::vector<std::unique_ptr<Slot[]>> blocks_;
    Slot *freeHead_ = nullptr;
    std::size_t usedInLast_ = 0;
    std::size_t lastBlockSlots_ = 0;
    std::size_t live_ = 0;
};

} // namespace uvmasync

#endif // UVMASYNC_SIM_EVENT_ARENA_HH
