/**
 * @file
 * Time-shared hardware resources.
 *
 * BandwidthResource models a serially shared link or memory port: each
 * request occupies the resource for bytes/bandwidth time, queued FCFS.
 * ChannelResource models n identical parallel channels (e.g. DMA
 * engines or DRAM channels) with earliest-free dispatch.
 */

#ifndef UVMASYNC_SIM_RESOURCE_HH
#define UVMASYNC_SIM_RESOURCE_HH

#include <string>
#include <vector>

#include "common/types.hh"
#include "common/units.hh"

namespace uvmasync
{

/** The time window a request occupies on a resource. */
struct Occupancy
{
    Tick start;
    Tick end;

    Tick duration() const { return end - start; }
};

/**
 * A single FCFS bandwidth pipe (PCIe direction, HBM port, ...).
 *
 * This is an analytic busy-until resource: acquire() computes when the
 * request can start (max of "now" and the previous request's end) and
 * advances the busy pointer. It composes with the EventQueue by having
 * callers schedule completion events at the returned end tick.
 */
class BandwidthResource
{
  public:
    /**
     * @param name      stat/reporting name
     * @param bandwidth sustained transfer rate
     * @param perRequestLatency fixed setup latency added to each
     *        request (DMA descriptor processing, protocol overhead)
     */
    BandwidthResource(std::string name, Bandwidth bandwidth,
                      Tick perRequestLatency = 0);

    const std::string &name() const { return name_; }
    Bandwidth bandwidth() const { return bandwidth_; }
    Tick perRequestLatency() const { return perRequestLatency_; }

    /** Change the rate (used by sweeps); does not affect past grants. */
    void setBandwidth(Bandwidth bw) { bandwidth_ = bw; }

    /**
     * Reserve the resource for a @p bytes transfer requested at
     * @p now. Returns the occupied window.
     */
    Occupancy acquire(Tick now, Bytes bytes);

    /** Earliest tick a new request could start. */
    Tick nextFree(Tick now) const;

    /** Total bytes granted so far. */
    Bytes bytesServed() const { return bytesServed_; }

    /** Total busy time accumulated so far. */
    Tick busyTime() const { return busyTime_; }

    /** Number of acquire() calls. */
    std::uint64_t requests() const { return requests_; }

    /** Forget all state (time goes back to zero). */
    void reset();

  private:
    std::string name_;
    Bandwidth bandwidth_;
    Tick perRequestLatency_;
    Tick busyUntil_ = 0;
    Bytes bytesServed_ = 0;
    Tick busyTime_ = 0;
    std::uint64_t requests_ = 0;
};

/**
 * N identical parallel channels with earliest-free dispatch.
 */
class ChannelResource
{
  public:
    ChannelResource(std::string name, std::size_t channels,
                    Bandwidth perChannelBandwidth,
                    Tick perRequestLatency = 0);

    const std::string &name() const { return name_; }
    std::size_t channelCount() const { return channels_.size(); }

    /**
     * Dispatch a @p bytes transfer at @p now to the earliest-free
     * channel; returns the occupied window.
     */
    Occupancy acquire(Tick now, Bytes bytes);

    /** Aggregate bytes served across channels. */
    Bytes bytesServed() const;

    /** Aggregate busy time across channels. */
    Tick busyTime() const;

    void reset();

  private:
    std::string name_;
    std::vector<BandwidthResource> channels_;
};

} // namespace uvmasync

#endif // UVMASYNC_SIM_RESOURCE_HH
