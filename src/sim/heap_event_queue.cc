#include "sim/heap_event_queue.hh"

#include <utility>

#include "common/logging.hh"

namespace uvmasync
{

void
HeapEventQueue::schedule(Tick when, Callback cb, EventPriority prio,
                         const char *what)
{
    if (when < curTick_) {
        fatal("EventQueue: '%s' scheduled %llu ticks in the past "
              "(when=%llu < now=%llu)",
              what,
              static_cast<unsigned long long>(curTick_ - when),
              static_cast<unsigned long long>(when),
              static_cast<unsigned long long>(curTick_));
    }
    heap_.push(Entry{when, static_cast<int>(prio), nextSeq_++,
                     std::move(cb)});
}

void
HeapEventQueue::scheduleIn(Tick delay, Callback cb, EventPriority prio,
                           const char *what)
{
    schedule(curTick_ + delay, std::move(cb), prio, what);
}

Tick
HeapEventQueue::run()
{
    return runUntil(maxTick);
}

Tick
HeapEventQueue::runUntil(Tick limit)
{
    while (!heap_.empty() && heap_.top().when <= limit) {
        // Copy out before pop: the callback may schedule new events
        // and invalidate the reference returned by top(). (This copy
        // is one of the costs the calendar queue removes.)
        Entry entry = heap_.top();
        heap_.pop();
        curTick_ = entry.when;
        ++executed_;
        if (tracer_) {
            tracer_->instant(TraceCategory::Sim,
                             TraceName::EventDispatch, traceLane_,
                             entry.when, entry.seq);
        }
        if (watchdog_)
            watchdog_->onEvent(entry.when);
        entry.cb();
    }
    if (limit != maxTick && curTick_ < limit)
        curTick_ = limit;
    return curTick_;
}

void
HeapEventQueue::reset()
{
    heap_ = {};
    curTick_ = 0;
    nextSeq_ = 0;
    executed_ = 0;
}

} // namespace uvmasync
