/**
 * @file
 * Execution timelines: the phases of a job (allocation, transfers,
 * kernels, frees) on their hardware lanes, with an ASCII Gantt
 * renderer. The paper's Figure 14 is exactly such a chart; the
 * Device records one per run and the batch scheduler emits one per
 * scheduling model.
 */

#ifndef UVMASYNC_RUNTIME_TIMELINE_HH
#define UVMASYNC_RUNTIME_TIMELINE_HH

#include <string>
#include <vector>

#include "common/types.hh"
#include "trace/trace.hh"

namespace uvmasync
{

/** What a phase does (selects the Gantt glyph). */
enum class PhaseKind
{
    Alloc,       //!< cudaMalloc/cudaMallocManaged
    TransferIn,  //!< H2D copy / migration / prefetch
    Kernel,      //!< GPU kernel execution
    TransferOut, //!< D2H copy / writeback
    Free,        //!< cudaFree
};

/** Glyph used for a phase kind in the Gantt chart. */
char phaseGlyph(PhaseKind kind);

/** One phase occupying a lane for a time window. */
struct Phase
{
    PhaseKind kind;
    std::string label;
    Tick start = 0;
    Tick end = 0;
    std::size_t lane = 0;

    Tick duration() const { return end - start; }
};

/**
 * An ordered collection of phases across named lanes.
 */
class Timeline
{
  public:
    Timeline() = default;

    /** Define lane @p index's display name (lanes are dense). */
    void setLaneName(std::size_t index, std::string name);

    /**
     * Record a phase. Zero-length phases don't occupy the Gantt
     * chart, but they are real moments (an instantaneous free, a
     * no-op writeback) — they are kept separately and surface as
     * instant events in the trace exporter.
     */
    void add(PhaseKind kind, std::string label, Tick start, Tick end,
             std::size_t lane);

    std::size_t phaseCount() const { return phases_.size(); }
    const std::vector<Phase> &phases() const { return phases_; }

    /** Zero-length phases, in recording order. */
    const std::vector<Phase> &instants() const { return instants_; }

    std::size_t laneCount() const { return laneNames_.size(); }

    /** Display name of lane @p index. */
    const std::string &laneName(std::size_t index) const
    {
        return laneNames_[index];
    }

    /** Last phase end (0 when empty). */
    Tick makespan() const;

    /** Sum of phase durations on one lane. */
    Tick laneBusy(std::size_t lane) const;

    /**
     * Render an ASCII Gantt chart: one row per lane, @p width
     * columns spanning [0, makespan]. Overlapping phases on a lane
     * overwrite left to right.
     */
    std::string gantt(std::size_t width = 72) const;

  private:
    std::vector<Phase> phases_;
    std::vector<Phase> instants_;
    std::vector<std::string> laneNames_;
};

/**
 * Re-emit @p timeline into @p tracer as Phase-category events: one
 * span per phase and one instant per zero-length entry, on tracer
 * lanes matching the timeline's lane names. Lanes are created in
 * timeline order if absent.
 */
void exportTimelineToTrace(const Timeline &timeline, Tracer &tracer);

} // namespace uvmasync

#endif // UVMASYNC_RUNTIME_TIMELINE_HH
