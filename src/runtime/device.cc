#include "runtime/device.hh"

#include <algorithm>

#include "common/logging.hh"
#include "gpu/kernel_executor.hh"
#include "inject/injector.hh"

namespace uvmasync
{

Device::Device(SystemConfig cfg)
    : cfg_(cfg), host_("host", cfg.host), pageTable_("pt"),
      devMem_("hbm", cfg.deviceMemoryBytes, cfg.gpu.hbmBandwidth),
      link_("pcie", cfg.pcie),
      engine_("uvm", cfg.uvm, pageTable_, devMem_, link_),
      allocator_("alloc", cfg.alloc)
{
    // The link consults host memory for slow-page windows on the
    // host side of every transfer (a no-op until an injector with an
    // active host seam is attached).
    link_.setHostPath(&host_);
}

RunResult
Device::run(const Job &job, TransferMode mode, const RunOptions &opts)
{
    UVMASYNC_ASSERT(!job.kernels.empty(), "%s: job without kernels",
                    job.name.c_str());

    bool uvm = usesUvm(mode);
    bool prefetch = usesPrefetch(mode);

    RunResult res;
    res.timeline.setLaneName(0, "cpu");
    res.timeline.setLaneName(1, "dma");
    res.timeline.setLaneName(2, "gpu");

    // ---- Trace lanes (fixed registration order) -------------------
    // The phase lanes come first so they share ids with the Timeline;
    // component lanes follow. Components are re-pointed every run
    // (including to null) so a stale sink can never dangle.
    Tracer *tr = opts.tracer;
    // An inert injector detaches completely, so a zero-rate plan (or
    // none) leaves lanes, draws and results byte-identical to an
    // uninjected run.
    Injector *inj = (opts.injector && opts.injector->enabled())
                        ? opts.injector
                        : nullptr;
    std::uint32_t laneKernel = 0, laneH2d = 0, laneD2h = 0;
    std::uint32_t laneFault = 0, lanePrefetch = 0, laneMigrate = 0;
    std::uint32_t laneInject = 0, laneInjH2d = 0, laneInjD2h = 0;
    if (tr) {
        tr->lane("cpu");
        tr->lane("dma");
        tr->lane("gpu");
        laneKernel = tr->lane("gpu.kernel");
        laneH2d = tr->lane("pcie.h2d");
        laneD2h = tr->lane("pcie.d2h");
        laneFault = tr->lane("uvm.fault");
        lanePrefetch = tr->lane("uvm.prefetch");
        laneMigrate = tr->lane("uvm.migrate");
        if (inj) {
            // Registered after the frozen base lanes so untraced and
            // uninjected exports keep their lane ids and pids.
            laneInject = tr->lane("inject");
            laneInjH2d = tr->lane("inject.h2d");
            laneInjD2h = tr->lane("inject.d2h");
        }
    }
    link_.setTrace(tr, laneH2d, laneD2h);
    engine_.setTrace(tr, laneFault, lanePrefetch, laneMigrate);
    if (inj)
        inj->setTrace(tr, laneInject, laneInjH2d, laneInjD2h);
    link_.setInjector(inj);
    engine_.setInjector(inj);
    host_.setInjector(inj);

    // Arm the runaway-run watchdog for this job. The analytic model
    // has no central dispatch loop, so the components that generate
    // "events" (link transfers, evictions) report to it directly;
    // checkSimTime() below covers phases that move time without
    // touching either.
    watchdog_.arm(cfg_.watchdog);
    watchdog_.setTrace(tr);
    link_.setWatchdog(&watchdog_);
    engine_.setWatchdog(&watchdog_);

    // ---- Reset the testbed for this job -------------------------
    link_.reset();
    pageTable_.clearRanges();
    pageTable_.resetStats();
    allocator_.beginJob();
    allocator_.resetContext();

    if (!uvm && job.footprint() > devMem_.capacity()) {
        warn("%s: footprint %llu exceeds device memory %llu in "
             "explicit mode; a real cudaMalloc would fail",
             job.name.c_str(),
             static_cast<unsigned long long>(job.footprint()),
             static_cast<unsigned long long>(devMem_.capacity()));
    }

    // ---- Allocation (cudaMalloc/cudaMallocManaged) ---------------
    Tick t = 0;
    for (const JobBuffer &buf : job.buffers) {
        Tick cost = uvm ? allocator_.managedAlloc(buf.bytes)
                        : allocator_.deviceAlloc(buf.bytes);
        t += cost;
    }
    res.timeline.add(PhaseKind::Alloc, "alloc", 0, t, 0);
    watchdog_.checkSimTime(t);

    // Register managed ranges and reset the engine.
    std::vector<std::size_t> rangeIds(job.buffers.size(), 0);
    if (uvm) {
        for (std::size_t i = 0; i < job.buffers.size(); ++i) {
            rangeIds[i] = pageTable_.addRange(job.buffers[i].name,
                                              job.buffers[i].bytes,
                                              cfg_.uvm.chunkBytes);
        }
        engine_.beginJob();
    }

    // ---- Data in --------------------------------------------------
    TransferKind copyKind = opts.pinnedHost
                                ? TransferKind::PinnedCopy
                                : TransferKind::PageableCopy;
    Tick explicitTransfer = 0;
    if (!uvm) {
        for (const JobBuffer &buf : job.buffers) {
            if (!buf.hostInit)
                continue;
            Occupancy occ = link_.transfer(t, buf.bytes,
                                           Direction::HostToDevice,
                                           copyKind);
            explicitTransfer += occ.duration();
            res.counters.bytesH2d += buf.bytes;
            res.timeline.add(PhaseKind::TransferIn,
                             "h2d " + buf.name, occ.start, occ.end,
                             1);
            t = occ.end;
        }
    } else {
        // Buffers the host never initialised materialise directly in
        // device memory on first GPU touch — no transfer.
        for (std::size_t i = 0; i < job.buffers.size(); ++i) {
            if (!job.buffers[i].hostInit)
                engine_.populateOnDevice(rangeIds[i]);
        }
        if (prefetch) {
            // cudaMemPrefetchAsync of every managed buffer,
            // stream-ordered ahead of the first launch.
            for (std::size_t i = 0; i < job.buffers.size(); ++i) {
                Occupancy occ = engine_.prefetchRange(rangeIds[i], t);
                res.timeline.add(PhaseKind::TransferIn,
                                 "prefetch " + job.buffers[i].name,
                                 occ.start, occ.end, 1);
                t = std::max(t, occ.end);
            }
        }
    }

    // ---- Kernel sequence ------------------------------------------
    KernelExecConfig execCfg;
    execCfg.gpu = cfg_.gpu;
    execCfg.mode = mode;
    execCfg.sharedCarveout = opts.sharedCarveout;
    execCfg.uvm = uvm ? &engine_ : nullptr;
    execCfg.bufferBytes = job.bufferSizes();
    execCfg.bufferRangeIds = rangeIds;
    execCfg.seed = opts.seed;
    execCfg.tracer = tr;
    execCfg.traceLane = laneKernel;
    execCfg.inject = inj;
    KernelExecutor executor(execCfg);

    Tick kernelTime = 0;
    double missLoadAcc = 0.0;
    double missStoreAcc = 0.0;
    double occAcc = 0.0;
    double weightAcc = 0.0;

    for (std::uint32_t rep = 0; rep < job.sequenceRepeats; ++rep) {
        for (std::size_t ki = 0; ki < job.kernels.size(); ++ki) {
            const KernelDescriptor &kd = job.kernels[ki];
            bool firstLaunch = rep == 0 && ki == 0;
            if (prefetch && job.prefetchEachLaunch && !firstLaunch) {
                // The harness re-issues prefetch before every launch;
                // on resident data this is pure churn (the nw effect).
                for (const KernelBufferUse &use : kd.buffers) {
                    Occupancy occ = engine_.prefetchRange(
                        rangeIds[use.bufferId], t, /*churnOk=*/true);
                    t = std::max(t, occ.end);
                }
            }
            Tick demandBusyBefore = engine_.jobTransferBusy();
            KernelResult kr = executor.run(kd, t);
            kernelTime += kr.kernelTime();
            res.timeline.add(PhaseKind::Kernel, kd.name,
                             kr.startTick, kr.endTick, 2);
            if (uvm && kr.faults > 0) {
                // Demand migrations overlapped this launch.
                Tick busy =
                    engine_.jobTransferBusy() - demandBusyBefore;
                res.timeline.add(
                    PhaseKind::TransferIn, "demand " + kd.name,
                    kr.startTick,
                    std::min(kr.endTick, kr.startTick + busy), 1);
            }
            t = kr.endTick;
            watchdog_.checkSimTime(t);

            double w = static_cast<double>(kr.kernelTime());
            missLoadAcc += kr.l1LoadMissRate * w;
            missStoreAcc += kr.l1StoreMissRate * w;
            occAcc += kr.occupancy * w;
            weightAcc += w;
            res.counters.instrs += kr.instrs;
            res.counters.faults += kr.faults;
            res.counters.stallTime += kr.stallTime;
            ++res.counters.launches;

            // Per-kernel profile, keyed by kernel name.
            KernelProfile *prof = nullptr;
            for (KernelProfile &p : res.kernelProfiles) {
                if (p.name == kd.name) {
                    prof = &p;
                    break;
                }
            }
            if (!prof) {
                res.kernelProfiles.push_back(KernelProfile{});
                prof = &res.kernelProfiles.back();
                prof->name = kd.name;
            }
            ++prof->launches;
            prof->totalTime += kr.kernelTime();
            prof->stallTime += kr.stallTime;
            prof->instrs += kr.instrs;
            prof->faults += kr.faults;
            prof->l1LoadMissRate += kr.l1LoadMissRate * w;
            prof->l1StoreMissRate += kr.l1StoreMissRate * w;
            prof->occupancy += kr.occupancy * w;
        }
    }

    // ---- Data out ---------------------------------------------------
    if (!uvm) {
        for (const JobBuffer &buf : job.buffers) {
            if (!buf.hostConsumed)
                continue;
            Occupancy occ = link_.transfer(t, buf.bytes,
                                           Direction::DeviceToHost,
                                           copyKind);
            explicitTransfer += occ.duration();
            res.counters.bytesD2h += buf.bytes;
            res.timeline.add(PhaseKind::TransferOut,
                             "d2h " + buf.name, occ.start, occ.end,
                             1);
            t = occ.end;
        }
    } else {
        // Kernels wrote through block-level execution; mark written
        // buffers dirty before the host consumes them.
        std::vector<bool> written(job.buffers.size(), false);
        for (const KernelDescriptor &kd : job.kernels) {
            for (const KernelBufferUse &use : kd.buffers) {
                if (use.written)
                    written[use.bufferId] = true;
            }
        }
        for (std::size_t i = 0; i < job.buffers.size(); ++i) {
            if (!job.buffers[i].hostConsumed)
                continue;
            if (written[i])
                engine_.markRangeDirty(rangeIds[i]);
            Tick done = engine_.writebackDirty(rangeIds[i], t);
            if (done > t) {
                res.timeline.add(PhaseKind::TransferOut,
                                 "writeback " + job.buffers[i].name,
                                 t, done, 1);
            }
            t = std::max(t, done);
        }
    }

    // ---- Free (counted in allocation time, Section 3.3) -----------
    Tick freeBegin = t;
    for (const JobBuffer &buf : job.buffers) {
        Tick cost = uvm ? allocator_.managedFree(buf.bytes)
                        : allocator_.deviceFree(buf.bytes);
        t += cost;
    }
    res.timeline.add(PhaseKind::Free, "free", freeBegin, t, 0);

    res.breakdown.allocPs =
        static_cast<double>(allocator_.jobAllocTime());
    res.breakdown.kernelPs = static_cast<double>(kernelTime);
    res.breakdown.transferPs = static_cast<double>(
        uvm ? engine_.jobTransferBusy() : explicitTransfer);
    if (uvm) {
        res.counters.bytesH2d =
            link_.bytesMoved(Direction::HostToDevice);
        res.counters.bytesD2h =
            link_.bytesMoved(Direction::DeviceToHost);
    }
    if (weightAcc > 0.0) {
        res.counters.l1LoadMissRate = missLoadAcc / weightAcc;
        res.counters.l1StoreMissRate = missStoreAcc / weightAcc;
        res.counters.occupancy = occAcc / weightAcc;
    }
    // Normalise the time-weighted per-kernel rates.
    for (KernelProfile &prof : res.kernelProfiles) {
        double w = static_cast<double>(prof.totalTime);
        if (w > 0.0) {
            prof.l1LoadMissRate /= w;
            prof.l1StoreMissRate /= w;
            prof.occupancy /= w;
        }
    }
    res.wallEnd = t;
    if (tr) {
        if (uvm)
            engine_.flushTrace();
        exportTimelineToTrace(res.timeline, *tr);
    }
    return res;
}

StatMap
Device::stats() const
{
    StatMap out;
    host_.exportStats(out);
    pageTable_.exportStats(out);
    devMem_.exportStats(out);
    link_.exportStats(out);
    engine_.exportStats(out);
    allocator_.exportStats(out);
    return out;
}

} // namespace uvmasync
