#include "runtime/job.hh"

namespace uvmasync
{

Bytes
Job::footprint() const
{
    Bytes total = 0;
    for (const JobBuffer &b : buffers)
        total += b.bytes;
    return total;
}

Bytes
Job::hostInitBytes() const
{
    Bytes total = 0;
    for (const JobBuffer &b : buffers) {
        if (b.hostInit)
            total += b.bytes;
    }
    return total;
}

Bytes
Job::hostConsumedBytes() const
{
    Bytes total = 0;
    for (const JobBuffer &b : buffers) {
        if (b.hostConsumed)
            total += b.bytes;
    }
    return total;
}

std::uint64_t
Job::launchCount() const
{
    return static_cast<std::uint64_t>(kernels.size()) * sequenceRepeats;
}

std::vector<Bytes>
Job::bufferSizes() const
{
    std::vector<Bytes> sizes;
    sizes.reserve(buffers.size());
    for (const JobBuffer &b : buffers)
        sizes.push_back(b.bytes);
    return sizes;
}

} // namespace uvmasync
