#include "runtime/allocator.hh"

#include <cmath>
#include <utility>

namespace uvmasync
{

Allocator::Allocator(std::string name, AllocatorConfig cfg)
    : SimObject(std::move(name)), cfg_(cfg)
{
}

void
Allocator::beginJob()
{
    jobAllocTime_ = 0;
}

void
Allocator::resetContext()
{
    contextInitialised_ = false;
    jobAllocTime_ = 0;
}

Tick
Allocator::charge(Tick base, Tick perGiB, Bytes bytes)
{
    Tick cost = base;
    if (!contextInitialised_) {
        cost += cfg_.contextInit;
        contextInitialised_ = true;
    }
    double gib_count = static_cast<double>(bytes) /
                       static_cast<double>(gib(1));
    cost += static_cast<Tick>(
        std::ceil(static_cast<double>(perGiB) * gib_count));
    jobAllocTime_ += cost;
    ++calls_;
    return cost;
}

Tick
Allocator::deviceAlloc(Bytes bytes)
{
    return charge(cfg_.deviceAllocBase, cfg_.deviceAllocPerGiB, bytes);
}

Tick
Allocator::managedAlloc(Bytes bytes)
{
    return charge(cfg_.managedAllocBase, cfg_.managedAllocPerGiB, bytes);
}

Tick
Allocator::deviceFree(Bytes bytes)
{
    return charge(cfg_.deviceFreeBase, cfg_.deviceFreePerGiB, bytes);
}

Tick
Allocator::managedFree(Bytes bytes)
{
    return charge(cfg_.managedFreeBase, cfg_.managedFreePerGiB, bytes);
}

void
Allocator::exportStats(StatMap &out) const
{
    putStat(out, "job_alloc_time_ps",
            static_cast<double>(jobAllocTime_));
    putStat(out, "calls", static_cast<double>(calls_));
}

void
Allocator::resetStats()
{
    calls_ = 0;
    jobAllocTime_ = 0;
}

} // namespace uvmasync
