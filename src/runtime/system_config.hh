/**
 * @file
 * Whole-system configuration: the simulated equivalent of the paper's
 * Table 1 testbed (AMD EPYC 7742 host, 16x 64 GB DDR4, Nvidia A100
 * with 40 GB HBM2, PCIe 4.0 interconnect).
 */

#ifndef UVMASYNC_RUNTIME_SYSTEM_CONFIG_HH
#define UVMASYNC_RUNTIME_SYSTEM_CONFIG_HH

#include "common/types.hh"
#include "gpu/gpu_config.hh"
#include "mem/host_memory.hh"
#include "sim/event_queue.hh"
#include "xfer/migration_engine.hh"
#include "xfer/pcie_link.hh"

namespace uvmasync
{

/** Cost model of host-side allocation calls (Section 3.3's
 *  "data allocation time": cudaMalloc/cudaMallocManaged + cudaFree).
 */
struct AllocatorConfig
{
    /** One-time CUDA context initialisation on the first call. */
    Tick contextInit = milliseconds(190);

    /** @{ cudaMalloc / cudaFree (device memory). */
    Tick deviceAllocBase = microseconds(90);
    Tick deviceAllocPerGiB = milliseconds(5);
    Tick deviceFreeBase = microseconds(60);
    Tick deviceFreePerGiB = milliseconds(4);
    /** @} */

    /** @{ cudaMallocManaged / cudaFree (managed memory). Allocation
     * is lazy and cheap; freeing tears down migrated page state. */
    Tick managedAllocBase = microseconds(60);
    Tick managedAllocPerGiB = milliseconds(3);
    Tick managedFreeBase = microseconds(80);
    Tick managedFreePerGiB = milliseconds(6);
    /** @} */
};

/** Per-run measurement-noise parameters (Figures 4-6). */
struct NoiseConfig
{
    /** Multiplicative jitter (coefficient of variation) per part. */
    double allocCv = 0.015;
    double transferCv = 0.030;
    double kernelCv = 0.015;

    /** Additive OS/system overhead folded into the measurement. */
    Tick systemOverheadMean = milliseconds(9);
    double systemOverheadCv = 0.6;
};

/** Full testbed description. */
struct SystemConfig
{
    HostMemoryConfig host;
    GpuConfig gpu;
    PcieConfig pcie;
    UvmConfig uvm;
    AllocatorConfig alloc;
    NoiseConfig noise;

    /**
     * Runaway-run ceilings (simulated time, event count, livelock);
     * a trip fails only the offending point with a PointTimeout.
     */
    WatchdogConfig watchdog;

    /** Usable HBM capacity (Table 1: 40 GB). */
    Bytes deviceMemoryBytes = gib(40);

    /** The paper's testbed (default-constructed values). */
    static SystemConfig a100Epyc() { return SystemConfig{}; }
};

} // namespace uvmasync

#endif // UVMASYNC_RUNTIME_SYSTEM_CONFIG_HH
