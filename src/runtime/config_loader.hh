/**
 * @file
 * Applies KvConfig overrides to a SystemConfig, so a testbed can be
 * described in a small ini file instead of recompiling (used by the
 * `uvmasync --config` CLI flag).
 *
 * Recognised keys (all optional; unknown keys are fatal to catch
 * typos):
 *
 *   [gpu]     sm_count, clock_mhz, hbm_gbps, shared_carveout_kib
 *   [pcie]    raw_gbps, pageable_eff, demand_eff, prefetch_eff,
 *             writeback_eff
 *   [uvm]     chunk_kib, fault_batch, fault_base_us,
 *             demand_prefetcher (none|stream|tree), churn
 *   [host]    dimm_count, dimm_gib
 *   [alloc]   context_init_ms, device_alloc_ms_per_gib,
 *             managed_free_ms_per_gib
 *   [hbm]     capacity_gib
 *   [noise]   system_overhead_ms, transfer_cv
 */

#ifndef UVMASYNC_RUNTIME_CONFIG_LOADER_HH
#define UVMASYNC_RUNTIME_CONFIG_LOADER_HH

#include <set>
#include <string>

#include "common/kv_config.hh"
#include "runtime/system_config.hh"

namespace uvmasync
{

/** Every key applyConfig() understands (the linter's UAL013 set). */
const std::set<std::string> &knownSystemConfigKeys();

/** Overlay @p kv on @p base; fatal() on unknown keys. */
SystemConfig applyConfig(const SystemConfig &base, const KvConfig &kv);

/** Convenience: defaults + file overlay. */
SystemConfig loadSystemConfig(const std::string &path);

} // namespace uvmasync

#endif // UVMASYNC_RUNTIME_CONFIG_LOADER_HH
