/**
 * @file
 * A job: the unit the paper times end-to-end — allocate buffers,
 * move data, run a sequence of kernel launches, move results back,
 * free. Workload definitions produce Jobs; the Device executes them
 * under one of the five transfer modes.
 */

#ifndef UVMASYNC_RUNTIME_JOB_HH
#define UVMASYNC_RUNTIME_JOB_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"
#include "gpu/kernel_descriptor.hh"

namespace uvmasync
{

/** One allocation of the job. */
struct JobBuffer
{
    std::string name;
    Bytes bytes = 0;

    /** Host produces the data: explicit modes must copy it in. */
    bool hostInit = true;

    /** Host consumes the result: data must return after the kernels. */
    bool hostConsumed = false;
};

/**
 * A complete GPU job.
 *
 * The kernel list is executed in order; the whole sequence repeats
 * `sequenceRepeats` times (iterative applications like nw, srad and
 * lud launch the same kernels over and over on resident data).
 */
struct Job
{
    std::string name;
    std::vector<JobBuffer> buffers;
    std::vector<KernelDescriptor> kernels;
    std::uint32_t sequenceRepeats = 1;

    /**
     * Whether the uvm_prefetch harness re-issues
     * cudaMemPrefetchAsync before every launch (the benchmark-suite
     * behaviour that makes prefetch counterproductive for nw).
     */
    bool prefetchEachLaunch = false;

    /** Total allocated bytes. */
    Bytes footprint() const;

    /** Bytes that explicit modes copy host->device up front. */
    Bytes hostInitBytes() const;

    /** Bytes that explicit modes copy device->host at the end. */
    Bytes hostConsumedBytes() const;

    /** Total kernel launches (kernels x repeats). */
    std::uint64_t launchCount() const;

    /** Buffer sizes indexed by buffer id (executor input). */
    std::vector<Bytes> bufferSizes() const;
};

} // namespace uvmasync

#endif // UVMASYNC_RUNTIME_JOB_HH
