#include "runtime/noise_model.hh"

namespace uvmasync
{

NoiseModel::NoiseModel(NoiseConfig cfg, HostMemory &host)
    : cfg_(cfg), host_(host)
{
}

TimeBreakdown
NoiseModel::perturb(const TimeBreakdown &clean, Bytes footprint,
                    Rng &rng) const
{
    TimeBreakdown out;

    out.allocPs = clean.allocPs *
                  rng.lognormalMeanCv(1.0, cfg_.allocCv);
    out.kernelPs = clean.kernelPs *
                   rng.lognormalMeanCv(1.0, cfg_.kernelCv);

    double transfer = clean.transferPs *
                      rng.lognormalMeanCv(1.0, cfg_.transferCv);
    // DRAM-module placement: the factor is <= 1 (a bandwidth
    // multiplier), so divide the time by it.
    double placement = host_.placementFactor(footprint, rng);
    out.transferPs = transfer / placement;

    // Absolute system overhead lands mostly in the allocation
    // component (driver calls, page-table setup), which is where the
    // paper's Tiny-input variance shows up.
    double overhead =
        rng.lognormalMeanCv(static_cast<double>(cfg_.systemOverheadMean),
                            cfg_.systemOverheadCv);
    out.allocPs += overhead;
    return out;
}

} // namespace uvmasync
