#include "runtime/config_loader.hh"

#include <cmath>
#include <set>

#include "common/logging.hh"

namespace uvmasync
{

namespace
{

Tick
msToTick(double ms)
{
    return static_cast<Tick>(std::llround(ms * 1e9));
}

} // namespace

const std::set<std::string> &
knownSystemConfigKeys()
{
    static const std::set<std::string> known = {
        "gpu.sm_count", "gpu.clock_mhz", "gpu.hbm_gbps",
        "gpu.shared_carveout_kib", "pcie.raw_gbps",
        "pcie.pageable_eff", "pcie.demand_eff", "pcie.prefetch_eff",
        "pcie.writeback_eff", "uvm.chunk_kib", "uvm.fault_batch",
        "uvm.fault_base_us", "uvm.demand_prefetcher", "uvm.churn",
        "host.dimm_count", "host.dimm_gib", "alloc.context_init_ms",
        "alloc.device_alloc_ms_per_gib",
        "alloc.managed_free_ms_per_gib", "hbm.capacity_gib",
        "noise.system_overhead_ms", "noise.transfer_cv",
        "watchdog.max_sim_ms", "watchdog.max_events",
        "watchdog.max_stall_events",
    };
    return known;
}

SystemConfig
applyConfig(const SystemConfig &base, const KvConfig &kv)
{
    const std::set<std::string> &known = knownSystemConfigKeys();
    for (const std::string &key : kv.keys()) {
        if (known.count(key))
            continue;
        std::string suggestion = closestKey(
            key, std::vector<std::string>(known.begin(), known.end()));
        if (!suggestion.empty()) {
            fatal("unknown config key '%s' (did you mean '%s'?)",
                  key.c_str(), suggestion.c_str());
        }
        fatal("unknown config key '%s'", key.c_str());
    }

    SystemConfig cfg = base;

    cfg.gpu.smCount = static_cast<std::uint32_t>(
        kv.getInt("gpu.sm_count", cfg.gpu.smCount));
    if (kv.has("gpu.clock_mhz"))
        cfg.gpu.clock =
            Frequency::fromMHz(kv.getDouble("gpu.clock_mhz", 0));
    if (kv.has("gpu.hbm_gbps"))
        cfg.gpu.hbmBandwidth =
            Bandwidth::fromGBps(kv.getDouble("gpu.hbm_gbps", 0));
    if (kv.has("gpu.shared_carveout_kib"))
        cfg.gpu.defaultSharedCarveout = kib(static_cast<Bytes>(
            kv.getInt("gpu.shared_carveout_kib", 0)));

    if (kv.has("pcie.raw_gbps"))
        cfg.pcie.rawBandwidth =
            Bandwidth::fromGBps(kv.getDouble("pcie.raw_gbps", 0));
    auto setEff = [&](const char *key, TransferKind kind) {
        if (kv.has(key)) {
            cfg.pcie.efficiency[static_cast<std::size_t>(kind)] =
                kv.getDouble(key, 0);
        }
    };
    setEff("pcie.pageable_eff", TransferKind::PageableCopy);
    setEff("pcie.demand_eff", TransferKind::DemandMigration);
    setEff("pcie.prefetch_eff", TransferKind::BulkPrefetch);
    setEff("pcie.writeback_eff", TransferKind::Writeback);

    if (kv.has("uvm.chunk_kib"))
        cfg.uvm.chunkBytes =
            kib(static_cast<Bytes>(kv.getInt("uvm.chunk_kib", 0)));
    cfg.uvm.fault.maxBatchSize = static_cast<std::uint32_t>(
        kv.getInt("uvm.fault_batch", cfg.uvm.fault.maxBatchSize));
    if (kv.has("uvm.fault_base_us"))
        cfg.uvm.fault.batchBaseLatency = microseconds(
            static_cast<std::uint64_t>(
                kv.getInt("uvm.fault_base_us", 0)));
    if (kv.has("uvm.demand_prefetcher")) {
        std::string kind = kv.getString("uvm.demand_prefetcher");
        if (kind == "none")
            cfg.uvm.demandPrefetcher = PrefetcherKind::None;
        else if (kind == "stream")
            cfg.uvm.demandPrefetcher = PrefetcherKind::Stream;
        else if (kind == "tree")
            cfg.uvm.demandPrefetcher = PrefetcherKind::Tree;
        else
            fatal("uvm.demand_prefetcher: unknown kind '%s'",
                  kind.c_str());
    }
    cfg.uvm.redundantPrefetchChurn =
        kv.getDouble("uvm.churn", cfg.uvm.redundantPrefetchChurn);

    cfg.host.dimmCount = static_cast<std::size_t>(
        kv.getInt("host.dimm_count",
                  static_cast<std::int64_t>(cfg.host.dimmCount)));
    if (kv.has("host.dimm_gib"))
        cfg.host.dimmCapacity = gib(
            static_cast<Bytes>(kv.getInt("host.dimm_gib", 0)));

    if (kv.has("alloc.context_init_ms"))
        cfg.alloc.contextInit =
            msToTick(kv.getDouble("alloc.context_init_ms", 0));
    if (kv.has("alloc.device_alloc_ms_per_gib"))
        cfg.alloc.deviceAllocPerGiB = msToTick(
            kv.getDouble("alloc.device_alloc_ms_per_gib", 0));
    if (kv.has("alloc.managed_free_ms_per_gib"))
        cfg.alloc.managedFreePerGiB = msToTick(
            kv.getDouble("alloc.managed_free_ms_per_gib", 0));

    if (kv.has("hbm.capacity_gib"))
        cfg.deviceMemoryBytes = gib(
            static_cast<Bytes>(kv.getInt("hbm.capacity_gib", 0)));

    if (kv.has("noise.system_overhead_ms"))
        cfg.noise.systemOverheadMean =
            msToTick(kv.getDouble("noise.system_overhead_ms", 0));
    cfg.noise.transferCv =
        kv.getDouble("noise.transfer_cv", cfg.noise.transferCv);

    if (kv.has("watchdog.max_sim_ms"))
        cfg.watchdog.maxSimTime =
            msToTick(kv.getDouble("watchdog.max_sim_ms", 0));
    cfg.watchdog.maxEvents = static_cast<std::uint64_t>(kv.getInt(
        "watchdog.max_events",
        static_cast<std::int64_t>(cfg.watchdog.maxEvents)));
    cfg.watchdog.maxStallEvents = static_cast<std::uint64_t>(
        kv.getInt("watchdog.max_stall_events",
                  static_cast<std::int64_t>(
                      cfg.watchdog.maxStallEvents)));

    return cfg;
}

SystemConfig
loadSystemConfig(const std::string &path)
{
    return applyConfig(SystemConfig::a100Epyc(),
                       KvConfig::fromFile(path));
}

} // namespace uvmasync
