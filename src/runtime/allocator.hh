/**
 * @file
 * Host allocation-call cost model.
 *
 * The paper's overall-time definition includes cudaMalloc()/
 * cudaMallocManaged() plus cudaFree() ("data allocation time"); after
 * UVM and async memcpy shrink the other components this becomes the
 * dominant term (Section 6.1: 18.99% -> 37.66%). The model charges a
 * per-call base, a per-GiB slope, and a one-time context
 * initialisation on the first call of a process.
 */

#ifndef UVMASYNC_RUNTIME_ALLOCATOR_HH
#define UVMASYNC_RUNTIME_ALLOCATOR_HH

#include <string>

#include "common/types.hh"
#include "runtime/system_config.hh"
#include "sim/sim_object.hh"

namespace uvmasync
{

/**
 * Accumulates allocation/free costs for one job.
 */
class Allocator : public SimObject
{
  public:
    Allocator(std::string name, AllocatorConfig cfg);

    const AllocatorConfig &config() const { return cfg_; }

    /** Start a new job (context stays initialised). */
    void beginJob();

    /** Forget context initialisation too (fresh process). */
    void resetContext();

    /** Cost of cudaMalloc(bytes). */
    Tick deviceAlloc(Bytes bytes);

    /** Cost of cudaMallocManaged(bytes). */
    Tick managedAlloc(Bytes bytes);

    /** Cost of cudaFree for a device allocation. */
    Tick deviceFree(Bytes bytes);

    /** Cost of cudaFree for a managed allocation. */
    Tick managedFree(Bytes bytes);

    /** Allocation+free time accumulated for the current job. */
    Tick jobAllocTime() const { return jobAllocTime_; }

    std::uint64_t calls() const { return calls_; }

    void exportStats(StatMap &out) const override;
    void resetStats() override;

  private:
    Tick charge(Tick base, Tick perGiB, Bytes bytes);

    AllocatorConfig cfg_;
    bool contextInitialised_ = false;
    Tick jobAllocTime_ = 0;
    std::uint64_t calls_ = 0;
};

} // namespace uvmasync

#endif // UVMASYNC_RUNTIME_ALLOCATOR_HH
