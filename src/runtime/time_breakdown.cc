#include "runtime/time_breakdown.hh"

#include "common/table.hh"

namespace uvmasync
{

TimeBreakdown &
TimeBreakdown::operator+=(const TimeBreakdown &o)
{
    allocPs += o.allocPs;
    transferPs += o.transferPs;
    kernelPs += o.kernelPs;
    return *this;
}

TimeBreakdown
TimeBreakdown::operator*(double k) const
{
    return TimeBreakdown{allocPs * k, transferPs * k, kernelPs * k};
}

std::string
TimeBreakdown::toString() const
{
    return "alloc=" + fmtTime(allocPs) + " transfer=" +
           fmtTime(transferPs) + " kernel=" + fmtTime(kernelPs) +
           " overall=" + fmtTime(overallPs());
}

} // namespace uvmasync
