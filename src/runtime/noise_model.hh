/**
 * @file
 * Per-run measurement noise (Figures 4-6).
 *
 * Three effects are modelled:
 *  1. multiplicative jitter on each time component (scheduling,
 *     clocks, DVFS) — small coefficients of variation;
 *  2. an additive absolute system overhead with high variance, which
 *     dominates relative noise for small inputs (why Tiny..Medium are
 *     unstable and Large/Super are stable, Figure 5);
 *  3. the DRAM-module straddle effect: once the footprint nears a
 *     single module's capacity, part of the data lands on a remote
 *     module and host-side transfer bandwidth becomes a per-run
 *     random variable (why Mega regresses, Figure 6).
 */

#ifndef UVMASYNC_RUNTIME_NOISE_MODEL_HH
#define UVMASYNC_RUNTIME_NOISE_MODEL_HH

#include "common/rng.hh"
#include "common/types.hh"
#include "mem/host_memory.hh"
#include "runtime/system_config.hh"
#include "runtime/time_breakdown.hh"

namespace uvmasync
{

/**
 * Applies run-to-run noise to a deterministic breakdown.
 */
class NoiseModel
{
  public:
    NoiseModel(NoiseConfig cfg, HostMemory &host);

    /**
     * Perturb @p clean for one run.
     *
     * @param footprint  dominant host-buffer footprint (straddle check)
     * @param rng        the run's seeded RNG
     */
    TimeBreakdown perturb(const TimeBreakdown &clean, Bytes footprint,
                          Rng &rng) const;

  private:
    NoiseConfig cfg_;
    HostMemory &host_;
};

} // namespace uvmasync

#endif // UVMASYNC_RUNTIME_NOISE_MODEL_HH
