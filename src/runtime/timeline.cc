#include "runtime/timeline.hh"

#include <algorithm>
#include <sstream>

#include "common/logging.hh"
#include "common/table.hh"

namespace uvmasync
{

char
phaseGlyph(PhaseKind kind)
{
    switch (kind) {
      case PhaseKind::Alloc: return 'a';
      case PhaseKind::TransferIn: return '>';
      case PhaseKind::Kernel: return '#';
      case PhaseKind::TransferOut: return '<';
      case PhaseKind::Free: return 'f';
    }
    panic("unknown phase kind %d", static_cast<int>(kind));
}

void
Timeline::setLaneName(std::size_t index, std::string name)
{
    if (laneNames_.size() <= index)
        laneNames_.resize(index + 1);
    laneNames_[index] = std::move(name);
}

void
Timeline::add(PhaseKind kind, std::string label, Tick start, Tick end,
              std::size_t lane)
{
    UVMASYNC_ASSERT(end >= start, "phase '%s' ends before it starts",
                    label.c_str());
    if (laneNames_.size() <= lane)
        laneNames_.resize(lane + 1, "lane");
    auto &dest = end == start ? instants_ : phases_;
    dest.push_back(Phase{kind, std::move(label), start, end, lane});
}

Tick
Timeline::makespan() const
{
    Tick latest = 0;
    for (const Phase &phase : phases_)
        latest = std::max(latest, phase.end);
    return latest;
}

Tick
Timeline::laneBusy(std::size_t lane) const
{
    // Merge overlapping intervals on the lane before summing.
    std::vector<std::pair<Tick, Tick>> spans;
    for (const Phase &phase : phases_) {
        if (phase.lane == lane)
            spans.emplace_back(phase.start, phase.end);
    }
    std::sort(spans.begin(), spans.end());
    Tick busy = 0;
    Tick curStart = 0, curEnd = 0;
    bool open = false;
    for (const auto &[s, e] : spans) {
        if (!open || s > curEnd) {
            if (open)
                busy += curEnd - curStart;
            curStart = s;
            curEnd = e;
            open = true;
        } else {
            curEnd = std::max(curEnd, e);
        }
    }
    if (open)
        busy += curEnd - curStart;
    return busy;
}

void
exportTimelineToTrace(const Timeline &timeline, Tracer &tracer)
{
    std::vector<std::uint32_t> laneMap;
    for (std::size_t i = 0; i < timeline.laneCount(); ++i)
        laneMap.push_back(tracer.lane(timeline.laneName(i)));

    auto phaseName = [](PhaseKind kind) {
        // The TraceName Phase block mirrors PhaseKind order.
        return static_cast<TraceName>(
            static_cast<int>(TraceName::PhaseAlloc) +
            static_cast<int>(kind));
    };

    // Emit spans per lane ordered by (start asc, end desc): this
    // yields the non-decreasing starts and outermost-first nesting
    // the trace invariants require, independent of the order phases
    // were recorded in.
    for (std::size_t lane = 0; lane < timeline.laneCount(); ++lane) {
        std::vector<const Phase *> spans;
        for (const Phase &phase : timeline.phases()) {
            if (phase.lane == lane)
                spans.push_back(&phase);
        }
        std::stable_sort(spans.begin(), spans.end(),
                         [](const Phase *a, const Phase *b) {
                             if (a->start != b->start)
                                 return a->start < b->start;
                             return a->end > b->end;
                         });
        for (const Phase *phase : spans) {
            tracer.span(TraceCategory::Phase, phaseName(phase->kind),
                        laneMap[lane], phase->start, phase->end, 0, 0,
                        phase->label);
        }
    }
    for (const Phase &phase : timeline.instants()) {
        tracer.instant(TraceCategory::Phase, phaseName(phase.kind),
                       laneMap[phase.lane], phase.start, 0,
                       phase.label);
    }
}

std::string
Timeline::gantt(std::size_t width) const
{
    UVMASYNC_ASSERT(width >= 8, "gantt width %zu too small", width);
    Tick span = makespan();
    if (span == 0)
        return "(empty timeline)\n";

    std::size_t nameWidth = 0;
    for (const std::string &name : laneNames_)
        nameWidth = std::max(nameWidth, name.size());

    std::vector<std::string> rows(laneNames_.size(),
                                  std::string(width, '.'));
    for (const Phase &phase : phases_) {
        auto begin = static_cast<std::size_t>(
            static_cast<double>(phase.start) /
            static_cast<double>(span) * static_cast<double>(width));
        auto end = static_cast<std::size_t>(
            static_cast<double>(phase.end) /
            static_cast<double>(span) * static_cast<double>(width));
        begin = std::min(begin, width - 1);
        end = std::min(std::max(end, begin + 1), width);
        for (std::size_t c = begin; c < end; ++c)
            rows[phase.lane][c] = phaseGlyph(phase.kind);
    }

    std::ostringstream oss;
    for (std::size_t lane = 0; lane < rows.size(); ++lane) {
        std::string name = laneNames_[lane];
        name.resize(nameWidth, ' ');
        oss << name << " |" << rows[lane] << "|\n";
    }
    oss << std::string(nameWidth, ' ') << " 0"
        << std::string(width > 10 ? width - 8 : 0, ' ')
        << fmtTime(static_cast<double>(span)) << "\n";
    oss << "legend: a=alloc  >=transfer-in  #=kernel  "
           "<=transfer-out  f=free\n";
    return oss.str();
}

} // namespace uvmasync
