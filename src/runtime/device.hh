/**
 * @file
 * End-to-end job execution under one of the five transfer modes.
 *
 * The Device owns the simulated testbed (host memory, PCIe link,
 * device memory, page table, migration engine, allocator) and plays a
 * Job through the paper's pipeline: allocate -> move data in ->
 * launch kernels -> move results back -> free, with the data-movement
 * strategy selected by the TransferMode. It produces the paper's
 * time breakdown plus the performance counters of Section 4.2.
 */

#ifndef UVMASYNC_RUNTIME_DEVICE_HH
#define UVMASYNC_RUNTIME_DEVICE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"
#include "gpu/instruction_mix.hh"
#include "gpu/transfer_mode.hh"
#include "mem/device_memory.hh"
#include "mem/host_memory.hh"
#include "mem/page_table.hh"
#include "runtime/allocator.hh"
#include "runtime/job.hh"
#include "runtime/system_config.hh"
#include "runtime/time_breakdown.hh"
#include "runtime/timeline.hh"
#include "xfer/migration_engine.hh"
#include "xfer/pcie_link.hh"

namespace uvmasync
{

class Injector;

/** Hardware counters aggregated over one job (Section 4.2 metrics). */
struct RunCounters
{
    InstrMix instrs;
    std::uint64_t faults = 0;
    double l1LoadMissRate = 0.0;  //!< kernel-time-weighted
    double l1StoreMissRate = 0.0; //!< kernel-time-weighted
    double occupancy = 0.0;       //!< kernel-time-weighted
    Tick stallTime = 0;
    Bytes bytesH2d = 0;
    Bytes bytesD2h = 0;
    std::uint64_t launches = 0;
};

/**
 * Per-kernel profile accumulated across a job's launches — what
 * CUPTI / Nsight Compute would report per kernel name (the paper's
 * Section 4.2 methodology).
 */
struct KernelProfile
{
    std::string name;
    std::uint64_t launches = 0;
    Tick totalTime = 0;
    Tick stallTime = 0;
    InstrMix instrs;
    double l1LoadMissRate = 0.0;  //!< time-weighted
    double l1StoreMissRate = 0.0; //!< time-weighted
    double occupancy = 0.0;       //!< time-weighted
    std::uint64_t faults = 0;
};

/** One deterministic job execution (noise is applied separately). */
struct RunResult
{
    TimeBreakdown breakdown;
    RunCounters counters;

    /** Per-kernel profiles, in first-launch order. */
    std::vector<KernelProfile> kernelProfiles;

    /** Phase timeline on cpu/dma/gpu lanes (Figure 14-style view). */
    Timeline timeline;

    /** Wall-clock completion tick (components may overlap). */
    Tick wallEnd = 0;
};

/** Per-run options. */
struct RunOptions
{
    /** L1/shared partition override; 0 keeps the GPU default. */
    Bytes sharedCarveout = 0;

    /** Seed for the deterministic parts (cache sampling). */
    std::uint64_t seed = 1;

    /**
     * Allocate host buffers with cudaHostAlloc: explicit copies run
     * at the pinned-DMA rate instead of staging through bounce
     * buffers (an extension point beyond the paper's five setups —
     * its Section 2 discusses the pageable-staging cost).
     */
    bool pinnedHost = false;

    /**
     * Record spans/instants of every instrumented component into this
     * sink (owned by the caller); null runs untraced at zero cost.
     */
    Tracer *tracer = nullptr;

    /**
     * Fault injector for this run (owned by the caller); null — or an
     * injector whose plan is inert — leaves every seam untouched and
     * the run byte-identical to an uninjected one.
     */
    Injector *injector = nullptr;
};

/**
 * The simulated CPU-GPU system.
 */
class Device
{
  public:
    explicit Device(SystemConfig cfg);

    const SystemConfig &config() const { return cfg_; }

    /** Execute @p job under @p mode. Deterministic. */
    RunResult run(const Job &job, TransferMode mode,
                  const RunOptions &opts = {});

    /** @{ Component access (stats, tests). */
    HostMemory &hostMemory() { return host_; }
    PageTable &pageTable() { return pageTable_; }
    DeviceMemory &deviceMemory() { return devMem_; }
    PcieLink &pcieLink() { return link_; }
    MigrationEngine &migrationEngine() { return engine_; }
    Allocator &allocator() { return allocator_; }
    /** @} */

    /** Snapshot all component statistics. */
    StatMap stats() const;

  private:
    SystemConfig cfg_;
    HostMemory host_;
    PageTable pageTable_;
    DeviceMemory devMem_;
    PcieLink link_;
    MigrationEngine engine_;
    Allocator allocator_;

    /**
     * Re-armed at the start of every run from cfg_.watchdog and fed
     * by the link and migration engine; a ceiling violation throws
     * PointTimeout out of run().
     */
    Watchdog watchdog_;
};

} // namespace uvmasync

#endif // UVMASYNC_RUNTIME_DEVICE_HH
