/**
 * @file
 * The paper's execution-time decomposition (Section 3.3): data
 * allocation time + data transfer time + GPU kernel time = overall
 * execution time. The components are accounted separately even when
 * they overlap in wall-clock time, matching the paper's stacked-bar
 * methodology.
 */

#ifndef UVMASYNC_RUNTIME_TIME_BREAKDOWN_HH
#define UVMASYNC_RUNTIME_TIME_BREAKDOWN_HH

#include <string>

#include "common/types.hh"

namespace uvmasync
{

/** One run's time components, in picoseconds. */
struct TimeBreakdown
{
    double allocPs = 0.0;
    double transferPs = 0.0;
    double kernelPs = 0.0;

    /** The paper's overall execution time (sum of the parts). */
    double overallPs() const { return allocPs + transferPs + kernelPs; }

    TimeBreakdown &operator+=(const TimeBreakdown &o);
    TimeBreakdown operator*(double k) const;

    std::string toString() const;
};

} // namespace uvmasync

#endif // UVMASYNC_RUNTIME_TIME_BREAKDOWN_HH
