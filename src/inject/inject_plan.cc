#include "inject/inject_plan.hh"

#include <algorithm>

#include "common/logging.hh"

namespace uvmasync
{

namespace
{

/**
 * Full key schema, sorted. Durations are written in microseconds
 * (`*_us`) because that is the natural magnitude of the phenomena —
 * fault-batch windows, PCIe stutter, launch jitter — and stored as
 * Tick picoseconds internally.
 */
const char *const kKnownKeys[] = {
    "inject.fault.batch_overflow",
    "inject.fault.delay_rate",
    "inject.fault.delay_us",
    "inject.fault.overflow_penalty_us",
    "inject.host.slow_factor",
    "inject.host.slow_rate",
    "inject.host.window_end_us",
    "inject.host.window_start_us",
    "inject.kernel.jitter_rate",
    "inject.kernel.jitter_us",
    "inject.migrate.backpressure_rate",
    "inject.migrate.backpressure_us",
    "inject.migrate.storm_chunks",
    "inject.migrate.storm_rate",
    "inject.pcie.backoff_base_us",
    "inject.pcie.degrade_factor",
    "inject.pcie.fail_rate",
    "inject.pcie.max_retries",
    "inject.pcie.stutter_duty",
    "inject.pcie.stutter_period_us",
    "inject.pcie.window_end_us",
    "inject.pcie.window_start_us",
    "inject.seed",
};

} // namespace

const std::vector<std::string> &
knownInjectKeys()
{
    static const std::vector<std::string> keys(std::begin(kKnownKeys),
                                               std::end(kKnownKeys));
    return keys;
}

bool
InjectPlan::enabled() const
{
    // A seam counts as active only if it can actually change an
    // outcome; e.g. a batch delay with rate > 0 but zero duration
    // draws no RNG and shifts no tick, so it stays inert.
    bool pcieActive = pcie.degradeFactor > 1.0 || pcie.failRate > 0.0;
    bool faultActive = fault.batchOverflow > 0 ||
                       (fault.delayRate > 0.0 && fault.delayPs > 0);
    bool migrateActive =
        (migrate.backpressureRate > 0.0 && migrate.backpressurePs > 0) ||
        (migrate.stormRate > 0.0 && migrate.stormChunks > 0);
    bool hostActive = host.slowRate > 0.0 && host.slowFactor > 1.0;
    bool kernelActive = kernel.jitterRate > 0.0 && kernel.jitterPs > 0;
    return pcieActive || faultActive || migrateActive || hostActive ||
           kernelActive;
}

InjectPlan
InjectPlan::parse(const KvConfig &kv, std::vector<InjectIssue> &issues)
{
    InjectPlan plan;
    const std::vector<std::string> &known = knownInjectKeys();

    auto issue = [&](const std::string &key, std::string msg) {
        issues.push_back({key, std::move(msg)});
    };

    // Unknown keys first: a typo'd key would otherwise silently leave
    // its seam at the inert default — the worst possible failure mode
    // for a chaos plan, which exists to perturb.
    for (const std::string &key : kv.keys()) {
        if (std::binary_search(known.begin(), known.end(), key))
            continue;
        std::string hint = closestKey(key, known);
        if (hint.empty())
            issue(key, "unknown injection-plan key");
        else
            issue(key, "unknown injection-plan key; did you mean '" +
                           hint + "'?");
    }

    auto getRate = [&](const char *key, double def) {
        double v = kv.getDouble(key, def);
        if (!(v >= 0.0 && v <= 1.0)) {
            issue(key,
                  strfmt("probability %g is outside [0, 1]", v));
            return def;
        }
        return v;
    };

    auto getFactor = [&](const char *key, double def) {
        double v = kv.getDouble(key, def);
        if (!(v >= 1.0)) {
            issue(key,
                  strfmt("factor %g must be >= 1 (1 = no effect)", v));
            return def;
        }
        return v;
    };

    auto getUs = [&](const char *key, double defUs) -> Tick {
        double v = kv.getDouble(key, defUs);
        if (!(v >= 0.0)) {
            issue(key, strfmt("duration %g us must be >= 0", v));
            v = defUs;
        }
        return static_cast<Tick>(v * 1e6); // us -> ps
    };

    auto getCount = [&](const char *key,
                        std::int64_t def) -> std::uint32_t {
        std::int64_t v = kv.getInt(key, def);
        if (v < 0) {
            issue(key, strfmt("count %lld must be >= 0",
                              static_cast<long long>(v)));
            v = def;
        }
        return static_cast<std::uint32_t>(v);
    };

    auto getWindow = [&](const char *startKey, const char *endKey) {
        InjectWindow w;
        w.startPs = getUs(startKey, 0.0);
        w.endPs = getUs(endKey, 0.0);
        if (w.endPs != 0 && w.endPs <= w.startPs) {
            issue(endKey,
                  strfmt("window ends at %g us, not after its start "
                         "(%g us); use 0 for an open-ended window",
                         toMicroseconds(w.endPs),
                         toMicroseconds(w.startPs)));
            w.endPs = 0;
        }
        return w;
    };

    std::int64_t seed = kv.getInt("inject.seed", 0);
    if (seed < 0)
        issue("inject.seed", strfmt("seed %lld must be >= 0",
                                    static_cast<long long>(seed)));
    else
        plan.seed = static_cast<std::uint64_t>(seed);

    plan.pcie.degradeFactor =
        getFactor("inject.pcie.degrade_factor", 1.0);
    plan.pcie.window = getWindow("inject.pcie.window_start_us",
                                 "inject.pcie.window_end_us");
    plan.pcie.stutterPeriodPs =
        getUs("inject.pcie.stutter_period_us", 0.0);
    plan.pcie.stutterDuty = getRate("inject.pcie.stutter_duty", 0.5);
    plan.pcie.failRate = getRate("inject.pcie.fail_rate", 0.0);
    plan.pcie.maxRetries = getCount("inject.pcie.max_retries", 3);
    plan.pcie.backoffBasePs =
        getUs("inject.pcie.backoff_base_us", 50.0);

    plan.fault.batchOverflow =
        getCount("inject.fault.batch_overflow", 0);
    plan.fault.overflowPenaltyPs =
        getUs("inject.fault.overflow_penalty_us", 0.0);
    plan.fault.delayRate = getRate("inject.fault.delay_rate", 0.0);
    plan.fault.delayPs = getUs("inject.fault.delay_us", 0.0);

    plan.migrate.backpressureRate =
        getRate("inject.migrate.backpressure_rate", 0.0);
    plan.migrate.backpressurePs =
        getUs("inject.migrate.backpressure_us", 0.0);
    plan.migrate.stormRate = getRate("inject.migrate.storm_rate", 0.0);
    plan.migrate.stormChunks =
        getCount("inject.migrate.storm_chunks", 2);

    plan.host.slowRate = getRate("inject.host.slow_rate", 0.0);
    plan.host.slowFactor = getFactor("inject.host.slow_factor", 2.0);
    plan.host.window = getWindow("inject.host.window_start_us",
                                 "inject.host.window_end_us");

    plan.kernel.jitterRate = getRate("inject.kernel.jitter_rate", 0.0);
    plan.kernel.jitterPs = getUs("inject.kernel.jitter_us", 0.0);

    return plan;
}

InjectPlan
InjectPlan::fromKv(const KvConfig &kv)
{
    std::vector<InjectIssue> issues;
    InjectPlan plan = parse(kv, issues);
    if (!issues.empty()) {
        const InjectIssue &first = issues.front();
        int line = kv.lineOf(first.key);
        if (line > 0) {
            fatal("%s:%d: injection plan key '%s': %s",
                  kv.sourceName().c_str(), line, first.key.c_str(),
                  first.message.c_str());
        }
        fatal("%s: injection plan key '%s': %s",
              kv.sourceName().c_str(), first.key.c_str(),
              first.message.c_str());
    }
    return plan;
}

InjectPlan
InjectPlan::fromFile(const std::string &path)
{
    return fromKv(KvConfig::fromFile(path));
}

} // namespace uvmasync
