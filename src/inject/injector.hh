/**
 * @file
 * Runtime side of the fault-injection layer.
 *
 * One Injector belongs to one job execution, exactly like a Tracer:
 * the Device hands the same instance to every seam (PcieLink,
 * FaultHandler, MigrationEngine, HostMemory, KernelExecutor) through
 * a raw pointer that is null when injection is off, so the disabled
 * path is a single predictable branch.
 *
 * Determinism: each seam draws from its *own* RNG stream, seeded by
 * hashing the plan salt with the seam's stream index (the counter-
 * derived discipline the parallel runner uses for experiment points).
 * Seam A consuming a draw therefore never shifts seam B's sequence,
 * and a job's perturbations depend only on (plan seed, point seed) —
 * never on scheduling — so `--jobs N` replays byte-identically.
 *
 * Every injected event is also recorded: counters always, and when a
 * Tracer is attached, spans/instants under TraceCategory::Inject so
 * perturbations are visible in Perfetto exports and trace metrics.
 */

#ifndef UVMASYNC_INJECT_INJECTOR_HH
#define UVMASYNC_INJECT_INJECTOR_HH

#include <cstdint>
#include <stdexcept>
#include <string>

#include "common/rng.hh"
#include "common/types.hh"
#include "inject/inject_plan.hh"
#include "trace/trace.hh"

namespace uvmasync
{

/**
 * Thrown when an injected transient transfer failure exhausts its
 * retry budget. Experiment/ParallelRunner catch it and fail the one
 * job with a structured error instead of taking down the batch.
 */
class TransferAborted : public std::runtime_error
{
  public:
    TransferAborted(std::string what, Tick when,
                    std::uint32_t attempts)
        : std::runtime_error(std::move(what)), when_(when),
          attempts_(attempts)
    {
    }

    Tick when() const { return when_; }
    std::uint32_t attempts() const { return attempts_; }

  private:
    Tick when_;
    std::uint32_t attempts_;
};

/** Aggregate tally of everything an Injector did during one job. */
struct InjectCounters
{
    std::uint64_t degradedTransfers = 0; //!< transfers hit by degrade
    Tick degradedBusyPs = 0;       //!< link busy while degraded
    std::uint64_t transientFailures = 0; //!< injected failures
    std::uint64_t retries = 0;           //!< failures that retried
    std::uint64_t aborts = 0;            //!< retry budgets exhausted
    Tick backoffPs = 0;                  //!< total backoff waited
    std::uint64_t overflowBatches = 0;   //!< batches closed early
    std::uint64_t delayedBatches = 0;    //!< batches serviced late
    Tick faultDelayPs = 0;               //!< total batch delay added
    std::uint64_t backpressureEvents = 0;
    Tick backpressurePs = 0;
    std::uint64_t stormEvictions = 0; //!< chunks thrashed by storms
    std::uint64_t slowPageTransfers = 0;
    std::uint64_t jitteredLaunches = 0;
    Tick jitterPs = 0;

    /** Total injected events (for "did anything fire" checks). */
    std::uint64_t totalEvents() const;
};

/**
 * Salt combining the injection seed with the experiment point's base
 * seed, so distinct points perturb independently while staying a pure
 * function of their options (parallel-replay safe).
 */
std::uint64_t injectSalt(std::uint64_t injectSeed,
                         std::uint64_t pointSeed);

/**
 * Draws perturbations from a validated InjectPlan. Not thread-safe;
 * one instance per job execution.
 */
class Injector
{
  public:
    Injector(const InjectPlan &plan, std::uint64_t salt);

    /** True when the plan can perturb anything. */
    bool enabled() const { return enabled_; }

    const InjectPlan &plan() const { return plan_; }
    const InjectCounters &counters() const { return counters_; }

    /**
     * Attach a tracer. @p instantLane hosts the point events (retries,
     * jitter, storms); @p h2dLane / @p d2hLane host degraded-window
     * occupancy spans per transfer direction (separate lanes keep the
     * per-lane monotone-start invariant, since h2d and d2h windows
     * interleave). Pass null to detach.
     */
    void setTrace(Tracer *tracer, std::uint32_t instantLane,
                  std::uint32_t h2dLane, std::uint32_t d2hLane);

    // --- PCIe link seam -------------------------------------------

    /**
     * Roll for transient failures of a transfer issued at @p now.
     * Each failure waits an exponential backoff (base * 2^attempt)
     * and retries; returns the tick the transfer finally issues at.
     * Throws TransferAborted when the budget is exhausted.
     */
    Tick applyTransferFaults(Tick now, Bytes bytes,
                             const char *kindName);

    /**
     * Link slowdown factor (>= 1) for a transfer issued at @p now;
     * 1 outside degradation/stutter windows. Sampled at issue time:
     * a transfer keeps the mode the link was in when it queued.
     */
    double degradeFactor(Tick now) const;

    /** Record a transfer that ran degraded (span on h2d/d2h lane). */
    void noteDegradedTransfer(Tick start, Tick end, double factor,
                              bool h2d);

    // --- FaultHandler seam ----------------------------------------

    /** Effective fault-batch capacity under injected overflow. */
    std::uint32_t clampBatchSize(std::uint32_t configured) const;

    /** Replay penalty for a batch that closed by overflow. */
    Tick overflowPenalty(Tick when);

    /** Roll for delayed servicing of a batch opening at @p when. */
    Tick batchOpenDelay(Tick when);

    // --- MigrationEngine seam -------------------------------------

    /** Roll for driver backpressure on a migration at @p when. */
    Tick migrationBackpressure(Tick when);

    /** True when eviction storms are configured (forces LRU on). */
    bool stormsEnabled() const;

    /** Roll for an eviction storm; returns chunks to thrash (0 = no). */
    std::uint32_t drawEvictionStorm();

    /** Record a storm that evicted @p chunks ending at @p when. */
    void noteEvictionStorm(Tick when, std::uint32_t chunks);

    // --- HostMemory seam ------------------------------------------

    /**
     * Host-path speed factor in (0, 1] for a transfer at @p now; a
     * slow-page hit returns 1/slowFactor (host DIMM serves slower).
     */
    double hostSlowFactor(Tick now);

    // --- KernelExecutor seam --------------------------------------

    /** Roll for launch jitter at @p when; returns extra latency. */
    Tick launchJitter(Tick when);

  private:
    /** One independent RNG stream per seam. */
    enum Stream : std::uint64_t
    {
        StreamPcie = 0,
        StreamFault = 1,
        StreamMigrate = 2,
        StreamHost = 3,
        StreamKernel = 4,
    };

    static Rng streamRng(std::uint64_t salt, Stream stream);

    InjectPlan plan_;
    bool enabled_;
    Rng pcieRng_;
    Rng faultRng_;
    Rng migrateRng_;
    Rng hostRng_;
    Rng kernelRng_;
    InjectCounters counters_;
    Tracer *tracer_ = nullptr;
    std::uint32_t instantLane_ = 0;
    std::uint32_t h2dLane_ = 0;
    std::uint32_t d2hLane_ = 0;
};

} // namespace uvmasync

#endif // UVMASYNC_INJECT_INJECTOR_HH
