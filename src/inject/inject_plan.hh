/**
 * @file
 * Declarative fault-injection plans (`inject.*` KV keys).
 *
 * A plan describes *what* adversity to inject at each simulator seam;
 * the Injector (injector.hh) decides *when*, drawing from seeded RNG
 * streams. Plans are plain KV configs so chaos scenarios live next to
 * job files, compose per job, and replay identically at any --jobs
 * count. A default-constructed plan is inert: every rate is zero and
 * every factor is 1, and enabled() is false, so a simulator wired
 * with a disabled plan is byte-identical to one with no injection at
 * all (the golden-trace tests pin this).
 *
 * Validation is strict: malformed windows (end before start),
 * negative rates or durations, probabilities outside [0, 1] and
 * factors below 1 are configuration errors, never silently clamped.
 * fromKv() fatals with the offending key and source line; parse()
 * collects the same issues non-fatally for the lint pass (UAL016).
 */

#ifndef UVMASYNC_INJECT_INJECT_PLAN_HH
#define UVMASYNC_INJECT_INJECT_PLAN_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/kv_config.hh"
#include "common/types.hh"

namespace uvmasync
{

/** A [start, end) tick window; end == 0 means open-ended. */
struct InjectWindow
{
    Tick startPs = 0;
    Tick endPs = 0;

    /** True when @p t falls inside the window. */
    bool
    covers(Tick t) const
    {
        return t >= startPs && (endPs == 0 || t < endPs);
    }
};

/** PCIe link perturbations ([inject.pcie]). */
struct InjectPcie
{
    /** Bandwidth degradation factor (>= 1) inside the window. */
    double degradeFactor = 1.0;

    /** When the degradation applies; default covers the whole run. */
    InjectWindow window;

    /**
     * Optional stutter: within the window the link alternates between
     * degraded (a `stutterDuty` share of each period) and nominal.
     * 0 means the whole window is degraded.
     */
    Tick stutterPeriodPs = 0;
    double stutterDuty = 0.5;

    /** Probability a transfer attempt transiently fails. */
    double failRate = 0.0;

    /** Retry budget before the transfer aborts the job. */
    std::uint32_t maxRetries = 3;

    /** First retry backoff; doubles per attempt (exponential). */
    Tick backoffBasePs = 0;
};

/** Fault-handler perturbations ([inject.fault]). */
struct InjectFault
{
    /**
     * Injected fault-buffer capacity: batches overflow (close early)
     * at this size when it is below the configured maxBatchSize.
     * 0 disables the override.
     */
    std::uint32_t batchOverflow = 0;

    /** Replay penalty charged when a batch closes by overflow. */
    Tick overflowPenaltyPs = 0;

    /** Probability a newly opened batch is serviced late. */
    double delayRate = 0.0;

    /** Extra servicing delay for a delayed batch. */
    Tick delayPs = 0;
};

/** Migration-engine perturbations ([inject.migrate]). */
struct InjectMigrate
{
    /** Probability a chunk migration hits driver backpressure. */
    double backpressureRate = 0.0;

    /** Stall charged to a backpressured migration. */
    Tick backpressurePs = 0;

    /** Probability a migration triggers an eviction storm. */
    double stormRate = 0.0;

    /** Resident chunks thrashed out per storm. */
    std::uint32_t stormChunks = 2;
};

/** Host-DIMM perturbations ([inject.host]). */
struct InjectHost
{
    /** Probability a transfer inside the window hits a slow page. */
    double slowRate = 0.0;

    /** Host-path slowdown (>= 1) for a slow-page transfer. */
    double slowFactor = 2.0;

    /** When slow pages occur; default covers the whole run. */
    InjectWindow window;
};

/** Kernel-launch perturbations ([inject.kernel]). */
struct InjectKernel
{
    /** Probability a launch is jittered. */
    double jitterRate = 0.0;

    /** Maximum extra launch latency; actual is uniform in [0, max]. */
    Tick jitterPs = 0;
};

/** One semantic problem found while parsing a plan. */
struct InjectIssue
{
    std::string key;     //!< offending `inject.*` key ("" = plan-wide)
    std::string message; //!< what is wrong and what is legal
};

/** A complete, validated injection plan. */
struct InjectPlan
{
    /** Base seed of the injector's RNG streams ([inject] seed). */
    std::uint64_t seed = 0;

    InjectPcie pcie;
    InjectFault fault;
    InjectMigrate migrate;
    InjectHost host;
    InjectKernel kernel;

    /**
     * True when the plan can perturb anything. A false plan is
     * provably inert: the Device never attaches the injector.
     */
    bool enabled() const;

    /**
     * Parse `inject.*` keys out of @p kv, collecting every semantic
     * problem (unknown keys, malformed windows, out-of-range rates)
     * into @p issues instead of fataling. The returned plan is only
     * meaningful when @p issues stays empty.
     */
    static InjectPlan parse(const KvConfig &kv,
                            std::vector<InjectIssue> &issues);

    /** Parse and fatal() on the first issue (CLI loading path). */
    static InjectPlan fromKv(const KvConfig &kv);

    /** Load a plan file; fatal() if unreadable or malformed. */
    static InjectPlan fromFile(const std::string &path);
};

/** Every key a plan may contain, sorted (lint did-you-mean source). */
const std::vector<std::string> &knownInjectKeys();

} // namespace uvmasync

#endif // UVMASYNC_INJECT_INJECT_PLAN_HH
