#include "inject/injector.hh"

#include <algorithm>

#include "common/logging.hh"

namespace uvmasync
{

namespace
{

/** FNV-1a over raw bytes; the stream-derivation hash. */
std::uint64_t
fnv1a(const void *data, std::size_t size,
      std::uint64_t h = 0xcbf29ce484222325ull)
{
    const auto *p = static_cast<const unsigned char *>(data);
    for (std::size_t i = 0; i < size; ++i) {
        h ^= p[i];
        h *= 0x100000001b3ull;
    }
    return h;
}

/** splitmix64 finalizer: spreads structured hashes into seeds. */
std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

} // namespace

std::uint64_t
InjectCounters::totalEvents() const
{
    return degradedTransfers + transientFailures + overflowBatches +
           delayedBatches + backpressureEvents + stormEvictions +
           slowPageTransfers + jitteredLaunches;
}

std::uint64_t
injectSalt(std::uint64_t injectSeed, std::uint64_t pointSeed)
{
    std::uint64_t h = fnv1a(&injectSeed, sizeof(injectSeed));
    h = fnv1a(&pointSeed, sizeof(pointSeed), h);
    return mix64(h);
}

Rng
Injector::streamRng(std::uint64_t salt, Stream stream)
{
    std::uint64_t idx = static_cast<std::uint64_t>(stream);
    return Rng(mix64(fnv1a(&idx, sizeof(idx), salt)));
}

Injector::Injector(const InjectPlan &plan, std::uint64_t salt)
    : plan_(plan), enabled_(plan.enabled()),
      pcieRng_(streamRng(salt, StreamPcie)),
      faultRng_(streamRng(salt, StreamFault)),
      migrateRng_(streamRng(salt, StreamMigrate)),
      hostRng_(streamRng(salt, StreamHost)),
      kernelRng_(streamRng(salt, StreamKernel))
{
}

void
Injector::setTrace(Tracer *tracer, std::uint32_t instantLane,
                   std::uint32_t h2dLane, std::uint32_t d2hLane)
{
    tracer_ = tracer;
    instantLane_ = instantLane;
    h2dLane_ = h2dLane;
    d2hLane_ = d2hLane;
}

Tick
Injector::applyTransferFaults(Tick now, Bytes bytes,
                              const char *kindName)
{
    if (plan_.pcie.failRate <= 0.0)
        return now;
    std::uint32_t attempt = 0;
    while (pcieRng_.chance(plan_.pcie.failRate)) {
        ++counters_.transientFailures;
        if (attempt >= plan_.pcie.maxRetries) {
            ++counters_.aborts;
            if (tracer_) {
                tracer_->instant(TraceCategory::Inject,
                                 TraceName::InjectAbort, instantLane_,
                                 now, attempt, kindName);
            }
            throw TransferAborted(
                strfmt("injected %s transfer of %llu bytes failed "
                       "after %u retries at t=%.3f us",
                       kindName,
                       static_cast<unsigned long long>(bytes),
                       attempt, toMicroseconds(now)),
                now, attempt);
        }
        Tick backoff = plan_.pcie.backoffBasePs << attempt;
        ++counters_.retries;
        counters_.backoffPs += backoff;
        if (tracer_) {
            tracer_->instant(TraceCategory::Inject,
                             TraceName::InjectRetry, instantLane_,
                             now, backoff, kindName);
        }
        now += backoff;
        ++attempt;
    }
    return now;
}

double
Injector::degradeFactor(Tick now) const
{
    const InjectPcie &p = plan_.pcie;
    if (p.degradeFactor <= 1.0 || !p.window.covers(now))
        return 1.0;
    if (p.stutterPeriodPs > 0) {
        // Stutter phase is anchored at the window start so the first
        // `duty` share of every period is the degraded half.
        Tick phase = (now - p.window.startPs) % p.stutterPeriodPs;
        Tick dutyPs = static_cast<Tick>(
            p.stutterDuty *
            static_cast<double>(p.stutterPeriodPs));
        if (phase >= dutyPs)
            return 1.0;
    }
    return p.degradeFactor;
}

void
Injector::noteDegradedTransfer(Tick start, Tick end, double factor,
                               bool h2d)
{
    ++counters_.degradedTransfers;
    counters_.degradedBusyPs += end - start;
    if (tracer_) {
        tracer_->span(TraceCategory::Inject, TraceName::InjectDegraded,
                      h2d ? h2dLane_ : d2hLane_, start, end,
                      static_cast<std::uint64_t>(factor * 100.0), 0,
                      h2d ? "h2d" : "d2h");
    }
}

std::uint32_t
Injector::clampBatchSize(std::uint32_t configured) const
{
    if (plan_.fault.batchOverflow == 0)
        return configured;
    return std::min(configured, plan_.fault.batchOverflow);
}

Tick
Injector::overflowPenalty(Tick when)
{
    ++counters_.overflowBatches;
    counters_.faultDelayPs += plan_.fault.overflowPenaltyPs;
    if (tracer_) {
        tracer_->instant(TraceCategory::Inject,
                         TraceName::InjectBatchOverflow, instantLane_,
                         when, plan_.fault.overflowPenaltyPs);
    }
    return plan_.fault.overflowPenaltyPs;
}

Tick
Injector::batchOpenDelay(Tick when)
{
    if (plan_.fault.delayRate <= 0.0 || plan_.fault.delayPs == 0)
        return 0;
    if (!faultRng_.chance(plan_.fault.delayRate))
        return 0;
    ++counters_.delayedBatches;
    counters_.faultDelayPs += plan_.fault.delayPs;
    if (tracer_) {
        tracer_->instant(TraceCategory::Inject,
                         TraceName::InjectBatchDelay, instantLane_,
                         when, plan_.fault.delayPs);
    }
    return plan_.fault.delayPs;
}

Tick
Injector::migrationBackpressure(Tick when)
{
    const InjectMigrate &m = plan_.migrate;
    if (m.backpressureRate <= 0.0 || m.backpressurePs == 0)
        return 0;
    if (!migrateRng_.chance(m.backpressureRate))
        return 0;
    ++counters_.backpressureEvents;
    counters_.backpressurePs += m.backpressurePs;
    if (tracer_) {
        tracer_->instant(TraceCategory::Inject,
                         TraceName::InjectBackpressure, instantLane_,
                         when, m.backpressurePs);
    }
    return m.backpressurePs;
}

bool
Injector::stormsEnabled() const
{
    return plan_.migrate.stormRate > 0.0 &&
           plan_.migrate.stormChunks > 0;
}

std::uint32_t
Injector::drawEvictionStorm()
{
    if (!stormsEnabled())
        return 0;
    if (!migrateRng_.chance(plan_.migrate.stormRate))
        return 0;
    return plan_.migrate.stormChunks;
}

void
Injector::noteEvictionStorm(Tick when, std::uint32_t chunks)
{
    counters_.stormEvictions += chunks;
    if (tracer_) {
        tracer_->instant(TraceCategory::Inject,
                         TraceName::InjectEvictStorm, instantLane_,
                         when, chunks);
    }
}

double
Injector::hostSlowFactor(Tick now)
{
    const InjectHost &h = plan_.host;
    if (h.slowRate <= 0.0 || h.slowFactor <= 1.0 ||
        !h.window.covers(now)) {
        return 1.0;
    }
    if (!hostRng_.chance(h.slowRate))
        return 1.0;
    ++counters_.slowPageTransfers;
    if (tracer_) {
        tracer_->instant(TraceCategory::Inject,
                         TraceName::InjectSlowPage, instantLane_, now,
                         static_cast<std::uint64_t>(h.slowFactor *
                                                    100.0));
    }
    return 1.0 / h.slowFactor;
}

Tick
Injector::launchJitter(Tick when)
{
    const InjectKernel &k = plan_.kernel;
    if (k.jitterRate <= 0.0 || k.jitterPs == 0)
        return 0;
    if (!kernelRng_.chance(k.jitterRate))
        return 0;
    Tick jitter = kernelRng_.uniformInt(k.jitterPs) + 1;
    ++counters_.jitteredLaunches;
    counters_.jitterPs += jitter;
    if (tracer_) {
        tracer_->instant(TraceCategory::Inject,
                         TraceName::InjectLaunchJitter, instantLane_,
                         when, jitter);
    }
    return jitter;
}

} // namespace uvmasync
