#include "analysis/lint.hh"

#include <algorithm>
#include <mutex>
#include <set>

#include "common/logging.hh"
#include "inject/inject_plan.hh"

namespace uvmasync
{

namespace
{

/** Findings enforceLint has already printed this process: a jobfile
 * swept over many points lints identically every time, and repeating
 * the same diagnostic per point buries the signal. Keyed on the full
 * rendered identity so distinct findings always print. */
std::mutex printedLintMutex;
std::set<std::string> printedLintFindings;

bool
firstPrint(const Diagnostic &d)
{
    std::string key = std::string(d.code()) + "|" +
                      d.loc.toString() + "|" + d.subject + "|" +
                      d.message;
    std::lock_guard<std::mutex> lock(printedLintMutex);
    return printedLintFindings.insert(std::move(key)).second;
}

DiagnosticEngine
runPipeline(const LintContext &ctx, const LintOptions &opts)
{
    DiagnosticEngine diags;
    PassManager::standardPipeline().run(ctx, diags, opts.passes);
    if (opts.warningsAsErrors) {
        for (Diagnostic &d : diags.all()) {
            if (d.severity == Severity::Warn)
                d.severity = Severity::Error;
        }
    }
    return diags;
}

} // namespace

DiagnosticEngine
lintSystemConfig(const SystemConfig &system, const KvConfig *systemKv,
                 const LintOptions &opts)
{
    LintContext ctx;
    ctx.system = &system;
    ctx.systemKv = systemKv;
    ctx.subject = systemKv && !systemKv->sourceName().empty()
                      ? systemKv->sourceName()
                      : "system config";
    return runPipeline(ctx, opts);
}

DiagnosticEngine
lintJob(const SystemConfig &system, const Job &job,
        const std::string &subject, const KvConfig *systemKv,
        const KvConfig *jobKv, const LintOptions &opts,
        const TransferMode *transferMode)
{
    LintContext ctx;
    ctx.system = &system;
    ctx.job = &job;
    ctx.systemKv = systemKv;
    ctx.jobKv = jobKv;
    ctx.mode = transferMode;
    ctx.subject = subject.empty() ? job.name : subject;
    return runPipeline(ctx, opts);
}

DiagnosticEngine
enforceLint(const SystemConfig &system, const Job &job,
            const std::string &subject, LintMode mode,
            const KvConfig *systemKv, const KvConfig *jobKv,
            const TransferMode *transferMode)
{
    if (mode == LintMode::Off)
        return DiagnosticEngine{};

    DiagnosticEngine diags = lintJob(system, job, subject, systemKv,
                                     jobKv, {}, transferMode);
    if (diags.empty())
        return diags;

    for (const Diagnostic &d : diags.all()) {
        if (d.severity == Severity::Note &&
            logLevel() < LogLevel::Inform)
            continue;
        if (!firstPrint(d))
            continue;
        if (d.severity == Severity::Error && mode != LintMode::Enforce)
            warn("%s", d.format().c_str());
        else if (d.severity == Severity::Warn)
            warn("%s", d.format().c_str());
        else if (d.severity == Severity::Note)
            inform("%s", d.format().c_str());
    }

    if (mode == LintMode::Enforce && diags.hasErrors()) {
        std::string listing;
        for (const Diagnostic &d : diags.all()) {
            if (d.severity != Severity::Error)
                continue;
            listing += "\n  " + d.format();
        }
        fatal("model lint failed for %s (%s):%s\n"
              "(re-run with --lint=warn to simulate anyway, or "
              "--lint=off to skip the linter)",
              subject.c_str(), diags.summary().c_str(),
              listing.c_str());
    }
    return diags;
}

DiagnosticEngine
lintInjectPlan(const KvConfig &kv, const LintOptions &opts)
{
    DiagnosticEngine diags;
    const std::string subject = kv.sourceName();
    const std::vector<std::string> &known = knownInjectKeys();

    auto locate = [&](Diagnostic &d, const std::string &key) {
        d.loc.file = kv.sourceName();
        d.loc.line = kv.lineOf(key);
    };

    // Unknown keys are the generic UAL013 (with did-you-mean), same
    // as every other config surface.
    for (const std::string &key : kv.keys()) {
        if (std::binary_search(known.begin(), known.end(), key))
            continue;
        Diagnostic &d = diags.report(
            DiagId::UnknownConfigKey, subject,
            "unknown injection-plan key '" + key + "'");
        std::string close = closestKey(key, known);
        if (!close.empty())
            d.hint = "did you mean '" + close + "'?";
        locate(d, key);
    }

    for (const KvShadowedKey &shadow : kv.shadowedKeys()) {
        Diagnostic &d = diags.report(
            DiagId::ShadowedConfigKey, subject,
            strfmt("key '%s' assigned on line %d shadows the "
                   "assignment on line %d",
                   shadow.key.c_str(), shadow.line,
                   shadow.firstLine));
        locate(d, shadow.key);
    }

    std::vector<InjectIssue> issues;
    InjectPlan plan = InjectPlan::parse(kv, issues);
    for (const InjectIssue &issue : issues) {
        // parse() also flags unknown keys; those are already UAL013.
        if (!std::binary_search(known.begin(), known.end(),
                                issue.key)) {
            continue;
        }
        Diagnostic &d =
            diags.report(DiagId::BadInjectParam, subject,
                         "'" + issue.key + "': " + issue.message);
        locate(d, issue.key);
    }

    if (diags.empty() && !plan.enabled()) {
        diags.report(DiagId::InertInjectPlan, subject,
                     "plan parses cleanly but no seam can fire");
    }

    if (opts.warningsAsErrors) {
        for (Diagnostic &d : diags.all()) {
            if (d.severity == Severity::Warn)
                d.severity = Severity::Error;
        }
    }
    return diags;
}

void
resetLintPrintDedup()
{
    std::lock_guard<std::mutex> lock(printedLintMutex);
    printedLintFindings.clear();
}

bool
parseLintMode(const std::string &name, LintMode &out)
{
    if (name == "off")
        out = LintMode::Off;
    else if (name == "warn")
        out = LintMode::Warn;
    else if (name == "enforce")
        out = LintMode::Enforce;
    else
        return false;
    return true;
}

} // namespace uvmasync
