/**
 * @file
 * Diagnostics for the static model linter (`uvmasync-lint`).
 *
 * Every check the analysis passes can raise has a stable code
 * (UAL001, UAL002, ...), a default severity and a generic fix-it
 * hint, so tools and CI gates can match on codes instead of message
 * text. A Diagnostic instance carries the concrete message, the
 * subject (workload/kernel/buffer), and — when the model came from a
 * KV file — the source location of the offending key.
 */

#ifndef UVMASYNC_ANALYSIS_DIAGNOSTIC_HH
#define UVMASYNC_ANALYSIS_DIAGNOSTIC_HH

#include <array>
#include <cstddef>
#include <string>
#include <vector>

namespace uvmasync
{

/** How bad a finding is. */
enum class Severity
{
    Note,  //!< informational; never fails a run
    Warn,  //!< suspicious model, results may mislead
    Error, //!< semantically invalid model; refuse to simulate
};

/** Lower-case severity name ("note", "warn", "error"). */
const char *severityName(Severity s);

/** Stable diagnostic identities. Append only — codes are public. */
enum class DiagId
{
    DanglingBufferRef,     //!< UAL001
    KernelDepCycle,        //!< UAL002
    DanglingKernelDep,     //!< UAL003
    UnusedBuffer,          //!< UAL004
    ReadUninitialized,     //!< UAL005
    SharedOverflow,        //!< UAL006
    BadLaunchGeometry,     //!< UAL007
    FootprintOverCapacity, //!< UAL008
    BadPageGeometry,       //!< UAL009
    PrefetchMismatch,      //!< UAL010
    BadInstructionMix,     //!< UAL011
    BadTouchedFraction,    //!< UAL012
    UnknownConfigKey,      //!< UAL013
    ShadowedConfigKey,     //!< UAL014
    BadSystemParam,        //!< UAL015
    BadInjectParam,        //!< UAL016
    InertInjectPlan,       //!< UAL017
    EventVolumeOverCeiling, //!< UAL018
    PredictedThrash,        //!< UAL019
    DominatedModeSelection, //!< UAL020
    DeadBufferWrite,        //!< UAL021
    ChunkGeometryWaste,     //!< UAL022
    PrefetchReuseMismatch,  //!< UAL023
    PredictedEventVolume,   //!< UAL024
};

inline constexpr std::size_t diagIdCount = 24;

/** Static description of one diagnostic code. */
struct DiagSpec
{
    DiagId id;
    const char *code;     //!< "UAL001"
    Severity severity;    //!< default severity
    const char *title;    //!< one-line summary for --list-codes
    const char *hint;     //!< generic fix-it advice
};

/** Spec lookup; valid for every DiagId. */
const DiagSpec &diagSpec(DiagId id);

/** All specs in code order (for --list-codes and the docs). */
const std::array<DiagSpec, diagIdCount> &allDiagSpecs();

/** Parse "UAL007" back to an id; returns false if unknown. */
bool parseDiagCode(const std::string &code, DiagId &out);

/** Location of the offending line in a KV/config file. */
struct SourceLoc
{
    std::string file; //!< empty when the model was built in C++
    int line = 0;     //!< 1-based; 0 when unknown

    bool valid() const { return !file.empty(); }
    std::string toString() const;
};

/** One concrete finding. */
struct Diagnostic
{
    DiagId id = DiagId::DanglingBufferRef;
    Severity severity = Severity::Error;
    std::string subject; //!< "workload/kernel" or config scope
    std::string message; //!< the specific problem
    std::string hint;    //!< specific fix-it; falls back to spec hint
    SourceLoc loc;

    const char *code() const { return diagSpec(id).code; }

    /** "error[UAL001] subject: message (fix: hint)" + location. */
    std::string format() const;
};

/**
 * Collects diagnostics from analysis passes and answers the only
 * question CI cares about: is the model clean enough to run?
 */
class DiagnosticEngine
{
  public:
    /** Report with the code's default severity. */
    Diagnostic &report(DiagId id, std::string subject,
                       std::string message);

    /** Report with an explicit severity override. */
    Diagnostic &report(DiagId id, Severity severity,
                       std::string subject, std::string message);

    const std::vector<Diagnostic> &all() const { return diags_; }
    std::vector<Diagnostic> &all() { return diags_; }
    bool empty() const { return diags_.empty(); }
    std::size_t size() const { return diags_.size(); }

    std::size_t count(Severity s) const;
    std::size_t count(DiagId id) const;
    bool hasErrors() const { return count(Severity::Error) > 0; }

    /** All findings, one formatted line each, severity-sorted. */
    std::string formatAll() const;

    /** "3 errors, 1 warning, 0 notes". */
    std::string summary() const;

    /** Merge another engine's findings into this one. */
    void merge(const DiagnosticEngine &other);

    void clear() { diags_.clear(); }

  private:
    std::vector<Diagnostic> diags_;
};

} // namespace uvmasync

#endif // UVMASYNC_ANALYSIS_DIAGNOSTIC_HH
