#include "analysis/passes.hh"

#include <algorithm>
#include <cmath>

#include "analysis/cost_model.hh"
#include "common/logging.hh"
#include "common/table.hh"
#include "gpu/instruction_mix.hh"
#include "gpu/occupancy.hh"
#include "runtime/config_loader.hh"

namespace uvmasync
{

namespace
{

bool
isPow2(Bytes v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

std::string
bytesStr(Bytes b)
{
    return fmtBytes(static_cast<double>(b));
}

/** Attach the source line of @p key when the model came from a file. */
void
locate(Diagnostic &d, const KvConfig *kv, const std::string &key)
{
    if (!kv || !kv->has(key))
        return;
    d.loc.file = kv->sourceName();
    d.loc.line = kv->lineOf(key);
}

// --- system-config: UAL015 parameter ranges, UAL009 page geometry ----

class SystemConfigPass : public AnalysisPass
{
  public:
    const char *name() const override { return "system-config"; }
    const char *
    description() const override
    {
        return "SystemConfig parameter ranges and page/chunk "
               "geometry (UAL009, UAL015)";
    }

    void
    run(const LintContext &ctx, DiagnosticEngine &diags) const override
    {
        if (!ctx.system)
            return;
        const SystemConfig &sys = *ctx.system;
        const GpuConfig &gpu = sys.gpu;

        auto param = [&](bool bad, const char *key,
                         const std::string &detail) {
            if (!bad)
                return;
            Diagnostic &d = diags.report(DiagId::BadSystemParam,
                                         ctx.subject,
                                         std::string(key) + ": " +
                                             detail);
            locate(d, ctx.systemKv, key);
        };

        param(gpu.smCount == 0, "gpu.sm_count",
              "a GPU needs at least one SM");
        param(gpu.coresPerSm == 0 || gpu.warpSize == 0 ||
                  gpu.maxThreadsPerSm == 0 || gpu.maxWarpsPerSm == 0 ||
                  gpu.maxBlocksPerSm == 0,
              "gpu", "per-SM resource limits must all be non-zero");
        param(!(gpu.clock.hz() > 0), "gpu.clock_mhz",
              "clock must be positive");
        param(!(gpu.hbmBandwidth.gbps() > 0), "gpu.hbm_gbps",
              "HBM bandwidth must be positive");
        param(gpu.unifiedL1Bytes == 0, "gpu",
              "unified L1/shared SRAM cannot be empty");
        param(gpu.maxSharedBytes > gpu.unifiedL1Bytes, "gpu",
              "largest shared carveout (" +
                  bytesStr(gpu.maxSharedBytes) +
                  ") exceeds the unified L1/shared SRAM (" +
                  bytesStr(gpu.unifiedL1Bytes) + ")");
        param(gpu.defaultSharedCarveout > gpu.maxSharedBytes,
              "gpu.shared_carveout_kib",
              "default carveout " +
                  bytesStr(gpu.defaultSharedCarveout) +
                  " exceeds the hardware maximum " +
                  bytesStr(gpu.maxSharedBytes));

        param(!(sys.pcie.rawBandwidth.gbps() > 0), "pcie.raw_gbps",
              "link bandwidth must be positive");
        for (std::size_t k = 0; k < numTransferKinds; ++k) {
            double eff = sys.pcie.efficiency[k];
            if (!(eff > 0.0) || eff > 1.0) {
                param(true, "pcie",
                      std::string(transferKindName(
                          static_cast<TransferKind>(k))) +
                          " efficiency " + fmtDouble(eff, 3) +
                          " is outside (0, 1]");
            }
        }

        param(sys.host.dimmCount == 0 || sys.host.dimmCapacity == 0,
              "host", "host DRAM needs modules with capacity");
        param(!(sys.host.straddleThreshold > 0.0) ||
                  sys.host.straddleThreshold > 1.0,
              "host", "straddle threshold must be in (0, 1]");
        param(sys.host.straddlePenalty < 1.0, "host",
              "straddle penalty is a worst-case slowdown, >= 1");

        param(sys.deviceMemoryBytes == 0, "hbm.capacity_gib",
              "device memory capacity cannot be zero");
        param(sys.uvm.fault.maxBatchSize == 0, "uvm.fault_batch",
              "the fault handler services at least one fault per "
              "batch");
        param(!(sys.uvm.redundantPrefetchChurn >= 0.0) ||
                  sys.uvm.redundantPrefetchChurn > 1.0,
              "uvm.churn", "redundant-prefetch churn is a fraction "
                           "of the range, in [0, 1]");

        param(!(sys.noise.allocCv >= 0.0) ||
                  !(sys.noise.transferCv >= 0.0) ||
                  !(sys.noise.kernelCv >= 0.0) ||
                  !(sys.noise.systemOverheadCv >= 0.0),
              "noise", "coefficients of variation must be >= 0");

        // Page/chunk geometry (UAL009): the migration granularity
        // must tile exactly into GPU pages or PageTable setup and
        // fault accounting silently disagree.
        auto geom = [&](bool bad, Severity sev, const char *key,
                        const std::string &detail) {
            if (!bad)
                return;
            Diagnostic &d =
                diags.report(DiagId::BadPageGeometry, sev,
                             ctx.subject,
                             std::string(key) + ": " + detail);
            locate(d, ctx.systemKv, key);
        };
        geom(gpu.gpuPageBytes == 0 || !isPow2(gpu.gpuPageBytes),
             Severity::Error, "gpu",
             "GPU page size " + bytesStr(gpu.gpuPageBytes) +
                 " must be a non-zero power of two");
        geom(sys.uvm.chunkBytes == 0, Severity::Error, "uvm.chunk_kib",
             "migration chunk size cannot be zero");
        geom(sys.uvm.chunkBytes != 0 && gpu.gpuPageBytes != 0 &&
                 sys.uvm.chunkBytes % gpu.gpuPageBytes != 0,
             Severity::Error, "uvm.chunk_kib",
             "chunk size " + bytesStr(sys.uvm.chunkBytes) +
                 " is not a multiple of the GPU page size " +
                 bytesStr(gpu.gpuPageBytes));
        geom(sys.uvm.chunkBytes != 0 && !isPow2(sys.uvm.chunkBytes),
             Severity::Warn, "uvm.chunk_kib",
             "chunk size " + bytesStr(sys.uvm.chunkBytes) +
                 " is not a power of two; real drivers migrate "
                 "power-of-two basic blocks");
        geom(gpu.l1LineBytes == 0 || !isPow2(gpu.l1LineBytes),
             Severity::Error, "gpu",
             "L1 sector size " + bytesStr(gpu.l1LineBytes) +
                 " must be a non-zero power of two");
    }
};

// --- kernel-graph: UAL001-005 dataflow structure ---------------------

class KernelGraphPass : public AnalysisPass
{
  public:
    const char *name() const override { return "kernel-graph"; }
    const char *
    description() const override
    {
        return "buffer references, kernel dependency DAG, dataflow "
               "reachability (UAL001-UAL005)";
    }

    void
    run(const LintContext &ctx, DiagnosticEngine &diags) const override
    {
        if (!ctx.job)
            return;
        const Job &job = *ctx.job;
        std::size_t nBufs = job.buffers.size();
        std::size_t nKernels = job.kernels.size();

        std::vector<bool> used(nBufs, false);
        std::vector<bool> initialized(nBufs, false);
        // A buffer written by ANY kernel is initialised from the
        // second sequence iteration on: iterative jobs (srad, lud)
        // legitimately read last iteration's output before this
        // iteration rewrites it.
        std::vector<bool> writtenAnywhere(nBufs, false);
        for (const KernelDescriptor &kd : job.kernels) {
            for (const KernelBufferUse &use : kd.buffers) {
                if (use.written && use.bufferId < nBufs)
                    writtenAnywhere[use.bufferId] = true;
            }
        }
        for (std::size_t b = 0; b < nBufs; ++b) {
            initialized[b] =
                job.buffers[b].hostInit ||
                (job.sequenceRepeats > 1 && writtenAnywhere[b]);
        }

        for (std::size_t k = 0; k < nKernels; ++k) {
            const KernelDescriptor &kd = job.kernels[k];
            std::string subj = subject(ctx, kd.name, k);

            for (const KernelBufferUse &use : kd.buffers) {
                if (use.bufferId >= nBufs) {
                    Diagnostic &d = diags.report(
                        DiagId::DanglingBufferRef, subj,
                        "references buffer id " +
                            std::to_string(use.bufferId) +
                            " but the job declares only " +
                            std::to_string(nBufs) + " buffer(s)");
                    locate(d, ctx.jobKv,
                           "kernel." + std::to_string(k) +
                               ".buffers");
                    continue;
                }
                used[use.bufferId] = true;
                if (use.read && !initialized[use.bufferId]) {
                    diags.report(
                        DiagId::ReadUninitialized, subj,
                        "reads buffer '" +
                            job.buffers[use.bufferId].name +
                            "' which is neither host-initialised "
                            "nor written by an earlier kernel");
                }
            }
            // Writes become visible to *later* kernels only: a
            // kernel cannot initialise data for its own reads.
            for (const KernelBufferUse &use : kd.buffers) {
                if (use.written && use.bufferId < nBufs)
                    initialized[use.bufferId] = true;
            }

            for (std::size_t dep : kd.dependsOn) {
                if (dep >= nKernels) {
                    Diagnostic &d = diags.report(
                        DiagId::DanglingKernelDep, subj,
                        "depends on kernel index " +
                            std::to_string(dep) + " but the job has " +
                            std::to_string(nKernels) + " kernel(s)");
                    locate(d, ctx.jobKv,
                           "kernel." + std::to_string(k) +
                               ".depends");
                } else if (dep >= k) {
                    // Kernels launch in list order, so any edge to
                    // itself or to a later kernel closes a cycle
                    // with the schedule: the dependency can never be
                    // satisfied.
                    Diagnostic &d = diags.report(
                        DiagId::KernelDepCycle, subj,
                        dep == k
                            ? std::string("depends on itself")
                            : "depends on kernel '" +
                                  job.kernels[dep].name +
                                  "' (index " + std::to_string(dep) +
                                  ") which launches later — the "
                                  "kernel list is the schedule, so "
                                  "this edge is a cycle");
                    locate(d, ctx.jobKv,
                           "kernel." + std::to_string(k) +
                               ".depends");
                }
            }
        }

        for (std::size_t b = 0; b < nBufs; ++b) {
            if (!used[b]) {
                diags.report(DiagId::UnusedBuffer,
                             bufferSubject(ctx, job, b),
                             "declared (" +
                                 bytesStr(job.buffers[b].bytes) +
                                 ") but no kernel reads or writes "
                                 "it");
            } else if (job.buffers[b].bytes == 0) {
                diags.report(DiagId::UnusedBuffer, Severity::Warn,
                             bufferSubject(ctx, job, b),
                             "is declared with 0 bytes");
            }
        }
    }

  private:
    static std::string
    subject(const LintContext &ctx, const std::string &kernel,
            std::size_t idx)
    {
        std::string base =
            ctx.subject.empty() ? "job" : ctx.subject;
        return base + ", kernel '" + kernel + "' (index " +
               std::to_string(idx) + ")";
    }

    static std::string
    bufferSubject(const LintContext &ctx, const Job &job,
                  std::size_t b)
    {
        std::string base =
            ctx.subject.empty() ? "job" : ctx.subject;
        return base + ", buffer '" + job.buffers[b].name + "'";
    }
};

// --- resources: UAL006-008 shared memory, geometry, capacity ---------

class ResourceLimitsPass : public AnalysisPass
{
  public:
    const char *name() const override { return "resources"; }
    const char *
    description() const override
    {
        return "shared-memory footprint, launch geometry and memory "
               "capacities (UAL006-UAL008)";
    }

    void
    run(const LintContext &ctx, DiagnosticEngine &diags) const override
    {
        if (!ctx.job || !ctx.system)
            return;
        const Job &job = *ctx.job;
        const GpuConfig &gpu = ctx.system->gpu;

        for (std::size_t k = 0; k < job.kernels.size(); ++k) {
            const KernelDescriptor &kd = job.kernels[k];
            std::string subj = kernelSubject(ctx, kd.name, k);

            bool geomOk = true;
            if (kd.gridBlocks == 0 || kd.threadsPerBlock == 0) {
                diags.report(DiagId::BadLaunchGeometry, subj,
                             "launch geometry " +
                                 std::to_string(kd.gridBlocks) +
                                 " blocks x " +
                                 std::to_string(kd.threadsPerBlock) +
                                 " threads is empty");
                geomOk = false;
            } else if (kd.threadsPerBlock > gpu.maxThreadsPerSm) {
                diags.report(
                    DiagId::BadLaunchGeometry, subj,
                    "block of " +
                        std::to_string(kd.threadsPerBlock) +
                        " threads exceeds the SM thread capacity " +
                        std::to_string(gpu.maxThreadsPerSm));
                geomOk = false;
            } else if (gpu.warpSize != 0 &&
                       kd.threadsPerBlock % gpu.warpSize != 0) {
                diags.report(
                    DiagId::BadLaunchGeometry, Severity::Warn, subj,
                    std::to_string(kd.threadsPerBlock) +
                        " threads per block is not a multiple of "
                        "the " +
                        std::to_string(gpu.warpSize) +
                        "-thread warp size; the trailing warp runs "
                        "partially empty");
            }

            if (kd.sharedBytesPerBlock > gpu.maxSharedBytes) {
                diags.report(
                    DiagId::SharedOverflow, subj,
                    "tile stage of " +
                        bytesStr(kd.sharedBytesPerBlock) +
                        " per block exceeds the largest legal "
                        "carveout " +
                        bytesStr(gpu.maxSharedBytes));
            } else if (geomOk) {
                Bytes carveout = gpu.defaultSharedCarveout;
                OccupancyResult occ = computeOccupancy(
                    gpu, kd.threadsPerBlock, kd.sharedBytesPerBlock,
                    carveout);
                if (occ.tileScale < 1.0) {
                    diags.report(
                        DiagId::SharedOverflow, Severity::Note, subj,
                        "tile stage of " +
                            bytesStr(kd.sharedBytesPerBlock) +
                            " does not fit the " + bytesStr(carveout) +
                            " default carveout; tiles shrink by " +
                            fmtDouble(occ.tileScale, 3));
                }
                Bytes asyncShared = static_cast<Bytes>(
                    static_cast<double>(kd.sharedBytesPerBlock) *
                    gpu.asyncSharedMemFactor);
                if (kd.sharedBytesPerBlock <= carveout &&
                    asyncShared > carveout) {
                    diags.report(
                        DiagId::SharedOverflow, Severity::Note, subj,
                        "double-buffered async stage (" +
                            bytesStr(asyncShared) +
                            ") exceeds the " + bytesStr(carveout) +
                            " carveout; async modes shrink tiles "
                            "or lose occupancy");
                }
            }
        }

        Bytes footprint = job.footprint();
        Bytes hostCap = ctx.system->host.dimmCount *
                        ctx.system->host.dimmCapacity;
        std::string subj =
            ctx.subject.empty() ? "job" : ctx.subject;
        if (footprint > hostCap) {
            diags.report(DiagId::FootprintOverCapacity, subj,
                         "footprint " + bytesStr(footprint) +
                             " exceeds host DRAM capacity " +
                             bytesStr(hostCap));
        } else if (footprint > ctx.system->deviceMemoryBytes) {
            diags.report(
                DiagId::FootprintOverCapacity, Severity::Warn, subj,
                "footprint " + bytesStr(footprint) +
                    " oversubscribes device memory (" +
                    bytesStr(ctx.system->deviceMemoryBytes) +
                    "): explicit modes cannot allocate; managed "
                    "modes will thrash under eviction");
        }
    }

  private:
    static std::string
    kernelSubject(const LintContext &ctx, const std::string &kernel,
                  std::size_t idx)
    {
        std::string base =
            ctx.subject.empty() ? "job" : ctx.subject;
        return base + ", kernel '" + kernel + "' (index " +
               std::to_string(idx) + ")";
    }
};

// --- patterns: UAL010-012 mixes, fractions, prefetch contradictions --

class PatternConsistencyPass : public AnalysisPass
{
  public:
    const char *name() const override { return "patterns"; }
    const char *
    description() const override
    {
        return "instruction mixes, touched fractions and "
               "prefetcher/pattern consistency (UAL010-UAL012)";
    }

    void
    run(const LintContext &ctx, DiagnosticEngine &diags) const override
    {
        if (!ctx.job)
            return;
        const Job &job = *ctx.job;

        double irregularReadBytes = 0.0;
        double totalReadBytes = 0.0;
        std::string irregularBufs;

        for (std::size_t k = 0; k < job.kernels.size(); ++k) {
            const KernelDescriptor &kd = job.kernels[k];
            std::string subj = kernelSubject(ctx, kd.name, k);

            InstrMix perTile{kd.memPerTile, kd.fpPerTile,
                             kd.intPerTile, kd.ctrlPerTile};
            std::string mixErr = perTile.validate();
            if (!mixErr.empty()) {
                diags.report(DiagId::BadInstructionMix, subj,
                             "per-tile " + mixErr);
            } else if (perTile.total() == 0.0) {
                diags.report(DiagId::BadInstructionMix, subj,
                             "per-tile instruction mix is all zero; "
                             "the kernel would execute nothing");
            }
            if (!(kd.warpsToSaturate > 0.0)) {
                diags.report(DiagId::BadInstructionMix, subj,
                             "warps_to_saturate " +
                                 fmtDouble(kd.warpsToSaturate, 3) +
                                 " must be > 0");
            }
            if (!(kd.asyncComputePenalty > 0.0)) {
                diags.report(DiagId::BadInstructionMix, subj,
                             "async_penalty " +
                                 fmtDouble(kd.asyncComputePenalty,
                                           3) +
                                 " must be > 0");
            } else if (kd.asyncComputePenalty < 1.0) {
                diags.report(
                    DiagId::BadInstructionMix, Severity::Note, subj,
                    "async_penalty " +
                        fmtDouble(kd.asyncComputePenalty, 3) +
                        " < 1 makes the hand-written async variant "
                        "faster than the standard kernel — unusual "
                        "but allowed");
            }

            for (const KernelBufferUse &use : kd.buffers) {
                if (!(use.touchedFraction >= 0.0) ||
                    use.touchedFraction > 1.0) {
                    Diagnostic &d = diags.report(
                        DiagId::BadTouchedFraction, subj,
                        "touched fraction " +
                            fmtDouble(use.touchedFraction, 3) +
                            " of buffer id " +
                            std::to_string(use.bufferId) +
                            " is outside [0, 1]");
                    locate(d, ctx.jobKv,
                           "kernel." + std::to_string(k) +
                               ".buffers");
                }
                if (use.read && use.bufferId < job.buffers.size()) {
                    double bytes =
                        static_cast<double>(
                            job.buffers[use.bufferId].bytes) *
                        std::clamp(use.touchedFraction, 0.0, 1.0);
                    totalReadBytes += bytes;
                    if (patternRegularity(use.pattern) < 0.3) {
                        irregularReadBytes += bytes;
                        std::string name =
                            job.buffers[use.bufferId].name;
                        if (irregularBufs.find("'" + name + "'") ==
                            std::string::npos) {
                            if (!irregularBufs.empty())
                                irregularBufs += ", ";
                            irregularBufs += "'" + name + "'";
                        }
                    }
                }
            }
        }

        std::string subj = ctx.subject.empty() ? "job" : ctx.subject;
        if (ctx.system &&
            ctx.system->uvm.demandPrefetcher != PrefetcherKind::None &&
            totalReadBytes > 0.0 &&
            irregularReadBytes > 0.5 * totalReadBytes) {
            diags.report(
                DiagId::PrefetchMismatch, subj,
                "a " +
                    std::string(ctx.system->uvm.demandPrefetcher ==
                                        PrefetcherKind::Stream
                                    ? "stream"
                                    : "tree") +
                    " demand prefetcher is configured but most read "
                    "traffic walks low-regularity buffers (" +
                    irregularBufs +
                    "); its speculative migrations will mostly be "
                    "wasted");
        }
        if (job.prefetchEachLaunch && job.sequenceRepeats > 1) {
            diags.report(
                DiagId::PrefetchMismatch, Severity::Note, subj,
                "prefetch_each_launch with " +
                    std::to_string(job.sequenceRepeats) +
                    " repeats re-issues cudaMemPrefetchAsync over "
                    "already-resident data; dirty pages churn "
                    "across the link (the paper's nw effect)");
        }
    }

  private:
    static std::string
    kernelSubject(const LintContext &ctx, const std::string &kernel,
                  std::size_t idx)
    {
        std::string base =
            ctx.subject.empty() ? "job" : ctx.subject;
        return base + ", kernel '" + kernel + "' (index " +
               std::to_string(idx) + ")";
    }
};

// --- event-volume: UAL018 runaway-run pre-estimate -------------------

class EventVolumePass : public AnalysisPass
{
  public:
    const char *name() const override { return "event-volume"; }
    const char *
    description() const override
    {
        return "estimated simulation event volume vs the watchdog "
               "ceiling (UAL018)";
    }

    void
    run(const LintContext &ctx, DiagnosticEngine &diags) const override
    {
        if (!ctx.job || !ctx.system)
            return;
        const Job &job = *ctx.job;
        Bytes chunkBytes = ctx.system->uvm.chunkBytes;
        if (chunkBytes == 0 || job.footprint() == 0)
            return;

        // Worst-case UVM fault volume: every chunk of the footprint
        // faults once per sequence repeat (thrash re-faults resident
        // data on each pass). This is the dominant event producer —
        // explicit copies are O(buffers), not O(chunks).
        std::uint64_t chunks =
            (job.footprint() + chunkBytes - 1) / chunkBytes;
        std::uint64_t repeats =
            job.sequenceRepeats ? job.sequenceRepeats : 1;
        std::uint64_t estimate = chunks * repeats;

        std::uint64_t ceiling = ctx.system->watchdog.maxEvents
                                    ? ctx.system->watchdog.maxEvents
                                    : defaultWatchdogMaxEvents;
        if (estimate <= ceiling)
            return;
        std::string subj = ctx.subject.empty() ? "job" : ctx.subject;
        diags.report(
            DiagId::EventVolumeOverCeiling, subj,
            "estimated event volume " + std::to_string(estimate) +
                " (" + std::to_string(chunks) + " chunks x " +
                std::to_string(repeats) +
                " repeats) exceeds the watchdog ceiling " +
                std::to_string(ceiling) +
                "; the watchdog would kill the run as a runaway — "
                "raise watchdog.max_events if this volume is "
                "intentional");
    }
};

// --- kv-keys: UAL013/UAL014 over the model's KV sources --------------

class KvKeysPass : public AnalysisPass
{
  public:
    const char *name() const override { return "kv-keys"; }
    const char *
    description() const override
    {
        return "unknown and shadowed keys in config/job KV sources "
               "(UAL013, UAL014)";
    }

    void
    run(const LintContext &ctx, DiagnosticEngine &diags) const override
    {
        if (ctx.systemKv) {
            checkKvKeys(*ctx.systemKv, knownSystemConfigKeys(),
                        "system config", diags);
        }
        if (ctx.jobKv) {
            checkKvKeys(*ctx.jobKv, knownJobFileKeys(*ctx.jobKv),
                        "job description", diags);
        }
    }
};

// --- cost-advisor: UAL019..UAL024 from the static cost model ---------

/** The kernel timing model asserts on geometry the structural passes
 * flag as errors; the advisor only runs on models it can price. */
bool
costModelApplicable(const Job &job, const SystemConfig &sys)
{
    if (job.buffers.empty() || job.kernels.empty())
        return false;
    for (const KernelDescriptor &kd : job.kernels) {
        if (kd.gridBlocks == 0 || kd.threadsPerBlock == 0 ||
            kd.threadsPerBlock > sys.gpu.maxThreadsPerSm ||
            kd.warpsToSaturate <= 0.0 || kd.asyncComputePenalty <= 0.0)
            return false;
        for (const KernelBufferUse &use : kd.buffers) {
            if (use.bufferId >= job.buffers.size())
                return false;
        }
    }
    return true;
}

class CostAdvisorPass : public AnalysisPass
{
  public:
    const char *name() const override { return "cost-advisor"; }
    const char *
    description() const override
    {
        return "static cost-model advisories: thrash, dominated "
               "mode, dead writes, chunk waste, prefetch mismatch, "
               "event volume (UAL019-UAL024)";
    }

    void
    run(const LintContext &ctx, DiagnosticEngine &diags) const override
    {
        // The advisor runs last in the pipeline: a model the
        // structural passes already rejected (or one the guard below
        // cannot price) gets no advisories — the timing model would
        // assert on it.
        if (!ctx.job || !ctx.system || diags.hasErrors() ||
            !costModelApplicable(*ctx.job, *ctx.system))
            return;
        const SystemConfig &sys = *ctx.system;
        const Job &job = *ctx.job;
        CostReport rep = analyzeCost(sys, job);
        const DataflowSummary &flow = rep.flow;
        std::string subj = ctx.subject.empty() ? "job" : ctx.subject;

        // UAL019: the demanded working set cannot stay resident.
        if (flow.touchedOversubscription > 1.0) {
            const ModeCost &uvm = rep.mode(TransferMode::Uvm);
            diags.report(
                DiagId::PredictedThrash, subj,
                "demanded working set " +
                    bytesStr(flow.touchedFootprintBytes) + " is " +
                    fmtDouble(flow.touchedOversubscription, 2) +
                    "x device memory (" +
                    bytesStr(flow.deviceCapacity) +
                    "); the cost model predicts " +
                    std::to_string(uvm.faults) +
                    " demand faults of cyclic re-migration under "
                    "uvm");
        }

        // UAL020: the mode about to run is predicted dominated.
        if (ctx.mode) {
            constexpr double dominatedRatio = 1.25;
            const ModeCost &sel = rep.mode(*ctx.mode);
            const ModeCost &best = rep.mode(rep.bestMode);
            if (best.overallPs() > 0.0 &&
                sel.overallPs() >
                    best.overallPs() * dominatedRatio) {
                diags.report(
                    DiagId::DominatedModeSelection, subj,
                    std::string("mode ") +
                        transferModeName(*ctx.mode) +
                        " is predicted " +
                        fmtTime(sel.overallPs()) + " overall, but " +
                        transferModeName(rep.bestMode) +
                        " is predicted " +
                        fmtTime(best.overallPs()) + " (" +
                        fmtDouble(sel.overallPs() /
                                      best.overallPs(), 2) +
                        "x faster)");
            }
        }

        for (const BufferFlow &bf : flow.buffers) {
            // UAL021: written data nothing ever observes.
            if (bf.deadAfterLastWrite) {
                diags.report(
                    DiagId::DeadBufferWrite, subj + "/" + bf.name,
                    "buffer is written by kernel " +
                        std::to_string(bf.lastWriteKernel) +
                        " but is neither host-consumed nor read "
                        "afterwards; the writes (and any writeback "
                        "of " + bytesStr(bf.bytes) +
                        ") are dead traffic");
            }

            // UAL022: chunk rounding migrates far more than touched.
            constexpr double wasteRatio = 2.0;
            const Bytes wasteFloor = mib(16);
            if (bf.demandedBytes >
                    static_cast<Bytes>(
                        static_cast<double>(bf.touchedBytes) *
                        wasteRatio) &&
                bf.demandedBytes - bf.touchedBytes >= wasteFloor) {
                diags.report(
                    DiagId::ChunkGeometryWaste,
                    subj + "/" + bf.name,
                    "accesses touch " + bytesStr(bf.touchedBytes) +
                        " but demand-migrate " +
                        bytesStr(bf.demandedBytes) + " (" +
                        bytesStr(static_cast<double>(
                            flow.chunkBytes)) +
                        " chunks round sparse touches up " +
                        fmtDouble(static_cast<double>(
                                      bf.demandedBytes) /
                                      std::max<double>(
                                          1.0,
                                          static_cast<double>(
                                              bf.touchedBytes)),
                                  1) +
                        "x)");
            }
        }

        // UAL023: prefetch policy vs computed reuse distance.
        if (job.prefetchEachLaunch &&
            flow.footprint <= flow.deviceCapacity &&
            flow.repeats * flow.launchesPerPass > 1) {
            Bytes churn =
                rep.mode(TransferMode::UvmPrefetch).migrationBytes;
            diags.report(
                DiagId::PrefetchReuseMismatch, subj,
                "prefetch_each_launch re-prefetches data whose "
                "reuse distance fits device memory; under "
                "uvm_prefetch the cost model predicts " +
                    bytesStr(churn) +
                    " of migration traffic where one upfront "
                    "prefetch would settle for " +
                    bytesStr(flow.hostInitBytes));
        }
        if (sys.uvm.demandPrefetcher != PrefetcherKind::None) {
            for (const BufferFlow &bf : flow.buffers) {
                if (bf.reuseDistanceBytes <= flow.deviceCapacity ||
                    bf.usesPerPass == 0)
                    continue;
                diags.report(
                    DiagId::PrefetchReuseMismatch,
                    subj + "/" + bf.name,
                    "the demand prefetcher speculatively migrates "
                    "this buffer, but its reuse distance " +
                        bytesStr(bf.reuseDistanceBytes) +
                        " exceeds device memory — prefetched "
                        "chunks are evicted before reuse");
            }
        }

        // UAL024: predicted (not worst-case) event volume vs the
        // watchdog ceiling; UAL018 covers the over-ceiling case.
        std::uint64_t ceiling = sys.watchdog.maxEvents
                                    ? sys.watchdog.maxEvents
                                    : defaultWatchdogMaxEvents;
        std::uint64_t maxEvents = 0;
        TransferMode maxMode = TransferMode::Standard;
        for (TransferMode m : allTransferModes) {
            if (rep.mode(m).predictedEvents > maxEvents) {
                maxEvents = rep.mode(m).predictedEvents;
                maxMode = m;
            }
        }
        if (maxEvents * 2 > ceiling && maxEvents <= ceiling) {
            diags.report(
                DiagId::PredictedEventVolume, subj,
                std::string("the cost model predicts ") +
                    std::to_string(maxEvents) +
                    " watchdog-visible events under " +
                    transferModeName(maxMode) +
                    ", within 2x of the ceiling " +
                    std::to_string(ceiling) +
                    "; headroom this thin risks a mid-sweep "
                    "PointTimeout");
        }
    }
};

} // namespace

void
PassManager::add(std::unique_ptr<AnalysisPass> pass)
{
    passes_.push_back(std::move(pass));
}

void
PassManager::run(const LintContext &ctx, DiagnosticEngine &diags,
                 const std::vector<std::string> &only) const
{
    for (const auto &pass : passes_) {
        if (!only.empty() &&
            std::find(only.begin(), only.end(), pass->name()) ==
                only.end())
            continue;
        pass->run(ctx, diags);
    }
}

std::vector<std::string>
PassManager::names() const
{
    std::vector<std::string> out;
    out.reserve(passes_.size());
    for (const auto &pass : passes_)
        out.push_back(pass->name());
    return out;
}

PassManager
PassManager::standardPipeline()
{
    PassManager pm;
    pm.add(std::make_unique<SystemConfigPass>());
    pm.add(std::make_unique<KvKeysPass>());
    pm.add(std::make_unique<KernelGraphPass>());
    pm.add(std::make_unique<ResourceLimitsPass>());
    pm.add(std::make_unique<PatternConsistencyPass>());
    pm.add(std::make_unique<EventVolumePass>());
    pm.add(std::make_unique<CostAdvisorPass>());
    return pm;
}

void
checkKvKeys(const KvConfig &kv,
            const std::set<std::string> &knownKeys,
            const std::string &scope, DiagnosticEngine &diags)
{
    std::vector<std::string> candidates(knownKeys.begin(),
                                        knownKeys.end());
    for (const std::string &key : kv.keys()) {
        if (knownKeys.count(key))
            continue;
        std::string suggestion = closestKey(key, candidates);
        Diagnostic &d = diags.report(
            DiagId::UnknownConfigKey, scope,
            "unknown key '" + key + "'" +
                (suggestion.empty()
                     ? ""
                     : " — did you mean '" + suggestion + "'?"));
        if (!suggestion.empty())
            d.hint = "replace '" + key + "' with '" + suggestion +
                     "' (or remove it)";
        d.loc.file = kv.sourceName();
        d.loc.line = kv.lineOf(key);
    }
    for (const KvShadowedKey &dup : kv.shadowedKeys()) {
        Diagnostic &d = diags.report(
            DiagId::ShadowedConfigKey, scope,
            "key '" + dup.key + "' assigned on line " +
                std::to_string(dup.firstLine) +
                " is shadowed by the assignment on line " +
                std::to_string(dup.line));
        d.loc.file = kv.sourceName();
        d.loc.line = dup.line;
    }
}

std::set<std::string>
knownJobFileKeys(const KvConfig &kv)
{
    std::set<std::string> known = {
        "job.name",
        "job.repeats",
        "job.prefetch_each_launch",
    };
    static const char *bufferKeys[] = {"name", "bytes", "kib", "mib",
                                       "gib", "host_init",
                                       "host_consumed"};
    static const char *kernelKeys[] = {
        "name",          "blocks",           "threads",
        "total_load_mib", "shared_kib",      "flops_per_element",
        "ints_per_element", "ctrl_per_element", "store_ratio",
        "warps_to_saturate", "async_penalty", "buffers",
        "depends"};

    // Sections are numbered contiguously from 0; accept keys for
    // exactly the sections that exist so buffer.7.name on a 2-buffer
    // job is flagged instead of silently ignored.
    for (std::size_t i = 0;; ++i) {
        std::string prefix = "buffer." + std::to_string(i);
        if (!kv.has(prefix + ".name"))
            break;
        for (const char *key : bufferKeys)
            known.insert(prefix + "." + key);
    }
    for (std::size_t i = 0;; ++i) {
        std::string prefix = "kernel." + std::to_string(i);
        if (!kv.has(prefix + ".name"))
            break;
        for (const char *key : kernelKeys)
            known.insert(prefix + "." + key);
    }
    return known;
}

} // namespace uvmasync
