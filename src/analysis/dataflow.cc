#include "analysis/dataflow.hh"

#include <algorithm>
#include <cmath>

namespace uvmasync
{

namespace
{

/** Knuth multiplicative hash onto [0, n) — must stay identical to
 * the executor's block/chunk mapping (gpu/kernel_executor.cc). */
std::uint64_t
permuteIndex(std::uint64_t i, std::uint64_t n)
{
    if (n <= 1)
        return 0;
    return (i * 2654435761ull + 0x9e3779b9ull) % n;
}

/** Beyond this many per-use block iterations the hashed patterns
 * fall back to a closed-form coverage estimate instead of exact
 * replication (mega 1D grids run to tens of millions of blocks). */
constexpr std::uint64_t exactMappingBudget = 1ull << 22;

Bytes
chunkSize(Bytes bufferBytes, Bytes chunkBytes, std::uint64_t c,
          std::uint64_t chunks)
{
    if (c + 1 < chunks)
        return chunkBytes;
    return bufferBytes - (chunks - 1) * chunkBytes;
}

std::uint64_t
touchedChunksOf(const KernelBufferUse &use, std::uint64_t chunks)
{
    double tf = std::clamp(use.touchedFraction, 0.0, 1.0);
    return static_cast<std::uint64_t>(
        std::ceil(static_cast<double>(chunks) * tf));
}

/**
 * Mark the chunks one launch of @p kd demands through @p use into
 * @p bits, replicating KernelExecutor::requestGroup's block-to-chunk
 * mapping: sequential walks demand the touched prefix, irregular
 * walks permute the block-to-span assignment, random walks permute
 * chunk indices inside the touched prefix.
 */
void
markDemanded(std::vector<std::uint8_t> &bits,
             const KernelBufferUse &use, std::uint64_t gridBlocks,
             std::uint64_t chunks)
{
    std::uint64_t touched = touchedChunksOf(use, chunks);
    if (touched == 0)
        return;
    std::uint64_t blocks = std::max<std::uint64_t>(1, gridBlocks);

    auto markPrefix = [&](std::uint64_t n) {
        n = std::min(n, touched);
        std::fill(bits.begin(),
                  bits.begin() + static_cast<std::ptrdiff_t>(n), 1);
    };

    if (use.pattern == AccessPattern::Sequential) {
        // Block spans partition [0, touched); union is the prefix.
        markPrefix(touched);
        return;
    }

    if (std::max(blocks, touched) <= exactMappingBudget) {
        for (std::uint64_t b = 0; b < blocks; ++b) {
            std::uint64_t pos = b;
            if (use.pattern == AccessPattern::Irregular)
                pos = permuteIndex(b, blocks);
            std::uint64_t lo = pos * touched / blocks;
            std::uint64_t hi = (pos + 1) * touched / blocks;
            if (hi <= lo)
                hi = lo + 1;
            for (std::uint64_t c = lo; c < hi && c < chunks; ++c) {
                std::uint64_t chunk = c;
                if (use.pattern == AccessPattern::Random)
                    chunk = permuteIndex(c * blocks + b, touched);
                bits[chunk] = 1;
            }
        }
        return;
    }

    // Closed-form coverage for giant grids; both estimates stay pure
    // functions of the descriptor, so the analysis is deterministic.
    double t = static_cast<double>(touched);
    double bl = static_cast<double>(blocks);
    double covered = t;
    if (use.pattern == AccessPattern::Random) {
        // R requests hash-distributed over the touched prefix.
        double requests = std::max(t, bl);
        covered = t * (1.0 - std::exp(-requests / t));
    } else {
        // Irregular: distinct block positions under the same hash,
        // each owning a span of the prefix.
        double distinctPos = bl * (1.0 - std::exp(-1.0));
        if (blocks <= touched)
            covered = t * distinctPos / bl;
        else
            covered = t * (1.0 - std::exp(-distinctPos / t));
    }
    markPrefix(static_cast<std::uint64_t>(std::ceil(covered)));
}

Bytes
markedBytes(const std::vector<std::uint8_t> &bits, Bytes bufferBytes,
            Bytes chunkBytes)
{
    std::uint64_t chunks = bits.size();
    Bytes total = 0;
    for (std::uint64_t c = 0; c < chunks; ++c) {
        if (!bits[c])
            continue;
        total += chunkSize(bufferBytes, chunkBytes, c, chunks);
    }
    return total;
}

} // namespace

DataflowSummary
analyzeDataflow(const SystemConfig &system, const Job &job)
{
    DataflowSummary out;
    out.repeats = job.sequenceRepeats ? job.sequenceRepeats : 1;
    out.launchesPerPass = job.kernels.size();
    out.footprint = job.footprint();
    out.hostInitBytes = job.hostInitBytes();
    out.hostConsumedBytes = job.hostConsumedBytes();
    out.deviceCapacity = system.deviceMemoryBytes;
    out.chunkBytes = system.uvm.chunkBytes ? system.uvm.chunkBytes
                                           : kib(256);

    out.buffers.resize(job.buffers.size());
    for (std::size_t i = 0; i < job.buffers.size(); ++i) {
        BufferFlow &bf = out.buffers[i];
        bf.id = i;
        bf.name = job.buffers[i].name;
        bf.bytes = job.buffers[i].bytes;
        bf.hostInit = job.buffers[i].hostInit;
        bf.hostConsumed = job.buffers[i].hostConsumed;
        bf.chunkCount =
            bf.bytes ? (bf.bytes + out.chunkBytes - 1) / out.chunkBytes
                     : 0;
        if (!bf.hostInit)
            out.populateBytes += bf.bytes;
    }

    // Union-of-demanded bitmap per buffer, built kernel by kernel in
    // launch order so first-demand attribution falls out of the walk.
    std::vector<std::vector<std::uint8_t>> unionBits(
        job.buffers.size());
    for (std::size_t i = 0; i < job.buffers.size(); ++i)
        unionBits[i].assign(out.buffers[i].chunkCount, 0);

    out.kernels.resize(job.kernels.size());
    std::vector<std::uint8_t> scratch;
    for (std::size_t ki = 0; ki < job.kernels.size(); ++ki) {
        const KernelDescriptor &kd = job.kernels[ki];
        KernelFlow &kf = out.kernels[ki];
        kf.name = kd.name;
        kf.chunksByBuffer.assign(job.buffers.size(), 0);
        kf.newChunksByBuffer.assign(job.buffers.size(), 0);
        kf.newBytesByBuffer.assign(job.buffers.size(), 0);

        // Distinct chunks this kernel demands, per buffer (several
        // uses of one buffer share residency within a launch).
        std::vector<std::vector<std::size_t>> usesByBuffer(
            job.buffers.size());
        for (std::size_t ui = 0; ui < kd.buffers.size(); ++ui) {
            const KernelBufferUse &use = kd.buffers[ui];
            if (use.bufferId >= job.buffers.size())
                continue; // UAL001 territory; dataflow stays total
            BufferFlow &bf = out.buffers[use.bufferId];
            double tf = std::clamp(use.touchedFraction, 0.0, 1.0);
            bf.usesPerPass += 1;
            bf.read = bf.read || use.read;
            bf.written = bf.written || use.written;
            int k = static_cast<int>(ki);
            if (bf.firstUseKernel < 0)
                bf.firstUseKernel = k;
            bf.lastUseKernel = k;
            if (use.read)
                bf.lastReadKernel = k;
            if (use.written)
                bf.lastWriteKernel = k;
            bf.maxTouchedFraction =
                std::max(bf.maxTouchedFraction, tf);
            kf.workingSetBytes += static_cast<Bytes>(
                static_cast<double>(bf.bytes) * tf);
            if (tf > 0.0)
                usesByBuffer[use.bufferId].push_back(ui);
        }

        for (std::size_t bi = 0; bi < job.buffers.size(); ++bi) {
            if (usesByBuffer[bi].empty())
                continue;
            BufferFlow &bf = out.buffers[bi];
            if (bf.chunkCount == 0)
                continue;
            scratch.assign(bf.chunkCount, 0);
            for (std::size_t ui : usesByBuffer[bi]) {
                markDemanded(scratch, kd.buffers[ui], kd.gridBlocks,
                             bf.chunkCount);
            }
            for (std::uint64_t c = 0; c < bf.chunkCount; ++c) {
                if (!scratch[c])
                    continue;
                ++kf.demandRequests;
                ++kf.chunksByBuffer[bi];
                ++bf.requestChunksPerPass;
                Bytes csz = chunkSize(bf.bytes, out.chunkBytes, c,
                                      bf.chunkCount);
                kf.demandChunkBytes += csz;
                bf.requestBytesPerPass += csz;
                if (!unionBits[bi][c]) {
                    unionBits[bi][c] = 1;
                    ++kf.newDemandChunks;
                    kf.newDemandBytes += csz;
                    ++kf.newChunksByBuffer[bi];
                    kf.newBytesByBuffer[bi] += csz;
                    if (bf.hostInit) {
                        ++kf.newDemandChunksHostInit;
                        kf.newDemandBytesHostInit += csz;
                    }
                }
            }
        }
        out.peakWorkingSetBytes =
            std::max(out.peakWorkingSetBytes, kf.workingSetBytes);
    }

    for (std::size_t i = 0; i < job.buffers.size(); ++i) {
        BufferFlow &bf = out.buffers[i];
        for (std::uint64_t c = 0; c < bf.chunkCount; ++c) {
            if (!unionBits[i][c])
                continue;
            ++bf.demandedChunks;
        }
        bf.demandedBytes =
            markedBytes(unionBits[i], bf.bytes, out.chunkBytes);
        bf.touchedBytes = static_cast<Bytes>(
            static_cast<double>(bf.bytes) * bf.maxTouchedFraction);
        out.touchedFootprintBytes += bf.demandedBytes;
        if (bf.hostInit)
            out.demandFootprintBytes += bf.demandedBytes;

        // Reuse distance: widest gap of other launches' working
        // sets between consecutive uses (wrapping across passes).
        std::vector<std::size_t> useKernels;
        for (std::size_t ki = 0; ki < job.kernels.size(); ++ki) {
            for (const KernelBufferUse &use :
                 job.kernels[ki].buffers) {
                if (use.bufferId == i) {
                    useKernels.push_back(ki);
                    break;
                }
            }
        }
        bool reused = useKernels.size() > 1 ||
                      (!useKernels.empty() && out.repeats > 1);
        if (reused) {
            Bytes maxGap = 0;
            for (std::size_t u = 0; u + 1 < useKernels.size(); ++u) {
                Bytes gap = 0;
                for (std::size_t ki = useKernels[u] + 1;
                     ki < useKernels[u + 1]; ++ki)
                    gap += out.kernels[ki].workingSetBytes;
                maxGap = std::max(maxGap, gap);
            }
            if (out.repeats > 1 && !useKernels.empty()) {
                Bytes wrap = 0;
                for (std::size_t ki = useKernels.back() + 1;
                     ki < job.kernels.size(); ++ki)
                    wrap += out.kernels[ki].workingSetBytes;
                for (std::size_t ki = 0; ki < useKernels.front();
                     ++ki)
                    wrap += out.kernels[ki].workingSetBytes;
                maxGap = std::max(maxGap, wrap);
            }
            bf.reuseDistanceBytes = maxGap;
        }

        // Dead store: the written data is never observed — no host
        // consumption and no later read (a repeat of the sequence
        // re-reads every buffer the sequence reads at all).
        if (bf.written && !bf.hostConsumed) {
            bool readAfterWrite =
                bf.read && (out.repeats > 1 ||
                            bf.lastReadKernel > bf.lastWriteKernel);
            bf.deadAfterLastWrite = !readAfterWrite;
        }
    }

    if (out.deviceCapacity > 0) {
        out.oversubscription =
            static_cast<double>(out.footprint) /
            static_cast<double>(out.deviceCapacity);
        out.touchedOversubscription =
            static_cast<double>(out.touchedFootprintBytes) /
            static_cast<double>(out.deviceCapacity);
    }
    if (out.footprint > 0) {
        double ws = 0.0;
        for (const KernelFlow &kf : out.kernels)
            ws += static_cast<double>(kf.workingSetBytes);
        out.accessDensity = ws / static_cast<double>(out.footprint);
    }
    return out;
}

} // namespace uvmasync
