/**
 * @file
 * Closed-form per-mode cost model on top of the static dataflow walk
 * (analysis/dataflow.hh): predicted H2D/D2H traffic, demand faults
 * and fault batches, migration traffic, and the paper's three-part
 * time breakdown (alloc + transfer + kernel = overall) for every
 * transfer mode — before anything is simulated.
 *
 * The model mirrors Device::run phase by phase: the allocator charge
 * formula, the per-kind PCIe efficiency/latency arithmetic, the
 * migration engine's chunk/residency semantics (populate, demand,
 * bulk prefetch, per-launch churn, end-of-job writeback of resident
 * dirty chunks), and the kernel executor's resident-data wave
 * schedule (via KernelExecutor::estimateResident, so kernel timing
 * has a single source of truth). Its honesty is enforced by the
 * registry-wide cross-validation suite (tests/test_cost_model.cc)
 * and the committed accuracy summary it gates.
 */

#ifndef UVMASYNC_ANALYSIS_COST_MODEL_HH
#define UVMASYNC_ANALYSIS_COST_MODEL_HH

#include <array>
#include <cstdint>
#include <string>

#include "analysis/dataflow.hh"
#include "gpu/transfer_mode.hh"

namespace uvmasync
{

/** Predicted cost of running the job under one transfer mode. */
struct ModeCost
{
    TransferMode mode = TransferMode::Standard;

    /** Payload bytes over the link (what RunCounters reports). */
    Bytes h2dBytes = 0;
    Bytes d2hBytes = 0;

    /** Demand far faults and their batched servicing. */
    std::uint64_t faults = 0;
    std::uint64_t faultBatches = 0;

    /** UVM-managed traffic: demand + prefetch + churn + writeback. */
    Bytes migrationBytes = 0;

    /** The paper's breakdown (TimeBreakdown semantics). */
    double allocPs = 0.0;
    double transferPs = 0.0;
    double kernelPs = 0.0;
    double overallPs() const { return allocPs + transferPs + kernelPs; }

    /** Watchdog-visible events (link transfers + evictions). */
    std::uint64_t predictedEvents = 0;

    /** Working set exceeds capacity: steady-state re-faulting. */
    bool thrash = false;
};

/** Full advisor verdict for one job. */
struct CostReport
{
    DataflowSummary flow;

    /** Indexed by TransferMode enumeration order. */
    std::array<ModeCost, allTransferModes.size()> modes;

    /** Cheapest predicted mode overall. */
    TransferMode bestMode = TransferMode::Standard;

    /** Cheapest of the explicit-copy family (standard/async). */
    TransferMode bestExplicit = TransferMode::Standard;

    /** Cheapest of the managed family (uvm*). */
    TransferMode bestUvm = TransferMode::Uvm;

    /** Predicted async overall / predicted uvm overall: > 1 means
     * uvm wins the paper's headline comparison. */
    double asyncOverUvm = 1.0;

    const ModeCost &
    mode(TransferMode m) const
    {
        return modes[static_cast<std::size_t>(m)];
    }
};

/**
 * Run the full static cost analysis. Pure and deterministic: never
 * mutates the system config or job, consults no clock or RNG beyond
 * the seeded cache sampling shared with the simulator.
 */
CostReport analyzeCost(const SystemConfig &system, const Job &job);

/**
 * Render the --analyze cost table (one row per mode) plus the
 * advisor verdict line, matching the CLI report style.
 */
std::string renderCostReport(const CostReport &report,
                             const std::string &subject);

} // namespace uvmasync

#endif // UVMASYNC_ANALYSIS_COST_MODEL_HH
