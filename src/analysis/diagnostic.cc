#include "analysis/diagnostic.hh"

#include <algorithm>
#include <sstream>

#include "common/logging.hh"

namespace uvmasync
{

const char *
severityName(Severity s)
{
    switch (s) {
      case Severity::Note:
        return "note";
      case Severity::Warn:
        return "warn";
      case Severity::Error:
        return "error";
    }
    return "?";
}

namespace
{

constexpr std::array<DiagSpec, diagIdCount> specs = {{
    {DiagId::DanglingBufferRef, "UAL001", Severity::Error,
     "kernel references a buffer id the job does not declare",
     "declare the buffer in the job's buffer list or fix the "
     "kernel's bufferId"},
    {DiagId::KernelDepCycle, "UAL002", Severity::Error,
     "kernel dependency graph contains a cycle",
     "remove the circular depends-on edge; kernels must form a DAG "
     "(an empty depends list means 'after the previous kernel')"},
    {DiagId::DanglingKernelDep, "UAL003", Severity::Error,
     "kernel depends on a kernel index that does not exist",
     "point depends-on entries at indices 0..kernelCount-1"},
    {DiagId::UnusedBuffer, "UAL004", Severity::Warn,
     "buffer is declared but no kernel reads or writes it",
     "drop the buffer or add it to a kernel's buffer-use list; it "
     "still costs allocation and (if host-initialised) copy time"},
    {DiagId::ReadUninitialized, "UAL005", Severity::Warn,
     "kernel reads a buffer that nothing initialises",
     "set host_init = true or write the buffer from an earlier "
     "kernel"},
    {DiagId::SharedOverflow, "UAL006", Severity::Error,
     "shared-memory tile footprint exceeds the SM partition",
     "shrink the tile (sharedBytesPerBlock) or raise the carveout; "
     "the largest legal A100 carveout is 164 KiB per SM"},
    {DiagId::BadLaunchGeometry, "UAL007", Severity::Error,
     "launch geometry violates device occupancy limits",
     "use 1..maxThreadsPerSm threads per block (a multiple of the "
     "32-thread warp size) and a non-zero grid"},
    {DiagId::FootprintOverCapacity, "UAL008", Severity::Error,
     "job footprint exceeds a memory capacity",
     "shrink the input size class, or use a managed (uvm*) mode for "
     "device oversubscription; host DRAM can never oversubscribe"},
    {DiagId::BadPageGeometry, "UAL009", Severity::Error,
     "page/chunk size or alignment is inconsistent",
     "make uvm.chunk_kib a power-of-two multiple of the 4 KiB GPU "
     "page size (the driver migrates whole basic blocks)"},
    {DiagId::PrefetchMismatch, "UAL010", Severity::Warn,
     "prefetcher mode contradicts the declared access regularity",
     "disable the prefetcher (uvm.demand_prefetcher = none) for "
     "random/irregular walks, or re-declare the buffer pattern"},
    {DiagId::BadInstructionMix, "UAL011", Severity::Error,
     "kernel instruction mix is invalid",
     "per-tile instruction counts must be finite and >= 0 with a "
     "non-zero total; warps_to_saturate and async_penalty must be "
     "> 0"},
    {DiagId::BadTouchedFraction, "UAL012", Severity::Error,
     "buffer-use touched fraction is outside [0, 1]",
     "touched_fraction is the share of the buffer the kernel "
     "touches; use a value in [0, 1]"},
    {DiagId::UnknownConfigKey, "UAL013", Severity::Error,
     "config key is not recognised",
     "fix the typo (see the suggestion) or remove the key; unknown "
     "keys would otherwise silently fall back to defaults"},
    {DiagId::ShadowedConfigKey, "UAL014", Severity::Warn,
     "config key is assigned more than once; the last value wins",
     "delete the earlier assignment or rename one of the keys"},
    {DiagId::BadSystemParam, "UAL015", Severity::Error,
     "system configuration parameter is out of its legal range",
     "counts and capacities must be non-zero, bandwidths positive, "
     "efficiencies in (0, 1], and noise CVs >= 0"},
    {DiagId::BadInjectParam, "UAL016", Severity::Error,
     "fault-injection plan parameter is malformed",
     "rates/probabilities must be in [0, 1], factors >= 1, durations "
     "and counts >= 0, and window_end_us must be past "
     "window_start_us (0 = open-ended)"},
    {DiagId::InertInjectPlan, "UAL017", Severity::Note,
     "fault-injection plan is valid but perturbs nothing",
     "every rate is 0 and every factor is 1; raise at least one "
     "inject.* knob, or drop --inject for a clean run"},
    {DiagId::EventVolumeOverCeiling, "UAL018", Severity::Note,
     "estimated event volume exceeds the default watchdog ceiling",
     "the run would be killed as a runaway before it finishes; "
     "raise watchdog.max_events (or shrink the job) if the volume "
     "is intentional"},
    {DiagId::PredictedThrash, "UAL019", Severity::Warn,
     "predicted oversubscription thrash: the demanded working set "
     "exceeds device memory",
     "the cost model predicts cyclic re-faulting under every uvm "
     "mode; shrink the size class, raise device_memory_gib, or "
     "accept the slowdown knowingly"},
    {DiagId::DominatedModeSelection, "UAL020", Severity::Note,
     "selected transfer mode is predicted to be dominated",
     "another mode is predicted materially faster for this job; see "
     "`uvmasync-lint --analyze` for the per-mode cost table"},
    {DiagId::DeadBufferWrite, "UAL021", Severity::Warn,
     "buffer is written but the data is never observed",
     "no later kernel reads the buffer and the host never consumes "
     "it; set host_consumed = true, read it downstream, or drop the "
     "write to save transfer and writeback traffic"},
    {DiagId::ChunkGeometryWaste, "UAL022", Severity::Note,
     "sparse accesses migrate far more bytes than they touch",
     "the touched fraction rounds up to whole migration chunks; "
     "shrink uvm.chunk_kib, densify the access pattern, or use an "
     "explicit-copy mode that moves the buffer once"},
    {DiagId::PrefetchReuseMismatch, "UAL023", Severity::Note,
     "prefetch policy contradicts the computed reuse distance",
     "re-prefetching data whose reuse distance fits device memory "
     "is pure churn (disable prefetch_each_launch); prefetching "
     "data evicted before reuse wastes bandwidth (drop the "
     "prefetcher or shrink the working set)"},
    {DiagId::PredictedEventVolume, "UAL024", Severity::Warn,
     "predicted event volume risks the watchdog ceiling",
     "the cost model predicts this run's event count lands within "
     "2x of watchdog.max_events; raise the ceiling or shrink the "
     "job before a mid-sweep PointTimeout wastes the campaign"},
}};

} // namespace

const DiagSpec &
diagSpec(DiagId id)
{
    std::size_t idx = static_cast<std::size_t>(id);
    UVMASYNC_ASSERT(idx < specs.size(), "bad DiagId %zu", idx);
    return specs[idx];
}

const std::array<DiagSpec, diagIdCount> &
allDiagSpecs()
{
    return specs;
}

bool
parseDiagCode(const std::string &code, DiagId &out)
{
    for (const DiagSpec &spec : specs) {
        if (code == spec.code) {
            out = spec.id;
            return true;
        }
    }
    return false;
}

std::string
SourceLoc::toString() const
{
    if (!valid())
        return "";
    return line > 0 ? file + ":" + std::to_string(line) : file;
}

std::string
Diagnostic::format() const
{
    std::ostringstream oss;
    if (loc.valid())
        oss << loc.toString() << ": ";
    oss << severityName(severity) << "[" << code() << "]";
    if (!subject.empty())
        oss << " " << subject;
    oss << ": " << message;
    const std::string &fix = hint.empty() ? diagSpec(id).hint : hint;
    oss << " (fix: " << fix << ")";
    return oss.str();
}

Diagnostic &
DiagnosticEngine::report(DiagId id, std::string subject,
                         std::string message)
{
    return report(id, diagSpec(id).severity, std::move(subject),
                  std::move(message));
}

Diagnostic &
DiagnosticEngine::report(DiagId id, Severity severity,
                         std::string subject, std::string message)
{
    Diagnostic d;
    d.id = id;
    d.severity = severity;
    d.subject = std::move(subject);
    d.message = std::move(message);
    diags_.push_back(std::move(d));
    return diags_.back();
}

std::size_t
DiagnosticEngine::count(Severity s) const
{
    return static_cast<std::size_t>(std::count_if(
        diags_.begin(), diags_.end(),
        [s](const Diagnostic &d) { return d.severity == s; }));
}

std::size_t
DiagnosticEngine::count(DiagId id) const
{
    return static_cast<std::size_t>(std::count_if(
        diags_.begin(), diags_.end(),
        [id](const Diagnostic &d) { return d.id == id; }));
}

std::string
DiagnosticEngine::formatAll() const
{
    // Errors first, then warnings, then notes; stable within a
    // severity so findings stay in pass order.
    std::vector<const Diagnostic *> sorted;
    sorted.reserve(diags_.size());
    for (const Diagnostic &d : diags_)
        sorted.push_back(&d);
    std::stable_sort(sorted.begin(), sorted.end(),
                     [](const Diagnostic *a, const Diagnostic *b) {
                         return static_cast<int>(a->severity) >
                                static_cast<int>(b->severity);
                     });
    std::ostringstream oss;
    for (const Diagnostic *d : sorted)
        oss << d->format() << "\n";
    return oss.str();
}

std::string
DiagnosticEngine::summary() const
{
    std::size_t errors = count(Severity::Error);
    std::size_t warns = count(Severity::Warn);
    std::size_t notes = count(Severity::Note);
    std::ostringstream oss;
    oss << errors << (errors == 1 ? " error, " : " errors, ") << warns
        << (warns == 1 ? " warning, " : " warnings, ") << notes
        << (notes == 1 ? " note" : " notes");
    return oss.str();
}

void
DiagnosticEngine::merge(const DiagnosticEngine &other)
{
    diags_.insert(diags_.end(), other.diags_.begin(),
                  other.diags_.end());
}

} // namespace uvmasync
