/**
 * @file
 * Static-analysis passes over a fully-loaded simulation model.
 *
 * A pass inspects the SystemConfig and/or a Job *without running it*
 * and reports Diagnostics; the PassManager owns a pipeline of passes
 * and runs them in registration order. All the checks here are pure
 * functions of the model — no simulation state is created, so a full
 * lint of the 21-workload registry takes milliseconds.
 */

#ifndef UVMASYNC_ANALYSIS_PASSES_HH
#define UVMASYNC_ANALYSIS_PASSES_HH

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "analysis/diagnostic.hh"
#include "common/kv_config.hh"
#include "gpu/transfer_mode.hh"
#include "runtime/job.hh"
#include "runtime/system_config.hh"

namespace uvmasync
{

/** Everything a pass may look at. Absent parts are skipped. */
struct LintContext
{
    const SystemConfig *system = nullptr;

    /** The job under analysis; config-only lints leave it null. */
    const Job *job = nullptr;

    /** KV source of the system config, for source locations. */
    const KvConfig *systemKv = nullptr;

    /** KV source of the job (jobfile path), for source locations. */
    const KvConfig *jobKv = nullptr;

    /** Transfer mode the caller is about to run under, when known;
     * enables mode-aware advisories (UAL020). Null when the lint is
     * mode-agnostic (jobfile lint, --all-workloads sweeps). */
    const TransferMode *mode = nullptr;

    /** Human-readable model name ("gemm @ super", "file.ini"). */
    std::string subject;
};

/** One static check bundle. */
class AnalysisPass
{
  public:
    virtual ~AnalysisPass() = default;

    /** Stable pass name (CLI --pass filter). */
    virtual const char *name() const = 0;

    /** One-line description for --list-passes. */
    virtual const char *description() const = 0;

    virtual void run(const LintContext &ctx,
                     DiagnosticEngine &diags) const = 0;
};

/** Ordered pipeline of passes. */
class PassManager
{
  public:
    void add(std::unique_ptr<AnalysisPass> pass);

    /** Run every pass (or only @p only, when non-empty). */
    void run(const LintContext &ctx, DiagnosticEngine &diags,
             const std::vector<std::string> &only = {}) const;

    /** Registered pass names, pipeline order. */
    std::vector<std::string> names() const;

    const std::vector<std::unique_ptr<AnalysisPass>> &passes() const
    {
        return passes_;
    }

    /** The full built-in pipeline, pipeline order. */
    static PassManager standardPipeline();

  private:
    std::vector<std::unique_ptr<AnalysisPass>> passes_;
};

/**
 * Report UAL013 (unknown key, with a did-you-mean hint) and UAL014
 * (shadowed key) findings for @p kv against @p knownKeys. Used both
 * by the kv-keys pass and by the loaders' strict paths.
 */
void checkKvKeys(const KvConfig &kv,
                 const std::set<std::string> &knownKeys,
                 const std::string &scope, DiagnosticEngine &diags);

/**
 * The key set a job description file may use, derived from the
 * buffer/kernel sections present in @p kv (buffer.N.*, kernel.N.*).
 */
std::set<std::string> knownJobFileKeys(const KvConfig &kv);

} // namespace uvmasync

#endif // UVMASYNC_ANALYSIS_PASSES_HH
