/**
 * @file
 * Static interprocedural dataflow over a job's kernel DAG and buffer
 * table. Computes, without running anything, the quantities the cost
 * model and the campaign-advisor diagnostics need: per-buffer
 * liveness intervals, per-kernel (phase) working sets, the
 * oversubscription ratio against device memory, chunk-exact demanded
 * footprints (replicating the executor's block-to-chunk mapping),
 * reuse distances between consecutive uses, and access density.
 *
 * Everything here is a pure function of (SystemConfig, Job); no
 * simulation state is created and no clock or RNG is consulted, so
 * the walk is deterministic and safe to run at any --jobs count.
 */

#ifndef UVMASYNC_ANALYSIS_DATAFLOW_HH
#define UVMASYNC_ANALYSIS_DATAFLOW_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"
#include "runtime/job.hh"
#include "runtime/system_config.hh"

namespace uvmasync
{

/** Liveness and access summary of one job buffer. */
struct BufferFlow
{
    std::size_t id = 0;
    std::string name;
    Bytes bytes = 0;
    bool hostInit = true;
    bool hostConsumed = false;

    bool read = false;
    bool written = false;

    /** @{ Liveness interval in kernel-list indices (-1 = never). */
    int firstUseKernel = -1;
    int lastUseKernel = -1;
    int lastReadKernel = -1;
    int lastWriteKernel = -1;
    /** @} */

    /** Kernel uses of this buffer per sequence pass. */
    std::uint64_t usesPerPass = 0;

    /** Migration-granularity geometry (system.uvm.chunkBytes). */
    std::uint64_t chunkCount = 0;

    /**
     * Distinct chunks a full sequence pass demand-touches, under the
     * executor's exact block-to-chunk mapping (union across every
     * kernel use; sequential walks touch the prefix, random walks
     * the hash image of it).
     */
    std::uint64_t demandedChunks = 0;

    /** Payload bytes of the demanded chunks (last chunk partial). */
    Bytes demandedBytes = 0;

    /** Chunk requests per pass, summed over kernels (one request
     * per distinct chunk per launch — the thrash-regime volume). */
    std::uint64_t requestChunksPerPass = 0;
    Bytes requestBytesPerPass = 0;

    /** Payload actually read/written: bytes x max touched fraction. */
    Bytes touchedBytes = 0;
    double maxTouchedFraction = 0.0;

    /**
     * Reuse distance: the largest intervening working set (bytes
     * touched by other launches) between two consecutive uses of
     * this buffer, including the wrap-around gap between sequence
     * passes when the job repeats. 0 = never reused.
     */
    Bytes reuseDistanceBytes = 0;

    /**
     * Written, not host-consumed, and no later read ever observes
     * the data (UAL021: the write traffic is dead).
     */
    bool deadAfterLastWrite = false;
};

/** Per-kernel (phase) working-set summary. */
struct KernelFlow
{
    std::string name;

    /** Payload bytes one launch touches (sum over its uses). */
    Bytes workingSetBytes = 0;

    /** Chunk-rounded bytes one launch demands (UVM geometry). */
    Bytes demandChunkBytes = 0;

    /** Chunk requests one launch issues (thrash-regime volume). */
    std::uint64_t demandRequests = 0;

    /** Chunks this kernel demands first (not demanded earlier in
     * the pass); drives first-pass fault attribution. */
    std::uint64_t newDemandChunks = 0;
    Bytes newDemandBytes = 0;

    /** Subset of the above on host-initialised buffers — the only
     * chunks that actually fault when outputs populate on-device. */
    std::uint64_t newDemandChunksHostInit = 0;
    Bytes newDemandBytesHostInit = 0;

    /** @{ Per-buffer breakdown (indexed by buffer id) of the demand
     * chunk counts above; the cost model classifies each buffer as
     * capacity-resident or streaming and needs the split. */
    std::vector<std::uint64_t> chunksByBuffer;
    std::vector<std::uint64_t> newChunksByBuffer;
    std::vector<Bytes> newBytesByBuffer;
    /** @} */
};

/** Whole-job dataflow summary. */
struct DataflowSummary
{
    std::vector<BufferFlow> buffers;
    std::vector<KernelFlow> kernels;

    std::uint64_t repeats = 1;
    std::uint64_t launchesPerPass = 0;

    Bytes footprint = 0;
    Bytes hostInitBytes = 0;
    Bytes hostConsumedBytes = 0;

    /** Bytes UVM materialises device-side for free (!hostInit). */
    Bytes populateBytes = 0;

    /** Chunk-exact union of demanded bytes, host-initialised
     * buffers only (what UVM demand paging must move). */
    Bytes demandFootprintBytes = 0;

    /** Chunk-exact union of demanded bytes, all buffers (the
     * device-resident working set of one pass). */
    Bytes touchedFootprintBytes = 0;

    /** Largest single-launch working set (payload bytes). */
    Bytes peakWorkingSetBytes = 0;

    Bytes deviceCapacity = 0;
    Bytes chunkBytes = 0;

    /** footprint / deviceCapacity. */
    double oversubscription = 0.0;

    /** touchedFootprintBytes / deviceCapacity (thrash predictor). */
    double touchedOversubscription = 0.0;

    /** Mean touched payload per allocated byte per pass. */
    double accessDensity = 0.0;
};

/** Run the static dataflow walk. Pure; never mutates its inputs. */
DataflowSummary analyzeDataflow(const SystemConfig &system,
                                const Job &job);

} // namespace uvmasync

#endif // UVMASYNC_ANALYSIS_DATAFLOW_HH
