/**
 * @file
 * SARIF 2.1.0 output for the linter, so CI systems and editors that
 * ingest static-analysis results (GitHub code scanning, VS Code
 * SARIF viewers) can consume uvmasync-lint findings directly. The
 * text renderer stays the default; this is an opt-in format.
 */

#ifndef UVMASYNC_ANALYSIS_SARIF_HH
#define UVMASYNC_ANALYSIS_SARIF_HH

#include <string>

#include "analysis/diagnostic.hh"

namespace uvmasync
{

/**
 * Render every finding in @p diags as one SARIF 2.1.0 run. The rule
 * table always lists all UAL codes (stable rule indices); results
 * appear in report order. Output is deterministic: same findings,
 * same bytes.
 */
std::string renderSarif(const DiagnosticEngine &diags);

} // namespace uvmasync

#endif // UVMASYNC_ANALYSIS_SARIF_HH
