#include "analysis/cost_model.hh"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>

#include "common/table.hh"
#include "gpu/kernel_executor.hh"

namespace uvmasync
{

namespace
{

/** Link occupancy of one transfer, replicating PcieLink::transfer's
 * efficiency scaling and per-kind setup latency byte-for-byte. */
double
linkDurationPs(const PcieConfig &pcie, Bytes bytes, TransferKind kind)
{
    if (bytes == 0)
        return 0.0;
    auto ki = static_cast<std::size_t>(kind);
    double eff = pcie.efficiency[ki];
    double bps = pcie.rawBandwidth.bytesPerSecond();
    if (eff <= 0.0 || bps <= 0.0)
        return 0.0;
    double latencyBytes =
        static_cast<double>(pcie.perTransferLatency[ki]) * bps / 1e12;
    double scaled =
        std::ceil(static_cast<double>(bytes) / eff + latencyBytes);
    return std::ceil(scaled * 1e12 / bps);
}

/** Allocator::charge for one call (context-init handled by caller). */
double
allocCallPs(Tick base, Tick perGiB, Bytes bytes)
{
    double gibCount = static_cast<double>(bytes) /
                      static_cast<double>(gib(1));
    return static_cast<double>(base) +
           std::ceil(static_cast<double>(perGiB) * gibCount);
}

/** Full alloc+free charge of the job (Device charges the context
 * init once per run because it resets the allocator context). */
double
allocPhasePs(const AllocatorConfig &a, const Job &job, bool managed)
{
    double total = static_cast<double>(a.contextInit);
    for (const JobBuffer &buf : job.buffers) {
        if (managed) {
            total += allocCallPs(a.managedAllocBase,
                                 a.managedAllocPerGiB, buf.bytes);
            total += allocCallPs(a.managedFreeBase,
                                 a.managedFreePerGiB, buf.bytes);
        } else {
            total += allocCallPs(a.deviceAllocBase,
                                 a.deviceAllocPerGiB, buf.bytes);
            total += allocCallPs(a.deviceFreeBase,
                                 a.deviceFreePerGiB, buf.bytes);
        }
    }
    return total;
}

std::uint64_t
chunksOf(Bytes bytes, Bytes chunk)
{
    if (bytes == 0 || chunk == 0)
        return 0;
    return (bytes + chunk - 1) / chunk;
}

/** Per-buffer state the UVM regimes thread through the phases. */
struct BufferState
{
    /** Bytes resident after the populate/upfront-prefetch phase. */
    Bytes residentInit = 0;

    /** Stays device-resident once loaded (its demanded span plus
     * the widest reuse gap fit in device memory). */
    bool stays = true;
};

/** Static per-launch estimates for one mode, by kernel index. */
std::vector<KernelStaticEstimate>
kernelEstimates(const SystemConfig &system, const Job &job,
                TransferMode mode)
{
    KernelExecConfig ec;
    ec.gpu = system.gpu;
    ec.mode = mode;
    ec.bufferBytes = job.bufferSizes();
    ec.bufferRangeIds.resize(job.buffers.size());
    std::iota(ec.bufferRangeIds.begin(), ec.bufferRangeIds.end(), 0);
    KernelExecutor ex(std::move(ec));
    std::vector<KernelStaticEstimate> out;
    out.reserve(job.kernels.size());
    for (const KernelDescriptor &kd : job.kernels)
        out.push_back(ex.estimateResident(kd));
    return out;
}

ModeCost
explicitCost(const SystemConfig &system, const Job &job,
             const DataflowSummary &flow, TransferMode mode,
             const std::vector<KernelStaticEstimate> &est)
{
    ModeCost mc;
    mc.mode = mode;
    mc.allocPs = allocPhasePs(system.alloc, job, /*managed=*/false);
    for (const JobBuffer &buf : job.buffers) {
        if (buf.hostInit) {
            mc.h2dBytes += buf.bytes;
            mc.transferPs += linkDurationPs(system.pcie, buf.bytes,
                                            TransferKind::PageableCopy);
            ++mc.predictedEvents;
        }
        if (buf.hostConsumed) {
            mc.d2hBytes += buf.bytes;
            mc.transferPs += linkDurationPs(system.pcie, buf.bytes,
                                            TransferKind::PageableCopy);
            ++mc.predictedEvents;
        }
    }
    for (const KernelStaticEstimate &e : est)
        mc.kernelPs += static_cast<double>(flow.repeats) *
                       static_cast<double>(e.launchPs);
    return mc;
}

ModeCost
uvmCost(const SystemConfig &system, const Job &job,
        const DataflowSummary &flow, TransferMode mode,
        const std::vector<KernelStaticEstimate> &est)
{
    ModeCost mc;
    mc.mode = mode;
    mc.allocPs = allocPhasePs(system.alloc, job, /*managed=*/true);

    const Bytes capacity = flow.deviceCapacity;
    const Bytes chunk = flow.chunkBytes ? flow.chunkBytes : kib(256);
    const bool prefetch = usesPrefetch(mode);
    const double demandChunkPs = linkDurationPs(
        system.pcie, chunk, TransferKind::DemandMigration);
    const double batchBasePs =
        static_cast<double>(system.uvm.fault.batchBaseLatency);
    const std::uint32_t maxBatch =
        std::max<std::uint32_t>(1, system.uvm.fault.maxBatchSize);

    std::vector<BufferState> st(flow.buffers.size());

    // ---- Populate phase: outputs materialise device-side for free,
    // in buffer order, until device memory is full.
    Bytes resident = 0;
    for (std::size_t i = 0; i < flow.buffers.size(); ++i) {
        const BufferFlow &bf = flow.buffers[i];
        if (bf.hostInit)
            continue;
        Bytes take = std::min(bf.bytes, capacity - std::min(capacity,
                                                            resident));
        st[i].residentInit = take;
        resident += take;
    }

    // ---- Upfront prefetch phase (uvm_prefetch*): one bulk transfer
    // per buffer in job order; each call can evict earlier buffers.
    if (prefetch) {
        for (std::size_t i = 0; i < flow.buffers.size(); ++i) {
            const BufferFlow &bf = flow.buffers[i];
            Bytes pending = bf.bytes - st[i].residentInit;
            if (pending == 0)
                continue; // fully resident: upfront call is a no-op
            Bytes movable = std::min(pending, capacity);
            Bytes overflow =
                resident + movable > capacity
                    ? resident + movable - capacity
                    : 0;
            // Clean evictions of earlier buffers make room.
            for (std::size_t j = 0; j < i && overflow > 0; ++j) {
                Bytes evict = std::min(st[j].residentInit, overflow);
                st[j].residentInit -= evict;
                resident -= evict;
                overflow -= evict;
                mc.predictedEvents += chunksOf(evict, chunk);
            }
            st[i].residentInit += movable;
            resident += movable;
            mc.h2dBytes += movable;
            mc.migrationBytes += movable;
            mc.transferPs += linkDurationPs(system.pcie, movable,
                                            TransferKind::BulkPrefetch);
            ++mc.predictedEvents;
        }
    }

    // ---- Classify buffers: capacity-resident vs streaming.
    for (std::size_t i = 0; i < flow.buffers.size(); ++i) {
        const BufferFlow &bf = flow.buffers[i];
        bool reusedLater = bf.usesPerPass > 1 || flow.repeats > 1;
        st[i].stays = !reusedLater ||
                      bf.demandedBytes + bf.reuseDistanceBytes <=
                          capacity;
    }
    bool anyStreaming = false;
    for (const BufferState &s : st)
        anyStreaming = anyStreaming || !s.stays;
    mc.thrash = anyStreaming && flow.touchedFootprintBytes > capacity;

    // ---- Demand faults, per buffer.
    //  - resident buffers fault on first touch of chunks neither
    //    populated nor prefetched;
    //  - streaming buffers re-fault on every pass (clean LRU
    //    evictions in between: dirty bits are only set at job end,
    //    so mid-run evictions move no writeback bytes).
    Bytes demandBytes = 0;
    std::vector<Bytes> faultBytesBy(flow.buffers.size(), 0);
    for (std::size_t i = 0; i < flow.buffers.size(); ++i) {
        const BufferFlow &bf = flow.buffers[i];
        Bytes credit = st[i].residentInit;
        Bytes want;
        if (st[i].stays) {
            want = bf.demandedBytes;
        } else {
            want = static_cast<Bytes>(flow.repeats) *
                   bf.requestBytesPerPass;
        }
        faultBytesBy[i] = want > credit ? want - credit : 0;
        demandBytes += faultBytesBy[i];
    }
    // Capacity-overflow reload: resident buffers evicted to make
    // room for the demand stream re-fault once more (partial
    // oversubscription regime; no-op when everything fits).
    if (!mc.thrash) {
        Bytes wantResident = 0;
        Bytes populatedDemanded = 0;
        for (std::size_t i = 0; i < flow.buffers.size(); ++i) {
            const BufferFlow &bf = flow.buffers[i];
            wantResident +=
                std::max(st[i].residentInit, bf.demandedBytes);
            if (!bf.hostInit)
                populatedDemanded += bf.demandedBytes;
        }
        if (wantResident > capacity) {
            Bytes reload = std::min(wantResident - capacity,
                                    populatedDemanded);
            demandBytes += reload;
            mc.predictedEvents += chunksOf(reload, chunk);
        }
    }
    mc.faults = chunksOf(demandBytes, chunk);
    mc.h2dBytes += demandBytes;
    mc.migrationBytes += demandBytes;
    mc.transferPs += static_cast<double>(mc.faults) * demandChunkPs;
    mc.predictedEvents += mc.faults;
    if (mc.thrash) // each migration beyond capacity evicts a chunk
        mc.predictedEvents += mc.faults;

    // ---- Per-launch prefetch churn (prefetchEachLaunch jobs): the
    // harness re-issues cudaMemPrefetchAsync before every launch but
    // the first. Resident data pays the redundant-churn fraction;
    // oversubscribed buffers re-migrate their evicted span in full.
    if (prefetch && job.prefetchEachLaunch) {
        double churnFrac = system.uvm.redundantPrefetchChurn;
        bool first = true;
        for (std::uint64_t rep = 0; rep < flow.repeats; ++rep) {
            for (const KernelFlow &kf : flow.kernels) {
                std::size_t ki = static_cast<std::size_t>(
                    &kf - flow.kernels.data());
                if (first) {
                    first = false;
                    continue;
                }
                for (const KernelBufferUse &use :
                     job.kernels[ki].buffers) {
                    if (use.bufferId >= flow.buffers.size())
                        continue;
                    const BufferFlow &bf =
                        flow.buffers[use.bufferId];
                    Bytes move;
                    TransferKind kind = TransferKind::BulkPrefetch;
                    if (st[use.bufferId].stays &&
                        flow.footprint <= capacity) {
                        move = static_cast<Bytes>(std::ceil(
                            static_cast<double>(bf.bytes) *
                            churnFrac));
                    } else {
                        // A full cycle of the other buffers evicted
                        // this one; the call re-migrates it.
                        Bytes others = flow.footprint - bf.bytes;
                        Bytes keep = capacity > others
                                         ? capacity - others
                                         : 0;
                        Bytes pending =
                            bf.bytes > keep ? bf.bytes - keep : 0;
                        move = std::min(pending, capacity);
                        if (move == 0)
                            move = static_cast<Bytes>(std::ceil(
                                static_cast<double>(bf.bytes) *
                                churnFrac));
                    }
                    mc.h2dBytes += move;
                    mc.migrationBytes += move;
                    mc.transferPs +=
                        linkDurationPs(system.pcie, move, kind);
                    ++mc.predictedEvents;
                }
            }
        }
    }

    // ---- Kernel sequence: resident-data wave time per launch, with
    // faulting launches extended by the batched demand path (driver
    // batch drain + serialised chunk migrations dominate stalls).
    for (std::size_t ki = 0; ki < flow.kernels.size(); ++ki) {
        const KernelFlow &kf = flow.kernels[ki];
        double body = static_cast<double>(est[ki].launchPs) -
                      static_cast<double>(
                          system.gpu.kernelLaunchOverhead);
        std::uint64_t firstPassFaults = 0;
        std::uint64_t steadyFaults = 0;
        for (std::size_t bi = 0; bi < flow.buffers.size(); ++bi) {
            std::uint64_t credit = chunksOf(st[bi].residentInit,
                                            chunk);
            if (st[bi].stays) {
                std::uint64_t n = kf.newChunksByBuffer[bi];
                firstPassFaults += n > credit ? n - credit : 0;
            } else {
                std::uint64_t n = kf.chunksByBuffer[bi];
                std::uint64_t f = n > credit ? n - credit : 0;
                firstPassFaults += f;
                steadyFaults += n;
            }
        }
        for (std::uint64_t rep = 0; rep < flow.repeats; ++rep) {
            std::uint64_t f = rep == 0 ? firstPassFaults
                                       : steadyFaults;
            // Per-launch prefetch re-migration hides the demand
            // path: data arrives via the bulk transfers above.
            if (prefetch && job.prefetchEachLaunch &&
                !(rep == 0 && ki == 0))
                f = 0;
            double launch = static_cast<double>(est[ki].launchPs);
            if (f > 0) {
                double path = batchBasePs +
                              static_cast<double>(f) * demandChunkPs;
                launch = static_cast<double>(
                             system.gpu.kernelLaunchOverhead) +
                         std::max(body, path);
                mc.faultBatches += (f + maxBatch - 1) / maxBatch;
            }
            mc.kernelPs += launch;
        }
    }

    // ---- End-of-job writeback: markRangeDirty marks every chunk of
    // a host-consumed written buffer that is still resident, and one
    // Writeback transfer flushes it.
    Bytes wantTotal = 0;
    std::vector<Bytes> wantEnd(flow.buffers.size(), 0);
    for (std::size_t i = 0; i < flow.buffers.size(); ++i) {
        const BufferFlow &bf = flow.buffers[i];
        wantEnd[i] = std::max(st[i].residentInit, bf.demandedBytes);
        wantEnd[i] = std::min(wantEnd[i], bf.bytes);
        wantTotal += wantEnd[i];
    }
    double endShare =
        wantTotal > capacity && wantTotal > 0
            ? static_cast<double>(capacity) /
                  static_cast<double>(wantTotal)
            : 1.0;
    for (std::size_t i = 0; i < flow.buffers.size(); ++i) {
        const BufferFlow &bf = flow.buffers[i];
        if (!bf.hostConsumed || !bf.written)
            continue;
        Bytes residentEnd = static_cast<Bytes>(
            static_cast<double>(wantEnd[i]) * endShare);
        if (residentEnd == 0)
            continue;
        mc.d2hBytes += residentEnd;
        mc.migrationBytes += residentEnd;
        mc.transferPs += linkDurationPs(system.pcie, residentEnd,
                                        TransferKind::Writeback);
        ++mc.predictedEvents;
    }

    return mc;
}

} // namespace

CostReport
analyzeCost(const SystemConfig &system, const Job &job)
{
    CostReport report;
    report.flow = analyzeDataflow(system, job);

    for (std::size_t m = 0; m < allTransferModes.size(); ++m) {
        TransferMode mode = allTransferModes[m];
        std::vector<KernelStaticEstimate> est =
            kernelEstimates(system, job, mode);
        report.modes[m] = usesUvm(mode)
                              ? uvmCost(system, job, report.flow,
                                        mode, est)
                              : explicitCost(system, job,
                                             report.flow, mode, est);
    }

    auto better = [&](TransferMode a, TransferMode b) {
        return report.mode(a).overallPs() < report.mode(b).overallPs();
    };
    report.bestMode = TransferMode::Standard;
    report.bestExplicit = TransferMode::Standard;
    report.bestUvm = TransferMode::Uvm;
    for (TransferMode m : allTransferModes) {
        if (better(m, report.bestMode))
            report.bestMode = m;
        if (!usesUvm(m) && better(m, report.bestExplicit))
            report.bestExplicit = m;
        if (usesUvm(m) && better(m, report.bestUvm))
            report.bestUvm = m;
    }
    double uvmOverall = report.mode(TransferMode::Uvm).overallPs();
    double asyncOverall = report.mode(TransferMode::Async).overallPs();
    report.asyncOverUvm =
        uvmOverall > 0.0 ? asyncOverall / uvmOverall : 1.0;
    return report;
}

std::string
renderCostReport(const CostReport &report, const std::string &subject)
{
    const DataflowSummary &flow = report.flow;
    std::ostringstream os;
    os << subject << ": static cost model\n";
    os << "  footprint " << fmtBytes(static_cast<double>(flow.footprint))
       << " (" << fmtDouble(flow.oversubscription, 2)
       << "x device), demanded "
       << fmtBytes(static_cast<double>(flow.touchedFootprintBytes))
       << ", access density " << fmtDouble(flow.accessDensity, 2)
       << ", repeats " << flow.repeats << "\n";
    os << "  advisor: predicted winner "
       << transferModeName(report.bestMode) << "; async/uvm = "
       << fmtDouble(report.asyncOverUvm, 2) << " ("
       << (report.asyncOverUvm > 1.0 ? "uvm family wins"
                                     : "explicit family wins")
       << ")\n";

    TextTable table({"mode", "h2d", "d2h", "faults", "batches",
                     "migrated", "alloc", "transfer", "kernel",
                     "overall"});
    for (TransferMode m : allTransferModes) {
        const ModeCost &mc = report.mode(m);
        std::string name = transferModeName(m);
        if (m == report.bestMode)
            name += " *";
        table.addRow({
            name,
            fmtBytes(static_cast<double>(mc.h2dBytes)),
            fmtBytes(static_cast<double>(mc.d2hBytes)),
            fmtCount(static_cast<double>(mc.faults)),
            fmtCount(static_cast<double>(mc.faultBatches)),
            fmtBytes(static_cast<double>(mc.migrationBytes)),
            fmtTime(mc.allocPs),
            fmtTime(mc.transferPs),
            fmtTime(mc.kernelPs),
            fmtTime(mc.overallPs()),
        });
    }
    os << table.toString();
    return os.str();
}

} // namespace uvmasync
