/**
 * @file
 * High-level entry points of the static model linter ("uvmasync
 * lint"): run the standard pass pipeline over a system config and/or
 * a job and decide whether the model is fit to simulate.
 */

#ifndef UVMASYNC_ANALYSIS_LINT_HH
#define UVMASYNC_ANALYSIS_LINT_HH

#include <string>
#include <vector>

#include "analysis/diagnostic.hh"
#include "analysis/passes.hh"

namespace uvmasync
{

/** What to do with lint findings before a simulation runs. */
enum class LintMode
{
    Off,     //!< skip the linter entirely
    Warn,    //!< print every finding, run anyway
    Enforce, //!< print every finding, refuse to run on errors
};

/** Options for a lint invocation. */
struct LintOptions
{
    /** Restrict to these pass names; empty = full pipeline. */
    std::vector<std::string> passes;

    /** Promote warnings to errors (CLI --Werror). */
    bool warningsAsErrors = false;
};

/** Lint only a system configuration (no job). */
DiagnosticEngine lintSystemConfig(const SystemConfig &system,
                                  const KvConfig *systemKv = nullptr,
                                  const LintOptions &opts = {});

/**
 * Lint a job under a system configuration; @p subject labels the
 * findings ("gemm @ super", a jobfile path, ...).
 */
DiagnosticEngine lintJob(const SystemConfig &system, const Job &job,
                         const std::string &subject,
                         const KvConfig *systemKv = nullptr,
                         const KvConfig *jobKv = nullptr,
                         const LintOptions &opts = {},
                         const TransferMode *transferMode = nullptr);

/**
 * Pre-run gate used by Experiment and the CLI jobfile path: lint the
 * model under @p mode; print findings via warn(); fatal() listing the
 * errors when @p mode is Enforce and any error-severity finding
 * exists. Returns the engine so callers can inspect findings.
 *
 * Printing is deduplicated process-wide on (code, location, subject,
 * message): a jobfile linted once per sweep point prints each unique
 * finding once. The returned engine always carries every finding, so
 * enforce-gate semantics are unchanged.
 */
DiagnosticEngine enforceLint(const SystemConfig &system, const Job &job,
                             const std::string &subject, LintMode mode,
                             const KvConfig *systemKv = nullptr,
                             const KvConfig *jobKv = nullptr,
                             const TransferMode *transferMode = nullptr);

/** Forget which findings enforceLint has printed (tests). */
void resetLintPrintDedup();

/** Parse off/warn/enforce; returns false (out untouched) if unknown. */
bool parseLintMode(const std::string &name, LintMode &out);

/**
 * Lint a fault-injection plan (`inject.*` KV config): semantic
 * parameter problems as UAL016, unknown keys as UAL013 (with
 * did-you-mean), shadowed keys as UAL014, and a valid-but-inert plan
 * as a UAL017 note.
 */
DiagnosticEngine lintInjectPlan(const KvConfig &kv,
                                const LintOptions &opts = {});

} // namespace uvmasync

#endif // UVMASYNC_ANALYSIS_LINT_HH
