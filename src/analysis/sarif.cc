#include "analysis/sarif.hh"

#include <cstdio>
#include <sstream>

namespace uvmasync
{

namespace
{

/** JSON string escaping (control chars, quotes, backslashes). */
std::string
jsonEscape(const std::string &s)
{
    std::ostringstream os;
    for (char c : s) {
        switch (c) {
          case '"':
            os << "\\\"";
            break;
          case '\\':
            os << "\\\\";
            break;
          case '\n':
            os << "\\n";
            break;
          case '\r':
            os << "\\r";
            break;
          case '\t':
            os << "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                os << buf;
            } else {
                os << c;
            }
        }
    }
    return os.str();
}

const char *
sarifLevel(Severity s)
{
    switch (s) {
      case Severity::Note:
        return "note";
      case Severity::Warn:
        return "warning";
      case Severity::Error:
        return "error";
    }
    return "none";
}

} // namespace

std::string
renderSarif(const DiagnosticEngine &diags)
{
    std::ostringstream os;
    os << "{\n";
    os << "  \"$schema\": "
          "\"https://json.schemastore.org/sarif-2.1.0.json\",\n";
    os << "  \"version\": \"2.1.0\",\n";
    os << "  \"runs\": [\n";
    os << "    {\n";
    os << "      \"tool\": {\n";
    os << "        \"driver\": {\n";
    os << "          \"name\": \"uvmasync-lint\",\n";
    os << "          \"rules\": [\n";
    const auto &specs = allDiagSpecs();
    for (std::size_t i = 0; i < specs.size(); ++i) {
        const DiagSpec &spec = specs[i];
        os << "            {\n";
        os << "              \"id\": \"" << spec.code << "\",\n";
        os << "              \"shortDescription\": { \"text\": \""
           << jsonEscape(spec.title) << "\" },\n";
        os << "              \"help\": { \"text\": \""
           << jsonEscape(spec.hint) << "\" },\n";
        os << "              \"defaultConfiguration\": { \"level\": \""
           << sarifLevel(spec.severity) << "\" }\n";
        os << "            }" << (i + 1 < specs.size() ? "," : "")
           << "\n";
    }
    os << "          ]\n";
    os << "        }\n";
    os << "      },\n";
    os << "      \"results\": [\n";
    const auto &all = diags.all();
    for (std::size_t i = 0; i < all.size(); ++i) {
        const Diagnostic &d = all[i];
        const std::string &fix =
            d.hint.empty() ? diagSpec(d.id).hint : d.hint;
        std::string text = d.subject.empty()
                               ? d.message
                               : d.subject + ": " + d.message;
        text += " (fix: " + fix + ")";
        os << "        {\n";
        os << "          \"ruleId\": \"" << d.code() << "\",\n";
        os << "          \"ruleIndex\": "
           << static_cast<std::size_t>(d.id) << ",\n";
        os << "          \"level\": \"" << sarifLevel(d.severity)
           << "\",\n";
        os << "          \"message\": { \"text\": \""
           << jsonEscape(text) << "\" }";
        if (d.loc.valid()) {
            os << ",\n";
            os << "          \"locations\": [\n";
            os << "            {\n";
            os << "              \"physicalLocation\": {\n";
            os << "                \"artifactLocation\": { \"uri\": \""
               << jsonEscape(d.loc.file) << "\" }";
            if (d.loc.line > 0) {
                os << ",\n";
                os << "                \"region\": { \"startLine\": "
                   << d.loc.line << " }\n";
            } else {
                os << "\n";
            }
            os << "              }\n";
            os << "            }\n";
            os << "          ]\n";
        } else {
            os << "\n";
        }
        os << "        }" << (i + 1 < all.size() ? "," : "") << "\n";
    }
    os << "      ]\n";
    os << "    }\n";
    os << "  ]\n";
    os << "}\n";
    return os.str();
}

} // namespace uvmasync
