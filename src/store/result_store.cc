#include "store/result_store.hh"

#include <algorithm>

#include "common/logging.hh"
#include "journal/journal.hh"
#include "journal/json.hh"

namespace uvmasync
{

namespace
{

constexpr const char *storeMagic = "uvmasync-store";
constexpr const char *shardMagic = "uvmasync-shard";

std::uint64_t
fnv1a(std::uint64_t h, const void *data, std::size_t len)
{
    const unsigned char *p = static_cast<const unsigned char *>(data);
    for (std::size_t i = 0; i < len; ++i) {
        h ^= p[i];
        h *= 0x100000001b3ull;
    }
    return h;
}

std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

/** Checksum of one record's addressed content + serialized result. */
std::uint64_t
recordChecksum(std::uint64_t fingerprint, std::uint64_t key,
               const std::string &resultJson)
{
    std::uint64_t h = 0xcbf29ce484222325ull;
    h = fnv1a(h, &fingerprint, sizeof(fingerprint));
    h = fnv1a(h, &key, sizeof(key));
    h = fnv1a(h, resultJson.data(), resultJson.size());
    return mix64(h);
}

std::string
metaPath(const std::string &dir)
{
    return dir + "/meta.json";
}

std::string
shardDir(const std::string &dir)
{
    return dir + "/shards";
}

std::string
shardPath(const std::string &dir, std::size_t shard)
{
    return shardDir(dir) + "/s" + hexU64(shard).substr(14);
}

/** Whole-file read; false when the file does not exist/open. */
bool
readFileContents(IoEnv &env, const std::string &path, std::string &out)
{
    return env.readFile(path, out).ok;
}

/** "sXX" (two lowercase hex digits) -> shard index. */
bool
shardIndexFromName(const std::string &name, std::size_t &shard)
{
    if (name.size() != 3 || name[0] != 's')
        return false;
    std::size_t value = 0;
    for (std::size_t i = 1; i < name.size(); ++i) {
        char c = name[i];
        if (c >= '0' && c <= '9')
            value = value * 16 + static_cast<std::size_t>(c - '0');
        else if (c >= 'a' && c <= 'f')
            value =
                value * 16 + static_cast<std::size_t>(c - 'a' + 10);
        else
            return false;
    }
    shard = value;
    return true;
}

/**
 * Existing segment files as (shard, path), shard-ordered. One
 * listDir instead of 256 per-path probes: fewer syscalls, and the
 * fault enumerator's op count stays proportional to real work.
 */
std::vector<std::pair<std::size_t, std::string>>
listShardFiles(IoEnv &env, const std::string &dir)
{
    std::vector<std::pair<std::size_t, std::string>> files;
    std::vector<std::string> names;
    if (!env.listDir(shardDir(dir), names).ok)
        return files; // no shards directory = empty store
    for (const std::string &name : names) {
        std::size_t shard = 0;
        if (shardIndexFromName(name, shard))
            files.emplace_back(shard, shardDir(dir) + "/" + name);
    }
    return files;
}

/**
 * Split @p contents into complete lines. A trailing fragment without
 * '\n' (a torn append) is NOT returned; @p tornTail reports it and
 * @p intactEnd is the offset the file should be truncated to.
 */
std::vector<std::string>
splitLines(const std::string &contents, bool &tornTail,
           std::size_t &intactEnd)
{
    std::vector<std::string> lines;
    std::size_t start = 0;
    while (start < contents.size()) {
        std::size_t nl = contents.find('\n', start);
        if (nl == std::string::npos)
            break;
        lines.push_back(contents.substr(start, nl - start));
        start = nl + 1;
    }
    tornTail = start < contents.size();
    intactEnd = start;
    return lines;
}

struct MetaData
{
    std::uint64_t clock = 0;
    std::vector<std::uint64_t> fingerprints;
    std::vector<std::uint64_t> lastUse; //!< size shardCount when ok
    std::uint64_t lifetimeLookups = 0;
    std::uint64_t lifetimeHits = 0;
    std::uint64_t lifetimeStored = 0;
    std::uint64_t lastRunLookups = 0;
    std::uint64_t lastRunHits = 0;
};

std::string
metaLine(const MetaData &meta)
{
    JsonWriter w;
    w.beginObject();
    w.key("store").value(storeMagic);
    w.key("version").value(
        static_cast<std::uint64_t>(ResultStore::formatVersion));
    w.key("clock").value(meta.clock);
    w.key("fingerprints").beginArray();
    for (std::uint64_t fp : meta.fingerprints)
        w.value(hexU64(fp));
    w.endArray();
    w.key("last_use").beginArray();
    for (std::uint64_t use : meta.lastUse)
        w.value(use);
    w.endArray();
    w.key("lookups").value(meta.lifetimeLookups);
    w.key("hits").value(meta.lifetimeHits);
    w.key("stored").value(meta.lifetimeStored);
    w.key("last_run_lookups").value(meta.lastRunLookups);
    w.key("last_run_hits").value(meta.lastRunHits);
    w.endObject();
    return w.str();
}

bool
parseMetaLine(const std::string &line, MetaData &out,
              std::string &error)
{
    JsonValue v;
    if (!parseJson(line, v, error))
        return false;
    const JsonValue *magic = v.find("store");
    if (!v.isObject() || !magic || !magic->isString() ||
        magic->text != storeMagic) {
        error = "not a result-store meta file";
        return false;
    }
    const JsonValue *version = v.find("version");
    std::uint64_t ver = 0;
    if (!version || !version->asUint(ver)) {
        error = "missing/invalid 'version'";
        return false;
    }
    if (ver != static_cast<std::uint64_t>(ResultStore::formatVersion)) {
        error = strfmt("format version %llu, this build reads %d",
                       static_cast<unsigned long long>(ver),
                       ResultStore::formatVersion);
        return false;
    }
    const JsonValue *clock = v.find("clock");
    const JsonValue *fps = v.find("fingerprints");
    const JsonValue *lastUse = v.find("last_use");
    if (!clock || !clock->asUint(out.clock) || !fps ||
        !fps->isArray() || !lastUse || !lastUse->isArray() ||
        lastUse->items.size() != ResultStore::shardCount) {
        error = "missing/invalid 'clock'/'fingerprints'/'last_use'";
        return false;
    }
    out.fingerprints.clear();
    for (const JsonValue &item : fps->items) {
        std::uint64_t fp = 0;
        if (!item.isString() || !parseHexU64(item.text, fp)) {
            error = "invalid fingerprint entry";
            return false;
        }
        out.fingerprints.push_back(fp);
    }
    out.lastUse.clear();
    out.lastUse.reserve(ResultStore::shardCount);
    for (const JsonValue &item : lastUse->items) {
        std::uint64_t use = 0;
        if (!item.asUint(use)) {
            error = "invalid 'last_use' entry";
            return false;
        }
        out.lastUse.push_back(use);
    }
    const JsonValue *lookups = v.find("lookups");
    const JsonValue *hits = v.find("hits");
    const JsonValue *stored = v.find("stored");
    const JsonValue *lrLookups = v.find("last_run_lookups");
    const JsonValue *lrHits = v.find("last_run_hits");
    if (!lookups || !lookups->asUint(out.lifetimeLookups) || !hits ||
        !hits->asUint(out.lifetimeHits) || !stored ||
        !stored->asUint(out.lifetimeStored) || !lrLookups ||
        !lrLookups->asUint(out.lastRunLookups) || !lrHits ||
        !lrHits->asUint(out.lastRunHits)) {
        error = "missing/invalid counters";
        return false;
    }
    return true;
}

/** Atomic meta rewrite: temp file + rename. */
IoStatus
tryWriteMetaFile(IoEnv &env, const std::string &dir,
                 const MetaData &meta)
{
    return env.writeFileAtomic(metaPath(dir), metaLine(meta) + "\n");
}

void
writeMetaFile(IoEnv &env, const std::string &dir,
              const MetaData &meta)
{
    IoStatus st = tryWriteMetaFile(env, dir, meta);
    if (!st.ok)
        fatal("store: cannot write '%s': %s",
              metaPath(dir).c_str(), st.text().c_str());
}

bool
parseShardHeader(const std::string &line, std::size_t shard)
{
    JsonValue v;
    std::string error;
    if (!parseJson(line, v, error) || !v.isObject())
        return false;
    const JsonValue *magic = v.find("store");
    const JsonValue *version = v.find("version");
    const JsonValue *idx = v.find("shard");
    std::uint64_t ver = 0;
    std::uint64_t i = 0;
    return magic && magic->isString() && magic->text == shardMagic &&
           version && version->asUint(ver) &&
           ver == static_cast<std::uint64_t>(
                      ResultStore::formatVersion) &&
           idx && idx->asUint(i) && i == shard;
}

} // namespace

std::string
storeSegmentHeaderLine(std::size_t shard)
{
    JsonWriter w;
    w.beginObject();
    w.key("store").value(shardMagic);
    w.key("version").value(
        static_cast<std::uint64_t>(ResultStore::formatVersion));
    w.key("shard").value(static_cast<std::uint64_t>(shard));
    w.endObject();
    return w.str();
}

std::string
storeRecordLine(std::uint64_t fingerprint, std::uint64_t key,
                const ExperimentResult &result)
{
    JsonWriter payload;
    writeResultJson(payload, result);
    JsonWriter w;
    w.beginObject();
    w.key("fp").value(hexU64(fingerprint));
    w.key("key").value(hexU64(key));
    w.key("crc").value(
        hexU64(recordChecksum(fingerprint, key, payload.str())));
    w.key("result").raw(payload.str());
    w.endObject();
    return w.str();
}

bool
parseStoreRecord(const std::string &line, std::uint64_t &fingerprint,
                 std::uint64_t &key, ExperimentResult &result,
                 std::string &error)
{
    JsonValue v;
    if (!parseJson(line, v, error))
        return false;
    if (!v.isObject()) {
        error = "record is not an object";
        return false;
    }
    const JsonValue *fp = v.find("fp");
    const JsonValue *k = v.find("key");
    const JsonValue *crc = v.find("crc");
    const JsonValue *res = v.find("result");
    std::uint64_t wantCrc = 0;
    if (!fp || !fp->isString() || !parseHexU64(fp->text, fingerprint) ||
        !k || !k->isString() || !parseHexU64(k->text, key) || !crc ||
        !crc->isString() || !parseHexU64(crc->text, wantCrc) || !res) {
        error = "missing/invalid 'fp'/'key'/'crc'/'result'";
        return false;
    }
    if (!readResultJson(*res, result)) {
        error = "missing/invalid 'result'";
        return false;
    }
    // Verify the checksum against the *re-serialized* result: the
    // writer embedded exactly these bytes, so any flipped byte that
    // survives parsing (a digit in a hexfloat, a counter value, a
    // name) changes the round-tripped serialization and is caught.
    JsonWriter payload;
    writeResultJson(payload, result);
    if (recordChecksum(fingerprint, key, payload.str()) != wantCrc) {
        error = "checksum mismatch";
        return false;
    }
    return true;
}

std::size_t
ResultStore::shardOf(std::uint64_t key) const
{
    // Config hashes are splitmix64-finalized, so the low byte is
    // already uniform; the shard choice must not depend on the
    // fingerprint or the CLI maintenance ops could not place records.
    return static_cast<std::size_t>(key & 0xff);
}

std::unique_ptr<ResultStore>
ResultStore::open(const std::string &dir, std::uint64_t fingerprint,
                  const StoreOptions &opt, IoEnv &env)
{
    std::unique_ptr<ResultStore> store(new ResultStore());
    store->dir_ = dir;
    store->env_ = &env;
    store->fingerprint_ = fingerprint;
    store->opt_ = opt;

    if (!opt.readonly) {
        IoStatus mk = env.makeDir(dir);
        if (mk.ok)
            mk = env.makeDir(shardDir(dir));
        if (!mk.ok)
            fatal("store: cannot create store directory '%s': %s",
                  dir.c_str(), mk.text().c_str());
    }

    bool haveMeta = env.exists(metaPath(dir));
    if (!haveMeta && opt.readonly)
        fatal("store: '%s' is not a result store (no meta.json); "
              "open it writable once to initialise it",
              dir.c_str());

    MetaData meta;
    meta.lastUse.assign(shardCount, 0);
    if (haveMeta) {
        std::string contents;
        IoStatus rd = env.readFile(metaPath(dir), contents);
        if (!rd.ok)
            fatal("store: cannot read '%s': %s",
                  metaPath(dir).c_str(), rd.text().c_str());
        bool torn = false;
        std::size_t intactEnd = 0;
        std::vector<std::string> lines =
            splitLines(contents, torn, intactEnd);
        std::string error;
        if (lines.empty() ||
            !parseMetaLine(lines[0], meta, error))
            fatal("store: '%s' is not a usable result store (%s); "
                  "delete the directory or run `uvmasync store "
                  "invalidate --store %s` to start fresh",
                  metaPath(dir).c_str(),
                  lines.empty() ? "empty meta.json" : error.c_str(),
                  dir.c_str());
    }

    store->clock_ = meta.clock;
    store->knownFingerprints_ = meta.fingerprints;
    for (std::size_t s = 0; s < shardCount; ++s)
        store->lastUse_[s] = meta.lastUse[s];
    store->stats_.lifetimeLookups = meta.lifetimeLookups;
    store->stats_.lifetimeHits = meta.lifetimeHits;
    store->stats_.lifetimeStored = meta.lifetimeStored;

    bool known =
        std::binary_search(store->knownFingerprints_.begin(),
                           store->knownFingerprints_.end(),
                           fingerprint);
    if (opt.readonly && !known)
        fatal("store: '%s' has no entries for the current "
              "model-semantics fingerprint %s — the simulator "
              "semantics (code version or system config) changed "
              "since the store was written. Open it writable (drop "
              "--store-readonly) to repopulate, or run `uvmasync "
              "store invalidate --store %s` to drop the stale "
              "entries.",
              dir.c_str(), hexU64(fingerprint).c_str(), dir.c_str());
    if (!known) {
        store->knownFingerprints_.insert(
            std::upper_bound(store->knownFingerprints_.begin(),
                             store->knownFingerprints_.end(),
                             fingerprint),
            fingerprint);
    }

    for (const auto &entry : listShardFiles(env, dir)) {
        if (entry.first < shardCount)
            store->loadShard(entry.first, entry.second);
    }
    store->loaded_ = true;
    return store;
}

void
ResultStore::loadShard(std::size_t shard, const std::string &path)
{
    std::string contents;
    if (!readFileContents(*env_, path, contents))
        return; // absent segment = empty shard
    bool torn = false;
    std::size_t intactEnd = 0;
    std::vector<std::string> lines =
        splitLines(contents, torn, intactEnd);

    Shard &sh = shards_[shard];
    if (lines.empty() || !parseShardHeader(lines[0], shard)) {
        // Unusable header: quarantine the whole segment. Writable
        // stores rewrite it from scratch on the next insert.
        stats_.corruptRecords += lines.size();
        if (!opt_.readonly)
            env_->removeFile(path);
        return;
    }
    for (std::size_t i = 1; i < lines.size(); ++i) {
        std::uint64_t fp = 0;
        std::uint64_t key = 0;
        ExperimentResult result;
        std::string error;
        if (!parseStoreRecord(lines[i], fp, key, result, error)) {
            // A flipped byte (or any malformed line) is counted and
            // treated as a miss — the record is never served.
            ++stats_.corruptRecords;
            continue;
        }
        sh.entries.emplace(std::make_pair(key, fp),
                           std::move(result));
    }
    sh.bytes = intactEnd;
    if (torn) {
        ++stats_.tornTails;
        if (!opt_.readonly) {
            // Drop the torn append so the segment is clean again.
            IoStatus st = env_->truncateFile(
                path, static_cast<std::uint64_t>(intactEnd));
            if (!st.ok)
                warn("store: cannot truncate torn tail of '%s': %s",
                     path.c_str(), st.text().c_str());
        }
    }
}

ResultStore::~ResultStore()
{
    // Best-effort: a destructor must never fatal (it may run during
    // exception unwinding, and a cache that cannot persist its meta
    // has lost recency/stats, not results). Skipped when open()
    // never completed — there is nothing meaningful to persist.
    // Shard files close silently through their IoFile destructors.
    if (!opt_.readonly && loaded_)
        persistMeta();
}

void
ResultStore::persistMeta()
{
    MetaData meta;
    meta.clock = clock_;
    meta.fingerprints = knownFingerprints_;
    meta.lastUse.assign(lastUse_.begin(), lastUse_.end());
    meta.lifetimeLookups = stats_.lifetimeLookups;
    meta.lifetimeHits = stats_.lifetimeHits;
    meta.lifetimeStored = stats_.lifetimeStored;
    meta.lastRunLookups = lastRunLookups_;
    meta.lastRunHits = lastRunHits_;
    IoStatus st = tryWriteMetaFile(*env_, dir_, meta);
    if (!st.ok)
        warn("store: cannot persist '%s' (%s); hit-rate history and "
             "eviction recency were lost, stored results are intact",
             metaPath(dir_).c_str(), st.text().c_str());
}

void
ResultStore::touch(std::size_t shard)
{
    lastUse_[shard] = ++clock_;
}

std::uint64_t
ResultStore::totalBytes() const
{
    std::uint64_t total = 0;
    for (const Shard &sh : shards_)
        total += sh.bytes;
    return total;
}

std::size_t
ResultStore::recordCount() const
{
    std::size_t n = 0;
    for (const Shard &sh : shards_)
        n += sh.entries.size();
    return n;
}

bool
ResultStore::lookup(std::uint64_t key, ExperimentResult &out)
{
    ++stats_.lookups;
    ++stats_.lifetimeLookups;
    ++lastRunLookups_;
    Shard &sh = shards_[shardOf(key)];
    auto it = sh.entries.find(std::make_pair(key, fingerprint_));
    if (it != sh.entries.end()) {
        out = it->second;
        ++stats_.hits;
        ++stats_.lifetimeHits;
        ++lastRunHits_;
        touch(shardOf(key));
        return true;
    }
    // Same question answered by a different simulator: the miss is a
    // fingerprint invalidation, not a never-seen point.
    auto lo = sh.entries.lower_bound(std::make_pair(key, 0));
    if (lo != sh.entries.end() && lo->first.first == key)
        ++stats_.staleMisses;
    return false;
}

void
ResultStore::noteWriteError(std::size_t shard, const IoStatus &st)
{
    // A hard append error (disk full, EIO) disables the shard for
    // the rest of the session: the cache degrades to pass-through
    // for these keys instead of corrupting the segment tail with
    // repeated partial appends. The file is closed and truncated
    // back to its last intact record (best effort), so what remains
    // on disk still loads clean.
    std::string path = shardPath(dir_, shard);
    Shard &sh = shards_[shard];
    ++stats_.writeErrors;
    sh.writeFailed = true;
    sh.file.reset();
    if (sh.bytes == 0)
        env_->removeFile(path); // a headerless stub would not load
    else
        env_->truncateFile(path, sh.bytes);
    warn("store: write to segment '%s' failed (%s); shard disabled "
         "for this session, results for it will not be cached",
         path.c_str(), st.text().c_str());
}

void
ResultStore::insert(std::uint64_t key, const ExperimentResult &result)
{
    if (opt_.readonly)
        return;
    std::size_t shard = shardOf(key);
    Shard &sh = shards_[shard];
    if (sh.writeFailed)
        return; // hard error earlier: decline further offers
    auto mapKey = std::make_pair(key, fingerprint_);
    if (sh.entries.count(mapKey))
        return; // dedup keeps segment bytes deterministic

    std::string path = shardPath(dir_, shard);
    if (!sh.file) {
        bool fresh = sh.bytes == 0;
        IoStatus st;
        sh.file = fresh ? env_->openTrunc(path, st)
                        : env_->openAppend(path, st);
        if (!sh.file) {
            noteWriteError(shard, st);
            return;
        }
        if (fresh) {
            std::string header = storeSegmentHeaderLine(shard) + "\n";
            st = sh.file->write(header);
            if (!st.ok) {
                noteWriteError(shard, st);
                return;
            }
            sh.bytes += header.size();
        }
    }
    std::string line = storeRecordLine(fingerprint_, key, result);
    line += "\n";
    IoStatus st = sh.file->write(line);
    if (st.ok)
        st = sh.file->flush();
    if (!st.ok) {
        noteWriteError(shard, st);
        return;
    }
    // No fsync: the store is a cache, not the crash-safety contract
    // (that is the journal); a torn tail costs one re-simulation.
    sh.bytes += line.size();
    sh.entries.emplace(mapKey, result);
    ++stats_.stored;
    ++stats_.lifetimeStored;
    touch(shard);
    enforceBudget(shard);
}

void
ResultStore::enforceBudget(std::size_t protectedShard)
{
    if (opt_.maxBytes == 0)
        return;
    while (totalBytes() > opt_.maxBytes) {
        // Evict the least-recently-used non-empty segment, never the
        // one just appended (the budget cannot starve fresh work).
        std::size_t victim = shardCount;
        for (std::size_t s = 0; s < shardCount; ++s) {
            if (s == protectedShard || shards_[s].bytes == 0)
                continue;
            if (victim == shardCount ||
                lastUse_[s] < lastUse_[victim])
                victim = s;
        }
        if (victim == shardCount)
            return;
        Shard &sh = shards_[victim];
        sh.file.reset();
        env_->removeFile(shardPath(dir_, victim));
        ++stats_.evictedSegments;
        stats_.evictedBytes += sh.bytes;
        sh.bytes = 0;
        sh.entries.clear();
        lastUse_[victim] = 0;
    }
}

StorePointCache::StorePointCache(
    ResultStore &store, const std::vector<ExperimentPoint> &points)
    : store_(store), points_(points)
{
    keys_.reserve(points.size());
    for (const ExperimentPoint &point : points)
        keys_.push_back(pointConfigHash(point));
}

bool
StorePointCache::lookup(std::size_t index, PointOutcome &out)
{
    UVMASYNC_ASSERT(index < points_.size(),
                    "point index out of range");
    const ExperimentPoint &point = points_[index];
    if (point.opts.trace)
        return false; // traces are not serialized; re-simulate
    ExperimentResult result;
    if (!store_.lookup(keys_[index], result))
        return false;
    if (result.workload != point.workload ||
        result.mode != point.mode || result.size != point.opts.size) {
        // Config-hash collision or corruption the checksum missed:
        // never serve an entry whose identity disagrees.
        store_.noteCorrupt();
        return false;
    }
    out = PointOutcome{};
    out.ok = true;
    out.status = PointStatus::Ok;
    out.attempts = 1;
    out.result = std::move(result);
    return true;
}

void
StorePointCache::store(std::size_t index, const PointOutcome &out)
{
    UVMASYNC_ASSERT(index < points_.size(),
                    "point index out of range");
    if (!out.ok || points_[index].opts.trace)
        return;
    store_.insert(keys_[index], out.result);
}

StoreSurvey
surveyStore(const std::string &dir, IoEnv &env)
{
    if (!env.exists(dir))
        fatal("store: '%s' does not exist", dir.c_str());
    StoreSurvey survey;
    std::string contents;
    if (!readFileContents(env, metaPath(dir), contents)) {
        survey.metaError = "missing meta.json";
    } else {
        bool torn = false;
        std::size_t intactEnd = 0;
        std::vector<std::string> lines =
            splitLines(contents, torn, intactEnd);
        MetaData meta;
        std::string error;
        if (lines.empty()) {
            survey.metaError = "empty meta.json";
        } else if (!parseMetaLine(lines[0], meta, error)) {
            survey.metaError = error;
        } else {
            survey.metaOk = true;
            survey.clock = meta.clock;
            survey.fingerprints = meta.fingerprints;
            survey.lifetimeLookups = meta.lifetimeLookups;
            survey.lifetimeHits = meta.lifetimeHits;
            survey.lifetimeStored = meta.lifetimeStored;
            survey.lastRunLookups = meta.lastRunLookups;
            survey.lastRunHits = meta.lastRunHits;
        }
    }

    for (const auto &entry : listShardFiles(env, dir)) {
        std::size_t s = entry.first;
        std::string contents2;
        if (!readFileContents(env, entry.second, contents2))
            continue;
        ++survey.segments;
        survey.bytes += contents2.size();
        bool torn = false;
        std::size_t intactEnd = 0;
        std::vector<std::string> lines =
            splitLines(contents2, torn, intactEnd);
        if (torn)
            ++survey.tornTails;
        if (lines.empty() || !parseShardHeader(lines[0], s)) {
            ++survey.badHeaders;
            survey.corruptRecords +=
                lines.empty() ? 0 : lines.size() - 1;
            continue;
        }
        for (std::size_t i = 1; i < lines.size(); ++i) {
            std::uint64_t fp = 0;
            std::uint64_t key = 0;
            ExperimentResult result;
            std::string error;
            if (parseStoreRecord(lines[i], fp, key, result, error))
                ++survey.records;
            else
                ++survey.corruptRecords;
        }
    }
    return survey;
}

StoreGcResult
gcStore(const std::string &dir, std::uint64_t maxBytes, IoEnv &env)
{
    if (!env.exists(dir))
        fatal("store: '%s' does not exist", dir.c_str());
    StoreGcResult gc;

    MetaData meta;
    meta.lastUse.assign(ResultStore::shardCount, 0);
    {
        std::string contents;
        std::string error;
        bool torn = false;
        std::size_t intactEnd = 0;
        if (readFileContents(env, metaPath(dir), contents)) {
            std::vector<std::string> lines =
                splitLines(contents, torn, intactEnd);
            if (lines.empty() ||
                !parseMetaLine(lines[0], meta, error)) {
                meta = MetaData{};
                meta.lastUse.assign(ResultStore::shardCount, 0);
            }
        }
    }

    // Pass 1: rewrite each segment keeping only intact records.
    std::vector<std::uint64_t> shardBytes(ResultStore::shardCount, 0);
    for (const auto &entry : listShardFiles(env, dir)) {
        std::size_t s = entry.first;
        const std::string &path = entry.second;
        std::string contents;
        if (!readFileContents(env, path, contents))
            continue;
        gc.bytesBefore += contents.size();
        bool torn = false;
        std::size_t intactEnd = 0;
        std::vector<std::string> lines =
            splitLines(contents, torn, intactEnd);
        std::string rewritten = storeSegmentHeaderLine(s) + "\n";
        std::size_t kept = 0;
        bool headerOk = !lines.empty() && parseShardHeader(lines[0], s);
        for (std::size_t i = headerOk ? 1 : 0;
             headerOk && i < lines.size(); ++i) {
            std::uint64_t fp = 0;
            std::uint64_t key = 0;
            ExperimentResult result;
            std::string error;
            if (parseStoreRecord(lines[i], fp, key, result, error)) {
                rewritten += lines[i];
                rewritten += "\n";
                ++kept;
            } else {
                ++gc.droppedRecords;
            }
        }
        if (!headerOk)
            gc.droppedRecords += lines.size();
        if (torn)
            ++gc.droppedRecords;
        if (kept == 0) {
            env.removeFile(path);
            meta.lastUse[s] = 0;
            continue;
        }
        IoStatus st = env.writeFileAtomic(path, rewritten);
        if (!st.ok)
            fatal("store: cannot replace '%s': %s", path.c_str(),
                  st.text().c_str());
        shardBytes[s] = rewritten.size();
    }

    // Pass 2: enforce the byte budget by meta-clock LRU.
    if (maxBytes > 0) {
        auto total = [&]() {
            std::uint64_t t = 0;
            for (std::uint64_t b : shardBytes)
                t += b;
            return t;
        };
        while (total() > maxBytes) {
            std::size_t victim = ResultStore::shardCount;
            for (std::size_t s = 0; s < ResultStore::shardCount;
                 ++s) {
                if (shardBytes[s] == 0)
                    continue;
                if (victim == ResultStore::shardCount ||
                    meta.lastUse[s] < meta.lastUse[victim])
                    victim = s;
            }
            if (victim == ResultStore::shardCount)
                break;
            env.removeFile(shardPath(dir, victim));
            ++gc.evictedSegments;
            gc.evictedBytes += shardBytes[victim];
            shardBytes[victim] = 0;
            meta.lastUse[victim] = 0;
        }
    }
    for (std::uint64_t b : shardBytes)
        gc.bytesAfter += b;
    writeMetaFile(env, dir, meta);
    return gc;
}

std::size_t
invalidateStore(const std::string &dir,
                const std::uint64_t *fingerprint, IoEnv &env)
{
    if (!env.exists(dir))
        fatal("store: '%s' does not exist", dir.c_str());

    MetaData meta;
    meta.lastUse.assign(ResultStore::shardCount, 0);
    {
        std::string contents;
        std::string error;
        bool torn = false;
        std::size_t intactEnd = 0;
        if (readFileContents(env, metaPath(dir), contents)) {
            std::vector<std::string> lines =
                splitLines(contents, torn, intactEnd);
            if (lines.empty() ||
                !parseMetaLine(lines[0], meta, error)) {
                meta = MetaData{};
                meta.lastUse.assign(ResultStore::shardCount, 0);
            }
        }
    }

    std::size_t dropped = 0;
    for (const auto &entry : listShardFiles(env, dir)) {
        std::size_t s = entry.first;
        const std::string &path = entry.second;
        std::string contents;
        if (!readFileContents(env, path, contents))
            continue;
        if (!fingerprint) {
            bool torn = false;
            std::size_t intactEnd = 0;
            std::vector<std::string> lines =
                splitLines(contents, torn, intactEnd);
            dropped += lines.empty() ? 0 : lines.size() - 1;
            env.removeFile(path);
            meta.lastUse[s] = 0;
            continue;
        }
        bool torn = false;
        std::size_t intactEnd = 0;
        std::vector<std::string> lines =
            splitLines(contents, torn, intactEnd);
        std::string rewritten = storeSegmentHeaderLine(s) + "\n";
        std::size_t kept = 0;
        bool headerOk = !lines.empty() && parseShardHeader(lines[0], s);
        for (std::size_t i = 1; headerOk && i < lines.size(); ++i) {
            std::uint64_t fp = 0;
            std::uint64_t key = 0;
            ExperimentResult result;
            std::string error;
            if (parseStoreRecord(lines[i], fp, key, result, error) &&
                fp != *fingerprint) {
                rewritten += lines[i];
                rewritten += "\n";
                ++kept;
            } else {
                ++dropped;
            }
        }
        if (!headerOk)
            dropped += lines.size();
        if (kept == 0) {
            env.removeFile(path);
            meta.lastUse[s] = 0;
            continue;
        }
        IoStatus st = env.writeFileAtomic(path, rewritten);
        if (!st.ok)
            fatal("store: cannot replace '%s': %s", path.c_str(),
                  st.text().c_str());
    }

    if (fingerprint) {
        meta.fingerprints.erase(
            std::remove(meta.fingerprints.begin(),
                        meta.fingerprints.end(), *fingerprint),
            meta.fingerprints.end());
    } else {
        meta = MetaData{};
        meta.lastUse.assign(ResultStore::shardCount, 0);
    }
    writeMetaFile(env, dir, meta);
    return dropped;
}

TextTable
storeStatsTable(const StoreStats &stats)
{
    TextTable table({"counter", "value"});
    table.setAlign(0, TextTable::Align::Left);
    auto row = [&](const char *name, std::uint64_t value) {
        table.addRow({name, std::to_string(value)});
    };
    row("lookups", stats.lookups);
    row("hits", stats.hits);
    row("misses", stats.lookups - stats.hits);
    table.addRow({"hit_rate",
                  stats.lookups
                      ? fmtPercent(static_cast<double>(stats.hits) /
                                   static_cast<double>(stats.lookups))
                      : "-"});
    row("stored", stats.stored);
    row("stale_misses", stats.staleMisses);
    row("corrupt_records", stats.corruptRecords);
    row("torn_tails", stats.tornTails);
    row("write_errors", stats.writeErrors);
    row("evicted_segments", stats.evictedSegments);
    row("evicted_bytes", stats.evictedBytes);
    return table;
}

TextTable
storeSurveyTable(const StoreSurvey &survey)
{
    TextTable table({"counter", "value"});
    table.setAlign(0, TextTable::Align::Left);
    table.setAlign(1, TextTable::Align::Left);
    auto row = [&](const char *name, const std::string &value) {
        table.addRow({name, value});
    };
    row("meta", survey.metaOk ? "ok" : survey.metaError);
    row("fingerprints",
        std::to_string(survey.fingerprints.size()));
    row("segments", std::to_string(survey.segments));
    row("records", std::to_string(survey.records));
    row("bytes", std::to_string(survey.bytes));
    row("corrupt_records", std::to_string(survey.corruptRecords));
    row("torn_tails", std::to_string(survey.tornTails));
    row("bad_headers", std::to_string(survey.badHeaders));
    row("lifetime_lookups", std::to_string(survey.lifetimeLookups));
    row("lifetime_hits", std::to_string(survey.lifetimeHits));
    row("lifetime_stored", std::to_string(survey.lifetimeStored));
    row("last_run_lookups", std::to_string(survey.lastRunLookups));
    row("last_run_hits", std::to_string(survey.lastRunHits));
    row("last_run_hit_rate",
        survey.lastRunLookups
            ? fmtPercent(static_cast<double>(survey.lastRunHits) /
                         static_cast<double>(survey.lastRunLookups))
            : "-");
    return table;
}

} // namespace uvmasync
