/**
 * @file
 * Persistent content-addressed result store: cross-run memoization of
 * per-point experiment results.
 *
 * The store maps (modelSemanticsFingerprint, pointConfigHash) to one
 * hexfloat ExperimentResult record. The journal (journal/journal.hh)
 * is the per-run durability layer — positional, campaign-validated,
 * fsync'd per record; the store is the cross-run layer — positionless
 * content addressing, so overlapping campaigns, repeated CI runs and
 * golden regeneration pay only for never-seen points.
 *
 * On-disk layout under the store directory:
 *
 *   meta.json         one strict-JSON line: magic, format version,
 *                     the logical LRU clock, the fingerprints ever
 *                     written, per-shard last-use stamps and
 *                     lifetime/last-run counters
 *   shards/sXX.jsonl  256 append-only segment files (XX = low byte of
 *                     the config hash in hex), each a header line
 *                     plus one record line per entry in the journal's
 *                     strict JSON/hexfloat layout
 *
 * Every record carries a checksum over its own serialized bytes; a
 * flipped byte is detected at load, counted, and treated as a miss —
 * never served. A torn trailing line (a crash mid-append) is dropped,
 * and truncated away when the store is writable. Unlike the journal
 * there is no per-record fsync: the store is a cache, not a
 * crash-safety contract, and the worst a lost tail costs is a
 * re-simulation.
 *
 * Eviction is LRU by segment under a byte budget. The LRU clock is a
 * *logical* counter (persisted in meta.json), never wall-clock time:
 * the whole store — segment bytes included — stays a pure function of
 * the access sequence, which determinism_lint.sh enforces for
 * src/store the same way it does for src/journal.
 */

#ifndef UVMASYNC_STORE_RESULT_STORE_HH
#define UVMASYNC_STORE_RESULT_STORE_HH

#include <array>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/table.hh"
#include "core/parallel_runner.hh"
#include "io/io_env.hh"

namespace uvmasync
{

/** How to open a ResultStore. */
struct StoreOptions
{
    /** Serve hits but never write (no inserts, eviction, or meta). */
    bool readonly = false;

    /**
     * Byte budget over all segment files; exceeding it evicts whole
     * least-recently-used segments. 0 = unlimited.
     */
    std::uint64_t maxBytes = 0;
};

/** Counters of one open store session (plus lifetime totals). */
struct StoreStats
{
    std::uint64_t lookups = 0; //!< lookup() calls this session
    std::uint64_t hits = 0;    //!< served from the store
    std::uint64_t stored = 0;  //!< new records appended

    /** Records rejected by checksum/parse at load ("never served"). */
    std::uint64_t corruptRecords = 0;

    /** Misses whose key exists under a *different* fingerprint. */
    std::uint64_t staleMisses = 0;

    /** Torn trailing lines dropped at load. */
    std::uint64_t tornTails = 0;

    /**
     * Hard segment-append failures (disk full, EIO). Each one
     * disables its shard for the rest of the session — the tail is
     * truncated back to the last intact record instead of corrupted,
     * and later offers to that shard are declined.
     */
    std::uint64_t writeErrors = 0;

    std::uint64_t evictedSegments = 0;
    std::uint64_t evictedBytes = 0;

    /** @{ Lifetime totals from meta.json (include this session). */
    std::uint64_t lifetimeLookups = 0;
    std::uint64_t lifetimeHits = 0;
    std::uint64_t lifetimeStored = 0;
    /** @} */
};

/**
 * One open store directory, bound to a model-semantics fingerprint.
 * All segments are loaded eagerly at open (the hot path is then a
 * pure map lookup), and meta.json is rewritten atomically on close.
 */
class ResultStore
{
  public:
    static constexpr int formatVersion = 1;
    static constexpr std::size_t shardCount = 256;

    /**
     * Open (creating if writable and absent) the store at @p dir for
     * @p fingerprint. fatal() with an actionable message when the
     * directory cannot be created/written, when meta.json is not a
     * store or has a newer format version, or when a readonly open
     * finds no entries for @p fingerprint (a stale store cannot
     * serve the current model semantics and, readonly, can never
     * catch up).
     */
    static std::unique_ptr<ResultStore>
    open(const std::string &dir, std::uint64_t fingerprint,
         const StoreOptions &opt = {}, IoEnv &env = realIoEnv());

    ~ResultStore();

    ResultStore(const ResultStore &) = delete;
    ResultStore &operator=(const ResultStore &) = delete;

    /**
     * Serve the result stored under (fingerprint, @p key); counts a
     * hit or a miss (stale when the key exists under another
     * fingerprint) and touches the segment's LRU stamp on hit.
     */
    bool lookup(std::uint64_t key, ExperimentResult &out);

    /**
     * Append one record (no-op when readonly or already present),
     * then enforce the byte budget by evicting LRU segments.
     */
    void insert(std::uint64_t key, const ExperimentResult &result);

    /** Count a served-then-rejected record (see StorePointCache). */
    void noteCorrupt() { ++stats_.corruptRecords; }

    const StoreStats &stats() const { return stats_; }
    std::uint64_t fingerprint() const { return fingerprint_; }
    const std::string &dir() const { return dir_; }
    bool readonly() const { return opt_.readonly; }

    /** Total bytes across segment files right now. */
    std::uint64_t totalBytes() const;

    /** Intact records currently loaded. */
    std::size_t recordCount() const;

  private:
    ResultStore() = default;

    std::size_t shardOf(std::uint64_t key) const;
    void loadShard(std::size_t shard, const std::string &path);
    void touch(std::size_t shard);
    void noteWriteError(std::size_t shard, const IoStatus &st);
    void enforceBudget(std::size_t protectedShard);
    void persistMeta();

    struct Shard
    {
        /** (configHash, fingerprint) -> stored result. */
        std::map<std::pair<std::uint64_t, std::uint64_t>,
                 ExperimentResult>
            entries;
        std::uint64_t bytes = 0;
        std::unique_ptr<IoFile> file; //!< open lazily for append
        bool writeFailed = false; //!< hard error: decline offers
    };

    std::string dir_;
    IoEnv *env_ = nullptr;
    std::uint64_t fingerprint_ = 0;
    StoreOptions opt_;
    StoreStats stats_;

    std::array<Shard, shardCount> shards_;
    std::vector<std::uint64_t> knownFingerprints_; //!< sorted
    std::uint64_t clock_ = 0; //!< logical LRU clock (never wall time)
    std::array<std::uint64_t, shardCount> lastUse_{};
    std::uint64_t lastRunLookups_ = 0;
    std::uint64_t lastRunHits_ = 0;
    bool loaded_ = false; //!< open() completed; destructor persists
};

/**
 * RunPolicy::cache adapter binding a ResultStore to a point grid:
 * keys are pointConfigHash(points[i]). Traced points always miss and
 * are never offered (traces are not serialized; a traced rerun
 * re-simulates deterministically instead). A hit whose stored
 * identity does not match the point (a config-hash collision or
 * undetected corruption) is rejected, counted, and re-simulated.
 */
class StorePointCache : public PointCache
{
  public:
    StorePointCache(ResultStore &store,
                    const std::vector<ExperimentPoint> &points);

    bool lookup(std::size_t index, PointOutcome &out) override;
    void store(std::size_t index, const PointOutcome &out) override;

  private:
    ResultStore &store_;
    std::vector<ExperimentPoint> points_;
    std::vector<std::uint64_t> keys_;
};

/** @{ Record serialization (exposed for tests). */
std::string storeSegmentHeaderLine(std::size_t shard);
std::string storeRecordLine(std::uint64_t fingerprint,
                            std::uint64_t key,
                            const ExperimentResult &result);
bool parseStoreRecord(const std::string &line,
                      std::uint64_t &fingerprint, std::uint64_t &key,
                      ExperimentResult &result, std::string &error);
/** @} */

/** Offline inspection of a store directory (`store stats`/`verify`). */
struct StoreSurvey
{
    bool metaOk = false;
    std::string metaError;
    std::uint64_t clock = 0;
    std::vector<std::uint64_t> fingerprints;
    std::uint64_t lifetimeLookups = 0;
    std::uint64_t lifetimeHits = 0;
    std::uint64_t lifetimeStored = 0;
    std::uint64_t lastRunLookups = 0;
    std::uint64_t lastRunHits = 0;

    std::size_t segments = 0; //!< shard files present
    std::size_t records = 0;  //!< intact records
    std::uint64_t bytes = 0;  //!< total segment bytes
    std::size_t corruptRecords = 0;
    std::size_t tornTails = 0;
    std::size_t badHeaders = 0;

    /** True when every byte on disk is accounted for and intact. */
    bool
    clean() const
    {
        return metaOk && corruptRecords == 0 && tornTails == 0 &&
               badHeaders == 0;
    }
};

/**
 * Walk a store directory without opening it for use: never fatals on
 * corruption (that is what it is for), only on a missing directory.
 */
StoreSurvey surveyStore(const std::string &dir,
                        IoEnv &env = realIoEnv());

/** Outcome of gcStore(). */
struct StoreGcResult
{
    std::size_t droppedRecords = 0; //!< corrupt/torn records removed
    std::uint64_t evictedSegments = 0;
    std::uint64_t evictedBytes = 0;
    std::uint64_t bytesBefore = 0;
    std::uint64_t bytesAfter = 0;
};

/**
 * Rewrite every segment keeping only intact records (dropping
 * corrupt lines and torn tails), then enforce @p maxBytes (0 = no
 * budget) by LRU eviction, and persist a repaired meta.json.
 */
StoreGcResult gcStore(const std::string &dir, std::uint64_t maxBytes,
                      IoEnv &env = realIoEnv());

/**
 * Drop entries: all of them, or (with @p fingerprint set) only the
 * records written under one fingerprint. Returns records dropped.
 */
std::size_t invalidateStore(const std::string &dir,
                            const std::uint64_t *fingerprint,
                            IoEnv &env = realIoEnv());

/** Render session + lifetime counters (`store stats`, run reports). */
TextTable storeStatsTable(const StoreStats &stats);

/** Render a surveyStore() result (`uvmasync store stats`). */
TextTable storeSurveyTable(const StoreSurvey &survey);

} // namespace uvmasync

#endif // UVMASYNC_STORE_RESULT_STORE_HH
