#include "store/fingerprint.hh"

#include <cstring>

namespace uvmasync
{

namespace
{

// Same FNV-1a / splitmix64 combination as pointConfigHash: stable
// across platforms, no std::hash.
std::uint64_t
fnv1a(std::uint64_t h, const void *data, std::size_t len)
{
    const unsigned char *p = static_cast<const unsigned char *>(data);
    for (std::size_t i = 0; i < len; ++i) {
        h ^= p[i];
        h *= 0x100000001b3ull;
    }
    return h;
}

std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

/**
 * Field-by-field accumulator. Never hash struct memory directly:
 * padding bytes are indeterminate and would make the fingerprint
 * compiler-dependent.
 */
class FieldHasher
{
  public:
    void
    u64(std::uint64_t v)
    {
        h_ = fnv1a(h_, &v, sizeof(v));
    }

    void
    f64(double v)
    {
        std::uint64_t bits = 0;
        std::memcpy(&bits, &v, sizeof(bits));
        u64(bits);
    }

    std::uint64_t hash() const { return mix64(h_); }

  private:
    std::uint64_t h_ = 0xcbf29ce484222325ull;
};

} // namespace

std::uint64_t
modelSemanticsFingerprint(const SystemConfig &s)
{
    FieldHasher h;
    h.u64(modelSemanticsVersion);

    const HostMemoryConfig &host = s.host;
    h.u64(host.dimmCount);
    h.u64(host.dimmCapacity);
    h.f64(host.readBandwidth.bytesPerSecond());
    h.f64(host.straddleThreshold);
    h.f64(host.straddlePenalty);
    h.f64(host.spillSpanFraction);

    const GpuConfig &gpu = s.gpu;
    h.u64(gpu.smCount);
    h.f64(gpu.clock.hz());
    h.u64(gpu.coresPerSm);
    h.u64(gpu.maxThreadsPerSm);
    h.u64(gpu.maxBlocksPerSm);
    h.u64(gpu.maxWarpsPerSm);
    h.u64(gpu.warpSize);
    h.u64(gpu.unifiedL1Bytes);
    h.u64(gpu.maxSharedBytes);
    h.u64(gpu.defaultSharedCarveout);
    h.u64(gpu.l1LineBytes);
    h.u64(gpu.l1Ways);
    h.f64(gpu.hbmBandwidth.bytesPerSecond());
    h.f64(gpu.l2Bandwidth.bytesPerSecond());
    h.u64(gpu.l2CapacityBytes);
    h.f64(gpu.smLsuBandwidth.bytesPerSecond());
    h.f64(gpu.fpPerCycle);
    h.f64(gpu.intPerCycle);
    h.f64(gpu.ctrlPerCycle);
    h.f64(gpu.memIssuePerCycle);
    h.u64(gpu.kernelLaunchOverhead);
    h.f64(gpu.asyncCtrlPerThreadTile);
    h.f64(gpu.asyncIntPerThreadTile);
    h.f64(gpu.asyncCopyBwBonus);
    h.f64(gpu.asyncSharedMemFactor);
    h.f64(gpu.asyncWaitMultiplier);
    h.u64(gpu.gpuPageBytes);
    h.f64(gpu.pageWalkCycles);
    h.f64(gpu.tlbMissFraction);

    const PcieConfig &pcie = s.pcie;
    h.f64(pcie.rawBandwidth.bytesPerSecond());
    for (double e : pcie.efficiency)
        h.f64(e);
    for (Tick t : pcie.perTransferLatency)
        h.u64(t);

    const UvmConfig &uvm = s.uvm;
    h.u64(uvm.chunkBytes);
    h.u64(uvm.fault.batchBaseLatency);
    h.u64(uvm.fault.perFaultLatency);
    h.u64(uvm.fault.batchWindow);
    h.u64(uvm.fault.maxBatchSize);
    h.u64(static_cast<std::uint64_t>(uvm.demandPrefetcher));
    h.u64(uvm.prefetchCallOverhead);
    h.f64(uvm.redundantPrefetchChurn);

    const AllocatorConfig &alloc = s.alloc;
    h.u64(alloc.contextInit);
    h.u64(alloc.deviceAllocBase);
    h.u64(alloc.deviceAllocPerGiB);
    h.u64(alloc.deviceFreeBase);
    h.u64(alloc.deviceFreePerGiB);
    h.u64(alloc.managedAllocBase);
    h.u64(alloc.managedAllocPerGiB);
    h.u64(alloc.managedFreeBase);
    h.u64(alloc.managedFreePerGiB);

    const NoiseConfig &noise = s.noise;
    h.f64(noise.allocCv);
    h.f64(noise.transferCv);
    h.f64(noise.kernelCv);
    h.u64(noise.systemOverheadMean);
    h.f64(noise.systemOverheadCv);

    // Watchdog ceilings intentionally excluded (see fingerprint.hh).
    h.u64(s.deviceMemoryBytes);
    return h.hash();
}

} // namespace uvmasync
